package rheem

import (
	"fmt"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Job is a fluent builder for one analytic task. All DataQuanta handles
// derived from a job share its logical plan; combine handles from the
// same job with Union/Join/..., then terminate any handle with Collect.
type Job struct {
	ctx  *Context
	name string
	b    *plan.Builder
	err  error
}

// NewJob starts an empty job.
func (c *Context) NewJob(name string) *Job {
	return &Job{ctx: c, name: name, b: plan.NewBuilder(name)}
}

// DataQuanta is a handle to an intermediate dataset of a job — the
// fluent face of a logical operator's output. Methods append logical
// operators; errors are deferred to Collect/Plan.
type DataQuanta struct {
	job *Job
	op  *plan.Operator
}

func (j *Job) fail(err error) {
	if j.err == nil && err != nil {
		j.err = err
	}
}

func (j *Job) quanta(op *plan.Operator) *DataQuanta {
	return &DataQuanta{job: j, op: op}
}

// ReadCollection introduces in-memory records as a source. The hint
// for the optimizer's cardinality estimate is taken from the slice
// length.
func (j *Job) ReadCollection(name string, recs []data.Record) *DataQuanta {
	op := j.b.Source(name, plan.Collection(recs))
	op.CardHint = int64(len(recs))
	return j.quanta(op)
}

// ReadSource introduces an arbitrary source function with an explicit
// cardinality hint (0 = unknown).
func (j *Job) ReadSource(name string, fn plan.SourceFunc, cardHint int64) *DataQuanta {
	op := j.b.Source(name, fn)
	op.CardHint = cardHint
	return j.quanta(op)
}

// ShareScan declares that this source produces identical records to
// every other source sharing key, letting the optimizer's shared-scan
// rule merge them into one scan. Only call it on handles returned by
// ReadCollection/ReadSource, with sources that really are identical.
func (q *DataQuanta) ShareScan(key string) *DataQuanta {
	if q.op.Kind() != plan.KindSource {
		q.job.fail(fmt.Errorf("rheem: ShareScan on %s (want a source)", q.op.Kind()))
		return q
	}
	q.op.ScanKey = key
	return q
}

// Map appends a per-quantum transformation.
func (q *DataQuanta) Map(f plan.MapFunc) *DataQuanta {
	return q.job.quanta(q.job.b.Map(q.op, f))
}

// FlatMap appends a one-to-many transformation.
func (q *DataQuanta) FlatMap(f plan.FlatMapFunc) *DataQuanta {
	return q.job.quanta(q.job.b.FlatMap(q.op, f))
}

// Filter appends a predicate; selectivity (0 = unknown) hints the
// optimizer.
func (q *DataQuanta) Filter(f plan.FilterFunc, selectivity float64) *DataQuanta {
	op := q.job.b.Filter(q.op, f)
	op.Selectivity = selectivity
	return q.job.quanta(op)
}

// GroupBy appends per-key group processing.
func (q *DataQuanta) GroupBy(key plan.KeyFunc, f plan.GroupFunc) *DataQuanta {
	return q.job.quanta(q.job.b.GroupBy(q.op, key, f))
}

// ReduceByKey appends a per-key pairwise fold.
func (q *DataQuanta) ReduceByKey(key plan.KeyFunc, f plan.ReduceFunc) *DataQuanta {
	return q.job.quanta(q.job.b.ReduceByKey(q.op, key, f))
}

// Reduce appends a global fold to one record.
func (q *DataQuanta) Reduce(f plan.ReduceFunc) *DataQuanta {
	return q.job.quanta(q.job.b.Reduce(q.op, f))
}

// Sort appends an ordering.
func (q *DataQuanta) Sort(key plan.KeyFunc, desc bool) *DataQuanta {
	return q.job.quanta(q.job.b.Sort(q.op, key, desc))
}

// Distinct appends duplicate elimination.
func (q *DataQuanta) Distinct() *DataQuanta {
	return q.job.quanta(q.job.b.Distinct(q.op))
}

// Union appends a bag union with another handle of the same job.
func (q *DataQuanta) Union(o *DataQuanta) *DataQuanta {
	if o.job != q.job {
		q.job.fail(fmt.Errorf("rheem: Union across jobs"))
		o = q
	}
	return q.job.quanta(q.job.b.Union(q.op, o.op))
}

// Join appends an equi-join with another handle of the same job.
func (q *DataQuanta) Join(o *DataQuanta, lkey, rkey plan.KeyFunc) *DataQuanta {
	if o.job != q.job {
		q.job.fail(fmt.Errorf("rheem: Join across jobs"))
		o = q
	}
	return q.job.quanta(q.job.b.Join(q.op, o.op, lkey, rkey))
}

// ThetaJoin appends a predicate join; declarative inequality conditions
// enable the IEJoin physical operator.
func (q *DataQuanta) ThetaJoin(o *DataQuanta, pred plan.PredFunc, conds ...plan.IECondition) *DataQuanta {
	if o.job != q.job {
		q.job.fail(fmt.Errorf("rheem: ThetaJoin across jobs"))
		o = q
	}
	return q.job.quanta(q.job.b.ThetaJoin(q.op, o.op, pred, conds...))
}

// Cartesian appends a cross product with another handle of the same job.
func (q *DataQuanta) Cartesian(o *DataQuanta) *DataQuanta {
	if o.job != q.job {
		q.job.fail(fmt.Errorf("rheem: Cartesian across jobs"))
		o = q
	}
	return q.job.quanta(q.job.b.Cartesian(q.op, o.op))
}

// Count appends a record counter.
func (q *DataQuanta) Count() *DataQuanta {
	return q.job.quanta(q.job.b.Count(q.op))
}

// Sample appends take-first-n.
func (q *DataQuanta) Sample(n int) *DataQuanta {
	return q.job.quanta(q.job.b.Sample(q.op, n))
}

// Repeat appends a fixed-iteration loop. The body function receives the
// loop state handle and returns the next state; it runs against a
// nested loop-body plan, so sources read inside the body re-evaluate
// each iteration.
func (q *DataQuanta) Repeat(times int, body func(*LoopBody, *DataQuanta) *DataQuanta) *DataQuanta {
	bp, err := buildBody(q.job.name, body)
	if err != nil {
		q.job.fail(err)
		return q
	}
	return q.job.quanta(q.job.b.Repeat(q.op, times, bp))
}

// DoWhile appends a conditional loop continuing while cond returns
// true, bounded by maxIter.
func (q *DataQuanta) DoWhile(cond plan.CondFunc, maxIter int, body func(*LoopBody, *DataQuanta) *DataQuanta) *DataQuanta {
	bp, err := buildBody(q.job.name, body)
	if err != nil {
		q.job.fail(err)
		return q
	}
	return q.job.quanta(q.job.b.DoWhile(q.op, cond, maxIter, bp))
}

// LoopBody is the fluent builder scope of a loop body; it offers the
// same sources as a Job so bodies can join loop state with data.
type LoopBody struct {
	job *Job // a synthetic body job
}

// ReadCollection introduces in-memory records inside the loop body.
func (lb *LoopBody) ReadCollection(name string, recs []data.Record) *DataQuanta {
	op := lb.job.b.Source(name, plan.Collection(recs))
	op.CardHint = int64(len(recs))
	return lb.job.quanta(op)
}

// ReadSource introduces a source function inside the loop body.
func (lb *LoopBody) ReadSource(name string, fn plan.SourceFunc, cardHint int64) *DataQuanta {
	op := lb.job.b.Source(name, fn)
	op.CardHint = cardHint
	return lb.job.quanta(op)
}

func buildBody(name string, body func(*LoopBody, *DataQuanta) *DataQuanta) (*plan.Plan, error) {
	bb := plan.NewBodyBuilder(name + ".body")
	bodyJob := &Job{name: name + ".body", b: bb}
	lb := &LoopBody{job: bodyJob}
	state := bodyJob.quanta(bb.LoopInput("state"))
	out := body(lb, state)
	if out == nil {
		return nil, fmt.Errorf("rheem: loop body returned nil")
	}
	if out.job != bodyJob {
		return nil, fmt.Errorf("rheem: loop body returned a handle from outside the body")
	}
	if bodyJob.err != nil {
		return nil, bodyJob.err
	}
	bb.Collect(out.op)
	return bb.Build()
}

// Plan terminates the handle into a validated logical plan without
// executing it.
func (q *DataQuanta) Plan() (*plan.Plan, error) {
	if q.job.err != nil {
		return nil, q.job.err
	}
	// Each Collect gets a fresh builder? Builders are single-use; to
	// allow multiple terminal calls on one job we rebuild via the
	// existing builder only once.
	q.job.b.Collect(q.op)
	return q.job.b.Build()
}

// Collect terminates the handle, executes the job, and returns the
// records with a run report.
func (q *DataQuanta) Collect(opts ...RunOption) ([]data.Record, *Report, error) {
	if q.job.ctx == nil {
		return nil, nil, fmt.Errorf("rheem: Collect on a loop-body handle")
	}
	p, err := q.Plan()
	if err != nil {
		return nil, nil, err
	}
	return q.job.ctx.Execute(p, opts...)
}
