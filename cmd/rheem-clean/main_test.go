package main

import (
	"testing"

	"rheem/internal/apps/cleaning"
	"rheem/internal/core/plan"
	"rheem/internal/data/datagen"
)

func TestParseFD(t *testing.T) {
	r, err := parseFD("id:zip->city,state", datagen.TaxSchema)
	if err != nil {
		t.Fatal(err)
	}
	fd, ok := r.(cleaning.FD)
	if !ok {
		t.Fatalf("got %T", r)
	}
	if fd.ID != datagen.TaxID || len(fd.LHS) != 1 || fd.LHS[0] != datagen.TaxZip {
		t.Errorf("fd = %+v", fd)
	}
	if len(fd.RHS) != 2 || fd.RHS[0] != datagen.TaxCity || fd.RHS[1] != datagen.TaxState {
		t.Errorf("rhs = %v", fd.RHS)
	}
	for _, bad := range []string{
		"", "zip->city", "id:zipcity", "id:ghost->city", "id:zip->ghost", "ghost:zip->city",
	} {
		if _, err := parseFD(bad, datagen.TaxSchema); err == nil {
			t.Errorf("parseFD(%q) accepted", bad)
		}
	}
}

func TestParseDC(t *testing.T) {
	r, err := parseDC("id:salary>salary,rate<rate:fix=rate", datagen.TaxSchema)
	if err != nil {
		t.Fatal(err)
	}
	dc, ok := r.(cleaning.DenialConstraint)
	if !ok {
		t.Fatalf("got %T", r)
	}
	if len(dc.Preds) != 2 {
		t.Fatalf("preds = %+v", dc.Preds)
	}
	if dc.Preds[0].Op != plan.Greater || dc.Preds[0].LeftField != datagen.TaxSalary {
		t.Errorf("pred0 = %+v", dc.Preds[0])
	}
	if dc.Preds[1].Op != plan.Less || dc.Preds[1].RightField != datagen.TaxRate {
		t.Errorf("pred1 = %+v", dc.Preds[1])
	}
	if dc.FixField != datagen.TaxRate {
		t.Errorf("fix field = %d", dc.FixField)
	}
	// <= and >= parse before < and >.
	r, err = parseDC("id:salary>=salary", datagen.TaxSchema)
	if err != nil {
		t.Fatal(err)
	}
	if r.(cleaning.DenialConstraint).Preds[0].Op != plan.GreaterEq {
		t.Error(">= parsed as >")
	}
	// Without a fix trailer the rule proposes no repairs.
	if r.(cleaning.DenialConstraint).FixField != -1 {
		t.Error("fix field should default to -1")
	}
	for _, bad := range []string{
		"", "salary>salary", "id:salary=salary", "id:ghost>salary",
		"id:salary>ghost", "id:salary>salary:fixrate", "id:salary>salary:fix=ghost",
	} {
		if _, err := parseDC(bad, datagen.TaxSchema); err == nil {
			t.Errorf("parseDC(%q) accepted", bad)
		}
	}
}

func TestParsedRulesDetect(t *testing.T) {
	// End-to-end: CLI-parsed rules find the same FD violations the
	// canonical rule finds.
	fd, err := parseFD("id:zip->city", datagen.TaxSchema)
	if err != nil {
		t.Fatal(err)
	}
	recs := datagen.Tax(datagen.TaxConfig{N: 100, Zips: 5, ErrorRate: 0.2, Seed: 3})
	scoped, ok := fd.Scope(recs[0])
	if !ok || scoped.Len() != 3 {
		t.Fatalf("scope = %v", scoped)
	}
	if err := cleaning.Validate(fd, datagen.TaxSchema.Len()); err != nil {
		t.Fatal(err)
	}
}
