// Command rheem-clean runs BigDansing-style data cleaning over a
// typed-header CSV file: detect functional-dependency and inequality
// denial-constraint violations, optionally repair, on the platform of
// your choice (or the optimizer's).
//
// Usage:
//
//	rheem-clean -in data.csv [-fd id:zip->city,state] [-dc 'id:salary>salary,rate<rate:fix=rate']
//	            [-platform java|spark|relational|auto] [-repair out.csv] [-demo n] [-metrics addr]
//
// Rule syntax:
//
//	-fd   idCol:lhs[,lhs...]->rhs[,rhs...]        (column names)
//	-dc   idCol:col OP col[,col OP col...][:fix=col]   OP ∈ < <= > >=
//
// With -demo N, a synthetic dirty tax dataset of N rows is generated
// instead of reading -in, with the canonical zip→city FD and
// salary/rate DC applied.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rheem"
	"rheem/internal/apps/cleaning"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rheem-clean: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "", "input CSV with name:type header")
	fdSpec := flag.String("fd", "", "functional dependency rule (idCol:lhs->rhs)")
	dcSpec := flag.String("dc", "", "denial constraint rule (idCol:preds[:fix=col])")
	platform := flag.String("platform", "auto", "java|spark|relational|auto")
	repairOut := flag.String("repair", "", "write the repaired dataset to this CSV")
	demo := flag.Int("demo", 0, "generate a synthetic dirty tax dataset of this size instead of -in")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /runs and /debug/pprof on this address while cleaning")
	flag.Parse()

	var schema *data.Schema
	var recs []data.Record
	var rules []cleaning.Rule
	switch {
	case *demo > 0:
		schema = datagen.TaxSchema
		recs = datagen.Tax(datagen.TaxConfig{N: *demo, Zips: *demo/50 + 1, ErrorRate: 0.02, Seed: 1})
		rules = append(rules,
			cleaning.FD{RuleName: "zip->city", ID: datagen.TaxID,
				LHS: []int{datagen.TaxZip}, RHS: []int{datagen.TaxCity}},
			cleaning.DenialConstraint{RuleName: "salary-rate", ID: datagen.TaxID,
				Preds: []cleaning.Pred{
					{LeftField: datagen.TaxSalary, Op: plan.Greater, RightField: datagen.TaxSalary},
					{LeftField: datagen.TaxRate, Op: plan.Less, RightField: datagen.TaxRate},
				}, FixField: datagen.TaxRate},
		)
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		schema, recs, err = data.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in FILE or -demo N")
	}

	if *fdSpec != "" {
		r, err := parseFD(*fdSpec, schema)
		if err != nil {
			return err
		}
		rules = append(rules, r)
	}
	if *dcSpec != "" {
		r, err := parseDC(*dcSpec, schema)
		if err != nil {
			return err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return fmt.Errorf("no rules: pass -fd and/or -dc (or -demo)")
	}
	for _, r := range rules {
		if err := cleaning.Validate(r, schema.Len()); err != nil {
			return err
		}
	}

	var ctxOpts []rheem.ContextOption
	if *metricsAddr != "" {
		ctxOpts = append(ctxOpts, rheem.WithMetricsAddr(*metricsAddr))
	}
	ctx, err := rheem.NewContext(rheem.Config{}, ctxOpts...)
	if err != nil {
		return err
	}
	defer ctx.Close()
	if *metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "rheem-clean: serving /metrics, /runs, /debug/pprof on http://%s\n", ctx.MetricsAddr())
	}
	var opts []rheem.RunOption
	switch *platform {
	case "auto":
	case "java":
		opts = append(opts, rheem.OnPlatform(javaengine.ID))
	case "spark":
		opts = append(opts, rheem.OnPlatform(sparksim.ID))
	case "relational":
		opts = append(opts, rheem.OnPlatform(relengine.ID))
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}

	det, err := cleaning.NewDetector(ctx, rules...)
	if err != nil {
		return err
	}
	violations, rep, err := det.Detect(recs, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("%d records, %d violations (wall %v, simulated %v, %d jobs)\n",
		len(recs), len(violations), rep.Metrics.Wall.Round(1e6), rep.Metrics.Sim.Round(1e6), rep.Metrics.Jobs)
	for rule, n := range cleaning.CountByRule(violations) {
		fmt.Printf("  rule %-20s %d violations\n", rule, n)
	}
	fmt.Printf("  %d distinct tuples involved\n", len(cleaning.ViolatingTuples(violations)))

	if *repairOut != "" {
		idField := idFieldOf(rules)
		repaired, stats, err := cleaning.Repair(recs, violations, rules, idField)
		if err != nil {
			return err
		}
		fmt.Printf("repair: %d cells changed, %d equivalence classes, %d greedy fixes\n",
			stats.CellsChanged, stats.Classes, stats.GreedyApplied)
		f, err := os.Create(*repairOut)
		if err != nil {
			return err
		}
		defer f.Close()
		return data.WriteCSV(f, schema, repaired)
	}
	return nil
}

func idFieldOf(rules []cleaning.Rule) int {
	switch r := rules[0].(type) {
	case cleaning.FD:
		return r.ID
	case cleaning.DenialConstraint:
		return r.ID
	default:
		return 0
	}
}

// parseFD parses "idCol:lhs[,lhs]->rhs[,rhs]" with column names.
func parseFD(spec string, schema *data.Schema) (cleaning.Rule, error) {
	idPart, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("bad -fd %q: want idCol:lhs->rhs", spec)
	}
	lhsPart, rhsPart, ok := strings.Cut(rest, "->")
	if !ok {
		return nil, fmt.Errorf("bad -fd %q: missing ->", spec)
	}
	col := func(name string) (int, error) {
		i := schema.IndexOf(strings.TrimSpace(name))
		if i < 0 {
			return 0, fmt.Errorf("unknown column %q", name)
		}
		return i, nil
	}
	id, err := col(idPart)
	if err != nil {
		return nil, err
	}
	var lhs, rhs []int
	for _, n := range strings.Split(lhsPart, ",") {
		i, err := col(n)
		if err != nil {
			return nil, err
		}
		lhs = append(lhs, i)
	}
	for _, n := range strings.Split(rhsPart, ",") {
		i, err := col(n)
		if err != nil {
			return nil, err
		}
		rhs = append(rhs, i)
	}
	return cleaning.FD{RuleName: "fd:" + rest, ID: id, LHS: lhs, RHS: rhs}, nil
}

// parseDC parses "idCol:col OP col[,col OP col...][:fix=col]".
func parseDC(spec string, schema *data.Schema) (cleaning.Rule, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return nil, fmt.Errorf("bad -dc %q: want idCol:preds[:fix=col]", spec)
	}
	col := func(name string) (int, error) {
		i := schema.IndexOf(strings.TrimSpace(name))
		if i < 0 {
			return 0, fmt.Errorf("unknown column %q", name)
		}
		return i, nil
	}
	id, err := col(parts[0])
	if err != nil {
		return nil, err
	}
	dc := cleaning.DenialConstraint{RuleName: "dc:" + parts[1], ID: id, FixField: -1}
	for _, ps := range strings.Split(parts[1], ",") {
		var opName string
		var op plan.CompareOp
		for _, cand := range []struct {
			s  string
			op plan.CompareOp
		}{{"<=", plan.LessEq}, {">=", plan.GreaterEq}, {"<", plan.Less}, {">", plan.Greater}} {
			if strings.Contains(ps, cand.s) {
				opName, op = cand.s, cand.op
				break
			}
		}
		if opName == "" {
			return nil, fmt.Errorf("bad predicate %q: no < <= > >=", ps)
		}
		l, r, _ := strings.Cut(ps, opName)
		li, err := col(l)
		if err != nil {
			return nil, err
		}
		ri, err := col(r)
		if err != nil {
			return nil, err
		}
		dc.Preds = append(dc.Preds, cleaning.Pred{LeftField: li, Op: op, RightField: ri})
	}
	if len(parts) > 2 {
		fixSpec, ok := strings.CutPrefix(parts[2], "fix=")
		if !ok {
			return nil, fmt.Errorf("bad -dc trailer %q: want fix=col", parts[2])
		}
		fi, err := col(fixSpec)
		if err != nil {
			return nil, err
		}
		dc.FixField = fi
	}
	return dc, nil
}
