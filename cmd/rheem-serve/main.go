// Command rheem-serve runs the multi-tenant job service: an HTTP/JSON
// API executing many tenants' jobs concurrently over one shared
// cross-platform engine, with admission control (bounded queue,
// per-tenant quotas and rate limits), per-job deadlines, per-tenant
// platform health, and graceful drain.
//
// Usage:
//
//	rheem-serve [-addr :8080] [-max-active N] [-queue-depth N] [-pool N]
//	            [-drain-timeout DUR] [-deadline DUR] [-atom-timeout DUR]
//	            [-tenant-concurrent N] [-tenant-queued N]
//	            [-tenant-rate R] [-catalog-scale N]
//	            [-profile-history N] [-profile-dir DIR]
//	            [-calibration] [-calibration-dir DIR]
//
// Endpoints: POST /jobs, GET /jobs, GET /jobs/{id},
// GET /jobs/{id}/result, DELETE /jobs/{id}, GET /tenants, GET /healthz,
// plus /metrics, /runs, /runs/{id}/profile, /runs/{id}/trace.json,
// /calibration and /debug/pprof from the telemetry hub.
//
// The flight recorder keeps a bounded history of completed-run
// profiles (-profile-history, negative disables); -profile-dir
// persists them so the history survives a restart.
//
// Calibration (on by default, -calibration=false disables) folds every
// finished job's estimate-vs-actual residuals into a cost calibrator
// shared across all tenants, so the optimizer's platform choices
// improve with the service's live traffic; -calibration-dir persists
// the learned state across restarts. Inspect it at GET /calibration
// and via the rheem_calibration_* metrics.
//
// Shutdown: the first SIGTERM/SIGINT starts a graceful drain — stop
// admitting (503), let queued and running jobs finish (force-cancelled
// at -drain-timeout), flush telemetry, exit. A second signal escalates
// to kill: in-flight jobs are cancelled immediately. Either way every
// accepted job reaches an observable terminal state.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rheem/internal/service"
	"rheem/internal/storage"
	"rheem/internal/storage/csvstore"
)

// onListen, when non-nil, receives the bound address (tests).
var onListen func(addr string)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	if err := run(os.Args[1:], os.Stdout, os.Stderr, sig); err != nil {
		fmt.Fprintln(os.Stderr, "rheem-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("rheem-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	maxActive := fs.Int("max-active", 0, "max jobs executing at once (0 = default 4)")
	queueDepth := fs.Int("queue-depth", 0, "max accepted-but-unstarted jobs before shedding (0 = default 64)")
	pool := fs.Int("pool", 0, "shared scheduler pool slots across all jobs (0 = NumCPU)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget before force-cancelling")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-job deadline")
	atomTimeout := fs.Duration("atom-timeout", 10*time.Second, "default per-atom attempt timeout")
	tenantConcurrent := fs.Int("tenant-concurrent", 0, "per-tenant concurrent-job quota (0 = default 2)")
	tenantQueued := fs.Int("tenant-queued", 0, "per-tenant queued-job quota (0 = default 16)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant submissions/sec rate limit (0 = unlimited)")
	catalogScale := fs.Int("catalog-scale", 0, "rows in the SQL catalog tables (0 = full size)")
	profileHistory := fs.Int("profile-history", 0, "completed-run profiles the flight recorder retains (0 = default 64, negative disables)")
	profileDir := fs.String("profile-dir", "", "directory persisting flight-recorder profiles across restarts (empty = memory only)")
	calibration := fs.Bool("calibration", true, "learn cost corrections from finished jobs (shared across tenants)")
	calibrationDir := fs.String("calibration-dir", "", "directory persisting learned calibration across restarts (empty = memory only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profiles *storage.Manager
	if *profileDir != "" {
		st, err := csvstore.New(*profileDir)
		if err != nil {
			return fmt.Errorf("profile store: %w", err)
		}
		profiles = storage.NewManager(0, nil)
		if err := profiles.Register(st); err != nil {
			return fmt.Errorf("profile store: %w", err)
		}
	}
	var calibrations *storage.Manager
	if *calibrationDir != "" {
		st, err := csvstore.New(*calibrationDir)
		if err != nil {
			return fmt.Errorf("calibration store: %w", err)
		}
		calibrations = storage.NewManager(0, nil)
		if err := calibrations.Register(st); err != nil {
			return fmt.Errorf("calibration store: %w", err)
		}
	}

	svc, err := service.New(service.Config{
		MaxActiveJobs: *maxActive,
		QueueDepth:    *queueDepth,
		PoolSize:      *pool,
		DrainTimeout:  *drainTimeout,
		DefaultQuota: service.Quota{
			MaxConcurrent: *tenantConcurrent,
			MaxQueued:     *tenantQueued,
			RatePerSec:    *tenantRate,
		},
		DefaultDeadline:    *deadline,
		DefaultAtomTimeout: *atomTimeout,
		CatalogScale:       *catalogScale,
		ProfileHistory:     *profileHistory,
		ProfileStore:       profiles,
		Calibration:        *calibration,
		CalibrationStore:   calibrations,
	})
	if err != nil {
		return err
	}
	srv, bound, err := svc.Serve(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "rheem-serve listening on %s\n", bound)
	if onListen != nil {
		onListen(bound)
	}

	<-sig
	fmt.Fprintln(stdout, "rheem-serve: signal received, draining (signal again to kill)")
	drained := make(chan service.DrainReport, 1)
	go func() {
		rep, err := svc.Drain(context.Background())
		if err != nil {
			fmt.Fprintln(stderr, "rheem-serve: drain:", err)
		}
		drained <- rep
	}()
	var rep service.DrainReport
	select {
	case rep = <-drained:
	case <-sig:
		fmt.Fprintln(stdout, "rheem-serve: second signal, killing in-flight jobs")
		svc.Kill()
		rep = <-drained
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	svc.Close()
	fmt.Fprintf(stdout, "rheem-serve: drained in %s (forced=%v), bye\n",
		rep.Duration.Round(time.Millisecond), rep.Forced)
	return nil
}
