package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startServe runs run() in a goroutine on a free port with a fake
// signal channel and returns the bound address plus the channels to
// signal and join it.
func startServe(t *testing.T, extraArgs ...string) (addr string, sig chan os.Signal, done chan error, out *lockedBuffer) {
	t.Helper()
	listening := make(chan string, 1)
	onListen = func(a string) { listening <- a }
	t.Cleanup(func() { onListen = nil })

	sig = make(chan os.Signal, 2)
	done = make(chan error, 1)
	out = &lockedBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-catalog-scale", "500"}, extraArgs...)
	go func() { done <- run(args, out, out, sig) }()

	select {
	case addr = <-listening:
	case err := <-done:
		t.Fatalf("run exited before listening: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never started listening")
	}
	return addr, sig, done, out
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeLifecycle submits a job over HTTP, polls it to success,
// sends SIGTERM, and verifies the server drains and exits cleanly
// without force-cancelling anything.
func TestServeLifecycle(t *testing.T) {
	addr, sig, done, out := startServe(t)
	base := "http://" + addr

	body := `{"tenant":"acme","spec":{"kind":"workload","workload":"wordcount","n":300,"seed":7}}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, payload)
	}
	var acked struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &acked); err != nil {
		t.Fatal(err)
	}

	var st struct {
		State  string `json:"state"`
		Err    string `json:"error"`
		Digest string `json:"digest"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + acked.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == "succeeded" || st.State == "failed" || st.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != "succeeded" {
		t.Fatalf("job ended %s (%s)", st.State, st.Err)
	}
	if st.Digest == "" {
		t.Fatal("succeeded job has no digest")
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not exit after SIGTERM\n%s", out.String())
	}
	log := out.String()
	if !strings.Contains(log, "draining") || !strings.Contains(log, "forced=false") {
		t.Fatalf("drain log missing expected lines:\n%s", log)
	}
}

// TestServeSecondSignalKills piles jobs behind a one-slot scheduler
// pool so the drain takes a while, then verifies a second SIGTERM
// escalates to Kill and the process exits with the escalation logged.
func TestServeSecondSignalKills(t *testing.T) {
	addr, sig, done, out := startServe(t, "-pool", "1", "-max-active", "1",
		"-drain-timeout", "60s", "-deadline", "2m")
	base := "http://" + addr

	body := `{"tenant":"acme","spec":{"kind":"workload","workload":"fanout","n":3000,"branches":6,"seed":3}}`
	for i := 0; i < 4; i++ {
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, payload)
		}
	}

	sig <- syscall.SIGTERM
	// Wait for the drain to observably start (healthz flips to 503),
	// then escalate.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			break // listener already gone — drain finished on its own
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	sig <- syscall.SIGTERM

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not exit after second SIGTERM\n%s", out.String())
	}
	if log := out.String(); !strings.Contains(log, "second signal") && !strings.Contains(log, "forced=false") {
		t.Fatalf("neither kill escalation nor clean drain logged:\n%s", log)
	}
}

// TestServeBadFlags ensures flag errors surface as errors, not hangs.
func TestServeBadFlags(t *testing.T) {
	var out lockedBuffer
	if err := run([]string{"-no-such-flag"}, &out, &out, make(chan os.Signal)); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestServeProfileSurvivesRestart boots the server with a profile
// directory, runs a job, captures its profile and Perfetto export over
// HTTP, restarts the process loop on the same directory, and verifies
// both documents come back byte-identical.
func TestServeProfileSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	fetch := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}
	stop := func(sig chan os.Signal, done chan error) {
		t.Helper()
		sig <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("server did not exit after SIGTERM")
		}
	}

	addr, sig, done, _ := startServe(t, "-profile-dir", dir)
	base := "http://" + addr
	body := `{"tenant":"acme","spec":{"kind":"workload","workload":"wordcount","n":300,"seed":7}}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, payload)
	}
	var acked struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &acked); err != nil {
		t.Fatal(err)
	}

	// Poll until terminal AND annotated with the service phases — the
	// annotation lands just after the job turns terminal.
	var runID int64
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
			Err   string `json:"error"`
			RunID int64  `json:"run_id"`
		}
		json.Unmarshal(fetch(base, "/jobs/"+acked.ID), &st)
		if st.State == "succeeded" {
			runID = st.RunID
			var prof struct {
				Phases []struct{} `json:"phases"`
			}
			json.Unmarshal(fetch(base, fmt.Sprintf("/runs/%d/profile", runID)), &prof)
			if len(prof.Phases) >= 3 {
				break
			}
		} else if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job ended %s (%s)", st.State, st.Err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished annotated (state %s)", acked.ID, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	profPath := fmt.Sprintf("/runs/%d/profile", runID)
	tracePath := fmt.Sprintf("/runs/%d/trace.json", runID)
	wantProf := fetch(base, profPath)
	wantTrace := fetch(base, tracePath)
	stop(sig, done)

	addr2, sig2, done2, _ := startServe(t, "-profile-dir", dir)
	base2 := "http://" + addr2
	if got := fetch(base2, profPath); !bytes.Equal(wantProf, got) {
		t.Errorf("profile changed across restart:\nbefore: %s\nafter:  %s", wantProf, got)
	}
	if got := fetch(base2, tracePath); !bytes.Equal(wantTrace, got) {
		t.Errorf("Perfetto export changed across restart:\nbefore: %s\nafter:  %s", wantTrace, got)
	}
	stop(sig2, done2)
}
