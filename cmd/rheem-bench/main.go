// Command rheem-bench regenerates the paper's evaluation artifacts
// (Figure 2, both sides of Figure 3) plus this reproduction's ablation
// experiments (E4–E9: extensibility, multi-platform choice, adaptive
// re-optimization, concurrent scheduling, fault tolerance). See
// DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured comparisons.
//
// Usage:
//
//	rheem-bench [-experiment all|fig2|fig3left|fig3right|iejoin|multiplatform|optimizer|reopt|parallelism|chaos]
//	            [-quick] [-clock sim|wall] [-csv DIR] [-v] [-trace FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rheem"
	"rheem/internal/bench"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run, or 'all'")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	clock := flag.String("clock", "sim", "reported clock: 'sim' (simulated cluster time) or 'wall'")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	verbose := flag.Bool("v", false, "log progress")
	mappings := flag.Bool("mappings", false, "print the declarative operator-mapping table and exit")
	tracePath := flag.String("trace", "", "run a traced demo job and dump its span trace as JSON lines to FILE ('-' for stdout), then exit")
	flag.Parse()

	if *mappings {
		ctx, err := rheem.NewContext(rheem.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(ctx.Registry().DescribeMappings())
		return
	}

	if *tracePath != "" {
		out := io.WriteCloser(os.Stdout)
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
				os.Exit(1)
			}
			out = f
		}
		err := traceDump(out)
		if *tracePath != "-" {
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.Config{Quick: *quick}
	switch *clock {
	case "sim":
	case "wall":
		cfg.WallClock = true
	default:
		fmt.Fprintf(os.Stderr, "rheem-bench: unknown clock %q\n", *clock)
		os.Exit(2)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	names := bench.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for _, name := range names {
		tables, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			t.Print(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, name, i, t); err != nil {
					fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

// traceDump runs a small multi-platform demo job with tracing enabled
// and writes the span trace as JSON lines — one self-contained object
// per span, then one per estimate-vs-actual audit record. The output
// is flame-friendly: every line has start/end stamps and durations in
// nanoseconds, ready for jq or a flame-chart converter.
func traceDump(w io.Writer) error {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		return err
	}
	recs := make([]data.Record, 5000)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i)), data.Int(int64(i%7)))
	}
	b := plan.NewBuilder("trace-demo")
	src := b.Source("ints", plan.Collection(recs))
	src.CardHint = int64(len(recs))
	f := b.Filter(src, func(r data.Record) (bool, error) {
		return r.Field(1).Int() != 0, nil
	})
	f.Selectivity = 0.5 // deliberately off (actual ≈ 6/7) so the audit has signal
	red := b.ReduceByKey(f, plan.FieldKey(1), func(a, b data.Record) (data.Record, error) {
		return data.NewRecord(a.Field(0), data.Int(a.Field(1).Int()+b.Field(1).Int())), nil
	})
	b.Collect(red)

	_, rep, err := ctx.Execute(b.MustBuild(), rheem.WithTracing())
	if err != nil {
		return err
	}
	return rep.Trace.WriteJSON(w)
}

func writeCSV(dir, name string, i int, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suffix := ""
	if i > 0 {
		suffix = fmt.Sprintf("_%d", i)
	}
	path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+suffix+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
