// Command rheem-bench regenerates the paper's evaluation artifacts
// (Figure 2, both sides of Figure 3) plus this reproduction's ablation
// experiments (E4–E11: extensibility, multi-platform choice, adaptive
// re-optimization, concurrent scheduling, fault tolerance, live
// telemetry, sharded intra-atom execution). See DESIGN.md §6 for the
// experiment index and EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Usage:
//
//	rheem-bench [-experiment all|fig2|fig3left|fig3right|iejoin|multiplatform|optimizer|reopt|parallelism|chaos|telemetry|sharding]
//	            [-quick] [-clock sim|wall] [-csv DIR] [-v] [-trace FILE]
//	            [-profile FILE] [-perfetto FILE]
//	            [-metrics ADDR] [-linger DUR] [-scrape URL]
//	rheem-bench -suite [-tier short|full] [-areas a,b] [-out DIR] [-quick] [-v]
//	rheem-bench -compare OLD NEW [-threshold PCT] [-metric wall|sim]
//	            [-allocs-threshold PCT] [-rps-threshold PCT]
//
// -suite runs the fixed benchmark scenario matrix (the E1/E5/E8/E11
// cores plus the E12 job-service load) with warmup + repetitions and
// writes one machine-readable BENCH_<area>.json per area — the repo's
// persisted perf trajectory; -areas restricts the run to a subset.
// -compare diffs two such result sets (files or directories), prints a
// per-scenario delta table, and exits 1 if any scenario regressed more
// than the threshold (default 10%) on the time metric, allocs/op
// growth, or records/s drop (each sub-threshold inherits -threshold
// when 0; negative disables it).
//
// -profile runs the same demo job as -trace with the flight recorder
// attached and writes the analyzed run profile — critical path, time
// attribution per platform and operator, top atoms — as JSON; -perfetto
// additionally writes the Chrome-trace-event export, loadable in
// ui.perfetto.dev or chrome://tracing.
//
// With -metrics ADDR the process serves /metrics (Prometheus text
// exposition), /runs (live per-run JSON progress) and /debug/pprof
// while the experiments execute, and prints a final scrape to stdout
// when they finish. -scrape URL turns the binary into a dependency-free
// scrape validator (for CI): GET the URL, check 200 and that the body
// parses as Prometheus exposition or JSON, then exit.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rheem"
	"rheem/internal/bench"
	"rheem/internal/bench/suite"
	"rheem/internal/core/metrics"
	"rheem/internal/core/plan"
	"rheem/internal/core/profile"
	"rheem/internal/data"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run, or 'all'")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	clock := flag.String("clock", "sim", "reported clock: 'sim' (simulated cluster time) or 'wall'")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	verbose := flag.Bool("v", false, "log progress")
	mappings := flag.Bool("mappings", false, "print the declarative operator-mapping table and exit")
	tracePath := flag.String("trace", "", "run a traced demo job and dump its span trace as JSON lines to FILE ('-' for stdout), then exit")
	profilePath := flag.String("profile", "", "run the demo job under the flight recorder and write its analyzed profile as JSON to FILE ('-' for stdout), then exit")
	perfettoPath := flag.String("perfetto", "", "with -profile: also write the Chrome-trace-event export to FILE")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /runs and /debug/pprof on ADDR while experiments run, then print a final scrape to stdout")
	linger := flag.Duration("linger", 0, "with -metrics: keep serving this long after the experiments finish")
	scrapeURL := flag.String("scrape", "", "GET URL, validate the response (Prometheus exposition or JSON), then exit")
	suiteMode := flag.Bool("suite", false, "run the benchmark scenario matrix and write BENCH_<area>.json files")
	tier := flag.String("tier", "short", "suite tier: 'short' (CI-sized) or 'full'")
	outDir := flag.String("out", ".", "with -suite: directory to write BENCH_*.json into")
	comparePath := flag.String("compare", "", "compare this baseline result set (file or dir) against NEW (first positional arg), then exit")
	threshold := flag.Float64("threshold", suite.DefaultThresholdPct, "with -compare: regression threshold in percent")
	compareMetric := flag.String("metric", "wall", "with -compare: metric to gate on, 'wall' or 'sim'")
	allocsThreshold := flag.Float64("allocs-threshold", 0, "with -compare: allocs/op growth threshold in percent (0 inherits -threshold, negative disables)")
	rpsThreshold := flag.Float64("rps-threshold", 0, "with -compare: records/s drop threshold in percent (0 inherits -threshold, negative disables)")
	areasFlag := flag.String("areas", "", "with -suite: comma-separated area filter (e.g. core,service)")
	flag.Parse()

	if *comparePath != "" {
		// flag stops parsing at the first positional, so in
		// `-compare OLD NEW -threshold 10` everything from NEW on lands
		// in Args(). Take NEW, then re-parse the rest as flags.
		rest := flag.Args()
		if len(rest) >= 1 && len(rest[0]) > 0 && rest[0][0] != '-' {
			if err := flag.CommandLine.Parse(rest[1:]); err != nil {
				os.Exit(2)
			}
			rest = append(rest[:1], flag.Args()...)
		}
		if len(rest) != 1 {
			fmt.Fprintln(os.Stderr, "rheem-bench: -compare OLD NEW needs exactly one positional argument (the new result set)")
			os.Exit(2)
		}
		regressions, err := runCompare(*comparePath, rest[0], suite.CompareOptions{
			ThresholdPct:       *threshold,
			Metric:             *compareMetric,
			AllocsThresholdPct: *allocsThreshold,
			RPSThresholdPct:    *rpsThreshold,
		}, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: compare: %v\n", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *suiteMode {
		scfg := suiteConfig{tier: *tier, outDir: *outDir, quick: *quick, areas: splitAreas(*areasFlag)}
		if *verbose {
			scfg.verbose = os.Stderr
		}
		if err := runSuite(scfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: suite: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *scrapeURL != "" {
		if err := scrape(*scrapeURL, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: scrape: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *mappings {
		ctx, err := rheem.NewContext(rheem.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(ctx.Registry().DescribeMappings())
		return
	}

	if *tracePath != "" {
		out := io.WriteCloser(os.Stdout)
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
				os.Exit(1)
			}
			out = f
		}
		// Buffer the line stream, and treat a failed Flush or Close as
		// a failed dump: a truncated JSONL file must not exit 0.
		buf := bufio.NewWriter(out)
		err := traceDump(buf)
		if ferr := buf.Flush(); err == nil {
			err = ferr
		}
		if *tracePath != "-" {
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *profilePath != "" {
		out := io.WriteCloser(os.Stdout)
		if *profilePath != "-" {
			f, err := os.Create(*profilePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
				os.Exit(1)
			}
			out = f
		}
		buf := bufio.NewWriter(out)
		err := profileDump(buf, *perfettoPath)
		if ferr := buf.Flush(); err == nil {
			err = ferr
		}
		if *profilePath != "-" {
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: profile: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.Config{Quick: *quick}
	switch *clock {
	case "sim":
	case "wall":
		cfg.WallClock = true
	default:
		fmt.Fprintf(os.Stderr, "rheem-bench: unknown clock %q\n", *clock)
		os.Exit(2)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	var srv *metrics.Server
	if *metricsAddr != "" {
		cfg.Hub = metrics.NewHub()
		srv = metrics.NewServer(cfg.Hub)
		addr, err := srv.Start(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rheem-bench: serving /metrics, /runs, /debug/pprof on http://%s\n", addr)
	}

	names := bench.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for _, name := range names {
		tables, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			t.Print(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, name, i, t); err != nil {
					fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}

	if srv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "rheem-bench: experiments done, serving %v longer on http://%s\n", *linger, srv.Addr())
			time.Sleep(*linger)
		}
		fmt.Println("--- final /metrics scrape ---")
		if err := cfg.Hub.Registry().WriteProm(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := srv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// scrape is the -scrape mode: a dependency-free monitoring validator
// for CI. It GETs url, requires a 200, and checks that the body
// actually parses — Prometheus text exposition for text/plain
// responses, JSON otherwise — echoing the body to w on success.
func scrape(url string, w io.Writer) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		if _, err := metrics.ParseProm(bytes.NewReader(body)); err != nil {
			return fmt.Errorf("%s: invalid Prometheus exposition: %w", url, err)
		}
	} else if !json.Valid(body) {
		return fmt.Errorf("%s: response is neither Prometheus text nor valid JSON", url)
	}
	_, err = w.Write(body)
	return err
}

// traceDump runs a small multi-platform demo job with tracing enabled
// and writes the span trace as JSON lines — one self-contained object
// per span, then one per estimate-vs-actual audit record. The output
// is flame-friendly: every line has start/end stamps and durations in
// nanoseconds, ready for jq or a flame-chart converter.
func traceDump(w io.Writer) error {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		return err
	}
	_, rep, err := ctx.Execute(demoPlan(), rheem.WithTracing())
	if err != nil {
		return err
	}
	return rep.Trace.WriteJSON(w)
}

// demoPlan builds the demo job -trace and -profile share: a filter with
// a deliberately wrong selectivity (0.5 vs the actual ≈ 6/7, so the
// estimate-vs-actual audit has signal) feeding a per-key reduction.
func demoPlan() *plan.Plan {
	recs := make([]data.Record, 5000)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i)), data.Int(int64(i%7)))
	}
	b := plan.NewBuilder("trace-demo")
	src := b.Source("ints", plan.Collection(recs))
	src.CardHint = int64(len(recs))
	f := b.Filter(src, func(r data.Record) (bool, error) {
		return r.Field(1).Int() != 0, nil
	})
	f.Selectivity = 0.5
	red := b.ReduceByKey(f, plan.FieldKey(1), func(a, b data.Record) (data.Record, error) {
		return data.NewRecord(a.Field(0), data.Int(a.Field(1).Int()+b.Field(1).Int())), nil
	})
	b.Collect(red)
	return b.MustBuild()
}

// profileDump is the -profile mode: run the demo job with the flight
// recorder attached and write its analyzed profile (critical path, time
// attribution, top atoms) as indented JSON; a non-empty perfettoPath
// additionally receives the Chrome-trace-event export.
func profileDump(w io.Writer, perfettoPath string) error {
	rec := profile.NewRecorder(1, nil)
	ctx, err := rheem.NewContext(rheem.Config{}, rheem.WithFlightRecorder(rec))
	if err != nil {
		return err
	}
	_, rep, err := ctx.Execute(demoPlan())
	if err != nil {
		return err
	}
	r, ok := rec.Get(rep.RunID)
	if !ok {
		return fmt.Errorf("no profile recorded for run %d", rep.RunID)
	}
	b, err := json.MarshalIndent(r.Profile, "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return err
	}
	if perfettoPath != "" {
		f, err := os.Create(perfettoPath)
		if err != nil {
			return err
		}
		werr := r.WritePerfetto(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}
	return nil
}

func writeCSV(dir, name string, i int, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suffix := ""
	if i > 0 {
		suffix = fmt.Sprintf("_%d", i)
	}
	path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+suffix+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
