// Command rheem-bench regenerates the paper's evaluation artifacts
// (Figure 2, both sides of Figure 3) plus this reproduction's ablation
// experiments (E4–E9: extensibility, multi-platform choice, adaptive
// re-optimization, concurrent scheduling, fault tolerance). See
// DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured comparisons.
//
// Usage:
//
//	rheem-bench [-experiment all|fig2|fig3left|fig3right|iejoin|multiplatform|optimizer|reopt|parallelism|chaos]
//	            [-quick] [-clock sim|wall] [-csv DIR] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rheem"
	"rheem/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment to run, or 'all'")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	clock := flag.String("clock", "sim", "reported clock: 'sim' (simulated cluster time) or 'wall'")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	verbose := flag.Bool("v", false, "log progress")
	mappings := flag.Bool("mappings", false, "print the declarative operator-mapping table and exit")
	flag.Parse()

	if *mappings {
		ctx, err := rheem.NewContext(rheem.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(ctx.Registry().DescribeMappings())
		return
	}

	cfg := bench.Config{Quick: *quick}
	switch *clock {
	case "sim":
	case "wall":
		cfg.WallClock = true
	default:
		fmt.Fprintf(os.Stderr, "rheem-bench: unknown clock %q\n", *clock)
		os.Exit(2)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	names := bench.Experiments()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for _, name := range names {
		tables, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rheem-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		for i, t := range tables {
			t.Print(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, name, i, t); err != nil {
					fmt.Fprintf(os.Stderr, "rheem-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

func writeCSV(dir, name string, i int, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	suffix := ""
	if i > 0 {
		suffix = fmt.Sprintf("_%d", i)
	}
	path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+suffix+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}
