package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rheem/internal/core/metrics"
	"rheem/internal/core/trace"
)

func TestTraceDumpEmitsValidJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := traceDump(&buf); err != nil {
		t.Fatal(err)
	}
	var spans, audits, flagged int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		if v, _ := line["schema"].(float64); v != trace.JSONSchema {
			t.Errorf("line schema = %v, want %d: %v", line["schema"], trace.JSONSchema, line)
		}
		switch line["type"] {
		case "span":
			spans++
			for _, key := range []string{"id", "platform", "wall_ns", "started_at", "ended_at", "est_cost_ns"} {
				if _, ok := line[key]; !ok {
					t.Errorf("span line missing %q: %v", key, line)
				}
			}
		case "audit":
			audits++
			if f, _ := line["flagged"].(bool); f {
				flagged++
			}
		default:
			t.Errorf("unknown line type %v", line["type"])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if spans == 0 {
		t.Error("dump contains no spans")
	}
	if audits == 0 {
		t.Error("dump contains no audit records")
	}
	if flagged == 0 {
		t.Error("the demo job's deliberately wrong selectivity was not flagged")
	}
}

// TestScrapeValidates exercises the -scrape mode CI leans on: a real
// monitoring server's endpoints must pass, and a lying endpoint — 200
// with garbage — must fail rather than slip through.
func TestScrapeValidates(t *testing.T) {
	hub := metrics.NewHub()
	hub.Registry().CounterVec("rheem_atoms_total", "Atoms.", "platform").With("java").Add(3)
	srv := metrics.NewServer(hub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	if err := scrape("http://"+addr+"/metrics", &out); err != nil {
		t.Errorf("scrape /metrics: %v", err)
	}
	if !strings.Contains(out.String(), "rheem_atoms_total") {
		t.Errorf("scrape did not echo the body: %q", out.String())
	}
	if err := scrape("http://"+addr+"/runs", io.Discard); err != nil {
		t.Errorf("scrape /runs: %v", err)
	}
	if err := scrape("http://"+addr+"/nope", io.Discard); err == nil {
		t.Error("scrape of a 404 endpoint did not fail")
	}

	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, "this is not { prometheus\n")
	}))
	defer liar.Close()
	if err := scrape(liar.URL, io.Discard); err == nil {
		t.Error("scrape of unparseable exposition did not fail")
	}
	liarJSON := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"runs":`)
	}))
	defer liarJSON.Close()
	if err := scrape(liarJSON.URL, io.Discard); err == nil {
		t.Error("scrape of truncated JSON did not fail")
	}
}
