package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rheem/internal/bench/suite"
	"rheem/internal/core/metrics"
	"rheem/internal/core/trace"
)

func TestTraceDumpEmitsValidJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := traceDump(&buf); err != nil {
		t.Fatal(err)
	}
	var spans, audits, flagged int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		if v, _ := line["schema"].(float64); v != trace.JSONSchema {
			t.Errorf("line schema = %v, want %d: %v", line["schema"], trace.JSONSchema, line)
		}
		switch line["type"] {
		case "span":
			spans++
			for _, key := range []string{"id", "platform", "wall_ns", "started_at", "ended_at", "est_cost_ns"} {
				if _, ok := line[key]; !ok {
					t.Errorf("span line missing %q: %v", key, line)
				}
			}
		case "audit":
			audits++
			if f, _ := line["flagged"].(bool); f {
				flagged++
			}
		default:
			t.Errorf("unknown line type %v", line["type"])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if spans == 0 {
		t.Error("dump contains no spans")
	}
	if audits == 0 {
		t.Error("dump contains no audit records")
	}
	if flagged == 0 {
		t.Error("the demo job's deliberately wrong selectivity was not flagged")
	}
}

// TestProfileDumpEmitsProfileAndPerfetto pins the -profile mode: the
// demo job's analyzed profile comes out as JSON with a critical path
// obeying the wall-clock invariant, and -perfetto writes a parseable
// Chrome-trace-event document.
func TestProfileDumpEmitsProfileAndPerfetto(t *testing.T) {
	perfettoFile := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := profileDump(&buf, perfettoFile); err != nil {
		t.Fatal(err)
	}
	var prof struct {
		Schema         int   `json:"schema"`
		RunID          int64 `json:"run_id"`
		WallNS         int64 `json:"wall_ns"`
		CriticalPathNS int64 `json:"critical_path_ns"`
		CriticalPath   []struct {
			Name string `json:"name"`
		} `json:"critical_path"`
		TopAtoms []struct{} `json:"top_atoms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &prof); err != nil {
		t.Fatalf("profile output not JSON: %v\n%s", err, buf.String())
	}
	if prof.CriticalPathNS <= 0 || prof.CriticalPathNS > prof.WallNS {
		t.Errorf("critical path %dns vs wall %dns violates the invariant", prof.CriticalPathNS, prof.WallNS)
	}
	if len(prof.CriticalPath) == 0 || len(prof.TopAtoms) == 0 {
		t.Errorf("profile missing path/top atoms:\n%s", buf.String())
	}

	raw, err := os.ReadFile(perfettoFile)
	if err != nil {
		t.Fatal(err)
	}
	var pf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &pf); err != nil {
		t.Fatalf("perfetto output not JSON: %v\n%s", err, raw)
	}
	if pf.DisplayTimeUnit != "ms" || len(pf.TraceEvents) == 0 {
		t.Errorf("perfetto document malformed: unit %q, %d events", pf.DisplayTimeUnit, len(pf.TraceEvents))
	}
}

// TestScrapeValidates exercises the -scrape mode CI leans on: a real
// monitoring server's endpoints must pass, and a lying endpoint — 200
// with garbage — must fail rather than slip through.
func TestScrapeValidates(t *testing.T) {
	hub := metrics.NewHub()
	hub.Registry().CounterVec("rheem_atoms_total", "Atoms.", "platform").With("java").Add(3)
	srv := metrics.NewServer(hub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out bytes.Buffer
	if err := scrape("http://"+addr+"/metrics", &out); err != nil {
		t.Errorf("scrape /metrics: %v", err)
	}
	if !strings.Contains(out.String(), "rheem_atoms_total") {
		t.Errorf("scrape did not echo the body: %q", out.String())
	}
	if err := scrape("http://"+addr+"/runs", io.Discard); err != nil {
		t.Errorf("scrape /runs: %v", err)
	}
	if err := scrape("http://"+addr+"/nope", io.Discard); err == nil {
		t.Error("scrape of a 404 endpoint did not fail")
	}

	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		io.WriteString(w, "this is not { prometheus\n")
	}))
	defer liar.Close()
	if err := scrape(liar.URL, io.Discard); err == nil {
		t.Error("scrape of unparseable exposition did not fail")
	}
	liarJSON := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"runs":`)
	}))
	defer liarJSON.Close()
	if err := scrape(liarJSON.URL, io.Discard); err == nil {
		t.Error("scrape of truncated JSON did not fail")
	}
}

// TestSuiteAndCompareEndToEnd exercises the -suite/-tier/-out and
// -compare flag paths the way CI does: run the short tier into a temp
// dir, compare the result set against itself, and require zero
// regressions — then doctor a copy and require the regression to gate.
func TestSuiteAndCompareEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := runSuite(suiteConfig{tier: suite.TierShort, outDir: dir, quick: true}, &out); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 3 {
		t.Fatalf("suite wrote %d BENCH files (%v), want >= 3", len(matches), matches)
	}
	for _, area := range []string{"core", "parallel", "sharding"} {
		path := filepath.Join(dir, suite.Filename(area))
		if _, err := os.Stat(path); err != nil {
			t.Errorf("suite did not write %s: %v", suite.Filename(area), err)
		}
	}
	if !strings.Contains(out.String(), "BENCH_core.json") {
		t.Errorf("summary does not mention BENCH_core.json:\n%s", out.String())
	}

	// Self-compare: zero regressions, whatever the noise, because both
	// sides are byte-identical.
	out.Reset()
	regressions, err := runCompare(dir, dir, suite.CompareOptions{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("self-compare found %d regressions:\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "OK: no regressions") {
		t.Errorf("self-compare output missing OK line:\n%s", out.String())
	}

	// Doctor one area: inflate every wall by 2x — a certain >10%
	// regression that must be reported and counted.
	doctored := t.TempDir()
	files, err := suite.LoadSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		for i := range f.Scenarios {
			f.Scenarios[i].WallNS *= 2
			f.Scenarios[i].SimNS *= 2
		}
	}
	if err := suite.WriteFiles(doctored, files); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	regressions, err = runCompare(dir, doctored, suite.CompareOptions{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions == 0 {
		t.Fatalf("2x-slower result set produced no regressions:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("regressing compare output missing FAIL line:\n%s", out.String())
	}

	// The reverse direction is an improvement, not a regression.
	out.Reset()
	regressions, err = runCompare(doctored, dir, suite.CompareOptions{}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Errorf("improvement gated as regression:\n%s", out.String())
	}

	// A single-file compare works too, and mismatched areas error.
	core := filepath.Join(dir, suite.Filename("core"))
	if _, err := runCompare(core, core, suite.CompareOptions{}, io.Discard); err != nil {
		t.Errorf("single-file self-compare: %v", err)
	}
	shard := filepath.Join(dir, suite.Filename("sharding"))
	if _, err := runCompare(core, shard, suite.CompareOptions{}, io.Discard); err == nil {
		t.Error("comparing mismatched areas did not error")
	}

	// Unreadable inputs and bad options surface as errors (exit 2 in
	// main), never as a clean zero-regression pass.
	if _, err := runCompare(filepath.Join(dir, "nope.json"), core, suite.CompareOptions{}, io.Discard); err == nil {
		t.Error("missing old path did not error")
	}
	if _, err := runCompare(core, core, suite.CompareOptions{Metric: "bogus"}, io.Discard); err == nil {
		t.Error("bogus metric did not error")
	}
}

// TestSuiteRejectsUnknownTier covers the -tier validation path.
func TestSuiteRejectsUnknownTier(t *testing.T) {
	err := runSuite(suiteConfig{tier: "medium", outDir: t.TempDir()}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown tier") {
		t.Errorf("unknown tier error = %v, want named tier error", err)
	}
}
