package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceDumpEmitsValidJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := traceDump(&buf); err != nil {
		t.Fatal(err)
	}
	var spans, audits, flagged int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		switch line["type"] {
		case "span":
			spans++
			for _, key := range []string{"id", "platform", "wall_ns", "started_at", "ended_at", "est_cost_ns"} {
				if _, ok := line[key]; !ok {
					t.Errorf("span line missing %q: %v", key, line)
				}
			}
		case "audit":
			audits++
			if f, _ := line["flagged"].(bool); f {
				flagged++
			}
		default:
			t.Errorf("unknown line type %v", line["type"])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if spans == 0 {
		t.Error("dump contains no spans")
	}
	if audits == 0 {
		t.Error("dump contains no audit records")
	}
	if flagged == 0 {
		t.Error("the demo job's deliberately wrong selectivity was not flagged")
	}
}
