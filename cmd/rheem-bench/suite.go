// The -suite and -compare modes: the benchmark-suite harness that
// persists the repo's perf trajectory as BENCH_<area>.json files and
// gates regressions against a previous run (ROADMAP item 5).

package main

import (
	"fmt"
	"io"
	"os/exec"
	"strings"
	"time"

	"rheem/internal/bench/suite"
)

// suiteConfig carries the -suite flag set.
type suiteConfig struct {
	tier    string
	outDir  string
	quick   bool
	areas   []string  // empty = all areas
	verbose io.Writer // nil = silent
}

// splitAreas parses the -areas flag: comma-separated, blanks dropped.
func splitAreas(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// runSuite executes the scenario matrix and writes one
// BENCH_<area>.json per area into outDir, printing a summary table.
func runSuite(cfg suiteConfig, stdout io.Writer) error {
	files, err := suite.Run(suite.Options{
		Tier:   cfg.tier,
		Quick:  cfg.quick,
		Log:    cfg.verbose,
		Commit: gitCommit(),
		Areas:  cfg.areas,
	})
	if err != nil {
		return err
	}
	if err := suite.WriteFiles(cfg.outDir, files); err != nil {
		return err
	}
	for _, f := range files {
		fmt.Fprintf(stdout, "== %s (tier %s, %s/%s, %s) ==\n",
			suite.Filename(f.Area), f.Tier, f.Env.GOOS, f.Env.GOARCH, f.Env.GoVersion)
		for _, r := range f.Scenarios {
			noisy := ""
			if r.Noisy {
				noisy = fmt.Sprintf("  NOISY (spread %.0f%%)", r.SpreadPct)
			}
			fmt.Fprintf(stdout, "  %-22s wall %-12v sim %-12v %12.0f rec/s  p99 %-10v allocs/op %d%s\n",
				r.Name,
				time.Duration(r.WallNS).Round(10*time.Microsecond),
				time.Duration(r.SimNS).Round(10*time.Microsecond),
				r.RecordsPerSec,
				time.Duration(r.P99LatencyNS).Round(10*time.Microsecond),
				r.AllocsPerOp, noisy)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// runCompare diffs two result sets (each a BENCH_*.json file or a
// directory of them) and returns the number of regressions past the
// threshold. Callers map regressions>0 to a non-zero exit.
func runCompare(oldPath, newPath string, opts suite.CompareOptions, stdout io.Writer) (int, error) {
	oldSet, err := suite.LoadSet(oldPath)
	if err != nil {
		return 0, err
	}
	newSet, err := suite.LoadSet(newPath)
	if err != nil {
		return 0, err
	}
	comparisons, err := suite.CompareSets(oldSet, newSet, opts)
	if err != nil {
		return 0, err
	}
	for _, c := range comparisons {
		c.WriteTable(stdout)
	}
	n := suite.Regressions(comparisons)
	if n > 0 {
		fmt.Fprintf(stdout, "FAIL: %d scenario(s) regressed past the threshold\n", n)
	} else {
		fmt.Fprintln(stdout, "OK: no regressions past the threshold")
	}
	return n, nil
}

// gitCommit best-effort resolves the working tree's short commit hash
// for the BENCH env metadata; empty when git or the repo is absent.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
