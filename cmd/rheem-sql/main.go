// Command rheem-sql runs RheemQL queries (a SQL subset, see package
// rheemql) over typed-header CSV files, on the optimizer-chosen
// platform or a pinned one.
//
// Usage:
//
//	rheem-sql -table name=file.csv [-table name2=file2.csv]
//	          [-platform auto|java|spark|relational] [-explain] 'SELECT ...'
//
// With -demo, a synthetic tax table named "tax" is registered instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rheem"
	"rheem/internal/apps/rheemql"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rheem-sql: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var tables tableFlags
	flag.Var(&tables, "table", "name=file.csv (repeatable)")
	platform := flag.String("platform", "auto", "auto|java|spark|relational")
	explain := flag.Bool("explain", false, "print the execution plan instead of rows")
	demo := flag.Int("demo", 0, "register a synthetic 'tax' table of this size")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("need exactly one query argument")
	}
	sql := flag.Arg(0)

	cat := rheemql.NewCatalog()
	if *demo > 0 {
		recs := datagen.Tax(datagen.TaxConfig{N: *demo, Zips: *demo/50 + 1, ErrorRate: 0.02, Seed: 1})
		if err := cat.Register("tax", datagen.TaxSchema, recs); err != nil {
			return err
		}
	}
	for _, spec := range tables {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q: want name=file.csv", spec)
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		schema, recs, err := data.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := cat.Register(name, schema, recs); err != nil {
			return err
		}
	}

	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		return err
	}
	var opts []rheem.RunOption
	switch *platform {
	case "auto":
	case "java":
		opts = append(opts, rheem.OnPlatform(javaengine.ID))
	case "spark":
		opts = append(opts, rheem.OnPlatform(sparksim.ID))
	case "relational":
		opts = append(opts, rheem.OnPlatform(relengine.ID))
	default:
		return fmt.Errorf("unknown platform %q", *platform)
	}

	if *explain {
		q, err := rheemql.Parse(sql)
		if err != nil {
			return err
		}
		compiled, err := rheemql.Compile(q, cat)
		if err != nil {
			return err
		}
		out, err := ctx.Explain(compiled.Plan, opts...)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	recs, schema, rep, err := rheemql.Run(ctx, cat, sql, opts...)
	if err != nil {
		return err
	}
	if err := data.WriteCSV(os.Stdout, schema, recs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d rows (wall %v, simulated %v, %d jobs)\n",
		len(recs), rep.Metrics.Wall.Round(1e6), rep.Metrics.Sim.Round(1e6), rep.Metrics.Jobs)
	return nil
}
