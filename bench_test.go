// Benchmarks: one testing.B target per paper artifact (see DESIGN.md
// §2). These run the same code paths as cmd/rheem-bench at reduced
// sizes so `go test -bench=.` finishes quickly; the full sweeps that
// regenerate the figures live behind the rheem-bench binary.
package rheem_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"rheem"
	"rheem/internal/apps/cleaning"
	"rheem/internal/apps/graph"
	"rheem/internal/apps/ml"
	"rheem/internal/bench"
	"rheem/internal/core/engine"
	"rheem/internal/core/metrics"
	"rheem/internal/core/plan"
	"rheem/internal/core/profile"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func benchCtx(b *testing.B) *rheem.Context {
	b.Helper()
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

// --- E1 / Figure 2 -------------------------------------------------------

func benchSVM(b *testing.B, n int, platform engine.PlatformID) {
	ctx := benchCtx(b)
	pts := datagen.Points(datagen.PointsConfig{N: n, Dim: 10, Noise: 0.05, Seed: uint64(n)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpl := ml.SVM(pts, ml.GradientConfig{Iterations: 10, Dim: 10})
		if _, _, err := tpl.Run(ctx, rheem.OnPlatform(platform)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2SVMJava(b *testing.B) {
	b.Run("n=1000", func(b *testing.B) { benchSVM(b, 1_000, javaengine.ID) })
	b.Run("n=10000", func(b *testing.B) { benchSVM(b, 10_000, javaengine.ID) })
}

func BenchmarkFig2SVMSpark(b *testing.B) {
	b.Run("n=1000", func(b *testing.B) { benchSVM(b, 1_000, sparksim.ID) })
	b.Run("n=10000", func(b *testing.B) { benchSVM(b, 10_000, sparksim.ID) })
}

// --- E2 / Figure 3 left --------------------------------------------------

func fig3Fixture(b *testing.B, n int) ([]data.Record, *cleaning.Detector, cleaning.FD, *rheem.Context) {
	b.Helper()
	ctx := benchCtx(b)
	fd := cleaning.FD{RuleName: "zip->city", ID: datagen.TaxID,
		LHS: []int{datagen.TaxZip}, RHS: []int{datagen.TaxCity}}
	det, err := cleaning.NewDetector(ctx, fd)
	if err != nil {
		b.Fatal(err)
	}
	recs := datagen.Tax(datagen.TaxConfig{N: n, Zips: n / 50, ErrorRate: 0.01, Seed: uint64(n)})
	return recs, det, fd, ctx
}

func BenchmarkFig3LeftPipeline(b *testing.B) {
	recs, det, _, _ := fig3Fixture(b, 5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Detect(recs, rheem.OnPlatform(sparksim.ID)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3LeftMonolithic(b *testing.B) {
	recs, det, fd, _ := fig3Fixture(b, 5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.DetectMonolithic(fd, recs, rheem.OnPlatform(sparksim.ID)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3 / Figure 3 right -------------------------------------------------

func BenchmarkFig3RightBigDansing(b *testing.B) {
	recs, det, _, _ := fig3Fixture(b, 5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Detect(recs, rheem.OnPlatform(sparksim.ID)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3RightSelfJoin(b *testing.B) {
	recs, det, fd, _ := fig3Fixture(b, 5_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.DetectSelfJoin(fd, recs, rheem.OnPlatform(sparksim.ID)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4 / IEJoin ----------------------------------------------------------

func dcFixture(b *testing.B, n int) ([]data.Record, cleaning.DenialConstraint, *rheem.Context) {
	b.Helper()
	ctx := benchCtx(b)
	dc := cleaning.DenialConstraint{RuleName: "salary-rate", ID: datagen.TaxID,
		Preds: []cleaning.Pred{
			{LeftField: datagen.TaxSalary, Op: plan.Greater, RightField: datagen.TaxSalary},
			{LeftField: datagen.TaxRate, Op: plan.Less, RightField: datagen.TaxRate},
		}, FixField: datagen.TaxRate}
	recs := datagen.Tax(datagen.TaxConfig{N: n, Zips: 50, ErrorRate: 0.002, Seed: uint64(n)})
	return recs, dc, ctx
}

func BenchmarkIEJoinDetection(b *testing.B) {
	recs, dc, ctx := dcFixture(b, 5_000)
	det, err := cleaning.NewDetector(ctx, dc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Detect(recs, rheem.OnPlatform(sparksim.ID)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThetaCartesianDetection(b *testing.B) {
	recs, dc, ctx := dcFixture(b, 2_000)
	det, err := cleaning.NewDetector(ctx, cleaning.StripConditions(dc))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.Detect(recs, rheem.OnPlatform(sparksim.ID)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5 / multi-platform pipeline ----------------------------------------

func benchSensorPipeline(b *testing.B, opts ...rheem.RunOption) {
	ctx := benchCtx(b)
	readings := datagen.Sensors(datagen.SensorConfig{N: 20_000, Wells: 32, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := ctx.NewJob("sensors").
			ReadCollection("r", readings).
			Map(func(r data.Record) (data.Record, error) {
				return data.NewRecord(r.Field(0), data.Float(r.Field(2).Float()*6.894), data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), func(a, c data.Record) (data.Record, error) {
				return data.NewRecord(a.Field(0),
					data.Float(a.Field(1).Float()+c.Field(1).Float()),
					data.Int(a.Field(2).Int()+c.Field(2).Int())), nil
			}).
			Collect(opts...)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiPlatformFree(b *testing.B) { benchSensorPipeline(b) }
func BenchmarkMultiPlatformJava(b *testing.B) {
	benchSensorPipeline(b, rheem.OnPlatform(javaengine.ID))
}
func BenchmarkMultiPlatformSpark(b *testing.B) { benchSensorPipeline(b, rheem.OnPlatform(sparksim.ID)) }
func BenchmarkMultiPlatformRel(b *testing.B)   { benchSensorPipeline(b, rheem.OnPlatform(relengine.ID)) }

// --- E6 / optimizer choice ------------------------------------------------

func BenchmarkOptimizerChoice(b *testing.B) {
	ctx := benchCtx(b)
	pts := datagen.Points(datagen.PointsConfig{N: 5_000, Dim: 10, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tpl := ml.SVM(pts, ml.GradientConfig{Iterations: 5, Dim: 10})
		if _, _, err := tpl.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeOnly isolates plan optimization (no execution).
func BenchmarkOptimizeOnly(b *testing.B) {
	ctx := benchCtx(b)
	recs := datagen.ZipfInts(1000, 50, 1)
	p, err := ctx.NewJob("opt").
		ReadCollection("in", recs).
		Filter(func(r data.Record) (bool, error) { return true, nil }, 0.5).
		ReduceByKey(plan.FieldKey(0), plan.SumField(0)).
		Sort(plan.FieldKey(0), false).
		Plan()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Explain(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8 / concurrent DAG scheduler ----------------------------------------

// BenchmarkExecutorParallelism runs the wide fan-out diamond (8 map
// branches pinned across platforms, per-record work in each branch) at
// different scheduler worker-pool bounds. Parallelism 1 reproduces the
// sequential executor; higher bounds overlap independent atoms.
func BenchmarkExecutorParallelism(b *testing.B) {
	ctx := benchCtx(b)
	const branches, recs = 8, 20
	const delay = 500 * time.Microsecond
	for _, par := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunFanOut(ctx.Registry(), branches, recs, delay, par)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Records) != branches*recs {
					b.Fatalf("%d records", len(res.Records))
				}
			}
		})
	}
}

// BenchmarkExecutorParallelismMetrics is BenchmarkExecutorParallelism
// with the span stream feeding a live telemetry hub — the acceptance
// benchmark for the metrics layer's hot-path cost (must stay within a
// few percent of the untraced run).
func BenchmarkExecutorParallelismMetrics(b *testing.B) {
	ctx := benchCtx(b)
	hub := metrics.NewHub()
	const branches, recs = 8, 20
	const delay = 500 * time.Microsecond
	for _, par := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunFanOutTraced(ctx.Registry(), hub, branches, recs, delay, par)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Records) != branches*recs {
					b.Fatalf("%d records", len(res.Records))
				}
			}
		})
	}
}

// BenchmarkExecutorParallelismProfiled adds the flight recorder on top
// of the live hub: every run's trace snapshot is folded into the
// bounded profile history (critical path, attribution, Perfetto-ready
// spans). The acceptance bar is the profiler's overhead over
// BenchmarkExecutorParallelismMetrics — it must stay under a few
// percent, since profile analysis runs once per run, off the atom hot
// path.
func BenchmarkExecutorParallelismProfiled(b *testing.B) {
	ctx := benchCtx(b)
	hub := metrics.NewHub()
	hub.SetFlightRecorder(profile.NewRecorder(8, nil))
	const branches, recs = 8, 20
	const delay = 500 * time.Microsecond
	for _, par := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunFanOutTraced(ctx.Registry(), hub, branches, recs, delay, par)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Records) != branches*recs {
					b.Fatalf("%d records", len(res.Records))
				}
			}
		})
	}
}

// --- E11 / sharded intra-atom execution -----------------------------------

// BenchmarkShardedExecution runs the wide single-atom chain (one
// source feeding a Map+Filter chain with per-record work — no
// independent branches, so inter-atom scheduling cannot help) at shard
// fan-out 1 vs GOMAXPROCS (at least 4, since the fan-out models
// platform slots, not host threads). The sharded variant's wall time
// shrinks toward the slowest shard; records are identical either way.
func BenchmarkShardedExecution(b *testing.B) {
	ctx := benchCtx(b)
	const recs = 200
	const delay = 100 * time.Microsecond
	wide := runtime.GOMAXPROCS(0)
	if wide < 4 {
		wide = 4
	}
	for _, shards := range []int{1, wide} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunWide(ctx.Registry(), recs, delay, shards)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Records) != bench.WideRecords(recs) {
					b.Fatalf("%d records", len(res.Records))
				}
			}
		})
	}
}

// BenchmarkFailover compares the fan-out diamond on a healthy branch
// platform against the same plan when that platform dies after one
// execution: the delta is the cost of the retry → circuit-breaker →
// cross-platform-failover recovery path (re-planning included).
func BenchmarkFailover(b *testing.B) {
	const branches, recs = 4, 20
	for _, sc := range []struct {
		name      string
		failAfter int
	}{
		{"clean", -1},
		{"failover", 1},
	} {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := bench.RunChaos(branches, recs, 0, sc.failAfter)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Records) != branches*recs {
					b.Fatalf("%d records", len(res.Records))
				}
				if sc.failAfter >= 0 && res.Failovers == 0 {
					b.Fatal("platform died but no failover happened")
				}
			}
		})
	}
}

// --- application-level extras ---------------------------------------------

func BenchmarkPageRank(b *testing.B) {
	ctx := benchCtx(b)
	edges := datagen.Graph(datagen.GraphConfig{Nodes: 500, Edges: 3_000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.PageRank(ctx, edges, graph.PageRankConfig{Iterations: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepair(b *testing.B) {
	recs, det, fd, _ := fig3Fixture(b, 5_000)
	vs, _, err := det.Detect(recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cleaning.Repair(recs, vs, []cleaning.Rule{fd}, datagen.TaxID); err != nil {
			b.Fatal(err)
		}
	}
}
