// Package rheem is a Go implementation of RHEEM, the cross-platform
// data analytics system envisioned in "Road to Freedom in Big Data
// Analytics" (Agrawal et al., EDBT 2016).
//
// RHEEM frees analytic applications from being tied to a single data
// processing platform. Tasks are written once against logical
// operators (UDF templates over data quanta); a multi-platform
// optimizer translates them through platform-independent physical
// operators into execution operators on the platform — or combination
// of platforms — predicted to be fastest, moving data across platform
// boundaries through priced conversion channels.
//
// This implementation bundles three platforms: a single-node in-process
// engine, a simulated Spark-like distributed engine, and a mini
// relational engine (see DESIGN.md for the substitution rationale).
// New platforms plug in through the engine.Platform SPI plus
// declarative operator mappings, without touching the optimizer.
//
// # Quick start
//
//	ctx, _ := rheem.NewContext(rheem.Config{})
//	job := ctx.NewJob("wordcount")
//	out, _, err := job.ReadCollection(words).
//		ReduceByKey(plan.FieldKey(0), countReducer).
//		Collect()
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// reproduction of the paper's figures.
package rheem

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/metrics"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/core/profile"
	"rheem/internal/core/trace"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

// Config selects and tunes the bundled platforms. The zero value
// enables all three with defaults.
type Config struct {
	DisableJava       bool
	DisableSpark      bool
	DisableRelational bool

	Java       javaengine.Config
	Spark      sparksim.Config
	Relational relengine.Config
	// DB shares an existing relational catalog with the context; nil
	// creates a fresh one.
	DB *relengine.DB

	// Columnar enables vectorized batch execution on the single-node
	// engine: filter/projection/aggregate operators built with the
	// column-hint helpers (plan.FilterWhere, ProjectCols, AggregateCols)
	// run columnar kernels over the channel.Batch format instead of
	// calling their UDF per record, and the optimizer prices the batch
	// conversion edges so plans adopt the format where it wins. Results
	// are byte-identical to the row path (see DESIGN.md §9). Off by
	// default.
	Columnar bool
}

// ContextOption customises a Context beyond the platform Config —
// today, live telemetry: where (and whether) to serve monitoring
// endpoints, and which telemetry hub to feed.
type ContextOption func(*ctxOptions)

type ctxOptions struct {
	metricsAddr string
	hub         *metrics.Hub
	recorder    *profile.Recorder
	calibrator  *cost.Calibrator
}

// WithMetricsAddr starts the context's embedded monitoring server on
// addr (":0" picks a free port): /metrics serves Prometheus text
// exposition, /runs live per-Execute progress as JSON, and
// /debug/pprof the Go runtime profiles. Stop it with Context.Close.
func WithMetricsAddr(addr string) ContextOption {
	return func(o *ctxOptions) { o.metricsAddr = addr }
}

// WithTelemetryHub feeds this context's telemetry into an existing
// hub instead of a private one — how several sequential or concurrent
// contexts (an experiment harness's, say) share one monitoring server.
func WithTelemetryHub(h *metrics.Hub) ContextOption {
	return func(o *ctxOptions) { o.hub = h }
}

// WithFlightRecorder attaches a run flight recorder to the context's
// hub: every Execute's span trace is folded into a per-run Profile
// (critical path, queue/compute/conversion/retry attribution, Perfetto
// export) kept in the recorder's bounded history and served by the
// monitoring endpoints /runs/{id}/profile and /runs/{id}/trace.json,
// keyed by Report.RunID.
func WithFlightRecorder(rec *profile.Recorder) ContextOption {
	return func(o *ctxOptions) { o.recorder = rec }
}

// WithCalibration attaches a cost calibrator to the context's hub,
// closing the optimizer's audit loop: every Execute folds its
// completed run's estimate-vs-actual cost and cardinality residuals
// into the calibrator, and every optimization (first plan, adaptive
// re-optimization, failover re-plan) multiplies its model costs by the
// learned per-(operator kind, platform) correction factors — so
// platform choices improve with traffic instead of relying on
// hand-set constants. Pass a calibrator rehydrated from storage to
// keep learning across restarts, or share one calibrator between
// contexts (via a shared hub or the same calibrator value) to pool
// their traffic. Inspect it at GET /calibration and through the
// rheem_calibration_* metrics.
//
//	cal := cost.NewCalibrator(cost.CalibratorConfig{})
//	ctx, _ := rheem.NewContext(rheem.Config{}, rheem.WithCalibration(cal))
func WithCalibration(cal *cost.Calibrator) ContextOption {
	return func(o *ctxOptions) { o.calibrator = cal }
}

// Context owns the platform registry and is the entry point for
// building and executing jobs. A Context is safe to reuse across jobs.
type Context struct {
	reg   *engine.Registry
	java  *javaengine.Platform
	spark *sparksim.Platform
	rel   *relengine.Platform

	hub    *metrics.Hub
	monSrv *metrics.Server
}

// NewContext registers the configured platforms and their mappings.
func NewContext(cfg Config, opts ...ContextOption) (*Context, error) {
	var co ctxOptions
	for _, o := range opts {
		o(&co)
	}
	c := &Context{reg: engine.NewRegistry(), hub: co.hub}
	if c.hub == nil {
		c.hub = metrics.NewHub()
	}
	var err error
	if cfg.Columnar {
		cfg.Java.Columnar = true
	}
	if !cfg.DisableJava {
		if c.java, err = javaengine.Register(c.reg, cfg.Java); err != nil {
			return nil, err
		}
	}
	if !cfg.DisableSpark {
		if c.spark, err = sparksim.Register(c.reg, cfg.Spark); err != nil {
			return nil, err
		}
	}
	if !cfg.DisableRelational {
		if c.rel, err = relengine.Register(c.reg, cfg.DB, cfg.Relational); err != nil {
			return nil, err
		}
	}
	if len(c.reg.Platforms()) == 0 {
		return nil, fmt.Errorf("rheem: no platforms enabled")
	}
	// Scrape-time state — breaker gauges, platform failure counters,
	// conversion traffic — comes straight from the live registries.
	c.hub.BindEngine(c.reg)
	c.hub.BindChannels(c.reg.Channels())
	if co.recorder != nil {
		c.hub.SetFlightRecorder(co.recorder)
	}
	if co.calibrator != nil {
		c.hub.SetCalibrator(co.calibrator)
	}
	if co.metricsAddr != "" {
		if _, err := c.ServeMetrics(co.metricsAddr); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Telemetry returns the context's telemetry hub: the live metrics
// registry (scrape it with Hub.Registry().WriteProm, snapshot it for
// assertions) and the run tracker behind the /runs endpoint.
func (c *Context) Telemetry() *metrics.Hub { return c.hub }

// ServeMetrics starts the embedded monitoring server on addr (":0"
// picks a free port) and returns the bound address. The server serves
// /metrics, /runs and /debug/pprof for this context's telemetry hub
// until Close.
func (c *Context) ServeMetrics(addr string) (string, error) {
	if c.monSrv == nil {
		c.monSrv = metrics.NewServer(c.hub)
	}
	return c.monSrv.Start(addr)
}

// MetricsAddr returns the monitoring server's bound address, or ""
// when no server is running.
func (c *Context) MetricsAddr() string {
	if c.monSrv == nil {
		return ""
	}
	return c.monSrv.Addr()
}

// Close stops the context's monitoring server, if one is running. The
// context itself stays usable — jobs can still execute; only the HTTP
// surface goes away.
func (c *Context) Close() error {
	if c.monSrv == nil {
		return nil
	}
	return c.monSrv.Close()
}

// Registry exposes the platform registry, through which additional
// platforms and operator mappings can be plugged in.
func (c *Context) Registry() *engine.Registry { return c.reg }

// DB returns the relational platform's catalog, or nil if the platform
// is disabled.
func (c *Context) DB() *relengine.DB {
	if c.rel == nil {
		return nil
	}
	return c.rel.DB()
}

// SparkConfig returns the effective Spark-simulator configuration (for
// experiment reporting); the second result is false if the platform is
// disabled.
func (c *Context) SparkConfig() (sparksim.Config, bool) {
	if c.spark == nil {
		return sparksim.Config{}, false
	}
	return c.spark.Config(), true
}

// RunOption customises one execution.
type RunOption func(*runConfig)

type runConfig struct {
	opt     optimizer.Options
	exec    executor.Options
	tracing bool
}

// OnPlatform pins the whole job to one platform — the single-platform
// baselines of the experiments, and an escape hatch for users who know
// better than the optimizer.
func OnPlatform(id engine.PlatformID) RunOption {
	return func(rc *runConfig) { rc.opt.FixedPlatform = id }
}

// WithContext bounds the run with ctx: cancelling it aborts in-flight
// atoms and Execute returns the context's error. A deadline on ctx is
// the whole-job budget (pair it with WithAtomTimeout to also bound
// individual attempts). nil keeps the default background context.
func WithContext(ctx context.Context) RunOption {
	return func(rc *runConfig) { rc.exec.Context = ctx }
}

// WithExcludedPlatforms removes platforms from the optimizer's
// consideration for this run — the job-service's per-tenant isolation
// lever: a tenant whose jobs keep failing on one platform gets it
// excluded from its own plans without quarantining it for anybody
// else. Excluding every registered platform fails optimization.
func WithExcludedPlatforms(ids ...engine.PlatformID) RunOption {
	return func(rc *runConfig) {
		if len(ids) == 0 {
			return
		}
		if rc.opt.ExcludePlatforms == nil {
			rc.opt.ExcludePlatforms = make(map[engine.PlatformID]bool, len(ids))
		}
		for _, id := range ids {
			rc.opt.ExcludePlatforms[id] = true
		}
	}
}

// WithSchedulerPool makes the run draw its atom-execution slots from a
// shared executor.Pool in addition to its own Parallelism bound — how
// a long-running service keeps N concurrent jobs from oversubscribing
// the host with N independent worker pools.
func WithSchedulerPool(p *executor.Pool) RunOption {
	return func(rc *runConfig) { rc.exec.Pool = p }
}

// WithMonitor subscribes to executor progress events.
func WithMonitor(f func(executor.Event)) RunOption {
	return func(rc *runConfig) { rc.exec.Monitor = f }
}

// NoRetries is the WithMaxRetries sentinel for "fail on the first
// error" — 0 means the default budget.
const NoRetries = executor.NoRetries

// WithMaxRetries overrides the executor's failure retry bound (0
// selects the default of 2; NoRetries disables retrying). Failed
// attempts back off exponentially with deterministic jitter, and
// deterministic (fatal) errors such as UDF failures are never retried.
func WithMaxRetries(n int) RunOption {
	return func(rc *runConfig) { rc.exec.MaxRetries = n }
}

// WithAtomTimeout bounds each execution attempt of a single task atom;
// an attempt exceeding the timeout fails with a deadline error and is
// retried like any transient failure. 0 disables the bound.
func WithAtomTimeout(d time.Duration) RunOption {
	return func(rc *runConfig) { rc.exec.AtomTimeout = d }
}

// WithFailover enables cross-platform failover: when a task atom
// exhausts its retries on a platform the health tracker has
// quarantined (circuit breaker open after consecutive failures), the
// executor re-plans the remaining operators on the surviving platforms
// and continues — the run fails only if no capable platform remains.
func WithFailover(on bool) RunOption {
	return func(rc *runConfig) { rc.exec.Failover = on }
}

// WithParallelism bounds how many independent task atoms the executor
// schedules concurrently. 1 forces sequential execution in plan order;
// values below 1 (including the default) mean runtime.NumCPU().
func WithParallelism(n int) RunOption {
	return func(rc *runConfig) { rc.exec.Parallelism = n }
}

// WithShards enables intra-atom data parallelism: a shardable task
// atom's input batch is split into up to n shards that execute
// concurrently on the assigned platform, and the results are merged
// with deterministic, order-preserving semantics — output is
// byte-identical to an unsharded run. Shardable atoms are single-input
// chains of record-wise operators (Map, FlatMap, Filter) optionally
// capped by an aggregation exit (ReduceByKey, Reduce, Count, Distinct,
// Sort); everything else runs whole, exactly as without the option.
// The optimizer is told about the fan-out and discounts shardable
// work on single-node platforms accordingly, so sharding can change
// the platform assignment. n ≤ 0 selects runtime.GOMAXPROCS(0).
func WithShards(n int) RunOption {
	return func(rc *runConfig) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		rc.opt.Shards = n
		rc.exec.Shards = n
	}
}

// WithoutRules disables optimizer rewrite rules for this run.
func WithoutRules() RunOption {
	return func(rc *runConfig) { rc.opt.DisableRules = true }
}

// WithReOptimize toggles adaptive re-optimization: when the executor's
// cardinality audit exposes a gross estimation miss at an atom
// boundary, the remaining plan is re-planned with the observed
// statistics.
func WithReOptimize(on bool) RunOption {
	return func(rc *runConfig) { rc.exec.ReOptimize = on }
}

// WithTracing enables cross-layer observability for the run: the
// Report carries the full span trace (one span per executed task atom
// — queue wait, per-attempt latency, conversion volume, chosen
// platform — plus the optimizer's estimate-vs-actual audit trail) and
// a snapshot of the per-platform execution counters. Trace.WriteJSON
// dumps the trace as flame-friendly JSON lines.
func WithTracing() RunOption {
	return func(rc *runConfig) { rc.tracing = true }
}

// Report describes how a job ran: the chosen execution plan and the
// aggregate metrics (wall time, simulated cluster time, shuffled and
// moved bytes, jobs, retries).
type Report struct {
	// Plan is the execution plan that finished the run (after adaptive
	// re-optimization, the replacement plan).
	Plan    *optimizer.ExecutionPlan
	Metrics engine.Metrics
	// Mismatches lists cardinality estimates the executor's audit
	// flagged as grossly wrong.
	Mismatches []executor.CardMismatch
	// Reoptimized reports whether adaptive re-optimization replaced
	// the plan mid-run.
	Reoptimized bool
	// Failovers counts cross-platform failover re-plans (only non-zero
	// under WithFailover).
	Failovers int
	// PlatformHealth is the per-platform circuit-breaker state at the
	// end of the run.
	PlatformHealth map[engine.PlatformID]engine.BreakerState
	// Trace is the run's span trace and estimate-vs-actual audit trail;
	// nil unless the run was started WithTracing.
	Trace *trace.Trace
	// PlatformStats snapshots the registry's per-platform execution
	// counters after the run (cumulative across the context's runs);
	// nil unless the run was started WithTracing. The snapshot is a
	// deep copy: mutating it cannot alias live registry state.
	PlatformStats map[engine.PlatformID]engine.PlatformStats
	// Telemetry is a deep-copied snapshot of the context's live metrics
	// registry taken when the run finished — the same numbers the
	// /metrics endpoint serves (cumulative across the hub's runs); nil
	// unless the run was started WithTracing.
	Telemetry *metrics.Snapshot
	// RunID is the telemetry hub's identity for this execution — the
	// key into /runs, /runs/{id}/profile and /runs/{id}/trace.json.
	// Set whenever the run reached the executor, on failure too.
	RunID int64
}

// Execute optimizes and runs a logical plan, returning the sink's
// records and the run report. Every execution feeds the context's
// telemetry hub: while the plan runs, /metrics and /runs (see
// WithMetricsAddr) show its live progress.
func (c *Context) Execute(p *plan.Plan, opts ...RunOption) ([]data.Record, *Report, error) {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	phys, err := physical.FromLogical(p)
	if err != nil {
		return nil, nil, err
	}
	// The hub's shared calibrator (if any) corrects this plan's costs
	// and re-plans mid-run with the same corrections.
	cal := c.hub.Calibrator()
	rc.opt.Calibration = cal
	rc.exec.Calibration = cal
	ep, err := optimizer.Optimize(phys, c.reg, rc.opt)
	if err != nil {
		return nil, nil, err
	}
	tracer, run := c.hub.NewRunTracer(p.Name())
	rc.exec.Tracer = tracer
	res, err := executor.Run(ep, c.reg, rc.exec)
	run.End(err)
	// The flight recorder sees every run, failed ones included — the
	// tracer's snapshot has whatever spans completed before the error.
	// The calibrator likewise folds whatever finished: completed spans
	// of a failed run are still evidence about the cost model.
	snap := tracer.Snapshot()
	if rec := c.hub.FlightRecorder(); rec != nil {
		rec.Record(run.ID(), p.Name(), run.Started(), run.Ended(), err, snap)
	}
	if cal != nil {
		cal.Fold(profile.Observations(snap.Spans, snap.Audits))
	}
	if err != nil {
		return nil, &Report{Plan: ep, RunID: run.ID()}, err
	}
	finalPlan := res.FinalPlan
	if finalPlan == nil {
		finalPlan = ep
	}
	rep := &Report{
		Plan:           finalPlan,
		Metrics:        res.Metrics,
		Mismatches:     res.Mismatches,
		Reoptimized:    res.Reoptimized,
		Failovers:      res.Failovers,
		PlatformHealth: res.PlatformHealth,
		RunID:          run.ID(),
	}
	if rc.tracing {
		rep.Trace = res.Trace
		rep.PlatformStats = c.reg.Stats().Snapshot()
		rep.Telemetry = c.hub.Registry().Snapshot()
	}
	return res.Records, rep, nil
}

// Explain optimizes a logical plan and renders the execution plan —
// platform assignments, algorithms, task atoms — without running it.
func (c *Context) Explain(p *plan.Plan, opts ...RunOption) (string, error) {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	phys, err := physical.FromLogical(p)
	if err != nil {
		return "", err
	}
	rc.opt.Calibration = c.hub.Calibrator()
	ep, err := optimizer.Optimize(phys, c.reg, rc.opt)
	if err != nil {
		return "", err
	}
	return ep.String(), nil
}
