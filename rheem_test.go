package rheem_test

import (
	"sort"
	"strings"
	"testing"

	"rheem"
	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

// allPlatforms are the run configurations every correctness test is
// repeated under: each platform pinned, plus free optimizer choice.
var allPlatforms = []struct {
	name string
	opts []rheem.RunOption
}{
	{"java", []rheem.RunOption{rheem.OnPlatform(javaengine.ID)}},
	{"spark", []rheem.RunOption{rheem.OnPlatform(sparksim.ID)}},
	{"relational", []rheem.RunOption{rheem.OnPlatform(relengine.ID)}},
	{"optimizer", nil},
}

func newCtx(t *testing.T) *rheem.Context {
	t.Helper()
	// Small overheads keep tests fast while still exercising the
	// virtual clock.
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e6, TaskOverhead: 1e5}, // 1ms, 0.1ms
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func sortedStrings(recs []data.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func assertSameResult(t *testing.T, build func(*rheem.Job) *rheem.DataQuanta) {
	t.Helper()
	ctx := newCtx(t)
	var want []string
	for _, pc := range allPlatforms {
		recs, rep, err := build(ctx.NewJob("t-" + pc.name)).Collect(pc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		got := sortedStrings(recs)
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d\n got: %v\nwant: %v", pc.name, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d = %s, want %s", pc.name, i, got[i], want[i])
			}
		}
		if rep.Metrics.Jobs < 1 {
			t.Errorf("%s: no jobs recorded", pc.name)
		}
		if rep.Metrics.Sim <= 0 {
			t.Errorf("%s: simulated time not accounted", pc.name)
		}
	}
}

func TestWordCountAllPlatforms(t *testing.T) {
	words := datagen.Words(500, 1)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("words", words).
			Map(func(r data.Record) (data.Record, error) {
				return r.Append(data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), plan.SumField(1))
	})
}

func TestFilterSortAllPlatforms(t *testing.T) {
	recs := datagen.ZipfInts(300, 50, 3)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("ints", recs).
			Filter(func(r data.Record) (bool, error) {
				return r.Field(0).Int()%2 == 0, nil
			}, 0.5).
			Distinct().
			Sort(plan.FieldKey(0), false)
	})
}

func TestJoinAllPlatforms(t *testing.T) {
	var left, right []data.Record
	for i := int64(0); i < 60; i++ {
		left = append(left, data.NewRecord(data.Int(i%10), data.Int(i)))
	}
	for i := int64(0); i < 20; i++ {
		right = append(right, data.NewRecord(data.Int(i%10), data.Str("r")))
	}
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		l := j.ReadCollection("l", left)
		r := j.ReadCollection("r", right)
		return l.Join(r, plan.FieldKey(0), plan.FieldKey(0))
	})
}

func TestThetaJoinIEConditionsAllPlatforms(t *testing.T) {
	var left, right []data.Record
	for i := int64(0); i < 40; i++ {
		left = append(left, data.NewRecord(data.Int(i%13), data.Int((i*7)%11)))
		right = append(right, data.NewRecord(data.Int(i%7), data.Int(i%5)))
	}
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Greater, RightField: 0},
		{LeftField: 1, Op: plan.Less, RightField: 1},
	}
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		l := j.ReadCollection("l", left)
		r := j.ReadCollection("r", right)
		return l.ThetaJoin(r, nil, conds...)
	})
}

func TestCartesianCountAllPlatforms(t *testing.T) {
	a := datagen.Words(15, 5)
	b := datagen.Words(11, 6)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("a", a).
			Cartesian(j.ReadCollection("b", b)).
			Count()
	})
}

func TestUnionGroupByAllPlatforms(t *testing.T) {
	a := datagen.ZipfInts(100, 10, 7)
	b := datagen.ZipfInts(80, 10, 8)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("a", a).
			Union(j.ReadCollection("b", b)).
			GroupBy(plan.FieldKey(0), func(k data.Value, grp []data.Record) ([]data.Record, error) {
				return []data.Record{data.NewRecord(k, data.Int(int64(len(grp))))}, nil
			}).
			Sort(plan.FieldKey(0), false)
	})
}

func TestRepeatLoopAllPlatforms(t *testing.T) {
	// State: single record holding a counter; the body increments it.
	init := []data.Record{data.NewRecord(data.Int(0))}
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("init", init).
			Repeat(7, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
				return state.Map(func(r data.Record) (data.Record, error) {
					return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
				})
			})
	})
	// And explicitly check the value.
	ctx := newCtx(t)
	recs, _, err := ctx.NewJob("repeat").ReadCollection("init", init).
		Repeat(7, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			return state.Map(func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
			})
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Field(0).Int() != 7 {
		t.Fatalf("loop result = %v", recs)
	}
}

func TestDoWhileLoop(t *testing.T) {
	ctx := newCtx(t)
	init := []data.Record{data.NewRecord(data.Int(1))}
	recs, _, err := ctx.NewJob("dowhile").ReadCollection("init", init).
		DoWhile(func(_ int, state []data.Record) (bool, error) {
			return state[0].Field(0).Int() < 100, nil
		}, 50, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			return state.Map(func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() * 2)), nil
			})
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	// 1 →2→4→...→128 (first value ≥ 100 stops the loop).
	if len(recs) != 1 || recs[0].Field(0).Int() != 128 {
		t.Fatalf("dowhile result = %v", recs)
	}
}

func TestLoopBodyWithSource(t *testing.T) {
	// The body joins loop state (a threshold) with data read inside the
	// body — the broadcast-style pattern the ML application uses.
	points := datagen.ZipfInts(50, 30, 9)
	ctx := newCtx(t)
	init := []data.Record{data.NewRecord(data.Int(0))}
	recs, _, err := ctx.NewJob("bodysource").ReadCollection("init", init).
		Repeat(3, func(lb *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			pts := lb.ReadCollection("points", points)
			// state × points, keep the max point value seen, add 1.
			return state.Cartesian(pts).
				Reduce(plan.MaxByField(1)).
				Map(func(r data.Record) (data.Record, error) {
					return data.NewRecord(data.Int(r.Field(1).Int() + 1)), nil
				})
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	var maxVal int64
	for _, p := range points {
		if p.Field(0).Int() > maxVal {
			maxVal = p.Field(0).Int()
		}
	}
	if len(recs) != 1 || recs[0].Field(0).Int() != maxVal+1 {
		t.Fatalf("body-source loop = %v, want %d", recs, maxVal+1)
	}
}

func TestExplainShowsAtomsAndAlgorithms(t *testing.T) {
	ctx := newCtx(t)
	recs := datagen.ZipfInts(1000, 20, 2)
	j := ctx.NewJob("explain")
	q := j.ReadCollection("in", recs).
		ReduceByKey(plan.FieldKey(0), plan.SumField(0)).
		Sort(plan.FieldKey(0), false)
	p, err := q.Plan()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "atom#") {
		t.Errorf("Explain lacks atoms:\n%s", out)
	}
	if !strings.Contains(out, "groupby") && !strings.Contains(out, "GroupBy") && !strings.Contains(out, "ReduceByKey") {
		t.Errorf("Explain lacks operators:\n%s", out)
	}
}

func TestMonitorEvents(t *testing.T) {
	ctx := newCtx(t)
	var starts, dones int
	_, _, err := ctx.NewJob("mon").
		ReadCollection("in", datagen.Words(50, 3)).
		Distinct().
		Collect(rheem.WithMonitor(func(e executor.Event) {
			switch e.Kind {
			case executor.EventAtomStart:
				starts++
			case executor.EventAtomDone:
				dones++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if starts == 0 || dones != starts {
		t.Errorf("monitor saw %d starts, %d dones", starts, dones)
	}
}

func TestOptimizerPrefersJavaForTinyInput(t *testing.T) {
	// A tiny input with per-job Spark overhead should land on the
	// single-node engine under free choice.
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs := datagen.Words(100, 4)
	j := ctx.NewJob("tiny")
	p, err := j.ReadCollection("in", recs).
		Map(func(r data.Record) (data.Record, error) { return r, nil }).Plan()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "@spark") {
		t.Errorf("tiny input scheduled on spark:\n%s", out)
	}
}

func TestCrossJobCombineRejected(t *testing.T) {
	ctx := newCtx(t)
	a := ctx.NewJob("a").ReadCollection("x", datagen.Words(5, 1))
	b := ctx.NewJob("b").ReadCollection("y", datagen.Words(5, 2))
	if _, _, err := a.Union(b).Collect(); err == nil {
		t.Error("union across jobs accepted")
	}
}

func TestContextRequiresAPlatform(t *testing.T) {
	_, err := rheem.NewContext(rheem.Config{DisableJava: true, DisableSpark: true, DisableRelational: true})
	if err == nil {
		t.Error("context without platforms accepted")
	}
}

func TestPlatformRegistryExposed(t *testing.T) {
	ctx := newCtx(t)
	if len(ctx.Registry().Platforms()) != 3 {
		t.Errorf("got %d platforms", len(ctx.Registry().Platforms()))
	}
	if ctx.DB() == nil {
		t.Error("relational catalog not exposed")
	}
	if _, ok := ctx.SparkConfig(); !ok {
		t.Error("spark config not exposed")
	}
	ids := map[engine.PlatformID]bool{}
	for _, p := range ctx.Registry().Platforms() {
		ids[p.ID()] = true
	}
	for _, want := range []engine.PlatformID{javaengine.ID, sparksim.ID, relengine.ID} {
		if !ids[want] {
			t.Errorf("platform %s missing", want)
		}
	}
}

func TestWithTracingExposesTraceAndStats(t *testing.T) {
	ctx := newCtx(t)
	words := datagen.Words(300, 2)
	build := func(name string) *rheem.DataQuanta {
		return ctx.NewJob(name).ReadCollection("words", words).
			Map(func(r data.Record) (data.Record, error) {
				return r.Append(data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), plan.SumField(1))
	}

	// Default runs keep the report lean: no trace, no counters.
	_, rep, err := build("untraced").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil || rep.PlatformStats != nil {
		t.Error("untraced run exposed trace or stats")
	}

	_, rep, err = build("traced").Collect(rheem.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("WithTracing run has no trace")
	}
	if len(rep.Trace.Spans) != len(rep.Plan.Atoms) {
		t.Errorf("%d spans for %d plan atoms", len(rep.Trace.Spans), len(rep.Plan.Atoms))
	}
	for _, sp := range rep.Trace.Spans {
		if sp.Platform == "" || sp.Failed() || len(sp.Attempts) == 0 {
			t.Errorf("span = %+v", sp)
		}
	}
	if rep.PlatformStats == nil {
		t.Fatal("WithTracing run has no platform stats")
	}
	for _, id := range rep.Trace.Platforms() {
		if rep.PlatformStats[id].AtomsExecuted == 0 {
			t.Errorf("platform %s ran spans but counted no atoms", id)
		}
	}
}
