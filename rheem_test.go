package rheem_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"

	"rheem"
	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/fault"
	"rheem/internal/core/plan"
	"rheem/internal/core/profile"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

// allPlatforms are the run configurations every correctness test is
// repeated under: each platform pinned, plus free optimizer choice.
var allPlatforms = []struct {
	name string
	opts []rheem.RunOption
}{
	{"java", []rheem.RunOption{rheem.OnPlatform(javaengine.ID)}},
	{"spark", []rheem.RunOption{rheem.OnPlatform(sparksim.ID)}},
	{"relational", []rheem.RunOption{rheem.OnPlatform(relengine.ID)}},
	{"optimizer", nil},
}

func newCtx(t *testing.T) *rheem.Context {
	t.Helper()
	// Small overheads keep tests fast while still exercising the
	// virtual clock.
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e6, TaskOverhead: 1e5}, // 1ms, 0.1ms
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func sortedStrings(recs []data.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func assertSameResult(t *testing.T, build func(*rheem.Job) *rheem.DataQuanta) {
	t.Helper()
	ctx := newCtx(t)
	var want []string
	for _, pc := range allPlatforms {
		recs, rep, err := build(ctx.NewJob("t-" + pc.name)).Collect(pc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", pc.name, err)
		}
		got := sortedStrings(recs)
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d\n got: %v\nwant: %v", pc.name, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d = %s, want %s", pc.name, i, got[i], want[i])
			}
		}
		if rep.Metrics.Jobs < 1 {
			t.Errorf("%s: no jobs recorded", pc.name)
		}
		if rep.Metrics.Sim <= 0 {
			t.Errorf("%s: simulated time not accounted", pc.name)
		}
	}
}

func TestWordCountAllPlatforms(t *testing.T) {
	words := datagen.Words(500, 1)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("words", words).
			Map(func(r data.Record) (data.Record, error) {
				return r.Append(data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), plan.SumField(1))
	})
}

func TestFilterSortAllPlatforms(t *testing.T) {
	recs := datagen.ZipfInts(300, 50, 3)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("ints", recs).
			Filter(func(r data.Record) (bool, error) {
				return r.Field(0).Int()%2 == 0, nil
			}, 0.5).
			Distinct().
			Sort(plan.FieldKey(0), false)
	})
}

func TestJoinAllPlatforms(t *testing.T) {
	var left, right []data.Record
	for i := int64(0); i < 60; i++ {
		left = append(left, data.NewRecord(data.Int(i%10), data.Int(i)))
	}
	for i := int64(0); i < 20; i++ {
		right = append(right, data.NewRecord(data.Int(i%10), data.Str("r")))
	}
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		l := j.ReadCollection("l", left)
		r := j.ReadCollection("r", right)
		return l.Join(r, plan.FieldKey(0), plan.FieldKey(0))
	})
}

func TestThetaJoinIEConditionsAllPlatforms(t *testing.T) {
	var left, right []data.Record
	for i := int64(0); i < 40; i++ {
		left = append(left, data.NewRecord(data.Int(i%13), data.Int((i*7)%11)))
		right = append(right, data.NewRecord(data.Int(i%7), data.Int(i%5)))
	}
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Greater, RightField: 0},
		{LeftField: 1, Op: plan.Less, RightField: 1},
	}
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		l := j.ReadCollection("l", left)
		r := j.ReadCollection("r", right)
		return l.ThetaJoin(r, nil, conds...)
	})
}

func TestCartesianCountAllPlatforms(t *testing.T) {
	a := datagen.Words(15, 5)
	b := datagen.Words(11, 6)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("a", a).
			Cartesian(j.ReadCollection("b", b)).
			Count()
	})
}

func TestUnionGroupByAllPlatforms(t *testing.T) {
	a := datagen.ZipfInts(100, 10, 7)
	b := datagen.ZipfInts(80, 10, 8)
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("a", a).
			Union(j.ReadCollection("b", b)).
			GroupBy(plan.FieldKey(0), func(k data.Value, grp []data.Record) ([]data.Record, error) {
				return []data.Record{data.NewRecord(k, data.Int(int64(len(grp))))}, nil
			}).
			Sort(plan.FieldKey(0), false)
	})
}

func TestRepeatLoopAllPlatforms(t *testing.T) {
	// State: single record holding a counter; the body increments it.
	init := []data.Record{data.NewRecord(data.Int(0))}
	assertSameResult(t, func(j *rheem.Job) *rheem.DataQuanta {
		return j.ReadCollection("init", init).
			Repeat(7, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
				return state.Map(func(r data.Record) (data.Record, error) {
					return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
				})
			})
	})
	// And explicitly check the value.
	ctx := newCtx(t)
	recs, _, err := ctx.NewJob("repeat").ReadCollection("init", init).
		Repeat(7, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			return state.Map(func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
			})
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Field(0).Int() != 7 {
		t.Fatalf("loop result = %v", recs)
	}
}

func TestDoWhileLoop(t *testing.T) {
	ctx := newCtx(t)
	init := []data.Record{data.NewRecord(data.Int(1))}
	recs, _, err := ctx.NewJob("dowhile").ReadCollection("init", init).
		DoWhile(func(_ int, state []data.Record) (bool, error) {
			return state[0].Field(0).Int() < 100, nil
		}, 50, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			return state.Map(func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() * 2)), nil
			})
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	// 1 →2→4→...→128 (first value ≥ 100 stops the loop).
	if len(recs) != 1 || recs[0].Field(0).Int() != 128 {
		t.Fatalf("dowhile result = %v", recs)
	}
}

func TestLoopBodyWithSource(t *testing.T) {
	// The body joins loop state (a threshold) with data read inside the
	// body — the broadcast-style pattern the ML application uses.
	points := datagen.ZipfInts(50, 30, 9)
	ctx := newCtx(t)
	init := []data.Record{data.NewRecord(data.Int(0))}
	recs, _, err := ctx.NewJob("bodysource").ReadCollection("init", init).
		Repeat(3, func(lb *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
			pts := lb.ReadCollection("points", points)
			// state × points, keep the max point value seen, add 1.
			return state.Cartesian(pts).
				Reduce(plan.MaxByField(1)).
				Map(func(r data.Record) (data.Record, error) {
					return data.NewRecord(data.Int(r.Field(1).Int() + 1)), nil
				})
		}).Collect()
	if err != nil {
		t.Fatal(err)
	}
	var maxVal int64
	for _, p := range points {
		if p.Field(0).Int() > maxVal {
			maxVal = p.Field(0).Int()
		}
	}
	if len(recs) != 1 || recs[0].Field(0).Int() != maxVal+1 {
		t.Fatalf("body-source loop = %v, want %d", recs, maxVal+1)
	}
}

func TestExplainShowsAtomsAndAlgorithms(t *testing.T) {
	ctx := newCtx(t)
	recs := datagen.ZipfInts(1000, 20, 2)
	j := ctx.NewJob("explain")
	q := j.ReadCollection("in", recs).
		ReduceByKey(plan.FieldKey(0), plan.SumField(0)).
		Sort(plan.FieldKey(0), false)
	p, err := q.Plan()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "atom#") {
		t.Errorf("Explain lacks atoms:\n%s", out)
	}
	if !strings.Contains(out, "groupby") && !strings.Contains(out, "GroupBy") && !strings.Contains(out, "ReduceByKey") {
		t.Errorf("Explain lacks operators:\n%s", out)
	}
}

func TestMonitorEvents(t *testing.T) {
	ctx := newCtx(t)
	var starts, dones int
	_, _, err := ctx.NewJob("mon").
		ReadCollection("in", datagen.Words(50, 3)).
		Distinct().
		Collect(rheem.WithMonitor(func(e executor.Event) {
			switch e.Kind {
			case executor.EventAtomStart:
				starts++
			case executor.EventAtomDone:
				dones++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if starts == 0 || dones != starts {
		t.Errorf("monitor saw %d starts, %d dones", starts, dones)
	}
}

func TestOptimizerPrefersJavaForTinyInput(t *testing.T) {
	// A tiny input with per-job Spark overhead should land on the
	// single-node engine under free choice.
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs := datagen.Words(100, 4)
	j := ctx.NewJob("tiny")
	p, err := j.ReadCollection("in", recs).
		Map(func(r data.Record) (data.Record, error) { return r, nil }).Plan()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ctx.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "@spark") {
		t.Errorf("tiny input scheduled on spark:\n%s", out)
	}
}

func TestCrossJobCombineRejected(t *testing.T) {
	ctx := newCtx(t)
	a := ctx.NewJob("a").ReadCollection("x", datagen.Words(5, 1))
	b := ctx.NewJob("b").ReadCollection("y", datagen.Words(5, 2))
	if _, _, err := a.Union(b).Collect(); err == nil {
		t.Error("union across jobs accepted")
	}
}

func TestContextRequiresAPlatform(t *testing.T) {
	_, err := rheem.NewContext(rheem.Config{DisableJava: true, DisableSpark: true, DisableRelational: true})
	if err == nil {
		t.Error("context without platforms accepted")
	}
}

func TestPlatformRegistryExposed(t *testing.T) {
	ctx := newCtx(t)
	if len(ctx.Registry().Platforms()) != 3 {
		t.Errorf("got %d platforms", len(ctx.Registry().Platforms()))
	}
	if ctx.DB() == nil {
		t.Error("relational catalog not exposed")
	}
	if _, ok := ctx.SparkConfig(); !ok {
		t.Error("spark config not exposed")
	}
	ids := map[engine.PlatformID]bool{}
	for _, p := range ctx.Registry().Platforms() {
		ids[p.ID()] = true
	}
	for _, want := range []engine.PlatformID{javaengine.ID, sparksim.ID, relengine.ID} {
		if !ids[want] {
			t.Errorf("platform %s missing", want)
		}
	}
}

func TestWithTracingExposesTraceAndStats(t *testing.T) {
	ctx := newCtx(t)
	words := datagen.Words(300, 2)
	build := func(name string) *rheem.DataQuanta {
		return ctx.NewJob(name).ReadCollection("words", words).
			Map(func(r data.Record) (data.Record, error) {
				return r.Append(data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), plan.SumField(1))
	}

	// Default runs keep the report lean: no trace, no counters.
	_, rep, err := build("untraced").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace != nil || rep.PlatformStats != nil {
		t.Error("untraced run exposed trace or stats")
	}

	_, rep, err = build("traced").Collect(rheem.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("WithTracing run has no trace")
	}
	if len(rep.Trace.Spans) != len(rep.Plan.Atoms) {
		t.Errorf("%d spans for %d plan atoms", len(rep.Trace.Spans), len(rep.Plan.Atoms))
	}
	for _, sp := range rep.Trace.Spans {
		if sp.Platform == "" || sp.Failed() || len(sp.Attempts) == 0 {
			t.Errorf("span = %+v", sp)
		}
	}
	if rep.PlatformStats == nil {
		t.Fatal("WithTracing run has no platform stats")
	}
	for _, id := range rep.Trace.Platforms() {
		if rep.PlatformStats[id].AtomsExecuted == 0 {
			t.Errorf("platform %s ran spans but counted no atoms", id)
		}
	}
}

// TestReportSnapshotsDoNotAlias pins the Report contract: the
// per-platform counters and the telemetry snapshot are deep copies, so
// mutating a finished report cannot corrupt the live registries a
// subsequent run reads and extends.
func TestReportSnapshotsDoNotAlias(t *testing.T) {
	ctx := newCtx(t)
	words := datagen.Words(200, 2)
	run := func(name string) *rheem.Report {
		_, rep, err := ctx.NewJob(name).ReadCollection("words", words).
			Map(func(r data.Record) (data.Record, error) {
				return r.Append(data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), plan.SumField(1)).
			Collect(rheem.WithTracing())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	first := run("aliasing-1")
	if first.Telemetry == nil {
		t.Fatal("WithTracing run has no telemetry snapshot")
	}
	if v, ok := first.Telemetry.Counter("rheem_runs_total", nil); !ok || v != 1 {
		t.Fatalf("rheem_runs_total after first run = %v (present=%v)", v, ok)
	}

	// Poison everything the first report handed out.
	for id := range first.PlatformStats {
		first.PlatformStats[id] = engine.PlatformStats{AtomsExecuted: -999, Retries: -999}
	}
	for i := range first.Telemetry.Families {
		f := &first.Telemetry.Families[i]
		f.Name = "clobbered"
		for j := range f.Samples {
			f.Samples[j].Value = -999
			for k := range f.Samples[j].Buckets {
				f.Samples[j].Buckets[k].CumulativeCount = -999
			}
		}
	}

	second := run("aliasing-2")
	for id, st := range second.PlatformStats {
		if st.AtomsExecuted < 0 || st.Retries < 0 {
			t.Errorf("platform %s stats poisoned by first report's mutation: %+v", id, st)
		}
	}
	var executed int64
	for _, st := range second.PlatformStats {
		executed += st.AtomsExecuted
	}
	if executed == 0 {
		t.Error("second run counted no executed atoms")
	}
	if v, ok := second.Telemetry.Counter("rheem_runs_total", nil); !ok || v != 2 {
		t.Errorf("rheem_runs_total after second run = %v (present=%v), want 2", v, ok)
	}
}

// TestTracingChaosFailover runs WithTracing and WithFailover together
// under fault injection: the trace must contain spans for the failed
// attempts on the dying platform AND spans for the re-planned atoms on
// the survivors, consistent with the report's failover count.
func TestTracingChaosFailover(t *testing.T) {
	ctx := newCtx(t)
	// A chaos platform with java's operator coverage that survives
	// exactly one execution, then fails everything.
	p := fault.Wrap(javaengine.New(javaengine.Config{}), fault.Options{
		ID:        "chaos",
		Schedules: []fault.Schedule{fault.FailAfterN(1, nil)},
	})
	if err := fault.Register(ctx.Registry(), p, javaengine.ID); err != nil {
		t.Fatal(err)
	}

	recs := make([]data.Record, 40)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i)))
	}
	build := func(name string) *rheem.DataQuanta {
		j := ctx.NewJob(name)
		double := j.ReadCollection("a", recs).Map(func(r data.Record) (data.Record, error) {
			return data.NewRecord(data.Int(r.Field(0).Int() * 2)), nil
		})
		negate := j.ReadCollection("b", recs).Map(func(r data.Record) (data.Record, error) {
			return data.NewRecord(data.Int(-r.Field(0).Int())), nil
		})
		return double.Union(negate)
	}

	want := sortedStrings(mustCollect(t, build("chaos-clean"), rheem.OnPlatform(javaengine.ID)))

	got, rep, err := build("chaos-run").Collect(
		rheem.OnPlatform("chaos"), rheem.WithFailover(true), rheem.WithTracing())
	if err != nil {
		t.Fatalf("chaos run failed despite failover: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Fatal("fixture injected no failures")
	}
	if rep.Failovers < 1 {
		t.Fatalf("Failovers = %d, want ≥1", rep.Failovers)
	}
	gotSorted := sortedStrings(got)
	if len(gotSorted) != len(want) {
		t.Fatalf("chaos run produced %d records, clean run %d", len(gotSorted), len(want))
	}
	for i := range want {
		if gotSorted[i] != want[i] {
			t.Fatalf("record %d = %s, want %s", i, gotSorted[i], want[i])
		}
	}

	if rep.Trace == nil {
		t.Fatal("no trace")
	}
	var failedOnChaos, okOnChaos, okElsewhere int
	completedOnChaos := map[int]bool{}
	for _, sp := range rep.Trace.Spans {
		switch {
		case sp.Platform == "chaos" && sp.Failed():
			failedOnChaos++
			// Every attempt of a failed span carries its error.
			if len(sp.Attempts) == 0 {
				t.Errorf("failed span %d has no attempt records", sp.ID)
			}
			for _, a := range sp.Attempts {
				if a.Err == "" {
					t.Errorf("failed span %d attempt %d has no error", sp.ID, a.Number)
				}
			}
		case sp.Platform == "chaos":
			okOnChaos++
			if sp.Atom != nil {
				for _, op := range sp.Atom.Ops {
					completedOnChaos[op.ID] = true
				}
			}
		case !sp.Failed():
			okElsewhere++
		}
	}
	if failedOnChaos == 0 {
		t.Error("trace has no failed spans on the dying platform")
	}
	if okElsewhere == 0 {
		t.Error("trace has no successful re-planned spans on surviving platforms")
	}
	// The final assignment keeps chaos only for work that finished
	// there before the failover.
	for opID, pl := range rep.Plan.Assignment {
		if pl == "chaos" && !completedOnChaos[opID] {
			t.Errorf("re-planned op %d still assigned to the dead platform", opID)
		}
	}
	if rep.PlatformHealth["chaos"] != engine.BreakerOpen {
		t.Errorf("chaos breaker state = %v, want open", rep.PlatformHealth["chaos"])
	}
	// The telemetry snapshot agrees with the report.
	if v, _ := rep.Telemetry.Counter("rheem_failovers_total", nil); int(v) != rep.Failovers {
		t.Errorf("rheem_failovers_total = %v, report says %d", v, rep.Failovers)
	}
}

func mustCollect(t *testing.T, q *rheem.DataQuanta, opts ...rheem.RunOption) []data.Record {
	t.Helper()
	recs, _, err := q.Collect(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestFlightRecorderEndToEnd wires a recorder through the public API:
// Execute records a profile keyed by Report.RunID, the critical path
// respects the wall-clock invariant, and the monitoring server serves
// the profile and its Perfetto export over HTTP.
func TestFlightRecorderEndToEnd(t *testing.T) {
	rec := profile.NewRecorder(4, nil)
	ctx, err := rheem.NewContext(rheem.Config{
		Spark: sparksim.Config{JobOverhead: 1e6, TaskOverhead: 1e5},
	}, rheem.WithFlightRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	// The Repeat loop forces atom boundaries (loops are their own
	// atoms), so downstream consumers take external inputs and the
	// recorder sees their channel-format choices.
	words := datagen.Words(500, 2)
	_, rep, err := ctx.NewJob("recorded").ReadCollection("words", words).
		Map(func(r data.Record) (data.Record, error) {
			return r.Append(data.Int(1)), nil
		}).
		Repeat(2, func(_ *rheem.LoopBody, q *rheem.DataQuanta) *rheem.DataQuanta {
			return q.Map(func(r data.Record) (data.Record, error) { return r, nil })
		}).
		ReduceByKey(plan.FieldKey(0), plan.SumField(1)).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunID == 0 {
		t.Fatal("report has no run ID")
	}
	r, ok := rec.Get(rep.RunID)
	if !ok {
		t.Fatalf("no record for run %d", rep.RunID)
	}
	p := r.Profile
	if p.Atoms == 0 || p.Spans != len(r.Spans) {
		t.Errorf("profile shape: %+v", p)
	}
	if p.CriticalPathNS <= 0 || p.CriticalPathNS > p.WallNS {
		t.Errorf("critical path %dns vs wall %dns violates the invariant", p.CriticalPathNS, p.WallNS)
	}
	if len(p.CriticalPath) == 0 || len(p.TopAtoms) == 0 {
		t.Errorf("profile missing path/top atoms: %+v", p)
	}
	if p.Total.ComputeNS <= 0 {
		t.Errorf("attribution has no compute time: %+v", p.Total)
	}
	if len(p.Formats) == 0 {
		t.Error("profile recorded no consumer formats")
	}

	// A second run must get its own record, and both served over HTTP.
	_, rep2, err := ctx.NewJob("recorded-2").ReadCollection("words", words).
		Map(func(r data.Record) (data.Record, error) { return r, nil }).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RunID == rep.RunID {
		t.Error("second run reused the run ID")
	}
	addr, err := ctx.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	for _, path := range []string{
		fmt.Sprintf("/runs/%d/profile", rep.RunID),
		fmt.Sprintf("/runs/%d/trace.json", rep.RunID),
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		var parsed map[string]any
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Errorf("GET %s not JSON: %v", path, err)
		}
		if strings.HasSuffix(path, "trace.json") {
			evs, _ := parsed["traceEvents"].([]any)
			if len(evs) == 0 {
				t.Errorf("trace.json has no events: %s", body)
			}
		}
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/runs/%d/profile", addr, rep.RunID+999))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run = %d, want 404", resp.StatusCode)
	}
}
