// Storage abstraction: the paper's §6 story end-to-end.
//
// Datasets are stored through the l-store interface (a logical Put
// with access expectations), placed by the WWHow!-style optimizer
// against the registered execution stores (memory, CSV, simulated
// DFS), transformed on upload by Cartilage-style storage atoms, served
// back through the hot-data buffer, and finally fed into a RHEEM
// processing job — with storage placement priced by the *processing*
// layer's conversion graph, which is the point of unifying the two
// abstractions.
//
// Run with: go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"os"

	"rheem"
	"rheem/internal/core/channel"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/storage"
	"rheem/internal/storage/csvstore"
	"rheem/internal/storage/dfs"
	"rheem/internal/storage/memstore"
)

func main() {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	tmp, err := os.MkdirTemp("", "rheem-storage-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// Storage placement sees the processing layer's movement costs.
	mgr := storage.NewManager(1<<22, ctx.Registry().Channels().PathCost)
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(mgr.Register(memstore.New(1 << 20))) // 1 MiB of precious memory
	cs, err := csvstore.New(tmp + "/csv")
	must(err)
	must(mgr.Register(cs))
	d, err := dfs.New(tmp+"/dfs", dfs.Config{BlockRecords: 2048, Nodes: 4, Replication: 2})
	must(err)
	must(mgr.Register(d))
	// Wire store formats into the processing conversion graph, so a
	// DFS dataset can feed a cluster job via DFS → collection →
	// partitioned, priced end to end.
	storage.ConnectChannels(ctx.Registry().Channels(), cs)
	storage.ConnectChannels(ctx.Registry().Channels(), d)

	// A small, hot dataset: frequent reads → memory.
	hot := datagen.Sensors(datagen.SensorConfig{N: 2_000, Wells: 8, Seed: 1})
	pl, err := mgr.Put(storage.PutRequest{
		Dataset: "hot-readings", Schema: datagen.SensorSchema, Records: hot,
		ExpectedReads: 50,
	})
	must(err)
	fmt.Printf("hot-readings  → %-4s (%s)\n", pl.Store, pl.Why)

	// A big archival dataset with an upload-time transformation plan:
	// project the columns analysts use, clustered by well.
	cold := datagen.Sensors(datagen.SensorConfig{N: 150_000, Wells: 32, Seed: 2})
	pl, err = mgr.Put(storage.PutRequest{
		Dataset: "archive", Schema: datagen.SensorSchema, Records: cold,
		ExpectedReads: 1,
		Transform: &storage.TransformationPlan{Steps: []storage.Transform{
			storage.Project("well", "pressure", "temperature"),
			storage.SortBy("well"),
		}},
	})
	must(err)
	fmt.Printf("archive       → %-4s (%s; upload plan: %s)\n", pl.Store, pl.Why, pl.Transform)
	if blocks, err := d.Blocks("archive"); err == nil {
		fmt.Printf("               %d DFS blocks, %d replicas each\n", len(blocks), len(blocks[0]))
	}

	// A dataset whose consumer computes on the cluster: preferring the
	// partition-friendly format pulls placement toward DFS.
	pl, err = mgr.Put(storage.PutRequest{
		Dataset: "cluster-input", Schema: datagen.SensorSchema,
		Records:       datagen.Sensors(datagen.SensorConfig{N: 80_000, Wells: 16, Seed: 3}),
		ExpectedReads: 10, PreferFormat: channel.Partitioned,
	})
	must(err)
	fmt.Printf("cluster-input → %-4s (%s)\n", pl.Store, pl.Why)

	// Hot buffer: repeat reads skip the store.
	for i := 0; i < 5; i++ {
		if _, _, err := mgr.Get("hot-readings"); err != nil {
			log.Fatal(err)
		}
	}
	hits, misses, bytes := mgr.HotBuffer().Stats()
	fmt.Printf("hot buffer: %d hits, %d misses, %d bytes resident\n", hits, misses, bytes)

	// And the processing side consumes a stored dataset directly.
	schema, recs, err := mgr.Get("archive")
	must(err)
	out, rep, err := ctx.NewJob("per-well-pressure").
		ReadCollection("archive", recs).
		ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
			return data.NewRecord(a.Field(0), data.Float(a.Field(1).Float()+b.Field(1).Float())), nil
		}).
		Count().
		Collect()
	must(err)
	fmt.Printf("processing %q (%s): %s wells aggregated on %v in %v simulated\n",
		"archive", schema, out[0].Field(0), platformOf(rep), rep.Metrics.Sim.Round(1e6))
}

func platformOf(rep *rheem.Report) string {
	for _, pl := range rep.Plan.Assignment {
		return string(pl)
	}
	return "?"
}
