// SVM: the paper's Figure 2 scenario as a runnable program.
//
// Train the same linear SVM (100 iterations) on a small and a larger
// synthetic dataset, on the single-node engine and on the simulated
// Spark cluster, and watch the winner flip: fixed per-job overhead
// dominates small inputs; parallelism pays off on large ones.
//
// Run with: go run ./examples/svm
package main

import (
	"fmt"
	"log"

	"rheem"
	"rheem/internal/apps/ml"
	"rheem/internal/core/engine"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

func main() {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	const dim = 10
	const iterations = 100

	for _, n := range []int{2_000, 300_000} {
		pts := datagen.Points(datagen.PointsConfig{N: n, Dim: dim, Noise: 0.05, Seed: uint64(n)})
		fmt.Printf("--- %d points, %d iterations\n", n, iterations)
		for _, platform := range []engine.PlatformID{javaengine.ID, sparksim.ID} {
			tpl := ml.SVM(pts, ml.GradientConfig{Iterations: iterations, Dim: dim})
			state, rep, err := tpl.Run(ctx, rheem.OnPlatform(platform))
			if err != nil {
				log.Fatal(err)
			}
			w, err := ml.Weights(state)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-6s simulated %8v  (wall %6v, %3d jobs)  accuracy %.3f\n",
				platform, rep.Metrics.Sim.Round(1e6), rep.Metrics.Wall.Round(1e6),
				rep.Metrics.Jobs, ml.Accuracy(w, pts))
		}
	}
	fmt.Println("\nThe full sweep (and the crossover point) is reproduced by: go run ./cmd/rheem-bench -experiment fig2")
}
