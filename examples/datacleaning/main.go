// Data cleaning: BigDansing (§5.1 of the paper) end-to-end.
//
// Generate a dirty tax dataset, declare two rules — the FD zip→city
// and the inequality denial constraint ¬(t1.salary > t2.salary ∧
// t1.rate < t2.rate) — detect violations through the
// Scope/Block/Iterate/Detect pipeline (the DC via the IEJoin physical
// operator), then repair with equivalence classes and re-detect.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"

	"rheem"
	"rheem/internal/apps/cleaning"
	"rheem/internal/core/plan"
	"rheem/internal/data/datagen"
)

func main() {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	recs := datagen.Tax(datagen.TaxConfig{N: 20_000, Zips: 400, ErrorRate: 0.01, Seed: 7})

	fd := cleaning.FD{RuleName: "zip->city", ID: datagen.TaxID,
		LHS: []int{datagen.TaxZip}, RHS: []int{datagen.TaxCity}}
	dc := cleaning.DenialConstraint{RuleName: "salary-rate", ID: datagen.TaxID,
		Preds: []cleaning.Pred{
			{LeftField: datagen.TaxSalary, Op: plan.Greater, RightField: datagen.TaxSalary},
			{LeftField: datagen.TaxRate, Op: plan.Less, RightField: datagen.TaxRate},
		},
		FixField: datagen.TaxRate}

	det, err := cleaning.NewDetector(ctx, fd, dc)
	if err != nil {
		log.Fatal(err)
	}
	violations, rep, err := det.Detect(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d violations over %d records (wall %v, simulated %v)\n",
		len(violations), len(recs), rep.Metrics.Wall.Round(1e6), rep.Metrics.Sim.Round(1e6))
	for rule, n := range cleaning.CountByRule(violations) {
		fmt.Printf("  %-12s %7d violations\n", rule, n)
	}

	repaired, stats, err := cleaning.Repair(recs, violations, []cleaning.Rule{fd, dc}, datagen.TaxID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: %d cells changed (%d equivalence classes, %d greedy fixes)\n",
		stats.CellsChanged, stats.Classes, stats.GreedyApplied)

	after, _, err := det.Detect(repaired)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after repair: %d violations remain\n", len(after))

	// The monolithic single-Detect-UDF baseline on a small sample, for
	// contrast (Figure 3 left).
	sample := recs[:2_000]
	_, repPipe, err := det.Detect(sample)
	if err != nil {
		log.Fatal(err)
	}
	_, repMono, err := det.DetectMonolithic(fd, sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on %d rows: pipeline simulated %v vs monolithic Detect UDF %v\n",
		len(sample), repPipe.Metrics.Sim.Round(1e6), repMono.Metrics.Sim.Round(1e6))
}
