// Graph analytics: PageRank and connected components on RHEEM.
//
// A preferential-attachment graph is generated, PageRank runs as an
// iterative RHEEM job (join + reduce per iteration), and connected
// components run as a DoWhile label propagation that stops at
// fixpoint. Both run on whichever platform the optimizer picks.
//
// Run with: go run ./examples/graph
package main

import (
	"fmt"
	"log"
	"sort"

	"rheem"
	"rheem/internal/apps/graph"
	"rheem/internal/data/datagen"
)

func main() {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	edges := datagen.Graph(datagen.GraphConfig{Nodes: 2_000, Edges: 12_000, Seed: 11})

	ranks, rep, err := graph.PageRank(ctx, edges, graph.PageRankConfig{Iterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	type nr struct {
		node int64
		rank float64
	}
	top := make([]nr, 0, len(ranks))
	for n, r := range ranks {
		top = append(top, nr{n, r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Printf("PageRank over %d edges (10 iterations, wall %v, simulated %v, %d jobs)\n",
		len(edges), rep.Metrics.Wall.Round(1e6), rep.Metrics.Sim.Round(1e6), rep.Metrics.Jobs)
	fmt.Println("top nodes:")
	for _, t := range top[:5] {
		fmt.Printf("  node %4d  rank %.5f\n", t.node, t.rank)
	}

	comps, rep, err := graph.ConnectedComponents(ctx, edges, 50)
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int64]int{}
	for _, c := range comps {
		sizes[c]++
	}
	fmt.Printf("\nconnected components: %d components over %d nodes (simulated %v)\n",
		len(sizes), len(comps), rep.Metrics.Sim.Round(1e6))

	deg, _, err := graph.Degrees(ctx, edges)
	if err != nil {
		log.Fatal(err)
	}
	var maxIn int64
	var maxNode int64
	for n, d := range deg {
		if d[0] > maxIn {
			maxIn, maxNode = d[0], n
		}
	}
	fmt.Printf("highest in-degree: node %d with %d in-edges\n", maxNode, maxIn)
}
