// Quickstart: the word-count of cross-platform analytics.
//
// Build a RHEEM context (all three bundled platforms), express a small
// pipeline once against the fluent API, and run it three times: pinned
// to the single-node engine, pinned to the Spark simulator, and with
// the multi-platform optimizer choosing. The results are identical;
// the execution plans are not — which is the point of the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

func main() {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	words := datagen.Words(10_000, 42)

	count := func(opts ...rheem.RunOption) ([]data.Record, *rheem.Report) {
		out, rep, err := ctx.NewJob("wordcount").
			ReadCollection("words", words).
			Map(func(r data.Record) (data.Record, error) {
				return r.Append(data.Int(1)), nil
			}).
			ReduceByKey(plan.FieldKey(0), plan.SumField(1)).
			Sort(plan.FieldKey(1), true).
			Collect(opts...)
		if err != nil {
			log.Fatal(err)
		}
		return out, rep
	}

	for _, cfg := range []struct {
		name string
		opts []rheem.RunOption
	}{
		{"pinned to java", []rheem.RunOption{rheem.OnPlatform(javaengine.ID)}},
		{"pinned to spark", []rheem.RunOption{rheem.OnPlatform(sparksim.ID)}},
		{"optimizer's choice", nil},
	} {
		out, rep := count(cfg.opts...)
		fmt.Printf("--- %s: %d distinct words, wall %v, simulated %v, %d jobs\n",
			cfg.name, len(out), rep.Metrics.Wall.Round(1e6), rep.Metrics.Sim.Round(1e6), rep.Metrics.Jobs)
		for _, r := range out[:3] {
			fmt.Printf("    %-12s %d\n", r.Field(0).Str(), r.Field(1).Int())
		}
	}

	// Explain shows where the optimizer put each task atom.
	p, err := ctx.NewJob("explain").
		ReadCollection("words", words).
		Map(func(r data.Record) (data.Record, error) { return r.Append(data.Int(1)), nil }).
		ReduceByKey(plan.FieldKey(0), plan.SumField(1)).
		Plan()
	if err != nil {
		log.Fatal(err)
	}
	explained, err := ctx.Explain(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecution plan chosen by the optimizer:\n%s", explained)
}
