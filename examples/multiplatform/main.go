// Multi-platform: the paper's §1 oil-&-gas motivating pipeline.
//
// Raw well-sensor readings are normalised (an opaque per-record UDF),
// aggregated per well (a relational-strength operation), turned into
// feature vectors, and clustered with K-means (iterative ML). One
// logical pipeline — and the multi-platform optimizer is free to put
// each task atom on a different platform, paying data-movement costs
// only where the switch is worth it. Compare against pinning the whole
// pipeline to each platform.
//
// Run with: go run ./examples/multiplatform
package main

import (
	"fmt"
	"log"

	"rheem"
	"rheem/internal/apps/ml"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func aggregate(ctx *rheem.Context, readings []data.Record, opts ...rheem.RunOption) ([]data.Record, *rheem.Report, error) {
	return ctx.NewJob("well-features").
		ReadCollection("readings", readings).
		Map(func(r data.Record) (data.Record, error) {
			return data.NewRecord(r.Field(0),
				data.Float(r.Field(2).Float()*6.894), // psi → kPa
				data.Float(r.Field(3).Float()),
				data.Float(r.Field(4).Float()),
				data.Int(1)), nil
		}).
		ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
			return data.NewRecord(a.Field(0),
				data.Float(a.Field(1).Float()+b.Field(1).Float()),
				data.Float(a.Field(2).Float()+b.Field(2).Float()),
				data.Float(a.Field(3).Float()+b.Field(3).Float()),
				data.Int(a.Field(4).Int()+b.Field(4).Int())), nil
		}).
		Map(func(r data.Record) (data.Record, error) {
			n := float64(r.Field(4).Int())
			return data.NewRecord(r.Field(0), data.Vec([]float64{
				r.Field(1).Float() / n, r.Field(2).Float() / n, r.Field(3).Float() / n,
			})), nil
		}).
		Collect(opts...)
}

func main() {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	readings := datagen.Sensors(datagen.SensorConfig{N: 300_000, Wells: 32, Seed: 3})

	fmt.Println("aggregation pipeline over 300,000 readings:")
	for _, cfg := range []struct {
		name string
		opts []rheem.RunOption
	}{
		{"optimizer (free)", nil},
		{"pinned java", []rheem.RunOption{rheem.OnPlatform(javaengine.ID)}},
		{"pinned spark", []rheem.RunOption{rheem.OnPlatform(sparksim.ID)}},
		{"pinned relational", []rheem.RunOption{rheem.OnPlatform(relengine.ID)}},
	} {
		wells, rep, err := aggregate(ctx, readings, cfg.opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s simulated %8v  %d wells, %d atoms, %d conversions\n",
			cfg.name, rep.Metrics.Sim.Round(1e6), len(wells), len(rep.Plan.Atoms), rep.Metrics.Conversions)
	}

	wells, _, err := aggregate(ctx, readings)
	if err != nil {
		log.Fatal(err)
	}
	pts := make([]data.Record, len(wells))
	for i, w := range wells {
		pts[i] = data.NewRecord(data.Int(int64(i)), w.Field(1))
	}
	tpl := ml.KMeans(pts, ml.KMeansConfig{K: 4, Iterations: 10, Dim: 3})
	state, rep, err := tpl.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-means over %d wells (k=4, 10 iterations): simulated %v\n",
		len(pts), rep.Metrics.Sim.Round(1e6))
	for id, c := range ml.Centroids(state) {
		fmt.Printf("  cluster %d centroid ≈ (%.1f, %.1f, %.1f)\n", id, c[0], c[1], c[2])
	}
}
