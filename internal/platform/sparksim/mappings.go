package sparksim

import (
	"time"

	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
)

// Register creates the platform, registers it and its declarative
// operator mappings, and returns it.
//
// The declared costs mirror the virtual clock: the same per-record
// shapes as the single-node engine, divided by the cluster's slot
// count, plus the per-job startup overhead. Wide operators additionally
// charge estimated shuffle volume as network time. Keeping the
// declared model aligned with the simulated clock is what lets the
// optimizer's choices track the platform that actually wins (E6).
func Register(reg *engine.Registry, cfg Config) (*Platform, error) {
	p := New(cfg)
	if err := reg.RegisterPlatform(p); err != nil {
		return nil, err
	}
	c := p.cfg
	slots := c.Slots()
	const perRec = 200 * time.Nanosecond // calibrated to the shared kernels (see EXPERIMENTS.md)

	par := func(m cost.Model) cost.Model {
		return cost.WithStartup(cost.Parallel(m, slots), c.JobOverhead)
	}
	linear := par(cost.PerRecord(0, perRec, perRec/4))
	nlogn := par(cost.NLogN(0, perRec/2))
	quadratic := par(cost.PairQuadratic(0, 100*time.Nanosecond))
	// Sources have no inputs; their work is producing records.
	source := par(cost.PerRecord(0, 0, perRec))

	// shuffled adds network time for moving the input volume through
	// the shuffle fabric.
	shuffled := func(m cost.Model) cost.Model {
		return func(op *physical.Operator, inCards []int64, outCard int64) cost.Cost {
			base := m(op, inCards, outCard)
			var in int64
			for _, card := range inCards {
				in += card
			}
			bytes := float64(in * cost.DefaultRecBytes)
			base.Net += time.Duration(bytes / c.ShuffleBandwidth * 1e9)
			return base
		}
	}

	type md struct {
		kind plan.OpKind
		algo physical.Algorithm
		m    cost.Model
		hint string
	}
	decls := []md{
		{plan.KindSource, physical.Default, source, "parallelize cluster-resident input"},
		{plan.KindMap, physical.Default, linear, "narrow"},
		{plan.KindFlatMap, physical.Default, linear, "narrow"},
		{plan.KindFilter, physical.Default, linear, "narrow"},
		{plan.KindGroupBy, physical.HashGroupBy, shuffled(linear), "wide: full shuffle"},
		{plan.KindGroupBy, physical.SortGroupBy, shuffled(nlogn), "wide: full shuffle"},
		{plan.KindReduceByKey, physical.HashGroupBy, shuffled(linear), "map-side combine"},
		{plan.KindReduceByKey, physical.SortGroupBy, shuffled(nlogn), "map-side combine"},
		{plan.KindReduce, physical.Default, linear, "tree aggregate"},
		{plan.KindSort, physical.Default, shuffled(nlogn), "range repartition"},
		{plan.KindDistinct, physical.HashDistinct, shuffled(linear), "wide"},
		{plan.KindDistinct, physical.SortDistinct, shuffled(nlogn), "wide"},
		{plan.KindUnion, physical.Default, cost.ConstModel(cost.Cost{Startup: c.JobOverhead}), "zero-copy"},
		{plan.KindJoin, physical.HashJoin, shuffled(linear), "co-partitioned"},
		{plan.KindJoin, physical.SortMergeJoin, shuffled(nlogn), "co-partitioned"},
		{plan.KindThetaJoin, physical.NestedLoop, shuffled(quadratic), "broadcast right side"},
		{plan.KindThetaJoin, physical.IEJoin, shuffled(par(cost.NLogN(0, 300*time.Nanosecond))), "broadcast right side"},
		{plan.KindCartesian, physical.Default, shuffled(quadratic), "broadcast right side"},
		{plan.KindCount, physical.Default, linear, ""},
		{plan.KindSample, physical.Default, linear, ""},
		{plan.KindSink, physical.Default, cost.ConstModel(cost.Cost{}), ""},
		{plan.KindRepeat, physical.Default, cost.ConstModel(cost.Cost{}), "loop driven by executor"},
		{plan.KindDoWhile, physical.Default, cost.ConstModel(cost.Cost{}), "loop driven by executor"},
		{plan.KindLoopInput, physical.Default, cost.ConstModel(cost.Cost{Startup: c.JobOverhead}), "each loop iteration is a job"},
	}
	for _, d := range decls {
		if err := reg.RegisterMapping(engine.Mapping{
			Platform: ID, Kind: d.kind, Algo: d.algo, Cost: d.m, Hint: d.hint,
		}); err != nil {
			return nil, err
		}
	}
	return p, nil
}
