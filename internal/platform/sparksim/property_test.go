package sparksim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// partGen generates random int-keyed records for partitioning
// properties.
type partGen struct{ Keys []int16 }

func (partGen) Generate(r *rand.Rand, _ int) reflect.Value {
	keys := make([]int16, r.Intn(200))
	for i := range keys {
		keys[i] = int16(r.Intn(64))
	}
	return reflect.ValueOf(partGen{Keys: keys})
}

func toRecords(keys []int16) []data.Record {
	out := make([]data.Record, len(keys))
	for i, k := range keys {
		out[i] = data.NewRecord(data.Int(int64(k)), data.Int(int64(i)))
	}
	return out
}

func sortedIDs(parts [][]data.Record) []int64 {
	var out []int64
	for _, p := range parts {
		for _, r := range p {
			out = append(out, r.Field(1).Int())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestQuickShufflePreservesRecords: partitionByKey is a permutation —
// no record is lost or duplicated, whatever the key skew.
func TestQuickShufflePreservesRecords(t *testing.T) {
	cfg := Config{Partitions: 7}
	cfg.defaults()
	f := func(g partGen) bool {
		recs := toRecords(g.Keys)
		d := &datasetOps{cfg: cfg}
		parts, err := d.partitionByKey(splitEven(recs, 3), plan.FieldKey(0))
		if err != nil {
			return false
		}
		ids := sortedIDs(parts)
		if len(ids) != len(recs) {
			return false
		}
		for i, id := range ids {
			if id != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickShuffleCoPartitions: equal keys always land in the same
// partition — the invariant co-partitioned joins rely on.
func TestQuickShuffleCoPartitions(t *testing.T) {
	cfg := Config{Partitions: 5}
	cfg.defaults()
	f := func(g partGen) bool {
		recs := toRecords(g.Keys)
		d := &datasetOps{cfg: cfg}
		parts, err := d.partitionByKey(splitEven(recs, 4), plan.FieldKey(0))
		if err != nil {
			return false
		}
		where := map[int64]int{}
		for pi, p := range parts {
			for _, r := range p {
				k := r.Field(0).Int()
				if prev, seen := where[k]; seen && prev != pi {
					return false
				}
				where[k] = pi
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitEvenPreservesOrder: parallelize keeps record order
// across the concatenated partitions, for any size and partition count.
func TestQuickSplitEvenPreservesOrder(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		recs := toRecords(make([]int16, int(n)))
		split := splitEven(recs, int(parts%16)+1)
		back := flatten(split)
		if len(back) != len(recs) {
			return false
		}
		for i := range back {
			if back[i].Field(1).Int() != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
