package sparksim

import (
	"testing"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

// flattenShards re-reads shard channels as flat record slices in shard
// index order.
func flattenShards(t *testing.T, shards []*channel.Channel) []data.Record {
	t.Helper()
	var out []data.Record
	for _, s := range shards {
		parts, err := partsOf(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, flatten(parts)...)
	}
	return out
}

func TestSplitNativeGroupsPartitions(t *testing.T) {
	// 8 non-empty partitions into 4 shards: contiguous groups of 2, no
	// records moved — shard partitions alias the dataset's.
	p := New(Config{})
	parts := splitEven(intRecords(80), 8)
	ch := newPartChannel(parts)
	shards, err := p.SplitNative(ch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("%d shards, want 4", len(shards))
	}
	for i, s := range shards {
		sp, err := partsOf(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(sp) != 2 {
			t.Errorf("shard %d has %d partitions, want 2", i, len(sp))
		}
		if &sp[0][0] != &parts[2*i][0] {
			t.Errorf("shard %d partition 0 does not alias original partition %d", i, 2*i)
		}
	}
	replay := flattenShards(t, shards)
	orig := flatten(parts)
	for i := range orig {
		if !data.EqualRecords(orig[i], replay[i]) {
			t.Fatalf("record %d reordered by partition-group split", i)
		}
	}
}

func TestSplitNativeSkipsEmptyPartitions(t *testing.T) {
	p := New(Config{})
	parts := [][]data.Record{intRecords(5), {}, intRecords(3), {}, intRecords(2), intRecords(1)}
	shards, err := p.SplitNative(newPartChannel(parts), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("%d shards, want 4 (one per non-empty partition)", len(shards))
	}
	if got := len(flattenShards(t, shards)); got != 11 {
		t.Errorf("shards hold %d records, want 11", got)
	}
}

func TestSplitNativeFallsBackToEvenSplit(t *testing.T) {
	// Fewer non-empty partitions than requested shards: the flattened
	// records are re-split evenly, preserving flatten order.
	p := New(Config{})
	parts := splitEven(intRecords(20), 2)
	shards, err := p.SplitNative(newPartChannel(parts), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("%d shards, want 4 from the even-split fallback", len(shards))
	}
	replay := flattenShards(t, shards)
	orig := flatten(parts)
	if len(replay) != len(orig) {
		t.Fatalf("fallback split lost records: %d of %d", len(replay), len(orig))
	}
	for i := range orig {
		if !data.EqualRecords(orig[i], replay[i]) {
			t.Fatalf("record %d reordered by fallback split", i)
		}
	}
}

func TestSplitNativeDegenerate(t *testing.T) {
	p := New(Config{})
	one := newPartChannel([][]data.Record{intRecords(1)})
	shards, err := p.SplitNative(one, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0] != one {
		t.Errorf("single-record split = %d shards, want the original channel", len(shards))
	}
	if _, err := p.SplitNative(channel.NewCollection(intRecords(4)), 2); err == nil {
		t.Error("SplitNative accepted a collection channel")
	}
}
