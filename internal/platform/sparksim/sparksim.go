// Package sparksim is a from-scratch simulator of a Spark-like
// distributed dataflow platform — the reproduction's substitute for the
// real Spark cluster of the paper's experiments (DESIGN.md §3).
//
// The simulator really executes every operator: datasets are hash- or
// range-partitioned [][]data.Record collections, wide operators really
// shuffle records between partitions, joins really co-partition, and
// broadcasts really replicate — so results are exact and testable. What
// is simulated is *time*: a virtual cluster clock models
//
//   - a fixed job-submission overhead per task atom execution
//     (Config.JobOverhead) — the dominant term for small inputs and the
//     cause of Figure 2's crossover;
//   - per-task dispatch overhead and slot-limited scheduling: each
//     stage's tasks run in waves of Workers×SlotsPerWorker, each wave
//     as slow as its slowest task (measured per-partition wall time
//     divided across simulated slots);
//   - shuffle and broadcast network time as bytes over bandwidth.
//
// Measured per-partition compute is real; only parallelism and cluster
// overheads are modelled. See bench_test.go and EXPERIMENTS.md for the
// calibration used to regenerate the paper's figures.
package sparksim

import (
	"context"
	"fmt"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
	"rheem/internal/data"
)

// ID is the platform identifier.
const ID engine.PlatformID = "spark"

// Config describes the simulated cluster.
type Config struct {
	Workers        int // default 4
	SlotsPerWorker int // default 2
	// Partitions is the default parallelism. Default Workers×Slots.
	Partitions int
	// JobOverhead is charged to simulated time once per atom execution
	// (job submission, DAG scheduling, task serialization). Default 50ms.
	JobOverhead time.Duration
	// TaskOverhead is charged per scheduling wave per stage. Default 1ms.
	TaskOverhead time.Duration
	// ShuffleBandwidth is the simulated aggregate shuffle throughput in
	// bytes/second. Default 200 MB/s.
	ShuffleBandwidth float64
	// BroadcastBandwidth is the simulated broadcast throughput in
	// bytes/second. Default 500 MB/s.
	BroadcastBandwidth float64
	// AutoTunePartitions enables the platform-layer optimization phase
	// of the paper (§4.3, "plugged-in platform-specific optimization
	// tools ... e.g. Starfish"): instead of always materialising the
	// static default parallelism, each parallelize/shuffle re-chooses
	// its partition count from the observed cardinality, aiming for
	// TargetRecordsPerTask records per task. Small inputs then pay for
	// fewer task dispatches.
	AutoTunePartitions bool
	// TargetRecordsPerTask is the auto-tuning goal. Default 10000.
	TargetRecordsPerTask int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = 2
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Workers * c.SlotsPerWorker
	}
	if c.JobOverhead == 0 {
		c.JobOverhead = 50 * time.Millisecond
	}
	if c.TaskOverhead == 0 {
		c.TaskOverhead = time.Millisecond
	}
	if c.ShuffleBandwidth == 0 {
		c.ShuffleBandwidth = 200 << 20
	}
	if c.BroadcastBandwidth == 0 {
		c.BroadcastBandwidth = 500 << 20
	}
	if c.TargetRecordsPerTask <= 0 {
		c.TargetRecordsPerTask = 10_000
	}
}

// tunedPartitions applies the platform-layer partition-count tuning
// for the given cardinality; without auto-tuning it returns the static
// default parallelism.
func (c Config) tunedPartitions(records int64) int {
	if !c.AutoTunePartitions {
		return c.Partitions
	}
	n := int((records + int64(c.TargetRecordsPerTask) - 1) / int64(c.TargetRecordsPerTask))
	if n < 1 {
		n = 1
	}
	if n > c.Partitions {
		n = c.Partitions
	}
	return n
}

// Slots returns the cluster's concurrent task capacity.
func (c Config) Slots() int { return c.Workers * c.SlotsPerWorker }

// Platform is the simulated Spark-like engine.
type Platform struct {
	cfg Config
}

// New returns a platform simulating the configured cluster.
func New(cfg Config) *Platform {
	cfg.defaults()
	return &Platform{cfg: cfg}
}

// Config returns the effective (defaulted) configuration.
func (p *Platform) Config() Config { return p.cfg }

// ID implements engine.Platform.
func (p *Platform) ID() engine.PlatformID { return ID }

// Profile implements engine.Platform.
func (p *Platform) Profile() engine.Profile {
	return engine.Profile{Description: "simulated distributed dataflow cluster", Distributed: true}
}

// NativeFormat implements engine.Platform.
func (p *Platform) NativeFormat() channel.Format { return channel.Partitioned }

// RegisterConverters implements engine.Platform: partitioned ↔
// collection, priced as cluster↔driver movement.
func (p *Platform) RegisterConverters(reg *channel.Registry) {
	perByte := 1e9 / p.cfg.ShuffleBandwidth // ns per byte
	reg.Register(channel.Converter{
		From: channel.Collection, To: channel.Partitioned,
		Fixed: 2 * time.Millisecond, PerByteNS: perByte,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			recs, err := ch.AsCollection()
			if err != nil {
				return nil, err
			}
			return newPartChannel(splitEven(recs, p.cfg.tunedPartitions(int64(len(recs))))), nil
		},
	})
	reg.Register(channel.Converter{
		From: channel.Partitioned, To: channel.Collection,
		Fixed: 2 * time.Millisecond, PerByteNS: perByte,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			parts, err := partsOf(ch)
			if err != nil {
				return nil, err
			}
			return channel.NewCollection(flatten(parts)), nil
		},
	})
}

// SplitNative implements engine.Sharder: shards are contiguous groups
// of the dataset's existing partitions, so no records move. When the
// dataset has fewer non-empty partitions than requested shards, the
// flattened records are re-split evenly instead.
func (p *Platform) SplitNative(ch *channel.Channel, n int) ([]*channel.Channel, error) {
	parts, err := partsOf(ch)
	if err != nil {
		return nil, err
	}
	nonEmpty := make([][]data.Record, 0, len(parts))
	for _, part := range parts {
		if len(part) > 0 {
			nonEmpty = append(nonEmpty, part)
		}
	}
	if n > len(nonEmpty) {
		// Too few partitions to group: fall back to an even record split,
		// one partition per shard. Order across shards stays the flatten
		// order of the original partitions.
		recs := flatten(parts)
		if n > len(recs) {
			n = len(recs)
		}
		if n <= 1 {
			return []*channel.Channel{ch}, nil
		}
		out := make([]*channel.Channel, 0, n)
		for _, shard := range splitEven(recs, n) {
			if len(shard) > 0 {
				out = append(out, newPartChannel([][]data.Record{shard}))
			}
		}
		return out, nil
	}
	if n <= 1 {
		return []*channel.Channel{ch}, nil
	}
	chunk := (len(nonEmpty) + n - 1) / n
	out := make([]*channel.Channel, 0, n)
	for lo := 0; lo < len(nonEmpty); lo += chunk {
		hi := lo + chunk
		if hi > len(nonEmpty) {
			hi = len(nonEmpty)
		}
		out = append(out, newPartChannel(nonEmpty[lo:hi]))
	}
	return out, nil
}

// newPartChannel wraps partitions in a Partitioned channel with
// volume metadata.
func newPartChannel(parts [][]data.Record) *channel.Channel {
	var n, bytes int64
	for _, p := range parts {
		n += int64(len(p))
		bytes += data.TotalBytes(p)
	}
	return &channel.Channel{Format: channel.Partitioned, Payload: parts, Records: n, Bytes: bytes}
}

// partsOf extracts the partition payload of a Partitioned channel.
func partsOf(ch *channel.Channel) ([][]data.Record, error) {
	if ch.Format != channel.Partitioned {
		return nil, fmt.Errorf("sparksim: channel format %s is not partitioned", ch.Format)
	}
	parts, ok := ch.Payload.([][]data.Record)
	if !ok {
		return nil, fmt.Errorf("sparksim: partitioned channel holds %T", ch.Payload)
	}
	return parts, nil
}

func flatten(parts [][]data.Record) []data.Record {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]data.Record, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// splitEven distributes records round-robin-in-chunks into n partitions.
func splitEven(recs []data.Record, n int) [][]data.Record {
	if n < 1 {
		n = 1
	}
	parts := make([][]data.Record, n)
	chunk := (len(recs) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		if lo >= len(recs) {
			break
		}
		hi := lo + chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		parts[i] = recs[lo:hi]
	}
	return parts
}

// ExecuteAtom implements engine.Platform: one atom execution is one
// simulated job.
func (p *Platform) ExecuteAtom(ctx context.Context, atom *engine.TaskAtom, inputs engine.AtomInputs) (map[int]*channel.Channel, engine.Metrics, error) {
	start := time.Now()
	d := &datasetOps{cfg: p.cfg}
	exits, err := engine.RunAtom(ctx, d, atom, inputs)
	m := engine.Metrics{
		Wall:          time.Since(start),
		Sim:           p.cfg.JobOverhead + d.clock,
		Jobs:          1,
		InRecords:     d.inRecords,
		OutRecords:    d.outRecords,
		ShuffledBytes: d.shuffled,
	}
	if err != nil {
		return nil, m, err
	}
	return exits, m, nil
}
