package sparksim

import (
	"testing"
	"time"

	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
)

func TestTunedPartitions(t *testing.T) {
	cfg := Config{Partitions: 16, AutoTunePartitions: true, TargetRecordsPerTask: 1000}
	cfg.defaults()
	cases := []struct {
		records int64
		want    int
	}{
		{0, 1}, {1, 1}, {999, 1}, {1000, 1}, {1001, 2}, {8000, 8}, {1_000_000, 16},
	}
	for _, c := range cases {
		if got := cfg.tunedPartitions(c.records); got != c.want {
			t.Errorf("tunedPartitions(%d) = %d, want %d", c.records, got, c.want)
		}
	}
	// Disabled: always the static default.
	static := Config{Partitions: 16}
	static.defaults()
	if static.tunedPartitions(1) != 16 {
		t.Error("static config tuned anyway")
	}
}

func TestAutoTuneReducesSimTimeOnTinyInput(t *testing.T) {
	build := func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(datagen.ZipfInts(200, 10, 1)))
		ones := b.Map(s, func(r data.Record) (data.Record, error) {
			return r.Append(data.Int(1)), nil
		})
		g := b.ReduceByKey(ones, plan.FieldKey(0), plan.SumField(1))
		b.Collect(g)
	}
	base := Config{Partitions: 16, JobOverhead: time.Millisecond, TaskOverhead: 2 * time.Millisecond}
	tuned := base
	tuned.AutoTunePartitions = true
	tuned.TargetRecordsPerTask = 1000

	_, mBase, _ := runAtomOn(t, New(base), build)
	exits, mTuned, pp := runAtomOn(t, New(tuned), build)

	if mTuned.Sim >= mBase.Sim {
		t.Errorf("auto-tune did not help: tuned %v vs static %v", mTuned.Sim, mBase.Sim)
	}
	// Results identical regardless of tuning.
	parts, err := partsOf(exits[pp.SinkOp.ID])
	if err != nil {
		t.Fatal(err)
	}
	recs := flatten(parts)
	var total int64
	for _, r := range recs {
		total += r.Field(1).Int()
	}
	if total != 200 || len(recs) != 10 {
		t.Errorf("tuned results wrong: %d keys, %d total", len(recs), total)
	}
}

func TestAutoTuneKeepsWidePartitioningForBigInput(t *testing.T) {
	cfg := Config{Partitions: 8, AutoTunePartitions: true, TargetRecordsPerTask: 100}
	cfg.defaults()
	d := &datasetOps{cfg: cfg}
	parts, err := d.partitionByKey(splitEven(datagen.ZipfInts(5000, 500, 2), 8), plan.FieldKey(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Errorf("big input shuffled into %d partitions, want 8", len(parts))
	}
}
