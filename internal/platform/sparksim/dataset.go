package sparksim

import (
	"context"
	"fmt"
	"time"

	"rheem/internal/core/algo"
	"rheem/internal/core/channel"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// datasetOps executes physical operators over partitioned datasets and
// accumulates the virtual cluster clock. One datasetOps instance lives
// for one simulated job (one atom execution).
type datasetOps struct {
	cfg        Config
	clock      time.Duration // simulated time accumulated by stages
	shuffled   int64         // bytes through shuffles and broadcasts
	inRecords  int64
	outRecords int64
}

func (d *datasetOps) FromChannel(ch *channel.Channel) (any, error) {
	parts, err := partsOf(ch)
	if err != nil {
		return nil, err
	}
	d.inRecords += ch.Records
	return parts, nil
}

func (d *datasetOps) ToChannel(ds any) (*channel.Channel, error) {
	parts := ds.([][]data.Record)
	ch := newPartChannel(parts)
	d.outRecords += ch.Records
	return ch, nil
}

// stage charges one scheduling stage to the virtual clock: tasks run in
// waves of Slots, each wave takes its slowest task plus dispatch
// overhead.
func (d *datasetOps) stage(taskTimes []time.Duration) {
	slots := d.cfg.Slots()
	for i := 0; i < len(taskTimes); i += slots {
		end := i + slots
		if end > len(taskTimes) {
			end = len(taskTimes)
		}
		var worst time.Duration
		for _, t := range taskTimes[i:end] {
			if t > worst {
				worst = t
			}
		}
		d.clock += worst + d.cfg.TaskOverhead
	}
}

// shuffle charges moving the given volume through the shuffle fabric.
func (d *datasetOps) shuffle(bytes int64) {
	if bytes <= 0 {
		return
	}
	d.shuffled += bytes
	d.clock += time.Duration(float64(bytes) / d.cfg.ShuffleBandwidth * 1e9)
}

// broadcast charges replicating the given volume to every worker.
func (d *datasetOps) broadcast(bytes int64) {
	if bytes <= 0 {
		return
	}
	total := bytes * int64(d.cfg.Workers)
	d.shuffled += total
	d.clock += time.Duration(float64(total) / d.cfg.BroadcastBandwidth * 1e9)
}

// driver charges work executed on the simulated driver (no
// parallelism, no dispatch overhead).
func (d *datasetOps) driver(t time.Duration) { d.clock += t }

// mapPartitions applies f to every partition as one stage, measuring
// real per-partition compute for the wave model.
func (d *datasetOps) mapPartitions(parts [][]data.Record, f func([]data.Record) ([]data.Record, error)) ([][]data.Record, error) {
	out := make([][]data.Record, len(parts))
	times := make([]time.Duration, len(parts))
	for i, p := range parts {
		t0 := time.Now()
		np, err := f(p)
		if err != nil {
			return nil, err
		}
		times[i] = time.Since(t0)
		out[i] = np
	}
	d.stage(times)
	return out, nil
}

// partitionByKey redistributes records into cfg.Partitions buckets by
// key hash — a full shuffle. Key extraction is charged as a map stage;
// the movement as shuffle volume.
func (d *datasetOps) partitionByKey(parts [][]data.Record, key plan.KeyFunc) ([][]data.Record, error) {
	var records int64
	for _, p := range parts {
		records += int64(len(p))
	}
	n := d.cfg.tunedPartitions(records)
	buckets := make([][]data.Record, n)
	times := make([]time.Duration, len(parts))
	var bytes int64
	for i, p := range parts {
		t0 := time.Now()
		for _, r := range p {
			k, err := key(r)
			if err != nil {
				return nil, fmt.Errorf("sparksim: shuffle key: %w", err)
			}
			b := int(data.Hash(k, 7) % uint64(n))
			buckets[b] = append(buckets[b], r)
			bytes += int64(r.Bytes())
		}
		times[i] = time.Since(t0)
	}
	d.stage(times)
	d.shuffle(bytes)
	return buckets, nil
}

// ExecOp executes one physical operator over partitioned datasets —
// the Spark simulator's execution-operator set. Execution operators
// work on whole partitions ("multiple data quanta rather than a single
// one", paper §3.1).
func (d *datasetOps) ExecOp(_ context.Context, op *physical.Operator, inputs []any) (any, error) {
	in := func(i int) [][]data.Record { return inputs[i].([][]data.Record) }
	lop := op.Logical
	switch lop.Kind() {
	case plan.KindSource:
		t0 := time.Now()
		recs, err := lop.Source()
		if err != nil {
			return nil, err
		}
		d.driver(time.Since(t0))
		// Parallelize. Cluster-resident (cached) input is assumed, so
		// no shuffle volume is charged; see package comment.
		return splitEven(recs, d.cfg.tunedPartitions(int64(len(recs)))), nil

	case plan.KindMap:
		return d.mapPartitions(in(0), func(p []data.Record) ([]data.Record, error) {
			out := make([]data.Record, 0, len(p))
			for _, r := range p {
				nr, err := lop.Map(r)
				if err != nil {
					return nil, err
				}
				out = append(out, nr)
			}
			return out, nil
		})

	case plan.KindFlatMap:
		return d.mapPartitions(in(0), func(p []data.Record) ([]data.Record, error) {
			var out []data.Record
			for _, r := range p {
				nrs, err := lop.FlatMap(r)
				if err != nil {
					return nil, err
				}
				out = append(out, nrs...)
			}
			return out, nil
		})

	case plan.KindFilter:
		return d.mapPartitions(in(0), func(p []data.Record) ([]data.Record, error) {
			out := make([]data.Record, 0, len(p))
			for _, r := range p {
				ok, err := lop.Filter(r)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, r)
				}
			}
			return out, nil
		})

	case plan.KindGroupBy:
		shuffled, err := d.partitionByKey(in(0), lop.Key)
		if err != nil {
			return nil, err
		}
		return d.mapPartitions(shuffled, func(p []data.Record) ([]data.Record, error) {
			groups, err := groupWith(op.Algo, p, lop.Key)
			if err != nil {
				return nil, err
			}
			var out []data.Record
			for _, g := range groups {
				res, err := lop.Group(g.Key, g.Records)
				if err != nil {
					return nil, err
				}
				out = append(out, res...)
			}
			return out, nil
		})

	case plan.KindReduceByKey:
		// Map-side combine, then shuffle, then final reduce — the real
		// Spark execution strategy, which keeps shuffle volume at
		// O(partitions × keys).
		combined, err := d.mapPartitions(in(0), func(p []data.Record) ([]data.Record, error) {
			groups, err := groupWith(op.Algo, p, lop.Key)
			if err != nil {
				return nil, err
			}
			return algo.ReduceGroups(groups, lop.Reduce)
		})
		if err != nil {
			return nil, err
		}
		shuffled, err := d.partitionByKey(combined, lop.Key)
		if err != nil {
			return nil, err
		}
		return d.mapPartitions(shuffled, func(p []data.Record) ([]data.Record, error) {
			groups, err := groupWith(op.Algo, p, lop.Key)
			if err != nil {
				return nil, err
			}
			return algo.ReduceGroups(groups, lop.Reduce)
		})

	case plan.KindReduce:
		partials, err := d.mapPartitions(in(0), func(p []data.Record) ([]data.Record, error) {
			return algo.Reduce(p, lop.Reduce)
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		final, err := algo.Reduce(flatten(partials), lop.Reduce)
		if err != nil {
			return nil, err
		}
		d.driver(time.Since(t0))
		return [][]data.Record{final}, nil

	case plan.KindSort:
		// Global sort: per-partition sort stage, then a merge modelled
		// on the driver, range-split back into partitions. The full
		// volume crosses the wire.
		parts := in(0)
		sortedParts, err := d.mapPartitions(parts, func(p []data.Record) ([]data.Record, error) {
			return algo.SortBy(p, lop.Key, lop.Desc)
		})
		if err != nil {
			return nil, err
		}
		var bytes int64
		for _, p := range sortedParts {
			bytes += data.TotalBytes(p)
		}
		d.shuffle(bytes)
		t0 := time.Now()
		merged, err := algo.SortBy(flatten(sortedParts), lop.Key, lop.Desc)
		if err != nil {
			return nil, err
		}
		d.driver(time.Since(t0) / time.Duration(maxInt(1, d.cfg.Slots())))
		return splitEven(merged, d.cfg.tunedPartitions(int64(len(merged)))), nil

	case plan.KindDistinct:
		shuffled, err := d.partitionByKey(in(0), plan.RecordKey())
		if err != nil {
			return nil, err
		}
		return d.mapPartitions(shuffled, func(p []data.Record) ([]data.Record, error) {
			if op.Algo == physical.SortDistinct {
				sorted, err := algo.SortBy(p, plan.RecordKey(), false)
				if err != nil {
					return nil, err
				}
				return algo.Distinct(sorted), nil
			}
			return algo.Distinct(p), nil
		})

	case plan.KindUnion:
		l, r := in(0), in(1)
		out := make([][]data.Record, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
		return out, nil

	case plan.KindJoin:
		lParts, err := d.partitionByKey(in(0), lop.Key)
		if err != nil {
			return nil, err
		}
		rParts, err := d.partitionByKey(in(1), lop.RightKey)
		if err != nil {
			return nil, err
		}
		out := make([][]data.Record, len(lParts))
		times := make([]time.Duration, len(lParts))
		for i := range lParts {
			t0 := time.Now()
			var joined []data.Record
			if op.Algo == physical.SortMergeJoin {
				joined, err = algo.SortMergeJoin(lParts[i], rParts[i], lop.Key, lop.RightKey)
			} else {
				joined, err = algo.HashJoin(lParts[i], rParts[i], lop.Key, lop.RightKey)
			}
			if err != nil {
				return nil, err
			}
			out[i] = joined
			times[i] = time.Since(t0)
		}
		d.stage(times)
		return out, nil

	case plan.KindThetaJoin, plan.KindCartesian:
		// Broadcast the right side to every worker, then join each
		// left partition against the full right side.
		rAll := flatten(in(1))
		d.broadcast(data.TotalBytes(rAll))
		return d.mapPartitions(in(0), func(p []data.Record) ([]data.Record, error) {
			switch {
			case lop.Kind() == plan.KindCartesian:
				return algo.Cartesian(p, rAll), nil
			case op.Algo == physical.IEJoin && len(lop.Conditions) > 0:
				return algo.IEJoinRecords(p, rAll, lop.Conditions, lop.Pred)
			default:
				pred := thetaPred(lop)
				return algo.NestedLoopJoin(p, rAll, pred)
			}
		})

	case plan.KindCount:
		var n int64
		for _, p := range in(0) {
			n += int64(len(p))
		}
		d.driver(10 * time.Microsecond)
		return [][]data.Record{{data.NewRecord(data.Int(n))}}, nil

	case plan.KindSample:
		var out []data.Record
		for _, p := range in(0) {
			for _, r := range p {
				if len(out) >= lop.N {
					break
				}
				out = append(out, r)
			}
		}
		d.driver(time.Duration(len(out)) * 50 * time.Nanosecond)
		return [][]data.Record{out}, nil

	case plan.KindSink:
		return in(0), nil

	case plan.KindRepeat, plan.KindDoWhile, plan.KindLoopInput:
		return nil, fmt.Errorf("sparksim: %s must be driven by the executor", lop.Kind())

	default:
		return nil, fmt.Errorf("sparksim: unsupported operator kind %s", lop.Kind())
	}
}

// groupWith dispatches on the grouping algorithm decision.
func groupWith(a physical.Algorithm, recs []data.Record, key plan.KeyFunc) ([]algo.Group, error) {
	if a == physical.SortGroupBy {
		return algo.SortGroup(recs, key)
	}
	return algo.HashGroup(recs, key)
}

// thetaPred combines declarative conditions and the residual predicate
// into one PredFunc.
func thetaPred(lop *plan.Operator) plan.PredFunc {
	conds := lop.Conditions
	base := lop.Pred
	return func(l, r data.Record) (bool, error) {
		for _, c := range conds {
			if !c.Op.Eval(l.Field(c.LeftField), r.Field(c.RightField)) {
				return false, nil
			}
		}
		if base != nil {
			return base(l, r)
		}
		return true, nil
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
