package sparksim

import (
	"context"
	"testing"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
)

func intRecords(n int) []data.Record {
	out := make([]data.Record, n)
	for i := range out {
		out[i] = data.NewRecord(data.Int(int64(i)))
	}
	return out
}

func TestConfigDefaults(t *testing.T) {
	p := New(Config{})
	c := p.Config()
	if c.Workers != 4 || c.SlotsPerWorker != 2 || c.Partitions != 8 {
		t.Errorf("defaults = %+v", c)
	}
	if c.Slots() != 8 {
		t.Errorf("slots = %d", c.Slots())
	}
	if c.JobOverhead != 50*time.Millisecond {
		t.Errorf("job overhead = %v", c.JobOverhead)
	}
}

func TestSplitEvenAndFlatten(t *testing.T) {
	recs := intRecords(10)
	parts := splitEven(recs, 3)
	if len(parts) != 3 {
		t.Fatalf("%d partitions", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Errorf("lost records: %d", total)
	}
	back := flatten(parts)
	if len(back) != 10 {
		t.Errorf("flatten lost records")
	}
	for i := range recs {
		if !data.EqualRecords(back[i], recs[i]) {
			t.Errorf("order changed at %d", i)
		}
	}
	// Degenerate cases.
	if got := splitEven(nil, 4); len(got) != 4 {
		t.Error("empty split wrong")
	}
	if got := splitEven(recs, 0); len(got) != 1 {
		t.Error("n=0 should clamp to 1")
	}
	if got := splitEven(recs, 100); len(flatten(got)) != 10 {
		t.Error("over-partitioning lost records")
	}
}

func TestConvertersRoundTrip(t *testing.T) {
	p := New(Config{Partitions: 4})
	reg := channel.NewRegistry()
	p.RegisterConverters(reg)
	in := channel.NewCollection(intRecords(17))
	part, _, _, err := reg.Convert(in, channel.Partitioned)
	if err != nil {
		t.Fatal(err)
	}
	if part.Records != 17 {
		t.Errorf("records metadata = %d", part.Records)
	}
	parts, err := partsOf(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Errorf("%d partitions", len(parts))
	}
	back, _, _, err := reg.Convert(part, channel.Collection)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := back.AsCollection()
	if len(recs) != 17 {
		t.Errorf("round trip lost records: %d", len(recs))
	}
}

func TestPartsOfErrors(t *testing.T) {
	if _, err := partsOf(channel.NewCollection(nil)); err == nil {
		t.Error("collection accepted as partitioned")
	}
	if _, err := partsOf(&channel.Channel{Format: channel.Partitioned, Payload: 3}); err == nil {
		t.Error("corrupt payload accepted")
	}
}

// runAtomOn runs a one-plan atom on the platform directly.
func runAtomOn(t *testing.T, p *Platform, build func(b *plan.Builder)) (map[int]*channel.Channel, engine.Metrics, *physical.Plan) {
	t.Helper()
	b := plan.NewBuilder("t")
	build(b)
	lp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := physical.FromLogical(lp)
	if err != nil {
		t.Fatal(err)
	}
	atom := &engine.TaskAtom{ID: 0, Kind: engine.AtomCompute, Platform: ID,
		Ops: pp.Ops, Exits: []*physical.Operator{pp.SinkOp}}
	exits, m, err := p.ExecuteAtom(context.Background(), atom, engine.AtomInputs{})
	if err != nil {
		t.Fatal(err)
	}
	return exits, m, pp
}

func TestVirtualClockChargesJobOverhead(t *testing.T) {
	p := New(Config{JobOverhead: 500 * time.Millisecond, TaskOverhead: time.Microsecond})
	_, m, _ := runAtomOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(intRecords(10)))
		b.Collect(s)
	})
	if m.Sim < 500*time.Millisecond {
		t.Errorf("sim %v missing job overhead", m.Sim)
	}
	if m.Jobs != 1 {
		t.Errorf("jobs = %d", m.Jobs)
	}
	// Wall time is real and must be far below simulated time here.
	if m.Wall > 100*time.Millisecond {
		t.Errorf("wall %v suspiciously high", m.Wall)
	}
}

func TestShuffleAccountedOnWideOps(t *testing.T) {
	p := New(Config{JobOverhead: time.Millisecond})
	exits, m, pp := runAtomOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(datagen.ZipfInts(1000, 50, 1)))
		ones := b.Map(s, func(r data.Record) (data.Record, error) {
			return r.Append(data.Int(1)), nil
		})
		g := b.ReduceByKey(ones, plan.FieldKey(0), plan.SumField(1))
		b.Collect(g)
	})
	if m.ShuffledBytes == 0 {
		t.Error("wide operator moved no shuffle bytes")
	}
	parts, err := partsOf(exits[pp.SinkOp.ID])
	if err != nil {
		t.Fatal(err)
	}
	recs := flatten(parts)
	if len(recs) == 0 || len(recs) > 50 {
		t.Errorf("reduce produced %d records", len(recs))
	}
}

func TestNarrowOpsDoNotShuffle(t *testing.T) {
	p := New(Config{JobOverhead: time.Millisecond})
	_, m, _ := runAtomOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(intRecords(1000)))
		f := b.Filter(s, func(r data.Record) (bool, error) { return r.Field(0).Int()%2 == 0, nil })
		mm := b.Map(f, plan.Identity())
		b.Collect(mm)
	})
	if m.ShuffledBytes != 0 {
		t.Errorf("narrow pipeline shuffled %d bytes", m.ShuffledBytes)
	}
}

func TestBroadcastChargedOnThetaJoin(t *testing.T) {
	p := New(Config{JobOverhead: time.Millisecond, Workers: 3})
	_, m, _ := runAtomOn(t, p, func(b *plan.Builder) {
		l := b.Source("l", plan.Collection(intRecords(50)))
		r := b.Source("r", plan.Collection(intRecords(20)))
		tj := b.ThetaJoin(l, r, func(a, c data.Record) (bool, error) {
			return a.Field(0).Int() < c.Field(0).Int(), nil
		})
		b.Collect(tj)
	})
	// Broadcast volume = right bytes × workers.
	rightBytes := data.TotalBytes(intRecords(20))
	if m.ShuffledBytes != rightBytes*3 {
		t.Errorf("broadcast bytes = %d, want %d", m.ShuffledBytes, rightBytes*3)
	}
}

func TestSortProducesGlobalOrder(t *testing.T) {
	p := New(Config{JobOverhead: time.Millisecond, Partitions: 4})
	exits, _, pp := runAtomOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(datagen.ZipfInts(500, 100, 2)))
		so := b.Sort(s, plan.FieldKey(0), false)
		b.Collect(so)
	})
	parts, err := partsOf(exits[pp.SinkOp.ID])
	if err != nil {
		t.Fatal(err)
	}
	flat := flatten(parts)
	for i := 1; i < len(flat); i++ {
		if flat[i-1].Field(0).Int() > flat[i].Field(0).Int() {
			t.Fatalf("global order violated at %d", i)
		}
	}
}

func TestStageWaveModel(t *testing.T) {
	// 8 tasks on 4 slots = 2 waves; each wave costs its max task plus
	// the task overhead.
	d := &datasetOps{cfg: Config{Workers: 2, SlotsPerWorker: 2, TaskOverhead: 10 * time.Millisecond}}
	times := []time.Duration{
		1 * time.Millisecond, 9 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, // wave 1: max 9ms
		5 * time.Millisecond, 1 * time.Millisecond, 4 * time.Millisecond, 2 * time.Millisecond, // wave 2: max 5ms
	}
	d.stage(times)
	want := 9*time.Millisecond + 10*time.Millisecond + 5*time.Millisecond + 10*time.Millisecond
	if d.clock != want {
		t.Errorf("stage clock = %v, want %v", d.clock, want)
	}
}

func TestReduceByKeyMapSideCombineLimitsShuffle(t *testing.T) {
	// With heavy key duplication, the combined shuffle volume must be
	// far below the raw input volume.
	recs := datagen.ZipfInts(10000, 4, 3) // only 4 distinct keys
	p := New(Config{JobOverhead: time.Millisecond})
	_, m, _ := runAtomOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(recs))
		ones := b.Map(s, func(r data.Record) (data.Record, error) {
			return r.Append(data.Int(1)), nil
		})
		g := b.ReduceByKey(ones, plan.FieldKey(0), plan.SumField(1))
		b.Collect(g)
	})
	rawBytes := data.TotalBytes(recs)
	if m.ShuffledBytes*10 > rawBytes {
		t.Errorf("combine ineffective: shuffled %d of %d raw bytes", m.ShuffledBytes, rawBytes)
	}
}

func TestProfileAndFormat(t *testing.T) {
	p := New(Config{})
	if !p.Profile().Distributed {
		t.Error("not marked distributed")
	}
	if p.NativeFormat() != channel.Partitioned {
		t.Error("native format wrong")
	}
	if p.ID() != ID {
		t.Error("id wrong")
	}
}
