package javaengine

import (
	"context"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func runPlanOn(t *testing.T, p *Platform, build func(b *plan.Builder)) ([]data.Record, engine.Metrics) {
	t.Helper()
	b := plan.NewBuilder("t")
	build(b)
	lp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := physical.FromLogical(lp)
	if err != nil {
		t.Fatal(err)
	}
	atom := &engine.TaskAtom{ID: 0, Kind: engine.AtomCompute, Platform: ID,
		Ops: pp.Ops, Exits: []*physical.Operator{pp.SinkOp}}
	exits, m, err := p.ExecuteAtom(context.Background(), atom, engine.AtomInputs{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := exits[pp.SinkOp.ID].AsCollection()
	if err != nil {
		t.Fatal(err)
	}
	return recs, m
}

func TestFullOperatorSet(t *testing.T) {
	p := New(Config{})
	src := []data.Record{
		data.NewRecord(data.Int(3), data.Str("c")),
		data.NewRecord(data.Int(1), data.Str("a")),
		data.NewRecord(data.Int(1), data.Str("a")),
		data.NewRecord(data.Int(2), data.Str("b")),
	}
	recs, m := runPlanOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(src))
		d := b.Distinct(s)
		so := b.Sort(d, plan.FieldKey(0), true)
		b.Collect(so)
	})
	if len(recs) != 3 {
		t.Fatalf("distinct+sort got %d records", len(recs))
	}
	if recs[0].Field(0).Int() != 3 || recs[2].Field(0).Int() != 1 {
		t.Errorf("descending sort wrong: %v", recs)
	}
	if m.Jobs != 1 || m.Sim <= m.Wall {
		t.Errorf("metrics = %+v (sim must include startup overhead)", m)
	}
}

func TestSampleAndCount(t *testing.T) {
	p := New(Config{})
	var src []data.Record
	for i := int64(0); i < 20; i++ {
		src = append(src, data.NewRecord(data.Int(i)))
	}
	recs, _ := runPlanOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(src))
		sm := b.Sample(s, 5)
		c := b.Count(sm)
		b.Collect(c)
	})
	if len(recs) != 1 || recs[0].Field(0).Int() != 5 {
		t.Errorf("sample+count = %v", recs)
	}
}

func TestGroupByAlgorithms(t *testing.T) {
	src := []data.Record{
		data.NewRecord(data.Int(1)), data.NewRecord(data.Int(2)), data.NewRecord(data.Int(1)),
	}
	for _, algo := range []physical.Algorithm{physical.HashGroupBy, physical.SortGroupBy} {
		p := New(Config{})
		b := plan.NewBuilder("g")
		s := b.Source("s", plan.Collection(src))
		g := b.GroupBy(s, plan.FieldKey(0), func(k data.Value, grp []data.Record) ([]data.Record, error) {
			return []data.Record{data.NewRecord(k, data.Int(int64(len(grp))))}, nil
		})
		b.Collect(g)
		pp, err := physical.FromLogical(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range pp.Ops {
			if op.Kind() == plan.KindGroupBy {
				op.Algo = algo
			}
		}
		atom := &engine.TaskAtom{Kind: engine.AtomCompute, Platform: ID,
			Ops: pp.Ops, Exits: []*physical.Operator{pp.SinkOp}}
		exits, _, err := p.ExecuteAtom(context.Background(), atom, engine.AtomInputs{})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		recs, _ := exits[pp.SinkOp.ID].AsCollection()
		if len(recs) != 2 {
			t.Errorf("%s: %d groups", algo, len(recs))
		}
	}
}

func TestLoopKindsRejected(t *testing.T) {
	d := &datasetOps{}
	op := &physical.Operator{Logical: plan.NewSynthetic(plan.KindLoopInput, "li")}
	if _, err := d.ExecOp(context.Background(), op, nil); err == nil {
		t.Error("LoopInput executed by platform")
	}
}

func TestRegisterProvidesAllMappings(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := Register(reg, Config{}); err != nil {
		t.Fatal(err)
	}
	kinds := []plan.OpKind{
		plan.KindSource, plan.KindMap, plan.KindFlatMap, plan.KindFilter,
		plan.KindGroupBy, plan.KindReduceByKey, plan.KindReduce, plan.KindSort,
		plan.KindDistinct, plan.KindUnion, plan.KindJoin, plan.KindThetaJoin,
		plan.KindCartesian, plan.KindCount, plan.KindSample, plan.KindSink,
		plan.KindRepeat, plan.KindDoWhile, plan.KindLoopInput,
	}
	for _, k := range kinds {
		pls := reg.PlatformsFor(k)
		if len(pls) != 1 || pls[0] != ID {
			t.Errorf("kind %s: platforms %v", k, pls)
		}
	}
	// The IEJoin mapping is cheaper than nested loop at scale — the
	// extensibility story's point.
	ie, ok1 := reg.MappingFor(ID, plan.KindThetaJoin, physical.IEJoin)
	nl, ok2 := reg.MappingFor(ID, plan.KindThetaJoin, physical.NestedLoop)
	if !ok1 || !ok2 {
		t.Fatal("theta join mappings missing")
	}
	cards := []int64{100000, 100000}
	if ie.Cost(nil, cards, 1000).Total() >= nl.Cost(nil, cards, 1000).Total() {
		t.Error("IEJoin not cheaper than nested loop at 1e5×1e5")
	}
}

func TestStartupOverheadConfigurable(t *testing.T) {
	p := New(Config{StartupOverhead: time.Second})
	_, m := runPlanOn(t, p, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		b.Collect(s)
	})
	if m.Sim < time.Second {
		t.Errorf("sim %v missing configured startup", m.Sim)
	}
}
