package javaengine

import (
	"bytes"
	"context"
	"math"
	"testing"

	"rheem/internal/core/batch"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// physOp wraps a logical operator the way physical.FromLogical would,
// enough for ExecOp dispatch.
func physOp(lop *plan.Operator) *physical.Operator {
	return &physical.Operator{Logical: lop, Algo: physical.Default}
}

// buildHinted builds the three hinted operators over one source and
// returns them (filter, project, aggregate).
func buildHinted(t *testing.T, op plan.CompareOp, operand data.Value) (*plan.Operator, *plan.Operator, *plan.Operator) {
	t.Helper()
	b := plan.NewBuilder("kernels")
	src := b.Source("s", plan.Collection(nil))
	f := b.FilterWhere(src, 0, op, operand)
	p := b.ProjectCols(f, 1, 0)
	a := b.AggregateCols(p, plan.AggSum, plan.AggMax)
	b.Collect(a)
	b.MustBuild()
	return f, p, a
}

// encodeRecs is the byte-identity yardstick.
func encodeRecs(t *testing.T, recs []data.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := data.WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runBoth executes one operator on the same input through the row path
// and the columnar path and asserts byte-identical outputs; it returns
// the row-path output. A row-path error must be matched by a
// columnar-path error with the same message.
func runBoth(t *testing.T, op *physical.Operator, recs []data.Record) []data.Record {
	t.Helper()
	row := &datasetOps{}
	rowOut, rowErr := row.ExecOp(context.Background(), op, []any{data.CloneRecords(recs)})
	col := &datasetOps{columnar: true}
	colOut, colErr := col.ExecOp(context.Background(), op, []any{batch.FromRecords(data.CloneRecords(recs))})
	if (rowErr == nil) != (colErr == nil) {
		t.Fatalf("error divergence: row %v, columnar %v", rowErr, colErr)
	}
	if rowErr != nil {
		if rowErr.Error() != colErr.Error() {
			t.Fatalf("error message divergence:\n  row      %q\n  columnar %q", rowErr, colErr)
		}
		return nil
	}
	rowRecs := rowOut.([]data.Record)
	colRecs := asRecords(colOut)
	if w, h := encodeRecs(t, rowRecs), encodeRecs(t, colRecs); !bytes.Equal(w, h) {
		t.Fatalf("output divergence:\n  row      %v\n  columnar %v", rowRecs, colRecs)
	}
	return rowRecs
}

func TestColumnarFilterMatchesRowPath(t *testing.T) {
	ints := []data.Record{
		data.NewRecord(data.Int(5), data.Str("a")),
		data.NewRecord(data.Int(-3), data.Str("b")),
		data.NewRecord(data.Null(), data.Str("c")),
		data.NewRecord(data.Int(7), data.Str("d")),
		data.NewRecord(data.Int(5), data.Str("e")),
	}
	floats := []data.Record{
		data.NewRecord(data.Float(1.5), data.Int(1)),
		data.NewRecord(data.Float(math.NaN()), data.Int(2)),
		data.NewRecord(data.Float(-0.0), data.Int(3)),
		data.NewRecord(data.Float(0.0), data.Int(4)),
		data.NewRecord(data.Float(math.Inf(-1)), data.Int(5)),
	}
	strs := []data.Record{
		data.NewRecord(data.Str("pear"), data.Int(1)),
		data.NewRecord(data.Str(""), data.Int(2)),
		data.NewRecord(data.Str("apple"), data.Int(3)),
		data.NewRecord(data.Null(), data.Int(4)),
	}
	mixed := []data.Record{
		data.NewRecord(data.Int(1), data.Int(1)),
		data.NewRecord(data.Str("x"), data.Int(2)),
		data.NewRecord(data.Float(2.5), data.Int(3)),
	}
	ops := []plan.CompareOp{plan.Less, plan.LessEq, plan.Greater, plan.GreaterEq, plan.Eq, plan.NotEq}
	cases := []struct {
		name    string
		recs    []data.Record
		operand data.Value
	}{
		{"int", ints, data.Int(5)},
		{"float", floats, data.Float(0.0)},
		{"float-nan-operand", floats, data.Float(math.NaN())},
		{"string", strs, data.Str("mango")},
		{"mixed-any-column", mixed, data.Int(2)},
		{"cross-kind-operand", ints, data.Float(5)},
		{"empty", nil, data.Int(0)},
	}
	for _, tc := range cases {
		for _, cmp := range ops {
			t.Run(tc.name+"/"+cmp.String(), func(t *testing.T) {
				f, _, _ := buildHinted(t, cmp, tc.operand)
				runBoth(t, physOp(f), tc.recs)
			})
		}
	}
}

func TestColumnarProjectMatchesRowPath(t *testing.T) {
	recs := []data.Record{
		data.NewRecord(data.Int(1), data.Str("a"), data.Bool(true)),
		data.NewRecord(data.Null(), data.Str("b"), data.Bool(false)),
	}
	b := plan.NewBuilder("proj")
	src := b.Source("s", plan.Collection(nil))
	p := b.ProjectCols(src, 2, 0, 2)
	b.Collect(p)
	b.MustBuild()
	out := runBoth(t, physOp(p), recs)
	if len(out) != 2 || out[0].Len() != 3 {
		t.Fatalf("unexpected projection shape: %v", out)
	}
}

func TestColumnarAggregateMatchesRowPath(t *testing.T) {
	cases := []struct {
		name string
		recs []data.Record
		fns  []plan.AggFn
	}{
		{"ints", []data.Record{
			data.NewRecord(data.Int(3), data.Int(9)),
			data.NewRecord(data.Int(-5), data.Int(2)),
			data.NewRecord(data.Int(8), data.Int(2)),
		}, []plan.AggFn{plan.AggSum, plan.AggMin}},
		{"floats-with-nan", []data.Record{
			data.NewRecord(data.Float(1.5), data.Float(2)),
			data.NewRecord(data.Float(math.NaN()), data.Float(math.NaN())),
			data.NewRecord(data.Float(-3), data.Float(7)),
		}, []plan.AggFn{plan.AggMin, plan.AggMax}},
		{"nan-first", []data.Record{
			data.NewRecord(data.Float(math.NaN())),
			data.NewRecord(data.Float(1)),
			data.NewRecord(data.Float(2)),
		}, []plan.AggFn{plan.AggMax}},
		{"strings", []data.Record{
			data.NewRecord(data.Str("pear"), data.Str("pear")),
			data.NewRecord(data.Str("apple"), data.Str("quince")),
		}, []plan.AggFn{plan.AggMin, plan.AggMax}},
		{"first", []data.Record{
			data.NewRecord(data.Str("keep"), data.Int(1)),
			data.NewRecord(data.Str("drop"), data.Int(2)),
		}, []plan.AggFn{plan.AggFirst, plan.AggSum}},
		{"empty", nil, []plan.AggFn{plan.AggSum}},
		{"single-row", []data.Record{
			data.NewRecord(data.Int(42)),
		}, []plan.AggFn{plan.AggSum}},
		{"sum-null-errors", []data.Record{
			data.NewRecord(data.Int(1)),
			data.NewRecord(data.Null()),
		}, []plan.AggFn{plan.AggSum}},
		{"sum-string-errors", []data.Record{
			data.NewRecord(data.Str("a")),
			data.NewRecord(data.Str("b")),
		}, []plan.AggFn{plan.AggSum}},
		{"arity-mismatch-errors", []data.Record{
			data.NewRecord(data.Int(1), data.Int(2)),
			data.NewRecord(data.Int(3), data.Int(4)),
		}, []plan.AggFn{plan.AggSum}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := plan.NewBuilder("agg")
			src := b.Source("s", plan.Collection(nil))
			a := b.AggregateCols(src, tc.fns...)
			b.Collect(a)
			b.MustBuild()
			runBoth(t, physOp(a), tc.recs)
		})
	}
}

// TestColumnarKernelsActuallyVectorize guards against silent fallback:
// hinted operators over columnar batches must be handled by
// execColumnar, and batch results must stay batches through the sink.
func TestColumnarKernelsActuallyVectorize(t *testing.T) {
	recs := []data.Record{
		data.NewRecord(data.Int(1), data.Str("a")),
		data.NewRecord(data.Int(2), data.Str("b")),
	}
	f, p, a := buildHinted(t, plan.Less, data.Int(10))
	in := batch.FromRecords(recs)
	out, handled, err := execColumnar(physOp(f), []any{in})
	if err != nil || !handled {
		t.Fatalf("filter not handled: handled=%v err=%v", handled, err)
	}
	fb, ok := out.(*batch.Batch)
	if !ok {
		t.Fatalf("filter output is %T, want *batch.Batch", out)
	}
	if fb != in {
		t.Error("all-pass filter should return the input batch unchanged")
	}
	out, handled, err = execColumnar(physOp(p), []any{fb})
	if err != nil || !handled {
		t.Fatalf("project not handled: handled=%v err=%v", handled, err)
	}
	pb := out.(*batch.Batch)
	// Zero-copy projection: column 1 of the projection aliases column 0
	// of the source batch.
	if &pb.Col(1).Int64s[0] != &in.Col(0).Int64s[0] {
		t.Error("projection copied column storage")
	}
	if _, handled, _ = execColumnar(physOp(a), []any{pb}); !handled {
		t.Fatal("aggregate not handled")
	}
	// Row-backed (ragged) batches must fall back.
	ragged := batch.FromRows([]data.Record{data.NewRecord(data.Int(1))})
	if _, handled, _ = execColumnar(physOp(f), []any{ragged}); handled {
		t.Error("row-backed batch should fall back to the row path")
	}
	// Unhinted operators must fall back.
	b := plan.NewBuilder("plain")
	src := b.Source("s", plan.Collection(nil))
	plainF := b.Filter(src, func(r data.Record) (bool, error) { return true, nil })
	b.Collect(plainF)
	b.MustBuild()
	if _, handled, _ = execColumnar(physOp(plainF), []any{in}); handled {
		t.Error("unhinted filter should fall back to the row path")
	}
}

func TestSupportsBatch(t *testing.T) {
	f, p, a := buildHinted(t, plan.Less, data.Int(1))
	on := New(Config{Columnar: true})
	off := New(Config{})
	for _, lop := range []*plan.Operator{f, p, a} {
		if !on.SupportsBatch(physOp(lop)) {
			t.Errorf("columnar platform should support batch for hinted %s", lop.Kind())
		}
		if off.SupportsBatch(physOp(lop)) {
			t.Errorf("row platform must not advertise batch for %s", lop.Kind())
		}
	}
	b := plan.NewBuilder("plain")
	src := b.Source("s", plan.Collection(nil))
	plainF := b.Filter(src, func(r data.Record) (bool, error) { return true, nil })
	sink := b.Collect(plainF)
	b.MustBuild()
	if on.SupportsBatch(physOp(plainF)) {
		t.Error("unhinted filter must not be batch-capable")
	}
	if !on.SupportsBatch(physOp(sink)) {
		t.Error("sinks pass batches through and should be batch-capable")
	}
}
