// Package javaengine is the single-node, in-process execution platform
// — the reproduction's stand-in for the "plain Java program" side of
// the paper's Figure 2 (see DESIGN.md §3).
//
// It executes every physical operator sequentially on driver-resident
// []data.Record collections by delegating to the shared kernels in
// package algo. It has no per-job overhead worth modelling and no
// parallelism: its simulated time equals its measured wall time plus a
// small constant per atom. That is exactly why it wins on small inputs
// and iteration-heavy loops, and loses to the Spark simulator once
// inputs are large enough for parallelism to amortise job overheads.
package javaengine

import (
	"context"
	"fmt"
	"time"

	"rheem/internal/core/algo"
	"rheem/internal/core/batch"
	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// ID is the platform identifier.
const ID engine.PlatformID = "java"

// Config tunes the engine's (small) simulated overheads.
type Config struct {
	// StartupOverhead is charged to simulated time once per atom
	// execution, modelling in-process dispatch. Default 200µs.
	StartupOverhead time.Duration
	// Columnar enables the vectorized execution path: operators
	// carrying declarative column hints (plan.ColPred, plan.ColProject,
	// plan.ColAgg) run columnar kernels over channel.Batch inputs
	// instead of calling their UDF per record, and the platform
	// advertises batch capability to the optimizer and executor
	// (engine.Vectorized). Results are byte-identical to the row path.
	Columnar bool
}

func (c *Config) defaults() {
	if c.StartupOverhead == 0 {
		c.StartupOverhead = 200 * time.Microsecond
	}
}

// Platform is the single-node engine.
type Platform struct {
	cfg Config
}

// New returns a platform with the given configuration.
func New(cfg Config) *Platform {
	cfg.defaults()
	return &Platform{cfg: cfg}
}

// ID implements engine.Platform.
func (p *Platform) ID() engine.PlatformID { return ID }

// Profile implements engine.Platform.
func (p *Platform) Profile() engine.Profile {
	return engine.Profile{Description: "single-node in-process engine"}
}

// NativeFormat implements engine.Platform: the engine computes directly
// on driver collections.
func (p *Platform) NativeFormat() channel.Format { return channel.Collection }

// RegisterConverters implements engine.Platform. The native format is
// the hub format, so no converters are needed.
func (p *Platform) RegisterConverters(*channel.Registry) {}

// SplitNative implements engine.Sharder: the native format is the hub
// Collection, so a shard is simply a contiguous slice view of the
// record batch — zero copies.
func (p *Platform) SplitNative(ch *channel.Channel, n int) ([]*channel.Channel, error) {
	return channel.Partition(ch, n)
}

// SupportsBatch implements engine.Vectorized: with the columnar path
// enabled, operators whose logical form carries a declarative column
// hint (and sinks, which pass data through untouched) execute directly
// on channel.Batch inputs.
func (p *Platform) SupportsBatch(op *physical.Operator) bool {
	if !p.cfg.Columnar || op.Logical == nil {
		return false
	}
	lop := op.Logical
	switch lop.Kind() {
	case plan.KindFilter:
		return lop.ColPred != nil
	case plan.KindMap:
		return lop.ColProject != nil
	case plan.KindReduce:
		return lop.ColAgg != nil
	case plan.KindSink:
		return true
	default:
		return false
	}
}

// ExecuteAtom implements engine.Platform.
func (p *Platform) ExecuteAtom(ctx context.Context, atom *engine.TaskAtom, inputs engine.AtomInputs) (map[int]*channel.Channel, engine.Metrics, error) {
	start := time.Now()
	d := &datasetOps{columnar: p.cfg.Columnar}
	exits, err := engine.RunAtom(ctx, d, atom, inputs)
	wall := time.Since(start)
	m := engine.Metrics{
		Wall:       wall,
		Sim:        wall + p.cfg.StartupOverhead,
		Jobs:       1,
		InRecords:  d.inRecords,
		OutRecords: d.outRecords,
	}
	if err != nil {
		return nil, m, err
	}
	return exits, m, nil
}

// datasetOps adapts the engine's datasets — []data.Record rows, or
// *batch.Batch columns on the vectorized path — to the generic atom
// runner.
type datasetOps struct {
	columnar   bool
	inRecords  int64
	outRecords int64
}

func (d *datasetOps) FromChannel(ch *channel.Channel) (any, error) {
	if ch.Format == channel.Batch {
		b, err := ch.AsBatch()
		if err != nil {
			return nil, err
		}
		d.inRecords += int64(b.Len())
		return b, nil
	}
	recs, err := ch.AsCollection()
	if err != nil {
		return nil, err
	}
	d.inRecords += int64(len(recs))
	return recs, nil
}

func (d *datasetOps) ToChannel(ds any) (*channel.Channel, error) {
	if b, ok := ds.(*batch.Batch); ok {
		d.outRecords += int64(b.Len())
		return channel.NewBatch(b), nil
	}
	recs := ds.([]data.Record)
	d.outRecords += int64(len(recs))
	return channel.NewCollection(recs), nil
}

// asRecords materialises a dataset for the row path; columnar batches
// are converted losslessly.
func asRecords(ds any) []data.Record {
	if b, ok := ds.(*batch.Batch); ok {
		return b.ToRecords()
	}
	return ds.([]data.Record)
}

// ExecOp executes one physical operator via the shared kernels —
// columnar where an input batch and a column hint line up, rows
// otherwise. It is the java engine's complete set of execution
// operators.
func (d *datasetOps) ExecOp(_ context.Context, op *physical.Operator, inputs []any) (any, error) {
	if d.columnar {
		if out, handled, err := execColumnar(op, inputs); handled {
			return out, err
		}
	}
	in := func(i int) []data.Record { return asRecords(inputs[i]) }
	lop := op.Logical
	switch lop.Kind() {
	case plan.KindSource:
		return lop.Source()
	case plan.KindMap:
		recs := in(0)
		out := make([]data.Record, 0, len(recs))
		for _, r := range recs {
			nr, err := lop.Map(r)
			if err != nil {
				return nil, err
			}
			out = append(out, nr)
		}
		return out, nil
	case plan.KindFlatMap:
		var out []data.Record
		for _, r := range in(0) {
			nrs, err := lop.FlatMap(r)
			if err != nil {
				return nil, err
			}
			out = append(out, nrs...)
		}
		return out, nil
	case plan.KindFilter:
		recs := in(0)
		out := make([]data.Record, 0, len(recs))
		for _, r := range recs {
			ok, err := lop.Filter(r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return out, nil
	case plan.KindGroupBy:
		groups, err := groupWith(op.Algo, in(0), lop.Key)
		if err != nil {
			return nil, err
		}
		var out []data.Record
		for _, g := range groups {
			res, err := lop.Group(g.Key, g.Records)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		return out, nil
	case plan.KindReduceByKey:
		groups, err := groupWith(op.Algo, in(0), lop.Key)
		if err != nil {
			return nil, err
		}
		return algo.ReduceGroups(groups, lop.Reduce)
	case plan.KindReduce:
		return algo.Reduce(in(0), lop.Reduce)
	case plan.KindSort:
		return algo.SortBy(in(0), lop.Key, lop.Desc)
	case plan.KindDistinct:
		if op.Algo == physical.SortDistinct {
			sorted, err := algo.SortBy(in(0), plan.RecordKey(), false)
			if err != nil {
				return nil, err
			}
			return algo.Distinct(sorted), nil
		}
		return algo.Distinct(in(0)), nil
	case plan.KindUnion:
		l, r := in(0), in(1)
		out := make([]data.Record, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
		return out, nil
	case plan.KindJoin:
		if op.Algo == physical.SortMergeJoin {
			return algo.SortMergeJoin(in(0), in(1), lop.Key, lop.RightKey)
		}
		return algo.HashJoin(in(0), in(1), lop.Key, lop.RightKey)
	case plan.KindThetaJoin:
		if op.Algo == physical.IEJoin && len(lop.Conditions) > 0 {
			return algo.IEJoinRecords(in(0), in(1), lop.Conditions, lop.Pred)
		}
		pred := lop.Pred
		if pred == nil {
			pred = condsPred(lop.Conditions)
		} else if len(lop.Conditions) > 0 {
			cp := condsPred(lop.Conditions)
			base := lop.Pred
			pred = func(l, r data.Record) (bool, error) {
				ok, err := cp(l, r)
				if err != nil || !ok {
					return false, err
				}
				return base(l, r)
			}
		}
		return algo.NestedLoopJoin(in(0), in(1), pred)
	case plan.KindCartesian:
		return algo.Cartesian(in(0), in(1)), nil
	case plan.KindCount:
		return []data.Record{data.NewRecord(data.Int(int64(len(in(0)))))}, nil
	case plan.KindSample:
		recs := in(0)
		if len(recs) > lop.N {
			recs = recs[:lop.N]
		}
		return recs, nil
	case plan.KindSink:
		return in(0), nil
	case plan.KindRepeat, plan.KindDoWhile, plan.KindLoopInput:
		return nil, fmt.Errorf("javaengine: %s must be driven by the executor", lop.Kind())
	default:
		return nil, fmt.Errorf("javaengine: unsupported operator kind %s", lop.Kind())
	}
}

// groupWith dispatches on the grouping algorithm decision.
func groupWith(a physical.Algorithm, recs []data.Record, key plan.KeyFunc) ([]algo.Group, error) {
	if a == physical.SortGroupBy {
		return algo.SortGroup(recs, key)
	}
	return algo.HashGroup(recs, key)
}

// condsPred turns declarative inequality conditions into a predicate.
func condsPred(conds []plan.IECondition) plan.PredFunc {
	return func(l, r data.Record) (bool, error) {
		for _, c := range conds {
			if !c.Op.Eval(l.Field(c.LeftField), r.Field(c.RightField)) {
				return false, nil
			}
		}
		return true, nil
	}
}

// Register creates the platform, registers it and its declarative
// operator mappings, and returns it. Cost constants are calibrated to
// the shared kernels: ~500ns of CPU per record for linear operators.
func Register(reg *engine.Registry, cfg Config) (*Platform, error) {
	p := New(cfg)
	if err := reg.RegisterPlatform(p); err != nil {
		return nil, err
	}
	const perRec = 200 * time.Nanosecond // calibrated to the shared kernels (see EXPERIMENTS.md)
	linear := cost.PerRecord(0, perRec, perRec/4)
	nlogn := cost.NLogN(0, perRec/2)
	quadratic := cost.PairQuadratic(0, 100*time.Nanosecond)
	// Sources have no inputs; their work is producing records.
	source := cost.PerRecord(0, 0, perRec)

	type md struct {
		kind plan.OpKind
		algo physical.Algorithm
		m    cost.Model
		hint string
	}
	decls := []md{
		{plan.KindSource, physical.Default, source, "driver-side read"},
		{plan.KindMap, physical.Default, linear, ""},
		{plan.KindFlatMap, physical.Default, linear, ""},
		{plan.KindFilter, physical.Default, linear, ""},
		{plan.KindGroupBy, physical.HashGroupBy, linear, "no order produced"},
		{plan.KindGroupBy, physical.SortGroupBy, nlogn, "groups ordered by key"},
		{plan.KindReduceByKey, physical.HashGroupBy, linear, ""},
		{plan.KindReduceByKey, physical.SortGroupBy, nlogn, ""},
		{plan.KindReduce, physical.Default, linear, ""},
		{plan.KindSort, physical.Default, nlogn, ""},
		{plan.KindDistinct, physical.HashDistinct, linear, ""},
		{plan.KindDistinct, physical.SortDistinct, nlogn, ""},
		{plan.KindUnion, physical.Default, linear, ""},
		{plan.KindJoin, physical.HashJoin, linear, "hash build on right input"},
		{plan.KindJoin, physical.SortMergeJoin, nlogn, ""},
		{plan.KindThetaJoin, physical.NestedLoop, quadratic, "arbitrary predicates"},
		{plan.KindThetaJoin, physical.IEJoin, cost.NLogN(0, 300*time.Nanosecond), "inequality conditions only"},
		{plan.KindCartesian, physical.Default, quadratic, ""},
		{plan.KindCount, physical.Default, linear, ""},
		{plan.KindSample, physical.Default, linear, ""},
		{plan.KindSink, physical.Default, cost.ConstModel(cost.Cost{}), ""},
		{plan.KindRepeat, physical.Default, cost.ConstModel(cost.Cost{}), "loop driven by executor"},
		{plan.KindDoWhile, physical.Default, cost.ConstModel(cost.Cost{}), "loop driven by executor"},
		{plan.KindLoopInput, physical.Default, cost.ConstModel(cost.Cost{Startup: p.cfg.StartupOverhead}), "in-process iteration"},
	}
	for _, d := range decls {
		if err := reg.RegisterMapping(engine.Mapping{
			Platform: ID, Kind: d.kind, Algo: d.algo, Cost: d.m, Hint: d.hint,
		}); err != nil {
			return nil, err
		}
	}
	return p, nil
}
