package javaengine

import (
	"testing"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

func TestSplitNativeIsZeroCopyPartition(t *testing.T) {
	// The java engine's native format is the hub Collection, so its
	// native split is exactly channel.Partition: contiguous slice views.
	p := New(Config{})
	recs := make([]data.Record, 10)
	for i := range recs {
		recs[i] = data.NewRecord(data.Int(int64(i)))
	}
	ch := channel.NewCollection(recs)
	shards, err := p.SplitNative(ch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("%d shards, want 3", len(shards))
	}
	var total int64
	for i, s := range shards {
		sr, err := s.AsCollection()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && &sr[0] != &recs[0] {
			t.Error("shard 0 does not alias the original records")
		}
		total += s.Records
	}
	if total != ch.Records {
		t.Errorf("shards hold %d records, want %d", total, ch.Records)
	}
}
