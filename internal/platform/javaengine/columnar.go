// Vectorized execution operators: columnar kernels for the hot-path
// operator shapes (filter, projection, global aggregate) running
// directly over batch.Batch inputs. Each kernel is the column form of
// the same declarative spec that generated the operator's row UDF
// (plan.ColumnPredicate / ColProject / ColumnAggregate), so the two
// paths compute identical results — the conformance battery checks
// byte-identity under the canonical encoding.
//
// The typed fast loops below express every comparison through < and >
// only, exactly like plan.CompareValues, so NaN ordering ("keep-left")
// matches the row path bit for bit.

package javaengine

import (
	"fmt"
	"strings"

	"rheem/internal/core/algo"
	"rheem/internal/core/batch"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// execColumnar runs op on a columnar kernel when the input is a batch
// and the operator carries a matching column hint. handled=false sends
// the operator to the row path (after lossless materialisation), which
// remains the semantic ground truth.
func execColumnar(op *physical.Operator, inputs []any) (out any, handled bool, err error) {
	lop := op.Logical
	if lop == nil {
		return nil, false, nil
	}
	switch lop.Kind() {
	case plan.KindFilter:
		if lop.ColPred == nil {
			return nil, false, nil
		}
		b, ok := batchInput(inputs, 0)
		if !ok || lop.ColPred.Field >= b.NumCols() {
			return nil, false, nil
		}
		res := filterBatch(b, lop.ColPred)
		return res, true, nil
	case plan.KindMap:
		if lop.ColProject == nil {
			return nil, false, nil
		}
		b, ok := batchInput(inputs, 0)
		if !ok {
			return nil, false, nil
		}
		for _, c := range lop.ColProject {
			if c < 0 || c >= b.NumCols() {
				return nil, false, nil // row path reproduces Record.Project's panic
			}
		}
		return b.Project(lop.ColProject...), true, nil
	case plan.KindReduce:
		if lop.ColAgg == nil {
			return nil, false, nil
		}
		b, ok := batchInput(inputs, 0)
		if !ok {
			return nil, false, nil
		}
		res, err := aggregateBatch(b, lop.ColAgg)
		if err != nil {
			return nil, true, err
		}
		return res, true, nil
	case plan.KindSink:
		// Sinks pass data through untouched; keeping the batch intact
		// defers materialisation to the channel boundary.
		return inputs[0], true, nil
	default:
		return nil, false, nil
	}
}

// batchInput returns input i as a columnar batch, or ok=false when the
// dataset is rows or a row-backed (ragged) batch.
func batchInput(inputs []any, i int) (*batch.Batch, bool) {
	b, ok := inputs[i].(*batch.Batch)
	if !ok || !b.Columnar() {
		return nil, false
	}
	return b, true
}

// filterBatch evaluates the predicate column-at-a-time, collecting the
// indices of matching rows and gathering them into a fresh batch. When
// every row matches, the input batch is returned unchanged (zero-copy).
func filterBatch(b *batch.Batch, p *plan.ColumnPredicate) *batch.Batch {
	n := b.Len()
	if n == 0 {
		return b
	}
	sel := selectRows(b, p)
	if len(sel) == n {
		return b
	}
	return gather(b, sel)
}

// selectRows returns the indices of rows matching the predicate, in
// order. Typed columns whose kind matches the operand take a tight
// unboxed loop; everything else goes through the generic value path,
// which applies the exact row-UDF semantics (plan.ColumnPredicate.Match).
func selectRows(b *batch.Batch, p *plan.ColumnPredicate) []int32 {
	n := b.Len()
	col := b.Col(p.Field)
	off := b.Off()
	sel := make([]int32, 0, n)
	keep := func(i int) { sel = append(sel, int32(i)) }

	switch {
	case col.Kind == batch.ColInt64 && p.Operand.Kind() == data.KindInt:
		k := p.Operand.Int()
		if col.Valid == nil {
			for i, v := range col.Int64s {
				if cmpMatch(p.Op, v < k, v > k) {
					keep(i)
				}
			}
		} else {
			for i, v := range col.Int64s {
				if col.Valid.Get(off+i) && cmpMatch(p.Op, v < k, v > k) {
					keep(i)
				}
			}
		}
	case col.Kind == batch.ColFloat64 && p.Operand.Kind() == data.KindFloat:
		k := p.Operand.Float()
		if col.Valid == nil {
			for i, v := range col.Float64s {
				if cmpMatch(p.Op, v < k, v > k) {
					keep(i)
				}
			}
		} else {
			for i, v := range col.Float64s {
				if col.Valid.Get(off+i) && cmpMatch(p.Op, v < k, v > k) {
					keep(i)
				}
			}
		}
	case col.Kind == batch.ColString && p.Operand.Kind() == data.KindString:
		k := p.Operand.Str()
		if col.Valid == nil {
			for i, v := range col.Strings {
				c := strings.Compare(v, k)
				if cmpMatch(p.Op, c < 0, c > 0) {
					keep(i)
				}
			}
		} else {
			for i, v := range col.Strings {
				if !col.Valid.Get(off + i) {
					continue
				}
				c := strings.Compare(v, k)
				if cmpMatch(p.Op, c < 0, c > 0) {
					keep(i)
				}
			}
		}
	default:
		for i := 0; i < n; i++ {
			if p.Match(col.Value(off, i)) {
				keep(i)
			}
		}
	}
	return sel
}

// cmpMatch decides a comparison from the two primitive orderings
// (less, greater) alone — ≤, ≥, == and != are derived by negation, the
// formulation that keeps NaN semantics identical to plan.CompareValues.
func cmpMatch(op plan.CompareOp, less, greater bool) bool {
	switch op {
	case plan.Less:
		return less
	case plan.LessEq:
		return !greater
	case plan.Greater:
		return greater
	case plan.GreaterEq:
		return !less
	case plan.Eq:
		return !less && !greater
	case plan.NotEq:
		return less || greater
	default:
		return false
	}
}

// gather builds a new batch holding the selected rows of b, column by
// column. Validity bitmaps are rebuilt densely (offset zero).
func gather(b *batch.Batch, sel []int32) *batch.Batch {
	n := len(sel)
	off := b.Off()
	cols := make([]batch.Column, b.NumCols())
	for c := range cols {
		src := b.Col(c)
		dst := batch.Column{Kind: src.Kind}
		if src.Kind != batch.ColAny && src.Valid != nil {
			valid := algo.NewBitset(n)
			for j, i := range sel {
				if src.Valid.Get(off + int(i)) {
					valid.Set(j)
				}
			}
			dst.Valid = valid
		}
		switch src.Kind {
		case batch.ColInt64:
			dst.Int64s = make([]int64, n)
			for j, i := range sel {
				dst.Int64s[j] = src.Int64s[i]
			}
		case batch.ColFloat64:
			dst.Float64s = make([]float64, n)
			for j, i := range sel {
				dst.Float64s[j] = src.Float64s[i]
			}
		case batch.ColString:
			dst.Strings = make([]string, n)
			for j, i := range sel {
				dst.Strings[j] = src.Strings[i]
			}
		case batch.ColBool:
			dst.Bools = make([]bool, n)
			for j, i := range sel {
				dst.Bools[j] = src.Bools[i]
			}
		default:
			dst.Any = make([]data.Value, n)
			for j, i := range sel {
				dst.Any[j] = src.Any[i]
			}
		}
		cols[c] = dst
	}
	nb, err := batch.New(n, cols)
	if err != nil {
		panic(fmt.Sprintf("javaengine: gather built inconsistent batch: %v", err))
	}
	return nb
}

// aggregateBatch folds each column under its AggFn, mirroring
// algo.Reduce exactly: empty input yields empty output, a single row
// comes back unfolded, and a column-count mismatch surfaces the same
// arity error the row-path ReduceFunc raises.
func aggregateBatch(b *batch.Batch, agg *plan.ColumnAggregate) ([]data.Record, error) {
	n := b.Len()
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		return b.ToRecords(), nil
	}
	if b.NumCols() != len(agg.Fns) {
		// Same shape check (and message) the row fold applies per pair.
		return nil, fmt.Errorf("algo: reduce: plan: column aggregate over %d fields folding %d/%d-field records",
			len(agg.Fns), b.NumCols(), b.NumCols())
	}
	out := make([]data.Value, len(agg.Fns))
	for c, fn := range agg.Fns {
		v, err := foldColumn(b, c, fn)
		if err != nil {
			return nil, fmt.Errorf("algo: reduce: %w", err)
		}
		out[c] = v
	}
	return []data.Record{data.NewRecord(out...)}, nil
}

// foldColumn folds one column under fn. Typed all-valid columns take
// unboxed loops; anything else folds materialised values pairwise via
// AggFn.Fold, which is the row semantics verbatim (including the error
// on summing nulls or mixed kinds).
func foldColumn(b *batch.Batch, c int, fn plan.AggFn) (data.Value, error) {
	col := b.Col(c)
	off := b.Off()
	n := b.Len()

	if fn == plan.AggFirst {
		return col.Value(off, 0), nil
	}
	if col.Kind != batch.ColAny && col.Valid == nil {
		switch col.Kind {
		case batch.ColInt64:
			acc := col.Int64s[0]
			switch fn {
			case plan.AggSum:
				for _, v := range col.Int64s[1:] {
					acc += v
				}
			case plan.AggMin:
				for _, v := range col.Int64s[1:] {
					if v < acc {
						acc = v
					}
				}
			case plan.AggMax:
				for _, v := range col.Int64s[1:] {
					if v > acc {
						acc = v
					}
				}
			}
			return data.Int(acc), nil
		case batch.ColFloat64:
			acc := col.Float64s[0]
			switch fn {
			case plan.AggSum:
				for _, v := range col.Float64s[1:] {
					acc += v
				}
			case plan.AggMin:
				// CompareValues(b,a) < 0 ⇔ b < a; NaN keeps the left
				// accumulator, so plain < matches the fold exactly.
				for _, v := range col.Float64s[1:] {
					if v < acc {
						acc = v
					}
				}
			case plan.AggMax:
				for _, v := range col.Float64s[1:] {
					if v > acc {
						acc = v
					}
				}
			}
			return data.Float(acc), nil
		case batch.ColString:
			if fn == plan.AggSum {
				return data.Null(), fmt.Errorf("plan: cannot sum string and string values")
			}
			acc := col.Strings[0]
			for _, v := range col.Strings[1:] {
				c := strings.Compare(v, acc)
				if (fn == plan.AggMin && c < 0) || (fn == plan.AggMax && c > 0) {
					acc = v
				}
			}
			return data.Str(acc), nil
		}
	}
	// Generic pairwise fold over materialised values.
	acc := col.Value(off, 0)
	for i := 1; i < n; i++ {
		v, err := fn.Fold(acc, col.Value(off, i))
		if err != nil {
			return data.Null(), err
		}
		acc = v
	}
	return acc, nil
}
