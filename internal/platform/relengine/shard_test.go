package relengine

import (
	"testing"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

func TestSplitNativeSlicesRows(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("people", peopleSchema())
	if err != nil {
		t.Fatal(err)
	}
	seedPeople(t, tab)
	p := New(db, Config{})

	shards, err := p.SplitNative(TableChannel(tab), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("%d shards, want 2", len(shards))
	}
	orig := tab.rowsUnsafe()
	var replay []data.Record
	for i, s := range shards {
		st, err := tableOf(s)
		if err != nil {
			t.Fatal(err)
		}
		rows := st.rowsUnsafe()
		// Shard tables are zero-copy views of the source row snapshot.
		if &rows[0] != &orig[len(replay)] {
			t.Errorf("shard %d does not alias the source rows", i)
		}
		replay = append(replay, rows...)
	}
	if len(replay) != len(orig) {
		t.Fatalf("shards replay %d rows of %d", len(replay), len(orig))
	}
	for i := range orig {
		if !data.EqualRecords(orig[i], replay[i]) {
			t.Fatalf("row %d reordered by split", i)
		}
	}
}

func TestSplitNativeDegenerateAndErrors(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("people", peopleSchema())
	seedPeople(t, tab)
	p := New(db, Config{})

	ch := TableChannel(tab)
	shards, err := p.SplitNative(ch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0] != ch {
		t.Errorf("p=1 split = %d shards, want the original channel", len(shards))
	}
	// More shards than rows: clamp, never emit empty shard tables.
	shards, err = p.SplitNative(ch, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != tab.NumRows() {
		t.Errorf("%d shards for %d rows", len(shards), tab.NumRows())
	}
	if _, err := p.SplitNative(channel.NewCollection(nil), 2); err == nil {
		t.Error("SplitNative accepted a collection channel")
	}
}
