package relengine

import (
	"context"
	"fmt"
	"time"

	"rheem/internal/core/algo"
	"rheem/internal/core/batch"
	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// ID is the platform identifier.
const ID engine.PlatformID = "relational"

// Config tunes the simulated-time profile of the engine.
type Config struct {
	// ConnectOverhead is charged per atom execution (statement
	// planning/dispatch). Default 5ms.
	ConnectOverhead time.Duration
	// RelationalBoost scales simulated time for relational operators
	// (group-by, join, sort, distinct, count): compiled execution is
	// faster than the generic kernels' wall time. Default 0.5.
	RelationalBoost float64
	// UDFPenalty scales simulated time for opaque per-tuple UDF calls
	// (map, flatmap, filter): each call crosses the engine/UDF
	// boundary. Default 2.5.
	UDFPenalty float64
}

func (c *Config) defaults() {
	if c.ConnectOverhead == 0 {
		c.ConnectOverhead = 5 * time.Millisecond
	}
	if c.RelationalBoost == 0 {
		c.RelationalBoost = 0.5
	}
	if c.UDFPenalty == 0 {
		c.UDFPenalty = 2.5
	}
}

// Platform executes RHEEM plans over DB tables.
type Platform struct {
	cfg Config
	db  *DB
}

// New returns a platform over the given catalog (a fresh one if nil).
func New(db *DB, cfg Config) *Platform {
	cfg.defaults()
	if db == nil {
		db = NewDB()
	}
	return &Platform{cfg: cfg, db: db}
}

// DB exposes the underlying catalog (shared with storage engines and
// examples).
func (p *Platform) DB() *DB { return p.db }

// ID implements engine.Platform.
func (p *Platform) ID() engine.PlatformID { return ID }

// Profile implements engine.Platform.
func (p *Platform) Profile() engine.Profile {
	return engine.Profile{Description: "mini relational engine", Relational: true}
}

// NativeFormat implements engine.Platform.
func (p *Platform) NativeFormat() channel.Format { return channel.Table }

// TableChannel wraps an existing table as a Table-format channel, the
// entry point for plans reading catalog tables natively.
func TableChannel(t *Table) *channel.Channel {
	rows := t.rowsUnsafe()
	return &channel.Channel{
		Format:  channel.Table,
		Payload: t,
		Records: int64(len(rows)),
		Bytes:   data.TotalBytes(rows),
	}
}

// RegisterConverters implements engine.Platform: table ↔ collection,
// priced as bulk export/load.
func (p *Platform) RegisterConverters(reg *channel.Registry) {
	const perByte = 2.0 // ns/byte: COPY-style bulk transfer
	reg.Register(channel.Converter{
		From: channel.Collection, To: channel.Table,
		Fixed: 3 * time.Millisecond, PerByteNS: perByte,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			recs, err := ch.AsCollection()
			if err != nil {
				return nil, err
			}
			return TableChannel(p.db.tempTable(data.CloneRecords(recs))), nil
		},
	})
	reg.Register(channel.Converter{
		From: channel.Table, To: channel.Collection,
		Fixed: 3 * time.Millisecond, PerByteNS: perByte,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			t, err := tableOf(ch)
			if err != nil {
				return nil, err
			}
			return channel.NewCollection(t.Rows()), nil
		},
	})
	// Direct table ↔ batch edges: a columnar export skips the row
	// materialisation a table → collection → batch chain would pay.
	// Priced so that no two-hop route through Batch undercuts the
	// direct table ↔ collection edges above (2.6+0.5 > 3.0 fixed,
	// 1.2+0.8 = 2.0 per byte), keeping every pre-existing conversion
	// path — batch-capable consumers still win because they stop at
	// the batch instead of paying the full export.
	reg.Register(channel.Converter{
		From: channel.Table, To: channel.Batch,
		Fixed: 2600 * time.Microsecond, PerByteNS: 1.2,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			t, err := tableOf(ch)
			if err != nil {
				return nil, err
			}
			return channel.NewBatch(batch.FromRecords(t.rowsUnsafe())), nil
		},
	})
	reg.Register(channel.Converter{
		From: channel.Batch, To: channel.Table,
		Fixed: 2800 * time.Microsecond, PerByteNS: 1.6,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			b, err := ch.AsBatch()
			if err != nil {
				return nil, err
			}
			return TableChannel(p.db.tempTable(data.CloneRecords(b.ToRecords()))), nil
		},
	})
}

// SplitNative implements engine.Sharder: each shard is a temp table
// over a contiguous slice of the source table's row snapshot, so no
// rows are copied. Shard tables are anonymous intermediates, dropped
// with the rest by DB.ReleaseTemp.
func (p *Platform) SplitNative(ch *channel.Channel, n int) ([]*channel.Channel, error) {
	t, err := tableOf(ch)
	if err != nil {
		return nil, err
	}
	rows := t.rowsUnsafe()
	if n > len(rows) {
		n = len(rows)
	}
	if n <= 1 {
		return []*channel.Channel{ch}, nil
	}
	chunk := (len(rows) + n - 1) / n
	out := make([]*channel.Channel, 0, n)
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		out = append(out, TableChannel(p.db.tempTable(rows[lo:hi])))
	}
	return out, nil
}

func tableOf(ch *channel.Channel) (*Table, error) {
	if ch.Format != channel.Table {
		return nil, fmt.Errorf("relengine: channel format %s is not table", ch.Format)
	}
	t, ok := ch.Payload.(*Table)
	if !ok {
		return nil, fmt.Errorf("relengine: table channel holds %T", ch.Payload)
	}
	return t, nil
}

// ExecuteAtom implements engine.Platform.
func (p *Platform) ExecuteAtom(ctx context.Context, atom *engine.TaskAtom, inputs engine.AtomInputs) (map[int]*channel.Channel, engine.Metrics, error) {
	start := time.Now()
	d := &datasetOps{p: p}
	exits, err := engine.RunAtom(ctx, d, atom, inputs)
	m := engine.Metrics{
		Wall:       time.Since(start),
		Sim:        p.cfg.ConnectOverhead + d.sim,
		Jobs:       1,
		InRecords:  d.inRecords,
		OutRecords: d.outRecords,
	}
	if err != nil {
		return nil, m, err
	}
	return exits, m, nil
}

// datasetOps executes physical operators over *Table datasets.
type datasetOps struct {
	p          *Platform
	sim        time.Duration
	inRecords  int64
	outRecords int64
}

func (d *datasetOps) FromChannel(ch *channel.Channel) (any, error) {
	t, err := tableOf(ch)
	if err != nil {
		return nil, err
	}
	d.inRecords += int64(t.NumRows())
	return t, nil
}

func (d *datasetOps) ToChannel(ds any) (*channel.Channel, error) {
	t := ds.(*Table)
	d.outRecords += int64(t.NumRows())
	return TableChannel(t), nil
}

// charge records op wall time into simulated time with the profile
// factor for the operator class.
func (d *datasetOps) charge(wall time.Duration, relational bool) {
	f := d.p.cfg.UDFPenalty
	if relational {
		f = d.p.cfg.RelationalBoost
	}
	d.sim += time.Duration(float64(wall) * f)
}

// ExecOp executes one physical operator over tables — the relational
// engine's execution-operator set. Each operator is one statement over
// intermediate tables.
func (d *datasetOps) ExecOp(_ context.Context, op *physical.Operator, inputs []any) (any, error) {
	rows := func(i int) []data.Record { return inputs[i].(*Table).rowsUnsafe() }
	lop := op.Logical
	t0 := time.Now()
	var out []data.Record
	var err error
	relational := false

	switch lop.Kind() {
	case plan.KindSource:
		out, err = lop.Source()
		relational = true
	case plan.KindMap:
		in := rows(0)
		out = make([]data.Record, 0, len(in))
		for _, r := range in {
			nr, merr := lop.Map(r)
			if merr != nil {
				return nil, merr
			}
			out = append(out, nr)
		}
	case plan.KindFlatMap:
		for _, r := range rows(0) {
			nrs, merr := lop.FlatMap(r)
			if merr != nil {
				return nil, merr
			}
			out = append(out, nrs...)
		}
	case plan.KindFilter:
		in := rows(0)
		out = make([]data.Record, 0, len(in))
		for _, r := range in {
			ok, ferr := lop.Filter(r)
			if ferr != nil {
				return nil, ferr
			}
			if ok {
				out = append(out, r)
			}
		}
	case plan.KindGroupBy:
		relational = true
		var groups []algo.Group
		if op.Algo == physical.SortGroupBy {
			groups, err = algo.SortGroup(rows(0), lop.Key)
		} else {
			groups, err = algo.HashGroup(rows(0), lop.Key)
		}
		if err == nil {
			for _, g := range groups {
				res, gerr := lop.Group(g.Key, g.Records)
				if gerr != nil {
					return nil, gerr
				}
				out = append(out, res...)
			}
		}
	case plan.KindReduceByKey:
		relational = true
		var groups []algo.Group
		if op.Algo == physical.SortGroupBy {
			groups, err = algo.SortGroup(rows(0), lop.Key)
		} else {
			groups, err = algo.HashGroup(rows(0), lop.Key)
		}
		if err == nil {
			out, err = algo.ReduceGroups(groups, lop.Reduce)
		}
	case plan.KindReduce:
		relational = true
		out, err = algo.Reduce(rows(0), lop.Reduce)
	case plan.KindSort:
		relational = true
		out, err = algo.SortBy(rows(0), lop.Key, lop.Desc)
	case plan.KindDistinct:
		relational = true
		if op.Algo == physical.SortDistinct {
			var sorted []data.Record
			sorted, err = algo.SortBy(rows(0), plan.RecordKey(), false)
			if err == nil {
				out = algo.Distinct(sorted)
			}
		} else {
			out = algo.Distinct(rows(0))
		}
	case plan.KindUnion:
		relational = true
		l, r := rows(0), rows(1)
		out = make([]data.Record, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
	case plan.KindJoin:
		relational = true
		if op.Algo == physical.SortMergeJoin {
			out, err = algo.SortMergeJoin(rows(0), rows(1), lop.Key, lop.RightKey)
		} else {
			out, err = algo.HashJoin(rows(0), rows(1), lop.Key, lop.RightKey)
		}
	case plan.KindThetaJoin:
		relational = true
		if op.Algo == physical.IEJoin && len(lop.Conditions) > 0 {
			out, err = algo.IEJoinRecords(rows(0), rows(1), lop.Conditions, lop.Pred)
		} else {
			out, err = algo.NestedLoopJoin(rows(0), rows(1), thetaPred(lop))
		}
	case plan.KindCartesian:
		relational = true
		out = algo.Cartesian(rows(0), rows(1))
	case plan.KindCount:
		relational = true
		out = []data.Record{data.NewRecord(data.Int(int64(len(rows(0)))))}
	case plan.KindSample:
		relational = true
		out = rows(0)
		if len(out) > lop.N {
			out = out[:lop.N]
		}
	case plan.KindSink:
		// Pass the input table through without copying.
		d.charge(time.Since(t0), true)
		return inputs[0], nil
	case plan.KindRepeat, plan.KindDoWhile, plan.KindLoopInput:
		return nil, fmt.Errorf("relengine: %s must be driven by the executor", lop.Kind())
	default:
		return nil, fmt.Errorf("relengine: unsupported operator kind %s", lop.Kind())
	}
	if err != nil {
		return nil, err
	}
	d.charge(time.Since(t0), relational)
	return d.p.db.tempTable(out), nil
}

// thetaPred combines declarative conditions and the residual predicate.
func thetaPred(lop *plan.Operator) plan.PredFunc {
	conds := lop.Conditions
	base := lop.Pred
	return func(l, r data.Record) (bool, error) {
		for _, c := range conds {
			if !c.Op.Eval(l.Field(c.LeftField), r.Field(c.RightField)) {
				return false, nil
			}
		}
		if base != nil {
			return base(l, r)
		}
		return true, nil
	}
}

// Register creates the platform over db (fresh if nil), registers it
// and its mappings, and returns it. Declared costs mirror the
// simulated-time profile: relational shapes are scaled down, UDF
// shapes up, plus the per-statement connect overhead.
func Register(reg *engine.Registry, db *DB, cfg Config) (*Platform, error) {
	p := New(db, cfg)
	if err := reg.RegisterPlatform(p); err != nil {
		return nil, err
	}
	c := p.cfg
	const perRec = 200 * time.Nanosecond // calibrated to the shared kernels (see EXPERIMENTS.md)
	rel := func(m cost.Model) cost.Model {
		return cost.WithStartup(cost.Scaled(m, c.RelationalBoost), c.ConnectOverhead)
	}
	udf := func(m cost.Model) cost.Model {
		return cost.WithStartup(cost.Scaled(m, c.UDFPenalty), c.ConnectOverhead)
	}
	linear := cost.PerRecord(0, perRec, perRec/4)
	nlogn := cost.NLogN(0, perRec/2)
	quadratic := cost.PairQuadratic(0, 100*time.Nanosecond)

	type md struct {
		kind plan.OpKind
		algo physical.Algorithm
		m    cost.Model
		hint string
	}
	decls := []md{
		{plan.KindSource, physical.Default, rel(cost.PerRecord(0, 0, perRec)), "bulk load"},
		{plan.KindMap, physical.Default, udf(linear), "per-tuple UDF call"},
		{plan.KindFlatMap, physical.Default, udf(linear), "per-tuple UDF call"},
		{plan.KindFilter, physical.Default, udf(linear), "per-tuple UDF call"},
		{plan.KindGroupBy, physical.HashGroupBy, rel(linear), "hash aggregate"},
		{plan.KindGroupBy, physical.SortGroupBy, rel(nlogn), "sorted aggregate"},
		{plan.KindReduceByKey, physical.HashGroupBy, rel(linear), "hash aggregate"},
		{plan.KindReduceByKey, physical.SortGroupBy, rel(nlogn), "sorted aggregate"},
		{plan.KindReduce, physical.Default, rel(linear), "aggregate"},
		{plan.KindSort, physical.Default, rel(nlogn), "order by"},
		{plan.KindDistinct, physical.HashDistinct, rel(linear), ""},
		{plan.KindDistinct, physical.SortDistinct, rel(nlogn), ""},
		{plan.KindUnion, physical.Default, rel(linear), "union all"},
		{plan.KindJoin, physical.HashJoin, rel(linear), "hash join"},
		{plan.KindJoin, physical.SortMergeJoin, rel(nlogn), "merge join"},
		{plan.KindThetaJoin, physical.NestedLoop, rel(quadratic), "nested loop"},
		{plan.KindThetaJoin, physical.IEJoin, rel(cost.NLogN(0, 300*time.Nanosecond)), "ie join"},
		{plan.KindCartesian, physical.Default, rel(quadratic), "cross join"},
		{plan.KindCount, physical.Default, rel(linear), "count(*)"},
		{plan.KindSample, physical.Default, rel(linear), "limit"},
		{plan.KindSink, physical.Default, cost.ConstModel(cost.Cost{}), ""},
		{plan.KindRepeat, physical.Default, cost.ConstModel(cost.Cost{}), "loop driven by executor"},
		{plan.KindDoWhile, physical.Default, cost.ConstModel(cost.Cost{}), "loop driven by executor"},
		{plan.KindLoopInput, physical.Default, cost.ConstModel(cost.Cost{Startup: c.ConnectOverhead}), "each loop iteration is a statement"},
	}
	for _, d := range decls {
		if err := reg.RegisterMapping(engine.Mapping{
			Platform: ID, Kind: d.kind, Algo: d.algo, Cost: d.m, Hint: d.hint,
		}); err != nil {
			return nil, err
		}
	}
	return p, nil
}
