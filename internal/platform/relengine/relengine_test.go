package relengine

import (
	"context"
	"testing"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func peopleSchema() *data.Schema {
	return data.MustSchema(
		data.Field{Name: "id", Type: data.KindInt},
		data.Field{Name: "name", Type: data.KindString},
		data.Field{Name: "age", Type: data.KindInt},
	)
}

func seedPeople(t *testing.T, tab *Table) {
	t.Helper()
	err := tab.Insert(
		data.NewRecord(data.Int(1), data.Str("ann"), data.Int(30)),
		data.NewRecord(data.Int(2), data.Str("bob"), data.Int(25)),
		data.NewRecord(data.Int(3), data.Str("cyd"), data.Int(30)),
		data.NewRecord(data.Int(4), data.Str("dan"), data.Int(41)),
	)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCatalogBasics(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("people", peopleSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("people", peopleSchema()); err == nil {
		t.Error("duplicate table accepted")
	}
	got, ok := db.Table("people")
	if !ok || got != tab {
		t.Error("table lookup failed")
	}
	if len(db.TableNames()) != 1 {
		t.Error("TableNames wrong")
	}
	db.DropTable("people")
	if _, ok := db.Table("people"); ok {
		t.Error("dropped table still present")
	}
}

func TestInsertValidatesSchema(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("people", peopleSchema())
	if err := tab.Insert(data.NewRecord(data.Str("wrong"), data.Str("x"), data.Int(1))); err == nil {
		t.Error("type-mismatched row accepted")
	}
	if err := tab.Insert(data.NewRecord(data.Int(1))); err == nil {
		t.Error("arity-mismatched row accepted")
	}
	if tab.NumRows() != 0 {
		t.Error("failed insert left rows behind")
	}
}

func TestHashIndexLookup(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("people", peopleSchema())
	seedPeople(t, tab)
	if err := tab.CreateHashIndex("age"); err != nil {
		t.Fatal(err)
	}
	rows, indexed, err := tab.LookupEq("age", data.Int(30))
	if err != nil {
		t.Fatal(err)
	}
	if !indexed {
		t.Error("index not used")
	}
	if len(rows) != 2 {
		t.Errorf("got %d rows", len(rows))
	}
	// Insert after index creation is indexed too.
	if err := tab.Insert(data.NewRecord(data.Int(5), data.Str("eve"), data.Int(30))); err != nil {
		t.Fatal(err)
	}
	rows, _, _ = tab.LookupEq("age", data.Int(30))
	if len(rows) != 3 {
		t.Errorf("post-insert lookup got %d rows", len(rows))
	}
	// Without an index a scan answers.
	rows, indexed, err = tab.LookupEq("name", data.Str("bob"))
	if err != nil || indexed || len(rows) != 1 {
		t.Errorf("scan lookup: %v indexed=%v n=%d", err, indexed, len(rows))
	}
	if _, _, err := tab.LookupEq("ghost", data.Int(1)); err == nil {
		t.Error("lookup on missing column accepted")
	}
}

func TestOrderedIndexRange(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("people", peopleSchema())
	seedPeople(t, tab)
	if err := tab.CreateOrderedIndex("age"); err != nil {
		t.Fatal(err)
	}
	lo, hi := data.Int(26), data.Int(40)
	rows, indexed, err := tab.LookupRange("age", &lo, &hi)
	if err != nil || !indexed {
		t.Fatalf("range lookup: %v indexed=%v", err, indexed)
	}
	if len(rows) != 2 {
		t.Errorf("range [26,40] got %d rows", len(rows))
	}
	// Open bounds.
	rows, _, _ = tab.LookupRange("age", nil, &hi)
	if len(rows) != 3 {
		t.Errorf("range (-∞,40] got %d rows", len(rows))
	}
	rows, _, _ = tab.LookupRange("age", &lo, nil)
	if len(rows) != 3 {
		t.Errorf("range [26,∞) got %d rows", len(rows))
	}
	// Insert into an ordered index keeps order.
	if err := tab.Insert(data.NewRecord(data.Int(9), data.Str("zed"), data.Int(33))); err != nil {
		t.Fatal(err)
	}
	rows, _, _ = tab.LookupRange("age", &lo, &hi)
	if len(rows) != 3 {
		t.Errorf("post-insert range got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if data.Compare(rows[i-1].Field(2), rows[i].Field(2)) > 0 {
			t.Error("range result out of order")
		}
	}
	// Scan fallback without index.
	rows, indexed, _ = tab.LookupRange("id", &lo, nil)
	if indexed || len(rows) != 0 {
		t.Errorf("id range: indexed=%v n=%d", indexed, len(rows))
	}
}

func TestRowsIsACopy(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("people", peopleSchema())
	seedPeople(t, tab)
	rows := tab.Rows()
	rows[0] = data.NewRecord(data.Int(99), data.Str("hack"), data.Int(0))
	if tab.Rows()[0].Field(0).Int() == 99 {
		t.Error("Rows exposed internal storage")
	}
}

func TestTempTablesAndRelease(t *testing.T) {
	db := NewDB()
	tmp := db.tempTable([]data.Record{data.NewRecord(data.Int(1))})
	if tmp.NumRows() != 1 {
		t.Error("temp table rows wrong")
	}
	if _, ok := db.Table(tmp.Name); !ok {
		t.Error("temp table not in catalog")
	}
	if _, err := db.CreateTable("keep", peopleSchema()); err != nil {
		t.Fatal(err)
	}
	db.ReleaseTemp()
	if _, ok := db.Table(tmp.Name); ok {
		t.Error("temp table survived ReleaseTemp")
	}
	if _, ok := db.Table("keep"); !ok {
		t.Error("ReleaseTemp dropped a real table")
	}
}

func TestConvertersRoundTrip(t *testing.T) {
	p := New(nil, Config{})
	reg := channel.NewRegistry()
	p.RegisterConverters(reg)
	in := channel.NewCollection([]data.Record{
		data.NewRecord(data.Int(1)), data.NewRecord(data.Int(2)),
	})
	tch, _, _, err := reg.Convert(in, channel.Table)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := tableOf(tch)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("table rows = %d", tab.NumRows())
	}
	back, _, _, err := reg.Convert(tch, channel.Collection)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := back.AsCollection()
	if len(recs) != 2 {
		t.Errorf("round trip rows = %d", len(recs))
	}
}

func TestExecuteAtomAggregation(t *testing.T) {
	p := New(nil, Config{})
	b := plan.NewBuilder("agg")
	s := b.Source("s", plan.Collection([]data.Record{
		data.NewRecord(data.Int(1), data.Float(10)),
		data.NewRecord(data.Int(1), data.Float(5)),
		data.NewRecord(data.Int(2), data.Float(7)),
	}))
	g := b.ReduceByKey(s, plan.FieldKey(0), plan.SumField(1))
	b.Collect(g)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	atom := &engine.TaskAtom{ID: 0, Kind: engine.AtomCompute, Platform: ID,
		Ops: pp.Ops, Exits: []*physical.Operator{pp.SinkOp}}
	exits, m, err := p.ExecuteAtom(context.Background(), atom, engine.AtomInputs{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sim < p.cfg.ConnectOverhead {
		t.Errorf("sim %v below connect overhead", m.Sim)
	}
	tab, err := tableOf(exits[pp.SinkOp.ID])
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Errorf("aggregation rows = %d", tab.NumRows())
	}
}

func TestSimTimeProfileFavoursRelationalOps(t *testing.T) {
	cfg := Config{RelationalBoost: 0.5, UDFPenalty: 2.0}
	cfg.defaults()
	d := &datasetOps{p: New(nil, cfg)}
	d.charge(100, true)
	relSim := d.sim
	d2 := &datasetOps{p: New(nil, cfg)}
	d2.charge(100, false)
	if relSim >= d2.sim {
		t.Errorf("relational charge %v not cheaper than UDF charge %v", relSim, d2.sim)
	}
}

func TestProfileAndFormat(t *testing.T) {
	p := New(nil, Config{})
	if !p.Profile().Relational {
		t.Error("not marked relational")
	}
	if p.NativeFormat() != channel.Table {
		t.Error("native format wrong")
	}
	if p.DB() == nil {
		t.Error("DB not exposed")
	}
}
