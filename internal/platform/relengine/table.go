// Package relengine is a from-scratch mini relational engine — the
// reproduction's stand-in for the PostgreSQL of the paper's §1 example
// ("one may aggregate large datasets with traditional queries on top of
// a relational database such as PostgreSQL, but ML tasks might be much
// faster if executed on Spark"). See DESIGN.md §3.
//
// The engine has two faces. As a *substrate* it is a small but real
// relational store: a catalog of schema-typed tables with insert,
// scan, and hash/ordered indexes with point and range lookups. As a
// *platform* it executes RHEEM physical plans over tables, with a
// simulated-time profile that favours relational operators (compiled
// aggregation, joins) and penalises opaque per-tuple UDF calls — the
// asymmetry that makes mixed pipelines split across platforms in the
// multi-platform experiments (E5).
package relengine

import (
	"fmt"
	"sort"
	"sync"

	"rheem/internal/data"
)

// Table is a named, schema-typed row store.
type Table struct {
	Name   string
	Schema *data.Schema
	rows   []data.Record

	mu      sync.RWMutex
	hashIdx map[int]*hashIndex
	ordIdx  map[int]*orderedIndex
}

// hashIndex maps column-value hashes to row positions, chaining on
// collisions.
type hashIndex struct {
	col int
	m   map[uint64][]int
}

// orderedIndex keeps row positions sorted by column value for range
// scans.
type orderedIndex struct {
	col  int
	rows []int // row positions ordered by column value
}

// NumRows reports the table's row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Rows returns a copy of the table's rows in insertion order.
func (t *Table) Rows() []data.Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return data.CloneRecords(t.rows)
}

// rowsUnsafe returns the live row slice for internal read-only use.
// The slice header is fetched under the read lock so concurrent
// Inserts (which may reallocate the backing array) never race the
// read; rows already in the snapshot are immutable.
func (t *Table) rowsUnsafe() []data.Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Insert appends rows after validating them against the schema, and
// maintains any indexes.
func (t *Table) Insert(rows ...data.Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if err := t.Schema.Validate(r); err != nil {
			return fmt.Errorf("relengine: insert into %s: %w", t.Name, err)
		}
	}
	for _, r := range rows {
		pos := len(t.rows)
		t.rows = append(t.rows, r)
		for _, idx := range t.hashIdx {
			h := data.Hash(r.Field(idx.col), 0)
			idx.m[h] = append(idx.m[h], pos)
		}
		for _, idx := range t.ordIdx {
			// Insertion into the sorted position keeps lookups valid;
			// bulk loads should create the index after inserting.
			v := r.Field(idx.col)
			at := sort.Search(len(idx.rows), func(i int) bool {
				return data.Compare(t.rows[idx.rows[i]].Field(idx.col), v) > 0
			})
			idx.rows = append(idx.rows, 0)
			copy(idx.rows[at+1:], idx.rows[at:])
			idx.rows[at] = pos
		}
	}
	return nil
}

// CreateHashIndex builds a hash index over the named column, enabling
// LookupEq point queries.
func (t *Table) CreateHashIndex(column string) error {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return fmt.Errorf("relengine: no column %q in %s", column, t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := &hashIndex{col: col, m: make(map[uint64][]int, len(t.rows))}
	for pos, r := range t.rows {
		h := data.Hash(r.Field(col), 0)
		idx.m[h] = append(idx.m[h], pos)
	}
	if t.hashIdx == nil {
		t.hashIdx = map[int]*hashIndex{}
	}
	t.hashIdx[col] = idx
	return nil
}

// CreateOrderedIndex builds an ordered index over the named column,
// enabling LookupRange queries.
func (t *Table) CreateOrderedIndex(column string) error {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return fmt.Errorf("relengine: no column %q in %s", column, t.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := &orderedIndex{col: col, rows: make([]int, len(t.rows))}
	for i := range t.rows {
		idx.rows[i] = i
	}
	sort.SliceStable(idx.rows, func(a, b int) bool {
		return data.Compare(t.rows[idx.rows[a]].Field(col), t.rows[idx.rows[b]].Field(col)) < 0
	})
	if t.ordIdx == nil {
		t.ordIdx = map[int]*orderedIndex{}
	}
	t.ordIdx[col] = idx
	return nil
}

// LookupEq returns the rows whose column equals v, via the hash index
// if one exists or a scan otherwise. The second result reports whether
// an index served the query.
func (t *Table) LookupEq(column string, v data.Value) ([]data.Record, bool, error) {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return nil, false, fmt.Errorf("relengine: no column %q in %s", column, t.Name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.hashIdx[col]; ok {
		var out []data.Record
		for _, pos := range idx.m[data.Hash(v, 0)] {
			if data.Equal(t.rows[pos].Field(col), v) {
				out = append(out, t.rows[pos])
			}
		}
		return out, true, nil
	}
	var out []data.Record
	for _, r := range t.rows {
		if data.Equal(r.Field(col), v) {
			out = append(out, r)
		}
	}
	return out, false, nil
}

// LookupRange returns rows with lo ≤ column ≤ hi (nil bounds are open),
// via the ordered index if one exists or a scan otherwise.
func (t *Table) LookupRange(column string, lo, hi *data.Value) ([]data.Record, bool, error) {
	col := t.Schema.IndexOf(column)
	if col < 0 {
		return nil, false, fmt.Errorf("relengine: no column %q in %s", column, t.Name)
	}
	inRange := func(v data.Value) bool {
		if lo != nil && data.Compare(v, *lo) < 0 {
			return false
		}
		if hi != nil && data.Compare(v, *hi) > 0 {
			return false
		}
		return true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.ordIdx[col]; ok {
		start := 0
		if lo != nil {
			start = sort.Search(len(idx.rows), func(i int) bool {
				return data.Compare(t.rows[idx.rows[i]].Field(col), *lo) >= 0
			})
		}
		var out []data.Record
		for _, pos := range idx.rows[start:] {
			v := t.rows[pos].Field(col)
			if hi != nil && data.Compare(v, *hi) > 0 {
				break
			}
			out = append(out, t.rows[pos])
		}
		return out, true, nil
	}
	var out []data.Record
	for _, r := range t.rows {
		if inRange(r.Field(col)) {
			out = append(out, r)
		}
	}
	return out, false, nil
}

// DB is the engine's catalog of tables.
type DB struct {
	mu      sync.Mutex
	tables  map[string]*Table
	tempSeq int
}

// NewDB returns an empty catalog.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new empty table.
func (db *DB) CreateTable(name string, schema *data.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relengine: table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema}
	db.tables[name] = t
	return t, nil
}

// Table resolves a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

// DropTable removes a table from the catalog.
func (db *DB) DropTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, name)
}

// TableNames lists catalog entries in unspecified order.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// tempTable creates an anonymous intermediate-result table. Physical
// operators produce these; they live in the catalog under a reserved
// prefix so plans can be inspected, and are dropped by ReleaseTemp.
func (db *DB) tempTable(rows []data.Record) *Table {
	db.mu.Lock()
	db.tempSeq++
	name := fmt.Sprintf("_tmp_%d", db.tempSeq)
	t := &Table{Name: name, rows: rows}
	db.tables[name] = t
	db.mu.Unlock()
	return t
}

// ReleaseTemp drops all intermediate-result tables.
func (db *DB) ReleaseTemp() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for n := range db.tables {
		if len(n) > 5 && n[:5] == "_tmp_" {
			delete(db.tables, n)
		}
	}
}
