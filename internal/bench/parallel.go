package bench

import (
	"fmt"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/metrics"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func init() {
	register("parallelism", parallelism)
}

// FanOutPlan builds the concurrent-scheduler workload: one source
// fanning out into `branches` independent map branches (each sleeping
// `delay` per record to stand in for real per-tuple work), folded back
// through a union chain into the sink. The shape is a wide diamond —
// exactly the inter-atom parallelism the executor's DAG scheduler is
// built to exploit.
func FanOutPlan(branches, recs int, delay time.Duration) (*physical.Plan, error) {
	b := plan.NewBuilder("fanout")
	src := make([]data.Record, recs)
	for i := range src {
		src[i] = data.NewRecord(data.Int(int64(i)))
	}
	s := b.Source("src", plan.Collection(src))
	s.CardHint = int64(recs)
	var outs []*plan.Operator
	for i := 0; i < branches; i++ {
		off := int64(i)
		outs = append(outs, b.Map(s, func(r data.Record) (data.Record, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			return data.NewRecord(data.Int(r.Field(0).Int()*int64(branches) + off)), nil
		}))
	}
	u := outs[0]
	for _, o := range outs[1:] {
		u = b.Union(u, o)
	}
	b.Collect(u)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return physical.FromLogical(p)
}

// FanOutAssignments pins the diamond across platforms so it cannot
// fuse into a single atom: source, unions and sink on the relational
// engine, map branches alternating between java and spark. The
// execution plan then has branches+2 task atoms.
func FanOutAssignments(pp *physical.Plan) map[int]engine.PlatformID {
	fa := make(map[int]engine.PlatformID, len(pp.Ops))
	branch := 0
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindMap {
			if branch%2 == 0 {
				fa[op.ID] = javaengine.ID
			} else {
				fa[op.ID] = sparksim.ID
			}
			branch++
		} else {
			fa[op.ID] = relengine.ID
		}
	}
	return fa
}

// RunFanOut optimizes a fresh fan-out plan against the registry and
// executes it at the given scheduler parallelism.
func RunFanOut(reg *engine.Registry, branches, recs int, delay time.Duration, par int) (*executor.Result, error) {
	return RunFanOutTraced(reg, nil, branches, recs, delay, par)
}

// RunFanOutTraced is RunFanOut with the run's span stream feeding a
// telemetry hub — the workload behind the metrics-overhead acceptance
// benchmark (BenchmarkExecutorParallelismMetrics). A nil hub runs
// untraced.
func RunFanOutTraced(reg *engine.Registry, hub *metrics.Hub, branches, recs int, delay time.Duration, par int) (*executor.Result, error) {
	pp, err := FanOutPlan(branches, recs, delay)
	if err != nil {
		return nil, err
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
		DisableRules:      true,
		ForcedAssignments: FanOutAssignments(pp),
	})
	if err != nil {
		return nil, err
	}
	opts := executor.Options{Parallelism: par}
	if hub == nil {
		return executor.Run(ep, reg, opts)
	}
	tracer, run := hub.NewRunTracer("fanout")
	opts.Tracer = tracer
	res, err := executor.Run(ep, reg, opts)
	run.End(err)
	if rec := hub.FlightRecorder(); rec != nil {
		rec.Record(run.ID(), "fanout", run.Started(), run.Ended(), err, tracer.Snapshot())
	}
	return res, err
}

// parallelism measures the executor's concurrent DAG scheduler on the
// wide fan-out diamond: wall time at parallelism 1 (the sequential
// executor) versus bounded worker pools. Records and job counts must
// not change with parallelism — only the wall clock does.
func parallelism(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	branches, recs, delay := 8, 100, 2*time.Millisecond
	if cfg.Quick {
		recs, delay = 10, 500*time.Microsecond
	}
	t := &Table{
		Title: fmt.Sprintf("E8 — concurrent DAG scheduler (%d branches × %s records, %v work per record)",
			branches, Count(recs), delay),
		Note:    "The same multi-platform diamond executed with different worker-pool bounds; records and job counts are invariant, wall time shrinks with available parallelism.",
		Columns: []string{"parallelism", "wall", "sim", "jobs", "speedup"},
	}
	var base time.Duration
	for _, par := range []int{1, 2, 4, 8} {
		cfg.logf("parallelism: par=%d", par)
		res, err := RunFanOutTraced(ctx.Registry(), cfg.Hub, branches, recs, delay, par)
		if err != nil {
			return nil, err
		}
		wall := res.Metrics.Wall
		if par == 1 {
			base = wall
		}
		t.AddRow(fmt.Sprint(par), Dur(wall), Dur(res.Metrics.Sim),
			fmt.Sprint(res.Metrics.Jobs), Speedup(base, wall))
	}
	return []*Table{t}, nil
}
