package bench

import (
	"fmt"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/fault"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/plan"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func init() {
	register("chaos", chaos)
}

// RunChaos executes the fan-out diamond with every map branch pinned
// to a fault-injected "chaos" platform (a wrapped java engine). When
// failAfter ≥ 0 the platform dies after that many successful
// executions, forcing the executor's retry → circuit-breaker →
// cross-platform failover path; a negative failAfter leaves the
// platform healthy, giving the clean baseline for the same plan. Each
// call builds a fresh registry: breaker state and fault schedules are
// per-run.
func RunChaos(branches, recs int, delay time.Duration, failAfter int) (*executor.Result, error) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		return nil, err
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		return nil, err
	}
	if _, err := relengine.Register(reg, nil, relengine.Config{}); err != nil {
		return nil, err
	}
	var opts fault.Options
	opts.ID = "chaos"
	if failAfter >= 0 {
		opts.Schedules = []fault.Schedule{fault.FailAfterN(failAfter, nil)}
	}
	if err := fault.Register(reg, fault.Wrap(javaengine.New(javaengine.Config{}), opts), javaengine.ID); err != nil {
		return nil, err
	}

	pp, err := FanOutPlan(branches, recs, delay)
	if err != nil {
		return nil, err
	}
	fa := make(map[int]engine.PlatformID, len(pp.Ops))
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindMap {
			fa[op.ID] = "chaos"
		} else {
			fa[op.ID] = javaengine.ID
		}
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
		DisableRules:      true,
		ForcedAssignments: fa,
	})
	if err != nil {
		return nil, err
	}
	return executor.Run(ep, reg, executor.Options{
		Failover:     true,
		RetryBackoff: -1, // measure re-planning cost, not sleep time
	})
}

// chaos is experiment E9: the fault-tolerance overhead. The same
// diamond runs with a healthy branch platform and with one that dies
// mid-run; failover must keep the output identical, and the table
// shows what the recovery cost in retries, re-plans and wall time.
func chaos(cfg Config) ([]*Table, error) {
	branches, recs, delay := 8, 100, 2*time.Millisecond
	if cfg.Quick {
		recs, delay = 10, 500*time.Microsecond
	}
	t := &Table{
		Title: fmt.Sprintf("E9 — fault tolerance (%d branches × %s records on a dying platform)",
			branches, Count(recs)),
		Note:    "Every map branch starts on a fault-injected platform that dies after one execution; the executor retries, quarantines it (circuit breaker) and re-plans the rest on the survivors. Records are invariant.",
		Columns: []string{"scenario", "wall", "jobs", "retries", "failovers", "records"},
	}
	var cleanCount int
	for _, sc := range []struct {
		name      string
		failAfter int
	}{
		{"healthy platform", -1},
		{"killed after 1 atom", 1},
	} {
		cfg.logf("chaos: %s", sc.name)
		res, err := RunChaos(branches, recs, delay, sc.failAfter)
		if err != nil {
			return nil, err
		}
		if sc.failAfter < 0 {
			cleanCount = len(res.Records)
		} else {
			if res.Failovers == 0 {
				return nil, fmt.Errorf("chaos: platform died but no failover happened")
			}
			if len(res.Records) != cleanCount {
				return nil, fmt.Errorf("chaos: failover changed the result: %d records vs %d clean",
					len(res.Records), cleanCount)
			}
		}
		t.AddRow(sc.name, Dur(res.Metrics.Wall), fmt.Sprint(res.Metrics.Jobs),
			fmt.Sprint(res.Metrics.Retries), fmt.Sprint(res.Failovers), Count(len(res.Records)))
	}
	return []*Table{t}, nil
}
