// E15: the cold-vs-warm oracle replay. The self-tuning calibrator's
// whole claim is that the optimizer's platform choices improve with
// observed traffic; this harness makes that claim falsifiable. It
// injects a known estimation error into one platform's cost models —
// the kind of mis-set constant the paper's §3.3 cost model is full of —
// then replays the same job round after round, each round measuring
// three arms: the (calibrated) optimizer's choice, and the two pinned
// single-platform oracle arms. Every arm's run folds its
// estimate-vs-actual residuals into one shared calibrator, so the gap
// between the optimizer arm and the oracle (best pinned arm) should
// shrink as the calibrator learns the injected skew away. The E15 gate
// (replay_test.go) requires the warmed gap to be at most half the cold
// gap.
package bench

import (
	"fmt"
	"time"

	"rheem"
	"rheem/internal/apps/ml"
	"rheem/internal/core/cost"
	"rheem/internal/core/physical"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

func init() { register("calibration", calibrationExperiment) }

// ReplaySkew is the estimation error injected into the java cost
// models: every estimate is inflated ×32, far past java's true
// advantage on the replay workload, so the cold optimizer wrongly
// routes to spark. The calibrator's clamp range must contain 1/32 for
// the correction to be learnable (the replay config allows 1/64..64).
const ReplaySkew = 32

// ReplayConfig returns the calibrator configuration the replay runs
// under: faster decay and a lower min-sample guard than the defaults,
// so a short replay warms within a few rounds, and a clamp range wide
// enough to express the injected ×32 skew.
func ReplayConfig() cost.CalibratorConfig {
	return cost.CalibratorConfig{Decay: 0.8, MinSamples: 2, MinFactor: 1.0 / 64, MaxFactor: 64}
}

// ReplayRound is one round of the replay: the three arms' simulated
// times, what the optimizer picked, and its gap to the oracle.
type ReplayRound struct {
	Round     int
	Optimizer time.Duration // simulated time of the optimizer arm
	Java      time.Duration // pinned-java oracle arm
	Spark     time.Duration // pinned-spark oracle arm
	Chosen    string        // platforms the optimizer arm used
	Gap       time.Duration // max(0, Optimizer − min(Java, Spark))
	Folds     int64         // calibrator folds completed after this round
}

// ReplayResult is the replay's learning curve, cold (round 0) to warm.
type ReplayResult struct {
	Skew   float64
	Rounds []ReplayRound
}

// Cold and Warm return the first and last rounds' oracle gaps.
func (r *ReplayResult) Cold() time.Duration { return r.Rounds[0].Gap }
func (r *ReplayResult) Warm() time.Duration { return r.Rounds[len(r.Rounds)-1].Gap }

// CalibrationReplay runs the E15 oracle replay for the given number of
// rounds (<= 0 means 6) and returns the learning curve. Deterministic:
// fixed datagen seed, simulated time only.
func CalibrationReplay(cfg Config, rounds int) (*ReplayResult, error) {
	if rounds <= 0 {
		rounds = 6
	}
	cal := cost.NewCalibrator(ReplayConfig())
	opts := []rheem.ContextOption{rheem.WithCalibration(cal)}
	if cfg.Hub != nil {
		opts = append(opts, rheem.WithTelemetryHub(cfg.Hub))
	}
	ctx, err := rheem.NewContext(rheem.Config{}, opts...)
	if err != nil {
		return nil, err
	}
	skewed := ctx.Registry().RewriteCosts(javaengine.ID, func(m cost.Model) cost.Model {
		return func(op *physical.Operator, inCards []int64, outCard int64) cost.Cost {
			return m(op, inCards, outCard).Times(ReplaySkew)
		}
	})
	if skewed == 0 {
		return nil, fmt.Errorf("calibration replay: no java mappings to skew")
	}

	// The workload sits on the java side of the Figure 2 crossover:
	// small enough that spark's per-job overhead dominates, so the
	// skew-misled cold choice is measurably wrong.
	const (
		nPts  = 2_000
		iters = 10
		dim   = 10
	)
	pts := datagen.Points(datagen.PointsConfig{N: nPts, Dim: dim, Noise: 0.05, Seed: 42})

	res := &ReplayResult{Skew: ReplaySkew}
	for r := 0; r < rounds; r++ {
		cfg.logf("calibration: round %d", r)
		run := func(runOpts ...rheem.RunOption) (time.Duration, *rheem.Report, error) {
			tpl := ml.SVM(pts, ml.GradientConfig{Iterations: iters, Dim: dim})
			_, rep, err := tpl.Run(ctx, runOpts...)
			if err != nil {
				return 0, nil, err
			}
			return rep.Metrics.Sim, rep, nil
		}
		round := ReplayRound{Round: r}
		// Optimizer arm first: round 0's choice is fully cold.
		var rep *rheem.Report
		if round.Optimizer, rep, err = run(); err != nil {
			return nil, err
		}
		round.Chosen = platformsUsed(rep)
		if round.Java, _, err = run(rheem.OnPlatform(javaengine.ID)); err != nil {
			return nil, err
		}
		if round.Spark, _, err = run(rheem.OnPlatform(sparksim.ID)); err != nil {
			return nil, err
		}
		oracle := round.Java
		if round.Spark < oracle {
			oracle = round.Spark
		}
		round.Gap = round.Optimizer - oracle
		if round.Gap < 0 {
			round.Gap = 0
		}
		round.Folds = cal.Folds()
		res.Rounds = append(res.Rounds, round)
	}
	return res, nil
}

// calibrationExperiment renders the replay as the E15 table for
// rheem-bench.
func calibrationExperiment(cfg Config) ([]*Table, error) {
	rounds := 6
	if cfg.Quick {
		rounds = 4
	}
	res, err := CalibrationReplay(cfg, rounds)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("E15 — cold-vs-warm oracle replay (java estimates skewed ×%d) [simulated time]", ReplaySkew),
		Note:  "Gap = optimizer − best pinned platform. Every arm folds into one calibrator; the gap should collapse once the skew is learned away.",
		Columns: []string{"round", "optimizer", "java", "spark", "chosen", "gap", "folds"},
	}
	for _, r := range res.Rounds {
		t.AddRow(fmt.Sprint(r.Round), Dur(r.Optimizer), Dur(r.Java), Dur(r.Spark),
			r.Chosen, Dur(r.Gap), fmt.Sprint(r.Folds))
	}
	return []*Table{t}, nil
}
