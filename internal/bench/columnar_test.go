package bench

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"rheem/internal/core/executor"
	"rheem/internal/data"
)

func colRecordBytes(t *testing.T, recs []data.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := data.WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColumnarSpeedup is E13's acceptance gate on the hot-path chain:
// the batch path must produce byte-identical results to the row path
// and be meaningfully faster on wall clock. The gate here is a
// conservative 1.5× at a mid size so it holds under the race detector
// and on loaded CI boxes; the full ≥2× at 1M rows is demonstrated by
// the suite's columnar area and enforced against BENCH_columnar.json.
func TestColumnarSpeedup(t *testing.T) {
	const rows, reps = 200_000, 3
	recs := ColumnarRecords(rows)
	run := func(batch bool) *executor.Result {
		t.Helper()
		ctx, err := NewColumnarContext(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
		defer ctx.Close()
		res, err := RunColumnarTraced(ctx, nil, recs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	best := func(batch bool) (*executor.Result, time.Duration) {
		runtime.GC()
		res := run(batch)
		min := res.Metrics.Wall
		for i := 1; i < reps; i++ {
			runtime.GC()
			if r := run(batch); r.Metrics.Wall < min {
				res, min = r, r.Metrics.Wall
			}
		}
		return res, min
	}

	row, rowWall := best(false)
	col, colWall := best(true)
	if !bytes.Equal(colRecordBytes(t, row.Records), colRecordBytes(t, col.Records)) {
		t.Errorf("batch path records differ from row path:\n  row   %v\n  batch %v", row.Records, col.Records)
	}
	speedup := float64(rowWall) / float64(colWall)
	t.Logf("wall: row %v, batch %v — %.2fx at %d rows", rowWall, colWall, speedup, rows)
	if speedup < 1.5 {
		t.Errorf("batch path speedup %.2fx, want ≥1.5x (row %v, batch %v)", speedup, rowWall, colWall)
	}
}

// TestColumnarQuick smoke-runs the registered experiment end to end at
// the quick scale, as every registered experiment must support.
func TestColumnarQuick(t *testing.T) {
	tables, err := columnar(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("columnar experiment produced no table rows: %v", tables)
	}
}
