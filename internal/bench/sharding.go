package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/metrics"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
)

func init() {
	register("sharding", sharding)
}

// Burn is the wide workload's per-record compute: a few rounds of
// SplitMix64-style integer mixing. The result feeds the output record,
// so the compiler cannot elide it, and the function is pure, so
// sharded and unsharded runs compute identical records.
func Burn(v int64, work int) int64 {
	x := uint64(v)*0x9E3779B97F4A7C15 + 1
	for i := 0; i < work; i++ {
		x ^= x >> 33
		x *= 0xFF51AFD7ED558CCD
		x ^= x >> 29
	}
	return int64(x >> 1)
}

// WidePlan builds the sharding workload: one source feeding a Map
// (sleeping `delay` per record to stand in for real per-tuple work,
// the same stand-in E8 uses) and a Filter into the sink. The shape is
// the opposite of E8's diamond — a single straight chain with *no*
// independent branches, so the concurrent DAG scheduler (inter-atom
// parallelism) finds nothing to overlap and only intra-atom sharding
// can shorten the wide atom.
func WidePlan(recs int, delay time.Duration) (*physical.Plan, error) {
	b := plan.NewBuilder("wide-map")
	src := make([]data.Record, recs)
	for i := range src {
		src[i] = data.NewRecord(data.Int(int64(i)), data.Int(int64(i)))
	}
	s := b.Source("src", plan.Collection(src))
	s.CardHint = int64(recs)
	m := b.Map(s, func(r data.Record) (data.Record, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return data.NewRecord(r.Field(0), data.Int(Burn(r.Field(1).Int(), 64))), nil
	})
	f := b.Filter(m, func(r data.Record) (bool, error) {
		return r.Field(0).Int()%16 != 0, nil
	})
	b.Collect(f)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return physical.FromLogical(p)
}

// WideRecords is the record count WidePlan's sink sees: the filter
// drops every 16th input.
func WideRecords(recs int) int {
	return recs - (recs+15)/16
}

// WideAssignments pins the source to the relational engine (the same
// boundary idiom as E8's diamond) and the map–filter chain (plus sink)
// to the single-node engine. The platform boundary keeps the chain out
// of the source's atom, making it exactly the shape planShards
// accepts: a single-input compute atom of record-wise operators.
func WideAssignments(pp *physical.Plan) map[int]engine.PlatformID {
	fa := make(map[int]engine.PlatformID, len(pp.Ops))
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSource {
			fa[op.ID] = relengine.ID
		} else {
			fa[op.ID] = javaengine.ID
		}
	}
	return fa
}

// RunWide optimizes a fresh wide-chain plan and executes it with the
// given shard fan-out (≤1 disables sharding).
func RunWide(reg *engine.Registry, recs int, delay time.Duration, shards int) (*executor.Result, error) {
	return RunWideTraced(reg, nil, recs, delay, shards)
}

// RunWideTraced is RunWide with the span stream feeding a telemetry
// hub (nil runs untraced), so rheem-bench -metrics sees per-shard
// spans and the skew they expose.
func RunWideTraced(reg *engine.Registry, hub *metrics.Hub, recs int, delay time.Duration, shards int) (*executor.Result, error) {
	pp, err := WidePlan(recs, delay)
	if err != nil {
		return nil, err
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
		DisableRules:      true,
		ForcedAssignments: WideAssignments(pp),
		Shards:            shards,
	})
	if err != nil {
		return nil, err
	}
	opts := executor.Options{Shards: shards}
	if hub == nil {
		return executor.Run(ep, reg, opts)
	}
	tracer, run := hub.NewRunTracer("wide-map")
	opts.Tracer = tracer
	res, err := executor.Run(ep, reg, opts)
	run.End(err)
	return res, err
}

// shardSweep is the E11 fan-out sweep: 1 (the unsharded baseline),
// powers of two up to the widest point, and GOMAXPROCS itself. The
// sweep always reaches at least 4 — the shard width models platform
// slots, not host threads, and per-record work that waits (I/O, RPC,
// the sleep stand-in) overlaps across shards on any host.
func shardSweep() []int {
	widest := runtime.GOMAXPROCS(0)
	if widest < 4 {
		widest = 4
	}
	set := map[int]bool{1: true, widest: true, runtime.GOMAXPROCS(0): true}
	for p := 2; p < widest; p *= 2 {
		set[p] = true
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// sharding measures intra-atom data parallelism on the wide
// single-atom chain: the same plan at shard fan-outs from 1 to
// GOMAXPROCS. Records are invariant (byte-identical — pinned by the
// conformance and shard test suites); the job count grows with the
// fan-out because each shard is a real platform job. The single-node
// engine's simulated clock is its measured atom time, and a sharded
// atom reports the slowest shard (parallel-shard semantics), so both
// clocks shrink as the fan-out widens. Best-of-3 per point (like E10)
// to shave scheduler noise.
func sharding(cfg Config) ([]*Table, error) {
	recs, delay, reps := 600, 150*time.Microsecond, 3
	if cfg.Quick {
		recs, delay, reps = 100, 100*time.Microsecond, 1
	}
	t := &Table{
		Title: fmt.Sprintf("E11 — sharded intra-atom execution (%s records × %v work each)",
			Count(recs), delay),
		Note:    "One wide Map+Filter atom split into P input shards; records are invariant, jobs grow with the fan-out, the clock shrinks toward the slowest shard.",
		Columns: []string{"shards", "wall", "sim", "jobs", "records", "speedup"},
	}
	var base time.Duration
	for _, shards := range shardSweep() {
		cfg.logf("sharding: shards=%d", shards)
		var bestRes *engine.Metrics
		var res *executor.Result
		for rep := 0; rep < reps; rep++ {
			// A fresh context per run keeps measurements independent: no
			// cross-run platform state (stage accounting, catalogs) leaks
			// into the clocks.
			ctx, err := newCtx(cfg)
			if err != nil {
				return nil, err
			}
			r, err := RunWideTraced(ctx.Registry(), cfg.Hub, recs, delay, shards)
			if err != nil {
				return nil, err
			}
			if got := len(r.Records); got != WideRecords(recs) {
				return nil, fmt.Errorf("sharding: shards=%d produced %d records, want %d", shards, got, WideRecords(recs))
			}
			if bestRes == nil || pick(cfg, r.Metrics) < pick(cfg, *bestRes) {
				m := r.Metrics
				bestRes, res = &m, r
			}
		}
		clock := pick(cfg, *bestRes)
		if shards == 1 {
			base = clock
		}
		t.AddRow(fmt.Sprint(shards), Dur(bestRes.Wall), Dur(bestRes.Sim),
			fmt.Sprint(bestRes.Jobs), Count(len(res.Records)), Speedup(base, clock))
	}
	return []*Table{t}, nil
}
