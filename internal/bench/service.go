// E12: multi-tenant job-service load. The closed-loop generator
// (internal/service.RunLoad) drives N tenants × M jobs through one
// shared engine behind admission control, sweeping the tenant count to
// produce the throughput / tail-latency curve EXPERIMENTS.md records —
// how job throughput scales and p99 degrades as tenants contend for
// the bounded scheduler pool.
package bench

import (
	"fmt"

	"rheem/internal/service"
)

func init() {
	register("service", serviceLoad)
}

func serviceLoad(cfg Config) ([]*Table, error) {
	tenantSweep := []int{1, 2, 4, 8}
	jobs, n := 6, 2_000
	if cfg.Quick {
		tenantSweep = []int{1, 2}
		jobs, n = 3, 300
	}
	specs := []service.Spec{
		{Kind: service.KindWorkload, Workload: service.WorkloadWordcount, N: n, Seed: 1},
		{Kind: service.KindWorkload, Workload: service.WorkloadSensor, N: n, Wells: 8, Seed: 2},
		{Kind: service.KindWorkload, Workload: service.WorkloadFanout, N: n / 8, Branches: 3, Seed: 3},
	}

	tab := &Table{
		Title: "E12: multi-tenant service throughput and tail latency",
		Note: "closed-loop load (2 in-flight jobs per tenant) against one shared engine;\n" +
			"latencies are acceptance→terminal, queue wait included",
		Columns: []string{"tenants", "jobs", "shed", "succeeded", "jobs/s", "p50", "p95", "p99", "wall"},
	}
	for _, tenants := range tenantSweep {
		cfg.logf("service: %d tenants × %d jobs", tenants, jobs)
		svc, err := service.New(service.Config{
			Hub:          cfg.Hub,
			CatalogScale: 500,
		})
		if err != nil {
			return nil, err
		}
		res, err := service.RunLoad(svc, service.LoadConfig{
			Tenants:       tenants,
			JobsPerTenant: jobs,
			Concurrency:   2,
			Specs:         specs,
		})
		svc.Close()
		if err != nil {
			return nil, fmt.Errorf("service: %d tenants: %w", tenants, err)
		}
		if res.Succeeded != tenants*jobs {
			return nil, fmt.Errorf("service: %d tenants: %d/%d jobs succeeded (failed %d, cancelled %d)",
				tenants, res.Succeeded, tenants*jobs, res.Failed, res.Cancelled)
		}
		tab.AddRow(
			fmt.Sprintf("%d", tenants),
			fmt.Sprintf("%d", tenants*jobs),
			fmt.Sprintf("%d", res.Shed),
			fmt.Sprintf("%d", res.Succeeded),
			fmt.Sprintf("%.1f", res.Throughput),
			Dur(res.P50), Dur(res.P95), Dur(res.P99), Dur(res.Wall),
		)
	}
	return []*Table{tab}, nil
}
