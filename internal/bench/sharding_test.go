package bench

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"rheem"
	"rheem/internal/core/executor"
	"rheem/internal/core/trace"
	"rheem/internal/data"
)

func wideRecordBytes(t *testing.T, recs []data.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := data.WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func shardSpansOf(res *executor.Result) int {
	n := 0
	for _, sp := range res.Trace.Spans {
		if sp.Kind == trace.KindShard {
			n++
		}
	}
	return n
}

// TestShardingSpeedup is E11's acceptance gate on the wide single-atom
// chain. shards=1 must take exactly the pre-sharding path — no shard
// spans, the same job count, byte-identical records. A wide fan-out
// must also reproduce the records byte-identically and be ≥1.5× faster
// on the simulated clock: the single-node engine's sim is its measured
// atom time, a sharded atom reports its slowest shard, and the
// per-record work waits rather than spins, so shards overlap on any
// host. Timing is best-of-3 to shave scheduler noise.
func TestShardingSpeedup(t *testing.T) {
	const recs, reps = 200, 3
	const delay = 150 * time.Microsecond
	run := func(shards int) *executor.Result {
		t.Helper()
		// A fresh context per run keeps runs strictly independent: no
		// platform state (catalogs, stage accounting) carries over.
		ctx, err := rheem.NewContext(rheem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWide(ctx.Registry(), recs, delay, shards)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	best := func(shards int) (*executor.Result, time.Duration) {
		res := run(shards)
		min := res.Metrics.Sim
		for i := 1; i < reps; i++ {
			if r := run(shards); r.Metrics.Sim < min {
				res, min = r, r.Metrics.Sim
			}
		}
		return res, min
	}

	legacy, legacySim := best(0) // today's path: no shard option at all
	base, baseSim := best(1)
	for name, res := range map[string]*executor.Result{"shards=0": legacy, "shards=1": base} {
		if n := shardSpansOf(res); n != 0 {
			t.Errorf("%s produced %d shard spans, want the unsharded path", name, n)
		}
	}
	if base.Metrics.Jobs != legacy.Metrics.Jobs {
		t.Errorf("shards=1 launched %d jobs, unsharded path launched %d", base.Metrics.Jobs, legacy.Metrics.Jobs)
	}
	want := wideRecordBytes(t, legacy.Records)
	if !bytes.Equal(wideRecordBytes(t, base.Records), want) {
		t.Error("shards=1 records differ from the unsharded path")
	}
	t.Logf("sim: shards=0 %v, shards=1 %v (same path, wall noise only)", legacySim, baseSim)

	// The shard width models platform slots, not host threads, so the
	// slowest-shard clock is meaningful even on a small CI box; still
	// use GOMAXPROCS when it is wide enough to be interesting.
	shards := runtime.GOMAXPROCS(0)
	if shards < 4 {
		shards = 4
	}
	sharded, shardedSim := best(shards)
	if !bytes.Equal(wideRecordBytes(t, sharded.Records), want) {
		t.Errorf("shards=%d records differ from the unsharded path", shards)
	}
	if n := shardSpansOf(sharded); n < shards {
		t.Errorf("shards=%d produced %d shard spans, want ≥%d", shards, n, shards)
	}
	if sharded.Metrics.Jobs <= base.Metrics.Jobs {
		t.Errorf("sharded run launched %d jobs, want more than the unsharded %d",
			sharded.Metrics.Jobs, base.Metrics.Jobs)
	}
	speedup := float64(baseSim) / float64(shardedSim)
	t.Logf("sim: shards=1 %v, shards=%d %v — %.2fx", baseSim, shards, shardedSim, speedup)
	if speedup < 1.5 {
		t.Errorf("shards=%d sim speedup %.2fx, want ≥1.5x (base %v, sharded %v)",
			shards, speedup, baseSim, shardedSim)
	}
}
