package bench

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"rheem"
	"rheem/internal/apps/cleaning"
	"rheem/internal/apps/ml"
	"rheem/internal/data/datagen"
)

func init() {
	register("telemetry", telemetry)
}

// telemetry is E10: the cost of the live telemetry layer. Each
// workload (k-means and BigDansing-style cleaning — the paper's two
// flagship jobs) runs three ways: tracing off, WithTracing, and
// WithTracing plus a metrics server being scraped concurrently. The
// reported overheads are the wall-time deltas against the first mode.
// Every Execute feeds the hub's span-stream collector regardless of
// mode (that cost is the baseline); the modes add report snapshots and
// scrape load on top.
func telemetry(cfg Config) ([]*Table, error) {
	reps := 5
	kmN, kmIters := 20_000, 10
	cleanN := 20_000
	if cfg.Quick {
		reps = 2
		kmN, kmIters = 2_000, 3
		cleanN = 2_000
	}

	pts := datagen.Points(datagen.PointsConfig{N: kmN, Dim: 3, Noise: 0.05, Seed: 42})
	tax := datagen.Tax(datagen.TaxConfig{N: cleanN, Zips: cleanN / 50, ErrorRate: 0.01, Seed: 42})

	workloads := []struct {
		name string
		run  func(ctx *rheem.Context, opts ...rheem.RunOption) (*rheem.Report, error)
	}{
		{"k-means", func(ctx *rheem.Context, opts ...rheem.RunOption) (*rheem.Report, error) {
			tpl := ml.KMeans(pts, ml.KMeansConfig{K: 4, Iterations: kmIters, Dim: 3})
			_, rep, err := tpl.Run(ctx, opts...)
			return rep, err
		}},
		{"cleaning", func(ctx *rheem.Context, opts ...rheem.RunOption) (*rheem.Report, error) {
			det, err := cleaning.NewDetector(ctx, zipCityFD())
			if err != nil {
				return nil, err
			}
			_, rep, err := det.Detect(tax, opts...)
			return rep, err
		}},
	}

	t := &Table{
		Title: fmt.Sprintf("E10 — live telemetry overhead (best of %d, wall time)", reps),
		Note: "Modes: tracing off / WithTracing (report carries trace + telemetry snapshot) / " +
			"WithTracing with /metrics and /runs scraped continuously during the run.",
		Columns: []string{"workload", "mode", "wall", "overhead"},
	}

	for _, w := range workloads {
		var base time.Duration
		for _, mode := range []string{"off", "tracing", "tracing+scrape"} {
			cfg.logf("telemetry: %s %s", w.name, mode)
			wall, err := telemetryMode(cfg, mode, reps, w.run)
			if err != nil {
				return nil, fmt.Errorf("telemetry: %s/%s: %w", w.name, mode, err)
			}
			if mode == "off" {
				base = wall
			}
			overhead := "-"
			if mode != "off" && base > 0 {
				overhead = fmt.Sprintf("%+.1f%%", 100*float64(wall-base)/float64(base))
			}
			t.AddRow(w.name, mode, Dur(wall), overhead)
		}
	}
	return []*Table{t}, nil
}

// telemetryMode measures one (workload, mode) cell: best wall time of
// reps executions, each on a fresh context so breaker state and
// cumulative counters never leak between modes.
func telemetryMode(cfg Config, mode string, reps int,
	run func(ctx *rheem.Context, opts ...rheem.RunOption) (*rheem.Report, error)) (time.Duration, error) {

	var opts []rheem.RunOption
	if mode != "off" {
		opts = append(opts, rheem.WithTracing())
	}

	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		ctx, err := newCtx(cfg)
		if err != nil {
			return 0, err
		}
		var stopScrape chan struct{}
		var scraped chan int
		if mode == "tracing+scrape" {
			addr, err := ctx.ServeMetrics("127.0.0.1:0")
			if err != nil {
				return 0, err
			}
			stopScrape = make(chan struct{})
			scraped = make(chan int, 1)
			go scrapeLoop(addr, stopScrape, scraped)
		}
		rep, err := run(ctx, opts...)
		if stopScrape != nil {
			close(stopScrape)
			n := <-scraped
			if n == 0 {
				// The workload outran the scraper entirely — the cell
				// would not measure what it claims. One late scrape.
				scrapeOnce(ctx.MetricsAddr())
			}
		}
		cerr := ctx.Close()
		if err != nil {
			return 0, err
		}
		if cerr != nil {
			return 0, cerr
		}
		if mode != "off" && rep.Telemetry == nil {
			return 0, fmt.Errorf("tracing mode produced no telemetry snapshot")
		}
		if wall := rep.Metrics.Wall; best == 0 || wall < best {
			best = wall
		}
	}
	return best, nil
}

// scrapeLoop polls /metrics and /runs every 10ms until stopped —
// orders of magnitude more aggressive than a real scraper's 5–15s
// interval, without degenerating into a CPU-stealing busy loop —
// reporting how many scrapes completed.
func scrapeLoop(addr string, stop <-chan struct{}, done chan<- int) {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-stop:
			done <- n
			return
		case <-tick.C:
			if scrapeOnce(addr) {
				n++
			}
		}
	}
}

// scrapeOnce GETs both monitoring endpoints, draining the bodies the
// way a real scraper would.
func scrapeOnce(addr string) bool {
	ok := true
	for _, path := range []string{"/metrics", "/runs"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			ok = false
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ok = false
		}
	}
	return ok
}
