package bench

import (
	"testing"
)

// TestCalibrationReplayClosesOracleGap is the E15 gate: with a known
// ×32 estimation error injected into java's cost models, the cold
// optimizer must pick a measurably-wrong plan (positive oracle gap),
// and after the replay has warmed the shared calibrator the gap must
// have shrunk to at most half its cold value. Fixed seeds and
// simulated time keep the margin wide: the cold gap is ~35× the warm
// gap in practice, so the ≤½ gate has room for the small wall-derived
// jitter in the simulated clock.
func TestCalibrationReplayClosesOracleGap(t *testing.T) {
	if testing.Short() {
		t.Skip("replay runs 3 arms × 6 rounds; skipped under -short")
	}
	res, err := CalibrationReplay(Config{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rounds {
		t.Logf("round %d: opt=%v java=%v spark=%v chosen=%s gap=%v folds=%d",
			r.Round, r.Optimizer, r.Java, r.Spark, r.Chosen, r.Gap, r.Folds)
	}

	cold, warm := res.Cold(), res.Warm()
	// The injected skew must actually mislead the cold optimizer —
	// otherwise the experiment gates nothing.
	if cold <= 0 {
		t.Fatalf("cold optimizer already matched the oracle (gap %v); the ×%v skew is not misleading it", cold, res.Skew)
	}
	if warm > cold/2 {
		t.Errorf("calibration did not close the oracle gap: cold %v, warm %v (want <= %v)", cold, warm, cold/2)
	}

	// Every arm of every round folds into the shared calibrator.
	last := res.Rounds[len(res.Rounds)-1]
	if want := int64(3 * len(res.Rounds)); last.Folds != want {
		t.Errorf("calibrator folded %d times, want %d (3 arms × %d rounds)", last.Folds, want, len(res.Rounds))
	}
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Folds <= res.Rounds[i-1].Folds {
			t.Errorf("folds not increasing at round %d: %d -> %d", i, res.Rounds[i-1].Folds, res.Rounds[i].Folds)
		}
	}

	// The oracle arms are pinned, so their sim times must stay within
	// the same order of magnitude across rounds — if an arm drifts
	// wildly the "replay" is not replaying the same experiment.
	for _, r := range res.Rounds {
		if r.Java <= 0 || r.Spark <= 0 {
			t.Fatalf("round %d has a non-positive oracle arm: %+v", r.Round, r)
		}
		if r.Java > res.Rounds[0].Java*4 || r.Java < res.Rounds[0].Java/4 {
			t.Errorf("java arm drifted at round %d: %v vs round 0's %v", r.Round, r.Java, res.Rounds[0].Java)
		}
	}
}

// TestCalibrationExperimentRegistered pins the rheem-bench surface: the
// replay is runnable as the "calibration" experiment and renders one
// row per round.
func TestCalibrationExperimentRegistered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full replay; skipped under -short")
	}
	found := false
	for _, n := range Experiments() {
		if n == "calibration" {
			found = true
		}
	}
	if !found {
		t.Fatalf("calibration experiment not registered: %v", Experiments())
	}
	tables, err := Run("calibration", Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	if got := len(tables[0].Rows); got != 4 {
		t.Fatalf("quick replay rendered %d rows, want 4", got)
	}
}
