package bench

import (
	"fmt"
	"time"

	"rheem"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
)

func init() {
	register("reopt", reopt)
}

// reopt is E7: the adaptive re-optimization ablation. A source lies
// about its cardinality by the given factor (stale statistics, the
// classic optimizer failure mode) feeding an iterative job; the
// stubborn executor follows the original mis-planned assignment, the
// adaptive one re-plans at the first atom boundary once the audit
// exposes the lie. This takes the §4.2 Executor duty of "monitoring
// the progress of plan execution" to its conclusion.
func reopt(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	actual := 2_000
	iters := 40
	if cfg.Quick {
		actual = 500
		iters = 10
	}
	t := &Table{
		Title: fmt.Sprintf("E7 — adaptive re-optimization under stale statistics (%s actual points, %d-iteration loop)", Count(actual), iters),
		Note:  "The source's cardinality hint is inflated by the given factor; 'stubborn' keeps the mis-planned platform, 'adaptive' re-plans after the audit fires at the first atom boundary.",
		Columns: []string{"claimed/actual", "stubborn", "adaptive", "re-planned", "saving"},
	}
	pts := datagen.ZipfInts(actual, 1000, 77)
	for _, factor := range []int64{1, 10, 100, 1000} {
		cfg.logf("reopt: factor=%d", factor)
		run := func(adaptive bool) (time.Duration, bool, error) {
			q := ctx.NewJob(fmt.Sprintf("stale-%d-%v", factor, adaptive)).
				ReadSource("liar", plan.Collection(pts), int64(actual)*factor).
				Repeat(iters, func(_ *rheem.LoopBody, state *rheem.DataQuanta) *rheem.DataQuanta {
					return state.Map(func(r data.Record) (data.Record, error) {
						return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
					})
				})
			_, rep, err := q.Collect(rheem.WithReOptimize(adaptive))
			if err != nil {
				return 0, false, err
			}
			return pick(cfg, rep.Metrics), rep.Reoptimized, nil
		}
		stubborn, _, err := run(false)
		if err != nil {
			return nil, err
		}
		adaptive, replanned, err := run(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx", factor), Dur(stubborn), Dur(adaptive),
			fmt.Sprint(replanned), Speedup(stubborn, adaptive))
	}
	return []*Table{t}, nil
}
