package suite

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Delta statuses, from worst to best.
const (
	StatusRegressed    = "regressed"     // new is slower past the threshold
	StatusMissingNew   = "missing-new"   // scenario vanished from the new set
	StatusMissingOld   = "missing-old"   // scenario has no baseline yet
	StatusZeroBaseline = "zero-baseline" // baseline too small to divide by
	StatusOK           = "ok"            // within the threshold either way
	StatusImproved     = "improved"      // new is faster past the threshold
)

// CompareOptions steers regression gating.
type CompareOptions struct {
	// ThresholdPct: a scenario regresses when the chosen metric grows
	// by more than this percentage. 0 means DefaultThresholdPct.
	ThresholdPct float64
	// Metric is "wall" (default; min-of-reps measured time) or "sim"
	// (the simulated cluster clock).
	Metric string
	// FloorNS guards near-zero baselines: baselines below it are
	// reported as zero-baseline and never gate. 0 means DefaultFloorNS.
	FloorNS int64
}

// DefaultThresholdPct is the regression gate used when none is given —
// the >10% rule from ROADMAP item 5.
const DefaultThresholdPct = 10.0

// DefaultFloorNS is the near-zero baseline guard: 100µs of wall is
// below the timer+scheduler noise floor for a whole scenario, so a
// percentage against it is meaningless.
const DefaultFloorNS = 100_000

// Delta is one scenario's old-vs-new comparison.
type Delta struct {
	Name   string
	Status string
	OldNS  int64
	NewNS  int64
	// Pct is 100*(new-old)/old; only meaningful when both sides exist
	// and the baseline is above the floor.
	Pct float64
	// Noisy is true when either side flagged the scenario's rep-to-rep
	// spread — a reader should trust the delta less.
	Noisy bool
}

// Comparison is one area's compare result.
type Comparison struct {
	Area         string
	Metric       string
	ThresholdPct float64
	Deltas       []Delta
}

// Regressions counts deltas whose status is regressed.
func (c *Comparison) Regressions() int {
	n := 0
	for _, d := range c.Deltas {
		if d.Status == StatusRegressed {
			n++
		}
	}
	return n
}

func (o CompareOptions) normalize() (CompareOptions, error) {
	if o.ThresholdPct == 0 {
		o.ThresholdPct = DefaultThresholdPct
	}
	if o.ThresholdPct < 0 {
		return o, fmt.Errorf("suite: negative threshold %v", o.ThresholdPct)
	}
	if o.FloorNS == 0 {
		o.FloorNS = DefaultFloorNS
	}
	switch o.Metric {
	case "":
		o.Metric = "wall"
	case "wall", "sim":
	default:
		return o, fmt.Errorf("suite: unknown compare metric %q (want wall or sim)", o.Metric)
	}
	return o, nil
}

func metricOf(r *Result, metric string) int64 {
	if metric == "sim" {
		return r.SimNS
	}
	return r.WallNS
}

// Compare diffs two result sets of the same area. Scenario matching is
// by name; the delta order is the new file's scenario order with
// old-only scenarios appended. Schema versions are already equal (both
// files passed Decode), but mismatched areas are an error — comparing
// BENCH_core.json against BENCH_sharding.json is a caller bug, not a
// regression.
func Compare(old, new *File, opts CompareOptions) (*Comparison, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("suite: schema version mismatch: old %d vs new %d", old.Schema, new.Schema)
	}
	if old.Area != new.Area {
		return nil, fmt.Errorf("suite: area mismatch: old %q vs new %q", old.Area, new.Area)
	}
	// Different tiers (or a quick-shrunk side) ran different workload
	// sizes; a delta between them is meaningless, not a regression.
	if old.Tier != new.Tier {
		return nil, fmt.Errorf("suite: tier mismatch: old %q vs new %q", old.Tier, new.Tier)
	}
	if old.Quick != new.Quick {
		return nil, fmt.Errorf("suite: quick mismatch: old quick=%v vs new quick=%v", old.Quick, new.Quick)
	}
	oldBy := map[string]*Result{}
	for i := range old.Scenarios {
		oldBy[old.Scenarios[i].Name] = &old.Scenarios[i]
	}
	newNames := map[string]bool{}

	c := &Comparison{Area: new.Area, Metric: opts.Metric, ThresholdPct: opts.ThresholdPct}
	for i := range new.Scenarios {
		nr := &new.Scenarios[i]
		newNames[nr.Name] = true
		d := Delta{Name: nr.Name, NewNS: metricOf(nr, opts.Metric), Noisy: nr.Noisy}
		or, ok := oldBy[nr.Name]
		switch {
		case !ok:
			d.Status = StatusMissingOld
		default:
			d.OldNS = metricOf(or, opts.Metric)
			d.Noisy = d.Noisy || or.Noisy
			if d.OldNS < opts.FloorNS {
				d.Status = StatusZeroBaseline
				break
			}
			d.Pct = 100 * float64(d.NewNS-d.OldNS) / float64(d.OldNS)
			switch {
			case d.Pct > opts.ThresholdPct:
				d.Status = StatusRegressed
			case d.Pct < -opts.ThresholdPct:
				d.Status = StatusImproved
			default:
				d.Status = StatusOK
			}
		}
		c.Deltas = append(c.Deltas, d)
	}
	for i := range old.Scenarios {
		or := &old.Scenarios[i]
		if newNames[or.Name] {
			continue
		}
		c.Deltas = append(c.Deltas, Delta{
			Name:   or.Name,
			Status: StatusMissingNew,
			OldNS:  metricOf(or, opts.Metric),
			Noisy:  or.Noisy,
		})
	}
	return c, nil
}

// CompareSets diffs two multi-area result sets, matching files by
// area. An area present on only one side is an error: a result set
// that silently lost an area must not read as "no regressions".
func CompareSets(old, new []*File, opts CompareOptions) ([]*Comparison, error) {
	oldBy := map[string]*File{}
	for _, f := range old {
		oldBy[f.Area] = f
	}
	newBy := map[string]*File{}
	for _, f := range new {
		newBy[f.Area] = f
	}
	for area := range oldBy {
		if newBy[area] == nil {
			return nil, fmt.Errorf("suite: area %q present in old set but missing from new", area)
		}
	}
	var out []*Comparison
	for _, nf := range new {
		of := oldBy[nf.Area]
		if of == nil {
			return nil, fmt.Errorf("suite: area %q present in new set but missing from old", nf.Area)
		}
		c, err := Compare(of, nf, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Regressions sums regressed deltas across comparisons.
func Regressions(cs []*Comparison) int {
	n := 0
	for _, c := range cs {
		n += c.Regressions()
	}
	return n
}

// WriteTable renders the comparison as an aligned delta table.
func (c *Comparison) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s (%s, threshold %.0f%%) ==\n", Filename(c.Area), c.Metric, c.ThresholdPct)
	rows := [][]string{{"scenario", "old", "new", "delta", "status"}}
	for _, d := range c.Deltas {
		delta := "-"
		if d.Status != StatusMissingOld && d.Status != StatusMissingNew && d.Status != StatusZeroBaseline {
			delta = fmt.Sprintf("%+.1f%%", d.Pct)
		}
		status := d.Status
		if d.Noisy {
			status += " (noisy)"
		}
		rows = append(rows, []string{d.Name, fmtNS(d.OldNS), fmtNS(d.NewNS), delta, status})
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, r := range rows {
		for i, cell := range r {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
		if ri == 0 {
			for i := range r {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprint(w, strings.Repeat("-", widths[i]))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

func fmtNS(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
