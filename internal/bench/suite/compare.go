package suite

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Delta statuses, from worst to best.
const (
	StatusRegressed    = "regressed"     // new is slower past the threshold
	StatusMissingNew   = "missing-new"   // scenario vanished from the new set
	StatusMissingOld   = "missing-old"   // scenario has no baseline yet
	StatusZeroBaseline = "zero-baseline" // baseline too small to divide by
	StatusOK           = "ok"            // within the threshold either way
	StatusImproved     = "improved"      // new is faster past the threshold
)

// CompareOptions steers regression gating.
type CompareOptions struct {
	// ThresholdPct: a scenario regresses when the chosen metric grows
	// by more than this percentage. 0 means DefaultThresholdPct.
	ThresholdPct float64
	// Metric is "wall" (default; min-of-reps measured time) or "sim"
	// (the simulated cluster clock).
	Metric string
	// FloorNS guards near-zero baselines: baselines below it are
	// reported as zero-baseline and never gate. 0 means DefaultFloorNS.
	FloorNS int64
	// AllocsThresholdPct gates allocs/op growth: a scenario regresses
	// when its allocation count grows past this percentage. 0 inherits
	// ThresholdPct; negative disables allocation gating.
	AllocsThresholdPct float64
	// RPSThresholdPct gates records/s: a scenario regresses when its
	// throughput *drops* past this percentage. 0 inherits ThresholdPct;
	// negative disables throughput gating.
	RPSThresholdPct float64
	// AllocsFloor guards tiny allocation baselines: baselines below it
	// never gate. 0 means DefaultAllocsFloor.
	AllocsFloor int64
}

// DefaultThresholdPct is the regression gate used when none is given —
// the >10% rule from ROADMAP item 5.
const DefaultThresholdPct = 10.0

// DefaultFloorNS is the near-zero baseline guard: 100µs of wall is
// below the timer+scheduler noise floor for a whole scenario, so a
// percentage against it is meaningless.
const DefaultFloorNS = 100_000

// DefaultAllocsFloor is the allocation-baseline guard: below 10k
// allocs/op the runtime's own bookkeeping dominates the count and a
// percentage against it is noise.
const DefaultAllocsFloor = 10_000

// Delta is one scenario's old-vs-new comparison.
type Delta struct {
	Name   string
	Status string
	OldNS  int64
	NewNS  int64
	// Pct is 100*(new-old)/old; only meaningful when both sides exist
	// and the baseline is above the floor.
	Pct float64
	// Allocation sub-delta: allocs/op on both sides, the growth
	// percentage, and its own status. AllocsStatus is empty when
	// allocation gating is disabled or a side is missing.
	OldAllocs    int64
	NewAllocs    int64
	AllocsPct    float64
	AllocsStatus string
	// Throughput sub-delta: records/s on both sides. A drop past the
	// threshold regresses (lower is worse — the sign convention is the
	// opposite of the time metrics). RPSStatus is empty when throughput
	// gating is disabled or a side is missing.
	OldRPS    float64
	NewRPS    float64
	RPSPct    float64
	RPSStatus string
	// Noisy is true when either side flagged the scenario's rep-to-rep
	// spread — a reader should trust the delta less.
	Noisy bool
}

// Regressed reports whether any gated metric — time, allocs/op, or
// records/s — regressed past its threshold.
func (d *Delta) Regressed() bool {
	return d.Status == StatusRegressed ||
		d.AllocsStatus == StatusRegressed ||
		d.RPSStatus == StatusRegressed
}

// Comparison is one area's compare result.
type Comparison struct {
	Area         string
	Metric       string
	ThresholdPct float64
	Deltas       []Delta
}

// Regressions counts deltas whose status is regressed.
func (c *Comparison) Regressions() int {
	n := 0
	for i := range c.Deltas {
		if c.Deltas[i].Regressed() {
			n++
		}
	}
	return n
}

func (o CompareOptions) normalize() (CompareOptions, error) {
	if o.ThresholdPct == 0 {
		o.ThresholdPct = DefaultThresholdPct
	}
	if o.ThresholdPct < 0 {
		return o, fmt.Errorf("suite: negative threshold %v", o.ThresholdPct)
	}
	if o.FloorNS == 0 {
		o.FloorNS = DefaultFloorNS
	}
	if o.AllocsThresholdPct == 0 {
		o.AllocsThresholdPct = o.ThresholdPct
	}
	if o.RPSThresholdPct == 0 {
		o.RPSThresholdPct = o.ThresholdPct
	}
	if o.AllocsFloor == 0 {
		o.AllocsFloor = DefaultAllocsFloor
	}
	switch o.Metric {
	case "":
		o.Metric = "wall"
	case "wall", "sim":
	default:
		return o, fmt.Errorf("suite: unknown compare metric %q (want wall or sim)", o.Metric)
	}
	return o, nil
}

// gradePct maps a growth-is-bad percentage to a status.
func gradePct(pct, threshold float64) string {
	switch {
	case pct > threshold:
		return StatusRegressed
	case pct < -threshold:
		return StatusImproved
	default:
		return StatusOK
	}
}

// fillSubDeltas computes the allocs/op and records/s sub-deltas for a
// scenario present on both sides.
func fillSubDeltas(d *Delta, or, nr *Result, opts CompareOptions) {
	if opts.AllocsThresholdPct >= 0 {
		d.OldAllocs, d.NewAllocs = or.AllocsPerOp, nr.AllocsPerOp
		if or.AllocsPerOp < opts.AllocsFloor {
			d.AllocsStatus = StatusZeroBaseline
		} else {
			d.AllocsPct = 100 * float64(nr.AllocsPerOp-or.AllocsPerOp) / float64(or.AllocsPerOp)
			d.AllocsStatus = gradePct(d.AllocsPct, opts.AllocsThresholdPct)
		}
	}
	if opts.RPSThresholdPct >= 0 {
		d.OldRPS, d.NewRPS = or.RecordsPerSec, nr.RecordsPerSec
		if or.RecordsPerSec <= 0 {
			d.RPSStatus = StatusZeroBaseline
		} else {
			d.RPSPct = 100 * (nr.RecordsPerSec - or.RecordsPerSec) / or.RecordsPerSec
			d.RPSStatus = gradePct(-d.RPSPct, opts.RPSThresholdPct) // a drop regresses
		}
	}
}

func metricOf(r *Result, metric string) int64 {
	if metric == "sim" {
		return r.SimNS
	}
	return r.WallNS
}

// Compare diffs two result sets of the same area. Scenario matching is
// by name; the delta order is the new file's scenario order with
// old-only scenarios appended. Schema versions are already equal (both
// files passed Decode), but mismatched areas are an error — comparing
// BENCH_core.json against BENCH_sharding.json is a caller bug, not a
// regression.
func Compare(old, new *File, opts CompareOptions) (*Comparison, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("suite: schema version mismatch: old %d vs new %d", old.Schema, new.Schema)
	}
	if old.Area != new.Area {
		return nil, fmt.Errorf("suite: area mismatch: old %q vs new %q", old.Area, new.Area)
	}
	// Different tiers (or a quick-shrunk side) ran different workload
	// sizes; a delta between them is meaningless, not a regression.
	if old.Tier != new.Tier {
		return nil, fmt.Errorf("suite: tier mismatch: old %q vs new %q", old.Tier, new.Tier)
	}
	if old.Quick != new.Quick {
		return nil, fmt.Errorf("suite: quick mismatch: old quick=%v vs new quick=%v", old.Quick, new.Quick)
	}
	oldBy := map[string]*Result{}
	for i := range old.Scenarios {
		oldBy[old.Scenarios[i].Name] = &old.Scenarios[i]
	}
	newNames := map[string]bool{}

	c := &Comparison{Area: new.Area, Metric: opts.Metric, ThresholdPct: opts.ThresholdPct}
	for i := range new.Scenarios {
		nr := &new.Scenarios[i]
		newNames[nr.Name] = true
		d := Delta{Name: nr.Name, NewNS: metricOf(nr, opts.Metric), Noisy: nr.Noisy}
		or, ok := oldBy[nr.Name]
		switch {
		case !ok:
			d.Status = StatusMissingOld
		default:
			d.OldNS = metricOf(or, opts.Metric)
			d.Noisy = d.Noisy || or.Noisy
			fillSubDeltas(&d, or, nr, opts)
			if d.OldNS < opts.FloorNS {
				d.Status = StatusZeroBaseline
				break
			}
			d.Pct = 100 * float64(d.NewNS-d.OldNS) / float64(d.OldNS)
			d.Status = gradePct(d.Pct, opts.ThresholdPct)
		}
		c.Deltas = append(c.Deltas, d)
	}
	for i := range old.Scenarios {
		or := &old.Scenarios[i]
		if newNames[or.Name] {
			continue
		}
		c.Deltas = append(c.Deltas, Delta{
			Name:   or.Name,
			Status: StatusMissingNew,
			OldNS:  metricOf(or, opts.Metric),
			Noisy:  or.Noisy,
		})
	}
	return c, nil
}

// CompareSets diffs two multi-area result sets, matching files by
// area. An area present on only one side is an error: a result set
// that silently lost an area must not read as "no regressions".
func CompareSets(old, new []*File, opts CompareOptions) ([]*Comparison, error) {
	oldBy := map[string]*File{}
	for _, f := range old {
		oldBy[f.Area] = f
	}
	newBy := map[string]*File{}
	for _, f := range new {
		newBy[f.Area] = f
	}
	for area := range oldBy {
		if newBy[area] == nil {
			return nil, fmt.Errorf("suite: area %q present in old set but missing from new", area)
		}
	}
	var out []*Comparison
	for _, nf := range new {
		of := oldBy[nf.Area]
		if of == nil {
			return nil, fmt.Errorf("suite: area %q present in new set but missing from old", nf.Area)
		}
		c, err := Compare(of, nf, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// Regressions sums regressed deltas across comparisons.
func Regressions(cs []*Comparison) int {
	n := 0
	for _, c := range cs {
		n += c.Regressions()
	}
	return n
}

// WriteTable renders the comparison as an aligned delta table.
func (c *Comparison) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s (%s, threshold %.0f%%) ==\n", Filename(c.Area), c.Metric, c.ThresholdPct)
	rows := [][]string{{"scenario", "old", "new", "delta", "allocs", "rec/s", "status"}}
	for _, d := range c.Deltas {
		delta := "-"
		if d.Status != StatusMissingOld && d.Status != StatusMissingNew && d.Status != StatusZeroBaseline {
			delta = fmt.Sprintf("%+.1f%%", d.Pct)
		}
		status := d.Status
		if d.AllocsStatus == StatusRegressed {
			status += "+allocs"
		}
		if d.RPSStatus == StatusRegressed {
			status += "+rec/s"
		}
		if d.Noisy {
			status += " (noisy)"
		}
		rows = append(rows, []string{d.Name, fmtNS(d.OldNS), fmtNS(d.NewNS), delta,
			subCell(d.AllocsStatus, d.AllocsPct), subCell(d.RPSStatus, d.RPSPct), status})
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, r := range rows {
		for i, cell := range r {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
		if ri == 0 {
			for i := range r {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprint(w, strings.Repeat("-", widths[i]))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// subCell renders a sub-delta percentage, or "-" when the sub-metric
// was disabled, had no baseline pair, or sat below its floor.
func subCell(status string, pct float64) string {
	if status == "" || status == StatusZeroBaseline {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}

func fmtNS(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
