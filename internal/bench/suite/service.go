// The service area: E12's multi-tenant job-service load, persisted in
// the perf trajectory. Each scenario drives the closed-loop generator
// against a freshly built service and reports the run's wall time and
// total output-record traffic, so -compare gates job-service
// throughput the same way it gates the engine cores.
package suite

import (
	"fmt"

	"rheem/internal/core/metrics"
	"rheem/internal/service"
)

// AreaService is the multi-tenant job-service area (E12).
const AreaService = "service"

// serviceScenario runs tenants × jobs through the job service with a
// closed loop of 2 in-flight jobs per tenant. The spec mix and sizes
// depend only on the scale, so record traffic is rep-invariant.
func serviceScenario(tenants int) func(Scale, *metrics.Hub) (Measure, error) {
	return func(s Scale, hub *metrics.Hub) (Measure, error) {
		jobs := s.pick3(2, 4, 10)
		n := s.pick3(300, 1_000, 10_000)
		svc, err := service.New(service.Config{
			Hub:          hub,
			CatalogScale: 500,
		})
		if err != nil {
			return Measure{}, err
		}
		defer svc.Close()
		res, err := service.RunLoad(svc, service.LoadConfig{
			Tenants:       tenants,
			JobsPerTenant: jobs,
			Concurrency:   2,
			Specs: []service.Spec{
				{Kind: service.KindWorkload, Workload: service.WorkloadWordcount, N: n, Seed: 1},
				{Kind: service.KindWorkload, Workload: service.WorkloadSensor, N: n, Wells: 8, Seed: 2},
				{Kind: service.KindWorkload, Workload: service.WorkloadFanout, N: n / 8, Branches: 3, Seed: 3},
			},
		})
		if err != nil {
			return Measure{}, err
		}
		if res.Succeeded != tenants*jobs {
			return Measure{}, fmt.Errorf("service load: %d/%d jobs succeeded (failed %d, cancelled %d)",
				res.Succeeded, tenants*jobs, res.Failed, res.Cancelled)
		}
		var records int64
		for _, st := range svc.Jobs() {
			records += int64(st.Records)
		}
		// The service has no simulated clock of its own; report the job
		// p99 as Sim so the sim column carries the tail-latency curve.
		return Measure{Wall: res.Wall, Sim: res.P99, Records: records}, nil
	}
}
