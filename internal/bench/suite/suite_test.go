package suite

import (
	"bytes"
	"testing"
	"time"

	"rheem/internal/core/metrics"
)

// TestSuiteDeterminism is the shape contract behind checked-in
// baselines: two consecutive quick short-tier runs must execute the
// identical scenario matrix and produce schema-identical JSON — only
// the measured values may differ. Canonical() zeroes exactly those, so
// the canonical encodings must match byte for byte.
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick suite twice")
	}
	opts := Options{Tier: TierShort, Quick: true}
	run1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(run1) != len(run2) {
		t.Fatalf("area counts differ: %d vs %d", len(run1), len(run2))
	}
	for i := range run1 {
		f1, f2 := run1[i], run2[i]
		if f1.Area != f2.Area {
			t.Fatalf("area order differs: %q vs %q", f1.Area, f2.Area)
		}
		names := func(f *File) []string {
			out := make([]string, len(f.Scenarios))
			for j, s := range f.Scenarios {
				out[j] = s.Name
			}
			return out
		}
		n1, n2 := names(f1), names(f2)
		if len(n1) != len(n2) {
			t.Fatalf("%s: scenario counts differ: %v vs %v", f1.Area, n1, n2)
		}
		for j := range n1 {
			if n1[j] != n2[j] {
				t.Errorf("%s: scenario set differs at %d: %q vs %q", f1.Area, j, n1[j], n2[j])
			}
		}
		b1, err := f1.Canonical().Encode()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := f2.Canonical().Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: canonical encodings differ:\n%s\nvs\n%s", f1.Area, b1, b2)
		}

		// Record traffic is part of the deterministic workload, not
		// timing: identical across runs.
		for j := range f1.Scenarios {
			if f1.Scenarios[j].Records != f2.Scenarios[j].Records {
				t.Errorf("%s/%s: record counts differ across runs: %d vs %d",
					f1.Area, f1.Scenarios[j].Name, f1.Scenarios[j].Records, f2.Scenarios[j].Records)
			}
		}
	}

	// Every scenario must carry a full measurement: reps recorded,
	// positive wall clock, records observed, and the noisy flag
	// consistent with the recorded spread.
	for _, f := range run1 {
		for _, s := range f.Scenarios {
			if len(s.RepWallNS) != s.Reps {
				t.Errorf("%s/%s: %d rep walls for %d reps", f.Area, s.Name, len(s.RepWallNS), s.Reps)
			}
			if s.WallNS <= 0 || s.Records <= 0 || s.RecordsPerSec <= 0 {
				t.Errorf("%s/%s: incomplete measurement: %+v", f.Area, s.Name, s)
			}
			if s.P99LatencyNS <= 0 {
				t.Errorf("%s/%s: no p99 extracted from the telemetry hub", f.Area, s.Name)
			}
			// The flag is judged against the budget actually applied —
			// scenarios with an elevated Scenario.NoisePct (colchain-*,
			// serve-*) are noisy only past their own budget.
			budget := s.NoiseBudgetPct
			if budget == 0 {
				budget = DefaultNoisePct
			}
			if s.Noisy != (s.SpreadPct > budget) {
				t.Errorf("%s/%s: noisy=%v inconsistent with spread %.1f%% (budget %v%%)",
					f.Area, s.Name, s.Noisy, s.SpreadPct, budget)
			}
		}
	}
}

func TestRunRejectsUnknownTier(t *testing.T) {
	if _, err := Run(Options{Tier: "medium"}); err == nil {
		t.Error("unknown tier accepted")
	}
}

func TestSpreadPct(t *testing.T) {
	cases := []struct {
		reps []int64
		want float64
	}{
		{nil, 0},
		{[]int64{100}, 0},
		{[]int64{100, 100}, 0},
		{[]int64{100, 150}, 50},
		{[]int64{200, 100, 150}, 100},
		{[]int64{0, 100}, 0}, // degenerate min: no meaningful spread
	}
	for _, tc := range cases {
		if got := spreadPct(tc.reps); got != tc.want {
			t.Errorf("spreadPct(%v) = %v, want %v", tc.reps, got, tc.want)
		}
	}
}

// TestScenarioMatrixShape pins the matrix the BENCH files are built
// from: every scenario named, areas grouped contiguously, names unique.
func TestScenarioMatrixShape(t *testing.T) {
	seen := map[string]bool{}
	areas := map[string]bool{}
	var lastArea string
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Area == "" || sc.Run == nil {
			t.Errorf("incomplete scenario: %+v", sc)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Area != lastArea && areas[sc.Area] {
			t.Errorf("area %q is not contiguous in the matrix", sc.Area)
		}
		areas[sc.Area] = true
		lastArea = sc.Area
	}
	for _, want := range []string{AreaCore, AreaParallel, AreaSharding, AreaService} {
		if !areas[want] {
			t.Errorf("matrix covers no %q scenarios", want)
		}
	}
}

// TestRunAreasFilter pins the -areas contract: only the requested
// areas run, and a typo errors instead of yielding an empty set.
func TestRunAreasFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick sharding area")
	}
	files, err := Run(Options{Tier: TierShort, Quick: true, Areas: []string{AreaSharding}})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Area != AreaSharding {
		t.Fatalf("areas filter produced %+v", files)
	}
	if len(files[0].Scenarios) == 0 {
		t.Fatal("filtered area ran no scenarios")
	}
	if _, err := Run(Options{Tier: TierShort, Quick: true, Areas: []string{"shardnig"}}); err == nil {
		t.Error("unknown area accepted")
	}
}

// TestPerScenarioNoiseBudget pins the budget override: a scenario
// declaring its own NoisePct is judged against it instead of the
// run-wide tolerance, and the applied budget is persisted with the
// result either way.
func TestPerScenarioNoiseBudget(t *testing.T) {
	// Walls are reported by the scenario itself, so the spread is
	// scripted: warmup, then 100ms and 140ms — a 40% spread.
	mkRun := func() func(Scale, *metrics.Hub) (Measure, error) {
		walls := []time.Duration{time.Millisecond, 100 * time.Millisecond, 140 * time.Millisecond}
		i := 0
		return func(Scale, *metrics.Hub) (Measure, error) {
			w := walls[i%len(walls)]
			i++
			return Measure{Wall: w, Sim: w, Records: 1}, nil
		}
	}
	opts := Options{NoisePct: DefaultNoisePct}
	scale := Scale{Tier: TierShort, Quick: true} // 2 reps, 1 warmup

	flat, err := runScenario(Scenario{Name: "flat", Area: "x", Run: mkRun()}, scale, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Noisy || flat.NoiseBudgetPct != DefaultNoisePct {
		t.Errorf("flat budget: noisy=%v budget=%v, want noisy under the default %v",
			flat.Noisy, flat.NoiseBudgetPct, DefaultNoisePct)
	}

	own, err := runScenario(Scenario{Name: "own", Area: "x", NoisePct: 50, Run: mkRun()}, scale, opts)
	if err != nil {
		t.Fatal(err)
	}
	if own.Noisy || own.NoiseBudgetPct != 50 {
		t.Errorf("scenario budget: noisy=%v budget=%v, want quiet under 50", own.Noisy, own.NoiseBudgetPct)
	}
	if flat.SpreadPct != own.SpreadPct {
		t.Errorf("spread differs between runs: %v vs %v", flat.SpreadPct, own.SpreadPct)
	}
}

// TestMatrixNoiseBudgets pins which cells carry elevated budgets: the
// sub-millisecond columnar chains and the queue-timing-bound service
// cells, and nothing else.
func TestMatrixNoiseBudgets(t *testing.T) {
	want := map[string]float64{
		"serve-tenants1": 40, "serve-tenants4": 40,
		"colchain-row": 60, "colchain-batch": 60,
	}
	for _, sc := range Scenarios() {
		if got := want[sc.Name]; sc.NoisePct != got {
			t.Errorf("%s: noise budget %v, want %v", sc.Name, sc.NoisePct, got)
		}
	}
}
