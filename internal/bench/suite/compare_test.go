package suite

import (
	"bytes"
	"strings"
	"testing"
)

// benchFile builds a one-area File from (name, wallNS, simNS) triples.
func benchFile(area string, scenarios ...Result) *File {
	return &File{Schema: SchemaVersion, Area: area, Tier: TierShort, Scenarios: scenarios}
}

func res(name string, wallNS int64) Result {
	return Result{Name: name, Reps: 3, Warmup: 1, WallNS: wallNS, SimNS: wallNS * 2, RepWallNS: []int64{wallNS}}
}

func TestCompareTable(t *testing.T) {
	base := int64(100_000_000) // 100ms: far above the noise floor
	cases := []struct {
		name       string
		old, new   Result
		opts       CompareOptions
		wantStatus string
		wantGate   bool // should count as a regression
	}{
		{
			name: "unchanged is ok",
			old:  res("s", base), new: res("s", base),
			wantStatus: StatusOK,
		},
		{
			name: "just under the threshold is ok",
			old:  res("s", base), new: res("s", base+base/10), // exactly +10%
			wantStatus: StatusOK,
		},
		{
			name: "just past the threshold regresses",
			old:  res("s", base), new: res("s", base+base/10+base/100), // +11%
			wantStatus: StatusRegressed, wantGate: true,
		},
		{
			name: "improvement past the threshold is improved",
			old:  res("s", base), new: res("s", base/2),
			wantStatus: StatusImproved,
		},
		{
			name: "small improvement is ok",
			old:  res("s", base), new: res("s", base-base/20), // -5%
			wantStatus: StatusOK,
		},
		{
			name: "custom threshold tightens the gate",
			old:  res("s", base), new: res("s", base+base/20), // +5%
			opts: CompareOptions{ThresholdPct: 2},
			wantStatus: StatusRegressed, wantGate: true,
		},
		{
			name: "zero baseline never gates",
			old:  res("s", 0), new: res("s", base),
			wantStatus: StatusZeroBaseline,
		},
		{
			name: "near-zero baseline never gates",
			old:  res("s", DefaultFloorNS-1), new: res("s", base),
			wantStatus: StatusZeroBaseline,
		},
		{
			name: "sim metric gates on sim",
			old:  res("s", base), new: res("s", base), // walls equal…
			opts: CompareOptions{Metric: "sim"},
			wantStatus: StatusOK,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Compare(benchFile(AreaCore, tc.old), benchFile(AreaCore, tc.new), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Deltas) != 1 {
				t.Fatalf("got %d deltas, want 1", len(c.Deltas))
			}
			d := c.Deltas[0]
			if d.Status != tc.wantStatus {
				t.Errorf("status = %q, want %q (delta %+v)", d.Status, tc.wantStatus, d)
			}
			gated := c.Regressions() > 0
			if gated != tc.wantGate {
				t.Errorf("Regressions() > 0 = %v, want %v", gated, tc.wantGate)
			}
		})
	}
}

// resFull builds a Result with allocation and throughput baselines
// above their floors, so the sub-delta gates engage.
func resFull(name string, wallNS, allocs int64, rps float64) Result {
	r := res(name, wallNS)
	r.AllocsPerOp = allocs
	r.RecordsPerSec = rps
	return r
}

func TestCompareGatesAllocs(t *testing.T) {
	base := int64(100_000_000)
	cases := []struct {
		name       string
		oldAllocs  int64
		newAllocs  int64
		opts       CompareOptions
		wantStatus string
		wantGate   bool
	}{
		{name: "flat allocs ok", oldAllocs: 50_000, newAllocs: 50_000, wantStatus: StatusOK},
		{name: "allocs growth past threshold regresses", oldAllocs: 50_000, newAllocs: 60_000, wantStatus: StatusRegressed, wantGate: true},
		{name: "allocs drop past threshold improves", oldAllocs: 50_000, newAllocs: 40_000, wantStatus: StatusImproved},
		{name: "tiny alloc baseline never gates", oldAllocs: DefaultAllocsFloor - 1, newAllocs: 1_000_000, wantStatus: StatusZeroBaseline},
		{
			name: "negative threshold disables alloc gating",
			oldAllocs: 50_000, newAllocs: 500_000,
			opts:       CompareOptions{AllocsThresholdPct: -1},
			wantStatus: "",
		},
		{
			name: "custom alloc threshold tightens the gate",
			oldAllocs: 50_000, newAllocs: 52_000, // +4%
			opts:       CompareOptions{AllocsThresholdPct: 2},
			wantStatus: StatusRegressed, wantGate: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := resFull("s", base, tc.oldAllocs, 0)
			new := resFull("s", base, tc.newAllocs, 0)
			c, err := Compare(benchFile(AreaCore, old), benchFile(AreaCore, new), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			d := c.Deltas[0]
			if d.AllocsStatus != tc.wantStatus {
				t.Errorf("allocs status = %q, want %q (delta %+v)", d.AllocsStatus, tc.wantStatus, d)
			}
			if gated := c.Regressions() > 0; gated != tc.wantGate {
				t.Errorf("Regressions() > 0 = %v, want %v", gated, tc.wantGate)
			}
			if d.Status != StatusOK {
				t.Errorf("wall status = %q, want ok (sub-gate must not disturb the time gate)", d.Status)
			}
		})
	}
}

func TestCompareGatesRecordsPerSec(t *testing.T) {
	base := int64(100_000_000)
	cases := []struct {
		name       string
		oldRPS     float64
		newRPS     float64
		opts       CompareOptions
		wantStatus string
		wantGate   bool
	}{
		{name: "flat throughput ok", oldRPS: 1000, newRPS: 1000, wantStatus: StatusOK},
		{name: "throughput drop past threshold regresses", oldRPS: 1000, newRPS: 800, wantStatus: StatusRegressed, wantGate: true},
		{name: "throughput gain past threshold improves", oldRPS: 1000, newRPS: 1200, wantStatus: StatusImproved},
		{name: "zero throughput baseline never gates", oldRPS: 0, newRPS: 1000, wantStatus: StatusZeroBaseline},
		{
			name: "negative threshold disables rps gating",
			oldRPS: 1000, newRPS: 10,
			opts:       CompareOptions{RPSThresholdPct: -1},
			wantStatus: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := resFull("s", base, 0, tc.oldRPS)
			new := resFull("s", base, 0, tc.newRPS)
			c, err := Compare(benchFile(AreaCore, old), benchFile(AreaCore, new), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			d := c.Deltas[0]
			if d.RPSStatus != tc.wantStatus {
				t.Errorf("rps status = %q, want %q (delta %+v)", d.RPSStatus, tc.wantStatus, d)
			}
			if gated := c.Regressions() > 0; gated != tc.wantGate {
				t.Errorf("Regressions() > 0 = %v, want %v", gated, tc.wantGate)
			}
		})
	}
}

// TestCompareSubDeltaTable checks the rendered table carries the
// sub-delta columns and flags which metric tripped the gate.
func TestCompareSubDeltaTable(t *testing.T) {
	base := int64(100_000_000)
	old := resFull("s", base, 50_000, 1000)
	new := resFull("s", base, 70_000, 500)
	c, err := Compare(benchFile(AreaCore, old), benchFile(AreaCore, new), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"+40.0%", "-50.0%", "ok+allocs+rec/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if c.Regressions() != 1 {
		t.Errorf("one scenario tripping two sub-gates must count once, got %d", c.Regressions())
	}
}

func TestCompareSimMetricRegression(t *testing.T) {
	// Wall improves, sim regresses: the chosen metric decides.
	old := Result{Name: "s", WallNS: 100_000_000, SimNS: 100_000_000}
	new := Result{Name: "s", WallNS: 50_000_000, SimNS: 200_000_000}
	c, err := Compare(benchFile(AreaCore, old), benchFile(AreaCore, new), CompareOptions{Metric: "sim"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Deltas[0].Status; got != StatusRegressed {
		t.Errorf("sim-metric status = %q, want regressed", got)
	}
	c, err = Compare(benchFile(AreaCore, old), benchFile(AreaCore, new), CompareOptions{Metric: "wall"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Deltas[0].Status; got != StatusImproved {
		t.Errorf("wall-metric status = %q, want improved", got)
	}
}

func TestCompareMissingScenarios(t *testing.T) {
	old := benchFile(AreaCore, res("kept", 100_000_000), res("dropped", 100_000_000))
	new := benchFile(AreaCore, res("kept", 100_000_000), res("added", 100_000_000))
	c, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Delta{}
	for _, d := range c.Deltas {
		byName[d.Name] = d
	}
	if byName["kept"].Status != StatusOK {
		t.Errorf("kept = %q, want ok", byName["kept"].Status)
	}
	if byName["added"].Status != StatusMissingOld {
		t.Errorf("added = %q, want missing-old", byName["added"].Status)
	}
	if byName["dropped"].Status != StatusMissingNew {
		t.Errorf("dropped = %q, want missing-new", byName["dropped"].Status)
	}
	if c.Regressions() != 0 {
		t.Errorf("missing scenarios counted as regressions: %d", c.Regressions())
	}
}

func TestCompareRejectsMismatches(t *testing.T) {
	if _, err := Compare(benchFile(AreaCore), benchFile(AreaSharding), CompareOptions{}); err == nil {
		t.Error("area mismatch accepted")
	}
	oldV := benchFile(AreaCore)
	oldV.Schema = SchemaVersion + 1
	if _, err := Compare(oldV, benchFile(AreaCore), CompareOptions{}); err == nil {
		t.Error("schema version mismatch accepted")
	}
	if _, err := Compare(benchFile(AreaCore), benchFile(AreaCore), CompareOptions{Metric: "bogus"}); err == nil {
		t.Error("bogus metric accepted")
	}
	if _, err := Compare(benchFile(AreaCore), benchFile(AreaCore), CompareOptions{ThresholdPct: -5}); err == nil {
		t.Error("negative threshold accepted")
	}
	oldT := benchFile(AreaCore)
	oldT.Tier = TierFull
	newT := benchFile(AreaCore)
	newT.Tier = TierShort
	if _, err := Compare(oldT, newT, CompareOptions{}); err == nil {
		t.Error("tier mismatch accepted")
	}
	oldQ := benchFile(AreaCore)
	newQ := benchFile(AreaCore)
	newQ.Quick = true
	if _, err := Compare(oldQ, newQ, CompareOptions{}); err == nil {
		t.Error("quick mismatch accepted")
	}
}

func TestCompareSets(t *testing.T) {
	old := []*File{benchFile(AreaCore, res("s", 100_000_000)), benchFile(AreaParallel, res("p", 100_000_000))}
	new := []*File{benchFile(AreaCore, res("s", 150_000_000)), benchFile(AreaParallel, res("p", 100_000_000))}
	cs, err := CompareSets(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d comparisons, want 2", len(cs))
	}
	if Regressions(cs) != 1 {
		t.Errorf("Regressions = %d, want 1 (core regressed 50%%)", Regressions(cs))
	}

	// A vanished area must error, in both directions.
	if _, err := CompareSets(old, new[:1], CompareOptions{}); err == nil {
		t.Error("area missing from new set accepted")
	}
	if _, err := CompareSets(old[:1], new, CompareOptions{}); err == nil {
		t.Error("area missing from old set accepted")
	}
}

func TestCompareNoisyPropagates(t *testing.T) {
	old := res("s", 100_000_000)
	old.Noisy = true
	c, err := Compare(benchFile(AreaCore, old), benchFile(AreaCore, res("s", 100_000_000)), CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Deltas[0].Noisy {
		t.Error("noisy flag on the old side did not propagate to the delta")
	}
	var buf bytes.Buffer
	c.WriteTable(&buf)
	if !strings.Contains(buf.String(), "(noisy)") {
		t.Errorf("table does not mark noisy deltas:\n%s", buf.String())
	}
}
