// Package suite is the benchmark-suite harness behind `rheem-bench
// -suite`: a fixed scenario matrix (single-platform cores, the §1
// multi-platform pipeline, the E8 fan-out diamond, the E11 sharded
// wide chain) executed with warmup plus N repetitions, persisted as
// one machine-readable BENCH_<area>.json per area, and a compare mode
// that diffs two result sets and flags regressions past a threshold.
//
// The design follows elastic-package's system benchmarking loop
// (scenario → run → collect metrics → summary report → compare against
// a previous run; SNIPPETS.md) and closes ROADMAP item 5: every PR's
// "faster" claim becomes a checked-in artifact `-compare` can gate on
// instead of prose in EXPERIMENTS.md.
//
// Noise handling: the headline wall/sim numbers are the minimum over
// repetitions (the least-disturbed run — the same best-of policy E10
// and E11 use), every repetition is retained in rep_wall_ns for
// post-hoc inspection, and a scenario whose rep-to-rep spread exceeds
// the noise tolerance is flagged Noisy so a compare reader knows the
// number is soft.
package suite

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion is the BENCH_*.json format version. Decode rejects
// files with a different version so `-compare` never silently diffs
// incompatible measurements.
const SchemaVersion = 1

// Tiers.
const (
	TierShort = "short" // CI-sized: seconds per scenario
	TierFull  = "full"  // the real sweep sizes
)

// Env is the measurement environment persisted with every result set,
// so a compare across machines or toolchains is visibly apples-to-
// oranges.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
}

// CaptureEnv snapshots the current process environment. The commit is
// caller-supplied (the cmd layer asks git; tests pass "").
func CaptureEnv(commit string) Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     commit,
	}
}

// Result is one scenario's persisted measurement.
type Result struct {
	Name   string `json:"name"`
	Reps   int    `json:"reps"`
	Warmup int    `json:"warmup"`

	// WallNS and SimNS are the minimum over repetitions (noise-aware:
	// the least-disturbed rep). RepWallNS retains every repetition.
	WallNS    int64   `json:"wall_ns"`
	SimNS     int64   `json:"sim_ns"`
	RepWallNS []int64 `json:"rep_wall_ns"`

	// Records is the per-repetition record traffic (records produced to
	// output channels — invariant across reps for a deterministic
	// scenario); RecordsPerSec derives from the min-wall rep.
	Records       int64   `json:"records"`
	RecordsPerSec float64 `json:"records_per_sec"`

	// AllocsPerOp is the heap-allocation count per repetition, averaged
	// over the measured reps (warmup excluded).
	AllocsPerOp int64 `json:"allocs_per_op"`

	// P99LatencyNS is the 99th-percentile task-atom latency across the
	// measured reps, extracted from the telemetry hub's
	// rheem_atom_latency_seconds histogram; 0 if no atoms were observed.
	P99LatencyNS int64 `json:"p99_latency_ns"`

	// SpreadPct is (max-min)/min over RepWallNS, in percent; Noisy
	// marks scenarios whose spread exceeded the noise budget the run
	// applied to this scenario — NoiseBudgetPct, which is the
	// scenario's own budget when it declares one and the run-wide
	// tolerance otherwise. (Absent in pre-budget result files; decodes
	// as 0.)
	SpreadPct      float64 `json:"spread_pct"`
	Noisy          bool    `json:"noisy"`
	NoiseBudgetPct float64 `json:"noise_budget_pct,omitempty"`
}

// File is one BENCH_<area>.json result set.
type File struct {
	Schema int    `json:"schema"`
	Area   string `json:"area"`
	Tier   string `json:"tier"`
	// Quick marks a test-shrunk run; quick and non-quick runs execute
	// different workload sizes, so Compare refuses to mix them.
	Quick     bool     `json:"quick,omitempty"`
	Env       Env      `json:"env"`
	Scenarios []Result `json:"scenarios"`
}

// Filename is the canonical on-disk name for an area's result set.
func Filename(area string) string { return "BENCH_" + area + ".json" }

// Encode renders the file in its canonical form: two-space-indented
// JSON with a trailing newline. Encoding is deterministic for a given
// value, so encode→decode→encode is a fixpoint (pinned by tests).
func (f *File) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses a result set and validates its schema version,
// rejecting mismatches with an error that names both versions.
func Decode(b []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("suite: invalid BENCH json: %w", err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("suite: schema version mismatch: file has %d, this binary speaks %d", f.Schema, SchemaVersion)
	}
	if f.Area == "" {
		return nil, fmt.Errorf("suite: BENCH file has no area")
	}
	return &f, nil
}

// Load reads and decodes one BENCH_*.json file.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// LoadSet loads a result set from path: a single BENCH_*.json file, or
// a directory holding one or more of them.
func LoadSet(path string) ([]*File, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		f, err := Load(path)
		if err != nil {
			return nil, err
		}
		return []*File{f}, nil
	}
	matches, err := filepath.Glob(filepath.Join(path, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	if len(matches) == 0 {
		return nil, fmt.Errorf("suite: no BENCH_*.json files under %s", path)
	}
	out := make([]*File, 0, len(matches))
	for _, m := range matches {
		f, err := Load(m)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// WriteFiles encodes each result set into dir as BENCH_<area>.json.
func WriteFiles(dir string, files []*File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range files {
		b, err := f.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, Filename(f.Area)), b, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Canonical returns a deep copy with every measured value zeroed —
// what remains is the run's *shape*: schema, area, tier, environment,
// scenario names, and rep/warmup counts. Two runs of the same suite on
// the same host must produce byte-identical canonical encodings (the
// determinism contract `-suite` is tested against).
func (f *File) Canonical() *File {
	out := *f
	out.Scenarios = make([]Result, len(f.Scenarios))
	for i, r := range f.Scenarios {
		r.WallNS, r.SimNS = 0, 0
		r.RepWallNS = make([]int64, len(r.RepWallNS)) // length is shape; values are measurement
		r.Records, r.RecordsPerSec = 0, 0
		r.AllocsPerOp, r.P99LatencyNS = 0, 0
		r.SpreadPct, r.Noisy = 0, false
		out.Scenarios[i] = r
	}
	return &out
}

// Options steers a suite run.
type Options struct {
	// Tier selects workload sizes: TierShort (default) or TierFull.
	Tier string
	// Quick shrinks the short tier further for tests (smaller inputs,
	// fewer reps) without changing the scenario set or schema.
	Quick bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
	// Commit is recorded in the environment metadata (may be empty).
	Commit string
	// NoisePct flags scenarios whose rep-to-rep wall spread exceeds
	// this percentage; 0 means DefaultNoisePct. A scenario declaring
	// its own Scenario.NoisePct budget overrides this run-wide value.
	NoisePct float64
	// Areas, when non-empty, restricts the run to these areas. A name
	// matching no scenario is an error — a typo must not silently
	// produce an empty result set.
	Areas []string
}

// DefaultNoisePct is the rep-to-rep spread above which a scenario is
// flagged Noisy.
const DefaultNoisePct = 25.0

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Run executes the full scenario matrix at the requested tier and
// groups the results into one File per area, in matrix order.
func Run(opts Options) ([]*File, error) {
	if opts.Tier == "" {
		opts.Tier = TierShort
	}
	if opts.Tier != TierShort && opts.Tier != TierFull {
		return nil, fmt.Errorf("suite: unknown tier %q (want %q or %q)", opts.Tier, TierShort, TierFull)
	}
	if opts.NoisePct == 0 {
		opts.NoisePct = DefaultNoisePct
	}
	env := CaptureEnv(opts.Commit)
	scale := Scale{Tier: opts.Tier, Quick: opts.Quick}

	known := map[string]bool{}
	for _, sc := range Scenarios() {
		known[sc.Area] = true
	}
	want := map[string]bool{}
	for _, a := range opts.Areas {
		if !known[a] {
			return nil, fmt.Errorf("suite: unknown area %q", a)
		}
		want[a] = true
	}

	var areas []string
	byArea := map[string]*File{}
	for _, sc := range Scenarios() {
		if len(want) > 0 && !want[sc.Area] {
			continue
		}
		opts.logf("suite: %s/%s (%s tier)", sc.Area, sc.Name, opts.Tier)
		res, err := runScenario(sc, scale, opts)
		if err != nil {
			return nil, fmt.Errorf("suite: %s: %w", sc.Name, err)
		}
		f := byArea[sc.Area]
		if f == nil {
			f = &File{Schema: SchemaVersion, Area: sc.Area, Tier: opts.Tier, Quick: opts.Quick, Env: env}
			byArea[sc.Area] = f
			areas = append(areas, sc.Area)
		}
		f.Scenarios = append(f.Scenarios, res)
	}
	out := make([]*File, 0, len(areas))
	for _, a := range areas {
		out = append(out, byArea[a])
	}
	return out, nil
}

// runScenario measures one scenario: warmup repetitions on a throwaway
// telemetry hub, then the measured reps on a fresh hub so the p99
// histogram covers exactly the measured work.
func runScenario(sc Scenario, scale Scale, opts Options) (Result, error) {
	reps, warmup := scale.Reps()
	for i := 0; i < warmup; i++ {
		if _, err := sc.Run(scale, newWarmupHub()); err != nil {
			return Result{}, fmt.Errorf("warmup %d: %w", i, err)
		}
	}

	hub := newMeasureHub()
	res := Result{Name: sc.Name, Reps: reps, Warmup: warmup}
	var mallocs0 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&mallocs0)
	minWall, minSim := time.Duration(0), time.Duration(0)
	for i := 0; i < reps; i++ {
		m, err := sc.Run(scale, hub)
		if err != nil {
			return Result{}, fmt.Errorf("rep %d: %w", i, err)
		}
		res.RepWallNS = append(res.RepWallNS, m.Wall.Nanoseconds())
		if minWall == 0 || m.Wall < minWall {
			minWall = m.Wall
		}
		if minSim == 0 || m.Sim < minSim {
			minSim = m.Sim
		}
		res.Records = m.Records
	}
	var mallocs1 runtime.MemStats
	runtime.ReadMemStats(&mallocs1)

	res.WallNS = minWall.Nanoseconds()
	res.SimNS = minSim.Nanoseconds()
	if minWall > 0 {
		res.RecordsPerSec = float64(res.Records) / minWall.Seconds()
	}
	res.AllocsPerOp = int64(mallocs1.Mallocs-mallocs0.Mallocs) / int64(reps)
	if p99, ok := hub.Registry().Snapshot().Quantile("rheem_atom_latency_seconds", 0.99, nil); ok {
		res.P99LatencyNS = int64(p99 * 1e9)
	}
	res.SpreadPct = spreadPct(res.RepWallNS)
	res.NoiseBudgetPct = opts.NoisePct
	if sc.NoisePct > 0 {
		res.NoiseBudgetPct = sc.NoisePct
	}
	res.Noisy = res.SpreadPct > res.NoiseBudgetPct
	return res, nil
}

// spreadPct is (max-min)/min over the rep walls, in percent.
func spreadPct(reps []int64) float64 {
	if len(reps) < 2 {
		return 0
	}
	min, max := reps[0], reps[0]
	for _, r := range reps[1:] {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if min <= 0 {
		return 0
	}
	return 100 * float64(max-min) / float64(min)
}
