package suite

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenFile is the fixed File value behind testdata/golden.json. Any
// schema change shows up as a golden diff, forcing a conscious
// SchemaVersion bump.
func goldenFile() *File {
	return &File{
		Schema: SchemaVersion,
		Area:   AreaCore,
		Tier:   TierShort,
		Quick:  true,
		Env: Env{
			GoVersion:  "go1.24.0",
			GOOS:       "linux",
			GOARCH:     "amd64",
			GOMAXPROCS: 8,
			Commit:     "abc1234",
		},
		Scenarios: []Result{
			{
				Name: "svm-java", Reps: 3, Warmup: 1,
				WallNS: 1_500_000, SimNS: 2_000_000,
				RepWallNS: []int64{1_600_000, 1_500_000, 1_550_000},
				Records:   5_000, RecordsPerSec: 3_333_333.3333333335,
				AllocsPerOp: 9_000, P99LatencyNS: 480_000,
				SpreadPct: 6.666666666666667, Noisy: false,
				NoiseBudgetPct: DefaultNoisePct,
			},
			{
				Name: "sensor-multiplatform", Reps: 3, Warmup: 1,
				WallNS: 600_000, SimNS: 760_000,
				RepWallNS: []int64{600_000, 1_900_000, 700_000},
				Records:   32_000, RecordsPerSec: 53_333_333.33333333,
				AllocsPerOp: 6_800, P99LatencyNS: 2_400_000,
				SpreadPct: 216.66666666666666, Noisy: true,
				NoiseBudgetPct: DefaultNoisePct,
			},
		},
	}
}

func TestGoldenEncoding(t *testing.T) {
	got, err := goldenFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skip("golden regenerated")
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("golden mismatch — the BENCH schema changed; bump SchemaVersion and regenerate testdata/golden.json.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestEncodeDecodeEncodeFixpoint(t *testing.T) {
	first, err := goldenFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := decoded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("encode→decode→encode is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

func TestDecodeRejectsSchemaMismatch(t *testing.T) {
	f := goldenFile()
	f.Schema = SchemaVersion + 1
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Decode(b)
	if err == nil {
		t.Fatal("Decode accepted a future schema version")
	}
	if !strings.Contains(err.Error(), "schema version mismatch") {
		t.Errorf("mismatch error does not name the problem: %v", err)
	}

	if _, err := Decode([]byte("{not json")); err == nil {
		t.Error("Decode accepted invalid JSON")
	}
	if _, err := Decode([]byte(`{"schema":1}`)); err == nil {
		t.Error("Decode accepted a file with no area")
	}
}

func TestLoadSetRejectsMismatchedVersions(t *testing.T) {
	dir := t.TempDir()
	f := goldenFile()
	f.Schema = SchemaVersion + 1
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Filename(f.Area))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSet(dir); err == nil {
		t.Error("LoadSet accepted a directory holding a mismatched-version file")
	}
	if _, err := LoadSet(path); err == nil {
		t.Error("LoadSet accepted a mismatched-version file")
	}
	if _, err := LoadSet(t.TempDir()); err == nil {
		t.Error("LoadSet accepted a directory with no BENCH files")
	}
}

func TestCanonicalZeroesOnlyMeasurements(t *testing.T) {
	f := goldenFile()
	c := f.Canonical()
	if len(c.Scenarios) != len(f.Scenarios) {
		t.Fatalf("Canonical changed the scenario count: %d vs %d", len(c.Scenarios), len(f.Scenarios))
	}
	for i, s := range c.Scenarios {
		orig := f.Scenarios[i]
		if s.Name != orig.Name || s.Reps != orig.Reps || s.Warmup != orig.Warmup {
			t.Errorf("Canonical changed shape fields: %+v vs %+v", s, orig)
		}
		if len(s.RepWallNS) != len(orig.RepWallNS) {
			t.Errorf("Canonical changed rep count for %s", s.Name)
		}
		if s.WallNS != 0 || s.SimNS != 0 || s.RecordsPerSec != 0 || s.Noisy {
			t.Errorf("Canonical left measured values for %s: %+v", s.Name, s)
		}
	}
	// The original must be untouched (deep copy).
	if f.Scenarios[0].WallNS == 0 {
		t.Error("Canonical mutated its receiver")
	}
}
