package suite

import (
	"fmt"
	"time"

	"rheem"
	"rheem/internal/apps/ml"
	"rheem/internal/bench"
	"rheem/internal/core/engine"
	"rheem/internal/core/metrics"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

// Areas. One BENCH_<area>.json is emitted per area.
const (
	AreaCore     = "core"     // single-platform cores + multi-platform choice (E1/E5)
	AreaParallel = "parallel" // concurrent DAG scheduling (E8)
	AreaSharding = "sharding" // intra-atom shard fan-out (E11)
	AreaColumnar = "columnar" // columnar batch kernels vs row path (E13)
	// AreaService ("service", E12) is declared in service.go.
)

// Scale is the knob set a scenario sizes itself from: the tier picks
// real workload sizes, Quick shrinks the short tier further for tests.
// Sizes depend only on (Tier, Quick) — never on the host — so two runs
// at the same scale execute the identical workload.
type Scale struct {
	Tier  string
	Quick bool
}

// Reps returns the measured-repetition and warmup counts for the
// scale.
func (s Scale) Reps() (reps, warmup int) {
	switch {
	case s.Quick:
		return 2, 1
	case s.Tier == TierFull:
		return 5, 2
	default:
		return 3, 1
	}
}

// pick3 selects by scale: quick, short, full.
func (s Scale) pick3(quick, short, full int) int {
	switch {
	case s.Quick:
		return quick
	case s.Tier == TierFull:
		return full
	default:
		return short
	}
}

// Measure is what one scenario repetition reports.
type Measure struct {
	Wall    time.Duration
	Sim     time.Duration
	Records int64 // records produced to output channels
}

// Scenario is one cell of the benchmark matrix.
type Scenario struct {
	Name string
	Area string
	// NoisePct is this scenario's rep-to-rep spread budget in percent;
	// 0 inherits the run-wide Options.NoisePct. Scenarios whose wall
	// time is dominated by scheduler wakeups or host contention (the
	// sub-millisecond columnar chains, the multi-tenant service load)
	// carry elevated budgets so shared CI runners don't flag them on
	// every run.
	NoisePct float64
	// Run executes one repetition at the given scale, feeding its
	// telemetry (atom-latency spans for the p99 column) into hub.
	Run func(s Scale, hub *metrics.Hub) (Measure, error)
}

// Scenarios returns the fixed scenario matrix in persisted order. The
// set is independent of tier and host — the determinism contract — and
// covers single-platform cores (E1), multi-platform optimizer choice
// (E5), parallel DAG scheduling (E8), intra-atom sharding (E11), and
// multi-tenant service load (E12).
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "svm-java", Area: AreaCore, Run: svmScenario(javaengine.ID)},
		{Name: "svm-spark", Area: AreaCore, Run: svmScenario(sparksim.ID)},
		{Name: "sensor-multiplatform", Area: AreaCore, Run: sensorScenario},
		{Name: "fanout-seq", Area: AreaParallel, Run: fanoutScenario(1)},
		{Name: "fanout-par4", Area: AreaParallel, Run: fanoutScenario(4)},
		{Name: "wide-unsharded", Area: AreaSharding, Run: wideScenario(1)},
		{Name: "wide-shard4", Area: AreaSharding, Run: wideScenario(4)},
		// The service cells run a whole admission/dispatch/drain cycle, so
		// their walls absorb queue-timing jitter beyond the flat budget.
		{Name: "serve-tenants1", Area: AreaService, NoisePct: 40, Run: serviceScenario(1)},
		{Name: "serve-tenants4", Area: AreaService, NoisePct: 40, Run: serviceScenario(4)},
		// The columnar chains finish in microseconds at the short tier;
		// one scheduler wakeup is tens of percent of a rep on a shared
		// runner.
		{Name: "colchain-row", Area: AreaColumnar, NoisePct: 60, Run: columnarScenario(false)},
		{Name: "colchain-batch", Area: AreaColumnar, NoisePct: 60, Run: columnarScenario(true)},
	}
}

// newWarmupHub and newMeasureHub both return a private hub; the split
// exists so runScenario reads as what it does — warmup telemetry is
// discarded, measured telemetry feeds the persisted p99.
func newWarmupHub() *metrics.Hub  { return metrics.NewHub() }
func newMeasureHub() *metrics.Hub { return metrics.NewHub() }

// newCtx builds a fresh context per repetition bound to the hub, so no
// platform state (breakers, stage accounting) leaks across reps while
// every span still lands in the scenario's histograms.
func newCtx(hub *metrics.Hub) (*rheem.Context, error) {
	return rheem.NewContext(rheem.Config{}, rheem.WithTelemetryHub(hub))
}

// svmScenario is the E1 core: SVM training pinned to one platform.
func svmScenario(platform engine.PlatformID) func(Scale, *metrics.Hub) (Measure, error) {
	return func(s Scale, hub *metrics.Hub) (Measure, error) {
		n := s.pick3(500, 2_000, 50_000)
		iters := s.pick3(3, 10, 100)
		const dim = 10
		pts := datagen.Points(datagen.PointsConfig{N: n, Dim: dim, Noise: 0.05, Seed: uint64(n)})
		ctx, err := newCtx(hub)
		if err != nil {
			return Measure{}, err
		}
		defer ctx.Close()
		tpl := ml.SVM(pts, ml.GradientConfig{Iterations: iters, Dim: dim})
		_, rep, err := tpl.Run(ctx, rheem.OnPlatform(platform))
		if err != nil {
			return Measure{}, err
		}
		return Measure{Wall: rep.Metrics.Wall, Sim: rep.Metrics.Sim, Records: rep.Metrics.OutRecords}, nil
	}
}

// sensorScenario is the E5 core: the §1 sensor pipeline with free
// optimizer choice — the multi-platform case.
func sensorScenario(s Scale, hub *metrics.Hub) (Measure, error) {
	n := s.pick3(2_000, 10_000, 200_000)
	readings := datagen.Sensors(datagen.SensorConfig{N: n, Wells: 32, Seed: 7})
	ctx, err := newCtx(hub)
	if err != nil {
		return Measure{}, err
	}
	defer ctx.Close()
	wells, rep, err := bench.SensorPipeline(ctx, readings)
	if err != nil {
		return Measure{}, err
	}
	if len(wells) != 32 {
		return Measure{}, fmt.Errorf("sensor pipeline produced %d wells, want 32", len(wells))
	}
	return Measure{Wall: rep.Metrics.Wall, Sim: rep.Metrics.Sim, Records: rep.Metrics.OutRecords}, nil
}

// fanoutScenario is the E8 core: the wide multi-platform diamond at a
// fixed scheduler parallelism.
func fanoutScenario(par int) func(Scale, *metrics.Hub) (Measure, error) {
	return func(s Scale, hub *metrics.Hub) (Measure, error) {
		branches := 8
		recs := s.pick3(5, 20, 100)
		delay := time.Duration(s.pick3(200, 500, 2000)) * time.Microsecond
		ctx, err := newCtx(hub)
		if err != nil {
			return Measure{}, err
		}
		defer ctx.Close()
		res, err := bench.RunFanOutTraced(ctx.Registry(), hub, branches, recs, delay, par)
		if err != nil {
			return Measure{}, err
		}
		return Measure{Wall: res.Metrics.Wall, Sim: res.Metrics.Sim, Records: res.Metrics.OutRecords}, nil
	}
}

// columnarScenario is the E13 core: the filter → project → aggregate
// hot-path chain with the vectorized batch path on or off. Both cells
// run the identical plan and platform assignment; the gap between them
// is the row-at-a-time tax the columnar format removes.
func columnarScenario(batch bool) func(Scale, *metrics.Hub) (Measure, error) {
	return func(s Scale, hub *metrics.Hub) (Measure, error) {
		n := s.pick3(5_000, 150_000, 1_000_000)
		recs := bench.ColumnarRecords(n)
		ctx, err := bench.NewColumnarContext(hub, batch)
		if err != nil {
			return Measure{}, err
		}
		defer ctx.Close()
		res, err := bench.RunColumnarTraced(ctx, hub, recs)
		if err != nil {
			return Measure{}, err
		}
		return Measure{Wall: res.Metrics.Wall, Sim: res.Metrics.Sim, Records: res.Metrics.OutRecords}, nil
	}
}

// wideScenario is the E11 core: the single wide Map+Filter atom at a
// fixed shard fan-out.
func wideScenario(shards int) func(Scale, *metrics.Hub) (Measure, error) {
	return func(s Scale, hub *metrics.Hub) (Measure, error) {
		recs := s.pick3(40, 150, 600)
		delay := time.Duration(s.pick3(50, 100, 150)) * time.Microsecond
		ctx, err := newCtx(hub)
		if err != nil {
			return Measure{}, err
		}
		defer ctx.Close()
		res, err := bench.RunWideTraced(ctx.Registry(), hub, recs, delay, shards)
		if err != nil {
			return Measure{}, err
		}
		if got, want := len(res.Records), bench.WideRecords(recs); got != want {
			return Measure{}, fmt.Errorf("wide chain produced %d records, want %d", got, want)
		}
		return Measure{Wall: res.Metrics.Wall, Sim: res.Metrics.Sim, Records: res.Metrics.OutRecords}, nil
	}
}
