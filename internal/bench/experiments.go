package bench

import (
	"fmt"
	"sort"
	"time"

	"rheem"
	"rheem/internal/apps/cleaning"
	"rheem/internal/apps/ml"
	"rheem/internal/core/engine"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func init() {
	register("fig2", fig2)
	register("fig3left", fig3left)
	register("fig3right", fig3right)
	register("iejoin", iejoin)
	register("multiplatform", multiplatform)
	register("optimizer", optimizerChoice)
}

// newCtx builds the experiment context with the calibrated cluster:
// 4 workers × 2 slots, 50 ms job overhead — the knobs behind the
// Figure 2 crossover (see EXPERIMENTS.md "Calibration"). When the
// config carries a telemetry hub (rheem-bench -metrics), the context
// joins it so one monitoring server sees every experiment.
func newCtx(cfg Config) (*rheem.Context, error) {
	if cfg.Hub != nil {
		return rheem.NewContext(rheem.Config{}, rheem.WithTelemetryHub(cfg.Hub))
	}
	return rheem.NewContext(rheem.Config{})
}

// pick selects the reported clock.
func pick(cfg Config, m engine.Metrics) time.Duration {
	if cfg.WallClock {
		return m.Wall
	}
	return m.Sim
}

// platformsUsed summarises which platforms an execution plan touched.
func platformsUsed(rep *rheem.Report) string {
	if rep == nil || rep.Plan == nil {
		return "?"
	}
	ids := map[string]bool{}
	for _, pl := range rep.Plan.Assignment {
		ids[string(pl)] = true
	}
	for _, body := range rep.Plan.LoopBodies {
		for _, pl := range body.Assignment {
			ids[string(pl)] = true
		}
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	s := ""
	for i, id := range out {
		if i > 0 {
			s += "+"
		}
		s += id
	}
	return s
}

// --- E1 / Figure 2: SVM on Spark and Java -------------------------------

func fig2(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{1_000, 10_000, 50_000, 100_000, 200_000, 500_000}
	iters := 100
	if cfg.Quick {
		sizes = []int{500, 2_000, 10_000}
		iters = 10
	}
	const dim = 10

	clock := "simulated"
	if cfg.WallClock {
		clock = "wall"
	}
	t1 := &Table{
		Title: fmt.Sprintf("Figure 2 — SVM (%d iterations, d=%d), Java vs Spark [%s time]", iters, dim, clock),
		Note:  "Paper shape: plain Java wins by ~an order of magnitude on small inputs; Spark pays off only for big inputs.",
		Columns: []string{"points", "java", "spark", "winner", "java/spark"},
	}
	run := func(pts []data.Record, iters int, platform engine.PlatformID) (time.Duration, error) {
		tpl := ml.SVM(pts, ml.GradientConfig{Iterations: iters, Dim: dim})
		_, rep, err := tpl.Run(ctx, rheem.OnPlatform(platform))
		if err != nil {
			return 0, err
		}
		return pick(cfg, rep.Metrics), nil
	}
	for _, n := range sizes {
		cfg.logf("fig2: n=%d", n)
		pts := datagen.Points(datagen.PointsConfig{N: n, Dim: dim, Noise: 0.05, Seed: uint64(n)})
		tj, err := run(pts, iters, javaengine.ID)
		if err != nil {
			return nil, err
		}
		ts, err := run(pts, iters, sparksim.ID)
		if err != nil {
			return nil, err
		}
		winner := "java"
		if ts < tj {
			winner = "spark"
		}
		t1.AddRow(Count(n), Dur(tj), Dur(ts), winner, Speedup(ts, tj))
	}

	// Second series: the gap grows with the number of iterations
	// (paper: "this performance gap gets bigger with the number of
	// iterations").
	nFixed := 50_000
	iterSweep := []int{10, 50, 100, 200}
	if cfg.Quick {
		nFixed = 2_000
		iterSweep = []int{2, 5, 10}
	}
	t2 := &Table{
		Title:   fmt.Sprintf("Figure 2 (inset) — iteration sweep at n=%s", Count(nFixed)),
		Columns: []string{"iterations", "java", "spark", "spark-java gap"},
	}
	pts := datagen.Points(datagen.PointsConfig{N: nFixed, Dim: dim, Noise: 0.05, Seed: 99})
	for _, it := range iterSweep {
		cfg.logf("fig2 inset: iters=%d", it)
		tj, err := run(pts, it, javaengine.ID)
		if err != nil {
			return nil, err
		}
		ts, err := run(pts, it, sparksim.ID)
		if err != nil {
			return nil, err
		}
		t2.AddRow(fmt.Sprint(it), Dur(tj), Dur(ts), Dur(ts-tj))
	}
	return []*Table{t1, t2}, nil
}

// --- E2 / Figure 3 left: monolithic Detect UDF vs operator pipeline -----

func zipCityFD() cleaning.FD {
	return cleaning.FD{RuleName: "zip->city", ID: datagen.TaxID,
		LHS: []int{datagen.TaxZip}, RHS: []int{datagen.TaxCity}}
}

func fig3left(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{10_000, 20_000, 50_000, 100_000}
	monoCap := 20_000
	if cfg.Quick {
		sizes = []int{2_000, 5_000}
		monoCap = 2_000
	}
	t := &Table{
		Title: "Figure 3 (left) — violation detection: single Detect UDF vs Scope/Block/Iterate/Detect pipeline [simulated time, spark]",
		Note:  "Paper shape: the operator decomposition enables blocking + fine-grained distributed execution; the monolithic UDF degrades quadratically.",
		Columns: []string{"rows", "single Detect UDF", "pipeline", "violations", "pipeline speedup"},
	}
	fd := zipCityFD()
	det, err := cleaning.NewDetector(ctx, fd)
	if err != nil {
		return nil, err
	}
	var lastMono time.Duration
	var lastMonoN int
	for _, n := range sizes {
		cfg.logf("fig3left: n=%d", n)
		recs := datagen.Tax(datagen.TaxConfig{N: n, Zips: n / 50, ErrorRate: 0.01, Seed: uint64(n)})
		vs, rep, err := det.Detect(recs, rheem.OnPlatform(sparksim.ID))
		if err != nil {
			return nil, err
		}
		pipe := pick(cfg, rep.Metrics)

		var monoCell string
		var mono time.Duration
		if n <= monoCap {
			_, mrep, err := det.DetectMonolithic(fd, recs, rheem.OnPlatform(sparksim.ID))
			if err != nil {
				return nil, err
			}
			mono = pick(cfg, mrep.Metrics)
			lastMono, lastMonoN = mono, n
			monoCell = Dur(mono)
		} else {
			mono = ExtrapolateQuadratic(lastMono, lastMonoN, n)
			monoCell = EstDur(mono)
		}
		t.AddRow(Count(n), monoCell, Dur(pipe), Count(len(vs)), Speedup(mono, pipe))
	}
	return []*Table{t}, nil
}

// --- E3 / Figure 3 right: BigDansing vs baselines on Spark --------------

func fig3right(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{10_000, 20_000, 50_000, 100_000}
	baseCap := 10_000
	if cfg.Quick {
		sizes = []int{2_000, 5_000}
		baseCap = 2_000
	}
	t := &Table{
		Title: "Figure 3 (right) — BigDansing vs baselines [simulated time]",
		Note:  "Baselines: SQL-style self-join on spark; NADEEF-style single-node pairwise. Paper stopped its baselines after 22 h; ours are extrapolated past the cap.",
		Columns: []string{"rows", "BigDansing (spark)", "self-join (spark)", "NADEEF-style (java)", "best-baseline/BigDansing"},
	}
	fd := zipCityFD()
	det, err := cleaning.NewDetector(ctx, fd)
	if err != nil {
		return nil, err
	}
	var lastSelf, lastNadeef time.Duration
	var lastN int
	for _, n := range sizes {
		cfg.logf("fig3right: n=%d", n)
		recs := datagen.Tax(datagen.TaxConfig{N: n, Zips: n / 50, ErrorRate: 0.01, Seed: uint64(n)})
		_, rep, err := det.Detect(recs, rheem.OnPlatform(sparksim.ID))
		if err != nil {
			return nil, err
		}
		bd := pick(cfg, rep.Metrics)

		var selfCell, nadeefCell string
		var selfT, nadeefT time.Duration
		if n <= baseCap {
			_, srep, err := det.DetectSelfJoin(fd, recs, rheem.OnPlatform(sparksim.ID))
			if err != nil {
				return nil, err
			}
			selfT = pick(cfg, srep.Metrics)
			_, nrep, err := det.DetectMonolithic(fd, recs, rheem.OnPlatform(javaengine.ID))
			if err != nil {
				return nil, err
			}
			nadeefT = pick(cfg, nrep.Metrics)
			lastSelf, lastNadeef, lastN = selfT, nadeefT, n
			selfCell, nadeefCell = Dur(selfT), Dur(nadeefT)
		} else {
			selfT = ExtrapolateQuadratic(lastSelf, lastN, n)
			nadeefT = ExtrapolateQuadratic(lastNadeef, lastN, n)
			selfCell, nadeefCell = EstDur(selfT), EstDur(nadeefT)
		}
		best := selfT
		if nadeefT < best {
			best = nadeefT
		}
		t.AddRow(Count(n), Dur(bd), selfCell, nadeefCell, Speedup(best, bd))
	}
	return []*Table{t}, nil
}

// --- E4: IEJoin extensibility -------------------------------------------

func salaryRateDC() cleaning.DenialConstraint {
	return cleaning.DenialConstraint{RuleName: "salary-rate", ID: datagen.TaxID,
		Preds: []cleaning.Pred{
			{LeftField: datagen.TaxSalary, Op: plan.Greater, RightField: datagen.TaxSalary},
			{LeftField: datagen.TaxRate, Op: plan.Less, RightField: datagen.TaxRate},
		},
		FixField: datagen.TaxRate,
	}
}

func iejoin(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{2_000, 5_000, 10_000, 20_000, 50_000}
	nlCap := 10_000
	if cfg.Quick {
		sizes = []int{500, 2_000}
		nlCap = 2_000
	}
	t := &Table{
		Title: "E4 — inequality rule detection: IEJoin physical operator vs nested loop [simulated time, spark]",
		Note:  "The paper's extensibility example (§5.1): IEJoin was added as a new physical operator to make inequality rules tractable.",
		Columns: []string{"rows", "IEJoin", "nested loop", "violations", "IEJoin speedup"},
	}
	dc := salaryRateDC()
	detIE, err := cleaning.NewDetector(ctx, dc)
	if err != nil {
		return nil, err
	}
	detNL, err := cleaning.NewDetector(ctx, cleaning.StripConditions(dc))
	if err != nil {
		return nil, err
	}
	var lastNL time.Duration
	var lastN int
	for _, n := range sizes {
		cfg.logf("iejoin: n=%d", n)
		recs := datagen.Tax(datagen.TaxConfig{N: n, Zips: 50, ErrorRate: 0.002, Seed: uint64(n)})
		vs, rep, err := detIE.Detect(recs, rheem.OnPlatform(sparksim.ID))
		if err != nil {
			return nil, err
		}
		ie := pick(cfg, rep.Metrics)
		var nlCell string
		var nl time.Duration
		if n <= nlCap {
			_, nrep, err := detNL.Detect(recs, rheem.OnPlatform(sparksim.ID))
			if err != nil {
				return nil, err
			}
			nl = pick(cfg, nrep.Metrics)
			lastNL, lastN = nl, n
			nlCell = Dur(nl)
		} else {
			nl = ExtrapolateQuadratic(lastNL, lastN, n)
			nlCell = EstDur(nl)
		}
		t.AddRow(Count(n), Dur(ie), nlCell, Count(len(vs)), Speedup(nl, ie))
	}
	return []*Table{t}, nil
}

// --- E5: the §1 multi-platform pipeline ----------------------------------

// SensorPipeline is the oil-&-gas motivating pipeline (E5 and the
// bench suite's multi-platform scenario): normalise raw
// sensor quanta (opaque UDF), aggregate per well (relational
// strength), emit per-well feature vectors.
func SensorPipeline(ctx *rheem.Context, readings []data.Record, opts ...rheem.RunOption) ([]data.Record, *rheem.Report, error) {
	job := ctx.NewJob("sensor-features")
	q := job.ReadCollection("readings", readings).
		// Normalise: psi→kPa-ish unit conversion plus clamping, an
		// opaque per-quantum UDF.
		Map(func(r data.Record) (data.Record, error) {
			p := r.Field(2).Float() * 6.894
			if p < 0 {
				p = 0
			}
			return data.NewRecord(r.Field(0),
				data.Float(p), data.Float(r.Field(3).Float()), data.Float(r.Field(4).Float()),
				data.Int(1)), nil
		}).
		// Aggregate per well: sums + count.
		ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
			return data.NewRecord(a.Field(0),
				data.Float(a.Field(1).Float()+b.Field(1).Float()),
				data.Float(a.Field(2).Float()+b.Field(2).Float()),
				data.Float(a.Field(3).Float()+b.Field(3).Float()),
				data.Int(a.Field(4).Int()+b.Field(4).Int())), nil
		}).
		// Feature vector per well.
		Map(func(r data.Record) (data.Record, error) {
			n := float64(r.Field(4).Int())
			return data.NewRecord(r.Field(0), data.Vec([]float64{
				r.Field(1).Float() / n, r.Field(2).Float() / n, r.Field(3).Float() / n,
			})), nil
		}).
		Sort(plan.FieldKey(0), false)
	return q.Collect(opts...)
}

func multiplatform(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	n := 200_000
	if cfg.Quick {
		n = 10_000
	}
	readings := datagen.Sensors(datagen.SensorConfig{N: n, Wells: 32, Seed: 7})
	t := &Table{
		Title: fmt.Sprintf("E5 — §1 pipeline (normalise → aggregate per well → features), %s readings [simulated time]", Count(n)),
		Note:  "Free optimizer choice vs each platform pinned end-to-end; the optimizer may split the plan across platforms.",
		Columns: []string{"configuration", "time", "platforms used", "atoms"},
	}
	type option struct {
		name string
		opts []rheem.RunOption
	}
	options := []option{
		{"optimizer (free)", nil},
		{"pinned java", []rheem.RunOption{rheem.OnPlatform(javaengine.ID)}},
		{"pinned spark", []rheem.RunOption{rheem.OnPlatform(sparksim.ID)}},
		{"pinned relational", []rheem.RunOption{rheem.OnPlatform(relengine.ID)}},
	}
	var free, bestPinned time.Duration
	for i, opt := range options {
		cfg.logf("multiplatform: %s", opt.name)
		wells, rep, err := SensorPipeline(ctx, readings, opt.opts...)
		if err != nil {
			return nil, err
		}
		if len(wells) != 32 {
			return nil, fmt.Errorf("bench: pipeline produced %d wells", len(wells))
		}
		d := pick(cfg, rep.Metrics)
		if i == 0 {
			free = d
		} else if bestPinned == 0 || d < bestPinned {
			bestPinned = d
		}
		t.AddRow(opt.name, Dur(d), platformsUsed(rep), fmt.Sprint(len(rep.Plan.Atoms)))
	}
	t.Note += fmt.Sprintf(" Free-choice vs best pinned: %s.", Speedup(bestPinned, free))

	// Downstream ML step on the aggregated wells: k-means over 32 tiny
	// feature vectors — firmly single-node territory.
	wells, _, err := SensorPipeline(ctx, readings)
	if err != nil {
		return nil, err
	}
	pts := make([]data.Record, len(wells))
	for i, w := range wells {
		pts[i] = data.NewRecord(data.Int(int64(i)), w.Field(1))
	}
	iters := 10
	if cfg.Quick {
		iters = 3
	}
	tpl := ml.KMeans(pts, ml.KMeansConfig{K: 4, Iterations: iters, Dim: 3})
	state, rep, err := tpl.Run(ctx)
	if err != nil {
		return nil, err
	}
	t2 := &Table{
		Title:   "E5 (cont.) — k-means over aggregated wells, optimizer choice",
		Columns: []string{"k", "iterations", "time", "platforms used", "clusters"},
	}
	t2.AddRow("4", fmt.Sprint(iters), Dur(pick(cfg, rep.Metrics)), platformsUsed(rep), fmt.Sprint(len(state)))
	return []*Table{t, t2}, nil
}

// --- E6: optimizer choice vs oracle over the Figure 2 sweep --------------

func optimizerChoice(cfg Config) ([]*Table, error) {
	ctx, err := newCtx(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{1_000, 10_000, 50_000, 100_000, 200_000, 500_000}
	iters := 100
	if cfg.Quick {
		sizes = []int{500, 2_000, 10_000}
		iters = 10
	}
	const dim = 10
	t := &Table{
		Title: "E6 — optimizer platform choice vs oracle (SVM sweep) [simulated time]",
		Note:  "Regret = optimizer time − best fixed platform time. The §2 claim: the system should 'select the best available platform ... for a different input'.",
		Columns: []string{"points", "java", "spark", "optimizer", "chosen", "regret"},
	}
	for _, n := range sizes {
		cfg.logf("optimizer: n=%d", n)
		pts := datagen.Points(datagen.PointsConfig{N: n, Dim: dim, Noise: 0.05, Seed: uint64(n)})
		times := map[string]time.Duration{}
		var chosen string
		for _, opt := range []struct {
			name string
			opts []rheem.RunOption
		}{
			{"java", []rheem.RunOption{rheem.OnPlatform(javaengine.ID)}},
			{"spark", []rheem.RunOption{rheem.OnPlatform(sparksim.ID)}},
			{"optimizer", nil},
		} {
			tpl := ml.SVM(pts, ml.GradientConfig{Iterations: iters, Dim: dim})
			_, rep, err := tpl.Run(ctx, opt.opts...)
			if err != nil {
				return nil, err
			}
			times[opt.name] = pick(cfg, rep.Metrics)
			if opt.name == "optimizer" {
				chosen = platformsUsed(rep)
			}
		}
		oracle := times["java"]
		if times["spark"] < oracle {
			oracle = times["spark"]
		}
		regret := times["optimizer"] - oracle
		if regret < 0 {
			regret = 0
		}
		t.AddRow(Count(n), Dur(times["java"]), Dur(times["spark"]),
			Dur(times["optimizer"]), chosen, Dur(regret))
	}
	return []*Table{t}, nil
}
