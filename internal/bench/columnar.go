// E13 — columnar batch execution on the hot path. The workload is the
// vectorization-friendly chain the tentpole targets: filter → project
// → global aggregate over a large two-column dataset, hinted with the
// declarative column forms so the single-node engine can run its
// columnar kernels. Row and batch runs execute the identical logical
// plan on the identical platform assignment; the only difference is
// the context's Columnar knob, so the measured gap is the row-at-a-time
// tax itself.

package bench

import (
	"fmt"
	"runtime"
	"time"

	"rheem"
	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/metrics"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
)

func init() {
	register("columnar", columnar)
}

// ColumnarThreshold is the filter operand: values are uniform in
// [0, 1000), so the predicate keeps ~half the input.
const ColumnarThreshold = 500

// ColumnarRecords builds the E13 dataset: (id, value) int pairs with
// values spread deterministically over [0, 1000).
func ColumnarRecords(n int) []data.Record {
	out := make([]data.Record, n)
	for i := range out {
		out[i] = data.NewRecord(
			data.Int(int64(i)),
			data.Int(Burn(int64(i), 2)%1000),
		)
	}
	return out
}

// ColumnarSum is the chain's expected output: the sum of values below
// the threshold — the row/batch byte-identity check in one integer.
func ColumnarSum(recs []data.Record) int64 {
	var sum int64
	for _, r := range recs {
		if v := r.Field(1).Int(); v < ColumnarThreshold {
			sum += v
		}
	}
	return sum
}

// ColumnarPlan builds the hot-path chain over a prebuilt dataset:
// FilterWhere(value < threshold) → ProjectCols(value) → AggregateCols
// (sum). The column hints ride along with generated row UDFs, so the
// same plan runs vectorized or row-at-a-time depending on the engine
// configuration.
func ColumnarPlan(recs []data.Record) (*physical.Plan, error) {
	b := plan.NewBuilder("colchain")
	s := b.Source("src", plan.Collection(recs))
	s.CardHint = int64(len(recs))
	f := b.FilterWhere(s, 1, plan.Less, data.Int(ColumnarThreshold))
	p := b.ProjectCols(f, 1)
	b.Collect(b.AggregateCols(p, plan.AggSum))
	lp, err := b.Build()
	if err != nil {
		return nil, err
	}
	return physical.FromLogical(lp)
}

// ColumnarAssignments pins the source to the relational engine and the
// chain to the single-node engine — the same boundary idiom as E11, so
// the chain is its own atom with an external input whose format the
// executor picks per the consumer's batch capability.
func ColumnarAssignments(pp *physical.Plan) map[int]engine.PlatformID {
	fa := make(map[int]engine.PlatformID, len(pp.Ops))
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSource {
			fa[op.ID] = relengine.ID
		} else {
			fa[op.ID] = javaengine.ID
		}
	}
	return fa
}

// NewColumnarContext builds a context for the E13 measurement with the
// vectorized path on or off.
func NewColumnarContext(hub *metrics.Hub, batch bool) (*rheem.Context, error) {
	cfg := rheem.Config{Columnar: batch}
	if hub != nil {
		return rheem.NewContext(cfg, rheem.WithTelemetryHub(hub))
	}
	return rheem.NewContext(cfg)
}

// RunColumnarTraced optimizes and executes the columnar chain on the
// context's registry (whose java engine is row-path or vectorized per
// NewColumnarContext), verifying the aggregate against the reference
// sum. hub == nil runs untraced.
func RunColumnarTraced(ctx *rheem.Context, hub *metrics.Hub, recs []data.Record) (*executor.Result, error) {
	pp, err := ColumnarPlan(recs)
	if err != nil {
		return nil, err
	}
	ep, err := optimizer.Optimize(pp, ctx.Registry(), optimizer.Options{
		DisableRules:      true,
		ForcedAssignments: ColumnarAssignments(pp),
	})
	if err != nil {
		return nil, err
	}
	opts := executor.Options{}
	var res *executor.Result
	if hub == nil {
		res, err = executor.Run(ep, ctx.Registry(), opts)
	} else {
		tracer, run := hub.NewRunTracer("colchain")
		opts.Tracer = tracer
		res, err = executor.Run(ep, ctx.Registry(), opts)
		run.End(err)
	}
	if err != nil {
		return nil, err
	}
	if len(res.Records) != 1 || res.Records[0].Field(0).Int() != ColumnarSum(recs) {
		return nil, fmt.Errorf("columnar chain produced %v, want sum %d", res.Records, ColumnarSum(recs))
	}
	return res, nil
}

// columnar is the E13 experiment: the hot-path chain at growing sizes,
// row path vs columnar batches, best-of-reps wall time (vectorization
// is a wall-clock effect; the simulated clock moves only through the
// cheaper conversion edges).
func columnar(cfg Config) ([]*Table, error) {
	sizes, reps := []int{50_000, 200_000, 1_000_000}, 3
	if cfg.Quick {
		sizes, reps = []int{5_000, 20_000}, 1
	}
	t := &Table{
		Title:   "E13 — columnar batch execution (filter → project → sum)",
		Note:    "Same plan, same platforms; 'batch' runs the java engine's vectorized kernels over channel.Batch inputs, 'row' calls the UDFs per record.",
		Columns: []string{"rows", "row wall", "batch wall", "row rec/s", "batch rec/s", "speedup"},
	}
	for _, n := range sizes {
		cfg.logf("columnar: rows=%d", n)
		recs := ColumnarRecords(n)
		walls := map[bool]time.Duration{}
		for _, batch := range []bool{false, true} {
			best := time.Duration(0)
			for rep := 0; rep < reps; rep++ {
				runtime.GC() // keep earlier reps' garbage out of this rep's wall
				ctx, err := NewColumnarContext(cfg.Hub, batch)
				if err != nil {
					return nil, err
				}
				res, err := RunColumnarTraced(ctx, cfg.Hub, recs)
				ctx.Close()
				if err != nil {
					return nil, err
				}
				if best == 0 || res.Metrics.Wall < best {
					best = res.Metrics.Wall
				}
			}
			walls[batch] = best
		}
		rps := func(d time.Duration) string {
			if d <= 0 {
				return "-"
			}
			return Count(int(float64(n) / d.Seconds()))
		}
		t.AddRow(Count(n), Dur(walls[false]), Dur(walls[true]),
			rps(walls[false]), rps(walls[true]), Speedup(walls[false], walls[true]))
	}
	return []*Table{t}, nil
}
