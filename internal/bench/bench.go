// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts (DESIGN.md §2, EXPERIMENTS.md). Each experiment
// builds the workload with datagen, runs the relevant RHEEM jobs, and
// emits a Table whose rows mirror the series of the corresponding
// figure. Experiments report the *simulated* cluster time by default —
// deterministic and machine-independent — with measured wall time
// alongside; see DESIGN.md §5 ("Real execution + virtual clock").
//
// Quadratic baselines are measured up to a size cap and extrapolated
// beyond it, marked "est./stopped" the way the paper reports baselines
// it stopped after 22 hours.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rheem/internal/core/metrics"
)

// Table is one experiment's result: column headers plus formatted rows.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, esc(c))
		}
		fmt.Fprintln(w)
	}
	row(t.Columns)
	for _, r := range t.Rows {
		row(r)
	}
}

// Dur formats a duration for table cells with stable precision.
func Dur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	}
}

// EstDur formats an extrapolated duration, marked the way the paper
// marks baselines it had to stop.
func EstDur(d time.Duration) string {
	return "> " + Dur(d) + " (est., stopped)"
}

// Speedup formats a ratio like "12.3x"; ratios below 1 render the
// reciprocal as a slowdown.
func Speedup(base, other time.Duration) string {
	if other <= 0 || base <= 0 {
		return "-"
	}
	r := float64(base) / float64(other)
	if r >= 1 {
		return fmt.Sprintf("%.1fx", r)
	}
	return fmt.Sprintf("1/%.1fx", 1/r)
}

// Count formats a record count with thousands grouping.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	var out []string
	for len(s) > 3 {
		out = append([]string{s[len(s)-3:]}, out...)
		s = s[:len(s)-3]
	}
	out = append([]string{s}, out...)
	return strings.Join(out, ",")
}

// ExtrapolateQuadratic scales a measurement at size m to size n
// assuming t ∝ n².
func ExtrapolateQuadratic(measured time.Duration, m, n int) time.Duration {
	if m <= 0 {
		return 0
	}
	scale := (float64(n) / float64(m)) * (float64(n) / float64(m))
	return time.Duration(float64(measured) * scale)
}

// Registry maps experiment names to their runners, filled by
// experiments.go.
type Runner func(cfg Config) ([]*Table, error)

var experiments = map[string]Runner{}

func register(name string, r Runner) { experiments[name] = r }

// Experiments lists registered experiment names, sorted.
func Experiments() []string {
	out := make([]string, 0, len(experiments))
	for n := range experiments {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, cfg Config) ([]*Table, error) {
	r, ok := experiments[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	return r(cfg)
}

// Config steers experiment scale.
type Config struct {
	// Quick shrinks sweeps for smoke runs (CI, tests).
	Quick bool
	// WallClock reports measured wall time instead of simulated
	// cluster time (the fig2 ablation).
	WallClock bool
	// Log receives progress lines (nil = silent).
	Log io.Writer
	// Hub, when set, feeds every experiment context's telemetry into
	// this shared hub — rheem-bench -metrics passes its monitoring
	// server's hub here so /metrics and /runs cover all experiments.
	Hub *metrics.Hub
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}
