package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFormatHelpers(t *testing.T) {
	if Dur(0) != "0" {
		t.Error("Dur(0)")
	}
	if got := Dur(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("Dur(1.5ms) = %q", got)
	}
	if got := Dur(2500 * time.Millisecond); got != "2.50s" {
		t.Errorf("Dur(2.5s) = %q", got)
	}
	if got := Dur(90 * time.Second); got != "1.5min" {
		t.Errorf("Dur(90s) = %q", got)
	}
	if !strings.HasPrefix(EstDur(time.Second), "> ") {
		t.Error("EstDur marker missing")
	}
	if got := Count(1234567); got != "1,234,567" {
		t.Errorf("Count = %q", got)
	}
	if got := Count(42); got != "42" {
		t.Errorf("Count = %q", got)
	}
	if got := Speedup(10*time.Second, time.Second); got != "10.0x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(time.Second, 10*time.Second); got != "1/10.0x" {
		t.Errorf("inverse Speedup = %q", got)
	}
	if Speedup(0, time.Second) != "-" {
		t.Error("Speedup(0, _)")
	}
}

func TestExtrapolateQuadratic(t *testing.T) {
	got := ExtrapolateQuadratic(time.Second, 100, 1000)
	if got != 100*time.Second {
		t.Errorf("10x size should be 100x time, got %v", got)
	}
	if ExtrapolateQuadratic(time.Second, 0, 10) != 0 {
		t.Error("zero base size should yield 0")
	}
}

func TestTablePrintAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow("1", "x")
	tab.AddRow("222", "y,with\"comma")
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-column") {
		t.Errorf("Print output:\n%s", out)
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.Contains(buf.String(), `"y,with""comma"`) {
		t.Errorf("CSV escaping wrong:\n%s", buf.String())
	}
}

func TestRegistry(t *testing.T) {
	names := Experiments()
	want := []string{"calibration", "chaos", "columnar", "fig2", "fig3left", "fig3right", "iejoin", "multiplatform", "optimizer", "parallelism", "reopt", "service", "sharding", "telemetry"}
	if len(names) != len(want) {
		t.Fatalf("experiments = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("experiments[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	if _, err := Run("ghost", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsQuick smoke-runs every experiment at quick scale
// and sanity-checks the emitted tables.
func TestAllExperimentsQuick(t *testing.T) {
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			tables, err := Run(name, Config{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %q row width %d vs %d columns", tab.Title, len(row), len(tab.Columns))
					}
				}
			}
		})
	}
}
