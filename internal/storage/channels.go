package storage

import (
	"fmt"
	"sync/atomic"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

// Ref is the payload of a store-format channel: a named dataset inside
// an execution store. Processing platforms never look inside — they
// convert through the graph to their native format.
type Ref struct {
	Store   Store
	Dataset string
}

var tempSeq atomic.Int64

// ConnectChannels registers converters between a store's native format
// and the hub Collection format in the processing layer's conversion
// graph. This is what makes the storage abstraction and the processing
// abstraction one system (§6): a DFS-resident dataset can feed a
// Spark-simulator atom through DFSFile → Collection → Partitioned, and
// the optimizer prices that chain with the store's own read costs.
//
// Stores whose native format already is Collection (memstore) need no
// converters.
func ConnectChannels(reg *channel.Registry, s Store) {
	format := s.Format()
	if format == channel.Collection {
		return
	}
	cost := s.Cost()
	reg.Register(channel.Converter{
		From: format, To: channel.Collection,
		Fixed: cost.ReadFixed, PerByteNS: cost.ReadPerByteNS,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			ref, ok := ch.Payload.(Ref)
			if !ok {
				return nil, fmt.Errorf("storage: %s channel holds %T, want storage.Ref", format, ch.Payload)
			}
			_, recs, err := ref.Store.Read(ref.Dataset)
			if err != nil {
				return nil, err
			}
			return channel.NewCollection(recs), nil
		},
	})
	reg.Register(channel.Converter{
		From: channel.Collection, To: format,
		Fixed: cost.WriteFixed, PerByteNS: cost.WritePerByteNS,
		Convert: func(ch *channel.Channel) (*channel.Channel, error) {
			recs, err := ch.AsCollection()
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("_chan_%d", tempSeq.Add(1))
			schema, err := inferSchema(recs)
			if err != nil {
				return nil, err
			}
			if err := s.Write(name, schema, recs); err != nil {
				return nil, err
			}
			return &channel.Channel{
				Format:  format,
				Payload: Ref{Store: s, Dataset: name},
				Records: int64(len(recs)),
				Bytes:   data.TotalBytes(recs),
			}, nil
		},
	})
}

// Channel wraps a stored dataset as a channel in the store's native
// format, the zero-copy entry point for processing jobs over stored
// data.
func (m *Manager) Channel(dataset string) (*channel.Channel, error) {
	store, err := m.owner(dataset)
	if err != nil {
		return nil, err
	}
	st, err := store.Stat(dataset)
	if err != nil {
		return nil, err
	}
	if store.Format() == channel.Collection {
		_, recs, err := store.Read(dataset)
		if err != nil {
			return nil, err
		}
		return channel.NewCollection(recs), nil
	}
	return &channel.Channel{
		Format:  store.Format(),
		Payload: Ref{Store: store, Dataset: dataset},
		Records: st.Records,
		Bytes:   st.Bytes,
	}, nil
}

// inferSchema derives a column-typed schema from the first record of a
// batch (anonymous columns c0..cn), falling back to an empty one-field
// schema for empty batches. Store writes need *some* schema; datasets
// written through channel conversion are intermediate and reread
// through the same code, so derived names are fine.
func inferSchema(recs []data.Record) (*data.Schema, error) {
	if len(recs) == 0 {
		return data.NewSchema(data.Field{Name: "c0", Type: data.KindNull})
	}
	first := recs[0]
	fields := make([]data.Field, first.Len())
	for i := range fields {
		kind := first.Field(i).Kind()
		// Null first values: scan down for a typed one.
		for j := 1; j < len(recs) && kind == data.KindNull; j++ {
			kind = recs[j].Field(i).Kind()
		}
		fields[i] = data.Field{Name: fmt.Sprintf("c%d", i), Type: kind}
	}
	return data.NewSchema(fields...)
}
