package storage

import (
	"fmt"
	"testing"

	"rheem/internal/data"
)

func rec(payload string) []data.Record {
	return []data.Record{data.NewRecord(data.Str(payload))}
}

func TestHotBufferLRUEviction(t *testing.T) {
	// Each entry is ~16+16+len bytes; cap to fit roughly two entries.
	one := rec("aaaaaaaaaaaaaaaaaaaaaaaa")
	perEntry := data.TotalBytes(one)
	h := NewHotBuffer(2 * perEntry)

	h.Put("a", nil, rec("aaaaaaaaaaaaaaaaaaaaaaaa"))
	h.Put("b", nil, rec("bbbbbbbbbbbbbbbbbbbbbbbb"))
	if _, _, ok := h.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// Touch a so b becomes the LRU victim.
	h.Put("c", nil, rec("cccccccccccccccccccccccc"))
	if _, _, ok := h.Get("b"); ok {
		t.Error("LRU victim b still cached")
	}
	if _, _, ok := h.Get("a"); !ok {
		t.Error("recently used a evicted")
	}
	if _, _, ok := h.Get("c"); !ok {
		t.Error("new entry c missing")
	}
}

func TestHotBufferOversizedEntrySkipped(t *testing.T) {
	h := NewHotBuffer(8)
	h.Put("big", nil, rec("this will never fit in eight bytes"))
	if _, _, ok := h.Get("big"); ok {
		t.Error("oversized entry cached")
	}
}

func TestHotBufferDisabled(t *testing.T) {
	h := NewHotBuffer(0)
	h.Put("x", nil, rec("x"))
	if _, _, ok := h.Get("x"); ok {
		t.Error("disabled buffer cached")
	}
}

func TestHotBufferInvalidate(t *testing.T) {
	h := NewHotBuffer(1 << 20)
	h.Put("x", nil, rec("x"))
	h.Invalidate("x")
	if _, _, ok := h.Get("x"); ok {
		t.Error("invalidated entry served")
	}
	h.Invalidate("never-existed") // must not panic
	_, _, bytes := h.Stats()
	if bytes != 0 {
		t.Errorf("bytes = %d after invalidation", bytes)
	}
}

func TestHotBufferReplaceSameKey(t *testing.T) {
	h := NewHotBuffer(1 << 20)
	h.Put("x", nil, rec("old"))
	h.Put("x", nil, rec("new-value"))
	_, recs, ok := h.Get("x")
	if !ok || recs[0].Field(0).Str() != "new-value" {
		t.Error("replacement not visible")
	}
	_, _, bytes := h.Stats()
	if bytes != data.TotalBytes(rec("new-value")) {
		t.Errorf("occupancy %d not updated on replace", bytes)
	}
}

func TestHotBufferManyEntries(t *testing.T) {
	h := NewHotBuffer(1 << 20)
	for i := 0; i < 500; i++ {
		h.Put(fmt.Sprintf("k%d", i), nil, rec(fmt.Sprintf("value-%d", i)))
	}
	for i := 0; i < 500; i++ {
		if _, _, ok := h.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
}

func TestTransformationPlanString(t *testing.T) {
	var nilPlan *TransformationPlan
	if nilPlan.String() != "identity" {
		t.Error("nil plan string")
	}
	p := &TransformationPlan{Steps: []Transform{Project("a"), SortBy("a")}}
	if p.String() == "" || p.String() == "identity" {
		t.Errorf("plan string = %q", p.String())
	}
	// nil plan Run is identity.
	s, recs, err := nilPlan.Run(nil, rec("x"))
	if err != nil || s != nil || len(recs) != 1 {
		t.Error("nil plan Run not identity")
	}
}
