package storage

import (
	"container/list"
	"sync"

	"rheem/internal/data"
)

// HotBuffer is the storage abstraction's hot-data cache: an LRU over
// datasets in decoded, processing-native form, so repeated reads of a
// popular dataset skip both the store's I/O and its format decoding —
// the paper's "specialized buffers for embracing frequently accessed
// data in their native format" (§6).
type HotBuffer struct {
	mu       sync.Mutex
	capBytes int64
	curBytes int64
	order    *list.List               // front = most recent
	entries  map[string]*list.Element // dataset name → element
	hits     int64
	misses   int64
}

type hotEntry struct {
	name   string
	schema *data.Schema
	recs   []data.Record
	bytes  int64
}

// NewHotBuffer returns a buffer bounded to capBytes (≤0 disables
// caching entirely).
func NewHotBuffer(capBytes int64) *HotBuffer {
	return &HotBuffer{
		capBytes: capBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached dataset, marking it most-recently-used.
func (h *HotBuffer) Get(name string) (*data.Schema, []data.Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.entries[name]
	if !ok {
		h.misses++
		return nil, nil, false
	}
	h.hits++
	h.order.MoveToFront(el)
	e := el.Value.(*hotEntry)
	return e.schema, e.recs, true
}

// Put caches a dataset, evicting least-recently-used entries until the
// capacity bound holds. Datasets larger than the whole buffer are not
// cached.
func (h *HotBuffer) Put(name string, schema *data.Schema, recs []data.Record) {
	bytes := data.TotalBytes(recs)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.capBytes <= 0 || bytes > h.capBytes {
		return
	}
	if el, ok := h.entries[name]; ok {
		h.curBytes -= el.Value.(*hotEntry).bytes
		h.order.Remove(el)
		delete(h.entries, name)
	}
	for h.curBytes+bytes > h.capBytes {
		back := h.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*hotEntry)
		h.order.Remove(back)
		delete(h.entries, victim.name)
		h.curBytes -= victim.bytes
	}
	el := h.order.PushFront(&hotEntry{name: name, schema: schema, recs: recs, bytes: bytes})
	h.entries[name] = el
	h.curBytes += bytes
}

// Invalidate removes a dataset (after overwrite or delete).
func (h *HotBuffer) Invalidate(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.entries[name]; ok {
		h.curBytes -= el.Value.(*hotEntry).bytes
		h.order.Remove(el)
		delete(h.entries, name)
	}
}

// Stats reports hit/miss counters and current occupancy.
func (h *HotBuffer) Stats() (hits, misses, bytes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits, h.misses, h.curBytes
}
