// Package csvstore is the local-filesystem execution store: one
// typed-header CSV file per dataset under a root directory. It is the
// human-readable, tool-friendly store — slower than memory, cheaper
// than memory, and the natural landing zone for exports.
package csvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"rheem/internal/core/channel"
	"rheem/internal/data"
	"rheem/internal/storage"
)

// ID is the store identifier.
const ID storage.StoreID = "csv"

// Store persists datasets as CSV files.
type Store struct {
	mu   sync.Mutex
	root string
}

// New returns a store rooted at dir, creating it if needed.
func New(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("csvstore: %w", err)
	}
	return &Store{root: dir}, nil
}

// ID implements storage.Store.
func (s *Store) ID() storage.StoreID { return ID }

// Format implements storage.Store.
func (s *Store) Format() channel.Format { return channel.CSVFile }

// Cost implements storage.Store: disk I/O plus text codec work.
func (s *Store) Cost() storage.StoreCost {
	return storage.StoreCost{
		ReadFixed: 2e6, WriteFixed: 2e6, // 2ms open/close
		ReadPerByteNS: 4, WritePerByteNS: 6,
	}
}

// Fits implements storage.Store: the local disk is assumed ample.
func (s *Store) Fits(int64) bool { return true }

// path maps a dataset name to its file, rejecting names that escape
// the root.
func (s *Store) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
		return "", fmt.Errorf("csvstore: invalid dataset name %q", name)
	}
	return filepath.Join(s.root, name+".csv"), nil
}

// Write implements storage.Store.
func (s *Store) Write(name string, schema *data.Schema, recs []data.Record) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := p + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("csvstore: %w", err)
	}
	if err := data.WriteCSV(f, schema, recs); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("csvstore: %w", err)
	}
	return os.Rename(tmp, p)
}

// Read implements storage.Store.
func (s *Store) Read(name string) (*data.Schema, []data.Record, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("%w: %q in csvstore", storage.ErrNotFound, name)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("csvstore: %w", err)
	}
	defer f.Close()
	return data.ReadCSV(f)
}

// Delete implements storage.Store.
func (s *Store) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); os.IsNotExist(err) {
		return fmt.Errorf("%w: %q in csvstore", storage.ErrNotFound, name)
	} else if err != nil {
		return fmt.Errorf("csvstore: %w", err)
	}
	return nil
}

// List implements storage.Store.
func (s *Store) List() []string {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".csv"); ok {
			out = append(out, n)
		}
	}
	return out
}

// Stat implements storage.Store. Records are counted by re-reading the
// file; CSV keeps no footer.
func (s *Store) Stat(name string) (storage.Stats, error) {
	p, err := s.path(name)
	if err != nil {
		return storage.Stats{}, err
	}
	fi, err := os.Stat(p)
	if os.IsNotExist(err) {
		return storage.Stats{}, fmt.Errorf("%w: %q in csvstore", storage.ErrNotFound, name)
	}
	if err != nil {
		return storage.Stats{}, fmt.Errorf("csvstore: %w", err)
	}
	_, recs, err := s.Read(name)
	if err != nil {
		return storage.Stats{}, err
	}
	return storage.Stats{Records: int64(len(recs)), Bytes: fi.Size()}, nil
}

// Path exposes a dataset's file location for external tools.
func (s *Store) Path(name string) (string, error) { return s.path(name) }
