package csvstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

var schema = data.MustSchema(
	data.Field{Name: "id", Type: data.KindInt},
	data.Field{Name: "name", Type: data.KindString},
)

func recs() []data.Record {
	return []data.Record{
		data.NewRecord(data.Int(1), data.Str("ann")),
		data.NewRecord(data.Int(2), data.Str("bob")),
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", `a\b`, "../escape", "a..b"} {
		if err := s.Write(bad, schema, recs()); err == nil {
			t.Errorf("Write(%q) accepted", bad)
		}
	}
}

func TestFilesAreRealCSV(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write("people", schema, recs()); err != nil {
		t.Fatal(err)
	}
	p, err := s.Path("people")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "id:int,name:string\n") {
		t.Errorf("file content:\n%s", raw)
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if filepath.Dir(p) != dir {
		t.Error("Path outside root")
	}
}

func TestAtomicOverwrite(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write("d", schema, recs()); err != nil {
		t.Fatal(err)
	}
	// A failing write (validation error) must not clobber the old file.
	bad := []data.Record{data.NewRecord(data.Str("wrong"), data.Str("arity"))}
	if err := s.Write("d", schema, bad); err == nil {
		t.Fatal("invalid rows accepted")
	}
	_, got, err := s.Read("d")
	if err != nil || len(got) != 2 {
		t.Errorf("old data lost after failed overwrite: %d rows, %v", len(got), err)
	}
}

func TestFormatAndFits(t *testing.T) {
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.Format() != channel.CSVFile {
		t.Error("format wrong")
	}
	if !s.Fits(1 << 40) {
		t.Error("Fits should be unbounded")
	}
	if s.ID() != ID {
		t.Error("id wrong")
	}
}

func TestNewCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "store")
	if _, err := New(dir); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Error("root directory not created")
	}
}
