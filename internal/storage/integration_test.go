package storage_test

import (
	"testing"

	"rheem"
	"rheem/internal/core/channel"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/storage"
	"rheem/internal/storage/dfs"
	"rheem/internal/storage/memstore"
)

// TestStorageFeedsProcessing wires the two abstractions together the
// way the paper intends (§6): the storage manager prices placements
// with the *processing* layer's conversion graph, and a stored dataset
// feeds a RHEEM job.
func TestStorageFeedsProcessing(t *testing.T) {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Conversion costs come from the processing layer's channel graph —
	// storage placement sees the same movement prices the executor pays.
	m := storage.NewManager(1<<20, ctx.Registry().Channels().PathCost)
	if err := m.Register(memstore.New(1 << 24)); err != nil {
		t.Fatal(err)
	}
	d, err := dfs.New(t.TempDir(), dfs.Config{BlockRecords: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(d); err != nil {
		t.Fatal(err)
	}

	recs := datagen.Tax(datagen.TaxConfig{N: 2_000, Zips: 40, ErrorRate: 0, Seed: 9})
	pl, err := m.Put(storage.PutRequest{
		Dataset: "tax", Schema: datagen.TaxSchema, Records: recs,
		ExpectedReads: 3, PreferFormat: channel.Collection,
		Transform: &storage.TransformationPlan{Steps: []storage.Transform{
			storage.Project("id", "state", "salary"),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Store == "" {
		t.Fatal("no placement")
	}

	// Read back through the manager and aggregate with RHEEM.
	schema, stored, err := m.Get("tax")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 3 {
		t.Fatalf("stored schema %s", schema)
	}
	out, _, err := ctx.NewJob("agg-over-storage").
		ReadCollection("tax", stored).
		Map(func(r data.Record) (data.Record, error) {
			return data.NewRecord(r.Field(1), data.Float(r.Field(2).Float()), data.Int(1)), nil
		}).
		ReduceByKey(plan.FieldKey(0), func(a, b data.Record) (data.Record, error) {
			return data.NewRecord(a.Field(0),
				data.Float(a.Field(1).Float()+b.Field(1).Float()),
				data.Int(a.Field(2).Int()+b.Field(2).Int())), nil
		}).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 8 {
		t.Errorf("%d states aggregated", len(out))
	}
	var total int64
	for _, r := range out {
		total += r.Field(2).Int()
	}
	if total != 2_000 {
		t.Errorf("aggregation lost rows: %d", total)
	}
}
