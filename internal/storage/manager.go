package storage

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

// PutRequest is a logical storage request (l-store level): what to
// store and how it will be used, with no mention of a storage engine.
type PutRequest struct {
	// Dataset names the stored object.
	Dataset string
	// Schema and Records are the raw data quanta.
	Schema  *data.Schema
	Records []data.Record
	// Transform is the Cartilage-style upload pipeline (nil = none).
	Transform *TransformationPlan
	// ExpectedReads hints how often the dataset will be read back; the
	// placement optimizer weighs read cost by it (0 = assume 1).
	ExpectedReads int
	// PreferFormat, when set, is the channel format the expected
	// consumer computes in; stores whose native format matches avoid a
	// conversion charge.
	PreferFormat channel.Format
	// Pin forces a specific store, bypassing the optimizer.
	Pin StoreID
}

// Placement is the optimizer's storage decision — the execution
// storage plan's header.
type Placement struct {
	Store     StoreID
	Transform string // rendered transformation plan
	Estimated time.Duration
	Why       string
}

// Manager is the storage abstraction's core layer: it owns the
// registered stores, runs the placement optimizer, executes
// transformation plans, and serves reads through the hot buffer.
type Manager struct {
	mu       sync.Mutex
	stores   map[StoreID]Store
	order    []StoreID
	where    map[string]StoreID // dataset → owning store
	hot      *HotBuffer
	convCost func(from, to channel.Format, bytes int64) (time.Duration, bool)
}

// NewManager returns a manager with the given hot-buffer capacity.
// convCost prices a format conversion (nil = conversions free); wiring
// the processing layer's channel registry here is what lets storage
// placement see processing-side conversion costs, the paper's reason
// for a *unified* abstraction.
func NewManager(hotBytes int64, convCost func(from, to channel.Format, bytes int64) (time.Duration, bool)) *Manager {
	return &Manager{
		stores:   make(map[StoreID]Store),
		where:    make(map[string]StoreID),
		hot:      NewHotBuffer(hotBytes),
		convCost: convCost,
	}
}

// Register adds a storage engine.
func (m *Manager) Register(s Store) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.stores[s.ID()]; dup {
		return fmt.Errorf("storage: store %q registered twice", s.ID())
	}
	m.stores[s.ID()] = s
	m.order = append(m.order, s.ID())
	return nil
}

// Stores lists registered store IDs in registration order.
func (m *Manager) Stores() []StoreID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]StoreID(nil), m.order...)
}

// HotBuffer exposes the hot-data cache for inspection.
func (m *Manager) HotBuffer() *HotBuffer { return m.hot }

// Put runs the transformation plan, places the dataset on the best
// store (the WWHow!-style decision), and writes it.
func (m *Manager) Put(req PutRequest) (Placement, error) {
	if req.Dataset == "" {
		return Placement{}, fmt.Errorf("storage: empty dataset name")
	}
	schema, recs, err := req.Transform.Run(req.Schema, req.Records)
	if err != nil {
		return Placement{}, err
	}
	bytes := data.TotalBytes(recs)
	placement, store, err := m.place(req, bytes)
	if err != nil {
		return Placement{}, err
	}
	if err := store.Write(req.Dataset, schema, recs); err != nil {
		return Placement{}, err
	}
	m.mu.Lock()
	m.where[req.Dataset] = store.ID()
	m.mu.Unlock()
	m.hot.Invalidate(req.Dataset)
	placement.Transform = req.Transform.String()
	return placement, nil
}

// place scores each feasible store: write cost + expected reads ×
// (read cost + conversion-to-preferred-format cost).
func (m *Manager) place(req PutRequest, bytes int64) (Placement, Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if req.Pin != "" {
		s, ok := m.stores[req.Pin]
		if !ok {
			return Placement{}, nil, fmt.Errorf("storage: pinned store %q not registered", req.Pin)
		}
		if !s.Fits(bytes) {
			return Placement{}, nil, fmt.Errorf("storage: pinned store %q cannot hold %d bytes", req.Pin, bytes)
		}
		return Placement{Store: req.Pin, Why: "pinned"}, s, nil
	}
	reads := req.ExpectedReads
	if reads <= 0 {
		reads = 1
	}
	type scored struct {
		id    StoreID
		cost  time.Duration
		store Store
	}
	var candidates []scored
	for _, id := range m.order {
		s := m.stores[id]
		if !s.Fits(bytes) {
			continue
		}
		c := s.Cost().WriteCost(bytes) + time.Duration(reads)*s.Cost().ReadCost(bytes)
		if req.PreferFormat != "" && s.Format() != req.PreferFormat && m.convCost != nil {
			cc, ok := m.convCost(s.Format(), req.PreferFormat, bytes)
			if !ok {
				continue // unreachable format: infeasible for this consumer
			}
			c += time.Duration(reads) * cc
		}
		candidates = append(candidates, scored{id: id, cost: c, store: s})
	}
	if len(candidates) == 0 {
		return Placement{}, nil, fmt.Errorf("storage: no store can hold %d bytes of %q", bytes, req.Dataset)
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].cost < candidates[j].cost })
	best := candidates[0]
	why := fmt.Sprintf("cheapest of %d candidates for %d expected reads", len(candidates), reads)
	return Placement{Store: best.id, Estimated: best.cost, Why: why}, best.store, nil
}

// Adopt scans the registered stores for datasets persisted by an
// earlier process and adopts them into the placement map, so a
// restarted service can Get/Delete data it wrote in a previous life.
// Datasets already placed keep their owner; on a name collision across
// stores the earlier-registered store wins. Returns the adopted names,
// sorted.
func (m *Manager) Adopt() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var adopted []string
	for _, id := range m.order {
		for _, name := range m.stores[id].List() {
			if _, placed := m.where[name]; placed {
				continue
			}
			m.where[name] = id
			adopted = append(adopted, name)
		}
	}
	sort.Strings(adopted)
	return adopted
}

// Datasets lists every placed dataset name, sorted.
func (m *Manager) Datasets() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.where))
	for name := range m.where {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get reads a dataset, serving repeat reads from the hot buffer.
func (m *Manager) Get(dataset string) (*data.Schema, []data.Record, error) {
	if schema, recs, ok := m.hot.Get(dataset); ok {
		return schema, recs, nil
	}
	store, err := m.owner(dataset)
	if err != nil {
		return nil, nil, err
	}
	schema, recs, err := store.Read(dataset)
	if err != nil {
		return nil, nil, err
	}
	m.hot.Put(dataset, schema, recs)
	return schema, recs, nil
}

// Where reports the store holding a dataset.
func (m *Manager) Where(dataset string) (StoreID, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.where[dataset]
	return id, ok
}

// Delete removes a dataset from its store and the hot buffer.
func (m *Manager) Delete(dataset string) error {
	store, err := m.owner(dataset)
	if err != nil {
		return err
	}
	if err := store.Delete(dataset); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.where, dataset)
	m.mu.Unlock()
	m.hot.Invalidate(dataset)
	return nil
}

// Move migrates a dataset to another store — the "transform their
// datasets from one platform to another" half of the abstraction's
// interoperability promise.
func (m *Manager) Move(dataset string, to StoreID) error {
	src, err := m.owner(dataset)
	if err != nil {
		return err
	}
	m.mu.Lock()
	dst, ok := m.stores[to]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("storage: unknown target store %q", to)
	}
	if src.ID() == to {
		return nil
	}
	schema, recs, err := src.Read(dataset)
	if err != nil {
		return err
	}
	if !dst.Fits(data.TotalBytes(recs)) {
		return fmt.Errorf("storage: store %q cannot hold %q", to, dataset)
	}
	if err := dst.Write(dataset, schema, recs); err != nil {
		return err
	}
	if err := src.Delete(dataset); err != nil {
		return err
	}
	m.mu.Lock()
	m.where[dataset] = to
	m.mu.Unlock()
	m.hot.Invalidate(dataset)
	return nil
}

func (m *Manager) owner(dataset string) (Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.where[dataset]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, dataset)
	}
	return m.stores[id], nil
}
