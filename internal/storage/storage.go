// Package storage implements RHEEM's data storage abstraction (paper
// §6): a three-level stack that mirrors the processing abstraction.
//
//   - At the application level (l-store), callers issue logical
//     storage requests — store this dataset, with these access
//     expectations — via the Manager, without naming a storage engine.
//   - At the core level (p-store), the Manager's placement optimizer
//     (the WWHow!-style component) prices each registered store by its
//     write cost plus the expected read and format-conversion cost,
//     and produces an execution storage plan: a placement plus a
//     Cartilage-style transformation plan of *storage atoms* — "the
//     minimum unit of data quanta transformation (e.g., projection)" —
//     applied while the data is uploaded.
//   - At the execution level (x-store), Store implementations persist
//     the transformed quanta in their native representation: driver
//     memory, CSV files, or simulated-DFS blocks.
//
// A HotBuffer keeps frequently read datasets in decoded native form,
// the paper's "specialized buffers for embracing frequently accessed
// data in their native format".
package storage

import (
	"fmt"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

// StoreID identifies a registered storage engine.
type StoreID string

// StoreCost prices a store's accesses for the placement optimizer.
type StoreCost struct {
	ReadFixed      time.Duration
	WriteFixed     time.Duration
	ReadPerByteNS  float64
	WritePerByteNS float64
}

// ReadCost prices reading a volume.
func (c StoreCost) ReadCost(bytes int64) time.Duration {
	return c.ReadFixed + time.Duration(float64(bytes)*c.ReadPerByteNS)
}

// WriteCost prices writing a volume.
func (c StoreCost) WriteCost(bytes int64) time.Duration {
	return c.WriteFixed + time.Duration(float64(bytes)*c.WritePerByteNS)
}

// Stats describes a stored dataset.
type Stats struct {
	Records int64
	Bytes   int64
}

// Store is an execution-level storage engine (x-store).
type Store interface {
	// ID returns the store's unique identifier.
	ID() StoreID
	// Format is the channel format the store hands to processing
	// platforms without conversion.
	Format() channel.Format
	// Cost prices accesses for the placement optimizer.
	Cost() StoreCost
	// Fits reports whether the store can hold the volume.
	Fits(bytes int64) bool
	// Write persists a dataset under a name, replacing any previous
	// version.
	Write(name string, schema *data.Schema, recs []data.Record) error
	// Read loads a dataset.
	Read(name string) (*data.Schema, []data.Record, error)
	// Delete removes a dataset; deleting a missing dataset is an error.
	Delete(name string) error
	// List returns stored dataset names in unspecified order.
	List() []string
	// Stat reports a dataset's size.
	Stat(name string) (Stats, error)
}

// ErrNotFound is returned (wrapped) when a dataset does not exist.
var ErrNotFound = fmt.Errorf("storage: dataset not found")

// Transform is one storage atom: a self-contained transformation of
// data quanta applied during upload.
type Transform struct {
	Name  string
	Apply func(*data.Schema, []data.Record) (*data.Schema, []data.Record, error)
}

// Project returns a storage atom keeping only the named columns — the
// paper's canonical storage-atom example.
func Project(columns ...string) Transform {
	return Transform{
		Name: fmt.Sprintf("project%v", columns),
		Apply: func(s *data.Schema, recs []data.Record) (*data.Schema, []data.Record, error) {
			ns, err := s.Project(columns...)
			if err != nil {
				return nil, nil, err
			}
			idx := make([]int, len(columns))
			for i, c := range columns {
				idx[i] = s.IndexOf(c)
			}
			out := make([]data.Record, len(recs))
			for i, r := range recs {
				out[i] = r.Project(idx...)
			}
			return ns, out, nil
		},
	}
}

// FilterRows returns a storage atom dropping quanta failing the
// predicate at upload time.
func FilterRows(name string, pred func(data.Record) bool) Transform {
	return Transform{
		Name: "filter:" + name,
		Apply: func(s *data.Schema, recs []data.Record) (*data.Schema, []data.Record, error) {
			out := make([]data.Record, 0, len(recs))
			for _, r := range recs {
				if pred(r) {
					out = append(out, r)
				}
			}
			return s, out, nil
		},
	}
}

// SortBy returns a storage atom laying quanta out in column order —
// clustering for downstream range scans.
func SortBy(column string) Transform {
	return Transform{
		Name: "sort:" + column,
		Apply: func(s *data.Schema, recs []data.Record) (*data.Schema, []data.Record, error) {
			col := s.IndexOf(column)
			if col < 0 {
				return nil, nil, fmt.Errorf("storage: sort column %q not in %s", column, s)
			}
			out := data.CloneRecords(recs)
			data.SortRecordsBy(out, func(r data.Record) data.Value { return r.Field(col) })
			return s, out, nil
		},
	}
}

// TransformationPlan is a Cartilage-style upload pipeline: the ordered
// storage atoms applied to raw data as it enters a store.
type TransformationPlan struct {
	Steps []Transform
}

// Run applies the plan's atoms in order.
func (p *TransformationPlan) Run(s *data.Schema, recs []data.Record) (*data.Schema, []data.Record, error) {
	if p == nil {
		return s, recs, nil
	}
	var err error
	for _, step := range p.Steps {
		s, recs, err = step.Apply(s, recs)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: transformation %q: %w", step.Name, err)
		}
	}
	return s, recs, nil
}

// String lists the plan's atoms.
func (p *TransformationPlan) String() string {
	if p == nil || len(p.Steps) == 0 {
		return "identity"
	}
	out := ""
	for i, s := range p.Steps {
		if i > 0 {
			out += " → "
		}
		out += s.Name
	}
	return out
}
