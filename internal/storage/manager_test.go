package storage_test

import (
	"errors"
	"testing"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/data"
	"rheem/internal/storage"
	"rheem/internal/storage/csvstore"
	"rheem/internal/storage/dfs"
	"rheem/internal/storage/memstore"
)

func newManager(t *testing.T, memCap int64) (*storage.Manager, *memstore.Store) {
	t.Helper()
	m := storage.NewManager(1<<20, nil)
	mem := memstore.New(memCap)
	if err := m.Register(mem); err != nil {
		t.Fatal(err)
	}
	cs, err := csvstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(cs); err != nil {
		t.Fatal(err)
	}
	ds, err := dfs.New(t.TempDir(), dfs.Config{BlockRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(ds); err != nil {
		t.Fatal(err)
	}
	return m, mem
}

func TestManagerPutGetRoundTrip(t *testing.T) {
	m, _ := newManager(t, 0)
	schema, recs := taxSample(50)
	pl, err := m.Put(storage.PutRequest{Dataset: "tax", Schema: schema, Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Store == "" {
		t.Error("no placement store")
	}
	gotSchema, gotRecs, err := m.Get("tax")
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.Spec() != schema.Spec() || len(gotRecs) != 50 {
		t.Errorf("round trip: %s, %d records", gotSchema, len(gotRecs))
	}
	if where, ok := m.Where("tax"); !ok || where != pl.Store {
		t.Errorf("Where = %s, %v", where, ok)
	}
}

func TestPlacementPrefersMemoryForHotSmallData(t *testing.T) {
	m, _ := newManager(t, 1<<30)
	schema, recs := taxSample(100)
	pl, err := m.Put(storage.PutRequest{
		Dataset: "hot", Schema: schema, Records: recs, ExpectedReads: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Store != memstore.ID {
		t.Errorf("hot small dataset placed on %s (%s)", pl.Store, pl.Why)
	}
}

func TestPlacementOverflowsBoundedMemory(t *testing.T) {
	m, _ := newManager(t, 10) // 10-byte memstore: nothing fits
	schema, recs := taxSample(20000)
	pl, err := m.Put(storage.PutRequest{Dataset: "big", Schema: schema, Records: recs})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Store == memstore.ID {
		t.Error("oversized dataset placed in bounded memory")
	}
	// At megabytes, DFS's per-byte advantage beats CSV's lower fixed
	// costs, so the spill lands on DFS.
	if pl.Store != dfs.ID {
		t.Errorf("spill went to %s, want dfs (%s)", pl.Store, pl.Why)
	}
	// A tiny spill, by contrast, goes to CSV: fixed costs dominate.
	schemaS, recsS := taxSample(10)
	plS, err := m.Put(storage.PutRequest{Dataset: "small", Schema: schemaS, Records: recsS})
	if err != nil {
		t.Fatal(err)
	}
	if plS.Store != csvstore.ID {
		t.Errorf("tiny spill went to %s, want csv (%s)", plS.Store, plS.Why)
	}
}

func TestPlacementHonoursPreferredFormat(t *testing.T) {
	// With conversions priced, a consumer preferring DFSFile should
	// pull placement toward the DFS store even though memory reads are
	// cheaper.
	conv := func(from, to channel.Format, bytes int64) (time.Duration, bool) {
		if from == to {
			return 0, true
		}
		return time.Duration(bytes) * time.Microsecond, true // brutal conversion cost
	}
	m := storage.NewManager(0, conv)
	if err := m.Register(memstore.New(0)); err != nil {
		t.Fatal(err)
	}
	ds, err := dfs.New(t.TempDir(), dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(ds); err != nil {
		t.Fatal(err)
	}
	schema, recs := taxSample(200)
	pl, err := m.Put(storage.PutRequest{
		Dataset: "d", Schema: schema, Records: recs,
		ExpectedReads: 50, PreferFormat: channel.DFSFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Store != dfs.ID {
		t.Errorf("format-preferring placement chose %s (%s)", pl.Store, pl.Why)
	}
}

func TestPinnedPlacement(t *testing.T) {
	m, _ := newManager(t, 1<<30)
	schema, recs := taxSample(10)
	pl, err := m.Put(storage.PutRequest{Dataset: "p", Schema: schema, Records: recs, Pin: csvstore.ID})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Store != csvstore.ID || pl.Why != "pinned" {
		t.Errorf("pin ignored: %+v", pl)
	}
	if _, err := m.Put(storage.PutRequest{Dataset: "q", Schema: schema, Records: recs, Pin: "ghost"}); err == nil {
		t.Error("pin to unknown store accepted")
	}
}

func TestTransformationPlanAppliedOnUpload(t *testing.T) {
	m, _ := newManager(t, 1<<30)
	schema, recs := taxSample(100)
	tp := &storage.TransformationPlan{Steps: []storage.Transform{
		storage.FilterRows("highEarners", func(r data.Record) bool {
			return r.Field(7).Float() > 100000
		}),
		storage.Project("zip", "city", "salary"),
		storage.SortBy("salary"),
	}}
	pl, err := m.Put(storage.PutRequest{Dataset: "t", Schema: schema, Records: recs, Transform: tp})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Transform == "identity" {
		t.Error("transformation plan not recorded")
	}
	gotSchema, gotRecs, err := m.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.Len() != 3 || gotSchema.IndexOf("salary") != 2 {
		t.Errorf("projected schema = %s", gotSchema)
	}
	for i, r := range gotRecs {
		if r.Field(2).Float() <= 100000 {
			t.Errorf("filter atom not applied: %s", r)
		}
		if i > 0 && gotRecs[i-1].Field(2).Float() > r.Field(2).Float() {
			t.Error("sort atom not applied")
		}
	}
	if len(gotRecs) == 0 || len(gotRecs) == 100 {
		t.Errorf("filter kept %d records", len(gotRecs))
	}
}

func TestTransformErrorPropagates(t *testing.T) {
	m, _ := newManager(t, 0)
	schema, recs := taxSample(5)
	tp := &storage.TransformationPlan{Steps: []storage.Transform{storage.Project("nonexistent")}}
	if _, err := m.Put(storage.PutRequest{Dataset: "x", Schema: schema, Records: recs, Transform: tp}); err == nil {
		t.Error("bad transformation accepted")
	}
}

func TestHotBufferServesRepeatReads(t *testing.T) {
	m, _ := newManager(t, 1<<30)
	schema, recs := taxSample(50)
	if _, err := m.Put(storage.PutRequest{Dataset: "h", Schema: schema, Records: recs}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := m.Get("h"); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, bytes := m.HotBuffer().Stats()
	if hits != 4 || misses != 1 {
		t.Errorf("hot buffer hits=%d misses=%d", hits, misses)
	}
	if bytes <= 0 {
		t.Error("hot buffer empty after reads")
	}
	// Overwrite invalidates.
	if _, err := m.Put(storage.PutRequest{Dataset: "h", Schema: schema, Records: recs[:1]}); err != nil {
		t.Fatal(err)
	}
	_, got, _ := m.Get("h")
	if len(got) != 1 {
		t.Errorf("stale hot buffer served %d records", len(got))
	}
}

func TestManagerMove(t *testing.T) {
	m, _ := newManager(t, 1<<30)
	schema, recs := taxSample(30)
	if _, err := m.Put(storage.PutRequest{Dataset: "mv", Schema: schema, Records: recs, Pin: memstore.ID}); err != nil {
		t.Fatal(err)
	}
	if err := m.Move("mv", dfs.ID); err != nil {
		t.Fatal(err)
	}
	if where, _ := m.Where("mv"); where != dfs.ID {
		t.Errorf("Where after move = %s", where)
	}
	_, got, err := m.Get("mv")
	if err != nil || len(got) != 30 {
		t.Fatalf("read after move: %d, %v", len(got), err)
	}
	// Moving to the same store is a no-op; unknown store errors.
	if err := m.Move("mv", dfs.ID); err != nil {
		t.Errorf("same-store move: %v", err)
	}
	if err := m.Move("mv", "ghost"); err == nil {
		t.Error("move to unknown store accepted")
	}
}

func TestManagerDelete(t *testing.T) {
	m, _ := newManager(t, 0)
	schema, recs := taxSample(5)
	if _, err := m.Put(storage.PutRequest{Dataset: "d", Schema: schema, Records: recs}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("d"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Get("d"); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
	if err := m.Delete("d"); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestManagerDuplicateStore(t *testing.T) {
	m := storage.NewManager(0, nil)
	if err := m.Register(memstore.New(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(memstore.New(0)); err == nil {
		t.Error("duplicate store accepted")
	}
	if len(m.Stores()) != 1 {
		t.Error("Stores wrong")
	}
}
