package storage_test

import (
	"testing"

	"rheem"
	"rheem/internal/core/channel"
	"rheem/internal/data/datagen"
	"rheem/internal/storage"
	"rheem/internal/storage/dfs"
	"rheem/internal/storage/memstore"
)

// TestStoreChannelsFeedClusterFormat proves the unified-abstraction
// path: a DFS-resident dataset reaches the Spark simulator's
// partitioned format through the conversion graph, with the store's
// read costs priced into the chain.
func TestStoreChannelsFeedClusterFormat(t *testing.T) {
	ctx, err := rheem.NewContext(rheem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := ctx.Registry().Channels()

	m := storage.NewManager(0, reg.PathCost)
	d, err := dfs.New(t.TempDir(), dfs.Config{BlockRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Register(d); err != nil {
		t.Fatal(err)
	}
	storage.ConnectChannels(reg, d)

	recs := datagen.Tax(datagen.TaxConfig{N: 500, Zips: 10, ErrorRate: 0, Seed: 1})
	if _, err := m.Put(storage.PutRequest{Dataset: "t", Schema: datagen.TaxSchema, Records: recs}); err != nil {
		t.Fatal(err)
	}

	// A native-format channel for the stored dataset…
	ch, err := m.Channel("t")
	if err != nil {
		t.Fatal(err)
	}
	if ch.Format != channel.DFSFile || ch.Records != 500 {
		t.Fatalf("channel = %+v", ch)
	}
	// …converts to the cluster's partitioned format via the hub.
	out, cost, steps, err := reg.Convert(ch, channel.Partitioned)
	if err != nil {
		t.Fatal(err)
	}
	if out.Format != channel.Partitioned || steps < 2 {
		t.Errorf("format %s after %d steps", out.Format, steps)
	}
	if cost <= 0 {
		t.Error("movement not priced")
	}
	if out.Records != 500 {
		t.Errorf("records = %d", out.Records)
	}

	// And the reverse: collection → DFS writes a real dataset.
	coll := channel.NewCollection(recs[:50])
	back, _, _, err := reg.Convert(coll, channel.DFSFile)
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := back.Payload.(storage.Ref)
	if !ok {
		t.Fatalf("payload %T", back.Payload)
	}
	_, stored, err := ref.Store.Read(ref.Dataset)
	if err != nil || len(stored) != 50 {
		t.Errorf("written dataset: %d records, %v", len(stored), err)
	}
}

func TestManagerChannelCollectionStore(t *testing.T) {
	// A memstore-resident dataset surfaces directly as a Collection
	// channel — no conversion needed.
	m := storage.NewManager(0, nil)
	if err := m.Register(memstore.New(0)); err != nil {
		t.Fatal(err)
	}
	recs := datagen.Tax(datagen.TaxConfig{N: 20, Zips: 5, ErrorRate: 0, Seed: 2})
	if _, err := m.Put(storage.PutRequest{Dataset: "d", Schema: datagen.TaxSchema, Records: recs}); err != nil {
		t.Fatal(err)
	}
	ch, err := m.Channel("d")
	if err != nil {
		t.Fatal(err)
	}
	if ch.Format != channel.Collection {
		t.Fatalf("format %s", ch.Format)
	}
	got, err := ch.AsCollection()
	if err != nil || len(got) != 20 {
		t.Errorf("%d records, %v", len(got), err)
	}
	if _, err := m.Channel("ghost"); err == nil {
		t.Error("channel for missing dataset accepted")
	}
}
