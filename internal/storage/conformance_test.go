package storage_test

import (
	"errors"
	"testing"

	"rheem/internal/data"
	"rheem/internal/data/datagen"
	"rheem/internal/storage"
	"rheem/internal/storage/csvstore"
	"rheem/internal/storage/dfs"
	"rheem/internal/storage/memstore"
)

// eachStore runs a conformance check against every bundled store.
func eachStore(t *testing.T, check func(t *testing.T, s storage.Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { check(t, memstore.New(0)) })
	t.Run("csv", func(t *testing.T) {
		s, err := csvstore.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		check(t, s)
	})
	t.Run("dfs", func(t *testing.T) {
		s, err := dfs.New(t.TempDir(), dfs.Config{BlockRecords: 16})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s)
	})
}

func taxSample(n int) (*data.Schema, []data.Record) {
	return datagen.TaxSchema, datagen.Tax(datagen.TaxConfig{N: n, Zips: 10, ErrorRate: 0.1, Seed: 4})
}

func TestStoreRoundTrip(t *testing.T) {
	eachStore(t, func(t *testing.T, s storage.Store) {
		schema, recs := taxSample(100)
		if err := s.Write("tax", schema, recs); err != nil {
			t.Fatal(err)
		}
		gotSchema, gotRecs, err := s.Read("tax")
		if err != nil {
			t.Fatal(err)
		}
		if gotSchema.Spec() != schema.Spec() {
			t.Errorf("schema %s vs %s", gotSchema, schema)
		}
		if len(gotRecs) != len(recs) {
			t.Fatalf("%d records back, want %d", len(gotRecs), len(recs))
		}
		for i := range recs {
			if !data.EqualRecords(gotRecs[i], recs[i]) {
				t.Fatalf("record %d mismatch: %s vs %s", i, gotRecs[i], recs[i])
			}
		}
	})
}

func TestStoreOverwriteListDelete(t *testing.T) {
	eachStore(t, func(t *testing.T, s storage.Store) {
		schema, recs := taxSample(20)
		if err := s.Write("a", schema, recs); err != nil {
			t.Fatal(err)
		}
		if err := s.Write("a", schema, recs[:5]); err != nil {
			t.Fatal(err)
		}
		_, got, err := s.Read("a")
		if err != nil || len(got) != 5 {
			t.Fatalf("overwrite: %d records, err %v", len(got), err)
		}
		if err := s.Write("b", schema, recs); err != nil {
			t.Fatal(err)
		}
		if got := len(s.List()); got != 2 {
			t.Errorf("List = %d entries", got)
		}
		st, err := s.Stat("a")
		if err != nil || st.Records != 5 || st.Bytes <= 0 {
			t.Errorf("Stat = %+v, %v", st, err)
		}
		if err := s.Delete("a"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Read("a"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("read after delete: %v", err)
		}
		if err := s.Delete("a"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("double delete: %v", err)
		}
	})
}

func TestStoreMissingDataset(t *testing.T) {
	eachStore(t, func(t *testing.T, s storage.Store) {
		if _, _, err := s.Read("ghost"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("Read(ghost) = %v", err)
		}
		if _, err := s.Stat("ghost"); !errors.Is(err, storage.ErrNotFound) {
			t.Errorf("Stat(ghost) = %v", err)
		}
	})
}

func TestStoreEmptyDataset(t *testing.T) {
	eachStore(t, func(t *testing.T, s storage.Store) {
		schema, _ := taxSample(0)
		if err := s.Write("empty", schema, nil); err != nil {
			t.Fatal(err)
		}
		_, got, err := s.Read("empty")
		if err != nil || len(got) != 0 {
			t.Errorf("empty read: %d records, %v", len(got), err)
		}
	})
}

func TestStoreCostsOrdered(t *testing.T) {
	// The placement optimizer's premise: mem < dfs < csv per byte.
	mem := memstore.New(0).Cost()
	csvS, _ := csvstore.New(t.TempDir())
	dfsS, _ := dfs.New(t.TempDir(), dfs.Config{})
	const mb = int64(1 << 20)
	if !(mem.ReadCost(mb) < dfsS.Cost().ReadCost(mb) && dfsS.Cost().ReadCost(mb) < csvS.Cost().ReadCost(mb)) {
		t.Errorf("per-byte read costs not ordered: mem=%v dfs=%v csv=%v",
			mem.ReadCost(mb), dfsS.Cost().ReadCost(mb), csvS.Cost().ReadCost(mb))
	}
}
