package dfs

import (
	"strings"
	"testing"

	"rheem/internal/data"
	"rheem/internal/data/datagen"
)

func newStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var wordSchema = data.MustSchema(data.Field{Name: "w", Type: data.KindString})

func TestBlockLayout(t *testing.T) {
	s := newStore(t, Config{BlockRecords: 10, Nodes: 4, Replication: 2})
	recs := datagen.Words(35, 1)
	if err := s.Write("words", wordSchema, recs); err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Blocks("words")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 { // ceil(35/10)
		t.Fatalf("%d blocks, want 4", len(blocks))
	}
	for i, replicas := range blocks {
		if len(replicas) != 2 {
			t.Errorf("block %d has %d replicas", i, len(replicas))
		}
		if len(replicas) == 2 && replicas[0] == replicas[1] {
			t.Errorf("block %d replicas on the same node", i)
		}
	}
	st, err := s.Stat("words")
	if err != nil || st.Records != 35 || st.Bytes <= 0 {
		t.Errorf("Stat = %+v, %v", st, err)
	}
}

func TestReadSurvivesSingleNodeFailure(t *testing.T) {
	s := newStore(t, Config{BlockRecords: 8, Nodes: 4, Replication: 2})
	recs := datagen.Words(50, 2)
	if err := s.Write("w", wordSchema, recs); err != nil {
		t.Fatal(err)
	}
	s.RemoveNode(0)
	defer s.RestoreNode(0)
	_, got, err := s.Read("w")
	if err != nil {
		t.Fatalf("read with one dead node: %v", err)
	}
	if len(got) != 50 {
		t.Errorf("%d records after node failure", len(got))
	}
}

func TestReadFailsWhenAllReplicasDown(t *testing.T) {
	s := newStore(t, Config{BlockRecords: 8, Nodes: 2, Replication: 2})
	recs := datagen.Words(10, 3)
	if err := s.Write("w", wordSchema, recs); err != nil {
		t.Fatal(err)
	}
	s.RemoveNode(0)
	s.RemoveNode(1)
	if _, _, err := s.Read("w"); err == nil {
		t.Error("read succeeded with every replica down")
	}
	s.RestoreNode(0)
	if _, _, err := s.Read("w"); err != nil {
		t.Errorf("read after restore: %v", err)
	}
}

func TestWriteRequiresEnoughLiveNodes(t *testing.T) {
	s := newStore(t, Config{Nodes: 2, Replication: 2})
	s.RemoveNode(1)
	if err := s.Write("w", wordSchema, datagen.Words(5, 4)); err == nil {
		t.Error("write succeeded without enough live nodes")
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	s := newStore(t, Config{Nodes: 2, Replication: 5, BlockRecords: 100})
	if err := s.Write("w", wordSchema, datagen.Words(5, 5)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := s.Blocks("w")
	if len(blocks[0]) != 2 {
		t.Errorf("replication %d, want capped at 2", len(blocks[0]))
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s := newStore(t, Config{})
	for _, bad := range []string{"", "a/b", `a\b`, "a..b"} {
		if err := s.Write(bad, wordSchema, nil); err == nil {
			t.Errorf("Write(%q) accepted", bad)
		}
		if !strings.Contains(bad, "..") && bad != "" {
			continue
		}
		if _, _, err := s.Read(bad); err == nil {
			t.Errorf("Read(%q) accepted", bad)
		}
	}
}

func TestBlockSpreadAcrossNodes(t *testing.T) {
	// With many blocks, every node should hold some replicas.
	s := newStore(t, Config{BlockRecords: 4, Nodes: 4, Replication: 2})
	if err := s.Write("w", wordSchema, datagen.Words(100, 6)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := s.Blocks("w")
	used := map[int]bool{}
	for _, replicas := range blocks {
		for _, n := range replicas {
			used[n] = true
		}
	}
	if len(used) != 4 {
		t.Errorf("blocks spread over %d of 4 nodes", len(used))
	}
}
