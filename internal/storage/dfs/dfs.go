// Package dfs is a simulated distributed filesystem — the
// reproduction's HDFS substitute (DESIGN.md §3). Datasets are split
// into fixed-size blocks in the compact binary record format, each
// block replicated onto a configurable number of simulated datanodes
// (subdirectories of a local root). Reads reassemble the dataset from
// one replica per block, preferring distinct nodes round-robin the way
// an HDFS client spreads load.
//
// The point of simulating blocks and replicas rather than writing one
// flat file is that the storage abstraction's costs and the Spark
// simulator's "cluster-resident input" story stay honest: a DFS
// dataset has a real block layout, block reads have per-block fixed
// costs, and losing a node (RemoveNode) really degrades datasets whose
// blocks had replicas only there.
package dfs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"rheem/internal/core/channel"
	"rheem/internal/data"
	"rheem/internal/storage"
)

// ID is the store identifier.
const ID storage.StoreID = "dfs"

// Config shapes the simulated cluster.
type Config struct {
	// BlockRecords is the number of records per block. Default 4096.
	BlockRecords int
	// Nodes is the number of simulated datanodes. Default 4.
	Nodes int
	// Replication is the number of replicas per block, capped at
	// Nodes. Default 2.
	Replication int
}

func (c *Config) defaults() {
	if c.BlockRecords <= 0 {
		c.BlockRecords = 4096
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > c.Nodes {
		c.Replication = c.Nodes
	}
}

// manifest is the namenode metadata for one dataset.
type manifest struct {
	Schema  string    `json:"schema"`
	Records int64     `json:"records"`
	Bytes   int64     `json:"bytes"`
	Blocks  []blockMD `json:"blocks"`
}

type blockMD struct {
	ID       int   `json:"id"`
	Records  int   `json:"records"`
	Bytes    int64 `json:"bytes"`
	Replicas []int `json:"replicas"` // node indices
}

// Store is the simulated DFS.
type Store struct {
	mu     sync.Mutex
	root   string
	cfg    Config
	seq    int
	downed map[int]bool
}

// New returns a DFS rooted at dir, creating node directories.
func New(dir string, cfg Config) (*Store, error) {
	cfg.defaults()
	s := &Store{root: dir, cfg: cfg, downed: map[int]bool{}}
	for n := 0; n < cfg.Nodes; n++ {
		if err := os.MkdirAll(s.nodeDir(n), 0o755); err != nil {
			return nil, fmt.Errorf("dfs: %w", err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "namenode"), 0o755); err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	return s, nil
}

func (s *Store) nodeDir(n int) string {
	return filepath.Join(s.root, fmt.Sprintf("node%02d", n))
}

func (s *Store) manifestPath(name string) string {
	return filepath.Join(s.root, "namenode", name+".json")
}

func (s *Store) blockPath(node int, name string, block int) string {
	return filepath.Join(s.nodeDir(node), fmt.Sprintf("%s.blk%06d", name, block))
}

// ID implements storage.Store.
func (s *Store) ID() storage.StoreID { return ID }

// Format implements storage.Store.
func (s *Store) Format() channel.Format { return channel.DFSFile }

// Cost implements storage.Store: cheap per byte (parallel disks), with
// noticeable fixed block/replica latencies.
func (s *Store) Cost() storage.StoreCost {
	return storage.StoreCost{
		ReadFixed: 4e6, WriteFixed: 8e6, // namenode round trips
		ReadPerByteNS: 1, WritePerByteNS: 2,
	}
}

// Fits implements storage.Store.
func (s *Store) Fits(int64) bool { return true }

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
		return fmt.Errorf("dfs: invalid dataset name %q", name)
	}
	return nil
}

// Write implements storage.Store: split into blocks, replicate each
// block onto Replication distinct live nodes (rotating start node),
// then commit the manifest.
func (s *Store) Write(name string, schema *data.Schema, recs []data.Record) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.liveNodes()
	if len(live) < s.cfg.Replication {
		return fmt.Errorf("dfs: only %d live nodes for replication %d", len(live), s.cfg.Replication)
	}
	md := manifest{Schema: schema.Spec(), Records: int64(len(recs))}
	for start, blockID := 0, 0; start < len(recs) || blockID == 0; blockID++ {
		end := start + s.cfg.BlockRecords
		if end > len(recs) {
			end = len(recs)
		}
		var buf bytes.Buffer
		n, err := data.WriteBinary(&buf, recs[start:end])
		if err != nil {
			return err
		}
		replicas := make([]int, 0, s.cfg.Replication)
		for r := 0; r < s.cfg.Replication; r++ {
			node := live[(s.seq+blockID+r)%len(live)]
			replicas = append(replicas, node)
			if err := os.WriteFile(s.blockPath(node, name, blockID), buf.Bytes(), 0o644); err != nil {
				return fmt.Errorf("dfs: block write: %w", err)
			}
		}
		md.Blocks = append(md.Blocks, blockMD{ID: blockID, Records: end - start, Bytes: n, Replicas: replicas})
		md.Bytes += n
		start = end
		if start >= len(recs) {
			break
		}
	}
	s.seq++
	raw, err := json.Marshal(md)
	if err != nil {
		return fmt.Errorf("dfs: manifest: %w", err)
	}
	return os.WriteFile(s.manifestPath(name), raw, 0o644)
}

func (s *Store) liveNodes() []int {
	var out []int
	for n := 0; n < s.cfg.Nodes; n++ {
		if !s.downed[n] {
			out = append(out, n)
		}
	}
	return out
}

func (s *Store) loadManifest(name string) (*manifest, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(s.manifestPath(name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %q in dfs", storage.ErrNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("dfs: %w", err)
	}
	var md manifest
	if err := json.Unmarshal(raw, &md); err != nil {
		return nil, fmt.Errorf("dfs: manifest: %w", err)
	}
	return &md, nil
}

// Read implements storage.Store: for each block, read the first live
// replica.
func (s *Store) Read(name string) (*data.Schema, []data.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	md, err := s.loadManifest(name)
	if err != nil {
		return nil, nil, err
	}
	schema, err := data.ParseSchema(md.Schema)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]data.Record, 0, md.Records)
	for _, b := range md.Blocks {
		var blockRecs []data.Record
		var lastErr error
		found := false
		for _, node := range b.Replicas {
			if s.downed[node] {
				continue
			}
			raw, err := os.ReadFile(s.blockPath(node, name, b.ID))
			if err != nil {
				lastErr = err
				continue
			}
			blockRecs, err = data.ReadBinary(bytes.NewReader(raw))
			if err != nil {
				lastErr = err
				continue
			}
			found = true
			break
		}
		if !found {
			return nil, nil, fmt.Errorf("dfs: block %d of %q unavailable on all replicas: %v", b.ID, name, lastErr)
		}
		recs = append(recs, blockRecs...)
	}
	return schema, recs, nil
}

// Delete implements storage.Store: drop all replicas and the manifest.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	md, err := s.loadManifest(name)
	if err != nil {
		return err
	}
	for _, b := range md.Blocks {
		for _, node := range b.Replicas {
			os.Remove(s.blockPath(node, name, b.ID))
		}
	}
	return os.Remove(s.manifestPath(name))
}

// List implements storage.Store.
func (s *Store) List() []string {
	entries, err := os.ReadDir(filepath.Join(s.root, "namenode"))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			out = append(out, n)
		}
	}
	return out
}

// Stat implements storage.Store from the manifest alone.
func (s *Store) Stat(name string) (storage.Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	md, err := s.loadManifest(name)
	if err != nil {
		return storage.Stats{}, err
	}
	return storage.Stats{Records: md.Records, Bytes: md.Bytes}, nil
}

// Blocks reports a dataset's block layout (id, records, replica
// nodes) for tests and diagnostics.
func (s *Store) Blocks(name string) ([][]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	md, err := s.loadManifest(name)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(md.Blocks))
	for i, b := range md.Blocks {
		out[i] = append([]int(nil), b.Replicas...)
	}
	return out, nil
}

// RemoveNode marks a datanode as failed: its replicas become
// unreadable until RestoreNode.
func (s *Store) RemoveNode(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.downed[n] = true
}

// RestoreNode brings a failed datanode back.
func (s *Store) RestoreNode(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.downed, n)
}
