// Package memstore is the in-memory execution store: datasets live as
// decoded record slices in driver memory. It is the fastest store by
// far but capacity-bounded, which is what forces the placement
// optimizer to send big datasets elsewhere.
package memstore

import (
	"fmt"
	"sync"

	"rheem/internal/core/channel"
	"rheem/internal/data"
	"rheem/internal/storage"
)

// ID is the store identifier.
const ID storage.StoreID = "mem"

// Store keeps datasets in memory.
type Store struct {
	mu       sync.RWMutex
	capBytes int64
	curBytes int64
	objects  map[string]object
}

type object struct {
	schema *data.Schema
	recs   []data.Record
	bytes  int64
}

// New returns a memory store bounded to capBytes (≤0 = unbounded).
func New(capBytes int64) *Store {
	return &Store{capBytes: capBytes, objects: make(map[string]object)}
}

// ID implements storage.Store.
func (s *Store) ID() storage.StoreID { return ID }

// Format implements storage.Store: records are already in the hub
// format.
func (s *Store) Format() channel.Format { return channel.Collection }

// Cost implements storage.Store: memory accesses are essentially free
// compared to the other stores.
func (s *Store) Cost() storage.StoreCost {
	return storage.StoreCost{ReadPerByteNS: 0.05, WritePerByteNS: 0.1}
}

// Fits implements storage.Store against the capacity bound.
func (s *Store) Fits(bytes int64) bool {
	if s.capBytes <= 0 {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.curBytes+bytes <= s.capBytes
}

// Write implements storage.Store.
func (s *Store) Write(name string, schema *data.Schema, recs []data.Record) error {
	bytes := data.TotalBytes(recs)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.objects[name]; ok {
		s.curBytes -= old.bytes
	}
	if s.capBytes > 0 && s.curBytes+bytes > s.capBytes {
		return fmt.Errorf("memstore: %q (%d bytes) exceeds capacity", name, bytes)
	}
	s.objects[name] = object{schema: schema, recs: data.CloneRecords(recs), bytes: bytes}
	s.curBytes += bytes
	return nil
}

// Read implements storage.Store.
func (s *Store) Read(name string) (*data.Schema, []data.Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q in memstore", storage.ErrNotFound, name)
	}
	return o.schema, data.CloneRecords(o.recs), nil
}

// Delete implements storage.Store.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[name]
	if !ok {
		return fmt.Errorf("%w: %q in memstore", storage.ErrNotFound, name)
	}
	s.curBytes -= o.bytes
	delete(s.objects, name)
	return nil
}

// List implements storage.Store.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.objects))
	for n := range s.objects {
		out = append(out, n)
	}
	return out
}

// Stat implements storage.Store.
func (s *Store) Stat(name string) (storage.Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.objects[name]
	if !ok {
		return storage.Stats{}, fmt.Errorf("%w: %q in memstore", storage.ErrNotFound, name)
	}
	return storage.Stats{Records: int64(len(o.recs)), Bytes: o.bytes}, nil
}
