package memstore

import (
	"testing"

	"rheem/internal/core/channel"
	"rheem/internal/data"
)

func words(n int) []data.Record {
	out := make([]data.Record, n)
	for i := range out {
		out[i] = data.NewRecord(data.Str("wwwwwwwwwwwwwwww"))
	}
	return out
}

var schema = data.MustSchema(data.Field{Name: "w", Type: data.KindString})

func TestCapacityEnforced(t *testing.T) {
	one := data.TotalBytes(words(1))
	s := New(3 * one)
	if !s.Fits(2 * one) {
		t.Error("Fits(2) false on empty store")
	}
	if err := s.Write("a", schema, words(2)); err != nil {
		t.Fatal(err)
	}
	if s.Fits(2 * one) {
		t.Error("Fits(2) true with 1 slot left")
	}
	if err := s.Write("b", schema, words(2)); err == nil {
		t.Error("over-capacity write accepted")
	}
	// Overwriting frees the old copy first.
	if err := s.Write("a", schema, words(3)); err != nil {
		t.Errorf("overwrite within capacity rejected: %v", err)
	}
}

func TestUnboundedStore(t *testing.T) {
	s := New(0)
	if !s.Fits(1 << 40) {
		t.Error("unbounded store refused a petabyte")
	}
}

func TestReadIsolation(t *testing.T) {
	s := New(0)
	if err := s.Write("a", schema, words(2)); err != nil {
		t.Fatal(err)
	}
	_, recs, err := s.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	recs[0] = data.NewRecord(data.Str("mutated"))
	_, again, _ := s.Read("a")
	if again[0].Field(0).Str() == "mutated" {
		t.Error("Read exposed internal storage")
	}
}

func TestFormatAndCost(t *testing.T) {
	s := New(0)
	if s.Format() != channel.Collection {
		t.Error("format wrong")
	}
	if s.Cost().ReadCost(1<<20) >= s.Cost().WriteCost(1<<20)*10 {
		t.Error("read cost implausible")
	}
	if s.ID() != ID {
		t.Error("id wrong")
	}
}

func TestDeleteFreesCapacity(t *testing.T) {
	one := data.TotalBytes(words(1))
	s := New(2 * one)
	if err := s.Write("a", schema, words(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("b", schema, words(2)); err != nil {
		t.Errorf("capacity not freed by delete: %v", err)
	}
}
