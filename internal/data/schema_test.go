package data

import "testing"

func taxSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{"id", KindInt},
		Field{"zip", KindString},
		Field{"city", KindString},
		Field{"salary", KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewSchema(Field{"a", KindInt}, Field{"a", KindInt}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewSchema(Field{"", KindInt}); err == nil {
		t.Error("empty field name accepted")
	}
}

func TestSchemaIndexOfAndField(t *testing.T) {
	s := taxSchema(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.IndexOf("city") != 2 {
		t.Error("IndexOf(city) wrong")
	}
	if s.IndexOf("nope") != -1 {
		t.Error("IndexOf(nope) should be -1")
	}
	if s.Field(3).Type != KindFloat {
		t.Error("Field(3) type wrong")
	}
	fs := s.Fields()
	fs[0].Name = "mutated"
	if s.Field(0).Name != "id" {
		t.Error("Fields() exposed internal slice")
	}
}

func TestSchemaProject(t *testing.T) {
	s := taxSchema(t)
	p, err := s.Project("city", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Field(0).Name != "city" || p.Field(1).Name != "id" {
		t.Error("Project wrong")
	}
	if _, err := s.Project("ghost"); err == nil {
		t.Error("Project of missing field accepted")
	}
}

func TestSchemaConcatRenamesClashes(t *testing.T) {
	s := taxSchema(t)
	o := MustSchema(Field{"id", KindInt}, Field{"rate", KindFloat})
	c, err := s.Concat(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.IndexOf("r_id") != 4 || c.IndexOf("rate") != 5 {
		t.Errorf("Concat schema = %s", c)
	}
}

func TestSchemaValidate(t *testing.T) {
	s := taxSchema(t)
	good := NewRecord(Int(1), Str("10001"), Str("NYC"), Float(55000))
	if err := s.Validate(good); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	withNull := NewRecord(Int(1), Null(), Str("NYC"), Float(1))
	if err := s.Validate(withNull); err != nil {
		t.Errorf("null field rejected: %v", err)
	}
	if err := s.Validate(NewRecord(Int(1))); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := NewRecord(Str("x"), Str("10001"), Str("NYC"), Float(1))
	if err := s.Validate(bad); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSchemaSpecRoundTrip(t *testing.T) {
	s := taxSchema(t)
	parsed, err := ParseSchema(s.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Spec() != s.Spec() {
		t.Errorf("spec round trip: %q vs %q", parsed.Spec(), s.Spec())
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, bad := range []string{"", "name", "a:frob", "a:int,,b:int"} {
		if _, err := ParseSchema(bad); err == nil {
			t.Errorf("ParseSchema(%q) accepted", bad)
		}
	}
	s, err := ParseSchema(" a:int , b : string ")
	if err != nil {
		t.Fatalf("whitespace spec rejected: %v", err)
	}
	if s.Field(1).Name != "b" || s.Field(1).Type != KindString {
		t.Error("whitespace spec parsed wrong")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema on bad fields did not panic")
		}
	}()
	MustSchema(Field{"a", KindInt}, Field{"a", KindInt})
}
