package data

import (
	"fmt"
	"strings"
)

// Field is one named, typed column of a schema.
type Field struct {
	Name string
	Type Kind
}

// Schema names and types the fields of a record stream. Schemas are
// advisory in RHEEM's UDF-centric model — logical operators may emit
// records of any shape — but sources, sinks, the relational platform and
// the declarative layer all carry schemas, and Validate lets plan
// construction fail fast on arity or type mismatches.
type Schema struct {
	fields []Field
	byName map[string]int
}

// NewSchema builds a schema from the given fields. Duplicate field names
// are rejected.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("data: schema field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("data: duplicate schema field %q", f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known field lists; it panics on
// error and is intended for package-level schema variables.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns field i.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the field list.
func (s *Schema) Fields() []Field {
	out := make([]Field, len(s.fields))
	copy(out, s.fields)
	return out
}

// IndexOf returns the position of the named field, or -1 if absent.
func (s *Schema) IndexOf(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Project returns a new schema containing the named fields, in order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	fields := make([]Field, len(names))
	for i, n := range names {
		j := s.IndexOf(n)
		if j < 0 {
			return nil, fmt.Errorf("data: project: no field %q in %s", n, s)
		}
		fields[i] = s.fields[j]
	}
	return NewSchema(fields...)
}

// Concat returns the join-output schema of two schemas. Name clashes are
// disambiguated by prefixing the right-hand field with "r_", matching
// the convention of the relational platform's join operators.
func (s *Schema) Concat(o *Schema) (*Schema, error) {
	fields := make([]Field, 0, len(s.fields)+len(o.fields))
	fields = append(fields, s.fields...)
	for _, f := range o.fields {
		if s.IndexOf(f.Name) >= 0 {
			f.Name = "r_" + f.Name
		}
		fields = append(fields, f)
	}
	return NewSchema(fields...)
}

// Validate checks that a record matches the schema's arity and that each
// non-null field has the declared kind.
func (s *Schema) Validate(r Record) error {
	if r.Len() != len(s.fields) {
		return fmt.Errorf("data: record arity %d does not match schema %s", r.Len(), s)
	}
	for i, f := range s.fields {
		v := r.Field(i)
		if v.IsNull() {
			continue
		}
		if v.Kind() != f.Type {
			return fmt.Errorf("data: field %q: got %s, schema says %s", f.Name, v.Kind(), f.Type)
		}
	}
	return nil
}

// String renders the schema as "name:type, ...".
func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, f := range s.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Name)
		sb.WriteByte(':')
		sb.WriteString(f.Type.String())
	}
	sb.WriteByte(']')
	return sb.String()
}

// ParseSchema parses the textual schema form "name:type,name:type,...",
// the format used by CSV headers and the cleaning CLI.
func ParseSchema(spec string) (*Schema, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("data: empty schema spec")
	}
	parts := strings.Split(spec, ",")
	fields := make([]Field, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		name, typ, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("data: schema field %q is not name:type", p)
		}
		k, err := ParseKind(strings.TrimSpace(typ))
		if err != nil {
			return nil, err
		}
		fields = append(fields, Field{Name: strings.TrimSpace(name), Type: k})
	}
	return NewSchema(fields...)
}

// Spec renders the schema in the form accepted by ParseSchema.
func (s *Schema) Spec() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.Name + ":" + f.Type.String()
	}
	return strings.Join(parts, ",")
}
