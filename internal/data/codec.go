package data

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
)

// This file implements the two wire formats data quanta travel in:
//
//   - CSV with a typed header, the human-facing format used by the
//     csvstore storage engine and the CLIs; and
//   - a compact binary format used by the simulated DFS blocks and by
//     the shuffle byte-accounting of the Spark simulator.
//
// Both round-trip every Value kind, including vectors.

// WriteCSV writes records as CSV preceded by a typed header line of the
// form "name:type,...". Null values serialise as empty cells.
func WriteCSV(w io.Writer, s *Schema, recs []Record) error {
	cw := csv.NewWriter(w)
	header := make([]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		header[i] = f.Name + ":" + f.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: write csv header: %w", err)
	}
	row := make([]string, s.Len())
	for _, r := range recs {
		if err := s.Validate(r); err != nil {
			return err
		}
		for i := 0; i < r.Len(); i++ {
			row[i] = r.Field(i).String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a typed-header CSV stream produced by WriteCSV and
// returns the schema and records.
func ReadCSV(r io.Reader) (*Schema, []Record, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("data: read csv header: %w", err)
	}
	fields := make([]Field, len(header))
	for i, h := range header {
		name, typ, ok := cutLast(h, ':')
		if !ok {
			return nil, nil, fmt.Errorf("data: csv header cell %q is not name:type", h)
		}
		k, err := ParseKind(typ)
		if err != nil {
			return nil, nil, err
		}
		fields[i] = Field{Name: name, Type: k}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("data: read csv row: %w", err)
		}
		vals := make([]Value, len(row))
		for i, cell := range row {
			v, err := ParseValue(cell, fields[i].Type)
			if err != nil {
				return nil, nil, err
			}
			vals[i] = v
		}
		recs = append(recs, NewRecord(vals...))
	}
	return schema, recs, nil
}

// cutLast splits s at the last occurrence of sep, so field names may
// themselves contain the separator.
func cutLast(s string, sep byte) (before, after string, found bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// Binary format: each record is a uvarint field count followed by
// fields; each field is a kind byte followed by a kind-specific payload.

// WriteBinary writes records in the compact binary format and returns
// the number of payload bytes written.
func WriteBinary(w io.Writer, recs []Record) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(recs))); err != nil {
		return cw.n, err
	}
	for _, r := range recs {
		if err := putUvarint(uint64(r.Len())); err != nil {
			return cw.n, err
		}
		for i := 0; i < r.Len(); i++ {
			v := r.Field(i)
			if _, err := cw.Write([]byte{byte(v.kind)}); err != nil {
				return cw.n, err
			}
			switch v.kind {
			case KindNull:
			case KindBool, KindInt:
				if err := putUvarint(zigzag(v.i)); err != nil {
					return cw.n, err
				}
			case KindFloat:
				if err := putUvarint(math.Float64bits(v.f)); err != nil {
					return cw.n, err
				}
			case KindString:
				if err := putUvarint(uint64(len(v.s))); err != nil {
					return cw.n, err
				}
				if _, err := io.WriteString(cw, v.s); err != nil {
					return cw.n, err
				}
			case KindVector:
				if err := putUvarint(uint64(len(v.vec))); err != nil {
					return cw.n, err
				}
				for _, f := range v.vec {
					if err := putUvarint(math.Float64bits(f)); err != nil {
						return cw.n, err
					}
				}
			default:
				return cw.n, fmt.Errorf("data: binary-encode unknown kind %d", v.kind)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadBinary reads a batch written by WriteBinary.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: binary record count: %w", err)
	}
	recs := make([]Record, 0, count)
	for rec := uint64(0); rec < count; rec++ {
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("data: binary arity: %w", err)
		}
		vals := make([]Value, arity)
		for i := range vals {
			kb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("data: binary kind: %w", err)
			}
			switch Kind(kb) {
			case KindNull:
				vals[i] = Null()
			case KindBool:
				u, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vals[i] = Bool(unzigzag(u) != 0)
			case KindInt:
				u, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vals[i] = Int(unzigzag(u))
			case KindFloat:
				u, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vals[i] = Float(math.Float64frombits(u))
			case KindString:
				n, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				b := make([]byte, n)
				if _, err := io.ReadFull(br, b); err != nil {
					return nil, err
				}
				vals[i] = Str(string(b))
			case KindVector:
				n, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vec := make([]float64, n)
				for j := range vec {
					u, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					vec[j] = math.Float64frombits(u)
				}
				vals[i] = Vec(vec)
			default:
				return nil, fmt.Errorf("data: binary-decode unknown kind %d", kb)
			}
		}
		recs = append(recs, NewRecord(vals...))
	}
	return recs, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
