package data

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
)

// This file implements the two wire formats data quanta travel in:
//
//   - CSV with a typed header, the human-facing format used by the
//     csvstore storage engine and the CLIs; and
//   - a compact binary format used by the simulated DFS blocks and by
//     the shuffle byte-accounting of the Spark simulator.
//
// Both round-trip every Value kind, including vectors.

// WriteCSV writes records as CSV preceded by a typed header line of the
// form "name:type,...". Null values serialise as empty cells.
func WriteCSV(w io.Writer, s *Schema, recs []Record) error {
	cw := csv.NewWriter(w)
	header := make([]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		f := s.Field(i)
		header[i] = f.Name + ":" + f.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: write csv header: %w", err)
	}
	row := make([]string, s.Len())
	for _, r := range recs {
		if err := s.Validate(r); err != nil {
			return err
		}
		for i := 0; i < r.Len(); i++ {
			row[i] = r.Field(i).String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a typed-header CSV stream produced by WriteCSV and
// returns the schema and records.
func ReadCSV(r io.Reader) (*Schema, []Record, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("data: read csv header: %w", err)
	}
	fields := make([]Field, len(header))
	for i, h := range header {
		name, typ, ok := cutLast(h, ':')
		if !ok {
			return nil, nil, fmt.Errorf("data: csv header cell %q is not name:type", h)
		}
		k, err := ParseKind(typ)
		if err != nil {
			return nil, nil, err
		}
		fields[i] = Field{Name: name, Type: k}
	}
	schema, err := NewSchema(fields...)
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("data: read csv row: %w", err)
		}
		vals := make([]Value, len(row))
		for i, cell := range row {
			v, err := ParseValue(cell, fields[i].Type)
			if err != nil {
				return nil, nil, err
			}
			vals[i] = v
		}
		recs = append(recs, NewRecord(vals...))
	}
	return schema, recs, nil
}

// cutLast splits s at the last occurrence of sep, so field names may
// themselves contain the separator.
func cutLast(s string, sep byte) (before, after string, found bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// Binary format: each record is a uvarint field count followed by
// fields; each field is a kind byte followed by a kind-specific payload.

// WriteBinary writes records in the compact binary format and returns
// the number of payload bytes written.
func WriteBinary(w io.Writer, recs []Record) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(recs))); err != nil {
		return cw.n, err
	}
	for _, r := range recs {
		if err := putUvarint(uint64(r.Len())); err != nil {
			return cw.n, err
		}
		for i := 0; i < r.Len(); i++ {
			v := r.Field(i)
			if _, err := cw.Write([]byte{byte(v.kind)}); err != nil {
				return cw.n, err
			}
			switch v.kind {
			case KindNull:
			case KindBool, KindInt:
				if err := putUvarint(zigzag(v.i)); err != nil {
					return cw.n, err
				}
			case KindFloat:
				if err := putUvarint(math.Float64bits(v.f)); err != nil {
					return cw.n, err
				}
			case KindString:
				if err := putUvarint(uint64(len(v.s))); err != nil {
					return cw.n, err
				}
				if _, err := io.WriteString(cw, v.s); err != nil {
					return cw.n, err
				}
			case KindVector:
				if err := putUvarint(uint64(len(v.vec))); err != nil {
					return cw.n, err
				}
				for _, f := range v.vec {
					if err := putUvarint(math.Float64bits(f)); err != nil {
						return cw.n, err
					}
				}
			default:
				return cw.n, fmt.Errorf("data: binary-encode unknown kind %d", v.kind)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// preallocCap bounds slice preallocation from length prefixes read off
// the wire. A declared count is attacker-controlled until the payload
// behind it has actually been read — a handful of header bytes could
// otherwise demand a multi-gigabyte allocation. Every element needs at
// least one payload byte, so decoding grows via append and hits a
// clean EOF error instead.
func preallocCap(n uint64) int {
	const maxPrealloc = 1 << 16
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// ReadBinary reads a batch written by WriteBinary.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("data: binary record count: %w", err)
	}
	recs := make([]Record, 0, preallocCap(count))
	for rec := uint64(0); rec < count; rec++ {
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("data: binary arity: %w", err)
		}
		vals := make([]Value, 0, preallocCap(arity))
		for i := uint64(0); i < arity; i++ {
			kb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("data: binary kind: %w", err)
			}
			switch Kind(kb) {
			case KindNull:
				vals = append(vals, Null())
			case KindBool:
				u, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vals = append(vals, Bool(unzigzag(u) != 0))
			case KindInt:
				u, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vals = append(vals, Int(unzigzag(u)))
			case KindFloat:
				u, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vals = append(vals, Float(math.Float64frombits(u)))
			case KindString:
				n, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				b, err := readFullCapped(br, n)
				if err != nil {
					return nil, err
				}
				vals = append(vals, Str(string(b)))
			case KindVector:
				n, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				vec := make([]float64, 0, preallocCap(n))
				for j := uint64(0); j < n; j++ {
					u, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, err
					}
					vec = append(vec, math.Float64frombits(u))
				}
				vals = append(vals, Vec(vec))
			default:
				return nil, fmt.Errorf("data: binary-decode unknown kind %d", kb)
			}
		}
		recs = append(recs, NewRecord(vals...))
	}
	return recs, nil
}

// readFullCapped reads exactly n bytes, allocating in bounded chunks so
// a corrupt length prefix cannot demand the whole allocation up front.
func readFullCapped(r io.Reader, n uint64) ([]byte, error) {
	var out []byte
	for n > 0 {
		c := preallocCap(n)
		start := len(out)
		out = append(out, make([]byte, c)...)
		if _, err := io.ReadFull(r, out[start:]); err != nil {
			return nil, err
		}
		n -= uint64(c)
	}
	return out, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
