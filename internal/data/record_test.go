package data

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRecordBasics(t *testing.T) {
	r := NewRecord(Int(1), Str("a"), Float(2.5))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Field(1).Str() != "a" {
		t.Error("Field(1) wrong")
	}
	if got := r.String(); got != "(1, a, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestRecordWithFieldDoesNotAlias(t *testing.T) {
	r := NewRecord(Int(1), Int(2))
	r2 := r.WithField(0, Int(9))
	if r.Field(0).Int() != 1 {
		t.Error("WithField mutated the original")
	}
	if r2.Field(0).Int() != 9 || r2.Field(1).Int() != 2 {
		t.Error("WithField result wrong")
	}
}

func TestRecordAppendProjectConcat(t *testing.T) {
	r := NewRecord(Int(1), Str("a"))
	ap := r.Append(Bool(true))
	if ap.Len() != 3 || !ap.Field(2).Bool() {
		t.Error("Append wrong")
	}
	if r.Len() != 2 {
		t.Error("Append mutated receiver")
	}
	pr := ap.Project(2, 0)
	if pr.Len() != 2 || !pr.Field(0).Bool() || pr.Field(1).Int() != 1 {
		t.Error("Project wrong")
	}
	cc := Concat(r, pr)
	if cc.Len() != 4 || cc.Field(3).Int() != 1 {
		t.Error("Concat wrong")
	}
}

func TestCompareRecords(t *testing.T) {
	a := NewRecord(Int(1), Str("a"))
	b := NewRecord(Int(1), Str("b"))
	c := NewRecord(Int(1))
	if CompareRecords(a, b) >= 0 {
		t.Error("a < b expected")
	}
	if CompareRecords(c, a) >= 0 {
		t.Error("prefix record should sort first")
	}
	if CompareRecords(a, a) != 0 {
		t.Error("self-compare nonzero")
	}
}

func TestEqualRecords(t *testing.T) {
	a := NewRecord(Int(1), Str("a"))
	if !EqualRecords(a, NewRecord(Int(1), Str("a"))) {
		t.Error("equal records not equal")
	}
	if EqualRecords(a, NewRecord(Int(1))) {
		t.Error("different arity records equal")
	}
	if EqualRecords(a, NewRecord(Int(1), Str("b"))) {
		t.Error("different records equal")
	}
}

func TestSortRecords(t *testing.T) {
	recs := []Record{
		NewRecord(Int(3)), NewRecord(Int(1)), NewRecord(Int(2)),
	}
	SortRecords(recs)
	for i, want := range []int64{1, 2, 3} {
		if recs[i].Field(0).Int() != want {
			t.Fatalf("sorted[%d] = %s", i, recs[i])
		}
	}
}

func TestSortRecordsBy(t *testing.T) {
	recs := []Record{
		NewRecord(Str("b"), Int(0)),
		NewRecord(Str("a"), Int(1)),
		NewRecord(Str("a"), Int(2)),
	}
	SortRecordsBy(recs, func(r Record) Value { return r.Field(0) })
	if recs[0].Field(0).Str() != "a" || recs[2].Field(0).Str() != "b" {
		t.Error("SortRecordsBy order wrong")
	}
	// Stability: the two "a" records keep their relative order.
	if recs[0].Field(1).Int() != 1 || recs[1].Field(1).Int() != 2 {
		t.Error("SortRecordsBy not stable")
	}
}

func TestBytesEstimates(t *testing.T) {
	small := NewRecord(Int(1))
	big := NewRecord(Str("a long string value here"), Vec(make([]float64, 100)))
	if small.Bytes() >= big.Bytes() {
		t.Error("Bytes estimate not monotone in payload size")
	}
	if TotalBytes([]Record{small, big}) != int64(small.Bytes()+big.Bytes()) {
		t.Error("TotalBytes does not sum")
	}
}

func TestCloneRecords(t *testing.T) {
	recs := []Record{NewRecord(Int(1)), NewRecord(Int(2))}
	cl := CloneRecords(recs)
	cl[0] = NewRecord(Int(9))
	if recs[0].Field(0).Int() != 1 {
		t.Error("CloneRecords shares backing array")
	}
}

type recordGen struct{ R Record }

func (recordGen) Generate(r *rand.Rand, _ int) reflect.Value {
	vals := make([]Value, r.Intn(5))
	for i := range vals {
		vals[i] = randomValue(r)
	}
	return reflect.ValueOf(recordGen{R: NewRecord(vals...)})
}

func TestQuickRecordHashEqualConsistent(t *testing.T) {
	f := func(a recordGen, seed uint64) bool {
		cp := NewRecord(append([]Value(nil), a.R.Fields()...)...)
		if !EqualRecords(a.R, cp) {
			return false
		}
		return HashRecord(a.R, seed) == HashRecord(cp, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSortRecordsSorted(t *testing.T) {
	f := func(gens []recordGen) bool {
		recs := make([]Record, len(gens))
		for i, g := range gens {
			recs[i] = g.R
		}
		SortRecords(recs)
		return sort.SliceIsSorted(recs, func(i, j int) bool {
			return CompareRecords(recs[i], recs[j]) < 0
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
