package data

import (
	"bytes"
	"math"
	"testing"
)

// encodeBatch is the fuzz targets' canonical encoder.
func encodeBatch(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, recs)
	if err != nil {
		t.Fatalf("WriteBinary on decoded records: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteBinary reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip drives arbitrary bytes through the binary codec.
// The decoder must never panic or allocate unboundedly, and whatever
// it accepts must re-encode to a fixed point: decode(encode(recs)) ==
// recs, compared through the canonical encoding so NaN floats and
// non-minimal varints in the original input don't produce spurious
// mismatches.
func FuzzCodecRoundTrip(f *testing.F) {
	seedBatches := [][]Record{
		{},
		{NewRecord(Int(1), Str("a"))},
		{NewRecord(Null(), Bool(true), Bool(false))},
		{NewRecord(Int(-1 << 62), Int(math.MaxInt64), Float(0))},
		{NewRecord(Float(math.NaN()), Float(math.Inf(1)), Float(-0.0))},
		{NewRecord(Str("")), NewRecord(Str("héllo\x00world"))},
		{NewRecord(Vec(nil)), NewRecord(Vec([]float64{1.5, math.Inf(-1)}))},
		{NewRecord(), NewRecord(Int(7))},
		// Columnar-conversion decision space: these shapes steer which
		// representation batch.FromRecords picks (validity bitmaps,
		// all-null and mixed-kind ColAny columns, the ragged row
		// fallback), so the corpus reaches every branch of the
		// Collection → batch → Collection round trip.
		{NewRecord(Null(), Int(1)), NewRecord(Null(), Int(2))},
		{NewRecord(Int(1), Null()), NewRecord(Null(), Str("x")), NewRecord(Float(3), Null())},
		{NewRecord(Int(1)), NewRecord(Str("two")), NewRecord(Float(3)), NewRecord(Bool(true))},
		{NewRecord(Int(1)), NewRecord(Int(2), Str("ragged"))},
		{NewRecord(Null()), NewRecord(Null())},
		{NewRecord(Bool(true), Float(math.NaN())), NewRecord(Null(), Float(-0.0))},
	}
	for _, batch := range seedBatches {
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, batch); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Corrupt headers: huge declared counts with no payload behind them
	// must fail fast, not allocate gigabytes.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{0x01, 0x01, byte(KindString), 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x01, 0x01, byte(KindVector), 0xff, 0xff, 0xff, 0x7f, 0x00})

	f.Fuzz(func(t *testing.T, raw []byte) {
		recs, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return // rejecting garbage is fine; crashing is not
		}
		enc := encodeBatch(t, recs)
		again, err := ReadBinary(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		if enc2 := encodeBatch(t, again); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first %x\nsecond %x", enc, enc2)
		}
	})
}
