package data

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "null", KindBool: "bool", KindInt: "int",
		KindFloat: "float", KindString: "string", KindVector: "vector",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindNull, KindBool, KindInt, KindFloat, KindString, KindVector} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("frob"); err == nil {
		t.Error("ParseKind(frob) succeeded, want error")
	}
}

func TestValueAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	if v := Bool(true); !v.Bool() || v.Kind() != KindBool {
		t.Error("Bool(true) broken")
	}
	if v := Bool(false); v.Bool() {
		t.Error("Bool(false) broken")
	}
	if v := Int(-42); v.Int() != -42 {
		t.Error("Int broken")
	}
	if v := Float(2.5); v.Float() != 2.5 {
		t.Error("Float broken")
	}
	if v := Int(3); v.Float() != 3.0 {
		t.Error("Int widening to Float broken")
	}
	if v := Str("hi"); v.Str() != "hi" {
		t.Error("Str broken")
	}
	if v := Vec([]float64{1, 2}); len(v.Vec()) != 2 {
		t.Error("Vec broken")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on string value did not panic")
		}
	}()
	_ = Str("x").Int()
}

func TestValueStringAndParseRoundTrip(t *testing.T) {
	cases := []Value{
		Null(), Bool(true), Bool(false), Int(0), Int(-7), Int(1 << 40),
		Float(3.14159), Float(-0.5), Float(1e300),
		Str("hello"), Str("with,comma"),
		Vec([]float64{1.5, -2, 0}),
	}
	for _, v := range cases {
		if v.Kind() == KindString && v.Str() == "" {
			continue // empty string is indistinguishable from null in text form
		}
		got, err := ParseValue(v.String(), v.Kind())
		if err != nil {
			t.Fatalf("ParseValue(%q, %s): %v", v.String(), v.Kind(), err)
		}
		if !Equal(got, v) {
			t.Errorf("round trip %s: got %s", v, got)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	bad := []struct {
		s string
		k Kind
	}{
		{"notabool", KindBool},
		{"1.5", KindInt},
		{"xyz", KindFloat},
		{"1;two;3", KindVector},
	}
	for _, c := range bad {
		if _, err := ParseValue(c.s, c.k); err == nil {
			t.Errorf("ParseValue(%q, %s) succeeded, want error", c.s, c.k)
		}
	}
	// Empty string is null for every kind.
	for _, k := range []Kind{KindBool, KindInt, KindFloat, KindString, KindVector} {
		v, err := ParseValue("", k)
		if err != nil || !v.IsNull() {
			t.Errorf("ParseValue(\"\", %s) = %v, %v; want null", k, v, err)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int // sign only
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Str("a"), Str("b"), -1},
		{Bool(false), Bool(true), -1},
		{Vec([]float64{1, 2}), Vec([]float64{1, 3}), -1},
		{Vec([]float64{1}), Vec([]float64{1, 0}), -1},
		{Str("z"), Vec(nil), -1}, // kind ordering: string < vector
	}
	for _, c := range cases {
		got := Compare(c.a, c.b)
		if sign(got) != c.want {
			t.Errorf("Compare(%s, %s) = %d, want sign %d", c.a, c.b, got, c.want)
		}
		if sign(Compare(c.b, c.a)) != -c.want {
			t.Errorf("Compare(%s, %s) not antisymmetric", c.b, c.a)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// randomValue generates arbitrary values for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63n(1<<32) - (1 << 31))
	case 3:
		return Float(r.NormFloat64() * 1e6)
	case 4:
		b := make([]byte, r.Intn(12))
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return Str(string(b))
	default:
		vec := make([]float64, r.Intn(5))
		for i := range vec {
			vec[i] = r.NormFloat64()
		}
		return Vec(vec)
	}
}

// valueGen adapts randomValue to testing/quick.
type valueGen struct{ V Value }

func (valueGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen{V: randomValue(r)})
}

func TestQuickCompareTotalOrder(t *testing.T) {
	// Antisymmetry and equality-consistency of Compare.
	f := func(a, b valueGen) bool {
		ab, ba := Compare(a.V, b.V), Compare(b.V, a.V)
		if sign(ab) != -sign(ba) {
			return false
		}
		if Equal(a.V, b.V) && ab != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(a, b, c valueGen) bool {
		x, y, z := a.V, b.V, c.V
		// Sort the triple by Compare, then verify pairwise consistency.
		if Compare(x, y) > 0 {
			x, y = y, x
		}
		if Compare(y, z) > 0 {
			y, z = z, y
		}
		if Compare(x, y) > 0 {
			x, y = y, x
		}
		return Compare(x, y) <= 0 && Compare(y, z) <= 0 && Compare(x, z) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickHashEqualConsistent(t *testing.T) {
	f := func(a valueGen, seed uint64) bool {
		b := a.V // copies the value
		return Hash(a.V, seed) == Hash(b, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHashSeedIndependence(t *testing.T) {
	v := Str("rheem")
	if Hash(v, 1) == Hash(v, 2) {
		t.Error("different seeds produced identical hashes (suspicious)")
	}
}

func TestHashDistinguishesKinds(t *testing.T) {
	if Hash(Int(1), 0) == Hash(Bool(true), 0) {
		t.Error("Int(1) and Bool(true) hash identically")
	}
	if Hash(Int(1), 0) == Hash(Float(1), 0) {
		t.Error("Int(1) and Float(1) hash identically")
	}
}

func TestEqualNaN(t *testing.T) {
	nan := Float(math.NaN())
	if Equal(nan, nan) {
		t.Log("NaN equals itself under bit equality — acceptable only if hash agrees")
	}
	// Whatever Equal says, Hash must agree for grouping to be sound.
	if Equal(nan, nan) && Hash(nan, 0) != Hash(nan, 0) {
		t.Error("Equal NaN values hash differently")
	}
}
