package data

import (
	"sort"
	"strings"
)

// Record is a single data quantum: an ordered tuple of values. Records
// are small value types; copying one copies only the field-slice header.
// Operators must treat records as immutable — derive new records with
// WithField, Project, or Concat instead of writing through Fields.
type Record struct {
	fields []Value
}

// NewRecord builds a record from the given values. The slice is owned by
// the record afterwards.
func NewRecord(vals ...Value) Record { return Record{fields: vals} }

// Len reports the number of fields.
func (r Record) Len() int { return len(r.fields) }

// Field returns field i. It panics if i is out of range, mirroring slice
// indexing; plan validation catches arity mismatches before execution.
func (r Record) Field(i int) Value { return r.fields[i] }

// Fields returns the underlying field slice. Callers must not mutate it.
func (r Record) Fields() []Value { return r.fields }

// WithField returns a copy of the record with field i replaced.
func (r Record) WithField(i int, v Value) Record {
	out := make([]Value, len(r.fields))
	copy(out, r.fields)
	out[i] = v
	return Record{fields: out}
}

// Append returns a new record with the given values appended.
func (r Record) Append(vals ...Value) Record {
	out := make([]Value, 0, len(r.fields)+len(vals))
	out = append(out, r.fields...)
	out = append(out, vals...)
	return Record{fields: out}
}

// Project returns a new record containing the selected fields in order.
func (r Record) Project(idx ...int) Record {
	out := make([]Value, len(idx))
	for i, j := range idx {
		out[i] = r.fields[j]
	}
	return Record{fields: out}
}

// Concat returns the concatenation of two records, the standard join
// output shape.
func Concat(l, r Record) Record {
	out := make([]Value, 0, len(l.fields)+len(r.fields))
	out = append(out, l.fields...)
	out = append(out, r.fields...)
	return Record{fields: out}
}

// CompareRecords orders records field-by-field (shorter records sort
// first on a shared prefix).
func CompareRecords(a, b Record) int {
	n := len(a.fields)
	if len(b.fields) < n {
		n = len(b.fields)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a.fields[i], b.fields[i]); c != 0 {
			return c
		}
	}
	return len(a.fields) - len(b.fields)
}

// EqualRecords reports field-wise equality under Equal.
func EqualRecords(a, b Record) bool {
	if len(a.fields) != len(b.fields) {
		return false
	}
	for i := range a.fields {
		if !Equal(a.fields[i], b.fields[i]) {
			return false
		}
	}
	return true
}

// HashRecord hashes all fields of a record with the given seed.
func HashRecord(r Record, seed uint64) uint64 {
	h := fnvOffset ^ seed
	for _, v := range r.fields {
		h = hashUint64(h, Hash(v, seed))
	}
	return h
}

// String renders the record as a parenthesised, comma-separated tuple.
func (r Record) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range r.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// SortRecords sorts records in place under CompareRecords. Sort-based
// physical operators use it as their common ordering primitive.
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool { return CompareRecords(recs[i], recs[j]) < 0 })
}

// SortRecordsBy sorts records in place by a derived key value.
func SortRecordsBy(recs []Record, key func(Record) Value) {
	sort.SliceStable(recs, func(i, j int) bool { return Compare(key(recs[i]), key(recs[j])) < 0 })
}

// Bytes estimates the in-memory footprint of the record in bytes. The
// channel conversion graph and the shuffle model use it to account for
// data movement volume; it is an estimate, not an exact allocation size.
func (r Record) Bytes() int {
	n := 16 // slice header + kind tags, amortised
	for _, v := range r.fields {
		switch v.kind {
		case KindString:
			n += 16 + len(v.s)
		case KindVector:
			n += 24 + 8*len(v.vec)
		default:
			n += 16
		}
	}
	return n
}

// TotalBytes sums Bytes over a batch of records.
func TotalBytes(recs []Record) int64 {
	var n int64
	for _, r := range recs {
		n += int64(r.Bytes())
	}
	return n
}

// CloneRecords returns a shallow copy of the batch (the records
// themselves are immutable, so sharing field slices is safe).
func CloneRecords(recs []Record) []Record {
	out := make([]Record, len(recs))
	copy(out, recs)
	return out
}
