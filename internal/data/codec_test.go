package data

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleBatch() (*Schema, []Record) {
	s := MustSchema(
		Field{"id", KindInt},
		Field{"name", KindString},
		Field{"score", KindFloat},
		Field{"ok", KindBool},
		Field{"vec", KindVector},
	)
	recs := []Record{
		NewRecord(Int(1), Str("alice"), Float(0.5), Bool(true), Vec([]float64{1, 2})),
		NewRecord(Int(2), Str("bob,comma"), Float(-1), Bool(false), Vec([]float64{3})),
		NewRecord(Int(3), Null(), Null(), Null(), Null()),
	}
	return s, recs
}

func TestCSVRoundTrip(t *testing.T) {
	s, recs := sampleBatch()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, recs); err != nil {
		t.Fatal(err)
	}
	gotSchema, gotRecs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.Spec() != s.Spec() {
		t.Errorf("schema: %s vs %s", gotSchema, s)
	}
	if len(gotRecs) != len(recs) {
		t.Fatalf("record count %d vs %d", len(gotRecs), len(recs))
	}
	for i := range recs {
		if !EqualRecords(gotRecs[i], recs[i]) {
			t.Errorf("record %d: %s vs %s", i, gotRecs[i], recs[i])
		}
	}
}

func TestWriteCSVValidates(t *testing.T) {
	s, _ := sampleBatch()
	var buf bytes.Buffer
	err := WriteCSV(&buf, s, []Record{NewRecord(Int(1))})
	if err == nil {
		t.Error("arity-mismatched record written without error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"id\n1\n",           // header cell without type
		"id:frobnicate\n1\n", // unknown kind
		"id:int\nnotanint\n", // unparseable cell
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) accepted", c)
		}
	}
}

func TestCSVHeaderNameWithColon(t *testing.T) {
	s := MustSchema(Field{"a:b", KindInt})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, []Record{NewRecord(Int(7))}); err != nil {
		t.Fatal(err)
	}
	got, recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Field(0).Name != "a:b" || recs[0].Field(0).Int() != 7 {
		t.Errorf("colon field name mangled: %s", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	_, recs := sampleBatch()
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("count %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if !EqualRecords(got[i], recs[i]) {
			t.Errorf("record %d: %s vs %s", i, got[i], recs[i])
		}
	}
}

func TestBinaryEmptyBatch(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from empty batch", len(got))
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	_, recs := sampleBatch()
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream decoded without error")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(gens []recordGen) bool {
		recs := make([]Record, len(gens))
		for i, g := range gens {
			recs[i] = g.R
		}
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, recs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if !binaryEqualRecords(got[i], recs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// binaryEqualRecords is EqualRecords except NaN floats are treated as
// equal to themselves (the codec preserves bit patterns, but Equal uses
// == which NaN fails).
func binaryEqualRecords(a, b Record) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.Field(i), b.Field(i)
		if av.Kind() != bv.Kind() {
			return false
		}
		if av.Kind() == KindFloat {
			if av.String() != bv.String() {
				return false
			}
			continue
		}
		if !Equal(av, bv) {
			return false
		}
	}
	return true
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
