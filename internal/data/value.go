// Package data defines RHEEM's data-quantum model.
//
// A data quantum is "the smallest unit of data elements from the input
// datasets" (paper §3.1) — a tuple in a dataset or a row in a matrix.
// This package provides the dynamic value system those quanta are built
// from: a tagged-union Value, a Record (one quantum), and a Schema that
// names and types a record's fields. The representation is deliberately
// platform-neutral: every processing platform (javaengine, sparksim,
// relengine) and every storage engine exchanges data in this model, so
// that the core layer can move data quanta between platforms without
// knowing their internals.
package data

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

// The supported value kinds. Vector is a dense float64 vector used by
// the ML application (a "row in a matrix" data quantum).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindVector
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindVector:
		return "vector"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind converts a kind name (as produced by Kind.String) back to a
// Kind. It is used by schema files and the CSV header codec.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "null":
		return KindNull, nil
	case "bool":
		return KindBool, nil
	case "int":
		return KindInt, nil
	case "float":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "vector":
		return KindVector, nil
	default:
		return KindNull, fmt.Errorf("data: unknown kind %q", s)
	}
}

// Value is a dynamically typed scalar or vector. It is a tagged union
// rather than an interface so that records of scalars allocate nothing
// beyond their field slice; this matters because logical operators are
// applied per data quantum (§3.1) and run in tight loops.
//
// The zero Value is Null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	vec  []float64
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Vec returns a vector value. The slice is NOT copied; callers that
// mutate the argument afterwards must copy it first.
func Vec(v []float64) Value { return Value{kind: KindVector, vec: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Bool returns the boolean payload. It panics if the kind is not Bool;
// use Kind first when the type is not statically known.
func (v Value) Bool() bool {
	v.mustBe(KindBool)
	return v.i != 0
}

// Int returns the integer payload, panicking on a kind mismatch.
func (v Value) Int() int64 {
	v.mustBe(KindInt)
	return v.i
}

// Float returns the float payload. For convenience in numeric UDFs it
// also accepts an Int value (widened); any other kind panics.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("data: Float() on %s value", v.kind))
}

// Str returns the string payload, panicking on a kind mismatch.
func (v Value) Str() string {
	v.mustBe(KindString)
	return v.s
}

// Vec returns the vector payload, panicking on a kind mismatch. The
// returned slice aliases the value's storage.
func (v Value) Vec() []float64 {
	v.mustBe(KindVector)
	return v.vec
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("data: %s() on %s value", k, v.kind))
	}
}

// String renders the value for debugging and CSV output. Null renders
// as the empty string, vectors as semicolon-separated floats.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindVector:
		var sb strings.Builder
		for i, f := range v.vec {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
		}
		return sb.String()
	default:
		return fmt.Sprintf("<%s>", v.kind)
	}
}

// ParseValue parses the textual form produced by Value.String back into
// a value of the requested kind. The empty string parses to Null for
// every kind, matching the CSV convention for missing fields.
func ParseValue(s string, k Kind) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch k {
	case KindNull:
		return Null(), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("data: parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("data: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("data: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return Str(s), nil
	case KindVector:
		parts := strings.Split(s, ";")
		vec := make([]float64, len(parts))
		for i, p := range parts {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return Null(), fmt.Errorf("data: parse vector component %q: %w", p, err)
			}
			vec[i] = f
		}
		return Vec(vec), nil
	default:
		return Null(), fmt.Errorf("data: parse into unknown kind %d", k)
	}
}

// Compare orders two values. Nulls sort first; values of different
// kinds order by kind; Int and Float compare numerically with each
// other. Vectors compare lexicographically. The ordering is total, which
// sort-based physical operators (SortGroupBy, SortMergeJoin, IEJoin)
// rely on.
func Compare(a, b Value) int {
	// Numeric cross-kind comparison.
	an := a.kind == KindInt || a.kind == KindFloat
	bn := b.kind == KindInt || b.kind == KindFloat
	if an && bn {
		af, bf := a.numeric(), b.numeric()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		// Equal numerically: make the order total across kinds.
		return int(a.kind) - int(b.kind)
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		return int(a.i - b.i)
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindVector:
		n := len(a.vec)
		if len(b.vec) < n {
			n = len(b.vec)
		}
		for i := 0; i < n; i++ {
			switch {
			case a.vec[i] < b.vec[i]:
				return -1
			case a.vec[i] > b.vec[i]:
				return 1
			}
		}
		return len(a.vec) - len(b.vec)
	default:
		return 0
	}
}

func (v Value) numeric() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Equal reports whether two values compare equal under Compare, except
// that it does not equate an Int with a numerically equal Float (hash
// grouping must agree with Hash, which is kind-sensitive).
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindBool, KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f
	case KindString:
		return a.s == b.s
	case KindVector:
		if len(a.vec) != len(b.vec) {
			return false
		}
		for i := range a.vec {
			if a.vec[i] != b.vec[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a 64-bit FNV-1a hash of the value, seeded so that
// partitioners can derive independent hash families. Equal values (per
// Equal) hash identically.
func Hash(v Value, seed uint64) uint64 {
	h := fnvOffset ^ seed
	h = hashByte(h, byte(v.kind))
	switch v.kind {
	case KindBool, KindInt:
		h = hashUint64(h, uint64(v.i))
	case KindFloat:
		h = hashUint64(h, math.Float64bits(v.f))
	case KindString:
		for i := 0; i < len(v.s); i++ {
			h = hashByte(h, v.s[i])
		}
	case KindVector:
		for _, f := range v.vec {
			h = hashUint64(h, math.Float64bits(f))
		}
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v))
		v >>= 8
	}
	return h
}
