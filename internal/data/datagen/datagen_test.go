package datagen

import (
	"testing"

	"rheem/internal/data"
)

func TestPointsShapeAndDeterminism(t *testing.T) {
	cfg := PointsConfig{N: 200, Dim: 5, Seed: 42}
	a := Points(cfg)
	b := Points(cfg)
	if len(a) != 200 {
		t.Fatalf("got %d points", len(a))
	}
	for i, r := range a {
		if err := PointsSchema.Validate(r); err != nil {
			t.Fatalf("point %d invalid: %v", i, err)
		}
		if l := r.Field(0).Float(); l != 1 && l != -1 {
			t.Fatalf("point %d label %v", i, l)
		}
		if len(r.Field(1).Vec()) != 5 {
			t.Fatalf("point %d dim %d", i, len(r.Field(1).Vec()))
		}
		if !data.EqualRecords(a[i], b[i]) {
			t.Fatalf("point %d not deterministic", i)
		}
	}
}

func TestPointsSeparable(t *testing.T) {
	// Without noise, the generating hyperplane w=1/√d should classify
	// the vast majority of points correctly.
	pts := Points(PointsConfig{N: 1000, Dim: 10, Seed: 7})
	correct := 0
	for _, p := range pts {
		var dot float64
		for _, x := range p.Field(1).Vec() {
			dot += x
		}
		if (dot > 0) == (p.Field(0).Float() > 0) {
			correct++
		}
	}
	if correct < 950 {
		t.Errorf("only %d/1000 points on the right side of the generating plane", correct)
	}
}

func TestPointsNoiseFlipsLabels(t *testing.T) {
	clean := Points(PointsConfig{N: 500, Dim: 4, Seed: 9})
	noisy := Points(PointsConfig{N: 500, Dim: 4, Noise: 0.3, Seed: 9})
	flips := 0
	for i := range clean {
		if clean[i].Field(0).Float() != noisy[i].Field(0).Float() {
			flips++
		}
	}
	if flips < 100 || flips > 220 {
		t.Errorf("noise=0.3 flipped %d/500 labels", flips)
	}
}

func TestTaxCleanDataSatisfiesRules(t *testing.T) {
	recs := Tax(TaxConfig{N: 2000, Zips: 50, ErrorRate: 0, Seed: 1})
	zipCity := map[string]string{}
	for i, r := range recs {
		if err := TaxSchema.Validate(r); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		zip, city := r.Field(TaxZip).Str(), r.Field(TaxCity).Str()
		if prev, ok := zipCity[zip]; ok && prev != city {
			t.Fatalf("clean data violates zip→city: %s → %s and %s", zip, prev, city)
		}
		zipCity[zip] = city
	}
	// Monotone salary→rate on clean data.
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < i+20 && j < len(recs); j++ {
			si, sj := recs[i].Field(TaxSalary).Float(), recs[j].Field(TaxSalary).Float()
			ri, rj := recs[i].Field(TaxRate).Float(), recs[j].Field(TaxRate).Float()
			if si > sj && ri < rj {
				t.Fatalf("clean data violates salary/rate DC at %d,%d", i, j)
			}
		}
	}
}

func TestTaxInjectsErrors(t *testing.T) {
	recs := Tax(TaxConfig{N: 5000, Zips: 50, ErrorRate: 0.1, Seed: 3})
	// Count zip→city conflicts: group by zip, count zips with >1 city.
	cities := map[string]map[string]bool{}
	for _, r := range recs {
		zip, city := r.Field(TaxZip).Str(), r.Field(TaxCity).Str()
		if cities[zip] == nil {
			cities[zip] = map[string]bool{}
		}
		cities[zip][city] = true
	}
	conflicted := 0
	for _, cs := range cities {
		if len(cs) > 1 {
			conflicted++
		}
	}
	if conflicted == 0 {
		t.Error("error injection produced no FD violations")
	}
}

func TestTaxDeterminism(t *testing.T) {
	a := Tax(TaxConfig{N: 100, Zips: 10, ErrorRate: 0.2, Seed: 5})
	b := Tax(TaxConfig{N: 100, Zips: 10, ErrorRate: 0.2, Seed: 5})
	for i := range a {
		if !data.EqualRecords(a[i], b[i]) {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestGraph(t *testing.T) {
	recs := Graph(GraphConfig{Nodes: 100, Edges: 500, Seed: 11})
	if len(recs) != 500 {
		t.Fatalf("got %d edges", len(recs))
	}
	indeg := map[int64]int{}
	for i, r := range recs {
		if err := EdgeSchema.Validate(r); err != nil {
			t.Fatalf("edge %d invalid: %v", i, err)
		}
		src, dst := r.Field(0).Int(), r.Field(1).Int()
		if src == dst {
			t.Fatalf("self loop at %d", i)
		}
		if src < 0 || src >= 100 || dst < 0 || dst >= 100 {
			t.Fatalf("edge %d out of range: %d→%d", i, src, dst)
		}
		indeg[dst]++
	}
	// Preferential bias: low ids should attract more edges than high ids.
	low, high := 0, 0
	for node, d := range indeg {
		if node < 25 {
			low += d
		} else if node >= 75 {
			high += d
		}
	}
	if low <= high {
		t.Errorf("expected skew toward low ids, got low=%d high=%d", low, high)
	}
}

func TestZipfIntsSkewAndRange(t *testing.T) {
	recs := ZipfInts(5000, 100, 13)
	counts := map[int64]int{}
	for _, r := range recs {
		k := r.Field(0).Int()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("zipf not skewed: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
}

func TestWords(t *testing.T) {
	recs := Words(100, 17)
	if len(recs) != 100 {
		t.Fatalf("got %d words", len(recs))
	}
	distinct := map[string]bool{}
	for _, r := range recs {
		distinct[r.Field(0).Str()] = true
	}
	if len(distinct) < 5 {
		t.Errorf("only %d distinct words", len(distinct))
	}
}

func TestSensors(t *testing.T) {
	recs := Sensors(SensorConfig{N: 1000, Wells: 8, Seed: 19})
	wells := map[int64]bool{}
	for i, r := range recs {
		if err := SensorSchema.Validate(r); err != nil {
			t.Fatalf("reading %d invalid: %v", i, err)
		}
		wells[r.Field(0).Int()] = true
	}
	if len(wells) != 8 {
		t.Errorf("got %d wells, want 8", len(wells))
	}
}
