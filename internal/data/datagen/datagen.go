// Package datagen generates the seeded synthetic workloads the
// experiment harness sweeps over. Each generator is the substitute for a
// dataset the paper used but that is not available offline (see
// DESIGN.md §3):
//
//   - Points replaces the LIBSVM datasets of Figure 2;
//   - Tax replaces the BigDansing dirty tax dataset of Figure 3;
//   - Graph replaces real-world graphs for the graph application;
//   - ZipfInts provides skewed grouping keys for partitioner and
//     shuffle tests.
//
// All generators are deterministic in their seed, so experiments and
// property tests are reproducible.
package datagen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rheem/internal/data"
)

func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// PointsSchema is the schema of LIBSVM-like records: a ±1 label and a
// dense feature vector.
var PointsSchema = data.MustSchema(
	data.Field{Name: "label", Type: data.KindFloat},
	data.Field{Name: "features", Type: data.KindVector},
)

// PointsConfig parameterises the synthetic classification dataset.
type PointsConfig struct {
	N     int     // number of points
	Dim   int     // feature dimensionality
	Noise float64 // probability of flipping a label (label noise)
	Seed  uint64
}

// Points generates n points from two linearly separable Gaussian blobs
// with optional label noise, the standard synthetic stand-in for the
// LIBSVM binary classification datasets (a9a, w8a, ...) used in the
// paper's Figure 2. The separating hyperplane is w = (1, 1, ..., 1)/√d
// with margin 1, so SVM training on the clean data converges quickly
// and the per-iteration cost — which is all Figure 2 measures — is
// realistic.
func Points(cfg PointsConfig) []data.Record {
	if cfg.Dim <= 0 {
		cfg.Dim = 10
	}
	r := newRand(cfg.Seed)
	recs := make([]data.Record, cfg.N)
	inv := 1.0 / math.Sqrt(float64(cfg.Dim))
	for i := 0; i < cfg.N; i++ {
		label := 1.0
		if i%2 == 1 {
			label = -1.0
		}
		vec := make([]float64, cfg.Dim)
		for j := range vec {
			// Centre each blob at ±2/√d per dimension with unit noise.
			vec[j] = label*2*inv + r.NormFloat64()*0.5
		}
		if cfg.Noise > 0 && r.Float64() < cfg.Noise {
			label = -label
		}
		recs[i] = data.NewRecord(data.Float(label), data.Vec(vec))
	}
	return recs
}

// TaxSchema is the schema of the BigDansing-style tax dataset. The
// attribute set follows the BigDansing/NADEEF tax benchmark: personal
// identity plus address (zip determines city and state) and income
// (salary determines tax rate monotonically).
var TaxSchema = data.MustSchema(
	data.Field{Name: "id", Type: data.KindInt},
	data.Field{Name: "fname", Type: data.KindString},
	data.Field{Name: "lname", Type: data.KindString},
	data.Field{Name: "gender", Type: data.KindString},
	data.Field{Name: "zip", Type: data.KindString},
	data.Field{Name: "city", Type: data.KindString},
	data.Field{Name: "state", Type: data.KindString},
	data.Field{Name: "salary", Type: data.KindFloat},
	data.Field{Name: "rate", Type: data.KindFloat},
)

// Tax field indexes, exported so rules and tests can reference fields
// without magic numbers.
const (
	TaxID = iota
	TaxFName
	TaxLName
	TaxGender
	TaxZip
	TaxCity
	TaxState
	TaxSalary
	TaxRate
)

// TaxConfig parameterises the dirty tax dataset.
type TaxConfig struct {
	N         int     // number of records
	Zips      int     // number of distinct zip codes (blocking keys)
	ErrorRate float64 // fraction of records with an injected error
	Seed      uint64
}

// Tax generates a dirty tax dataset. Clean data satisfies:
//
//	FD  zip → city        (each zip maps to one city)
//	FD  zip → state       (each zip maps to one state)
//	DC  ¬(s1.salary > s2.salary ∧ s1.rate < s2.rate)   (rate is
//	    monotone in salary — the inequality rule IEJoin accelerates)
//
// Errors are injected at the configured rate, split between FD
// violations (a record gets the wrong city for its zip) and DC
// violations (a high-salary record gets an artificially low rate).
func Tax(cfg TaxConfig) []data.Record {
	if cfg.Zips <= 0 {
		cfg.Zips = 100
	}
	r := newRand(cfg.Seed)
	firstNames := []string{"james", "mary", "robert", "patricia", "john", "jennifer", "michael", "linda"}
	lastNames := []string{"smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis"}
	states := []string{"NY", "CA", "TX", "FL", "WA", "IL", "MA", "GA"}

	recs := make([]data.Record, cfg.N)
	for i := 0; i < cfg.N; i++ {
		zipIdx := r.IntN(cfg.Zips)
		zip := fmt.Sprintf("%05d", 10000+zipIdx)
		city := fmt.Sprintf("city_%03d", zipIdx)
		state := states[zipIdx%len(states)]
		salary := 20000 + r.Float64()*180000
		rate := cleanRate(salary)
		gender := "M"
		if r.IntN(2) == 0 {
			gender = "F"
		}

		if r.Float64() < cfg.ErrorRate {
			if r.IntN(2) == 0 {
				// FD violation: wrong city for this zip.
				city = fmt.Sprintf("city_%03d", (zipIdx+1+r.IntN(cfg.Zips-1))%cfg.Zips)
			} else {
				// DC violation: high earner with a rate below what
				// lower salaries get.
				salary = 150000 + r.Float64()*50000
				rate = 1 + r.Float64()*2
			}
		}

		recs[i] = data.NewRecord(
			data.Int(int64(i)),
			data.Str(firstNames[r.IntN(len(firstNames))]),
			data.Str(lastNames[r.IntN(len(lastNames))]),
			data.Str(gender),
			data.Str(zip),
			data.Str(city),
			data.Str(state),
			data.Float(salary),
			data.Float(rate),
		)
	}
	return recs
}

// cleanRate is the monotone salary→rate function clean records obey.
func cleanRate(salary float64) float64 {
	return 5 + salary/200000*30 // 5%..35%, strictly increasing
}

// EdgeSchema is the schema of graph edges.
var EdgeSchema = data.MustSchema(
	data.Field{Name: "src", Type: data.KindInt},
	data.Field{Name: "dst", Type: data.KindInt},
)

// GraphConfig parameterises the synthetic graph.
type GraphConfig struct {
	Nodes int
	Edges int
	Seed  uint64
}

// Graph generates a directed graph with preferential attachment-style
// skew: destination picks are biased toward low node ids, yielding the
// heavy-tailed in-degree distribution PageRank cares about. Self-loops
// are skipped (regenerated), duplicate edges are allowed as in real
// edge lists.
func Graph(cfg GraphConfig) []data.Record {
	r := newRand(cfg.Seed)
	recs := make([]data.Record, 0, cfg.Edges)
	for len(recs) < cfg.Edges {
		src := int64(r.IntN(cfg.Nodes))
		// Square a uniform to bias toward 0 (popular nodes).
		u := r.Float64()
		dst := int64(u * u * float64(cfg.Nodes))
		if dst >= int64(cfg.Nodes) {
			dst = int64(cfg.Nodes - 1)
		}
		if src == dst {
			continue
		}
		recs = append(recs, data.NewRecord(data.Int(src), data.Int(dst)))
	}
	return recs
}

// ZipfInts generates n integer keys in [0, domain) with a Zipfian
// (s≈1.1) distribution, used to stress skewed grouping and shuffles.
func ZipfInts(n, domain int, seed uint64) []data.Record {
	r := newRand(seed)
	// math/rand/v2 has no Zipf; implement inverse-CDF sampling over a
	// precomputed harmonic table. Domain sizes in tests are modest.
	if domain <= 0 {
		domain = 1
	}
	cdf := make([]float64, domain)
	var sum float64
	for i := 0; i < domain; i++ {
		sum += 1 / math.Pow(float64(i+1), 1.1)
		cdf[i] = sum
	}
	recs := make([]data.Record, n)
	for i := 0; i < n; i++ {
		target := r.Float64() * sum
		lo, hi := 0, domain-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		recs[i] = data.NewRecord(data.Int(int64(lo)))
	}
	return recs
}

// Words generates n records each holding one word drawn from a small
// vocabulary, the input for word-count-style quickstart examples.
func Words(n int, seed uint64) []data.Record {
	vocab := []string{
		"road", "to", "freedom", "in", "big", "data", "analytics",
		"rheem", "platform", "independence", "operator", "plan",
	}
	r := newRand(seed)
	recs := make([]data.Record, n)
	for i := 0; i < n; i++ {
		recs[i] = data.NewRecord(data.Str(vocab[r.IntN(len(vocab))]))
	}
	return recs
}

// SensorSchema is the schema of the oil-&-gas-style sensor readings used
// by the multi-platform example (§1 of the paper motivates RHEEM with
// exactly this pipeline).
var SensorSchema = data.MustSchema(
	data.Field{Name: "well", Type: data.KindInt},
	data.Field{Name: "sensor", Type: data.KindInt},
	data.Field{Name: "pressure", Type: data.KindFloat},
	data.Field{Name: "temperature", Type: data.KindFloat},
	data.Field{Name: "flow", Type: data.KindFloat},
)

// SensorConfig parameterises sensor readings.
type SensorConfig struct {
	N     int
	Wells int
	Seed  uint64
}

// Sensors generates per-well sensor readings whose distribution differs
// by well, so that aggregation followed by clustering finds structure.
func Sensors(cfg SensorConfig) []data.Record {
	if cfg.Wells <= 0 {
		cfg.Wells = 16
	}
	r := newRand(cfg.Seed)
	recs := make([]data.Record, cfg.N)
	for i := 0; i < cfg.N; i++ {
		well := r.IntN(cfg.Wells)
		base := float64(well % 4)
		recs[i] = data.NewRecord(
			data.Int(int64(well)),
			data.Int(int64(r.IntN(64))),
			data.Float(100+base*50+r.NormFloat64()*5),
			data.Float(60+base*10+r.NormFloat64()*2),
			data.Float(10+base*3+r.NormFloat64()),
		)
	}
	return recs
}
