// Package core is the umbrella for RHEEM's core layer — "the heart of
// RHEEM" (paper §3.1). It contains no code itself; the core layer is
// split into focused subpackages:
//
//   - plan:      application-layer logical operators and logical plans;
//   - algo:      shared, platform-neutral algorithm kernels that
//     execution operators delegate to;
//   - physical:  the pool of physical operators (algorithmic decisions)
//     and logical→physical translation, including wrapper and
//     enhancer operators;
//   - cost:      pluggable cost models and cardinality estimation;
//   - channel:   cross-platform data channels and the conversion graph
//     that prices data movement;
//   - engine:    the platform SPI — Platform, declarative operator
//     Mappings, TaskAtom, execution Metrics;
//   - optimizer: the multi-platform task optimizer (platform
//     assignment, task-atom splitting, execution plans);
//   - executor:  scheduling, monitoring, failure handling, and result
//     aggregation.
package core
