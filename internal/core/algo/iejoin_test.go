package algo

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// xyRecs builds records with two int fields (x, y).
func xyRecs(pairs ...int64) []data.Record {
	out := make([]data.Record, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, data.NewRecord(data.Int(pairs[i]), data.Int(pairs[i+1])))
	}
	return out
}

// nestedLoopIE is the oracle: evaluate the conjunction of conditions
// pairwise.
func nestedLoopIE(l, r []data.Record, conds []plan.IECondition) []string {
	var out []string
	for _, lr := range l {
		for _, rr := range r {
			ok := true
			for _, c := range conds {
				if !c.Op.Eval(lr.Field(c.LeftField), rr.Field(c.RightField)) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, data.Concat(lr, rr).String())
			}
		}
	}
	sort.Strings(out)
	return out
}

func runIEJoin(t *testing.T, l, r []data.Record, conds []plan.IECondition) []string {
	t.Helper()
	got, err := IEJoinRecords(l, r, conds, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(got))
	for i, rec := range got {
		out[i] = rec.String()
	}
	sort.Strings(out)
	return out
}

func assertSame(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("IEJoin %d pairs, oracle %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestIEJoinSmallKnown(t *testing.T) {
	// Classic salary/tax example: l.salary > r.salary AND l.rate < r.rate.
	l := xyRecs(100, 5, 200, 3, 300, 8)
	r := xyRecs(150, 6, 250, 4, 50, 1)
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Greater, RightField: 0},
		{LeftField: 1, Op: plan.Less, RightField: 1},
	}
	assertSame(t, runIEJoin(t, l, r, conds), nestedLoopIE(l, r, conds))
}

func TestIEJoinAllOpCombos(t *testing.T) {
	ops := []plan.CompareOp{plan.Less, plan.LessEq, plan.Greater, plan.GreaterEq}
	rng := rand.New(rand.NewSource(42))
	l := make([]data.Record, 30)
	r := make([]data.Record, 25)
	for i := range l {
		l[i] = data.NewRecord(data.Int(int64(rng.Intn(10))), data.Int(int64(rng.Intn(10))))
	}
	for i := range r {
		r[i] = data.NewRecord(data.Int(int64(rng.Intn(10))), data.Int(int64(rng.Intn(10))))
	}
	for _, op1 := range ops {
		for _, op2 := range ops {
			conds := []plan.IECondition{
				{LeftField: 0, Op: op1, RightField: 0},
				{LeftField: 1, Op: op2, RightField: 1},
			}
			got := runIEJoin(t, l, r, conds)
			want := nestedLoopIE(l, r, conds)
			if len(got) != len(want) {
				t.Fatalf("ops (%s,%s): got %d pairs, want %d", op1, op2, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("ops (%s,%s): pair %d differs", op1, op2, i)
				}
			}
		}
	}
}

func TestIEJoinDuplicatesAndTies(t *testing.T) {
	// Heavy ties stress the strict/non-strict group marking.
	l := xyRecs(1, 1, 1, 1, 2, 2, 2, 2)
	r := xyRecs(1, 1, 2, 2, 1, 2, 2, 1)
	for _, op1 := range []plan.CompareOp{plan.LessEq, plan.GreaterEq} {
		for _, op2 := range []plan.CompareOp{plan.Less, plan.Greater} {
			conds := []plan.IECondition{
				{LeftField: 0, Op: op1, RightField: 0},
				{LeftField: 1, Op: op2, RightField: 1},
			}
			assertSame(t, runIEJoin(t, l, r, conds), nestedLoopIE(l, r, conds))
		}
	}
}

func TestIEJoinEmptyInputs(t *testing.T) {
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Less, RightField: 0},
		{LeftField: 1, Op: plan.Greater, RightField: 1},
	}
	if got := runIEJoin(t, nil, xyRecs(1, 1), conds); len(got) != 0 {
		t.Error("empty left produced pairs")
	}
	if got := runIEJoin(t, xyRecs(1, 1), nil, conds); len(got) != 0 {
		t.Error("empty right produced pairs")
	}
}

func TestIEJoinSingleCondition(t *testing.T) {
	l := xyRecs(1, 0, 5, 0, 3, 0)
	r := xyRecs(2, 0, 4, 0, 6, 0)
	for _, op := range []plan.CompareOp{plan.Less, plan.LessEq, plan.Greater, plan.GreaterEq} {
		conds := []plan.IECondition{{LeftField: 0, Op: op, RightField: 0}}
		assertSame(t, runIEJoin(t, l, r, conds), nestedLoopIE(l, r, conds))
	}
}

func TestIEJoinThreeConditionsViaResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) []data.Record {
		out := make([]data.Record, n)
		for i := range out {
			out[i] = data.NewRecord(
				data.Int(int64(rng.Intn(8))),
				data.Int(int64(rng.Intn(8))),
				data.Int(int64(rng.Intn(8))))
		}
		return out
	}
	l, r := mk(20), mk(20)
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Less, RightField: 0},
		{LeftField: 1, Op: plan.Greater, RightField: 1},
		{LeftField: 2, Op: plan.LessEq, RightField: 2},
	}
	assertSame(t, runIEJoin(t, l, r, conds), nestedLoopIE(l, r, conds))
}

func TestIEJoinResidualPredicate(t *testing.T) {
	l := xyRecs(1, 5, 2, 6)
	r := xyRecs(3, 1, 4, 2)
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Less, RightField: 0},
		{LeftField: 1, Op: plan.Greater, RightField: 1},
	}
	// Residual keeps only pairs where right x is even.
	got, err := IEJoinRecords(l, r, conds, func(_, rr data.Record) (bool, error) {
		return rr.Field(0).Int()%2 == 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range got {
		if rec.Field(2).Int()%2 != 0 {
			t.Errorf("residual not applied: %s", rec)
		}
	}
	if len(got) == 0 {
		t.Error("residual filtered everything (expected some pairs)")
	}
}

func TestIEJoinNoConditions(t *testing.T) {
	if _, err := IEJoinRecords(xyRecs(1, 1), xyRecs(2, 2), nil, nil); err == nil {
		t.Error("IEJoinRecords without conditions accepted")
	}
}

// iePair is a quick generator of small-domain (x, y) tuples; small
// domains maximise ties, the hard case.
type iePair struct{ X, Y int8 }

func TestQuickIEJoinMatchesNestedLoop(t *testing.T) {
	f := func(ls, rs []iePair, op1i, op2i uint8) bool {
		ops := []plan.CompareOp{plan.Less, plan.LessEq, plan.Greater, plan.GreaterEq}
		op1 := ops[int(op1i)%4]
		op2 := ops[int(op2i)%4]
		toRecs := func(ps []iePair) []data.Record {
			out := make([]data.Record, len(ps))
			for i, p := range ps {
				out[i] = data.NewRecord(data.Int(int64(p.X%8)), data.Int(int64(p.Y%8)))
			}
			return out
		}
		l, r := toRecs(ls), toRecs(rs)
		conds := []plan.IECondition{
			{LeftField: 0, Op: op1, RightField: 0},
			{LeftField: 1, Op: op2, RightField: 1},
		}
		got, err := IEJoinRecords(l, r, conds, nil)
		if err != nil {
			return false
		}
		gs := make([]string, len(got))
		for i, rec := range got {
			gs[i] = rec.String()
		}
		sort.Strings(gs)
		return reflect.DeepEqual(gs, append([]string{}, nestedLoopIE(l, r, conds)...)) ||
			(len(gs) == 0 && len(nestedLoopIE(l, r, conds)) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIEJoinVsNestedLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	mk := func() []data.Record {
		out := make([]data.Record, n)
		for i := range out {
			out[i] = data.NewRecord(data.Int(rng.Int63n(1e6)), data.Int(rng.Int63n(1e6)))
		}
		return out
	}
	l, r := mk(), mk()
	conds := []plan.IECondition{
		{LeftField: 0, Op: plan.Greater, RightField: 0},
		{LeftField: 1, Op: plan.Less, RightField: 1},
	}
	b.Run("iejoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			if err := IEJoin(l, r, conds[0], conds[1], func(_, _ data.Record) error { n++; return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nestedloop", func(b *testing.B) {
		pred := func(a, c data.Record) (bool, error) {
			return conds[0].Op.Eval(a.Field(0), c.Field(0)) && conds[1].Op.Eval(a.Field(1), c.Field(1)), nil
		}
		for i := 0; i < b.N; i++ {
			if _, err := NestedLoopJoin(l[:200], r[:200], pred); err != nil {
				b.Fatal(err)
			}
		}
	})
}
