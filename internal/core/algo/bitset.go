package algo

import "math/bits"

// Bitset is a dense bit array. It is the heart of IEJoin (positions of
// already-visited tuples in the first sort order) and doubles as the
// validity bitmap of the columnar batch format: scanning runs of set
// bits word-by-word is what gives both their small constants compared
// to a per-element loop.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a Bitset of n bits, all clear.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of addressable bits.
func (b *Bitset) Len() int { return b.n }

// Set marks bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// ScanRange calls visit for every set bit in [from, to), in ascending
// order. visit returning a non-nil error aborts the scan.
func (b *Bitset) ScanRange(from, to int, visit func(i int) error) error {
	if from < 0 {
		from = 0
	}
	if to > b.n {
		to = b.n
	}
	if from >= to {
		return nil
	}
	firstWord, lastWord := from>>6, (to-1)>>6
	for w := firstWord; w <= lastWord; w++ {
		word := b.words[w]
		if word == 0 {
			continue
		}
		// Mask off bits below `from` in the first word and at/above
		// `to` in the last word.
		if w == firstWord {
			word &= ^uint64(0) << (uint(from) & 63)
		}
		if w == lastWord && (to&63) != 0 {
			word &= (1 << (uint(to) & 63)) - 1
		}
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if err := visit(i); err != nil {
				return err
			}
			word &= word - 1
		}
	}
	return nil
}

// Count returns the number of set bits in [0, n).
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [from, to).
func (b *Bitset) CountRange(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > b.n {
		to = b.n
	}
	if from >= to {
		return 0
	}
	firstWord, lastWord := from>>6, (to-1)>>6
	c := 0
	for w := firstWord; w <= lastWord; w++ {
		word := b.words[w]
		if w == firstWord {
			word &= ^uint64(0) << (uint(from) & 63)
		}
		if w == lastWord && (to&63) != 0 {
			word &= (1 << (uint(to) & 63)) - 1
		}
		c += bits.OnesCount64(word)
	}
	return c
}
