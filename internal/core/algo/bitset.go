package algo

import "math/bits"

// bitset is the dense bit array at the heart of IEJoin: positions of
// already-visited tuples in the first sort order. Scanning runs of set
// bits word-by-word is what gives IEJoin its small constants compared
// to a nested loop.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64), n: n}
}

// set marks bit i.
func (b *bitset) set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// get reports bit i.
func (b *bitset) get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// scanRange calls visit for every set bit in [from, to), in ascending
// order. visit returning a non-nil error aborts the scan.
func (b *bitset) scanRange(from, to int, visit func(i int) error) error {
	if from < 0 {
		from = 0
	}
	if to > b.n {
		to = b.n
	}
	if from >= to {
		return nil
	}
	firstWord, lastWord := from>>6, (to-1)>>6
	for w := firstWord; w <= lastWord; w++ {
		word := b.words[w]
		if word == 0 {
			continue
		}
		// Mask off bits below `from` in the first word and at/above
		// `to` in the last word.
		if w == firstWord {
			word &= ^uint64(0) << (uint(from) & 63)
		}
		if w == lastWord && (to&63) != 0 {
			word &= (1 << (uint(to) & 63)) - 1
		}
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if err := visit(i); err != nil {
				return err
			}
			word &= word - 1
		}
	}
	return nil
}

// count returns the number of set bits in [0, n).
func (b *bitset) count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}
