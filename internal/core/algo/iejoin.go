package algo

import (
	"fmt"
	"sort"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// IEJoin implements the inequality join of Khayyat et al., "Lightning
// Fast and Space Efficient Inequality Joins" (PVLDB 2015) — the
// physical operator the paper adds to RHEEM to make the data cleaning
// application's inequality rules tractable (§5.1).
//
// It evaluates a conjunction of exactly two inequality conditions
//
//	l.A ⊙₁ r.A'  ∧  l.B ⊙₂ r.B'        ⊙ ∈ {<, ≤, >, ≥}
//
// over two inputs, emitting each qualifying (l, r) pair once. The
// classic structure is used: both inputs are merged and sorted twice
// (once per condition), a permutation array maps positions of the
// second sort order into the first, and a bit array of visited
// positions turns pair enumeration into word-wise bit scans. Time is
// O(n log n + output·scan) with tiny constants; the NestedLoopJoin
// baseline is Θ(|l|·|r|) predicate evaluations.
//
// For a single condition use IEJoinSingle. For more than two
// conditions, join on the first two and apply the rest as a residual
// predicate (the optimizer does exactly that).
func IEJoin(l, r []data.Record, c1, c2 plan.IECondition, emit func(l, r data.Record) error) error {
	n := len(l) + len(r)
	if n == 0 || len(l) == 0 || len(r) == 0 {
		return nil
	}

	// tuple is one element of the virtual union of both inputs.
	type tuple struct {
		rec   data.Record
		left  bool
		x, y  data.Value // condition-1 and condition-2 attributes
	}
	tuples := make([]tuple, 0, n)
	for _, rec := range l {
		tuples = append(tuples, tuple{rec: rec, left: true,
			x: rec.Field(c1.LeftField), y: rec.Field(c2.LeftField)})
	}
	for _, rec := range r {
		tuples = append(tuples, tuple{rec: rec, left: false,
			x: rec.Field(c1.RightField), y: rec.Field(c2.RightField)})
	}

	// L1: positions sorted ascending by x (condition-1 attribute).
	l1 := make([]int, n)
	for i := range l1 {
		l1[i] = i
	}
	sort.SliceStable(l1, func(a, b int) bool {
		return data.Compare(tuples[l1[a]].x, tuples[l1[b]].x) < 0
	})
	// posInL1[t] = position of tuple t in L1.
	posInL1 := make([]int, n)
	for pos, t := range l1 {
		posInL1[t] = pos
	}
	// xs[pos] = x value at L1 position pos, for boundary binary search.
	xs := make([]data.Value, n)
	for pos, t := range l1 {
		xs[pos] = tuples[t].x
	}

	// L2: positions sorted by y (condition-2 attribute). Processing
	// order depends on ⊙₂'s direction: for > / ≥ the visited set must
	// hold smaller-y tuples, so we ascend; for < / ≤ we descend.
	l2 := make([]int, n)
	for i := range l2 {
		l2[i] = i
	}
	ascending := c2.Op == plan.Greater || c2.Op == plan.GreaterEq
	sort.SliceStable(l2, func(a, b int) bool {
		c := data.Compare(tuples[l2[a]].y, tuples[l2[b]].y)
		if ascending {
			return c < 0
		}
		return c > 0
	})

	visited := NewBitset(n)
	strict2 := c2.Op == plan.Greater || c2.Op == plan.Less

	// lowerBound returns the first L1 position with x >= v; upperBound
	// the first with x > v.
	lowerBound := func(v data.Value) int {
		return sort.Search(n, func(i int) bool { return data.Compare(xs[i], v) >= 0 })
	}
	upperBound := func(v data.Value) int {
		return sort.Search(n, func(i int) bool { return data.Compare(xs[i], v) > 0 })
	}

	emitFor := func(t int) error {
		tup := tuples[t]
		if !tup.left {
			return nil // only left tuples drive emission
		}
		var from, to int
		switch c1.Op {
		case plan.Less: // l.x < r.x: visited positions with x strictly greater
			from, to = upperBound(tup.x), n
		case plan.LessEq:
			from, to = lowerBound(tup.x), n
		case plan.Greater: // l.x > r.x: visited positions with x strictly smaller
			from, to = 0, lowerBound(tup.x)
		case plan.GreaterEq:
			from, to = 0, upperBound(tup.x)
		default:
			return fmt.Errorf("algo: IEJoin unsupported op %v", c1.Op)
		}
		return visited.ScanRange(from, to, func(pos int) error {
			other := tuples[l1[pos]]
			return emit(tup.rec, other.rec)
		})
	}

	// Process L2 in equal-y groups. Only right tuples are marked (they
	// are the join partners); only left tuples emit. For a strict ⊙₂
	// the current group's right tuples must not be visible to its own
	// left tuples, so marking happens after emission; for a non-strict
	// ⊙₂, before.
	for i := 0; i < n; {
		j := i
		for j < n && data.Compare(tuples[l2[i]].y, tuples[l2[j]].y) == 0 {
			j++
		}
		group := l2[i:j]
		if !strict2 {
			for _, t := range group {
				if !tuples[t].left {
					visited.Set(posInL1[t])
				}
			}
		}
		for _, t := range group {
			if err := emitFor(t); err != nil {
				return err
			}
		}
		if strict2 {
			for _, t := range group {
				if !tuples[t].left {
					visited.Set(posInL1[t])
				}
			}
		}
		i = j
	}
	return nil
}

// IEJoinSingle evaluates a single inequality condition l.A ⊙ r.A' by
// sorting the right input and emitting, for each left record, the
// qualifying sorted range. Output pairs are emitted in left-input
// order, right side in ascending attribute order.
func IEJoinSingle(l, r []data.Record, c plan.IECondition, emit func(l, r data.Record) error) error {
	if len(l) == 0 || len(r) == 0 {
		return nil
	}
	sorted := make([]data.Record, len(r))
	copy(sorted, r)
	sort.SliceStable(sorted, func(a, b int) bool {
		return data.Compare(sorted[a].Field(c.RightField), sorted[b].Field(c.RightField)) < 0
	})
	vals := make([]data.Value, len(sorted))
	for i, rec := range sorted {
		vals[i] = rec.Field(c.RightField)
	}
	lowerBound := func(v data.Value) int {
		return sort.Search(len(vals), func(i int) bool { return data.Compare(vals[i], v) >= 0 })
	}
	upperBound := func(v data.Value) int {
		return sort.Search(len(vals), func(i int) bool { return data.Compare(vals[i], v) > 0 })
	}
	for _, lr := range l {
		v := lr.Field(c.LeftField)
		var from, to int
		switch c.Op {
		case plan.Less:
			from, to = upperBound(v), len(sorted)
		case plan.LessEq:
			from, to = lowerBound(v), len(sorted)
		case plan.Greater:
			from, to = 0, lowerBound(v)
		case plan.GreaterEq:
			from, to = 0, upperBound(v)
		default:
			return fmt.Errorf("algo: IEJoinSingle unsupported op %v", c.Op)
		}
		for i := from; i < to; i++ {
			if err := emit(lr, sorted[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// IEJoinRecords runs IEJoin and materialises Concat(l, r) outputs,
// applying the optional residual predicate. It is the convenience form
// execution operators use.
func IEJoinRecords(l, r []data.Record, conds []plan.IECondition, residual plan.PredFunc) ([]data.Record, error) {
	var out []data.Record
	emit := func(lr, rr data.Record) error {
		if residual != nil {
			ok, err := residual(lr, rr)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		out = append(out, data.Concat(lr, rr))
		return nil
	}
	switch len(conds) {
	case 0:
		return nil, fmt.Errorf("algo: IEJoinRecords needs at least one condition")
	case 1:
		if err := IEJoinSingle(l, r, conds[0], emit); err != nil {
			return nil, err
		}
	default:
		// Conditions beyond the first two become part of the residual.
		res := residual
		extra := conds[2:]
		if len(extra) > 0 {
			res = func(lr, rr data.Record) (bool, error) {
				for _, c := range extra {
					if !c.Op.Eval(lr.Field(c.LeftField), rr.Field(c.RightField)) {
						return false, nil
					}
				}
				if residual != nil {
					return residual(lr, rr)
				}
				return true, nil
			}
		}
		emit2 := func(lr, rr data.Record) error {
			if res != nil {
				ok, err := res(lr, rr)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			out = append(out, data.Concat(lr, rr))
			return nil
		}
		if err := IEJoin(l, r, conds[0], conds[1], emit2); err != nil {
			return nil, err
		}
	}
	return out, nil
}
