// Package algo provides the platform-neutral algorithm kernels behind
// RHEEM's physical operators. Execution operators on every platform
// delegate to these kernels: the single-node engine calls them on whole
// datasets, the Spark simulator calls them per partition (after
// shuffling), and the relational engine calls them on table row sets.
// Keeping the kernels in one place means an algorithmic decision
// (HashGroupBy vs SortGroupBy, HashJoin vs SortMergeJoin vs IEJoin) has
// exactly one implementation to test, and adding a physical operator —
// the paper's extensibility story (§5.2, IEJoin) — means adding one
// kernel plus declarative mappings.
package algo

import (
	"fmt"
	"sort"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Group is one key group produced by a grouping kernel.
type Group struct {
	Key     data.Value
	Records []data.Record
}

// hashBuckets is an open hash table from Value keys to groups, chaining
// on hash collisions with data.Equal as the tie-breaker. Values are not
// Go-comparable (vectors), so the built-in map cannot key them directly.
type hashBuckets struct {
	m map[uint64][]*Group
	n int
}

func newHashBuckets(capacity int) *hashBuckets {
	return &hashBuckets{m: make(map[uint64][]*Group, capacity)}
}

func (h *hashBuckets) get(key data.Value) *Group {
	hv := data.Hash(key, 0)
	for _, g := range h.m[hv] {
		if data.Equal(g.Key, key) {
			return g
		}
	}
	g := &Group{Key: key}
	h.m[hv] = append(h.m[hv], g)
	h.n++
	return g
}

func (h *hashBuckets) groups() []Group {
	out := make([]Group, 0, h.n)
	for _, chain := range h.m {
		for _, g := range chain {
			out = append(out, *g)
		}
	}
	return out
}

// HashGroup groups records by key using hashing. Group order is
// unspecified; callers needing determinism sort the result.
func HashGroup(recs []data.Record, key plan.KeyFunc) ([]Group, error) {
	h := newHashBuckets(len(recs) / 4)
	for _, r := range recs {
		k, err := key(r)
		if err != nil {
			return nil, fmt.Errorf("algo: group key: %w", err)
		}
		g := h.get(k)
		g.Records = append(g.Records, r)
	}
	return h.groups(), nil
}

// SortGroup groups records by key using a stable sort; groups come out
// in ascending key order and records keep their input order within a
// group.
func SortGroup(recs []data.Record, key plan.KeyFunc) ([]Group, error) {
	type keyed struct {
		k data.Value
		r data.Record
	}
	ks := make([]keyed, len(recs))
	for i, r := range recs {
		k, err := key(r)
		if err != nil {
			return nil, fmt.Errorf("algo: group key: %w", err)
		}
		ks[i] = keyed{k, r}
	}
	sort.SliceStable(ks, func(i, j int) bool { return data.Compare(ks[i].k, ks[j].k) < 0 })
	var out []Group
	for i := 0; i < len(ks); {
		j := i
		for j < len(ks) && data.Compare(ks[i].k, ks[j].k) == 0 {
			j++
		}
		g := Group{Key: ks[i].k, Records: make([]data.Record, 0, j-i)}
		for _, kr := range ks[i:j] {
			g.Records = append(g.Records, kr.r)
		}
		out = append(out, g)
		i = j
	}
	return out, nil
}

// ReduceGroups folds each group pairwise with f, returning one record
// per group.
func ReduceGroups(groups []Group, f plan.ReduceFunc) ([]data.Record, error) {
	out := make([]data.Record, 0, len(groups))
	for _, g := range groups {
		acc := g.Records[0]
		var err error
		for _, r := range g.Records[1:] {
			acc, err = f(acc, r)
			if err != nil {
				return nil, fmt.Errorf("algo: reduce: %w", err)
			}
		}
		out = append(out, acc)
	}
	return out, nil
}

// Reduce folds an entire dataset pairwise. An empty input yields an
// empty output (no identity element is assumed).
func Reduce(recs []data.Record, f plan.ReduceFunc) ([]data.Record, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	acc := recs[0]
	var err error
	for _, r := range recs[1:] {
		acc, err = f(acc, r)
		if err != nil {
			return nil, fmt.Errorf("algo: reduce: %w", err)
		}
	}
	return []data.Record{acc}, nil
}

// SortBy orders records by key. The sort is stable.
func SortBy(recs []data.Record, key plan.KeyFunc, desc bool) ([]data.Record, error) {
	type keyed struct {
		k data.Value
		r data.Record
	}
	ks := make([]keyed, len(recs))
	for i, r := range recs {
		k, err := key(r)
		if err != nil {
			return nil, fmt.Errorf("algo: sort key: %w", err)
		}
		ks[i] = keyed{k, r}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		c := data.Compare(ks[i].k, ks[j].k)
		if desc {
			return c > 0
		}
		return c < 0
	})
	out := make([]data.Record, len(ks))
	for i, kr := range ks {
		out[i] = kr.r
	}
	return out, nil
}

// Distinct removes duplicate records (under data.EqualRecords) keeping
// first occurrences in input order.
func Distinct(recs []data.Record) []data.Record {
	seen := make(map[uint64][]data.Record, len(recs)/2)
	out := make([]data.Record, 0, len(recs))
outer:
	for _, r := range recs {
		h := data.HashRecord(r, 0)
		for _, prev := range seen[h] {
			if data.EqualRecords(prev, r) {
				continue outer
			}
		}
		seen[h] = append(seen[h], r)
		out = append(out, r)
	}
	return out
}

// HashJoin equi-joins two datasets, building a hash table on the right
// input and probing with the left. Output records are Concat(l, r) in
// left-input order.
func HashJoin(l, r []data.Record, lkey, rkey plan.KeyFunc) ([]data.Record, error) {
	build := newHashBuckets(len(r) / 2)
	for _, rr := range r {
		k, err := rkey(rr)
		if err != nil {
			return nil, fmt.Errorf("algo: join build key: %w", err)
		}
		g := build.get(k)
		g.Records = append(g.Records, rr)
	}
	var out []data.Record
	for _, lr := range l {
		k, err := lkey(lr)
		if err != nil {
			return nil, fmt.Errorf("algo: join probe key: %w", err)
		}
		hv := data.Hash(k, 0)
		for _, g := range build.m[hv] {
			if !data.Equal(g.Key, k) {
				continue
			}
			for _, rr := range g.Records {
				out = append(out, data.Concat(lr, rr))
			}
		}
	}
	return out, nil
}

// SortMergeJoin equi-joins two datasets by sorting both sides on their
// keys and merging. Output order is ascending key order.
func SortMergeJoin(l, r []data.Record, lkey, rkey plan.KeyFunc) ([]data.Record, error) {
	lg, err := SortGroup(l, lkey)
	if err != nil {
		return nil, err
	}
	rg, err := SortGroup(r, rkey)
	if err != nil {
		return nil, err
	}
	var out []data.Record
	i, j := 0, 0
	for i < len(lg) && j < len(rg) {
		c := data.Compare(lg[i].Key, rg[j].Key)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			for _, lr := range lg[i].Records {
				for _, rr := range rg[j].Records {
					out = append(out, data.Concat(lr, rr))
				}
			}
			i++
			j++
		}
	}
	return out, nil
}

// NestedLoopJoin joins two datasets on an arbitrary predicate by
// comparing every pair — the baseline theta-join the paper's IEJoin
// experiment improves on.
func NestedLoopJoin(l, r []data.Record, pred plan.PredFunc) ([]data.Record, error) {
	var out []data.Record
	for _, lr := range l {
		for _, rr := range r {
			ok, err := pred(lr, rr)
			if err != nil {
				return nil, fmt.Errorf("algo: theta predicate: %w", err)
			}
			if ok {
				out = append(out, data.Concat(lr, rr))
			}
		}
	}
	return out, nil
}

// Cartesian emits the cross product of two datasets.
func Cartesian(l, r []data.Record) []data.Record {
	out := make([]data.Record, 0, len(l)*len(r))
	for _, lr := range l {
		for _, rr := range r {
			out = append(out, data.Concat(lr, rr))
		}
	}
	return out
}
