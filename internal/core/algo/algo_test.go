package algo

import (
	"errors"
	"testing"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func intRecs(vals ...int64) []data.Record {
	out := make([]data.Record, len(vals))
	for i, v := range vals {
		out[i] = data.NewRecord(data.Int(v))
	}
	return out
}

func kvRecs(pairs ...int64) []data.Record {
	out := make([]data.Record, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, data.NewRecord(data.Int(pairs[i]), data.Int(pairs[i+1])))
	}
	return out
}

func groupsByKey(gs []Group) map[int64][]data.Record {
	out := map[int64][]data.Record{}
	for _, g := range gs {
		out[g.Key.Int()] = g.Records
	}
	return out
}

func TestHashGroupAndSortGroupAgree(t *testing.T) {
	recs := kvRecs(1, 10, 2, 20, 1, 11, 3, 30, 2, 21, 1, 12)
	hg, err := HashGroup(recs, plan.FieldKey(0))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := SortGroup(recs, plan.FieldKey(0))
	if err != nil {
		t.Fatal(err)
	}
	hm, sm := groupsByKey(hg), groupsByKey(sg)
	if len(hm) != 3 || len(sm) != 3 {
		t.Fatalf("group counts: hash=%d sort=%d", len(hm), len(sm))
	}
	for k := range hm {
		if len(hm[k]) != len(sm[k]) {
			t.Errorf("key %d: hash %d records, sort %d", k, len(hm[k]), len(sm[k]))
		}
	}
	// SortGroup yields ascending keys and stable within-group order.
	if !(sg[0].Key.Int() == 1 && sg[1].Key.Int() == 2 && sg[2].Key.Int() == 3) {
		t.Error("SortGroup keys not ascending")
	}
	vals := sg[0].Records
	if vals[0].Field(1).Int() != 10 || vals[1].Field(1).Int() != 11 || vals[2].Field(1).Int() != 12 {
		t.Error("SortGroup not stable within group")
	}
}

func TestGroupKeyError(t *testing.T) {
	boom := errors.New("boom")
	bad := func(data.Record) (data.Value, error) { return data.Null(), boom }
	if _, err := HashGroup(intRecs(1), bad); !errors.Is(err, boom) {
		t.Error("HashGroup did not propagate key error")
	}
	if _, err := SortGroup(intRecs(1), bad); !errors.Is(err, boom) {
		t.Error("SortGroup did not propagate key error")
	}
}

func TestReduceGroupsAndReduce(t *testing.T) {
	recs := kvRecs(1, 10, 1, 5, 2, 7)
	gs, _ := SortGroup(recs, plan.FieldKey(0))
	red, err := ReduceGroups(gs, plan.SumField(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != 2 || red[0].Field(1).Int() != 15 || red[1].Field(1).Int() != 7 {
		t.Errorf("ReduceGroups = %v", red)
	}

	all, err := Reduce(intRecs(1, 2, 3, 4), plan.SumField(0))
	if err != nil || len(all) != 1 || all[0].Field(0).Int() != 10 {
		t.Errorf("Reduce = %v, %v", all, err)
	}
	empty, err := Reduce(nil, plan.SumField(0))
	if err != nil || len(empty) != 0 {
		t.Error("Reduce on empty input should be empty")
	}
}

func TestSortBy(t *testing.T) {
	recs := kvRecs(3, 0, 1, 1, 2, 2, 1, 3)
	asc, err := SortBy(recs, plan.FieldKey(0), false)
	if err != nil {
		t.Fatal(err)
	}
	wantAsc := []int64{1, 1, 2, 3}
	for i, w := range wantAsc {
		if asc[i].Field(0).Int() != w {
			t.Fatalf("asc[%d] = %s", i, asc[i])
		}
	}
	// Stability: the two key-1 records keep input order.
	if asc[0].Field(1).Int() != 1 || asc[1].Field(1).Int() != 3 {
		t.Error("SortBy not stable")
	}
	desc, _ := SortBy(recs, plan.FieldKey(0), true)
	if desc[0].Field(0).Int() != 3 || desc[3].Field(0).Int() != 1 {
		t.Error("descending sort wrong")
	}
	// Input untouched.
	if recs[0].Field(0).Int() != 3 {
		t.Error("SortBy mutated input")
	}
}

func TestDistinct(t *testing.T) {
	recs := intRecs(1, 2, 1, 3, 2, 1)
	got := Distinct(recs)
	if len(got) != 3 {
		t.Fatalf("Distinct kept %d", len(got))
	}
	for i, w := range []int64{1, 2, 3} {
		if got[i].Field(0).Int() != w {
			t.Errorf("Distinct[%d] = %s (first-occurrence order lost)", i, got[i])
		}
	}
	if len(Distinct(nil)) != 0 {
		t.Error("Distinct(nil) non-empty")
	}
}

func joinKeySet(recs []data.Record) map[string]int {
	m := map[string]int{}
	for _, r := range recs {
		m[r.String()]++
	}
	return m
}

func TestJoinsAgree(t *testing.T) {
	l := kvRecs(1, 100, 2, 200, 2, 201, 4, 400)
	r := kvRecs(2, -2, 3, -3, 2, -22, 1, -1)
	hj, err := HashJoin(l, r, plan.FieldKey(0), plan.FieldKey(0))
	if err != nil {
		t.Fatal(err)
	}
	smj, err := SortMergeJoin(l, r, plan.FieldKey(0), plan.FieldKey(0))
	if err != nil {
		t.Fatal(err)
	}
	nlj, err := NestedLoopJoin(l, r, func(a, b data.Record) (bool, error) {
		return data.Equal(a.Field(0), b.Field(0)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// key 1: 1 pair, key 2: 2*2 = 4 pairs → 5 total.
	if len(hj) != 5 || len(smj) != 5 || len(nlj) != 5 {
		t.Fatalf("join sizes hash=%d smj=%d nlj=%d, want 5", len(hj), len(smj), len(nlj))
	}
	a, b, c := joinKeySet(hj), joinKeySet(smj), joinKeySet(nlj)
	for k := range a {
		if a[k] != b[k] || a[k] != c[k] {
			t.Errorf("join outputs disagree on %s", k)
		}
	}
	// Join output is the concatenation of both records.
	if hj[0].Len() != 4 {
		t.Errorf("join output arity %d", hj[0].Len())
	}
}

func TestJoinEmptySides(t *testing.T) {
	l := kvRecs(1, 1)
	if got, _ := HashJoin(l, nil, plan.FieldKey(0), plan.FieldKey(0)); len(got) != 0 {
		t.Error("HashJoin with empty right non-empty")
	}
	if got, _ := SortMergeJoin(nil, l, plan.FieldKey(0), plan.FieldKey(0)); len(got) != 0 {
		t.Error("SortMergeJoin with empty left non-empty")
	}
}

func TestCartesian(t *testing.T) {
	got := Cartesian(intRecs(1, 2), intRecs(10, 20, 30))
	if len(got) != 6 {
		t.Fatalf("Cartesian size %d", len(got))
	}
	if got[0].Field(0).Int() != 1 || got[0].Field(1).Int() != 10 {
		t.Errorf("Cartesian[0] = %s", got[0])
	}
}

func TestBitsetScanRange(t *testing.T) {
	b := NewBitset(200)
	for _, i := range []int{0, 63, 64, 65, 130, 199} {
		b.Set(i)
	}
	if !b.Get(64) || b.Get(1) {
		t.Error("get wrong")
	}
	if b.Count() != 6 {
		t.Errorf("count = %d", b.Count())
	}
	var got []int
	collect := func(i int) error { got = append(got, i); return nil }
	if err := b.ScanRange(1, 199, collect); err != nil {
		t.Fatal(err)
	}
	want := []int{63, 64, 65, 130}
	if len(got) != len(want) {
		t.Fatalf("scan got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v want %v", got, want)
		}
	}
	// Degenerate and clamped ranges.
	got = nil
	if err := b.ScanRange(-5, 1, collect); err != nil || len(got) != 1 || got[0] != 0 {
		t.Errorf("clamped scan got %v", got)
	}
	got = nil
	if err := b.ScanRange(10, 10, collect); err != nil || len(got) != 0 {
		t.Error("empty range scanned bits")
	}
	got = nil
	if err := b.ScanRange(190, 1000, collect); err != nil || len(got) != 1 || got[0] != 199 {
		t.Errorf("tail scan got %v", got)
	}
}

func TestBitsetScanAbort(t *testing.T) {
	b := NewBitset(10)
	b.Set(2)
	b.Set(5)
	boom := errors.New("stop")
	calls := 0
	err := b.ScanRange(0, 10, func(int) error { calls++; return boom })
	if !errors.Is(err, boom) || calls != 1 {
		t.Errorf("scan abort: err=%v calls=%d", err, calls)
	}
}
