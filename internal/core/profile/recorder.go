package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rheem/internal/core/trace"
	"rheem/internal/data"
	"rheem/internal/storage"
)

// DefaultHistory is how many completed-run records a recorder keeps
// when the caller does not say.
const DefaultHistory = 64

// datasetPrefix names persisted records in the storage layer:
// "runprofile-<runID>".
const datasetPrefix = "runprofile-"

// recordSchema is the one-column storage schema a persisted record is
// written under — the record's JSON as a single string quantum.
var recordSchema = data.MustSchema(data.Field{Name: "json", Type: data.KindString})

// Record is one completed run as the flight recorder keeps it: the raw
// spans and audit trail plus the profile built from them. Spans lose
// their Atom pointers when persisted, so the profile travels with them
// instead of being recomputed.
type Record struct {
	Schema  int               `json:"schema"`
	RunID   int64             `json:"run_id"`
	Name    string            `json:"name"`
	Spans   []*trace.Span     `json:"spans"`
	Audits  []trace.CardAudit `json:"audits,omitempty"`
	Profile *Profile          `json:"profile"`
}

// Recorder keeps a bounded history of completed-run records, optionally
// persisting each through the storage layer so the history survives a
// process restart. All methods are safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	history int
	store   *storage.Manager
	recs    map[int64]*Record
	order   []int64 // insertion order, oldest first
}

// NewRecorder returns a recorder keeping up to history records
// (0 → DefaultHistory). A nil store keeps records in memory only.
func NewRecorder(history int, store *storage.Manager) *Recorder {
	if history <= 0 {
		history = DefaultHistory
	}
	return &Recorder{history: history, store: store, recs: map[int64]*Record{}}
}

// History returns the bound on retained records.
func (r *Recorder) History() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.history
}

// SetHistory rebounds the record history (negative clamps to zero) and
// evicts immediately if the new bound is tighter — the same semantics
// as the run tracker's SetDoneHistory.
func (r *Recorder) SetHistory(n int) {
	if n < 0 {
		n = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.history = n
	r.trimLocked()
}

// Record folds a completed run into the history: builds its profile,
// evicts past the history bound and persists the record if a store is
// configured. Returns the stored record.
func (r *Recorder) Record(runID int64, name string, started, ended time.Time, runErr error, tr *trace.Trace) *Record {
	errStr := ""
	if runErr != nil {
		errStr = runErr.Error()
	}
	var spans []*trace.Span
	var audits []trace.CardAudit
	if tr != nil {
		spans, audits = tr.Spans, tr.Audits
	}
	rec := &Record{
		Schema:  Schema,
		RunID:   runID,
		Name:    name,
		Spans:   spans,
		Audits:  audits,
		Profile: Build(runID, name, started, ended, errStr, spans),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.recs[runID]; !dup {
		r.order = append(r.order, runID)
	}
	r.recs[runID] = rec
	r.trimLocked()
	if r.recs[runID] == rec { // not evicted by a zero history bound
		r.persistLocked(rec)
	}
	return rec
}

// Annotate appends spans to an already-recorded run — the job service
// uses it to attach the admission/queue/dispatch phases after the job
// reaches its terminal state — then rebuilds the profile and
// re-persists. Spans with ID 0 are assigned IDs continuing past the
// record's highest. Unknown runs (evicted, or never recorded) return an
// error. Annotate installs a replacement record rather than mutating in
// place: a Record returned by Get is immutable, so concurrent readers
// (the monitoring endpoints) never observe a half-updated profile.
func (r *Recorder) Annotate(runID int64, spans ...*trace.Span) error {
	if len(spans) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.recs[runID]
	if !ok {
		return fmt.Errorf("profile: no record for run %d", runID)
	}
	maxID := 0
	for _, sp := range old.Spans {
		if sp.ID > maxID {
			maxID = sp.ID
		}
	}
	rec := *old
	rec.Spans = append(append([]*trace.Span(nil), old.Spans...), spans...)
	for _, sp := range spans {
		if sp.ID == 0 {
			maxID++
			sp.ID = maxID
		}
	}
	p := old.Profile
	rec.Profile = Build(rec.RunID, rec.Name, p.StartedAt, p.EndedAt, p.Err, rec.Spans)
	r.recs[runID] = &rec
	r.persistLocked(&rec)
	return nil
}

// Get returns the record for a run, if still retained.
func (r *Recorder) Get(runID int64) (*Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.recs[runID]
	return rec, ok
}

// Runs lists retained run IDs, ascending.
func (r *Recorder) Runs() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]int64(nil), r.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LoadPersisted rehydrates the history from the storage layer after a
// restart: adopts datasets written by a previous process, decodes every
// runprofile-* record, and returns the highest run ID seen so the run
// tracker can seed its counter past it. Records beyond the history
// bound are evicted oldest-first, exactly as if they had just been
// recorded.
func (r *Recorder) LoadPersisted() (maxRunID int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.store == nil {
		return 0, nil
	}
	r.store.Adopt()
	var ids []int64
	for _, ds := range r.store.Datasets() {
		id, ok := strings.CutPrefix(ds, datasetPrefix)
		if !ok {
			continue
		}
		n, perr := strconv.ParseInt(id, 10, 64)
		if perr != nil {
			continue
		}
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		_, recs, gerr := r.store.Get(datasetPrefix + strconv.FormatInt(id, 10))
		if gerr != nil {
			return 0, fmt.Errorf("profile: loading run %d: %w", id, gerr)
		}
		if len(recs) != 1 {
			return 0, fmt.Errorf("profile: run %d dataset has %d quanta, want 1", id, len(recs))
		}
		var rec Record
		if uerr := json.Unmarshal([]byte(recs[0].Field(0).Str()), &rec); uerr != nil {
			return 0, fmt.Errorf("profile: decoding run %d: %w", id, uerr)
		}
		if _, dup := r.recs[id]; !dup {
			r.order = append(r.order, id)
		}
		r.recs[id] = &rec
		if id > maxRunID {
			maxRunID = id
		}
	}
	r.trimLocked()
	return maxRunID, nil
}

// trimLocked evicts the oldest records past the history bound,
// deleting their persisted datasets.
func (r *Recorder) trimLocked() {
	excess := len(r.order) - r.history
	if excess <= 0 {
		return
	}
	for _, id := range r.order[:excess] {
		delete(r.recs, id)
		if r.store != nil {
			// Best-effort: the dataset may predate persistence or be gone.
			_ = r.store.Delete(datasetPrefix + strconv.FormatInt(id, 10))
		}
	}
	copy(r.order, r.order[excess:])
	r.order = r.order[:len(r.order)-excess]
}

// persistLocked writes one record through the storage manager as a
// single-quantum dataset holding the record's JSON.
func (r *Recorder) persistLocked(rec *Record) {
	if r.store == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	// Best-effort: a full store must not fail the run that produced the
	// profile; the in-memory record still serves until eviction.
	_, _ = r.store.Put(storage.PutRequest{
		Dataset: datasetPrefix + strconv.FormatInt(rec.RunID, 10),
		Schema:  recordSchema,
		Records: []data.Record{data.NewRecord(data.Str(string(b)))},
	})
}
