package profile

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/trace"
	"rheem/internal/storage"
	"rheem/internal/storage/csvstore"
	"rheem/internal/storage/memstore"
)

var base = time.Unix(2000, 0).UTC()

// at offsets the test epoch by whole seconds.
func at(sec int) time.Time { return base.Add(time.Duration(sec) * time.Second) }

// span builds an ended atom span covering [start, end] seconds.
func span(id int, name string, start, end int) *trace.Span {
	return &trace.Span{
		ID: id, Kind: trace.KindAtom, AtomID: id, Name: name, Platform: "java",
		Plan: "p", Iteration: -1, Shard: -1,
		StartedAt: at(start), EndedAt: at(end),
		Wall: at(end).Sub(at(start)),
	}
}

// chainAtoms wires spans into a linear dependency chain via their task
// atoms: span i+1's operator consumes span i's.
func chainAtoms(spans ...*trace.Span) {
	var prev *physical.Operator
	for _, sp := range spans {
		op := &physical.Operator{ID: sp.AtomID * 10}
		if prev != nil {
			op.Inputs = []*physical.Operator{prev}
		}
		sp.Atom = &engine.TaskAtom{ID: sp.AtomID, Kind: engine.AtomCompute, Ops: []*physical.Operator{op}}
		prev = op
	}
}

func TestCriticalPathSerialEqualsWall(t *testing.T) {
	spans := []*trace.Span{
		span(1, "source", 0, 1),
		span(2, "map", 1, 3),
		span(3, "sink", 3, 6),
	}
	chainAtoms(spans...)
	p := Build(1, "serial", at(0), at(6), "", spans)
	if p.WallNS != int64(6*time.Second) {
		t.Fatalf("wall = %d", p.WallNS)
	}
	if p.CriticalPathNS != p.WallNS {
		t.Errorf("critical path %d != wall %d for a serial plan", p.CriticalPathNS, p.WallNS)
	}
	if len(p.CriticalPath) != 3 {
		t.Fatalf("path has %d steps: %+v", len(p.CriticalPath), p.CriticalPath)
	}
	for i, wantName := range []string{"source", "map", "sink"} {
		if p.CriticalPath[i].Name != wantName {
			t.Errorf("step %d = %q, want %q", i, p.CriticalPath[i].Name, wantName)
		}
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// A feeds B and C (parallel; B is slower), both feed D.
	a, b, c, d := span(1, "a", 0, 1), span(2, "b", 1, 5), span(3, "c", 1, 2), span(4, "d", 5, 7)
	opA := &physical.Operator{ID: 10}
	opB := &physical.Operator{ID: 20, Inputs: []*physical.Operator{opA}}
	opC := &physical.Operator{ID: 30, Inputs: []*physical.Operator{opA}}
	opD := &physical.Operator{ID: 40, Inputs: []*physical.Operator{opB, opC}}
	for sp, op := range map[*trace.Span]*physical.Operator{a: opA, b: opB, c: opC, d: opD} {
		sp.Atom = &engine.TaskAtom{ID: sp.AtomID, Kind: engine.AtomCompute, Ops: []*physical.Operator{op}}
	}
	p := Build(1, "diamond", at(0), at(7), "", []*trace.Span{a, b, c, d})
	want := int64(7 * time.Second) // a(1) + b(4) + d(2)
	if p.CriticalPathNS != want {
		t.Errorf("critical path = %d, want %d", p.CriticalPathNS, want)
	}
	if p.CriticalPathNS > p.WallNS {
		t.Errorf("critical path %d exceeds wall %d", p.CriticalPathNS, p.WallNS)
	}
	got := make([]string, len(p.CriticalPath))
	for i, st := range p.CriticalPath {
		got[i] = st.Name
	}
	if strings.Join(got, ",") != "a,b,d" {
		t.Errorf("path = %v, want a,b,d", got)
	}
}

func TestCriticalPathIntervalFallback(t *testing.T) {
	// No atom structure: precedence falls back to end-before-start.
	spans := []*trace.Span{
		span(1, "x", 0, 2),
		span(2, "y", 2, 3),
		span(3, "z", 1, 4), // overlaps x and y: only x precedes it
	}
	p := Build(1, "fallback", at(0), at(4), "", spans)
	// Longest chain: x(2) + z's... z starts at 1 < x's end 2, so x does
	// NOT precede z; chains are x→y (3s) and z alone (3s). Tie broken
	// by lower span ID at the head.
	if p.CriticalPathNS != int64(3*time.Second) {
		t.Errorf("critical path = %d, want 3s", p.CriticalPathNS)
	}
	if p.CriticalPathNS > p.WallNS {
		t.Errorf("critical path %d exceeds wall %d", p.CriticalPathNS, p.WallNS)
	}
}

func TestAttributionBuckets(t *testing.T) {
	sp := span(1, "map", 0, 10)
	sp.QueueWait = 2 * time.Second
	sp.ConvTime = time.Second
	sp.Retries = 1
	sp.Attempts = []trace.Attempt{
		{Number: 1, Wall: 3 * time.Second, Err: "transient"},
		{Number: 2, Wall: 5 * time.Second},
	}
	other := span(2, "sink", 10, 12)
	other.Platform = "spark"
	p := Build(1, "attr", at(0), at(12), "", []*trace.Span{sp, other})

	if p.Total.QueueWaitNS != int64(2*time.Second) ||
		p.Total.ComputeNS != int64(7*time.Second) || // 5s success + other's 2s wall
		p.Total.ConvNS != int64(time.Second) ||
		p.Total.RetryNS != int64(3*time.Second) {
		t.Errorf("total buckets = %+v", p.Total)
	}
	if len(p.Platforms) != 2 || p.Platforms[0].Platform != "java" || p.Platforms[1].Platform != "spark" {
		t.Fatalf("platforms = %+v", p.Platforms)
	}
	if p.Platforms[0].RetryNS != int64(3*time.Second) || p.Platforms[1].ComputeNS != int64(2*time.Second) {
		t.Errorf("platform split = %+v", p.Platforms)
	}
	if len(p.Operators) != 2 || p.Operators[0].Name != "map" || p.Operators[0].Spans != 1 {
		t.Errorf("operators = %+v", p.Operators)
	}
}

func TestShardStatsAndFormats(t *testing.T) {
	atomSpan := span(1, "map", 0, 4)
	atomSpan.Shards = 2
	atomSpan.InFormats = map[string]int{"batch": 2}
	s0 := span(2, "map", 0, 1)
	s0.Kind, s0.AtomID, s0.Shard, s0.Shards = trace.KindShard, 1, 0, 2
	s1 := span(3, "map", 0, 4)
	s1.Kind, s1.AtomID, s1.Shard, s1.Shards = trace.KindShard, 1, 1, 2
	p := Build(1, "shards", at(0), at(4), "", []*trace.Span{atomSpan, s0, s1})

	if len(p.ShardStats) != 1 {
		t.Fatalf("shard stats = %+v", p.ShardStats)
	}
	st := p.ShardStats[0]
	if st.Shards != 2 || st.Executions != 2 ||
		st.MinWallNS != int64(time.Second) || st.MaxWallNS != int64(4*time.Second) {
		t.Errorf("stat = %+v", st)
	}
	// mean 2.5s, max 4s → 60% over mean.
	if st.ImbalancePct < 59.9 || st.ImbalancePct > 60.1 {
		t.Errorf("imbalance = %v, want 60", st.ImbalancePct)
	}
	if p.Formats["batch"] != 2 {
		t.Errorf("formats = %v", p.Formats)
	}
	// Shard spans must not double into attribution or atom counts.
	if p.Atoms != 1 || p.Total.ComputeNS != int64(4*time.Second) {
		t.Errorf("atoms = %d total = %+v", p.Atoms, p.Total)
	}
}

func TestTopAtomsBounded(t *testing.T) {
	var spans []*trace.Span
	for i := 1; i <= TopN+5; i++ {
		spans = append(spans, span(i, fmt.Sprintf("op%d", i), 0, i))
	}
	p := Build(1, "top", at(0), at(TopN+5), "", spans)
	if len(p.TopAtoms) != TopN {
		t.Fatalf("top atoms = %d, want %d", len(p.TopAtoms), TopN)
	}
	if p.TopAtoms[0].WallNS != int64(time.Duration(TopN+5)*time.Second) {
		t.Errorf("slowest = %+v", p.TopAtoms[0])
	}
	for i := 1; i < len(p.TopAtoms); i++ {
		if p.TopAtoms[i].WallNS > p.TopAtoms[i-1].WallNS {
			t.Errorf("top atoms not sorted at %d", i)
		}
	}
}

func TestPhasesOrdered(t *testing.T) {
	mk := func(kind string, start, end int) *trace.Span {
		return &trace.Span{
			Kind: kind, Name: kind, Plan: "t/demo#j-1", Iteration: -1, Shard: -1,
			Job: "j-1", Tenant: "t",
			StartedAt: at(start), EndedAt: at(end), Wall: at(end).Sub(at(start)),
		}
	}
	spans := []*trace.Span{
		span(1, "map", 2, 3),
		mk(trace.KindDispatch, 2, 4),
		mk(trace.KindAdmission, 0, 1),
		mk(trace.KindQueue, 1, 2),
	}
	p := Build(1, "phases", at(0), at(4), "", spans)
	if len(p.Phases) != 3 {
		t.Fatalf("phases = %+v", p.Phases)
	}
	for i, kind := range []string{trace.KindAdmission, trace.KindQueue, trace.KindDispatch} {
		if p.Phases[i].Kind != kind {
			t.Errorf("phase %d = %q, want %q", i, p.Phases[i].Kind, kind)
		}
	}
	if p.Phases[0].Job != "j-1" || p.Phases[0].Tenant != "t" {
		t.Errorf("phase correlation = %+v", p.Phases[0])
	}
	// Service spans are not atoms and not on the critical path.
	if p.Atoms != 1 {
		t.Errorf("atoms = %d", p.Atoms)
	}
}

func testRecord(t *testing.T) *Record {
	t.Helper()
	spans := []*trace.Span{
		span(1, "source", 0, 1),
		span(2, "map", 1, 3),
		span(3, "sink", 3, 6),
	}
	chainAtoms(spans...)
	spans[1].InFormats = map[string]int{"batch": 1}
	snap := &trace.Trace{Spans: spans, Audits: []trace.CardAudit{
		{OpID: 10, OpName: "map", Platform: "java", Estimated: 10, Actual: 20, ErrFactor: 2},
	}}
	return NewRecorder(4, nil).Record(7, "demo", at(0), at(6), nil, snap)
}

func TestPerfettoExportParsesAndIsDeterministic(t *testing.T) {
	rec := testRecord(t)
	var a, b bytes.Buffer
	if err := rec.WritePerfetto(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("perfetto export is not deterministic")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export does not parse: %v\n%s", err, a.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var slices, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Errorf("slice %q has dur %d", ev.Name, ev.Dur)
			}
		case "M":
			metas++
		}
	}
	if slices != 3 || metas == 0 {
		t.Errorf("export has %d slices, %d metadata events", slices, metas)
	}
}

func TestRecorderEviction(t *testing.T) {
	store := storage.NewManager(0, nil)
	if err := store.Register(memstore.New(1 << 30)); err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(2, store)
	for id := int64(1); id <= 3; id++ {
		r.Record(id, "run", at(0), at(1), nil, &trace.Trace{Spans: []*trace.Span{span(1, "op", 0, 1)}})
	}
	if got := r.Runs(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("runs = %v, want [2 3]", got)
	}
	if _, ok := r.Get(1); ok {
		t.Error("evicted run 1 still retained")
	}
	if ds := store.Datasets(); len(ds) != 2 || ds[0] != "runprofile-2" || ds[1] != "runprofile-3" {
		t.Errorf("persisted datasets = %v", ds)
	}
	// Tightening the bound evicts immediately, like SetDoneHistory.
	r.SetHistory(1)
	if got := r.Runs(); len(got) != 1 || got[0] != 3 {
		t.Errorf("runs after SetHistory(1) = %v", got)
	}
	if ds := store.Datasets(); len(ds) != 1 || ds[0] != "runprofile-3" {
		t.Errorf("datasets after SetHistory(1) = %v", ds)
	}
}

func TestRecorderAnnotate(t *testing.T) {
	r := NewRecorder(4, nil)
	r.Record(9, "demo", at(0), at(6), nil, &trace.Trace{Spans: []*trace.Span{span(1, "map", 1, 3)}})
	err := r.Annotate(9, &trace.Span{
		Kind: trace.KindDispatch, Name: "dispatch", Plan: "t/demo#j-1",
		Iteration: -1, Shard: -1, Job: "j-1", Tenant: "t",
		StartedAt: at(0), EndedAt: at(6), Wall: 6 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := r.Get(9)
	if len(rec.Spans) != 2 || rec.Spans[1].ID != 2 {
		t.Fatalf("annotated spans = %+v", rec.Spans)
	}
	if len(rec.Profile.Phases) != 1 || rec.Profile.Phases[0].Kind != trace.KindDispatch {
		t.Errorf("profile phases = %+v", rec.Profile.Phases)
	}
	if err := r.Annotate(999, &trace.Span{Kind: trace.KindQueue}); err == nil {
		t.Error("annotating an unknown run did not error")
	}
}

func TestRecorderFailedRun(t *testing.T) {
	r := NewRecorder(4, nil)
	rec := r.Record(3, "boom", at(0), at(2), errors.New("injected"), nil)
	if rec.Profile.Err != "injected" || rec.Profile.Spans != 0 {
		t.Errorf("failed-run profile = %+v", rec.Profile)
	}
}

// TestRecorderPersistenceSurvivesRestart is the acceptance bar: a fresh
// recorder over a fresh manager on the same directory must reproduce
// the profile JSON and the Perfetto export byte-identically.
func TestRecorderPersistenceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := csvstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(0, nil)
	if err := mgr.Register(st); err != nil {
		t.Fatal(err)
	}
	r1 := NewRecorder(4, mgr)
	spans := []*trace.Span{span(1, "source", 0, 1), span(2, "sink", 1, 4)}
	chainAtoms(spans...)
	spans[0].QueueWait = 100 * time.Millisecond
	spans[1].Attempts = []trace.Attempt{{Number: 1, Wall: 3 * time.Second}}
	r1.Record(5, "restart-demo", at(0), at(4), nil, &trace.Trace{Spans: spans})
	if err := r1.Annotate(5, &trace.Span{
		Kind: trace.KindDispatch, Name: "dispatch", Plan: "t/d#j-1",
		Iteration: -1, Shard: -1, Job: "j-1", Tenant: "t",
		StartedAt: at(0), EndedAt: at(4), Wall: 4 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	before, _ := r1.Get(5)
	profBefore, err := json.MarshalIndent(before.Profile, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var perfBefore bytes.Buffer
	if err := before.WritePerfetto(&perfBefore); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store, fresh manager, fresh recorder, same dir.
	st2, err := csvstore.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := storage.NewManager(0, nil)
	if err := mgr2.Register(st2); err != nil {
		t.Fatal(err)
	}
	r2 := NewRecorder(4, mgr2)
	maxID, err := r2.LoadPersisted()
	if err != nil {
		t.Fatal(err)
	}
	if maxID != 5 {
		t.Errorf("max persisted run ID = %d, want 5", maxID)
	}
	after, ok := r2.Get(5)
	if !ok {
		t.Fatal("run 5 missing after restart")
	}
	profAfter, err := json.MarshalIndent(after.Profile, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(profBefore, profAfter) {
		t.Errorf("profile changed across restart:\nbefore %s\nafter  %s", profBefore, profAfter)
	}
	var perfAfter bytes.Buffer
	if err := after.WritePerfetto(&perfAfter); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(perfBefore.Bytes(), perfAfter.Bytes()) {
		t.Errorf("perfetto export changed across restart:\nbefore %s\nafter  %s", perfBefore.String(), perfAfter.String())
	}
	// Critical path (1s + 100ms queue wait + 3s) was computed
	// pre-restart from atom structure and must survive even though Atom
	// pointers are gone now.
	if after.Profile.CriticalPathNS != int64(4*time.Second+100*time.Millisecond) {
		t.Errorf("critical path after restart = %d", after.Profile.CriticalPathNS)
	}
	if after.Spans[0].Atom != nil {
		t.Error("persisted span carried its Atom pointer")
	}
}
