// Package profile is the run flight recorder: it folds one run's span
// trace into a Profile — critical path over the span DAG, time
// attribution split into queue-wait/compute/conversion/retry per
// platform and per operator, top-N slowest atoms, shard-imbalance
// stats — and exports any recorded run as Chrome-trace-event (Perfetto)
// JSON. The paper's freedom argument rests on knowing *where* a
// cross-platform plan spends its time; aggregates (the metrics Hub)
// answer that for the fleet, this package answers it for a single run.
//
// A Profile is computed once, when the run is recorded: the critical
// path needs each span's task-atom structure (Span.Atom), which is not
// serialized, so the analysis cannot be redone from persisted spans.
// Everything the Profile derives is plain serializable data, and a
// persisted Record reproduces its profile and Perfetto export
// byte-identically after a restart.
package profile

import (
	"sort"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/trace"
)

// Schema versions the persisted profile/record JSON.
const Schema = 1

// TopN is how many slowest atoms a profile retains.
const TopN = 10

// Buckets splits time into the four costs the cross-platform trade-off
// turns on: scheduler queueing, useful platform compute, inter-platform
// data conversion, and wasted retry work. QueueWait, Compute and Retry
// are measured host time; Conv is the channel registry's modelled
// movement time (the executor charges conversions in sim time).
type Buckets struct {
	QueueWaitNS int64 `json:"queue_wait_ns"`
	ComputeNS   int64 `json:"compute_ns"`
	ConvNS      int64 `json:"conv_ns"`
	RetryNS     int64 `json:"retry_ns"`
}

func (b *Buckets) add(o Buckets) {
	b.QueueWaitNS += o.QueueWaitNS
	b.ComputeNS += o.ComputeNS
	b.ConvNS += o.ConvNS
	b.RetryNS += o.RetryNS
}

// bucketsOf attributes one atom span's time. Successful attempts are
// compute, failed attempts are retry waste; a span with no recorded
// attempts (synthetic test spans) charges its whole wall to compute.
func bucketsOf(sp *trace.Span) Buckets {
	b := Buckets{QueueWaitNS: int64(sp.QueueWait), ConvNS: int64(sp.ConvTime)}
	if len(sp.Attempts) == 0 {
		b.ComputeNS = int64(sp.Wall)
		return b
	}
	for _, at := range sp.Attempts {
		if at.Err == "" {
			b.ComputeNS += int64(at.Wall)
		} else {
			b.RetryNS += int64(at.Wall)
		}
	}
	return b
}

// PlatformProfile is a platform's share of the run.
type PlatformProfile struct {
	Platform string `json:"platform"`
	Atoms    int    `json:"atoms"`
	Buckets
}

// OperatorProfile attributes time to one operator chain on one
// platform (a failover run shows the same chain on both platforms).
type OperatorProfile struct {
	Name     string `json:"name"`
	Platform string `json:"platform"`
	Spans    int    `json:"spans"`
	Buckets
}

// PathStep is one span on the critical path, in execution order.
type PathStep struct {
	SpanID      int    `json:"span_id"`
	AtomID      int    `json:"atom_id"`
	Kind        string `json:"kind"`
	Name        string `json:"name"`
	Platform    string `json:"platform,omitempty"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	WallNS      int64  `json:"wall_ns"`
}

// AtomSummary is one row of the top-N slowest atoms table.
type AtomSummary struct {
	SpanID      int    `json:"span_id"`
	AtomID      int    `json:"atom_id"`
	Name        string `json:"name"`
	Platform    string `json:"platform,omitempty"`
	Iteration   int    `json:"iteration"`
	WallNS      int64  `json:"wall_ns"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	ConvNS      int64  `json:"conv_ns"`
	Retries     int    `json:"retries"`
}

// ShardStat summarizes the shard spans of one sharded atom execution:
// fan-out width, observed executions (more than Shards under retries),
// and wall-clock spread. ImbalancePct is 100·(max−mean)/mean — how much
// longer the straggler ran than the average shard.
type ShardStat struct {
	AtomID       int     `json:"atom_id"`
	Name         string  `json:"name"`
	Platform     string  `json:"platform"`
	Iteration    int     `json:"iteration"`
	Shards       int     `json:"shards"`
	Executions   int     `json:"executions"`
	MinWallNS    int64   `json:"min_wall_ns"`
	MaxWallNS    int64   `json:"max_wall_ns"`
	MeanWallNS   int64   `json:"mean_wall_ns"`
	ImbalancePct float64 `json:"imbalance_pct"`
}

// Phase is one service-layer span (admission, queue, dispatch) of the
// job that owned this run — present only on runs annotated by the job
// service.
type Phase struct {
	Kind   string `json:"kind"`
	Job    string `json:"job,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	WallNS int64  `json:"wall_ns"`
}

// Profile is the analyzed form of one run's trace.
type Profile struct {
	Schema    int       `json:"schema"`
	RunID     int64     `json:"run_id"`
	Name      string    `json:"name"`
	StartedAt time.Time `json:"started_at"`
	EndedAt   time.Time `json:"ended_at"`
	// WallNS is the run's end-to-end wall clock (EndedAt − StartedAt).
	WallNS int64  `json:"wall_ns"`
	Err    string `json:"error,omitempty"`

	Spans int `json:"spans"`
	Atoms int `json:"atoms"`

	// Total and its per-platform/per-operator splits attribute atom-span
	// time (all iterations; shard and loop spans excluded so nothing is
	// double-counted).
	Total     Buckets           `json:"total"`
	Platforms []PlatformProfile `json:"platforms"`
	Operators []OperatorProfile `json:"operators"`

	// CriticalPath is the longest dependency chain through the
	// top-level span DAG, each step costing its queue wait plus wall.
	// CriticalPathNS ≤ WallNS; equality means a fully serial run.
	CriticalPathNS int64      `json:"critical_path_ns"`
	CriticalPath   []PathStep `json:"critical_path"`

	TopAtoms   []AtomSummary `json:"top_atoms"`
	ShardStats []ShardStat   `json:"shard_stats,omitempty"`
	Phases     []Phase       `json:"phases,omitempty"`

	// Formats aggregates the executor's per-consumer channel format
	// choice (span in_formats) across the run's atoms.
	Formats map[string]int `json:"formats,omitempty"`
}

// Build analyzes one run's spans into a Profile. Spans may carry their
// Atom pointers (live traces do); persisted spans cannot, so Build is
// called once at record time and the result is stored alongside the
// spans.
func Build(runID int64, name string, started, ended time.Time, runErr string, spans []*trace.Span) *Profile {
	p := &Profile{
		Schema:    Schema,
		RunID:     runID,
		Name:      name,
		StartedAt: started,
		EndedAt:   ended,
		WallNS:    int64(ended.Sub(started)),
		Err:       runErr,
		Spans:     len(spans),
	}
	if p.WallNS < 0 {
		p.WallNS = 0
	}

	platforms := map[string]*PlatformProfile{}
	type opKey struct{ name, platform string }
	operators := map[opKey]*OperatorProfile{}
	var atoms []*trace.Span
	for _, sp := range spans {
		switch sp.Kind {
		case trace.KindAtom:
			p.Atoms++
			atoms = append(atoms, sp)
			b := bucketsOf(sp)
			p.Total.add(b)
			pl := string(sp.Platform)
			pp := platforms[pl]
			if pp == nil {
				pp = &PlatformProfile{Platform: pl}
				platforms[pl] = pp
			}
			pp.Atoms++
			pp.Buckets.add(b)
			k := opKey{sp.Name, pl}
			op := operators[k]
			if op == nil {
				op = &OperatorProfile{Name: sp.Name, Platform: pl}
				operators[k] = op
			}
			op.Spans++
			op.Buckets.add(b)
			for f, n := range sp.InFormats {
				if p.Formats == nil {
					p.Formats = map[string]int{}
				}
				p.Formats[f] += n
			}
		case trace.KindAdmission, trace.KindQueue, trace.KindDispatch:
			p.Phases = append(p.Phases, Phase{
				Kind: sp.Kind, Job: sp.Job, Tenant: sp.Tenant, WallNS: int64(sp.Wall),
			})
		}
	}
	for _, pp := range platforms {
		p.Platforms = append(p.Platforms, *pp)
	}
	sort.Slice(p.Platforms, func(i, j int) bool { return p.Platforms[i].Platform < p.Platforms[j].Platform })
	for _, op := range operators {
		p.Operators = append(p.Operators, *op)
	}
	sort.Slice(p.Operators, func(i, j int) bool {
		a, b := p.Operators[i], p.Operators[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Platform < b.Platform
	})
	sort.Slice(p.Phases, func(i, j int) bool {
		return phaseOrder(p.Phases[i].Kind) < phaseOrder(p.Phases[j].Kind)
	})

	p.CriticalPathNS, p.CriticalPath = criticalPath(spans)
	p.TopAtoms = topAtoms(atoms)
	p.ShardStats = shardStats(spans)
	return p
}

func phaseOrder(kind string) int {
	switch kind {
	case trace.KindAdmission:
		return 0
	case trace.KindQueue:
		return 1
	case trace.KindDispatch:
		return 2
	}
	return 3
}

// criticalPath extracts the longest chain through the top-level span
// DAG (atom and loop spans at iteration −1 — loop bodies are interior
// to their loop span's wall). Dependencies come from each atom's
// external input operators, resolved to the span that produced them
// within the same plan; spans without atom structure (synthetic traces)
// fall back to interval precedence — every span that ended by this
// span's start could have fed it. A step costs its queue wait plus
// wall, so the path length is the serial time the run could not have
// avoided by adding workers.
func criticalPath(spans []*trace.Span) (int64, []PathStep) {
	type node struct {
		sp   *trace.Span
		cost int64
		best int64
		prev int
	}
	var nodes []node
	for _, sp := range spans {
		if (sp.Kind == trace.KindAtom || sp.Kind == trace.KindLoop) && sp.Iteration < 0 {
			nodes = append(nodes, node{sp: sp, cost: int64(sp.QueueWait) + int64(sp.Wall), prev: -1})
		}
	}
	if len(nodes) == 0 {
		return 0, nil
	}
	// Producers end before their consumers begin, so start order (ties
	// by span ID — Begin order) is a topological order of the DAG.
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i].sp, nodes[j].sp
		if !a.StartedAt.Equal(b.StartedAt) {
			return a.StartedAt.Before(b.StartedAt)
		}
		return a.ID < b.ID
	})
	type prodKey struct {
		plan string
		op   int
	}
	producer := map[prodKey]int{} // operator → node index of the span that ran it
	for i, n := range nodes {
		if n.sp.Atom == nil || n.sp.Failed() {
			continue // failed spans published no outputs
		}
		for _, op := range n.sp.Atom.Ops {
			producer[prodKey{n.sp.Plan, op.ID}] = i
		}
		if n.sp.Atom.LoopOp != nil {
			producer[prodKey{n.sp.Plan, n.sp.Atom.LoopOp.ID}] = i
		}
	}
	for i := range nodes {
		n := &nodes[i]
		n.best = n.cost
		relax := func(j int) {
			if j >= i {
				return // self or not yet finalized — cannot precede
			}
			if cand := nodes[j].best + n.cost; cand > n.best ||
				(cand == n.best && n.prev >= 0 && nodes[j].sp.ID < nodes[n.prev].sp.ID) {
				n.best = cand
				n.prev = j
			}
		}
		if n.sp.Atom != nil {
			for _, inID := range atomInputIDs(n.sp.Atom) {
				if j, ok := producer[prodKey{n.sp.Plan, inID}]; ok {
					relax(j)
				}
			}
		} else {
			for j := 0; j < i; j++ {
				if !nodes[j].sp.EndedAt.After(n.sp.StartedAt) {
					relax(j)
				}
			}
		}
	}
	bestIdx := 0
	for i := 1; i < len(nodes); i++ {
		if nodes[i].best > nodes[bestIdx].best ||
			(nodes[i].best == nodes[bestIdx].best && nodes[i].sp.ID < nodes[bestIdx].sp.ID) {
			bestIdx = i
		}
	}
	var path []PathStep
	for i := bestIdx; i >= 0; i = nodes[i].prev {
		sp := nodes[i].sp
		path = append(path, PathStep{
			SpanID:      sp.ID,
			AtomID:      sp.AtomID,
			Kind:        sp.Kind,
			Name:        sp.Name,
			Platform:    string(sp.Platform),
			QueueWaitNS: int64(sp.QueueWait),
			WallNS:      int64(sp.Wall),
		})
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return nodes[bestIdx].best, path
}

// atomInputIDs mirrors the scheduler's external-input derivation: the
// operator IDs whose outputs this atom consumes from outside itself.
func atomInputIDs(atom *engine.TaskAtom) []int {
	if atom.Kind == engine.AtomLoop {
		ids := make([]int, 0, len(atom.LoopOp.Inputs))
		for _, in := range atom.LoopOp.Inputs {
			ids = append(ids, in.ID)
		}
		return ids
	}
	var ids []int
	for _, op := range atom.Ops {
		for _, in := range op.Inputs {
			if !atom.Contains(in.ID) {
				ids = append(ids, in.ID)
			}
		}
	}
	return ids
}

func topAtoms(atoms []*trace.Span) []AtomSummary {
	sorted := append([]*trace.Span(nil), atoms...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Wall != sorted[j].Wall {
			return sorted[i].Wall > sorted[j].Wall
		}
		return sorted[i].ID < sorted[j].ID
	})
	if len(sorted) > TopN {
		sorted = sorted[:TopN]
	}
	out := make([]AtomSummary, 0, len(sorted))
	for _, sp := range sorted {
		out = append(out, AtomSummary{
			SpanID:      sp.ID,
			AtomID:      sp.AtomID,
			Name:        sp.Name,
			Platform:    string(sp.Platform),
			Iteration:   sp.Iteration,
			WallNS:      int64(sp.Wall),
			QueueWaitNS: int64(sp.QueueWait),
			ConvNS:      int64(sp.ConvTime),
			Retries:     sp.Retries,
		})
	}
	return out
}

func shardStats(spans []*trace.Span) []ShardStat {
	type key struct {
		plan string
		atom int
		iter int
	}
	groups := map[key][]*trace.Span{}
	var order []key
	for _, sp := range spans {
		if sp.Kind != trace.KindShard {
			continue
		}
		k := key{sp.Plan, sp.AtomID, sp.Iteration}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], sp)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.plan != b.plan {
			return a.plan < b.plan
		}
		if a.atom != b.atom {
			return a.atom < b.atom
		}
		return a.iter < b.iter
	})
	var out []ShardStat
	for _, k := range order {
		g := groups[k]
		st := ShardStat{
			AtomID:     k.atom,
			Name:       g[0].Name,
			Platform:   string(g[0].Platform),
			Iteration:  k.iter,
			Shards:     g[0].Shards,
			Executions: len(g),
			MinWallNS:  int64(g[0].Wall),
		}
		var sum int64
		for _, sp := range g {
			w := int64(sp.Wall)
			sum += w
			if w < st.MinWallNS {
				st.MinWallNS = w
			}
			if w > st.MaxWallNS {
				st.MaxWallNS = w
			}
		}
		st.MeanWallNS = sum / int64(len(g))
		if st.MeanWallNS > 0 {
			st.ImbalancePct = 100 * float64(st.MaxWallNS-st.MeanWallNS) / float64(st.MeanWallNS)
		}
		out = append(out, st)
	}
	return out
}
