// Calibration feed: the adapter from a completed run's trace (spans
// with per-kind raw cost attribution, estimate-vs-actual cardinality
// audits) to the neutral observation types cost.Calibrator folds. It
// lives here rather than in cost because cost sits below trace in the
// import order — the calibrator stays a leaf the optimizer can import.
package profile

import (
	"time"

	"rheem/internal/core/cost"
	"rheem/internal/core/trace"
)

// Observations converts a run's finished spans and audit records into
// calibrator observations.
//
// Time attribution: a KindAtom span's measured compute time is
// Metrics.Sim minus the input-conversion share (ConvTime), and its
// KindEst map says how the optimizer split the RAW estimate across the
// atom's operator kinds. The measured time is apportioned over the
// kinds by their estimated share — within one atom there is no finer
// measurement — so each kind's observation keeps its own estimate but
// sees the atom-level actual/estimated ratio. Failed spans, loop spans
// (their body atoms report themselves) and spans without attribution
// are skipped.
//
// Cardinalities: audits with a positive raw estimate and actual feed
// per-kind card observations. Zero actuals are dropped here and would
// be dropped again by Fold — an empty output is no evidence about the
// estimator's scale.
func Observations(spans []*trace.Span, audits []trace.CardAudit) ([]cost.AtomObs, []cost.CardObs) {
	var atoms []cost.AtomObs
	for _, sp := range spans {
		if sp.Kind != trace.KindAtom || sp.Failed() || len(sp.KindEst) == 0 {
			continue
		}
		actual := sp.Metrics.Sim - sp.ConvTime
		if actual <= 0 {
			continue
		}
		var totalEst int64
		for _, ns := range sp.KindEst {
			if ns > 0 {
				totalEst += ns
			}
		}
		if totalEst <= 0 {
			continue
		}
		ratio := float64(actual) / float64(totalEst)
		for kind, ns := range sp.KindEst {
			if ns <= 0 {
				continue
			}
			atoms = append(atoms, cost.AtomObs{
				Kind:      kind,
				Platform:  string(sp.Platform),
				Estimated: time.Duration(ns),
				Actual:    time.Duration(float64(ns) * ratio),
			})
		}
	}
	var cards []cost.CardObs
	for _, a := range audits {
		if a.OpKind == "" || a.RawEstimated <= 0 || a.Actual <= 0 {
			continue
		}
		cards = append(cards, cost.CardObs{
			Kind:      a.OpKind,
			Estimated: a.RawEstimated,
			Actual:    a.Actual,
		})
	}
	return atoms, cards
}
