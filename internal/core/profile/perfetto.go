package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"rheem/internal/core/trace"
)

// perfetto event, Chrome trace-event format: one complete "X" event per
// span plus "M" metadata events naming the lanes. Args is a map so its
// keys marshal sorted — the whole export is deterministic for a given
// record.
type pevent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// laneGroup is one named block of trace lanes: the service phases, or
// one platform's spans. Overlapping spans within a group spread across
// as many lanes as the run's true concurrency needed.
type laneGroup struct {
	name  string
	spans []*trace.Span
}

// WritePerfetto renders the record as Chrome-trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans are grouped
// into a "service" lane block (admission/queue/dispatch) plus one block
// per platform; timestamps are microseconds relative to the earliest
// span start. Output bytes are deterministic.
func (r *Record) WritePerfetto(w io.Writer) error {
	groups := map[string]*laneGroup{}
	var order []string
	add := func(key string, sp *trace.Span) {
		g := groups[key]
		if g == nil {
			g = &laneGroup{name: key}
			groups[key] = g
			order = append(order, key)
		}
		g.spans = append(g.spans, sp)
	}
	var base time.Time
	for _, sp := range r.Spans {
		if base.IsZero() || sp.StartedAt.Before(base) {
			base = sp.StartedAt
		}
		switch sp.Kind {
		case trace.KindAdmission, trace.KindQueue, trace.KindDispatch:
			add("service", sp)
		default:
			add("platform "+string(sp.Platform), sp)
		}
	}
	// Service lanes first, then platforms alphabetically.
	sort.Slice(order, func(i, j int) bool {
		if (order[i] == "service") != (order[j] == "service") {
			return order[i] == "service"
		}
		return order[i] < order[j]
	})

	var events []pevent
	tid := 0
	for _, key := range order {
		g := groups[key]
		sort.Slice(g.spans, func(i, j int) bool {
			a, b := g.spans[i], g.spans[j]
			if !a.StartedAt.Equal(b.StartedAt) {
				return a.StartedAt.Before(b.StartedAt)
			}
			return a.ID < b.ID
		})
		// Greedy lane assignment: a span takes the first lane whose last
		// occupant ended by the span's start.
		var laneEnds []time.Time
		laneTids := []int{}
		for _, sp := range g.spans {
			lane := -1
			for l, end := range laneEnds {
				if !end.After(sp.StartedAt) {
					lane = l
					break
				}
			}
			if lane == -1 {
				tid++
				laneEnds = append(laneEnds, time.Time{})
				laneTids = append(laneTids, tid)
				lane = len(laneEnds) - 1
				suffix := ""
				if lane > 0 {
					suffix = fmt.Sprintf(" #%d", lane+1)
				}
				events = append(events, pevent{
					Name: "thread_name", Ph: "M", Pid: 1, Tid: laneTids[lane],
					Args: map[string]any{"name": g.name + suffix},
				})
			}
			laneEnds[lane] = sp.EndedAt
			dur := sp.EndedAt.Sub(sp.StartedAt).Microseconds()
			if dur < 1 {
				dur = 1 // Perfetto drops zero-width slices
			}
			events = append(events, pevent{
				Name: sp.Name,
				Cat:  sp.Kind,
				Ph:   "X",
				Ts:   sp.StartedAt.Sub(base).Microseconds(),
				Dur:  dur,
				Pid:  1,
				Tid:  laneTids[lane],
				Args: spanArgs(sp),
			})
		}
	}

	if _, err := fmt.Fprintf(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("profile: encoding trace event %d: %w", i, err)
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

func spanArgs(sp *trace.Span) map[string]any {
	args := map[string]any{
		"span_id": sp.ID,
		"plan":    sp.Plan,
	}
	switch sp.Kind {
	case trace.KindAdmission, trace.KindQueue, trace.KindDispatch:
		args["job"] = sp.Job
		args["tenant"] = sp.Tenant
	default:
		args["atom_id"] = sp.AtomID
		args["queue_wait_ns"] = int64(sp.QueueWait)
		if sp.Iteration >= 0 {
			args["iteration"] = sp.Iteration
		}
		if sp.Shard >= 0 {
			args["shard"] = sp.Shard
		}
		if sp.Retries > 0 {
			args["retries"] = sp.Retries
		}
		if sp.ConvTime > 0 {
			args["conv_ns"] = int64(sp.ConvTime)
		}
		for f, n := range sp.InFormats {
			args["in_format_"+f] = n
		}
	}
	if sp.Err != "" {
		args["error"] = sp.Err
	}
	return args
}
