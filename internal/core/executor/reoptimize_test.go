package executor

import (
	"bytes"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

// defaultRegistry registers the platforms with their production
// calibration (50 ms spark job overhead) — the regime where a
// 100-record loop belongs on the single-node engine.
func defaultRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// lyingSourcePlan claims two million records but produces 100, with an
// iterative loop downstream. The initial optimizer believes the hint
// and puts the loop on the cluster; the audit exposes the lie at the
// first atom boundary.
func lyingSourcePlan(t *testing.T) *physical.Plan {
	t.Helper()
	bb := plan.NewBodyBuilder("body")
	li := bb.LoopInput("st")
	m := bb.Map(li, func(r data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
	})
	bb.Collect(m)
	body := bb.MustBuild()

	b := plan.NewBuilder("lying")
	s := b.Source("liar", plan.Collection(intRecords(100)))
	s.CardHint = 2_000_000
	rep := b.Repeat(s, 20, body)
	b.Collect(rep)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func bodyPlatforms(ep *optimizer.ExecutionPlan) map[string]bool {
	out := map[string]bool{}
	for _, bodyEP := range ep.LoopBodies {
		for _, pl := range bodyEP.Assignment {
			out[string(pl)] = true
		}
	}
	return out
}

func TestAdaptiveReoptimizationMovesLoopOffCluster(t *testing.T) {
	reg := defaultRegistry(t)
	ep, err := optimizer.Optimize(lyingSourcePlan(t), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the lie pushes the initial loop body onto spark.
	if pls := bodyPlatforms(ep); !pls[string(sparksim.ID)] {
		t.Skipf("initial plan not on spark (%v); calibration moved the threshold", pls)
	}

	res, err := Run(ep, reg, Options{ReOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reoptimized {
		t.Fatal("audit did not trigger re-optimization")
	}
	if len(res.Records) != 100 || res.Records[0].Field(0).Int() != 20 {
		t.Errorf("wrong results after re-optimization: %d records", len(res.Records))
	}
	// The re-planned loop body must have moved to the single-node
	// engine now that the input is known to be tiny.
	if pls := bodyPlatforms(res.FinalPlan); !pls[string(javaengine.ID)] || pls[string(sparksim.ID)] {
		t.Errorf("re-optimized body platforms = %v, want java only", pls)
	}
}

func TestReoptimizationOffByDefault(t *testing.T) {
	reg := defaultRegistry(t)
	ep, err := optimizer.Optimize(lyingSourcePlan(t), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reoptimized {
		t.Error("re-optimization ran without opt-in")
	}
	if len(res.Mismatches) == 0 {
		t.Error("audit should still flag the lying source")
	}
	if len(res.Records) != 100 {
		t.Errorf("%d records", len(res.Records))
	}
}

func TestReoptimizationCheaperThanStubborn(t *testing.T) {
	reg := defaultRegistry(t)
	run := func(reopt bool) time.Duration {
		ep, err := optimizer.Optimize(lyingSourcePlan(t), reg, optimizer.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(ep, reg, Options{ReOptimize: reopt})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Sim
	}
	stubborn := run(false)
	adaptive := run(true)
	if adaptive >= stubborn {
		t.Errorf("re-optimization did not pay off: adaptive %v vs stubborn %v", adaptive, stubborn)
	}
}

// lyingDiamondPlan is a two-branch diamond whose first source lies
// about its cardinality by 10,000x. With the sources, union and sink
// pinned to the relational engine and the branch maps to java and
// spark, the plan schedules several atoms concurrently; the honest
// branch carries per-record sleeps so it is still in flight when the
// liar's audit mismatch lands.
func lyingDiamondPlan(t *testing.T) (*physical.Plan, map[int]engine.PlatformID) {
	t.Helper()
	b := plan.NewBuilder("lying-diamond")
	liar := b.Source("liar", plan.Collection(intRecords(60)))
	liar.CardHint = 600_000
	honest := b.Source("honest", plan.Collection(intRecords(20)))
	honest.CardHint = 20
	ml := b.Map(liar, func(r data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(r.Field(0).Int() * 2)), nil
	})
	mh := b.Map(honest, func(r data.Record) (data.Record, error) {
		time.Sleep(time.Millisecond)
		return data.NewRecord(data.Int(r.Field(0).Int()*2 + 1)), nil
	})
	b.Collect(b.Union(ml, mh))
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	fa := map[int]engine.PlatformID{}
	mapsSeen := 0
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindMap {
			if mapsSeen == 0 {
				fa[op.ID] = javaengine.ID // liar's branch (built first)
			} else {
				fa[op.ID] = sparksim.ID
			}
			mapsSeen++
		} else {
			fa[op.ID] = relengine.ID
		}
	}
	return pp, fa
}

// TestReoptimizeOncePerRunUnderParallelism triggers a mid-wave audit
// mismatch at every parallelism degree and demands deterministic
// adaptive behavior: exactly one re-plan per run (after quiescing the
// in-flight atoms) and records byte-identical to the sequential run.
func TestReoptimizeOncePerRunUnderParallelism(t *testing.T) {
	reg := triRegistry(t)
	var baseline []byte
	for _, par := range []int{1, 2, 8} {
		pp, fa := lyingDiamondPlan(t)
		ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
			DisableRules:      true,
			ForcedAssignments: fa,
		})
		if err != nil {
			t.Fatal(err)
		}
		replans := 0
		res, err := Run(ep, reg, Options{ReOptimize: true, Parallelism: par, Monitor: func(e Event) {
			if e.Kind == EventReplan {
				replans++
			}
		}})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !res.Reoptimized {
			t.Fatalf("parallelism %d: lying source did not trigger re-optimization", par)
		}
		if replans != 1 {
			t.Errorf("parallelism %d: %d re-plans, want exactly 1", par, replans)
		}
		if res.FinalPlan == ep {
			t.Errorf("parallelism %d: FinalPlan still the original plan", par)
		}
		got := recordBytes(t, res.Records)
		if baseline == nil {
			baseline = got
			continue
		}
		if !bytes.Equal(baseline, got) {
			t.Errorf("parallelism %d: records differ from the sequential run", par)
		}
	}
}

func TestReoptimizationAccurateEstimatesNoop(t *testing.T) {
	reg := fullRegistry(t)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(50)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{ReOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reoptimized {
		t.Error("accurate plan re-optimized")
	}
}
