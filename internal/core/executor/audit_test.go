package executor

import (
	"testing"

	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
)

// badSelectivityPlan declares 50% filter selectivity but keeps nothing.
func badSelectivityPlan(t *testing.T, n int) *physical.Plan {
	t.Helper()
	b := plan.NewBuilder("audit")
	recs := intRecords(n)
	s := b.Source("s", plan.Collection(recs))
	s.CardHint = int64(n)
	f := b.Filter(s, func(data.Record) (bool, error) { return false, nil })
	f.Selectivity = 0.5 // wildly wrong: actual is 0
	b.Collect(f)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestCardinalityAuditFlagsBadEstimates(t *testing.T) {
	full := fullRegistry(t)
	ep, err := optimizer.Optimize(badSelectivityPlan(t, 1000), full,
		optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) == 0 {
		t.Fatal("no mismatch recorded for a 500-vs-0 estimate")
	}
	m := res.Mismatches[0]
	if m.Actual != 0 || m.Estimated < 100 {
		t.Errorf("mismatch = %+v", m)
	}
}

func TestCardinalityAuditQuietWhenAccurate(t *testing.T) {
	full := fullRegistry(t)
	b := plan.NewBuilder("good")
	recs := intRecords(1000)
	s := b.Source("s", plan.Collection(recs))
	s.CardHint = 1000
	m := b.Map(s, plan.Identity())
	b.Collect(m)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, full, optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		t.Errorf("accurate estimates flagged: %+v", res.Mismatches)
	}
}

func TestCardinalityAuditDisabled(t *testing.T) {
	full := fullRegistry(t)
	ep, err := optimizer.Optimize(badSelectivityPlan(t, 1000), full,
		optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, full, Options{AuditFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		t.Errorf("disabled audit recorded mismatches")
	}
}
