package executor

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/fault"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

// chaosRegistry builds a registry with the two real platforms plus a
// fault-injecting "chaos" platform that inherits the java engine's
// operator coverage — the survivors failover re-plans fall back to.
func chaosRegistry(t *testing.T, opts fault.Options) (*engine.Registry, *fault.Platform) {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		t.Fatal(err)
	}
	opts.ID = "chaos"
	p := fault.Wrap(javaengine.New(javaengine.Config{}), opts)
	if err := fault.Register(reg, p, javaengine.ID); err != nil {
		t.Fatal(err)
	}
	return reg, p
}

// sortedRecordBytes encodes each record and sorts the encodings:
// failover may legitimately reorder union branches, so identity is
// per-record, not positional.
func sortedRecordBytes(t *testing.T, recs []data.Record) []string {
	t.Helper()
	out := make([]string, len(recs))
	for i, r := range recs {
		var buf bytes.Buffer
		if _, err := data.WriteBinary(&buf, []data.Record{r}); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.String()
	}
	sort.Strings(out)
	return out
}

// TestChaosFailoverProducesIdenticalRecords is the acceptance chaos
// test: the platform originally assigned to the diamond's branches
// dies mid-run (one atom completes, then every execution fails), and
// the run must still complete — via cross-platform failover — with
// records identical to a fault-free run, the failed operators
// re-assigned off the dead platform, and the breaker left open.
func TestChaosFailoverProducesIdenticalRecords(t *testing.T) {
	pp, fa := faultPlan(t, []engine.PlatformID{"chaos", "chaos"})

	// Baseline: the same plan on a healthy chaos platform.
	cleanReg, _ := chaosRegistry(t, fault.Options{})
	cleanEP, err := optimizer.Optimize(pp, cleanReg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(cleanEP, cleanReg, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Chaos: the platform survives exactly one execution, then dies.
	reg, p := chaosRegistry(t, fault.Options{Schedules: []fault.Schedule{fault.FailAfterN(1, nil)}})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	var failovers []Event
	completedOnChaos := map[int]bool{} // op IDs finished on chaos pre-failover
	res, err := Run(ep, reg, Options{Parallelism: 2, Failover: true, RetryBackoff: -1, Monitor: func(e Event) {
		switch e.Kind {
		case EventFailover:
			failovers = append(failovers, e)
		case EventAtomDone:
			if e.Err == nil && e.Atom.Platform == "chaos" {
				for _, op := range e.Atom.Ops {
					completedOnChaos[op.ID] = true
				}
			}
		}
	}})
	if err != nil {
		t.Fatalf("chaos run failed despite failover: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Fatal("fixture injected no failures")
	}

	// Byte-identical results (modulo union branch order).
	got, want := sortedRecordBytes(t, res.Records), sortedRecordBytes(t, clean.Records)
	if len(got) != len(want) {
		t.Fatalf("chaos run produced %d records, clean run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs between chaos and clean runs", i)
		}
	}

	// The failover is visible: counted, evented, and excluded from the
	// final assignment of every operator that was not already done.
	if res.Failovers < 1 {
		t.Errorf("Failovers = %d", res.Failovers)
	}
	if len(failovers) == 0 {
		t.Fatal("no EventFailover observed")
	}
	fe := failovers[0]
	if fe.Atom == nil || fe.Atom.Platform != "chaos" {
		t.Errorf("failover event atom = %v", fe.Atom)
	}
	foundChaos := false
	for _, id := range fe.Excluded {
		if id == "chaos" {
			foundChaos = true
		}
	}
	if !foundChaos {
		t.Errorf("failover event excluded %v, missing chaos", fe.Excluded)
	}
	for opID, pl := range res.FinalPlan.Assignment {
		if pl == "chaos" && !completedOnChaos[opID] {
			t.Errorf("re-planned op %d still assigned to the dead platform", opID)
		}
	}
	if res.PlatformHealth["chaos"] != engine.BreakerOpen {
		t.Errorf("chaos breaker state = %v, want open", res.PlatformHealth["chaos"])
	}
	if res.Reoptimized {
		t.Error("failover must not consume the adaptive re-optimization budget")
	}
}

// TestChaosFailoverInLoopBody kills the loop body's platform after two
// iterations: the nested scheduler propagates the failover up without
// cancelling the run, the loop is re-planned onto a survivor, and the
// restarted loop still produces the exact fault-free result.
func TestChaosFailoverInLoopBody(t *testing.T) {
	reg, p := chaosRegistry(t, fault.Options{Schedules: []fault.Schedule{fault.FailAfterN(2, nil)}})

	bb := plan.NewBodyBuilder("body")
	li := bb.LoopInput("st")
	m := bb.Map(li, func(r data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
	})
	bb.Collect(m)
	body := bb.MustBuild()

	b := plan.NewBuilder("loop")
	s := b.Source("s", plan.Collection(intRecords(1)))
	rep := b.Repeat(s, 5, body)
	b.Collect(rep)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	fa := map[int]engine.PlatformID{}
	var pin func(ops []*physical.Operator)
	pin = func(ops []*physical.Operator) {
		for _, op := range ops {
			if op.Kind() == plan.KindMap {
				fa[op.ID] = "chaos" // the loop body's worker
			} else {
				fa[op.ID] = javaengine.ID
			}
			if op.Body != nil {
				pin(op.Body.Ops)
			}
		}
	}
	pin(pp.Ops)
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	var failovers int
	res, err := Run(ep, reg, Options{Failover: true, RetryBackoff: -1, Monitor: func(e Event) {
		if e.Kind == EventFailover {
			failovers++
		}
	}})
	if err != nil {
		t.Fatalf("loop failover run failed: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Fatal("fixture injected no failures")
	}
	if failovers < 1 || res.Failovers < 1 {
		t.Errorf("failovers = %d (result %d), want ≥1", failovers, res.Failovers)
	}
	// 0 incremented 5 times, regardless of where the loop restarted.
	if len(res.Records) != 1 || res.Records[0].Field(0).Int() != 5 {
		t.Errorf("loop result = %v, want [5]", res.Records)
	}
	for opID, pl := range res.FinalPlan.Assignment {
		if pl == "chaos" {
			t.Errorf("op %d still assigned to the dead platform after loop failover", opID)
		}
	}
}

// TestFailoverNoCapablePlatformFails quarantines the only platform in
// the registry: failover has nowhere to go and the run must fail,
// reporting both the dead end and the original failure.
func TestFailoverNoCapablePlatformFails(t *testing.T) {
	reg := engine.NewRegistry()
	p := wrapJava(t, reg, "chaos", fault.Options{Schedules: []fault.Schedule{failAlways(nil)}})
	registerMapKinds(t, reg, "chaos")
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ep, reg, Options{Failover: true, RetryBackoff: -1})
	if err == nil {
		t.Fatal("run succeeded with every platform dead")
	}
	if !strings.Contains(err.Error(), "no capable platform") {
		t.Errorf("error does not name the failover dead end: %v", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Errorf("original failure lost from the error chain: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Error("fixture injected no failures")
	}
}

// TestFailoverDisabledPropagatesError pins the default: without
// Options.Failover the same dead platform fails the run even though
// healthy platforms are registered.
func TestFailoverDisabledPropagatesError(t *testing.T) {
	pp, fa := faultPlan(t, []engine.PlatformID{"chaos", "chaos"})
	reg, _ := chaosRegistry(t, fault.Options{Schedules: []fault.Schedule{fault.FailAfterN(1, nil)}})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ep, reg, Options{Parallelism: 2, RetryBackoff: -1})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Run error = %v, want the injected failure", err)
	}
	if !strings.Contains(err.Error(), "failed after") {
		t.Errorf("error lacks the attempt accounting: %v", err)
	}
}

// warmedChaosCalibrator returns a calibrator with large applied
// corrections, in clashing directions, for every operator kind on
// every platform the chaos suite schedules on — including the doomed
// chaos platform itself, so the mid-run failover re-plan consults
// learned factors too.
func warmedChaosCalibrator(t *testing.T) *cost.Calibrator {
	t.Helper()
	cal := cost.NewCalibrator(cost.CalibratorConfig{})
	var atoms []cost.AtomObs
	var cards []cost.CardObs
	for k := plan.KindSource; k <= plan.KindSink; k++ {
		kind := k.String()
		for i, pl := range []engine.PlatformID{javaengine.ID, sparksim.ID, "chaos"} {
			est, act := time.Millisecond, 100*time.Millisecond
			if i%2 == 1 {
				est, act = 100*time.Millisecond, time.Millisecond
			}
			for j := 0; j < 4; j++ {
				atoms = append(atoms, cost.AtomObs{
					Kind: kind, Platform: string(pl), Estimated: est, Actual: act,
				})
			}
		}
		for j := 0; j < 4; j++ {
			cards = append(cards, cost.CardObs{Kind: kind, Estimated: 100, Actual: 3})
		}
	}
	cal.Fold(atoms, cards)
	return cal
}

// TestChaosFailoverWithWarmedCalibrator extends the acceptance chaos
// test to the learning loop: a warmed calibrator biases every cost the
// failover re-planner consults, and the run must still produce records
// byte-identical to the fault-free, calibration-free baseline.
// Calibration may change which survivor the re-plan picks — never what
// the run computes.
func TestChaosFailoverWithWarmedCalibrator(t *testing.T) {
	pp, fa := faultPlan(t, []engine.PlatformID{"chaos", "chaos"})
	cal := warmedChaosCalibrator(t)

	// Baseline: healthy platform, no calibration anywhere.
	cleanReg, _ := chaosRegistry(t, fault.Options{})
	cleanEP, err := optimizer.Optimize(pp, cleanReg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(cleanEP, cleanReg, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRecordBytes(t, clean.Records)

	// Warmed but fault-free: calibration alone must not move results.
	calmReg, _ := chaosRegistry(t, fault.Options{})
	calmEP, err := optimizer.Optimize(pp, calmReg, optimizer.Options{DisableRules: true, ForcedAssignments: fa, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	calm, err := Run(calmEP, calmReg, Options{Parallelism: 2, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRecordBytes(t, calm.Records); strings.Join(got, "\x00") != strings.Join(want, "\x00") {
		t.Fatal("warmed calibrator changed fault-free results")
	}

	// Warmed AND dying mid-run: the failover re-plan runs through the
	// calibrated cost model and must still land on identical records.
	reg, p := chaosRegistry(t, fault.Options{Schedules: []fault.Schedule{fault.FailAfterN(1, nil)}})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{Parallelism: 2, Failover: true, RetryBackoff: -1, Calibration: cal})
	if err != nil {
		t.Fatalf("chaos run with warmed calibrator failed despite failover: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Fatal("fixture injected no failures")
	}
	if res.Failovers < 1 {
		t.Errorf("Failovers = %d, want >= 1", res.Failovers)
	}
	got := sortedRecordBytes(t, res.Records)
	if len(got) != len(want) {
		t.Fatalf("chaos+calibration run produced %d records, baseline %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs between chaos+calibration and clean baseline", i)
		}
	}
	if folds := cal.Folds(); folds != 1 {
		t.Errorf("executor runs folded into the calibrator (folds=%d, want only the warm-up's 1)", folds)
	}
}
