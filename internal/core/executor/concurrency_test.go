package executor

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

// triRegistry registers all three bundled platforms — the concurrency
// tests need multi-platform plans, because same-platform fragments
// fuse into a single atom and leave nothing to schedule in parallel.
func triRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{JobOverhead: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := relengine.Register(reg, nil, relengine.Config{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// fanOutPlan builds a diamond: one source fanning out to `branches`
// independent map branches, folded back through a union chain into the
// sink. Each map is pure and deterministic (record i on branch b maps
// to i*branches+b), optionally sleeping per record to simulate work.
func fanOutPlan(t *testing.T, branches, recs int, delay time.Duration) *physical.Plan {
	t.Helper()
	b := plan.NewBuilder("fanout")
	s := b.Source("src", plan.Collection(intRecords(recs)))
	s.CardHint = int64(recs)
	var outs []*plan.Operator
	for i := 0; i < branches; i++ {
		off := int64(i)
		outs = append(outs, b.Map(s, func(r data.Record) (data.Record, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			return data.NewRecord(data.Int(r.Field(0).Int()*int64(branches) + off)), nil
		}))
	}
	u := outs[0]
	for _, o := range outs[1:] {
		u = b.Union(u, o)
	}
	b.Collect(u)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

// fanOutAssignments pins the diamond so it cannot collapse into one
// atom: source, unions and sink on the relational engine, the map
// branches alternating between java and spark. The resulting execution
// plan has branches+2 atoms with a genuine fan-out/fan-in shape.
func fanOutAssignments(pp *physical.Plan) map[int]engine.PlatformID {
	fa := make(map[int]engine.PlatformID, len(pp.Ops))
	branch := 0
	for _, op := range pp.Ops {
		switch op.Kind() {
		case plan.KindMap:
			if branch%2 == 0 {
				fa[op.ID] = javaengine.ID
			} else {
				fa[op.ID] = sparksim.ID
			}
			branch++
		default:
			fa[op.ID] = relengine.ID
		}
	}
	return fa
}

// optimizeFanOut builds and optimizes a fresh fan-out plan with the
// pinned assignments (rules disabled so the shape is exactly as built).
func optimizeFanOut(t *testing.T, reg *engine.Registry, branches, recs int, delay time.Duration) *optimizer.ExecutionPlan {
	t.Helper()
	pp := fanOutPlan(t, branches, recs, delay)
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
		DisableRules:      true,
		ForcedAssignments: fanOutAssignments(pp),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// recordBytes serializes records for byte-identity comparison.
func recordBytes(t *testing.T, recs []data.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := data.WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDiamondDeterministicAcrossParallelism runs the same diamond at
// parallelism 1, 2 and 8 and demands byte-identical records and
// identical deterministic metrics — only wall time may differ.
func TestDiamondDeterministicAcrossParallelism(t *testing.T) {
	const branches, recs = 4, 100
	reg := triRegistry(t)

	type outcome struct {
		bytes   []byte
		metrics engine.Metrics
	}
	results := map[int]outcome{}
	for _, par := range []int{1, 2, 8} {
		ep := optimizeFanOut(t, reg, branches, recs, 0)
		if got := len(ep.Atoms); got != branches+2 {
			t.Fatalf("parallelism %d: %d atoms, want %d (source + branches + fan-in)", par, got, branches+2)
		}
		res, err := Run(ep, reg, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(res.Records) != branches*recs {
			t.Fatalf("parallelism %d: %d records, want %d", par, len(res.Records), branches*recs)
		}
		results[par] = outcome{bytes: recordBytes(t, res.Records), metrics: res.Metrics}
	}

	base := results[1]
	for _, par := range []int{2, 8} {
		got := results[par]
		if !bytes.Equal(base.bytes, got.bytes) {
			t.Errorf("parallelism %d records differ from sequential run", par)
		}
		if got.metrics.Jobs != base.metrics.Jobs {
			t.Errorf("parallelism %d: Jobs = %d, sequential = %d", par, got.metrics.Jobs, base.metrics.Jobs)
		}
		if got.metrics.InRecords != base.metrics.InRecords {
			t.Errorf("parallelism %d: InRecords = %d, sequential = %d", par, got.metrics.InRecords, base.metrics.InRecords)
		}
		if got.metrics.OutRecords != base.metrics.OutRecords {
			t.Errorf("parallelism %d: OutRecords = %d, sequential = %d", par, got.metrics.OutRecords, base.metrics.OutRecords)
		}
		if got.metrics.Conversions != base.metrics.Conversions {
			t.Errorf("parallelism %d: Conversions = %d, sequential = %d", par, got.metrics.Conversions, base.metrics.Conversions)
		}
	}
}

// TestWideFanOutStress hammers a wide fan-out at full parallelism; run
// under -race it doubles as the scheduler's data-race probe, and every
// repetition must reproduce the first run byte for byte.
func TestWideFanOutStress(t *testing.T) {
	const branches, recs, runs = 8, 64, 50
	reg := triRegistry(t)
	var want []byte
	for i := 0; i < runs; i++ {
		ep := optimizeFanOut(t, reg, branches, recs, 0)
		res, err := Run(ep, reg, Options{Parallelism: 8})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got := recordBytes(t, res.Records)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("run %d produced different records than run 0", i)
		}
	}
}

// TestParallelSpeedupWideFanOut checks the point of the scheduler: on
// a wide fan-out whose branches each carry real work, elapsed wall time
// at parallelism 8 must beat the sequential run by a clear margin.
func TestParallelSpeedupWideFanOut(t *testing.T) {
	const branches, recs = 8, 5
	const delay = 4 * time.Millisecond
	reg := triRegistry(t)

	run := func(par int) time.Duration {
		ep := optimizeFanOut(t, reg, branches, recs, delay)
		res, err := Run(ep, reg, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return res.Metrics.Wall
	}
	sequential := run(1)
	parallel := run(8)
	speedup := float64(sequential) / float64(parallel)
	t.Logf("sequential %v, parallel %v, speedup %.2fx", sequential, parallel, speedup)
	if speedup <= 1.3 {
		t.Errorf("speedup %.2fx at parallelism 8, want > 1.3x (sequential %v, parallel %v)",
			speedup, sequential, parallel)
	}
}

// TestSchedulerHonorsDependencies runs diamonds of every width at odd
// parallelism degrees; any dependency-tracking bug surfaces as a
// missing-channel error or wrong fan-in result.
func TestSchedulerHonorsDependencies(t *testing.T) {
	reg := triRegistry(t)
	for _, branches := range []int{1, 2, 3, 5} {
		for _, par := range []int{1, 3, 16} {
			ep := optimizeFanOut(t, reg, branches, 10, 0)
			res, err := Run(ep, reg, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("branches=%d parallelism=%d: %v", branches, par, err)
			}
			if len(res.Records) != branches*10 {
				t.Errorf("branches=%d parallelism=%d: %d records", branches, par, len(res.Records))
			}
		}
	}
}

// TestMonitorSerializedUnderParallelism asserts the Monitor contract:
// callbacks never overlap, so an unsynchronized callback counter still
// ends up exact, and per-atom event order stays start → done.
func TestMonitorSerializedUnderParallelism(t *testing.T) {
	const branches, recs = 8, 16
	reg := triRegistry(t)
	ep := optimizeFanOut(t, reg, branches, recs, 0)

	inCallback := false // would race (and trip -race) if calls overlapped
	starts := map[int]int{}
	dones := map[int]int{}
	var order []string
	res, err := Run(ep, reg, Options{Parallelism: 8, Monitor: func(e Event) {
		if inCallback {
			t.Error("monitor callback re-entered concurrently")
		}
		inCallback = true
		defer func() { inCallback = false }()
		switch e.Kind {
		case EventAtomStart:
			starts[e.Atom.ID]++
			if dones[e.Atom.ID] > 0 {
				order = append(order, fmt.Sprintf("atom %d started after done", e.Atom.ID))
			}
		case EventAtomDone:
			dones[e.Atom.ID]++
			if starts[e.Atom.ID] == 0 {
				order = append(order, fmt.Sprintf("atom %d done before start", e.Atom.ID))
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != branches*recs {
		t.Errorf("%d records", len(res.Records))
	}
	if len(starts) != branches+2 || len(dones) != branches+2 {
		t.Errorf("saw %d started / %d finished atoms, want %d", len(starts), len(dones), branches+2)
	}
	for _, msg := range order {
		t.Error(msg)
	}
}
