package executor

import (
	"bytes"
	"strings"
	"testing"

	"rheem/internal/core/engine"
	"rheem/internal/core/fault"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/core/trace"
	"rheem/internal/data"
)

// chaosShardFixture pins the source to spark and the compute chain to
// the fault-injected "chaos" platform, so the chain is a sharded
// compute atom whose every shard execution faces the fault schedules.
func chaosShardFixture(t *testing.T, recs []data.Record, build func(b *plan.Builder, s *plan.Operator)) (*physical.Plan, map[int]engine.PlatformID) {
	t.Helper()
	pp, fa := shardFixture(t, recs, build)
	for id, pl := range fa {
		if pl != "spark" && strings.HasPrefix(string(pl), "java") {
			fa[id] = "chaos"
		}
	}
	return pp, fa
}

// runShardChaos optimizes and runs the fixture on a chaos registry.
func runShardChaos(t *testing.T, pp *physical.Plan, fa map[int]engine.PlatformID, fopts fault.Options, opts Options) (*Result, *fault.Platform, error) {
	t.Helper()
	reg, p := chaosRegistry(t, fopts)
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
		DisableRules: true, ForcedAssignments: fa, Shards: opts.Shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, opts)
	return res, p, err
}

// shardSpanCoherence checks the invariants every shard span tree must
// satisfy, chaos or not: indices inside the declared width, a positive
// width on every shard span, and — for each (atom, platform) group
// that succeeded — full 0..width-1 coverage.
func shardSpanCoherence(t *testing.T, spans []*trace.Span) {
	t.Helper()
	type key struct {
		atom int
		pl   engine.PlatformID
	}
	okIdx := map[key]map[int]bool{}
	width := map[key]int{}
	for _, sp := range spans {
		if sp.Kind != trace.KindShard {
			if sp.Shard != -1 {
				t.Errorf("non-shard span %s has shard index %d", sp.Name, sp.Shard)
			}
			continue
		}
		if sp.Shards < 2 {
			t.Errorf("shard span %s declares width %d", sp.Name, sp.Shards)
		}
		if sp.Shard < 0 || sp.Shard >= sp.Shards {
			t.Errorf("shard span %s index %d outside width %d", sp.Name, sp.Shard, sp.Shards)
		}
		k := key{sp.AtomID, sp.Platform}
		if w, seen := width[k]; seen && w != sp.Shards {
			t.Errorf("atom %d on %s saw widths %d and %d", sp.AtomID, sp.Platform, w, sp.Shards)
		}
		width[k] = sp.Shards
		if !sp.Failed() {
			if okIdx[k] == nil {
				okIdx[k] = map[int]bool{}
			}
			okIdx[k][sp.Shard] = true
		}
	}
	for k, idx := range okIdx {
		if len(idx) == width[k] {
			continue // a fully successful fan-out covered every index
		}
		// Partial success is legitimate only when the atom's attempt
		// failed as a whole (a sibling shard died); the run-level result
		// assertions catch the case where that atom never recovered.
	}
}

// TestShardChaosTransientRetries: every compute atom's first two
// executions fail — with a 4-way fan-out the shard attempts absorb the
// failures, the whole fan-out retries, and the merged result must
// still be byte-identical to a fault-free unsharded run.
func TestShardChaosTransientRetries(t *testing.T) {
	build := func(b *plan.Builder, s *plan.Operator) {
		m := b.Map(s, func(r data.Record) (data.Record, error) {
			return data.NewRecord(r.Field(0), data.Int(r.Field(0).Int()*5)), nil
		})
		b.Collect(b.Filter(m, func(r data.Record) (bool, error) {
			return r.Field(0).Int()%3 != 0, nil
		}))
	}
	ppClean, faClean := chaosShardFixture(t, intRecords(120), build)
	clean, _, err := runShardChaos(t, ppClean, faClean, fault.Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	pp, fa := chaosShardFixture(t, intRecords(120), build)
	res, p, err := runShardChaos(t, pp, fa,
		fault.Options{Schedules: []fault.Schedule{fault.FailFirstN(2, nil)}},
		Options{Shards: 4, RetryBackoff: -1})
	if err != nil {
		t.Fatalf("run did not survive transient shard failures: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Fatal("fixture injected no failures")
	}
	if !bytes.Equal(recordBytes(t, res.Records), recordBytes(t, clean.Records)) {
		t.Errorf("chaos-sharded records differ from clean run (%d vs %d records)",
			len(res.Records), len(clean.Records))
	}
	if res.Metrics.Retries == 0 {
		t.Error("no retries recorded despite injected failures")
	}
	shardSpans, _ := countShardSpans(res)
	if shardSpans < 8 {
		// At least two full fan-outs: the failed attempt and the success.
		t.Errorf("saw %d shard spans, want ≥8 (failed attempt + retry)", shardSpans)
	}
	failedShardSpans := 0
	for _, sp := range res.Trace.Spans {
		if sp.Kind == trace.KindShard && sp.Failed() {
			failedShardSpans++
		}
	}
	if failedShardSpans == 0 {
		t.Error("injected shard failures left no failed shard spans in the trace")
	}
	shardSpanCoherence(t, res.Trace.Spans)
}

// TestShardChaosFailover: the chaos platform dies permanently, so the
// sharded atom exhausts its retries there and fails over; the re-plan
// must re-shard on the surviving platform and reproduce the clean
// output exactly.
func TestShardChaosFailover(t *testing.T) {
	build := func(b *plan.Builder, s *plan.Operator) {
		m := b.Map(s, func(r data.Record) (data.Record, error) {
			return data.NewRecord(data.Int(r.Field(0).Int()%6), data.Int(1)), nil
		})
		b.Collect(b.ReduceByKey(m, modKey(6), sumReduce))
	}
	ppClean, faClean := chaosShardFixture(t, intRecords(100), build)
	clean, _, err := runShardChaos(t, ppClean, faClean, fault.Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	pp, fa := chaosShardFixture(t, intRecords(100), build)
	res, p, err := runShardChaos(t, pp, fa,
		fault.Options{Schedules: []fault.Schedule{failAlways(nil)}},
		Options{Shards: 4, RetryBackoff: -1, Failover: true})
	if err != nil {
		t.Fatalf("failover did not rescue the sharded atom: %v", err)
	}
	if p.Stats().Injected == 0 {
		t.Fatal("fixture injected no failures")
	}
	got := strings.Join(sortedRecordBytes(t, res.Records), "\x00")
	want := strings.Join(sortedRecordBytes(t, clean.Records), "\x00")
	if got != want {
		t.Errorf("failover-sharded output differs from clean run (%d vs %d records)",
			len(res.Records), len(clean.Records))
	}
	if res.Failovers < 1 {
		t.Errorf("Failovers = %d, want ≥1", res.Failovers)
	}
	survivorShards := 0
	for _, sp := range res.Trace.Spans {
		if sp.Kind != trace.KindShard {
			continue
		}
		if sp.Platform == "chaos" {
			if !sp.Failed() {
				t.Error("a shard span on the dead platform reports success")
			}
		} else if !sp.Failed() {
			survivorShards++
		}
	}
	if survivorShards < 2 {
		t.Errorf("survivor platform ran %d successful shard executions, want a re-sharded fan-out", survivorShards)
	}
	shardSpanCoherence(t, res.Trace.Spans)
}

// TestShardChaosRaceStress hammers the full combination — shard
// fan-out × atom parallelism × transient faults × tracing — a few
// times; under -race this is the shard engine's data-race probe.
func TestShardChaosRaceStress(t *testing.T) {
	build := func(b *plan.Builder, s *plan.Operator) {
		m := b.Map(s, func(r data.Record) (data.Record, error) {
			return data.NewRecord(r.Field(0), data.Int(r.Field(0).Int()+1)), nil
		})
		b.Collect(b.Distinct(m))
	}
	ppClean, faClean := chaosShardFixture(t, intRecords(64), build)
	clean, _, err := runShardChaos(t, ppClean, faClean, fault.Options{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := recordBytes(t, clean.Records)
	for i := 0; i < 5; i++ {
		pp, fa := chaosShardFixture(t, intRecords(64), build)
		res, _, err := runShardChaos(t, pp, fa,
			fault.Options{Schedules: []fault.Schedule{fault.FailFirstN(3, nil)}},
			Options{Shards: 4, Parallelism: 4, RetryBackoff: -1})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !bytes.Equal(recordBytes(t, res.Records), want) {
			t.Fatalf("iteration %d produced different records", i)
		}
		shardSpanCoherence(t, res.Trace.Spans)
	}
}
