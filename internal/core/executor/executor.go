// Package executor implements RHEEM's Executor (paper §4.2): it takes
// an execution plan from the multi-platform optimizer and is
// responsible for "(i) scheduling the resulting execution plan on the
// selected data processing frameworks, (ii) monitoring the progress of
// plan execution, (iii) coping with failures, and (iv) aggregating and
// returning results to users".
//
// Concretely it walks the task atoms in topological order, inserts
// channel conversions at every cross-platform edge (performing the
// data movement the optimizer priced), retries failed atom executions
// up to a bound, unrolls loop atoms by repeatedly executing the loop
// body's execution plan (charging the body platform's per-job overhead
// every iteration — the mechanism behind the paper's Figure 2), emits
// monitoring events, and aggregates metrics and the sink's records.
package executor

import (
	"context"
	"fmt"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// EventKind classifies monitoring events.
type EventKind int

// Monitoring event kinds.
const (
	EventAtomStart EventKind = iota
	EventAtomDone
	EventAtomRetry
	EventLoopIteration
	EventPlanDone
)

// Event is one monitoring notification.
type Event struct {
	Kind      EventKind
	Atom      *engine.TaskAtom
	Iteration int
	Metrics   engine.Metrics
	Err       error
}

// Options configures a run.
type Options struct {
	// Context cancels execution between (and inside) atoms.
	Context context.Context
	// MaxRetries bounds re-executions of a failed atom (default 2).
	MaxRetries int
	// Monitor, when set, receives progress events synchronously.
	Monitor func(Event)
	// AuditFactor flags operators whose actual output cardinality is
	// off the optimizer's estimate by more than this factor in either
	// direction (default 8; ≤1 disables the audit). Audited mismatches
	// land in Result.Mismatches — the raw material for re-optimization
	// and for tuning source hints.
	AuditFactor float64
	// ReOptimize enables adaptive re-optimization: when the audit
	// flags a gross cardinality mismatch at a top-level atom boundary,
	// the executor re-plans the remaining operators with the observed
	// cardinalities, keeping completed atoms frozen. At most one
	// re-optimization happens per run.
	ReOptimize bool
}

func (o *Options) defaults() {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.AuditFactor == 0 {
		o.AuditFactor = 8
	}
}

// CardMismatch reports one operator whose observed output cardinality
// diverged badly from the optimizer's estimate (part of the executor's
// monitoring duty, §4.2).
type CardMismatch struct {
	OpName    string
	Estimated int64
	Actual    int64
}

// Result aggregates a run's output and accounting.
type Result struct {
	// Records is the sink's output, converted to driver records.
	Records []data.Record
	// Metrics is the whole-plan aggregate.
	Metrics engine.Metrics
	// AtomMetrics holds per-atom aggregates, keyed by atom ID of the
	// top-level plan.
	AtomMetrics map[int]engine.Metrics
	// Mismatches lists audited cardinality estimation failures (loop
	// body operators are audited on their first iteration only).
	Mismatches []CardMismatch
	// Reoptimized reports whether adaptive re-optimization replaced
	// the execution plan mid-run.
	Reoptimized bool
	// FinalPlan is the execution plan that finished the run — the
	// original one, or the re-optimized replacement.
	FinalPlan *optimizer.ExecutionPlan
}

// Run executes an optimized plan over the registry's platforms.
func Run(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts Options) (*Result, error) {
	opts.defaults()
	res := &Result{AtomMetrics: make(map[int]engine.Metrics)}
	channels := make(map[int]*channel.Channel)
	audited := map[int]bool{}
	res.FinalPlan = ep
	if err := runPlan(ep, reg, &opts, res, channels, audited, true); err != nil {
		return nil, err
	}
	ep = res.FinalPlan
	sinkCh := channels[ep.Physical.SinkOp.ID]
	if sinkCh == nil {
		return nil, fmt.Errorf("executor: sink produced no channel")
	}
	out, moveCost, steps, err := reg.Channels().Convert(sinkCh, channel.Collection)
	if err != nil {
		return nil, fmt.Errorf("executor: materializing result: %w", err)
	}
	res.Metrics.Sim += moveCost
	res.Metrics.Conversions += steps
	recs, err := out.AsCollection()
	if err != nil {
		return nil, err
	}
	res.Records = recs
	emit(&opts, Event{Kind: EventPlanDone, Metrics: res.Metrics})
	return res, nil
}

func emit(opts *Options, e Event) {
	if opts.Monitor != nil {
		opts.Monitor(e)
	}
}

// runPlan executes one execution plan's atoms against a shared channel
// map (loop bodies are nested runPlan calls with the LoopInput channel
// pre-seeded).
func runPlan(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts *Options, res *Result, channels map[int]*channel.Channel, audited map[int]bool, topLevel bool) error {
	for i := 0; i < len(ep.Atoms); i++ {
		atom := ep.Atoms[i]
		if err := opts.Context.Err(); err != nil {
			return err
		}
		if atomDone(atom, channels) {
			continue // outputs already available (re-optimized run)
		}
		mismatchesBefore := len(res.Mismatches)
		switch atom.Kind {
		case engine.AtomLoop:
			if err := runLoop(ep, atom, reg, opts, res, channels, audited); err != nil {
				return err
			}
		default:
			if err := runComputeAtom(atom, ep.Estimates, reg, opts, res, channels, audited); err != nil {
				return err
			}
		}
		// Adaptive re-optimization: gross estimate misses at a
		// top-level atom boundary trigger one re-planning of the
		// remaining work with observed statistics.
		if topLevel && opts.ReOptimize && !res.Reoptimized && len(res.Mismatches) > mismatchesBefore {
			newEP, err := reoptimize(ep, reg, opts, channels)
			if err != nil {
				return fmt.Errorf("executor: re-optimization: %w", err)
			}
			res.Reoptimized = true
			res.FinalPlan = newEP
			ep = newEP
			i = -1 // restart; completed atoms are skipped via atomDone
		}
	}
	return nil
}

// atomDone reports whether every output the atom owes the rest of the
// plan is already available.
func atomDone(atom *engine.TaskAtom, channels map[int]*channel.Channel) bool {
	if atom.Kind == engine.AtomLoop {
		return channels[atom.LoopOp.ID] != nil
	}
	if len(atom.Exits) == 0 {
		return false
	}
	for _, ex := range atom.Exits {
		if channels[ex.ID] == nil {
			return false
		}
	}
	return true
}

// reoptimize re-plans the physical plan with observed cardinalities:
// operators whose outputs exist keep their platforms and are frozen
// into skippable atoms; everything downstream is re-costed and may
// move to a different platform.
func reoptimize(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts *Options, channels map[int]*channel.Channel) (*optimizer.ExecutionPlan, error) {
	overrides := map[int]int64{}
	for id, ch := range channels {
		if ch != nil && ch.Records >= 0 {
			overrides[id] = ch.Records
		}
	}
	frozen := map[int]bool{}
	forced := map[int]engine.PlatformID{}
	for _, atom := range ep.Atoms {
		if !atomDone(atom, channels) {
			continue
		}
		ops := atom.Ops
		if atom.Kind == engine.AtomLoop {
			ops = []*physical.Operator{atom.LoopOp}
		}
		for _, op := range ops {
			frozen[op.ID] = true
			forced[op.ID] = ep.Assignment[op.ID]
		}
	}
	return optimizer.Optimize(ep.Physical, reg, optimizer.Options{
		DisableRules:      true, // structure is fixed mid-run
		CardOverrides:     overrides,
		ForcedAssignments: forced,
		Frozen:            frozen,
	})
}

// runComputeAtom gathers external inputs (converting formats as
// needed), executes the atom with retries, and publishes exit channels.
func runComputeAtom(atom *engine.TaskAtom, est *cost.Estimates, reg *engine.Registry, opts *Options, res *Result, channels map[int]*channel.Channel, audited map[int]bool) error {
	platform, ok := reg.Platform(atom.Platform)
	if !ok {
		return fmt.Errorf("executor: unknown platform %q", atom.Platform)
	}
	inputs := engine.AtomInputs{}
	var moveMetrics engine.Metrics
	for _, op := range atom.Ops {
		for slot, in := range op.Inputs {
			if atom.Contains(in.ID) {
				continue
			}
			src := channels[in.ID]
			if src == nil {
				return fmt.Errorf("executor: %s needs output of op %d which is not available", atom, in.ID)
			}
			conv, cost, steps, err := reg.Channels().Convert(src, platform.NativeFormat())
			if err != nil {
				return fmt.Errorf("executor: feeding %s: %w", atom, err)
			}
			moveMetrics.Sim += cost
			moveMetrics.Conversions += steps
			if steps > 0 {
				moveMetrics.MovedBytes += src.Bytes
			}
			if inputs[op.ID] == nil {
				inputs[op.ID] = map[int]*channel.Channel{}
			}
			inputs[op.ID][slot] = conv
		}
	}

	emit(opts, Event{Kind: EventAtomStart, Atom: atom})
	var exits map[int]*channel.Channel
	var m engine.Metrics
	var err error
	for attempt := 0; ; attempt++ {
		exits, m, err = platform.ExecuteAtom(opts.Context, atom, inputs)
		if err == nil || attempt >= opts.MaxRetries || opts.Context.Err() != nil {
			break
		}
		moveMetrics.Retries++
		emit(opts, Event{Kind: EventAtomRetry, Atom: atom, Err: err, Metrics: m})
		res.Metrics.Add(m) // failed attempts still cost time
	}
	m.Add(moveMetrics)
	if err != nil {
		emit(opts, Event{Kind: EventAtomDone, Atom: atom, Err: err, Metrics: m})
		return fmt.Errorf("executor: %s failed after retries: %w", atom, err)
	}
	res.Metrics.Add(m)
	am := res.AtomMetrics[atom.ID]
	am.Add(m)
	res.AtomMetrics[atom.ID] = am
	emit(opts, Event{Kind: EventAtomDone, Atom: atom, Metrics: m})
	for id, ch := range exits {
		channels[id] = ch
	}
	auditCards(atom, est, exits, opts, res, audited)
	return nil
}

// auditCards compares observed exit cardinalities against the
// optimizer's estimates and records gross mismatches.
func auditCards(atom *engine.TaskAtom, est *cost.Estimates, exits map[int]*channel.Channel, opts *Options, res *Result, audited map[int]bool) {
	if opts.AuditFactor <= 1 || est == nil {
		return
	}
	for _, ex := range atom.Exits {
		ch := exits[ex.ID]
		if ch == nil || ch.Records < 0 || audited[ex.ID] {
			continue
		}
		audited[ex.ID] = true
		estimate := est.Cards[ex.ID]
		actual := ch.Records
		lo, hi := estimate, actual
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo <= 0 {
			lo = 1
		}
		if float64(hi)/float64(lo) > opts.AuditFactor {
			res.Mismatches = append(res.Mismatches, CardMismatch{
				OpName: ex.Name(), Estimated: estimate, Actual: actual,
			})
		}
	}
}

// runLoop unrolls a Repeat/DoWhile atom: each iteration executes the
// body's execution plan with the LoopInput channel bound to the
// current state, then feeds the body output back as the next state.
func runLoop(ep *optimizer.ExecutionPlan, atom *engine.TaskAtom, reg *engine.Registry, opts *Options, res *Result, channels map[int]*channel.Channel, audited map[int]bool) error {
	loopOp := atom.LoopOp
	body := ep.LoopBodies[loopOp.ID]
	if body == nil {
		return fmt.Errorf("executor: loop %s has no body plan", loopOp.Name())
	}
	loopInput := findLoopInput(body)
	if loopInput == nil {
		return fmt.Errorf("executor: loop body of %s has no LoopInput", loopOp.Name())
	}
	state := channels[loopOp.Inputs[0].ID]
	if state == nil {
		return fmt.Errorf("executor: loop %s input not available", loopOp.Name())
	}

	lop := loopOp.Logical
	maxIter := lop.Times
	if lop.Kind() == plan.KindDoWhile {
		maxIter = lop.MaxIter
		if maxIter <= 0 {
			maxIter = 100
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		bodyChannels := make(map[int]*channel.Channel)
		bodyChannels[loopInput.ID] = state
		if err := runPlan(body, reg, opts, res, bodyChannels, audited, false); err != nil {
			return fmt.Errorf("executor: loop %s iteration %d: %w", loopOp.Name(), iter, err)
		}
		state = bodyChannels[body.Physical.SinkOp.ID]
		if state == nil {
			return fmt.Errorf("executor: loop %s iteration %d produced no output", loopOp.Name(), iter)
		}
		emit(opts, Event{Kind: EventLoopIteration, Atom: atom, Iteration: iter})

		if lop.Kind() == plan.KindDoWhile {
			// Evaluate the condition on driver-side records, like a
			// Spark driver collecting loop state.
			conv, cost, steps, err := reg.Channels().Convert(state, channel.Collection)
			if err != nil {
				return fmt.Errorf("executor: loop %s condition input: %w", loopOp.Name(), err)
			}
			res.Metrics.Sim += cost
			res.Metrics.Conversions += steps
			recs, err := conv.AsCollection()
			if err != nil {
				return err
			}
			cont, err := lop.Cond(iter, recs)
			if err != nil {
				return fmt.Errorf("executor: loop %s condition: %w", loopOp.Name(), err)
			}
			if !cont {
				state = conv
				break
			}
		}
	}
	channels[loopOp.ID] = state
	return nil
}

func findLoopInput(body *optimizer.ExecutionPlan) *physical.Operator {
	for _, op := range body.Physical.Ops {
		if op.Kind() == plan.KindLoopInput {
			return op
		}
	}
	return nil
}
