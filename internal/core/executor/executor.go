// Package executor implements RHEEM's Executor (paper §4.2): it takes
// an execution plan from the multi-platform optimizer and is
// responsible for "(i) scheduling the resulting execution plan on the
// selected data processing frameworks, (ii) monitoring the progress of
// plan execution, (iii) coping with failures, and (iv) aggregating and
// returning results to users".
//
// Concretely it schedules the task atoms concurrently as their data
// dependencies resolve (see scheduler.go): independent atoms — the two
// scan legs of a join, sibling branches of a fan-out — overlap on a
// bounded worker pool, while every atom still sees exactly the input
// channels the sequential executor would have handed it. Channel
// conversions are inserted at every cross-platform edge (performing
// the data movement the optimizer priced), failed atom executions are
// retried up to a bound, loop atoms are unrolled by repeatedly
// executing the loop body's execution plan (charging the body
// platform's per-job overhead every iteration — the mechanism behind
// the paper's Figure 2), monitoring events are emitted, and metrics
// and the sink's records are aggregated.
package executor

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/core/trace"
	"rheem/internal/data"
)

// EventKind classifies monitoring events.
type EventKind int

// Monitoring event kinds.
const (
	EventAtomStart EventKind = iota
	EventAtomDone
	EventAtomRetry
	EventLoopIteration
	EventPlanDone
	// EventReplan reports that adaptive re-optimization replaced the
	// remaining execution plan mid-run.
	EventReplan
	// EventFailover reports that an atom exhausted its retries on an
	// unhealthy platform and the remaining plan was re-planned onto the
	// surviving platforms. Atom and Err identify the failed execution;
	// Excluded lists the platforms the replacement plan avoids.
	EventFailover
)

// Event is one monitoring notification. Monitor callbacks are
// serialized: the executor never invokes the monitor from two
// goroutines at once, and events of one atom arrive in that atom's
// program order (start, retries in attempt order, done).
type Event struct {
	Kind      EventKind
	Atom      *engine.TaskAtom
	Iteration int
	// Attempt numbers the failed execution attempt on EventAtomRetry
	// events, starting at 1; per atom it is strictly increasing.
	Attempt int
	Metrics engine.Metrics
	Err     error
	// Excluded lists the quarantined platforms on EventFailover events.
	Excluded []engine.PlatformID
}

// NoRetries is the Options.MaxRetries sentinel for "fail on the first
// error": the zero value means "default budget", so opting out of
// retries needs an explicit marker.
const NoRetries = -1

// Options configures a run.
type Options struct {
	// Context cancels execution between (and inside) atoms.
	Context context.Context
	// Parallelism bounds how many task atoms execute concurrently
	// (default runtime.NumCPU()). 1 reproduces the sequential
	// executor: atoms run one at a time in topological order.
	Parallelism int
	// MaxRetries bounds re-executions of a failed atom (default 2).
	// Pass NoRetries (-1, or any negative value) to fail on the first
	// error; 0 selects the default. Fatal errors (engine.Fatal — e.g. a
	// deterministic UDF failure) are never retried regardless.
	MaxRetries int
	// RetryBackoff is the base delay before the first re-execution;
	// subsequent attempts back off exponentially (doubling, capped at
	// 2s) with deterministic jitter. 0 selects the default (10ms); a
	// negative value disables the delay entirely (as the tests do).
	RetryBackoff time.Duration
	// AtomTimeout bounds each execution attempt of a single atom; an
	// attempt exceeding it fails with context.DeadlineExceeded and is
	// retried like any transient failure. 0 disables the bound.
	AtomTimeout time.Duration
	// Shards enables intra-atom data parallelism: a shardable compute
	// atom's input batch is split into up to Shards pieces that execute
	// concurrently (see shard.go for the shardability rules and merge
	// semantics). ≤1 disables sharding — every atom runs on its whole
	// input, exactly the pre-sharding behavior. The shard fan-out has
	// its own run-wide budget of Shards concurrent shard executions,
	// independent of Parallelism's atom budget.
	Shards int
	// Pool, when set, is a cross-run bound on atom execution: every
	// compute atom additionally acquires a slot from this shared pool
	// before executing (loop atoms never hold one — see pool.go for the
	// no-deadlock argument). Parallelism still bounds this run's own
	// in-flight atoms; the pool bounds the host-wide total across every
	// run sharing it. nil means no cross-run bound — the single-shot
	// behavior.
	Pool *Pool
	// Failover enables cross-platform failover: when an atom exhausts
	// its retries on a platform the health tracker has quarantined, the
	// executor quiesces in-flight atoms and re-plans the remaining
	// operators on the surviving platforms (completed atoms stay
	// frozen). The run fails only if no capable platform remains.
	Failover bool
	// Monitor, when set, receives progress events. Calls are
	// serialized; the callback itself need not be thread-safe.
	Monitor func(Event)
	// AuditFactor flags operators whose actual output cardinality is
	// off the optimizer's estimate by more than this factor in either
	// direction (default 8; ≤1 disables the audit). Audited mismatches
	// land in Result.Mismatches — the raw material for re-optimization
	// and for tuning source hints.
	AuditFactor float64
	// ReOptimize enables adaptive re-optimization: when the audit
	// flags a gross cardinality mismatch at a top-level atom boundary,
	// the executor quiesces in-flight atoms and re-plans the remaining
	// operators with the observed cardinalities, keeping completed
	// atoms frozen. At most one re-optimization happens per run.
	ReOptimize bool
	// Tracer, when set, receives the run's span stream (and keeps any
	// consumers subscribed to it). nil gives the run a private tracer;
	// either way Result.Trace holds the collected spans and audit
	// trail. Monitor is implemented as one consumer of this stream, so
	// a run with both sees identical event ordering.
	Tracer *trace.Tracer
	// Calibration propagates the learned cost-correction factors into
	// mid-run re-planning: adaptive re-optimization and cross-platform
	// failover re-run the optimizer, and without this the replacement
	// plan would be priced uncalibrated. Nil is fine.
	Calibration *cost.Calibrator
}

func (o *Options) defaults() {
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0 // NoRetries: first failure is final
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 10 * time.Millisecond
	} else if o.RetryBackoff < 0 {
		o.RetryBackoff = 0
	}
	if o.AuditFactor == 0 {
		o.AuditFactor = 8
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
}

// CardMismatch reports one operator whose observed output cardinality
// diverged badly from the optimizer's estimate (part of the executor's
// monitoring duty, §4.2).
type CardMismatch struct {
	OpName    string
	Estimated int64
	Actual    int64
}

// Result aggregates a run's output and accounting.
type Result struct {
	// Records is the sink's output, converted to driver records.
	Records []data.Record
	// Metrics is the whole-plan aggregate. Its Wall is the run's
	// elapsed host time — under concurrent scheduling that is less
	// than the sum of the per-atom Wall values in AtomMetrics.
	Metrics engine.Metrics
	// AtomMetrics holds per-atom aggregates, keyed by atom ID of the
	// top-level plan.
	AtomMetrics map[int]engine.Metrics
	// Mismatches lists audited cardinality estimation failures (loop
	// body operators are audited on their first iteration only).
	Mismatches []CardMismatch
	// Reoptimized reports whether adaptive re-optimization replaced
	// the execution plan mid-run.
	Reoptimized bool
	// Failovers counts cross-platform failover re-plans performed
	// during the run (each quarantines at least one more platform, so
	// the count is bounded by the registry size).
	Failovers int
	// PlatformHealth is the circuit-breaker state per platform at the
	// end of the run, from the registry's health tracker.
	PlatformHealth map[engine.PlatformID]engine.BreakerState
	// FinalPlan is the execution plan that finished the run — the
	// original one, or the re-optimized replacement.
	FinalPlan *optimizer.ExecutionPlan
	// Trace is the run's span trace and estimate-vs-actual audit
	// trail, always collected (spans are cheap next to executing an
	// atom). See rheem.WithTracing for the public surface.
	Trace *trace.Trace
}

// Run executes an optimized plan over the registry's platforms.
func Run(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts Options) (*Result, error) {
	opts.defaults()
	ctx, cancel := context.WithCancel(opts.Context)
	defer cancel()
	opts.Context = ctx

	// Every run notification flows through one span stream: the tracer
	// collects spans and the audit trail, and the Monitor callback (if
	// any) is just another consumer of the same stream.
	tr := opts.Tracer
	if tr == nil {
		tr = trace.New()
	}
	if opts.Monitor != nil {
		tr.Subscribe(monitorConsumer(opts.Monitor))
	}

	start := time.Now()
	// Announce the plan and its atom count before scheduling starts, so
	// live-progress consumers know the denominator from the first span.
	tr.Start(ep.Physical.Name, len(ep.Atoms))
	res := &Result{AtomMetrics: make(map[int]engine.Metrics), FinalPlan: ep}
	st := &runState{cancel: cancel, res: res, tr: tr, audited: map[int]bool{}}
	if opts.Shards > 1 {
		st.shardSem = make(chan struct{}, opts.Shards)
	}
	channels := make(map[int]*channel.Channel)
	if err := runPlan(ep, reg, &opts, st, channels, true, -1); err != nil {
		return nil, err
	}
	res.PlatformHealth = reg.Health().Snapshot()
	// All atoms have drained; the remaining accesses are single-threaded.
	ep = res.FinalPlan
	sinkCh := channels[ep.Physical.SinkOp.ID]
	if sinkCh == nil {
		return nil, fmt.Errorf("executor: sink produced no channel")
	}
	out, moveCost, steps, err := reg.Channels().Convert(sinkCh, channel.Collection)
	if err != nil {
		return nil, fmt.Errorf("executor: materializing result: %w", err)
	}
	res.Metrics.Sim += moveCost
	res.Metrics.Conversions += steps
	recs, err := out.AsCollection()
	if err != nil {
		return nil, err
	}
	res.Records = recs
	res.Metrics.Wall = time.Since(start)
	tr.PlanDone(res.Metrics)
	res.Trace = tr.Snapshot()
	return res, nil
}

// monitorConsumer adapts the span stream to the legacy Monitor event
// vocabulary — the Monitor facility is one consumer of the stream, so
// callbacks inherit the tracer's serialization guarantee.
func monitorConsumer(f func(Event)) trace.Consumer {
	return func(te trace.Event) {
		e := Event{Err: te.Err, Metrics: te.Metrics}
		switch te.Kind {
		case trace.SpanStart:
			e.Kind, e.Atom = EventAtomStart, te.Span.Atom
		case trace.SpanRetry:
			e.Kind, e.Atom, e.Attempt = EventAtomRetry, te.Span.Atom, te.Attempt
		case trace.SpanEnd:
			e.Kind, e.Atom = EventAtomDone, te.Span.Atom
		case trace.LoopIteration:
			e.Kind, e.Atom, e.Iteration = EventLoopIteration, te.Span.Atom, te.Iteration
		case trace.Replan:
			e.Kind = EventReplan
		case trace.Failover:
			e.Kind, e.Atom, e.Excluded = EventFailover, te.Atom, te.Excluded
		case trace.PlanDone:
			e.Kind = EventPlanDone
		default:
			return
		}
		f(e)
	}
}

// atomEstCost sums the optimizer's estimated cost over the atom's
// operators — the prediction the span's measured metrics audit.
func atomEstCost(ep *optimizer.ExecutionPlan, atom *engine.TaskAtom) time.Duration {
	if atom.Kind == engine.AtomLoop {
		return ep.OpCosts[atom.LoopOp.ID].Total()
	}
	var total time.Duration
	for _, op := range atom.Ops {
		total += ep.OpCosts[op.ID].Total()
	}
	return total
}

// atomKindEst splits a compute atom's RAW estimated cost by operator
// kind — the span-level attribution the cost calibrator folds measured
// time against. Raw, so calibration corrections never enter their own
// learning target. Nil for loop atoms (their body atoms carry the
// attribution) and for plans with no raw costs.
func atomKindEst(ep *optimizer.ExecutionPlan, atom *engine.TaskAtom) map[string]int64 {
	if atom.Kind != engine.AtomCompute || len(ep.RawOpCosts) == 0 {
		return nil
	}
	m := make(map[string]int64, len(atom.Ops))
	for _, op := range atom.Ops {
		if c, ok := ep.RawOpCosts[op.ID]; ok {
			m[op.Kind().String()] += int64(c.Total())
		}
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// atomDone reports whether every output the atom owes the rest of the
// plan is already available.
func atomDone(atom *engine.TaskAtom, channels map[int]*channel.Channel) bool {
	if atom.Kind == engine.AtomLoop {
		return channels[atom.LoopOp.ID] != nil
	}
	if len(atom.Exits) == 0 {
		return false
	}
	for _, ex := range atom.Exits {
		if channels[ex.ID] == nil {
			return false
		}
	}
	return true
}

// reoptimize re-plans the physical plan with observed cardinalities:
// operators whose outputs exist keep their platforms and are frozen
// into skippable atoms; everything downstream is re-costed and may
// move to a different platform. Failover re-plans additionally pass
// the quarantined platforms as excluded, so no remaining operator is
// assigned to them. The caller must have quiesced all in-flight atoms
// — reoptimize reads the channel map unlocked.
func reoptimize(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts *Options, channels map[int]*channel.Channel, excluded map[engine.PlatformID]bool) (*optimizer.ExecutionPlan, error) {
	overrides := map[int]int64{}
	for id, ch := range channels {
		if ch != nil && ch.Records >= 0 {
			overrides[id] = ch.Records
		}
	}
	frozen := map[int]bool{}
	forced := map[int]engine.PlatformID{}
	for _, atom := range ep.Atoms {
		if !atomDone(atom, channels) {
			continue
		}
		ops := atom.Ops
		if atom.Kind == engine.AtomLoop {
			ops = []*physical.Operator{atom.LoopOp}
		}
		for _, op := range ops {
			frozen[op.ID] = true
			forced[op.ID] = ep.Assignment[op.ID]
		}
	}
	return optimizer.Optimize(ep.Physical, reg, optimizer.Options{
		DisableRules:      true, // structure is fixed mid-run
		CardOverrides:     overrides,
		ForcedAssignments: forced,
		Frozen:            frozen,
		ExcludePlatforms:  excluded,
		Calibration:       opts.Calibration,
	})
}

// runComputeAtom gathers external inputs (converting formats as
// needed), executes the atom with retries, and publishes exit channels.
// It may run concurrently with other atoms: the shared channel map and
// Result are touched only under st.mu, and the platform call itself
// runs unlocked (Platform.ExecuteAtom must be safe for concurrent
// calls — see engine.Platform). The whole execution — input
// conversion, every attempt — is wrapped in one trace span.
func runComputeAtom(atom *engine.TaskAtom, ep *optimizer.ExecutionPlan, reg *engine.Registry, opts *Options, st *runState, channels map[int]*channel.Channel, readyAt time.Time, iter int) error {
	sp := st.tr.Begin(&trace.Span{
		Kind: trace.KindAtom, AtomID: atom.ID, Name: atom.String(),
		Platform: atom.Platform, Plan: ep.Physical.Name, Iteration: iter,
		Shard: -1, EstCost: atomEstCost(ep, atom),
		KindEst: atomKindEst(ep, atom), Atom: atom,
	}, readyAt)
	platform, ok := reg.Platform(atom.Platform)
	if !ok {
		err := fmt.Errorf("executor: unknown platform %q", atom.Platform)
		st.tr.End(sp, engine.Metrics{}, err)
		return err
	}
	vec, _ := platform.(engine.Vectorized)
	inputs := engine.AtomInputs{}
	var moveMetrics engine.Metrics
	for _, op := range atom.Ops {
		// Batch-capable consumers take their external inputs in the
		// columnar format instead of the platform's native one — the
		// cheaper edge the optimizer priced via channel.Batch.
		want := platform.NativeFormat()
		if vec != nil && vec.SupportsBatch(op) {
			want = channel.Batch
		}
		external := false
		for slot, in := range op.Inputs {
			if atom.Contains(in.ID) {
				continue
			}
			external = true
			st.mu.Lock()
			src := channels[in.ID]
			st.mu.Unlock()
			if src == nil {
				err := fmt.Errorf("executor: %s needs output of op %d which is not available", atom, in.ID)
				st.tr.End(sp, moveMetrics, err)
				return err
			}
			conv, cost, steps, err := reg.Channels().Convert(src, want)
			if err != nil {
				err = fmt.Errorf("executor: feeding %s: %w", atom, err)
				st.tr.End(sp, moveMetrics, err)
				return err
			}
			moveMetrics.Sim += cost
			moveMetrics.Conversions += steps
			if steps > 0 {
				moveMetrics.MovedBytes += src.Bytes
			}
			if inputs[op.ID] == nil {
				inputs[op.ID] = map[int]*channel.Channel{}
			}
			inputs[op.ID][slot] = conv
		}
		// Record the format choice per consumer with external inputs —
		// the span-level evidence of columnar (batch) adoption.
		if external {
			if sp.InFormats == nil {
				sp.InFormats = map[string]int{}
			}
			sp.InFormats[string(want)]++
		}
	}
	sp.ConvTime = moveMetrics.Sim
	sp.ConvBytes = moveMetrics.MovedBytes
	sp.ConvSteps = moveMetrics.Conversions

	// Sharding decision: made once per atom, after input conversion (so
	// the split sees platform-native channels) and outside the retry
	// loop (a retry re-executes the same shards).
	sh := planShards(platform, reg, atom, inputs, opts.Shards)
	if sh != nil {
		sp.Shards = len(sh.shards)
	}

	health := reg.Health()
	stats := reg.Stats()
	var exits map[int]*channel.Channel
	var m engine.Metrics
	var err error
	for attempt := 0; ; attempt++ {
		attStart := st.tr.Now()
		if sh != nil {
			exits, m, err = executeShardedAttempt(platform, atom, sh, opts, st, reg, ep.Physical.Name, iter)
		} else {
			exits, m, err = executeAttempt(platform, atom, inputs, opts)
		}
		att := trace.Attempt{Number: attempt + 1, Wall: st.tr.Now().Sub(attStart)}
		if err == nil {
			sp.Attempts = append(sp.Attempts, att)
			health.ReportSuccess(atom.Platform)
			break
		}
		att.Err = err.Error()
		att.Fatal = engine.IsFatal(err)
		sp.Attempts = append(sp.Attempts, att)
		// A cancelled run is not an atom failure: return the context
		// error itself, untouched — it must not count against the retry
		// budget, the platform's health, or read as "failed after
		// retries" in the run error.
		if ctxErr := opts.Context.Err(); ctxErr != nil {
			m.Add(moveMetrics)
			st.tr.End(sp, m, ctxErr)
			return ctxErr
		}
		fatal := engine.IsFatal(err)
		stats.RecordAttemptFailure(atom.Platform, fatal)
		if !fatal {
			health.ReportFailure(atom.Platform)
		}
		if fatal || attempt >= opts.MaxRetries {
			break
		}
		moveMetrics.Retries++
		sp.Retries++
		stats.RecordRetry(atom.Platform)
		st.tr.Retry(sp, attempt+1, m, err)
		st.mu.Lock()
		st.res.Metrics.Add(m) // failed attempts still cost time
		st.mu.Unlock()
		if ctxErr := backoffSleep(opts, atom.ID, attempt); ctxErr != nil {
			st.tr.End(sp, moveMetrics, ctxErr)
			return ctxErr
		}
	}
	m.Add(moveMetrics)
	if err != nil {
		stats.RecordFinalFailure(atom.Platform)
		st.mu.Lock()
		st.res.Metrics.Add(m) // the final attempt and its retries still cost time
		st.mu.Unlock()
		st.tr.End(sp, m, err)
		wrapped := fmt.Errorf("executor: %s failed after %d attempt(s): %w", atom, moveMetrics.Retries+1, err)
		if opts.Failover && !engine.IsFatal(err) && health.Quarantined(atom.Platform) {
			return &failoverError{platform: atom.Platform, atom: atom, err: wrapped}
		}
		return wrapped
	}
	stats.RecordSuccess(atom.Platform, m)
	st.mu.Lock()
	st.res.Metrics.Add(m)
	am := st.res.AtomMetrics[atom.ID]
	am.Add(m)
	st.res.AtomMetrics[atom.ID] = am
	for id, ch := range exits {
		channels[id] = ch
	}
	audits := auditCardsLocked(atom, ep, exits, opts, st)
	st.mu.Unlock()
	st.tr.End(sp, m, nil)
	st.tr.Audit(audits...)
	return nil
}

// auditCardsLocked compares observed exit cardinalities against the
// optimizer's estimates, records gross mismatches in the Result, and
// returns audit-trail records (every audited exit, flagged or not) for
// the tracer. The caller holds st.mu.
func auditCardsLocked(atom *engine.TaskAtom, ep *optimizer.ExecutionPlan, exits map[int]*channel.Channel, opts *Options, st *runState) []trace.CardAudit {
	est := ep.Estimates
	if est == nil {
		return nil
	}
	var audits []trace.CardAudit
	for _, ex := range atom.Exits {
		ch := exits[ex.ID]
		if ch == nil || ch.Records < 0 || st.audited[ex.ID] {
			continue
		}
		st.audited[ex.ID] = true
		estimate := est.Cards[ex.ID]
		actual := ch.Records
		lo, hi := estimate, actual
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo <= 0 {
			lo = 1
		}
		if hi <= 0 {
			hi = 1
		}
		factor := float64(hi) / float64(lo)
		flagged := opts.AuditFactor > 1 && factor > opts.AuditFactor
		rawEstimate := estimate
		if ep.RawEstimates != nil {
			rawEstimate = ep.RawEstimates.Cards[ex.ID]
		}
		audits = append(audits, trace.CardAudit{
			OpID: ex.ID, OpName: ex.Name(), Platform: atom.Platform,
			Estimated: estimate, Actual: actual, ErrFactor: factor,
			Flagged: flagged, EstCost: ep.OpCosts[ex.ID].Total(),
			OpKind: ex.Kind().String(), RawEstimated: rawEstimate,
		})
		if flagged {
			st.res.Mismatches = append(st.res.Mismatches, CardMismatch{
				OpName: ex.Name(), Estimated: estimate, Actual: actual,
			})
		}
	}
	return audits
}

// runLoop unrolls a Repeat/DoWhile atom: each iteration executes the
// body's execution plan with the LoopInput channel bound to the
// current state, then feeds the body output back as the next state.
// Iterations stay strictly sequential, but each iteration's body plan
// runs under the same concurrent scheduler as the top level. The whole
// unrolled loop is one KindLoop span; body atoms get their own spans
// tagged with the iteration they ran in.
func runLoop(ep *optimizer.ExecutionPlan, atom *engine.TaskAtom, reg *engine.Registry, opts *Options, st *runState, channels map[int]*channel.Channel, readyAt time.Time, outerIter int) (err error) {
	sp := st.tr.Begin(&trace.Span{
		Kind: trace.KindLoop, AtomID: atom.ID, Name: atom.String(),
		Platform: atom.Platform, Plan: ep.Physical.Name, Iteration: outerIter,
		Shard: -1, EstCost: atomEstCost(ep, atom), Atom: atom,
	}, readyAt)
	defer func() { st.tr.End(sp, engine.Metrics{}, err) }()

	loopOp := atom.LoopOp
	body := ep.LoopBodies[loopOp.ID]
	if body == nil {
		return fmt.Errorf("executor: loop %s has no body plan", loopOp.Name())
	}
	loopInput := findLoopInput(body)
	if loopInput == nil {
		return fmt.Errorf("executor: loop body of %s has no LoopInput", loopOp.Name())
	}
	st.mu.Lock()
	state := channels[loopOp.Inputs[0].ID]
	st.mu.Unlock()
	if state == nil {
		return fmt.Errorf("executor: loop %s input not available", loopOp.Name())
	}

	lop := loopOp.Logical
	maxIter := lop.Times
	if lop.Kind() == plan.KindDoWhile {
		maxIter = lop.MaxIter
		if maxIter <= 0 {
			maxIter = 100
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		bodyChannels := make(map[int]*channel.Channel)
		bodyChannels[loopInput.ID] = state
		if err := runPlan(body, reg, opts, st, bodyChannels, false, iter); err != nil {
			return fmt.Errorf("executor: loop %s iteration %d: %w", loopOp.Name(), iter, err)
		}
		state = bodyChannels[body.Physical.SinkOp.ID]
		if state == nil {
			return fmt.Errorf("executor: loop %s iteration %d produced no output", loopOp.Name(), iter)
		}
		st.tr.Loop(sp, iter)

		if lop.Kind() == plan.KindDoWhile {
			// Evaluate the condition on driver-side records, like a
			// Spark driver collecting loop state.
			conv, cost, steps, err := reg.Channels().Convert(state, channel.Collection)
			if err != nil {
				return fmt.Errorf("executor: loop %s condition input: %w", loopOp.Name(), err)
			}
			st.mu.Lock()
			st.res.Metrics.Sim += cost
			st.res.Metrics.Conversions += steps
			st.mu.Unlock()
			recs, err := conv.AsCollection()
			if err != nil {
				return err
			}
			cont, err := lop.Cond(iter, recs)
			if err != nil {
				return fmt.Errorf("executor: loop %s condition: %w", loopOp.Name(), err)
			}
			if !cont {
				state = conv
				break
			}
		}
	}
	st.mu.Lock()
	channels[loopOp.ID] = state
	st.mu.Unlock()
	return nil
}

func findLoopInput(body *optimizer.ExecutionPlan) *physical.Operator {
	for _, op := range body.Physical.Ops {
		if op.Kind() == plan.KindLoopInput {
			return op
		}
	}
	return nil
}
