package executor

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

// flakyPlatform wraps the java engine, failing the first failuresLeft
// atom executions — the test harness for the executor's "coping with
// failures" duty.
type flakyPlatform struct {
	*javaengine.Platform
	failuresLeft int
	calls        int
}

func (f *flakyPlatform) ID() engine.PlatformID { return "flaky" }

func (f *flakyPlatform) ExecuteAtom(ctx context.Context, atom *engine.TaskAtom, inputs engine.AtomInputs) (map[int]*channel.Channel, engine.Metrics, error) {
	f.calls++
	if f.failuresLeft > 0 {
		f.failuresLeft--
		return nil, engine.Metrics{Jobs: 1, Sim: time.Millisecond}, errors.New("injected failure")
	}
	return f.Platform.ExecuteAtom(ctx, atom, inputs)
}

// flakyRegistry registers only the flaky platform with java-like
// mappings.
func flakyRegistry(t *testing.T, failures int) (*engine.Registry, *flakyPlatform) {
	t.Helper()
	reg := engine.NewRegistry()
	fp := &flakyPlatform{Platform: javaengine.New(javaengine.Config{}), failuresLeft: failures}
	if err := reg.RegisterPlatform(fp); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []plan.OpKind{
		plan.KindSource, plan.KindMap, plan.KindFilter, plan.KindSink,
		plan.KindRepeat, plan.KindDoWhile, plan.KindLoopInput, plan.KindReduce,
	} {
		if err := reg.RegisterMapping(engine.Mapping{
			Platform: "flaky", Kind: kind, Algo: physical.Default,
			Cost: cost.ConstModel(cost.Cost{CPU: time.Microsecond}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return reg, fp
}

func simplePlan(t *testing.T, recs []data.Record) *physical.Plan {
	t.Helper()
	b := plan.NewBuilder("p")
	s := b.Source("s", plan.Collection(recs))
	s.CardHint = int64(len(recs))
	m := b.Map(s, func(r data.Record) (data.Record, error) {
		return r.Append(data.Bool(true)), nil
	})
	b.Collect(m)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func intRecords(n int) []data.Record {
	out := make([]data.Record, n)
	for i := range out {
		out[i] = data.NewRecord(data.Int(int64(i)))
	}
	return out
}

func TestRetrySucceedsWithinBudget(t *testing.T) {
	reg, fp := flakyRegistry(t, 2)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(5)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	res, err := Run(ep, reg, Options{MaxRetries: 2, Monitor: func(e Event) {
		if e.Kind == EventAtomRetry {
			retries++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Errorf("got %d records", len(res.Records))
	}
	if retries != 2 {
		t.Errorf("observed %d retry events", retries)
	}
	if fp.calls != 3 {
		t.Errorf("platform called %d times", fp.calls)
	}
	if res.Metrics.Retries != 2 {
		t.Errorf("metrics retries = %d", res.Metrics.Retries)
	}
}

func TestRetriesExhaustedFails(t *testing.T) {
	reg, _ := flakyRegistry(t, 10)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ep, reg, Options{MaxRetries: 2}); err == nil {
		t.Error("run succeeded despite persistent failures")
	}
}

func TestContextCancellation(t *testing.T) {
	reg, _ := flakyRegistry(t, 0)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ep, reg, Options{Context: ctx}); err == nil {
		t.Error("cancelled run succeeded")
	}
}

func fullRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{JobOverhead: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestCrossPlatformConversionAccounted(t *testing.T) {
	// Pin to spark: the collection result must be converted from the
	// partitioned format, so MovedBytes/Conversions are non-zero.
	reg := fullRegistry(t)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(100)), reg,
		optimizer.Options{FixedPlatform: sparksim.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 100 {
		t.Errorf("got %d records", len(res.Records))
	}
	if res.Metrics.Conversions == 0 {
		t.Error("no conversions recorded for partitioned→collection result")
	}
	if res.Metrics.Jobs < 1 {
		t.Error("no jobs recorded")
	}
}

func TestLoopChargesPerIterationJobs(t *testing.T) {
	// A 5-iteration loop pinned to spark must launch ≥5 jobs: the
	// executor unrolls the loop, and each body atom execution is a
	// simulated job with its JobOverhead. This is the Figure 2 effect.
	reg := fullRegistry(t)
	bb := plan.NewBodyBuilder("body")
	li := bb.LoopInput("st")
	m := bb.Map(li, func(r data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
	})
	bb.Collect(m)
	body := bb.MustBuild()

	b := plan.NewBuilder("loop")
	s := b.Source("s", plan.Collection(intRecords(1)))
	rep := b.Repeat(s, 5, body)
	b.Collect(rep)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: sparksim.ID})
	if err != nil {
		t.Fatal(err)
	}
	var iterations int
	res, err := Run(ep, reg, Options{Monitor: func(e Event) {
		if e.Kind == EventLoopIteration {
			iterations++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if iterations != 5 {
		t.Errorf("%d loop iteration events", iterations)
	}
	if res.Metrics.Jobs < 6 { // source atom + 5 body executions
		t.Errorf("only %d jobs for a 5-iteration loop", res.Metrics.Jobs)
	}
	if len(res.Records) != 1 || res.Records[0].Field(0).Int() != 5 {
		t.Errorf("loop result = %v", res.Records)
	}
	// Simulated time must include ≥6 job overheads.
	if res.Metrics.Sim < 6*time.Millisecond {
		t.Errorf("sim time %v too small for 6 jobs at 1ms overhead", res.Metrics.Sim)
	}
}

func TestDoWhileRespectsMaxIter(t *testing.T) {
	reg := fullRegistry(t)
	bb := plan.NewBodyBuilder("body")
	li := bb.LoopInput("st")
	m := bb.Map(li, plan.Identity())
	bb.Collect(m)
	body := bb.MustBuild()

	b := plan.NewBuilder("dw")
	s := b.Source("s", plan.Collection(intRecords(1)))
	dw := b.DoWhile(s, func(int, []data.Record) (bool, error) { return true, nil }, 4, body)
	b.Collect(dw)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	if _, err := Run(ep, reg, Options{Monitor: func(e Event) {
		if e.Kind == EventLoopIteration {
			iters++
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if iters != 4 {
		t.Errorf("always-true DoWhile ran %d iterations, want MaxIter=4", iters)
	}
}

func TestErrorFromUDFPropagates(t *testing.T) {
	reg := fullRegistry(t)
	boom := fmt.Errorf("udf exploded")
	b := plan.NewBuilder("p")
	s := b.Source("s", plan.Collection(intRecords(3)))
	m := b.Map(s, func(data.Record) (data.Record, error) { return data.Record{}, boom })
	b.Collect(m)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ep, reg, Options{MaxRetries: 1})
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("UDF error not propagated: %v", err)
	}
}
