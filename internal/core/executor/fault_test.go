package executor

import (
	"errors"
	"testing"
	"time"

	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/fault"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/platform/javaengine"
)

// errBoom is the permanent failure the fault tests inject.
var errBoom = errors.New("boom: permanent atom failure")

// failAlways is the "platform is broken" schedule.
func failAlways(err error) fault.Schedule {
	return fault.FailMatching(func(*engine.TaskAtom) bool { return true }, err)
}

// wrapJava registers a fault-injecting wrapper around a fresh java
// engine under the given ID.
func wrapJava(t *testing.T, reg *engine.Registry, id engine.PlatformID, opts fault.Options) *fault.Platform {
	t.Helper()
	opts.ID = id
	p := fault.Wrap(javaengine.New(javaengine.Config{}), opts)
	if err := reg.RegisterPlatform(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// registerMapKinds declares java-like mappings for the kinds the fault
// fixtures use on the given wrapper platform.
func registerMapKinds(t *testing.T, reg *engine.Registry, id engine.PlatformID) {
	t.Helper()
	for _, kind := range []plan.OpKind{plan.KindSource, plan.KindMap, plan.KindUnion, plan.KindSink} {
		if err := reg.RegisterMapping(engine.Mapping{
			Platform: id, Kind: kind, Algo: physical.Default,
			Cost: cost.ConstModel(cost.Cost{CPU: time.Microsecond}),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// faultPlan is a two-branch diamond with each branch pinned to its own
// platform so the branches become separate atoms that run concurrently.
func faultPlan(t *testing.T, branchPlatforms []engine.PlatformID) (*physical.Plan, map[int]engine.PlatformID) {
	t.Helper()
	b := plan.NewBuilder("fault")
	s := b.Source("src", plan.Collection(intRecords(8)))
	s.CardHint = 8
	var outs []*plan.Operator
	for range branchPlatforms {
		outs = append(outs, b.Map(s, plan.Identity()))
	}
	u := outs[0]
	for _, o := range outs[1:] {
		u = b.Union(u, o)
	}
	b.Collect(u)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	fa := map[int]engine.PlatformID{}
	branch := 0
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindMap {
			fa[op.ID] = branchPlatforms[branch]
			branch++
		} else {
			fa[op.ID] = javaengine.ID
		}
	}
	return pp, fa
}

// TestPermanentFailureCancelsSiblings injects a permanently failing
// atom next to one that blocks (injected latency) until cancelled: Run
// must return the failing atom's error, propagate cancellation to the
// in-flight sibling, and never report plan completion.
func TestPermanentFailureCancelsSiblings(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	// The stalling branch sleeps far longer than the suite tolerates;
	// only cancellation from the boom branch's failure lets it finish.
	stall := wrapJava(t, reg, "stall", fault.Options{Latency: 10 * time.Second})
	wrapJava(t, reg, "boom", fault.Options{Schedules: []fault.Schedule{failAlways(errBoom)}})
	registerMapKinds(t, reg, "stall")
	registerMapKinds(t, reg, "boom")

	pp, fa := faultPlan(t, []engine.PlatformID{"boom", "stall"})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}

	var planDone bool
	_, err = Run(ep, reg, Options{Parallelism: 4, MaxRetries: 1, RetryBackoff: -1, Monitor: func(e Event) {
		if e.Kind == EventPlanDone {
			planDone = true
		}
	}})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run error = %v, want the injected failure", err)
	}
	if stall.Stats().Cancelled == 0 {
		t.Error("in-flight sibling atom was not cancelled after the failure")
	}
	if planDone {
		t.Error("EventPlanDone emitted for a failed run")
	}
}

// TestRetryAttemptsMonotonicPerAtom retries two concurrent atoms and
// checks the monitoring contract: each atom's EventAtomRetry attempts
// arrive strictly increasing from 1, even when retries interleave
// across atoms.
func TestRetryAttemptsMonotonicPerAtom(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	wrapJava(t, reg, "retry", fault.Options{Schedules: []fault.Schedule{fault.FailFirstN(2, nil)}})
	registerMapKinds(t, reg, "retry")

	pp, fa := faultPlan(t, []engine.PlatformID{"retry", "retry"})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}

	attempts := map[int][]int{} // atom ID → observed retry attempt numbers
	res, err := Run(ep, reg, Options{Parallelism: 2, MaxRetries: 2, RetryBackoff: -1, Monitor: func(e Event) {
		if e.Kind == EventAtomRetry {
			attempts[e.Atom.ID] = append(attempts[e.Atom.ID], e.Attempt)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 16 {
		t.Errorf("%d records", len(res.Records))
	}
	if len(attempts) != 2 {
		t.Fatalf("atoms with retries = %d, want the 2 branch atoms (%v)", len(attempts), attempts)
	}
	for id, seq := range attempts {
		if len(seq) != 2 || seq[0] != 1 || seq[1] != 2 {
			t.Errorf("atom %d retry attempts = %v, want [1 2]", id, seq)
		}
	}
	if res.Metrics.Retries != 4 {
		t.Errorf("metrics retries = %d, want 4", res.Metrics.Retries)
	}
}

// TestFailureUnderStress repeats the failure/cancellation scenario at
// high parallelism; under -race it checks the error path for races.
func TestFailureUnderStress(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	wrapJava(t, reg, "boom", fault.Options{Schedules: []fault.Schedule{failAlways(errBoom)}})
	registerMapKinds(t, reg, "boom")

	for i := 0; i < 25; i++ {
		pp, fa := faultPlan(t, []engine.PlatformID{"boom", javaengine.ID, "boom", javaengine.ID})
		ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(ep, reg, Options{Parallelism: 8, MaxRetries: 1, RetryBackoff: -1}); !errors.Is(err, errBoom) {
			t.Fatalf("run %d: error = %v, want the injected failure", i, err)
		}
	}
}
