package executor

import (
	"testing"

	"rheem/internal/core/engine"
	"rheem/internal/core/fault"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/core/trace"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

// spanAtomIDs collects the distinct atom IDs of the trace's top-level
// spans (Iteration < 0 — loop-body spans carry their iteration).
func spanAtomIDs(tr *trace.Trace) map[int]bool {
	ids := map[int]bool{}
	for _, sp := range tr.Spans {
		if sp.Iteration < 0 {
			ids[sp.AtomID] = true
		}
	}
	return ids
}

func TestTraceCoversEveryAtom(t *testing.T) {
	reg := fullRegistry(t)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(50)), reg,
		optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Result.Trace not collected")
	}
	if len(res.Trace.Spans) != len(ep.Atoms) {
		t.Fatalf("%d spans for %d atoms", len(res.Trace.Spans), len(ep.Atoms))
	}
	ids := spanAtomIDs(res.Trace)
	for _, atom := range ep.Atoms {
		if !ids[atom.ID] {
			t.Errorf("atom %d executed without a span", atom.ID)
		}
	}
	// Spans and per-atom metrics describe the same executions.
	if len(res.AtomMetrics) != len(res.Trace.Spans) {
		t.Errorf("%d AtomMetrics entries vs %d spans", len(res.AtomMetrics), len(res.Trace.Spans))
	}
	var estTotal int64
	for _, sp := range res.Trace.Spans {
		if sp.Kind != trace.KindAtom {
			t.Errorf("span %d kind = %q", sp.ID, sp.Kind)
		}
		if sp.Platform != javaengine.ID {
			t.Errorf("span %d platform = %q", sp.ID, sp.Platform)
		}
		if sp.Failed() || len(sp.Attempts) != 1 || sp.Retries != 0 {
			t.Errorf("clean run span = %+v", sp)
		}
		if sp.EndedAt.Before(sp.StartedAt) {
			t.Errorf("span %d ended before it started", sp.ID)
		}
		estTotal += int64(sp.EstCost)
	}
	if estTotal == 0 {
		t.Error("no span carries an optimizer cost estimate")
	}
}

func TestTraceRecordsRetries(t *testing.T) {
	reg, _ := flakyRegistry(t, 2)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(5)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{MaxRetries: 2, RetryBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Spans) != 1 {
		t.Fatalf("%d spans, want the single flaky atom", len(res.Trace.Spans))
	}
	sp := res.Trace.Spans[0]
	if len(sp.Attempts) != 3 || sp.Retries != 2 {
		t.Fatalf("attempts = %d, retries = %d, want 3 and 2", len(sp.Attempts), sp.Retries)
	}
	for i, att := range sp.Attempts {
		if att.Number != i+1 {
			t.Errorf("attempt %d numbered %d", i, att.Number)
		}
		failed := i < 2
		if (att.Err != "") != failed {
			t.Errorf("attempt %d error = %q", i+1, att.Err)
		}
		if att.Fatal {
			t.Errorf("transient attempt %d marked fatal", i+1)
		}
	}
	if sp.Failed() {
		t.Errorf("eventually successful span carries error %q", sp.Err)
	}

	// The registry's per-platform counters saw the same history.
	st := reg.Stats().Snapshot()["flaky"]
	if st.AtomsExecuted != 1 || st.TransientErrors != 2 || st.Retries != 2 {
		t.Errorf("platform stats = %+v", st)
	}
	if st.RecordsOut == 0 || st.Jobs == 0 {
		t.Errorf("throughput counters empty: %+v", st)
	}
}

func TestTraceConversionAccounting(t *testing.T) {
	// One branch on spark, the rest on java: the cross-platform edges
	// force channel conversions that must land on the consuming spans.
	reg := fullRegistry(t)
	pp, fa := faultPlan(t, []engine.PlatformID{sparksim.ID, javaengine.ID})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	converted := 0
	for _, sp := range res.Trace.Spans {
		if sp.ConvSteps > 0 {
			converted++
			if sp.ConvTime <= 0 {
				t.Errorf("span %d converted %d steps in zero modelled time", sp.ID, sp.ConvSteps)
			}
		}
	}
	if converted == 0 {
		t.Error("no span recorded input conversions on a two-platform plan")
	}
	if len(res.Trace.Platforms()) < 2 {
		t.Errorf("trace platforms = %v, want both", res.Trace.Platforms())
	}
}

func TestTraceLoopSpans(t *testing.T) {
	reg := fullRegistry(t)
	ep := loopPlanFixture(t, reg)
	res, err := Run(ep, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var loops, bodySpans int
	iters := map[int]bool{}
	for _, sp := range res.Trace.Spans {
		switch {
		case sp.Kind == trace.KindLoop:
			loops++
			if sp.Failed() {
				t.Errorf("loop span failed: %q", sp.Err)
			}
		case sp.Iteration >= 0:
			bodySpans++
			iters[sp.Iteration] = true
			if sp.Plan != "body" {
				t.Errorf("body span plan = %q", sp.Plan)
			}
		}
	}
	if loops != 1 {
		t.Errorf("%d loop spans, want 1", loops)
	}
	if bodySpans < 5 {
		t.Errorf("%d loop-body spans for a 5-iteration loop", bodySpans)
	}
	for i := 0; i < 5; i++ {
		if !iters[i] {
			t.Errorf("no body span for iteration %d", i)
		}
	}
}

// loopPlanFixture optimizes a 5-iteration increment loop whose body
// plan is named "body".
func loopPlanFixture(t *testing.T, reg *engine.Registry) *optimizer.ExecutionPlan {
	t.Helper()
	bb := plan.NewBodyBuilder("body")
	li := bb.LoopInput("st")
	m := bb.Map(li, func(r data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
	})
	bb.Collect(m)
	body := bb.MustBuild()

	b := plan.NewBuilder("loop")
	s := b.Source("s", plan.Collection(intRecords(1)))
	rep := b.Repeat(s, 5, body)
	b.Collect(rep)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func TestTraceAuditTrail(t *testing.T) {
	reg := fullRegistry(t)
	ep, err := optimizer.Optimize(badSelectivityPlan(t, 1000), reg,
		optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Audits) == 0 {
		t.Fatal("no audit records collected")
	}
	var flagged *trace.CardAudit
	for i := range res.Trace.Audits {
		a := &res.Trace.Audits[i]
		if a.Flagged {
			flagged = a
		}
		if a.ErrFactor < 1 {
			t.Errorf("audit %+v has factor < 1", a)
		}
	}
	if flagged == nil {
		t.Fatal("the 500-vs-0 filter estimate was not flagged")
	}
	if flagged.Actual != 0 || flagged.Estimated < 100 {
		t.Errorf("flagged audit = %+v", flagged)
	}
	if flagged.Platform != javaengine.ID {
		t.Errorf("flagged audit platform = %q", flagged.Platform)
	}
}

func TestTraceAuditCollectedWhenFlaggingDisabled(t *testing.T) {
	reg := fullRegistry(t)
	ep, err := optimizer.Optimize(badSelectivityPlan(t, 1000), reg,
		optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{AuditFactor: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Audits) == 0 {
		t.Error("disabling flagging also dropped the audit trail")
	}
	for _, a := range res.Trace.Audits {
		if a.Flagged {
			t.Errorf("audit flagged with flagging disabled: %+v", a)
		}
	}
	if len(res.Mismatches) != 0 {
		t.Errorf("disabled audit recorded mismatches: %+v", res.Mismatches)
	}
}

func TestTraceFailoverShowsBothPlatforms(t *testing.T) {
	pp, fa := faultPlan(t, []engine.PlatformID{"chaos", "chaos"})
	reg, _ := chaosRegistry(t, fault.Options{Schedules: []fault.Schedule{fault.FailAfterN(1, nil)}})
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{Parallelism: 2, Failover: true, RetryBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	platforms := map[engine.PlatformID]bool{}
	for _, id := range tr.Platforms() {
		platforms[id] = true
	}
	if !platforms["chaos"] {
		t.Errorf("trace platforms %v missing the dead platform", tr.Platforms())
	}
	if len(platforms) < 2 {
		t.Fatalf("trace platforms = %v, want the dead platform and a survivor", tr.Platforms())
	}
	// The dead platform's spans include the failed execution that
	// triggered the failover; the survivors' spans are all clean.
	var chaosFailed bool
	for _, sp := range tr.SpansOn("chaos") {
		if sp.Failed() {
			chaosFailed = true
		}
	}
	if !chaosFailed {
		t.Error("no failed span on the quarantined platform")
	}
	for id := range platforms {
		if id == "chaos" {
			continue
		}
		for _, sp := range tr.SpansOn(id) {
			if sp.Failed() {
				t.Errorf("survivor %q has failed span %+v", id, sp)
			}
		}
	}
	// And the counters agree on who failed.
	st := reg.Stats().Snapshot()
	if st["chaos"].AtomsFailed == 0 || st["chaos"].TransientErrors == 0 {
		t.Errorf("chaos stats = %+v", st["chaos"])
	}
}

func TestExternalTracerSharesStream(t *testing.T) {
	// A caller-provided tracer sees the same stream the Monitor does,
	// and keeps collecting if reused across runs.
	reg := fullRegistry(t)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(10)), reg,
		optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	var consumerEnds, monitorDones, planDone int
	tr := trace.New(func(e trace.Event) {
		switch e.Kind {
		case trace.SpanEnd:
			consumerEnds++
		case trace.PlanDone:
			planDone++
		}
	})
	res, err := Run(ep, reg, Options{Tracer: tr, Monitor: func(e Event) {
		if e.Kind == EventAtomDone {
			monitorDones++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if consumerEnds == 0 || consumerEnds != monitorDones {
		t.Errorf("consumer saw %d span ends, monitor %d atom-done events", consumerEnds, monitorDones)
	}
	if planDone != 1 {
		t.Errorf("PlanDone events = %d", planDone)
	}
	if len(res.Trace.Spans) != consumerEnds {
		t.Errorf("snapshot has %d spans, stream delivered %d", len(res.Trace.Spans), consumerEnds)
	}
}
