package executor

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
	"rheem/internal/core/fault"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

// boomRegistry is a registry whose only platform fails every execution.
func boomRegistry(t *testing.T) (*engine.Registry, *fault.Platform) {
	t.Helper()
	reg := engine.NewRegistry()
	p := wrapJava(t, reg, "boom", fault.Options{Schedules: []fault.Schedule{failAlways(errBoom)}})
	registerMapKinds(t, reg, "boom")
	return reg, p
}

// TestNoRetriesSentinel pins the MaxRetries semantics: 0 selects the
// default budget (2 retries), while the NoRetries sentinel means the
// first failure is final — exactly one platform call, no retry events.
func TestNoRetriesSentinel(t *testing.T) {
	reg, p := boomRegistry(t)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	_, err = Run(ep, reg, Options{MaxRetries: NoRetries, RetryBackoff: -1, Monitor: func(e Event) {
		if e.Kind == EventAtomRetry {
			retries++
		}
	}})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Run error = %v", err)
	}
	if got := p.Stats().Calls; got != 1 {
		t.Errorf("platform called %d times under NoRetries, want exactly 1", got)
	}
	if retries != 0 {
		t.Errorf("%d retry events under NoRetries", retries)
	}
	if !strings.Contains(err.Error(), "after 1 attempt") {
		t.Errorf("error text misreports the attempt count: %v", err)
	}
}

// TestCancellationDuringRetryReturnsContextError cancels the run from
// the monitor while an atom is between retry attempts: Run must return
// the context error itself — not a "failed after retries" wrapper that
// blames the atom.
func TestCancellationDuringRetryReturnsContextError(t *testing.T) {
	reg, _ := boomRegistry(t)
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ep, reg, Options{Context: ctx, MaxRetries: 5, RetryBackoff: -1, Monitor: func(e Event) {
		if e.Kind == EventAtomRetry {
			cancel()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if strings.Contains(err.Error(), "failed after") {
		t.Errorf("cancellation misreported as atom failure: %v", err)
	}
}

// TestAtomTimeoutBoundsAttempts gives each attempt a deadline far
// shorter than the platform's injected latency: the attempt must fail
// with DeadlineExceeded (and say so), while a generous deadline leaves
// the same plan untouched.
func TestAtomTimeoutBoundsAttempts(t *testing.T) {
	reg := engine.NewRegistry()
	wrapJava(t, reg, "slow", fault.Options{Latency: 5 * time.Second})
	registerMapKinds(t, reg, "slow")
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(ep, reg, Options{MaxRetries: NoRetries, RetryBackoff: -1, AtomTimeout: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run error = %v, want a deadline error", err)
	}
	if !strings.Contains(err.Error(), "atom timeout") {
		t.Errorf("timeout not named in error: %v", err)
	}

	reg = engine.NewRegistry()
	wrapJava(t, reg, "slow", fault.Options{Latency: time.Millisecond})
	registerMapKinds(t, reg, "slow")
	ep, err = optimizer.Optimize(simplePlan(t, intRecords(3)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{AtomTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("generous timeout failed the run: %v", err)
	}
	if len(res.Records) != 3 {
		t.Errorf("%d records", len(res.Records))
	}
}

// TestFatalUDFErrorNotRetried runs a deterministically failing map UDF:
// the engine classifies it fatal, so the executor must fail without
// burning the retry budget on an error that would recur identically.
func TestFatalUDFErrorNotRetried(t *testing.T) {
	boom := errors.New("udf exploded")
	reg := engine.NewRegistry()
	p := wrapJava(t, reg, "java2", fault.Options{}) // no schedules: pure call counter
	registerMapKinds(t, reg, "java2")

	b := plan.NewBuilder("fatal")
	s := b.Source("s", plan.Collection(intRecords(3)))
	s.CardHint = 3
	m := b.Map(s, func(r data.Record) (data.Record, error) { return data.Record{}, boom })
	b.Collect(m)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	_, err = Run(ep, reg, Options{MaxRetries: 3, RetryBackoff: -1, Monitor: func(e Event) {
		if e.Kind == EventAtomRetry {
			retries++
		}
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v", err)
	}
	if !engine.IsFatal(err) {
		t.Errorf("fatal classification lost on the run error: %v", err)
	}
	if got := p.Stats().Calls; got != 1 {
		t.Errorf("fatal UDF error executed %d times, want 1", got)
	}
	if retries != 0 {
		t.Errorf("%d retries of a fatal error", retries)
	}
}

// TestBackoffDelayDeterministicAndBounded pins the retry backoff
// shape: deterministic per (atom, attempt), jittered within [d/2, d],
// exponential, capped, and disabled for non-positive bases.
func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 0; attempt < 4; attempt++ {
		full := base << uint(attempt)
		d := backoffDelay(base, 7, attempt)
		if d != backoffDelay(base, 7, attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		if d < full/2 || d > full {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
	if backoffDelay(base, 7, 0) == backoffDelay(base, 8, 0) {
		t.Error("jitter identical across atoms — retry storms stay synchronized")
	}
	if d := backoffDelay(base, 1, 62); d > maxRetryBackoff {
		t.Errorf("uncapped delay %v", d)
	}
	if backoffDelay(0, 1, 1) != 0 || backoffDelay(-time.Second, 1, 1) != 0 {
		t.Error("non-positive base must disable the delay")
	}
}

// opaquePlatform computes in a format nothing can convert to — the
// probe for the executor's input-conversion failure path.
type opaquePlatform struct{ engine.Platform }

func (p *opaquePlatform) ID() engine.PlatformID        { return "opaque" }
func (p *opaquePlatform) NativeFormat() channel.Format { return channel.Format("opaque") }
func (p *opaquePlatform) RegisterConverters(*channel.Registry) {}

// TestInputConversionFailure forces a downstream atom onto a platform
// whose native format is unreachable from its input's format: feeding
// the atom must fail with a conversion error, not a panic or a stall.
func TestInputConversionFailure(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterPlatform(&opaquePlatform{Platform: javaengine.New(javaengine.Config{})}); err != nil {
		t.Fatal(err)
	}

	// Split source and map across platforms so the map atom is fed
	// through the conversion graph, then reroute it to the opaque
	// platform after optimization (the optimizer would never pick a
	// platform without mappings).
	pp := simplePlan(t, intRecords(4))
	fa := map[int]engine.PlatformID{}
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSource {
			fa[op.ID] = javaengine.ID
		} else {
			fa[op.ID] = sparksim.ID
		}
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, ForcedAssignments: fa})
	if err != nil {
		t.Fatal(err)
	}
	rerouted := false
	for _, atom := range ep.Atoms {
		if atom.Platform == sparksim.ID {
			atom.Platform = "opaque"
			rerouted = true
		}
	}
	if !rerouted {
		t.Fatal("fixture produced no spark atom to reroute")
	}
	_, err = Run(ep, reg, Options{RetryBackoff: -1})
	if err == nil || !strings.Contains(err.Error(), "feeding") {
		t.Fatalf("Run error = %v, want an input-conversion failure", err)
	}
}

// TestUnknownPlatformFails runs a plan whose atom names a platform the
// registry has never seen.
func TestUnknownPlatformFails(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(simplePlan(t, intRecords(4)), reg, optimizer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ep.Atoms[0].Platform = "ghost"
	_, err = Run(ep, reg, Options{})
	if err == nil || !strings.Contains(err.Error(), `unknown platform "ghost"`) {
		t.Fatalf("Run error = %v, want unknown-platform failure", err)
	}
}
