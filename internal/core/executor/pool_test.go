package executor

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
)

// poolPlan builds a fan-out plan whose map branches report their
// concurrency through the shared gauge.
func poolPlan(t *testing.T, branches, recs int, inFlight, peak *int64, hold time.Duration) *physical.Plan {
	t.Helper()
	src := make([]data.Record, recs)
	for i := range src {
		src[i] = data.NewRecord(data.Int(int64(i)))
	}
	b := plan.NewBuilder("pool")
	s := b.Source("src", plan.Collection(src))
	s.CardHint = int64(recs)
	legs := make([]*plan.Operator, branches)
	for i := range legs {
		legs[i] = b.Map(s, func(r data.Record) (data.Record, error) {
			cur := atomic.AddInt64(inFlight, 1)
			for {
				p := atomic.LoadInt64(peak)
				if cur <= p || atomic.CompareAndSwapInt64(peak, p, cur) {
					break
				}
			}
			time.Sleep(hold)
			atomic.AddInt64(inFlight, -1)
			return r, nil
		})
	}
	out := legs[0]
	for _, l := range legs[1:] {
		out = b.Union(out, l)
	}
	b.Collect(b.Count(out))
	lp, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pp, err := physical.FromLogical(lp)
	if err != nil {
		t.Fatalf("physical: %v", err)
	}
	return pp
}

// TestPoolBoundsAcrossRuns drives several concurrent runs through one
// small pool and asserts the observed peak concurrency of the
// instrumented map atoms never exceeds the pool size, even though the
// per-run Parallelism would allow far more.
func TestPoolBoundsAcrossRuns(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	const poolSize = 2
	pool := NewPool(poolSize)
	var inFlight, peak int64

	const runs = 4
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		pp := poolPlan(t, 4, 8, &inFlight, &peak, 2*time.Millisecond)
		ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: javaengine.ID})
		if err != nil {
			t.Fatalf("optimize: %v", err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Run(ep, reg, Options{Parallelism: 8, Pool: pool})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if got := atomic.LoadInt64(&peak); got > poolSize {
		t.Fatalf("peak concurrent atom executions %d exceeds pool size %d", got, poolSize)
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool has %d slots still held after all runs finished", pool.InUse())
	}
}

// TestPoolLoopBodiesDoNotDeadlock runs a looping plan through a
// 1-slot pool: if loop atoms held slots while their bodies executed,
// this would deadlock instantly.
func TestPoolLoopBodiesDoNotDeadlock(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	b := plan.NewBuilder("pool-loop")
	src := b.Source("src", plan.Collection([]data.Record{data.NewRecord(data.Int(1))}))
	bb := plan.NewBodyBuilder("pool-loop.body")
	state := bb.LoopInput("state")
	bb.Collect(bb.Map(state, func(r data.Record) (data.Record, error) {
		return data.NewRecord(data.Int(r.Field(0).Int() + 1)), nil
	}))
	body, err := bb.Build()
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	b.Collect(b.Repeat(src, 3, body))
	lp, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pp, err := physical.FromLogical(lp)
	if err != nil {
		t.Fatalf("physical: %v", err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		res, err := Run(ep, reg, Options{Pool: NewPool(1)})
		if err == nil && len(res.Records) != 1 {
			err = fmt.Errorf("got %d records, want 1", len(res.Records))
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("looping run deadlocked on a 1-slot pool")
	}
}

// TestPoolAcquireRespectsCancellation cancels a run whose atoms are
// parked waiting for a slot another holder never releases quickly; the
// run must return the context error promptly.
func TestPoolAcquireRespectsCancellation(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatalf("register: %v", err)
	}
	pool := NewPool(1)
	// Occupy the only slot out-of-band.
	if err := pool.Acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer pool.Release()

	var inFlight, peak int64
	pp := poolPlan(t, 2, 4, &inFlight, &peak, 0)
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ep, reg, Options{Context: ctx, Pool: pool})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run succeeded with its only pool slot held elsewhere")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return while waiting for a pool slot")
	}
}
