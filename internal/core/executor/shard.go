// Intra-atom data parallelism: one wide task atom fans out over P
// shards of its input batch, each shard executed as a full atom run on
// the assigned platform, and the exits merged driver-side with
// deterministic semantics. The PR-1 scheduler parallelizes *across*
// atoms; sharding parallelizes *inside* one, so a single big
// Map/Filter/ReduceByKey no longer serializes the run.
//
// Merge semantics per operator class (see DESIGN.md §5):
//
//   - record-wise ("streamy") operators — Map, FlatMap, Filter, Sink —
//     emit independent per-record output, so shard results concatenate
//     in shard index order. Shards are contiguous, so the concatenation
//     replays exactly the unsharded output order.
//   - combining operators — ReduceByKey, Reduce, Count, Distinct, Sort
//     — produce per-shard partials that a driver-side combine folds:
//     re-group + re-reduce for ReduceByKey (reduce functions must be
//     associative, the same contract distributed execution imposes),
//     re-reduce for Reduce, partial-count summing for Count, re-dedup
//     for Distinct, and a stable re-sort for Sort. A combining operator
//     must be an exit: anything consuming its output inside the atom
//     would see partial aggregates.
//
// Anything else — GroupBy (the group UDF must see whole groups),
// Sample (first-N depends on the split), multi-input operators (a
// sharded self-join would miss cross-shard pairs), sources — makes the
// atom unshardable, and it executes exactly as before.
package executor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rheem/internal/core/algo"
	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/core/trace"
	"rheem/internal/data"
)

// shardedExec is one atom's planned shard fan-out: the pre-split input
// shards and the per-exit merge classification.
type shardedExec struct {
	extOp, extSlot int                // the single external (op, slot) the shards feed
	shards         []*channel.Channel // per-shard input, platform-native format
	// combineOf maps each operator to the combining operator governing
	// its output's merge (a sink inherits its input's), or nil for
	// record-wise output (exit merge = concat in shard order).
	combineOf map[int]*physical.Operator
}

// planShards decides whether the atom can execute sharded and, if so,
// splits its single external input. nil means "run unsharded" — never
// an error: sharding is an optimization, not a requirement.
func planShards(platform engine.Platform, reg *engine.Registry, atom *engine.TaskAtom, inputs engine.AtomInputs, shards int) *shardedExec {
	if shards <= 1 || atom.Kind != engine.AtomCompute {
		return nil
	}
	extOp, extSlot, n := 0, 0, 0
	for opID, slots := range inputs {
		for slot := range slots {
			extOp, extSlot, n = opID, slot, n+1
		}
	}
	if n != 1 {
		return nil
	}
	combineOf, ok := shardClasses(atom)
	if !ok {
		return nil
	}
	in := inputs[extOp][extSlot]
	if in.Records < 2 {
		return nil
	}
	split := splitShardInput(platform, reg, in, shards)
	if len(split) < 2 {
		return nil
	}
	return &shardedExec{extOp: extOp, extSlot: extSlot, shards: split, combineOf: combineOf}
}

// shardClasses classifies the atom's operators for sharding: streamy
// (record-wise, concat-mergeable) or combining (folded by mergeExit).
// A combining operator's partial output may feed a pass-through Sink —
// which then inherits the combine for merging — but nothing else
// in-atom: any other consumer would see partial aggregates. The second
// result is false when some operator fits neither class or breaks that
// rule, or doesn't have exactly one input.
func shardClasses(atom *engine.TaskAtom) (map[int]*physical.Operator, bool) {
	combineOf := make(map[int]*physical.Operator, len(atom.Ops))
	for _, op := range atom.Ops {
		if len(op.Inputs) != 1 {
			return nil, false // sources, loop inputs, unions, joins
		}
		in := op.Inputs[0]
		inCombine := combineOf[in.ID]
		if atom.Contains(in.ID) && inCombine != nil && op.Kind() != plan.KindSink {
			return nil, false // partial aggregates consumed in-atom
		}
		switch op.Kind() {
		case plan.KindMap, plan.KindFlatMap, plan.KindFilter:
			// record-wise: concat merge.
		case plan.KindSink:
			combineOf[op.ID] = inCombine // pass-through
		case plan.KindReduceByKey, plan.KindReduce, plan.KindCount,
			plan.KindDistinct, plan.KindSort:
			combineOf[op.ID] = op
		default:
			return nil, false
		}
	}
	return combineOf, true
}

// splitShardInput splits an input channel (the consuming operator's
// wanted format — platform-native, or channel.Batch on the vectorized
// path) into at most n shards: natively when the platform is an
// engine.Sharder, otherwise through the hub Collection format with the
// shards converted back to the input's own format. The mechanical
// split cost is not charged to the run — native splits are slice
// views, and the hub fallback only triggers for platforms without
// native sharding. nil (or a single shard) means "don't shard".
func splitShardInput(platform engine.Platform, reg *engine.Registry, ch *channel.Channel, n int) []*channel.Channel {
	if s, ok := platform.(engine.Sharder); ok {
		if shards, err := s.SplitNative(ch, n); err == nil {
			return shards
		}
	}
	coll, _, _, err := reg.Channels().Convert(ch, channel.Collection)
	if err != nil {
		return nil
	}
	parts, err := channel.Partition(coll, n)
	if err != nil || len(parts) < 2 {
		return nil
	}
	out := make([]*channel.Channel, 0, len(parts))
	for _, p := range parts {
		conv, _, _, cerr := reg.Channels().Convert(p, ch.Format)
		if cerr != nil {
			return nil
		}
		out = append(out, conv)
	}
	return out
}

// executeShardedAttempt runs one attempt of a sharded atom: every
// shard through Platform.ExecuteAtom — concurrently up to the run's
// shard budget, inline in the atom's own goroutine when no slot is
// free (so shard scheduling can never deadlock the atom pool) — then
// the exits merged driver-side. Retries wrap the whole fan-out: a
// failed attempt re-executes every shard, keeping the retry ledger
// per-atom like the unsharded path.
//
// Aggregate metrics: Wall is the fan-out's elapsed host time; Sim is
// the slowest shard's simulated time (shards run in parallel) plus the
// merge's conversion cost; Jobs and the volume counters sum over
// shards — a P-shard execution really launches P platform jobs.
func executeShardedAttempt(platform engine.Platform, atom *engine.TaskAtom, sh *shardedExec, opts *Options, st *runState, reg *engine.Registry, planName string, iter int) (map[int]*channel.Channel, engine.Metrics, error) {
	start := time.Now()
	ctx := opts.Context
	if opts.AtomTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, opts.AtomTimeout)
		defer cancel()
	}

	type shardResult struct {
		exits map[int]*channel.Channel
		m     engine.Metrics
		err   error
	}
	results := make([]shardResult, len(sh.shards))
	runShard := func(i int) {
		ssp := st.tr.Begin(&trace.Span{
			Kind: trace.KindShard, AtomID: atom.ID, Name: atom.String(),
			Platform: atom.Platform, Plan: planName, Iteration: iter,
			Shard: i, Shards: len(sh.shards), Atom: atom,
		}, time.Time{})
		ins := engine.AtomInputs{sh.extOp: {sh.extSlot: sh.shards[i]}}
		exits, m, err := platform.ExecuteAtom(ctx, atom, ins)
		st.tr.End(ssp, m, err)
		results[i] = shardResult{exits: exits, m: m, err: err}
	}
	var wg sync.WaitGroup
	for i := range sh.shards {
		select {
		case st.shardSem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-st.shardSem }()
				runShard(i)
			}(i)
		default:
			runShard(i)
		}
	}
	wg.Wait()

	var m engine.Metrics
	var maxSim time.Duration
	var firstErr error
	for _, r := range results {
		sm := r.m
		if sm.Sim > maxSim {
			maxSim = sm.Sim
		}
		sm.Sim = 0
		sm.Wall = 0
		m.Add(sm)
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	// Prefer a real shard failure over siblings' context noise: when one
	// shard dies and cancellation ripples, the cause should surface.
	for _, r := range results {
		if r.err != nil && !errors.Is(r.err, context.Canceled) && !errors.Is(r.err, context.DeadlineExceeded) {
			firstErr = r.err
			break
		}
	}
	m.Sim = maxSim
	m.Wall = time.Since(start)
	if firstErr != nil {
		if ctx.Err() != nil && opts.Context.Err() == nil {
			firstErr = engine.Transient(fmt.Errorf("executor: %s exceeded atom timeout %v: %w", atom, opts.AtomTimeout, firstErr))
		}
		return nil, m, firstErr
	}

	exits := make(map[int]*channel.Channel, len(atom.Exits))
	for _, ex := range atom.Exits {
		parts := make([][]data.Record, len(results))
		for i, r := range results {
			ch := r.exits[ex.ID]
			if ch == nil {
				return nil, m, fmt.Errorf("executor: %s shard %d produced no exit for %s", atom, i, ex.Name())
			}
			conv, cost, steps, err := reg.Channels().Convert(ch, channel.Collection)
			if err != nil {
				return nil, m, fmt.Errorf("executor: merging %s: %w", atom, err)
			}
			m.Sim += cost
			m.Conversions += steps
			recs, err := conv.AsCollection()
			if err != nil {
				return nil, m, err
			}
			parts[i] = recs
		}
		merged, err := mergeExit(sh.combineOf[ex.ID], parts)
		if err != nil {
			// Driver-side combine runs the operator's own UDFs — a
			// failure is deterministic, so don't retry or fail over.
			return nil, m, engine.Fatal(fmt.Errorf("executor: merging %s of %s: %w", ex.Name(), atom, err))
		}
		exits[ex.ID] = channel.NewCollection(merged)
	}
	return exits, m, nil
}

// mergeExit folds one exit's per-shard results into the final output.
// Record-wise exits (combine == nil) concatenate in shard order;
// combining exits fold their partials with the governing combine
// operator's own semantics (and algorithm choice, so a sort-based
// grouping keeps its key-ordered output).
func mergeExit(combine *physical.Operator, parts [][]data.Record) ([]data.Record, error) {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	all := make([]data.Record, 0, n)
	for _, p := range parts {
		all = append(all, p...)
	}
	if combine == nil {
		return all, nil
	}
	op := combine
	lop := op.Logical
	switch op.Kind() {
	case plan.KindReduceByKey:
		var groups []algo.Group
		var err error
		if op.Algo == physical.SortGroupBy {
			groups, err = algo.SortGroup(all, lop.Key)
		} else {
			groups, err = algo.HashGroup(all, lop.Key)
		}
		if err != nil {
			return nil, err
		}
		return algo.ReduceGroups(groups, lop.Reduce)
	case plan.KindReduce:
		return algo.Reduce(all, lop.Reduce)
	case plan.KindCount:
		var total int64
		for _, r := range all {
			total += r.Field(0).Int()
		}
		return []data.Record{data.NewRecord(data.Int(total))}, nil
	case plan.KindDistinct:
		if op.Algo == physical.SortDistinct {
			sorted, err := algo.SortBy(all, plan.RecordKey(), false)
			if err != nil {
				return nil, err
			}
			return algo.Distinct(sorted), nil
		}
		return algo.Distinct(all), nil
	case plan.KindSort:
		// SortBy is stable and shards are contiguous, so re-sorting the
		// concatenation of per-shard sorted runs reproduces the unsharded
		// order exactly, equal keys included.
		return algo.SortBy(all, lop.Key, lop.Desc)
	}
	return nil, fmt.Errorf("executor: no shard merge for operator kind %s", op.Kind())
}
