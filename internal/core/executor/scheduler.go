// The concurrent task-atom scheduler. The optimizer's execution plan
// already exposes inter-atom parallelism — independent branches of a
// multi-platform plan, the scan legs of a join, siblings produced by
// the shared-scan rewrite — and the scheduler exploits it: each atom's
// predecessor set is derived from its external inputs, ready atoms are
// dispatched onto a bounded worker pool (Options.Parallelism), and
// exit channels published by one atom unblock its dependents.
//
// Concurrency contract (see also DESIGN.md §executor):
//
//   - the channel map, Result accumulation, and the audit ledger are
//     guarded by runState.mu; trace consumers (the Monitor callback
//     among them) are serialized by the run's Tracer;
//   - the first atom error wins: it cancels the run context so
//     in-flight siblings abort, their (context) errors are discarded,
//     and Run returns the original error without emitting
//     EventPlanDone;
//   - adaptive re-optimization quiesces: on a mismatch the dispatcher
//     stops launching atoms, drains the ones in flight, and only then
//     re-plans — so the re-optimizer sees a frozen, consistent
//     channel map. At most one re-plan happens per run;
//   - loop atoms keep sequential per-iteration semantics, but each
//     iteration's body plan is scheduled concurrently by the same
//     machinery (with its own channel map and worker budget).
package executor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/trace"
)

// runState is the mutable state one run shares across concurrently
// executing atoms and nested loop-body plans.
type runState struct {
	mu      sync.Mutex // guards res, every plan's channel map, audited
	cancel  context.CancelFunc
	res     *Result
	tr      *trace.Tracer // the run's span stream; serializes consumers
	audited map[int]bool
	// shardSem is the run-wide budget for concurrent shard executions
	// (nil when sharding is off). Acquisition never blocks: an atom that
	// finds no free slot runs the shard inline in its own goroutine, so
	// shard scheduling cannot deadlock the atom worker pool.
	shardSem chan struct{}
	// excluded accumulates platforms ruled out by failover re-plans.
	// Only the top-level dispatcher touches it, and only while
	// quiesced, so it needs no lock. It only grows, which bounds the
	// failover loop by the registry size.
	excluded map[engine.PlatformID]bool
}

// atomNode is one schedulable atom with its dependency bookkeeping.
// All fields are owned by the dispatcher goroutine.
type atomNode struct {
	atom       *engine.TaskAtom
	waits      int // unmet producer atoms
	dependents []*atomNode
	readyAt    time.Time // when the last dependency resolved (queue-wait base)
}

// externalInputIDs lists the physical operator IDs whose channels the
// atom needs before it can start: for compute atoms the inputs that
// cross the atom boundary, for loop atoms the loop operator's inputs.
func externalInputIDs(atom *engine.TaskAtom) []int {
	if atom.Kind == engine.AtomLoop {
		ids := make([]int, 0, len(atom.LoopOp.Inputs))
		for _, in := range atom.LoopOp.Inputs {
			ids = append(ids, in.ID)
		}
		return ids
	}
	var ids []int
	for _, op := range atom.Ops {
		for _, in := range op.Inputs {
			if !atom.Contains(in.ID) {
				ids = append(ids, in.ID)
			}
		}
	}
	return ids
}

// runPlan executes one execution plan's atoms against a shared channel
// map (loop bodies are nested runPlan calls with the LoopInput channel
// pre-seeded), re-planning at most once when the top-level schedule
// requests adaptive re-optimization.
func runPlan(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts *Options, st *runState, channels map[int]*channel.Channel, topLevel bool, iter int) error {
	for {
		replan, failover, err := scheduleAtoms(ep, reg, opts, st, channels, topLevel, iter)
		if err != nil {
			return err
		}
		if failover != nil {
			// Quiesced after a platform failure: quarantine the failed
			// platform (plus anything else the breaker holds open) and
			// re-plan the remaining operators onto the survivors.
			// Completed atoms keep their channels and stay frozen.
			if st.excluded == nil {
				st.excluded = map[engine.PlatformID]bool{}
			}
			st.excluded[failover.platform] = true
			for _, id := range reg.Health().QuarantinedPlatforms() {
				st.excluded[id] = true
			}
			newEP, rerr := reoptimize(ep, reg, opts, channels, st.excluded)
			if rerr != nil {
				// No capable platform remains for some operator: the
				// run fails, reporting both the failure and the dead end.
				return fmt.Errorf("executor: failover from platform %q found no capable platform: %v (original failure: %w)",
					failover.platform, rerr, failover.err)
			}
			st.mu.Lock()
			st.res.Failovers++
			st.res.FinalPlan = newEP
			st.mu.Unlock()
			excluded := make([]engine.PlatformID, 0, len(st.excluded))
			for id := range st.excluded {
				excluded = append(excluded, id)
			}
			sort.Slice(excluded, func(i, j int) bool { return excluded[i] < excluded[j] })
			st.tr.Failover(failover.atom, failover.err, excluded)
			st.tr.Start(newEP.Physical.Name, len(newEP.Atoms))
			ep = newEP
			continue
		}
		if !replan {
			return nil
		}
		// Quiesced: every worker has drained, so the channel map is
		// stable and single-threaded access is safe.
		newEP, err := reoptimize(ep, reg, opts, channels, st.excluded)
		if err != nil {
			return fmt.Errorf("executor: re-optimization: %w", err)
		}
		st.mu.Lock()
		st.res.Reoptimized = true
		st.res.FinalPlan = newEP
		st.mu.Unlock()
		st.tr.Replan()
		st.tr.Start(newEP.Physical.Name, len(newEP.Atoms))
		ep = newEP
		// Completed atoms of the old plan are skipped via atomDone.
	}
}

// scheduleAtoms runs one plan's pending atoms to completion on a
// bounded worker pool. It returns replan=true when a cardinality
// mismatch at the top level requests adaptive re-optimization (after
// all in-flight atoms have drained), a non-nil failover when a
// quarantined platform's atom demands cross-platform failover (also
// after draining — the survivors' outputs seed the re-plan), or the
// first atom error after cancelling its in-flight siblings.
func scheduleAtoms(ep *optimizer.ExecutionPlan, reg *engine.Registry, opts *Options, st *runState, channels map[int]*channel.Channel, topLevel bool, iter int) (bool, *failoverError, error) {
	// Graph setup is single-threaded: no workers are live yet, so the
	// channel map can be read unlocked. Contains calls here also
	// pre-build each atom's operator set before goroutines share it.
	producer := make(map[int]*atomNode)
	var nodes []*atomNode
	for _, atom := range ep.Atoms {
		if atomDone(atom, channels) {
			continue // outputs already available (re-optimized run)
		}
		n := &atomNode{atom: atom}
		nodes = append(nodes, n)
		if atom.Kind == engine.AtomLoop {
			producer[atom.LoopOp.ID] = n
		} else {
			for _, op := range atom.Ops {
				producer[op.ID] = n
			}
		}
	}
	var ready []*atomNode
	for _, n := range nodes {
		seen := make(map[*atomNode]bool)
		for _, id := range externalInputIDs(n.atom) {
			if channels[id] != nil {
				continue // pre-seeded or produced by a completed atom
			}
			// A needed channel with no pending producer is left for
			// the atom itself to report, preserving the sequential
			// executor's error message.
			p := producer[id]
			if p == nil || p == n || seen[p] {
				continue
			}
			seen[p] = true
			n.waits++
			p.dependents = append(p.dependents, n)
		}
		if n.waits == 0 {
			ready = append(ready, n)
		}
	}
	// Atoms with no unmet dependencies have been waiting since the
	// schedule started; their queue-wait clock starts now.
	startReady := st.tr.Now()
	for _, n := range ready {
		n.readyAt = startReady
	}

	type doneMsg struct {
		n        *atomNode
		err      error
		mismatch bool // the atom's audit recorded new mismatches
	}
	doneCh := make(chan doneMsg)
	inflight, finished := 0, 0
	stopping, replan := false, false
	var firstErr error
	var failover *failoverError

	for {
		// FIFO dispatch keeps Parallelism=1 runs in the plan's
		// topological atom order — the sequential executor's behavior.
		for !stopping && inflight < opts.Parallelism && len(ready) > 0 {
			n := ready[0]
			ready = ready[1:]
			inflight++
			go func(n *atomNode) {
				if err := opts.Context.Err(); err != nil {
					doneCh <- doneMsg{n: n, err: err}
					return
				}
				// Compute atoms take a slot from the shared cross-run pool
				// (when one is set) for the duration of their execution;
				// the wait is part of the atom's queue time. Loop atoms
				// never hold a slot — their body plans' compute atoms
				// acquire their own — so slot holders cannot wait on each
				// other (see pool.go).
				if opts.Pool != nil && n.atom.Kind != engine.AtomLoop {
					if err := opts.Pool.Acquire(opts.Context); err != nil {
						doneCh <- doneMsg{n: n, err: err}
						return
					}
					defer opts.Pool.Release()
				}
				st.mu.Lock()
				before := len(st.res.Mismatches)
				st.mu.Unlock()
				var err error
				if n.atom.Kind == engine.AtomLoop {
					err = runLoop(ep, n.atom, reg, opts, st, channels, n.readyAt, iter)
				} else {
					err = runComputeAtom(n.atom, ep, reg, opts, st, channels, n.readyAt, iter)
				}
				st.mu.Lock()
				mismatch := len(st.res.Mismatches) > before
				st.mu.Unlock()
				doneCh <- doneMsg{n: n, err: err, mismatch: mismatch}
			}(n)
		}
		if inflight == 0 {
			break
		}
		m := <-doneCh
		inflight--
		if m.err != nil {
			var fe *failoverError
			switch {
			case topLevel && opts.Failover && errors.As(m.err, &fe):
				// Quiesce WITHOUT cancelling: in-flight siblings finish
				// and their outputs survive into the failover re-plan.
				// Later failover errors during the drain are subsumed by
				// it (their operators get re-planned too).
				if firstErr == nil && failover == nil {
					failover = fe
				}
			case !topLevel && opts.Failover && errors.As(m.err, &fe):
				// A loop-body atom wants failover: drain this body plan
				// uncancelled and hand the error up — the top-level
				// scheduler re-plans, loop included.
				if firstErr == nil {
					firstErr = m.err
				}
			default:
				if firstErr == nil {
					firstErr = m.err
					st.cancel() // first error wins; abort in-flight siblings
					failover = nil
				}
			}
			stopping = true
			continue
		}
		finished++
		if stopping {
			continue // draining; dependents stay parked
		}
		for _, d := range m.n.dependents {
			d.waits--
			if d.waits == 0 {
				d.readyAt = st.tr.Now()
				ready = append(ready, d)
			}
		}
		if topLevel && opts.ReOptimize && m.mismatch && !replan {
			st.mu.Lock()
			already := st.res.Reoptimized
			st.mu.Unlock()
			if !already {
				// Quiesce for re-planning: stop dispatching and let
				// the atoms already in flight drain.
				stopping = true
				replan = true
			}
		}
	}

	if firstErr != nil {
		return false, nil, firstErr
	}
	if failover != nil {
		return false, failover, nil
	}
	if replan {
		return true, nil, nil
	}
	if finished < len(nodes) {
		return false, nil, fmt.Errorf("executor: scheduler stalled after %d of %d atoms in plan %q", finished, len(nodes), ep.Physical.Name)
	}
	return false, nil, nil
}
