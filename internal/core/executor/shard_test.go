package executor

import (
	"bytes"
	"strings"
	"testing"

	"rheem/internal/core/engine"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/core/trace"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/sparksim"
)

// shardFixture builds a plan whose source is pinned to spark and whose
// compute chain is pinned to java, so the chain becomes a compute atom
// with exactly one external input — the shape intra-atom sharding
// applies to. build receives the builder and the source operator and
// must Collect a sink.
func shardFixture(t *testing.T, recs []data.Record, build func(b *plan.Builder, s *plan.Operator)) (*physical.Plan, map[int]engine.PlatformID) {
	t.Helper()
	b := plan.NewBuilder("shard-fixture")
	s := b.Source("src", plan.Collection(recs))
	s.CardHint = int64(len(recs))
	build(b, s)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	fa := map[int]engine.PlatformID{}
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSource {
			fa[op.ID] = sparksim.ID
		} else {
			fa[op.ID] = javaengine.ID
		}
	}
	return pp, fa
}

// runWithShards executes the fixture with the given shard fan-out and
// returns the result (including the always-collected trace).
func runWithShards(t *testing.T, pp *physical.Plan, fa map[int]engine.PlatformID, shards int) *Result {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		t.Fatal(err)
	}
	ep, err := optimizer.Optimize(pp, reg, optimizer.Options{
		DisableRules: true, ForcedAssignments: fa, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ep, reg, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func countShardSpans(res *Result) (shardSpans int, fanOuts map[int]int) {
	fanOuts = map[int]int{}
	for _, sp := range res.Trace.Spans {
		if sp.Kind == trace.KindShard {
			shardSpans++
		} else if sp.Shards > 0 {
			fanOuts[sp.AtomID] = sp.Shards
		}
	}
	return shardSpans, fanOuts
}

// modKey groups by value mod k.
func modKey(k int64) plan.KeyFunc {
	return func(r data.Record) (data.Value, error) {
		return data.Int(r.Field(0).Int() % k), nil
	}
}

var sumReduce plan.ReduceFunc = func(a, b data.Record) (data.Record, error) {
	// Key-preserving: field 0 keeps a's value (same key class mod k).
	return data.NewRecord(a.Field(0), data.Int(a.Field(1).Int()+b.Field(1).Int())), nil
}

// TestShardedStreamyMatchesUnsharded proves the core claim for
// record-wise chains: a sharded map→filter pipeline returns exactly the
// unsharded byte sequence, order included, and actually fanned out.
func TestShardedStreamyMatchesUnsharded(t *testing.T) {
	build := func(b *plan.Builder, s *plan.Operator) {
		m := b.Map(s, func(r data.Record) (data.Record, error) {
			return data.NewRecord(r.Field(0), data.Int(r.Field(0).Int()*3)), nil
		})
		f := b.Filter(m, func(r data.Record) (bool, error) {
			return r.Field(0).Int()%7 != 0, nil
		})
		b.Collect(f)
	}
	pp1, fa1 := shardFixture(t, intRecords(101), build)
	base := runWithShards(t, pp1, fa1, 1)
	pp4, fa4 := shardFixture(t, intRecords(101), build)
	sharded := runWithShards(t, pp4, fa4, 4)

	// Sharded execution promises byte-identical output in the original
	// order, not just the same multiset.
	if !bytes.Equal(recordBytes(t, sharded.Records), recordBytes(t, base.Records)) {
		t.Errorf("sharded records differ from unsharded (%d vs %d records)",
			len(sharded.Records), len(base.Records))
	}
	shardSpans, fanOuts := countShardSpans(sharded)
	if shardSpans != 4 {
		t.Errorf("got %d shard spans, want 4", shardSpans)
	}
	if len(fanOuts) != 1 {
		t.Errorf("expected exactly one sharded atom, got %v", fanOuts)
	}
	if baseShards, _ := countShardSpans(base); baseShards != 0 {
		t.Errorf("unsharded run emitted %d shard spans", baseShards)
	}
}

// TestShardedCombinesMatchUnsharded covers every combining exit kind:
// the driver-side merge must reproduce the unsharded output. Kinds
// whose unsharded engine is itself order-free (hash grouping iterates
// a Go map) are compared as multisets; the deterministic kinds
// (reduce, count, distinct, sort) must match positionally.
func TestShardedCombinesMatchUnsharded(t *testing.T) {
	orderFree := map[string]bool{"reduce-by-key": true}
	cases := map[string]func(b *plan.Builder, s *plan.Operator){
		"reduce-by-key": func(b *plan.Builder, s *plan.Operator) {
			m := b.Map(s, func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int()%5), data.Int(1)), nil
			})
			b.Collect(b.ReduceByKey(m, modKey(5), sumReduce))
		},
		"reduce": func(b *plan.Builder, s *plan.Operator) {
			m := b.Map(s, func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(0), r.Field(0)), nil
			})
			b.Collect(b.Reduce(m, sumReduce))
		},
		"count": func(b *plan.Builder, s *plan.Operator) {
			b.Collect(b.Count(b.Filter(s, func(r data.Record) (bool, error) {
				return r.Field(0).Int()%2 == 0, nil
			})))
		},
		"distinct": func(b *plan.Builder, s *plan.Operator) {
			m := b.Map(s, func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() % 9)), nil
			})
			b.Collect(b.Distinct(m))
		},
		"sort": func(b *plan.Builder, s *plan.Operator) {
			m := b.Map(s, func(r data.Record) (data.Record, error) {
				// Many duplicate keys exercise stable-order preservation.
				return data.NewRecord(data.Int(r.Field(0).Int()%4), r.Field(0)), nil
			})
			b.Collect(b.Sort(m, modKey(4), false))
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			pp1, fa1 := shardFixture(t, intRecords(97), build)
			base := runWithShards(t, pp1, fa1, 1)
			pp4, fa4 := shardFixture(t, intRecords(97), build)
			sharded := runWithShards(t, pp4, fa4, 4)
			var got, want []byte
			if orderFree[name] {
				got = []byte(strings.Join(sortedRecordBytes(t, sharded.Records), ""))
				want = []byte(strings.Join(sortedRecordBytes(t, base.Records), ""))
			} else {
				got, want = recordBytes(t, sharded.Records), recordBytes(t, base.Records)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("sharded %s differs from unsharded (%d vs %d records)",
					name, len(sharded.Records), len(base.Records))
			}
			if shardSpans, _ := countShardSpans(sharded); shardSpans == 0 {
				t.Errorf("%s did not shard", name)
			}
		})
	}
}

// TestUnshardableShapesRunWhole: atoms outside the shardable class —
// a group-by (whole groups), a combine consumed inside the atom, a
// sample — must execute unsharded and still produce correct results
// under WithShards.
func TestUnshardableShapesRunWhole(t *testing.T) {
	cases := map[string]func(b *plan.Builder, s *plan.Operator){
		"group-by": func(b *plan.Builder, s *plan.Operator) {
			g := b.GroupBy(s, modKey(5), func(key data.Value, group []data.Record) ([]data.Record, error) {
				return []data.Record{data.NewRecord(key, data.Int(int64(len(group))))}, nil
			})
			b.Collect(g)
		},
		"combine-consumed-in-atom": func(b *plan.Builder, s *plan.Operator) {
			c := b.Count(s)
			m := b.Map(c, func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() * 2)), nil
			})
			b.Collect(m)
		},
		"sample": func(b *plan.Builder, s *plan.Operator) {
			b.Collect(b.Sample(s, 10))
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			pp1, fa1 := shardFixture(t, intRecords(60), build)
			base := runWithShards(t, pp1, fa1, 1)
			pp4, fa4 := shardFixture(t, intRecords(60), build)
			sharded := runWithShards(t, pp4, fa4, 4)
			// Multiset comparison: the hash group-by's own output order
			// is unspecified even without sharding.
			got := sortedRecordBytes(t, sharded.Records)
			want := sortedRecordBytes(t, base.Records)
			if strings.Join(got, "\x00") != strings.Join(want, "\x00") {
				t.Errorf("%s output changed under WithShards", name)
			}
			if shardSpans, _ := countShardSpans(sharded); shardSpans != 0 {
				t.Errorf("%s sharded despite being unshardable", name)
			}
		})
	}
}

// TestShardSpanTree pins the observability contract: the sharded atom's
// span carries the fan-out width, each shard span carries its index and
// the width, and shard indices cover 0..P-1 exactly once.
func TestShardSpanTree(t *testing.T) {
	pp, fa := shardFixture(t, intRecords(80), func(b *plan.Builder, s *plan.Operator) {
		b.Collect(b.Map(s, plan.Identity()))
	})
	res := runWithShards(t, pp, fa, 4)

	seen := map[int]bool{}
	var atomWithShards *trace.Span
	for _, sp := range res.Trace.Spans {
		switch sp.Kind {
		case trace.KindShard:
			if sp.Shards != 4 {
				t.Errorf("shard span reports width %d, want 4", sp.Shards)
			}
			if sp.Shard < 0 || sp.Shard >= 4 || seen[sp.Shard] {
				t.Errorf("bad or duplicate shard index %d", sp.Shard)
			}
			seen[sp.Shard] = true
			if sp.Failed() {
				t.Errorf("shard %d span reports failure", sp.Shard)
			}
		case trace.KindAtom:
			if sp.Shards > 0 {
				if atomWithShards != nil {
					t.Error("more than one sharded atom span")
				}
				atomWithShards = sp
			}
			if sp.Shard != -1 {
				t.Errorf("atom span has shard index %d, want -1", sp.Shard)
			}
		}
	}
	if len(seen) != 4 {
		t.Fatalf("saw shard indices %v, want 0..3", seen)
	}
	if atomWithShards == nil {
		t.Fatal("no atom span carries the shard fan-out")
	}
	if atomWithShards.Platform != javaengine.ID {
		t.Errorf("sharded atom ran on %s, want %s", atomWithShards.Platform, javaengine.ID)
	}
}

// TestShardDiscountFlipsPlatform: with a large input the simulated
// cluster normally beats the single-node engine on a map-heavy plan;
// telling the optimizer about the shard fan-out discounts the
// single-node compute cost and must flip the assignment back — the
// paper's small-vs-big crossover (Figure 2), moved by intra-atom
// parallelism.
func TestShardDiscountFlipsPlatform(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		t.Fatal(err)
	}
	// 200k records sits between the two crossovers: spark's slot count
	// beats one java core (crossover ~130k), but not eight java shards
	// at 70% efficiency (crossover ~270k, where spark's 50ms job
	// overhead has amortized).
	build := func() *physical.Plan {
		b := plan.NewBuilder("flip")
		s := b.Source("src", plan.Collection(nil))
		s.CardHint = 200_000
		b.Collect(b.Map(s, plan.Identity()))
		pp, err := physical.FromLogical(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		return pp
	}
	assignFor := func(shards int) engine.PlatformID {
		pp := build()
		ep, err := optimizer.Optimize(pp, reg, optimizer.Options{DisableRules: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range pp.Ops {
			if op.Kind() == plan.KindMap {
				return ep.Assignment[op.ID]
			}
		}
		t.Fatal("no map operator")
		return ""
	}
	if pl := assignFor(1); pl != sparksim.ID {
		t.Skipf("baseline assignment is %s, not spark; cost calibration changed", pl)
	}
	if pl := assignFor(8); pl != javaengine.ID {
		t.Errorf("8-way sharding left the map on %s, want %s", pl, javaengine.ID)
	}
}

// TestShardedMetricsAggregate: a sharded atom's metrics must count one
// platform job per shard while the run's simulated time reflects the
// parallel fan-out (max over shards, not the sum).
func TestShardedMetricsAggregate(t *testing.T) {
	pp, fa := shardFixture(t, intRecords(100), func(b *plan.Builder, s *plan.Operator) {
		b.Collect(b.Map(s, plan.Identity()))
	})
	res := runWithShards(t, pp, fa, 4)
	// Source atom contributes 1 job; the sharded compute atom 4.
	if res.Metrics.Jobs != 5 {
		t.Errorf("run counted %d jobs, want 5 (source + 4 shards)", res.Metrics.Jobs)
	}
	pp1, fa1 := shardFixture(t, intRecords(100), func(b *plan.Builder, s *plan.Operator) {
		b.Collect(b.Map(s, plan.Identity()))
	})
	base := runWithShards(t, pp1, fa1, 1)
	if res.Metrics.Sim >= base.Metrics.Sim*2 {
		t.Errorf("sharded Sim %v looks summed, unsharded is %v", res.Metrics.Sim, base.Metrics.Sim)
	}
}
