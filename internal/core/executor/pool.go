// The shared scheduler pool. A one-shot Run bounds its own atom
// concurrency with Options.Parallelism, but a long-running job service
// executes many plans at once — without a cross-run bound, N jobs ×
// Parallelism workers each would oversubscribe the host exactly when
// load is highest. A Pool is that bound: one fixed set of execution
// slots shared by every run that carries it in Options.Pool.
//
// Slot discipline: only compute atoms (the leaf work that actually
// occupies a platform) hold a slot, and only for the duration of their
// execution. Loop atoms never hold one — their body plans' compute
// atoms acquire slots themselves — so slot holders never wait on other
// slot holders and the pool cannot deadlock, no matter how small it is
// relative to plan depth or how many runs share it.

package executor

import "context"

// Pool is a bounded set of atom-execution slots shared across
// concurrent runs. The zero value is unusable; construct with NewPool.
// All methods are safe for concurrent use.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool with n slots (n < 1 selects 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning the
// context error in the latter case. Time spent waiting is charged to
// the atom's queue wait, not its execution latency.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot acquired with Acquire.
func (p *Pool) Release() { <-p.sem }

// Size returns the pool's slot count.
func (p *Pool) Size() int { return cap(p.sem) }

// InUse returns how many slots are currently held — the live
// cross-run execution concurrency, exported as a service gauge.
func (p *Pool) InUse() int { return len(p.sem) }
