package executor

import (
	"context"
	"fmt"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
)

// maxRetryBackoff caps the exponential retry delay.
const maxRetryBackoff = 2 * time.Second

// failoverError marks an atom failure that should trigger a
// cross-platform failover instead of failing the run: its platform
// exhausted the retry budget while quarantined by the health tracker.
// The top-level scheduler catches it (errors.As) and re-plans; with
// Failover disabled it is never constructed.
type failoverError struct {
	platform engine.PlatformID
	atom     *engine.TaskAtom
	err      error
}

func (e *failoverError) Error() string { return e.err.Error() }
func (e *failoverError) Unwrap() error { return e.err }

// executeAttempt runs one execution attempt, bounding it with
// Options.AtomTimeout when set. The deadline is per attempt — a retry
// gets a fresh budget.
func executeAttempt(platform engine.Platform, atom *engine.TaskAtom, inputs engine.AtomInputs, opts *Options) (map[int]*channel.Channel, engine.Metrics, error) {
	ctx := opts.Context
	if opts.AtomTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, opts.AtomTimeout)
		defer cancel()
	}
	exits, m, err := platform.ExecuteAtom(ctx, atom, inputs)
	if err != nil && ctx.Err() != nil && opts.Context.Err() == nil {
		// The attempt deadline (not the run) expired: surface it as a
		// retryable attempt failure rather than a bare context error.
		err = engine.Transient(fmt.Errorf("executor: %s exceeded atom timeout %v: %w", atom, opts.AtomTimeout, err))
	}
	return exits, m, err
}

// backoffSleep waits before re-executing a failed atom: exponential
// (base doubling per attempt, capped) with deterministic jitter in
// [d/2, d] derived from the atom ID and attempt number, so retry
// storms de-synchronize without making runs irreproducible. Returns
// the context error if the run is cancelled while waiting.
func backoffSleep(opts *Options, atomID, attempt int) error {
	d := backoffDelay(opts.RetryBackoff, atomID, attempt)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-opts.Context.Done():
		return opts.Context.Err()
	case <-t.C:
		return nil
	}
}

// backoffDelay computes the wait before re-executing: base << attempt,
// capped, jittered deterministically into [d/2, d].
func backoffDelay(base time.Duration, atomID, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d > maxRetryBackoff || d <= 0 { // overflow-safe
		d = maxRetryBackoff
	}
	h := splitmix64(uint64(atomID)<<32 ^ uint64(attempt))
	return d/2 + time.Duration(h%uint64(d/2+1))
}

// splitmix64 is the SplitMix64 mixer: a tiny, dependency-free hash
// giving the backoff a deterministic jitter source.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
