package plan

import (
	"fmt"
	"strings"
)

// Plan is a validated DAG of logical operators with exactly one sink.
// Loop bodies are nested Plans whose single LoopInput operator stands
// for the data flowing into each iteration.
type Plan struct {
	name string
	ops  []*Operator // in insertion order (a topological order by construction)
	sink *Operator
	body bool // true for loop bodies, which use LoopInput instead of Source
}

// Name returns the plan's display name.
func (p *Plan) Name() string { return p.name }

// Operators returns all operators in a topological order. Callers must
// not mutate the returned slice.
func (p *Plan) Operators() []*Operator { return p.ops }

// Sink returns the plan's sink operator.
func (p *Plan) Sink() *Operator { return p.sink }

// IsBody reports whether this plan is a loop body.
func (p *Plan) IsBody() bool { return p.body }

// LoopInput returns the body plan's LoopInput operator, or nil for a
// top-level plan.
func (p *Plan) LoopInput() *Operator {
	for _, op := range p.ops {
		if op.kind == KindLoopInput {
			return op
		}
	}
	return nil
}

// Validate re-checks the plan's structural invariants: one sink,
// payloads matching kinds, arity, acyclicity (implied by builder
// construction but re-verified), every non-sink operator consumed, and
// loop bodies having exactly one LoopInput.
func (p *Plan) Validate() error {
	if p.sink == nil {
		return fmt.Errorf("plan %q: no sink", p.name)
	}
	seen := make(map[int]bool, len(p.ops))
	consumed := make(map[int]bool, len(p.ops))
	loopInputs := 0
	for _, op := range p.ops {
		if err := op.validatePayload(); err != nil {
			return fmt.Errorf("plan %q: %w", p.name, err)
		}
		if got, want := len(op.in), op.kind.Arity(); got != want {
			return fmt.Errorf("plan %q: %s has %d inputs, kind wants %d", p.name, op.Name(), got, want)
		}
		for _, in := range op.in {
			if !seen[in.id] {
				return fmt.Errorf("plan %q: %s consumes %s before definition (cycle or foreign operator)",
					p.name, op.Name(), in.Name())
			}
			consumed[in.id] = true
		}
		if seen[op.id] {
			return fmt.Errorf("plan %q: duplicate operator id %d", p.name, op.id)
		}
		seen[op.id] = true
		switch op.kind {
		case KindLoopInput:
			loopInputs++
			if !p.body {
				return fmt.Errorf("plan %q: LoopInput outside a loop body", p.name)
			}
		case KindRepeat, KindDoWhile:
			if err := op.Body.Validate(); err != nil {
				return fmt.Errorf("plan %q: loop body of %s: %w", p.name, op.Name(), err)
			}
			if !op.Body.body || op.Body.LoopInput() == nil {
				return fmt.Errorf("plan %q: body of %s lacks a LoopInput", p.name, op.Name())
			}
		}
	}
	if p.body && loopInputs != 1 {
		return fmt.Errorf("plan %q: loop body has %d LoopInputs, want 1", p.name, loopInputs)
	}
	for _, op := range p.ops {
		if op != p.sink && !consumed[op.id] && op.kind != KindSink {
			return fmt.Errorf("plan %q: %s is dangling (never consumed)", p.name, op.Name())
		}
	}
	if p.sink.kind != KindSink {
		return fmt.Errorf("plan %q: sink operator has kind %s", p.name, p.sink.kind)
	}
	return nil
}

// Consumers returns, for each operator id, the operators that consume
// its output. The map is rebuilt on each call; optimizer passes cache it.
func (p *Plan) Consumers() map[int][]*Operator {
	out := make(map[int][]*Operator, len(p.ops))
	for _, op := range p.ops {
		for _, in := range op.in {
			out[in.id] = append(out[in.id], op)
		}
	}
	return out
}

// String renders the plan as an indented operator list, one line per
// operator with its inputs, for debugging and golden tests.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %q:\n", p.name)
	for _, op := range p.ops {
		sb.WriteString("  ")
		sb.WriteString(op.Name())
		if len(op.in) > 0 {
			sb.WriteString(" <- ")
			for i, in := range op.in {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(in.Name())
			}
		}
		sb.WriteByte('\n')
		if op.Body != nil {
			for _, line := range strings.Split(strings.TrimRight(op.Body.String(), "\n"), "\n") {
				sb.WriteString("    ")
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

// Builder constructs plans. Each method adds one operator and returns
// its handle; Build validates and freezes the plan. A builder must not
// be reused after Build.
type Builder struct {
	plan  *Plan
	next  int
	built bool
	err   error
}

// NewBuilder starts a top-level plan.
func NewBuilder(name string) *Builder {
	return &Builder{plan: &Plan{name: name}}
}

// NewBodyBuilder starts a loop-body plan. The body reads its
// per-iteration input through the LoopInput operator.
func NewBodyBuilder(name string) *Builder {
	return &Builder{plan: &Plan{name: name, body: true}}
}

func (b *Builder) add(op *Operator) *Operator {
	if b.built {
		b.fail(fmt.Errorf("plan: builder for %q used after Build", b.plan.name))
		return op
	}
	op.id = b.next
	b.next++
	b.plan.ops = append(b.plan.ops, op)
	return op
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Source adds a source operator reading from fn.
func (b *Builder) Source(name string, fn SourceFunc) *Operator {
	return b.add(&Operator{kind: KindSource, name: name, Source: fn})
}

// LoopInput adds the loop-body input placeholder.
func (b *Builder) LoopInput(name string) *Operator {
	return b.add(&Operator{kind: KindLoopInput, name: name})
}

// Map adds a map operator.
func (b *Builder) Map(in *Operator, fn MapFunc) *Operator {
	return b.add(&Operator{kind: KindMap, in: []*Operator{in}, Map: fn})
}

// FlatMap adds a flat-map operator.
func (b *Builder) FlatMap(in *Operator, fn FlatMapFunc) *Operator {
	return b.add(&Operator{kind: KindFlatMap, in: []*Operator{in}, FlatMap: fn})
}

// Filter adds a filter operator.
func (b *Builder) Filter(in *Operator, fn FilterFunc) *Operator {
	return b.add(&Operator{kind: KindFilter, in: []*Operator{in}, Filter: fn})
}

// GroupBy adds a group-by operator applying fn to each key group.
func (b *Builder) GroupBy(in *Operator, key KeyFunc, fn GroupFunc) *Operator {
	return b.add(&Operator{kind: KindGroupBy, in: []*Operator{in}, Key: key, Group: fn})
}

// ReduceByKey adds a per-key pairwise fold. The reducer must preserve
// the key: key(fn(a, b)) must equal key(a) — distributed platforms
// re-derive the key from partially reduced records when shuffling
// map-side combined results.
func (b *Builder) ReduceByKey(in *Operator, key KeyFunc, fn ReduceFunc) *Operator {
	return b.add(&Operator{kind: KindReduceByKey, in: []*Operator{in}, Key: key, Reduce: fn})
}

// Reduce adds a global pairwise fold to a single record.
func (b *Builder) Reduce(in *Operator, fn ReduceFunc) *Operator {
	return b.add(&Operator{kind: KindReduce, in: []*Operator{in}, Reduce: fn})
}

// Sort adds an ordering operator.
func (b *Builder) Sort(in *Operator, key KeyFunc, desc bool) *Operator {
	return b.add(&Operator{kind: KindSort, in: []*Operator{in}, Key: key, Desc: desc})
}

// Distinct adds a duplicate-elimination operator.
func (b *Builder) Distinct(in *Operator) *Operator {
	return b.add(&Operator{kind: KindDistinct, in: []*Operator{in}})
}

// Union adds a bag-union of two inputs.
func (b *Builder) Union(l, r *Operator) *Operator {
	return b.add(&Operator{kind: KindUnion, in: []*Operator{l, r}})
}

// Join adds an equi-join; output records are Concat(left, right).
func (b *Builder) Join(l, r *Operator, lkey, rkey KeyFunc) *Operator {
	return b.add(&Operator{kind: KindJoin, in: []*Operator{l, r}, Key: lkey, RightKey: rkey})
}

// ThetaJoin adds a predicate join. Declarative inequality conditions
// may be attached with Conditions on the returned operator before
// Build; when present, the optimizer may choose the IEJoin physical
// operator, with pred (if non-nil) applied as a residual filter.
func (b *Builder) ThetaJoin(l, r *Operator, pred PredFunc, conds ...IECondition) *Operator {
	return b.add(&Operator{kind: KindThetaJoin, in: []*Operator{l, r}, Pred: pred, Conditions: conds})
}

// Cartesian adds a cross product.
func (b *Builder) Cartesian(l, r *Operator) *Operator {
	return b.add(&Operator{kind: KindCartesian, in: []*Operator{l, r}})
}

// Count adds a counting operator emitting a single (int) record.
func (b *Builder) Count(in *Operator) *Operator {
	return b.add(&Operator{kind: KindCount, in: []*Operator{in}})
}

// Sample adds a take-first-N operator.
func (b *Builder) Sample(in *Operator, n int) *Operator {
	return b.add(&Operator{kind: KindSample, in: []*Operator{in}, N: n})
}

// Repeat adds a fixed-iteration loop over body.
func (b *Builder) Repeat(in *Operator, times int, body *Plan) *Operator {
	return b.add(&Operator{kind: KindRepeat, in: []*Operator{in}, Times: times, Body: body})
}

// DoWhile adds a conditional loop over body; cond is evaluated on each
// iteration's output and the loop continues while it returns true.
func (b *Builder) DoWhile(in *Operator, cond CondFunc, maxIter int, body *Plan) *Operator {
	return b.add(&Operator{kind: KindDoWhile, in: []*Operator{in}, Cond: cond, MaxIter: maxIter, Body: body})
}

// Collect marks the plan's sink.
func (b *Builder) Collect(in *Operator) *Operator {
	op := b.add(&Operator{kind: KindSink, in: []*Operator{in}})
	if b.plan.sink != nil {
		b.fail(fmt.Errorf("plan %q: multiple sinks", b.plan.name))
	}
	b.plan.sink = op
	return op
}

// Build validates and returns the plan. The builder is dead afterwards.
func (b *Builder) Build() (*Plan, error) {
	if b.built {
		return nil, fmt.Errorf("plan: Build called twice for %q", b.plan.name)
	}
	b.built = true
	if b.err != nil {
		return nil, b.err
	}
	if err := b.plan.Validate(); err != nil {
		return nil, err
	}
	return b.plan, nil
}

// MustBuild is Build for statically correct plans; it panics on error.
func (b *Builder) MustBuild() *Plan {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
