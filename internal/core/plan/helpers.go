package plan

import (
	"rheem/internal/data"
)

// This file provides the small library of canned UDFs that applications
// compose constantly: collection sources, field-projection keys, and
// arithmetic reducers. They are ordinary UDF values — nothing here is
// special-cased by the optimizer.

// Collection returns a SourceFunc serving a fixed record slice. The
// slice is not copied; callers must not mutate it after plan execution
// begins.
func Collection(recs []data.Record) SourceFunc {
	return func() ([]data.Record, error) { return recs, nil }
}

// FieldKey returns a KeyFunc projecting field i.
func FieldKey(i int) KeyFunc {
	return func(r data.Record) (data.Value, error) { return r.Field(i), nil }
}

// ConstKey returns a KeyFunc mapping every record to the same key,
// which turns per-key operators into global ones.
func ConstKey() KeyFunc {
	return func(data.Record) (data.Value, error) { return data.Int(0), nil }
}

// RecordKey returns a KeyFunc hashing the whole record into an Int key;
// it is how Distinct and record-level grouping are expressed over the
// Value-keyed operator pool.
func RecordKey() KeyFunc {
	return func(r data.Record) (data.Value, error) {
		return data.Int(int64(data.HashRecord(r, 0))), nil
	}
}

// SumField returns a ReduceFunc adding field i of two records,
// keeping the remaining fields of the first.
func SumField(i int) ReduceFunc {
	return func(a, b data.Record) (data.Record, error) {
		switch a.Field(i).Kind() {
		case data.KindInt:
			return a.WithField(i, data.Int(a.Field(i).Int()+b.Field(i).Int())), nil
		default:
			return a.WithField(i, data.Float(a.Field(i).Float()+b.Field(i).Float())), nil
		}
	}
}

// MaxByField returns a ReduceFunc keeping whichever record has the
// larger field i.
func MaxByField(i int) ReduceFunc {
	return func(a, b data.Record) (data.Record, error) {
		if data.Compare(a.Field(i), b.Field(i)) >= 0 {
			return a, nil
		}
		return b, nil
	}
}

// Identity returns a MapFunc passing records through unchanged, useful
// as a placeholder in enhancer positions.
func Identity() MapFunc {
	return func(r data.Record) (data.Record, error) { return r, nil }
}

// NewSynthetic creates a free-standing logical operator of the given
// kind for optimizer rules and enhancer physical operators. The caller
// sets the kind's payload fields afterwards. Synthetic operators do not
// belong to any logical plan (their inputs live at the physical level),
// so their ID is -1.
func NewSynthetic(kind OpKind, name string) *Operator {
	return &Operator{id: -1, kind: kind, name: name}
}
