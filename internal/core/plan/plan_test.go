package plan

import (
	"strings"
	"testing"

	"rheem/internal/data"
)

func sampleSource() SourceFunc {
	return Collection([]data.Record{data.NewRecord(data.Int(1))})
}

func TestBuildLinearPlan(t *testing.T) {
	b := NewBuilder("linear")
	s := b.Source("src", sampleSource())
	m := b.Map(s, Identity())
	f := b.Filter(m, func(data.Record) (bool, error) { return true, nil })
	b.Collect(f)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Operators()) != 4 {
		t.Errorf("got %d operators", len(p.Operators()))
	}
	if p.Sink().Kind() != KindSink {
		t.Error("sink kind wrong")
	}
	if p.Name() != "linear" {
		t.Error("name wrong")
	}
}

func TestBuildJoinPlan(t *testing.T) {
	b := NewBuilder("join")
	l := b.Source("l", sampleSource())
	r := b.Source("r", sampleSource())
	j := b.Join(l, r, FieldKey(0), FieldKey(0))
	b.Collect(j)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Consumers()[l.ID()]); got != 1 {
		t.Errorf("left source has %d consumers", got)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("no sink", func(t *testing.T) {
		b := NewBuilder("p")
		b.Source("s", sampleSource())
		if _, err := b.Build(); err == nil {
			t.Error("plan without sink accepted")
		}
	})
	t.Run("missing UDF", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", nil)
		b.Collect(s)
		if _, err := b.Build(); err == nil {
			t.Error("source without SourceFunc accepted")
		}
	})
	t.Run("dangling operator", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		b.Map(s, Identity()) // never consumed
		b.Collect(s)
		if _, err := b.Build(); err == nil {
			t.Error("dangling operator accepted")
		}
	})
	t.Run("multiple sinks", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		b.Collect(s)
		b.Collect(s)
		if _, err := b.Build(); err == nil {
			t.Error("two sinks accepted")
		}
	})
	t.Run("double build", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		b.Collect(s)
		if _, err := b.Build(); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Build(); err == nil {
			t.Error("second Build accepted")
		}
	})
	t.Run("loop input outside body", func(t *testing.T) {
		b := NewBuilder("p")
		li := b.LoopInput("in")
		b.Collect(li)
		if _, err := b.Build(); err == nil {
			t.Error("LoopInput in top-level plan accepted")
		}
	})
	t.Run("foreign operator", func(t *testing.T) {
		other := NewBuilder("other")
		foreign := other.Source("s", sampleSource())
		b := NewBuilder("p")
		m := b.Map(foreign, Identity())
		b.Collect(m)
		if _, err := b.Build(); err == nil {
			t.Error("operator from another builder accepted")
		}
	})
}

func TestLoopBodyValidation(t *testing.T) {
	makeBody := func() *Plan {
		bb := NewBodyBuilder("body")
		in := bb.LoopInput("state")
		m := bb.Map(in, Identity())
		bb.Collect(m)
		return bb.MustBuild()
	}
	t.Run("valid repeat", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		rep := b.Repeat(s, 3, makeBody())
		b.Collect(rep)
		if _, err := b.Build(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("repeat without body", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		rep := b.Repeat(s, 3, nil)
		b.Collect(rep)
		if _, err := b.Build(); err == nil {
			t.Error("Repeat without body accepted")
		}
	})
	t.Run("non-body plan as body", func(t *testing.T) {
		nb := NewBuilder("notbody")
		s0 := nb.Source("s", sampleSource())
		nb.Collect(s0)
		notBody := nb.MustBuild()

		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		rep := b.Repeat(s, 3, notBody)
		b.Collect(rep)
		if _, err := b.Build(); err == nil {
			t.Error("top-level plan as loop body accepted")
		}
	})
	t.Run("dowhile", func(t *testing.T) {
		b := NewBuilder("p")
		s := b.Source("s", sampleSource())
		dw := b.DoWhile(s, func(int, []data.Record) (bool, error) { return false, nil }, 10, makeBody())
		b.Collect(dw)
		if _, err := b.Build(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOpKindArityAndString(t *testing.T) {
	if KindSource.Arity() != 0 || KindMap.Arity() != 1 || KindJoin.Arity() != 2 {
		t.Error("arity wrong")
	}
	if KindGroupBy.String() != "GroupBy" {
		t.Errorf("String = %q", KindGroupBy)
	}
	if !strings.HasPrefix(OpKind(99).String(), "OpKind(") {
		t.Error("unknown kind string")
	}
}

func TestCompareOpEval(t *testing.T) {
	one, two := data.Int(1), data.Int(2)
	cases := []struct {
		op   CompareOp
		a, b data.Value
		want bool
	}{
		{Less, one, two, true},
		{Less, two, one, false},
		{LessEq, one, one, true},
		{Greater, two, one, true},
		{GreaterEq, one, two, false},
		{GreaterEq, two, two, true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%s %s %s = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if Less.String() != "<" || GreaterEq.String() != ">=" {
		t.Error("CompareOp strings wrong")
	}
}

func TestPlanString(t *testing.T) {
	b := NewBuilder("pretty")
	s := b.Source("src", sampleSource())
	m := b.Map(s, Identity())
	b.Collect(m)
	p := b.MustBuild()
	out := p.String()
	if !strings.Contains(out, "src") || !strings.Contains(out, "Map#1") {
		t.Errorf("String output missing operators:\n%s", out)
	}
}

func TestOperatorNames(t *testing.T) {
	b := NewBuilder("p")
	s := b.Source("mysource", sampleSource())
	m := b.Map(s, Identity())
	if s.Name() != "mysource" {
		t.Error("explicit name lost")
	}
	if m.Name() != "Map#1" {
		t.Errorf("derived name = %q", m.Name())
	}
}

func TestHelperUDFs(t *testing.T) {
	r := data.NewRecord(data.Int(5), data.Str("x"))

	k, err := FieldKey(1)(r)
	if err != nil || k.Str() != "x" {
		t.Error("FieldKey broken")
	}
	c, _ := ConstKey()(r)
	c2, _ := ConstKey()(data.NewRecord(data.Int(99)))
	if !data.Equal(c, c2) {
		t.Error("ConstKey not constant")
	}
	rk1, _ := RecordKey()(r)
	rk2, _ := RecordKey()(data.NewRecord(data.Int(5), data.Str("x")))
	if !data.Equal(rk1, rk2) {
		t.Error("RecordKey not deterministic")
	}

	sum, err := SumField(0)(data.NewRecord(data.Int(2)), data.NewRecord(data.Int(3)))
	if err != nil || sum.Field(0).Int() != 5 {
		t.Error("SumField int broken")
	}
	fsum, _ := SumField(0)(data.NewRecord(data.Float(1.5)), data.NewRecord(data.Float(1)))
	if fsum.Field(0).Float() != 2.5 {
		t.Error("SumField float broken")
	}
	mx, _ := MaxByField(0)(data.NewRecord(data.Int(2)), data.NewRecord(data.Int(9)))
	if mx.Field(0).Int() != 9 {
		t.Error("MaxByField broken")
	}

	src := Collection([]data.Record{r})
	got, err := src()
	if err != nil || len(got) != 1 {
		t.Error("Collection broken")
	}
}
