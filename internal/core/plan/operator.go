// Package plan implements RHEEM's application layer: logical operators
// and logical plans.
//
// A logical operator is "an abstract UDF that acts as an
// application-specific unit of data processing" (paper §3.1) — a
// template whose processing logic the user supplies as a function over
// data quanta. Logical operators say nothing about algorithms (that is
// the physical layer's job) or about platforms (the execution layer's
// job); they only fix the dataflow shape: what flows in, what flows
// out, and which user function bridges the two.
//
// A Plan is a DAG of logical operators with exactly one sink. Plans are
// constructed through Builder, which enforces the structural invariants
// at construction time, and re-validated by Plan.Validate before
// optimization.
package plan

import (
	"fmt"

	"rheem/internal/data"
)

// OpKind enumerates the dataflow shapes of the logical operator pool.
type OpKind int

// The logical operator kinds. The set follows the paper's examples
// (Map, GroupBy, Loop, ...) completed with the standard second-order
// functions a UDF-centric dataflow system needs.
const (
	KindSource OpKind = iota // produce records from a SourceFunc
	KindMap                  // one record in, one record out
	KindFlatMap              // one record in, zero or more out
	KindFilter               // keep records satisfying a predicate
	KindGroupBy              // group by key, apply a per-group UDF
	KindReduceByKey          // group by key, fold each group pairwise
	KindReduce               // fold the whole input to a single record
	KindSort                 // order by a key function
	KindDistinct             // remove duplicate records
	KindUnion                // concatenate two inputs
	KindJoin                 // equi-join on two key functions
	KindThetaJoin            // join on an arbitrary predicate
	KindCartesian            // cross product of two inputs
	KindCount                // count records, emit one (count) record
	KindSample               // keep the first N records
	KindRepeat               // run a body subplan a fixed number of times
	KindDoWhile              // run a body subplan until a condition holds
	KindLoopInput            // placeholder source inside a loop body
	KindSink                 // terminal collection point of a plan
)

var kindNames = map[OpKind]string{
	KindSource: "Source", KindMap: "Map", KindFlatMap: "FlatMap",
	KindFilter: "Filter", KindGroupBy: "GroupBy", KindReduceByKey: "ReduceByKey",
	KindReduce: "Reduce", KindSort: "Sort", KindDistinct: "Distinct",
	KindUnion: "Union", KindJoin: "Join", KindThetaJoin: "ThetaJoin",
	KindCartesian: "Cartesian", KindCount: "Count", KindSample: "Sample",
	KindRepeat: "Repeat", KindDoWhile: "DoWhile", KindLoopInput: "LoopInput",
	KindSink: "Sink",
}

// String returns the operator kind's name.
func (k OpKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Arity returns the number of inputs an operator of this kind takes.
func (k OpKind) Arity() int {
	switch k {
	case KindSource, KindLoopInput:
		return 0
	case KindUnion, KindJoin, KindThetaJoin, KindCartesian:
		return 2
	default:
		return 1
	}
}

// The UDF signatures logical operators are parameterised with. Each
// corresponds to the applyOp of a LogicalOperator template (§3.2):
// users provide these functions, RHEEM invokes them per data quantum.
type (
	// SourceFunc produces the input records of a plan.
	SourceFunc func() ([]data.Record, error)
	// MapFunc transforms one data quantum into another.
	MapFunc func(data.Record) (data.Record, error)
	// FlatMapFunc expands one data quantum into zero or more.
	FlatMapFunc func(data.Record) ([]data.Record, error)
	// FilterFunc decides whether a data quantum is kept.
	FilterFunc func(data.Record) (bool, error)
	// KeyFunc derives a grouping/joining/sorting key from a quantum.
	KeyFunc func(data.Record) (data.Value, error)
	// GroupFunc processes one key group and emits result quanta.
	GroupFunc func(key data.Value, group []data.Record) ([]data.Record, error)
	// ReduceFunc folds two quanta into one; it must be associative.
	ReduceFunc func(a, b data.Record) (data.Record, error)
	// PredFunc decides whether a pair of quanta joins.
	PredFunc func(l, r data.Record) (bool, error)
	// CondFunc decides whether a DoWhile loop continues, given the
	// iteration number (0-based, already completed) and the current
	// loop state.
	CondFunc func(iteration int, state []data.Record) (bool, error)
)

// CompareOp is a comparison operator of an inequality join condition.
type CompareOp int

// Comparison operators. The first four are the inequality operators in
// the notation of the IEJoin paper (Khayyat et al., PVLDB 2015) — the
// only ones valid in an IECondition; Eq and NotEq complete the set for
// column predicates.
const (
	Less CompareOp = iota
	LessEq
	Greater
	GreaterEq
	Eq
	NotEq
)

// String renders the comparison operator.
func (c CompareOp) String() string {
	switch c {
	case Less:
		return "<"
	case LessEq:
		return "<="
	case Greater:
		return ">"
	case GreaterEq:
		return ">="
	case Eq:
		return "=="
	case NotEq:
		return "!="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(c))
	}
}

// Eval applies the comparison to two values under data.Compare.
func (c CompareOp) Eval(a, b data.Value) bool {
	cmp := data.Compare(a, b)
	switch c {
	case Less:
		return cmp < 0
	case LessEq:
		return cmp <= 0
	case Greater:
		return cmp > 0
	case GreaterEq:
		return cmp >= 0
	case Eq:
		return cmp == 0
	case NotEq:
		return cmp != 0
	default:
		return false
	}
}

// IECondition is one inequality condition "left.Field ⊙ right.Field" of
// a theta join. Declaring conditions (instead of burying them in an
// opaque predicate) is what lets the optimizer map a ThetaJoin to the
// IEJoin physical operator — the paper's worked extensibility example.
type IECondition struct {
	LeftField  int
	Op         CompareOp
	RightField int
}

// Operator is a node of a logical plan. The kind discriminates which
// payload fields are meaningful; Validate enforces the correspondence.
// Operators are created through Builder and are immutable afterwards.
type Operator struct {
	id   int
	kind OpKind
	name string
	in   []*Operator

	// UDF payloads; only the fields matching the kind are set.
	Source     SourceFunc
	Map        MapFunc
	FlatMap    FlatMapFunc
	Filter     FilterFunc
	Key        KeyFunc  // GroupBy, ReduceByKey, Sort, Join (left)
	RightKey   KeyFunc  // Join (right)
	Group      GroupFunc
	Reduce     ReduceFunc
	Pred       PredFunc      // ThetaJoin (residual predicate, may be nil if Conditions given)
	Conditions []IECondition // ThetaJoin declarative inequality conditions
	Cond       CondFunc      // DoWhile
	Times      int           // Repeat
	MaxIter    int           // DoWhile safety bound (0 = default)
	N          int           // Sample
	Desc       bool          // Sort: descending order
	Body       *Plan         // Repeat, DoWhile

	// Optimizer hints.
	Schema      *data.Schema // Source/LoopInput: advisory schema
	CardHint    int64        // Source/LoopInput: expected record count
	// ScanKey marks sources that provably produce identical records:
	// sources sharing a non-empty ScanKey may be merged by the
	// shared-scan optimization. Closure identity cannot be established
	// portably in Go, so sharing is opt-in.
	ScanKey string
	Selectivity float64      // Filter/ThetaJoin: expected pass fraction (0 = default)
	DistinctKeys int64       // GroupBy/ReduceByKey/Distinct: expected key count
	GroupFanout  float64     // GroupBy: expected output records per input record (0 = default 1)

	// Vectorization hints: declarative column forms of the operator's
	// UDF, letting batch-capable platforms run a columnar kernel
	// instead of calling the closure per record. The builder helpers
	// (FilterWhere, ProjectCols, AggregateCols) derive the UDF and the
	// hint from one specification so the two can never disagree; the
	// UDF remains the semantic ground truth on row-path platforms.
	ColPred    *ColumnPredicate // Filter: Field ⟨Op⟩ Operand
	ColProject []int            // Map that is a pure field projection
	ColAgg     *ColumnAggregate // Reduce: per-field pairwise fold
}

// ID returns the operator's plan-local identifier.
func (o *Operator) ID() int { return o.id }

// Kind returns the operator's dataflow kind.
func (o *Operator) Kind() OpKind { return o.kind }

// Name returns the operator's display name ("Map#3" if not set).
func (o *Operator) Name() string {
	if o.name != "" {
		return o.name
	}
	return fmt.Sprintf("%s#%d", o.kind, o.id)
}

// Inputs returns the upstream operators. Callers must not mutate the
// returned slice.
func (o *Operator) Inputs() []*Operator { return o.in }

// validatePayload checks that exactly the payload required by the kind
// is present.
func (o *Operator) validatePayload() error {
	missing := func(what string) error {
		return fmt.Errorf("plan: %s requires %s", o.Name(), what)
	}
	switch o.kind {
	case KindSource:
		if o.Source == nil {
			return missing("a SourceFunc")
		}
	case KindMap:
		if o.Map == nil {
			return missing("a MapFunc")
		}
	case KindFlatMap:
		if o.FlatMap == nil {
			return missing("a FlatMapFunc")
		}
	case KindFilter:
		if o.Filter == nil {
			return missing("a FilterFunc")
		}
	case KindGroupBy:
		if o.Key == nil || o.Group == nil {
			return missing("a KeyFunc and a GroupFunc")
		}
	case KindReduceByKey:
		if o.Key == nil || o.Reduce == nil {
			return missing("a KeyFunc and a ReduceFunc")
		}
	case KindReduce:
		if o.Reduce == nil {
			return missing("a ReduceFunc")
		}
	case KindSort:
		if o.Key == nil {
			return missing("a KeyFunc")
		}
	case KindJoin:
		if o.Key == nil || o.RightKey == nil {
			return missing("left and right KeyFuncs")
		}
	case KindThetaJoin:
		if o.Pred == nil && len(o.Conditions) == 0 {
			return missing("a PredFunc or inequality Conditions")
		}
	case KindRepeat:
		if o.Body == nil || o.Times <= 0 {
			return missing("a Body plan and positive Times")
		}
	case KindDoWhile:
		if o.Body == nil || o.Cond == nil {
			return missing("a Body plan and a CondFunc")
		}
	case KindSample:
		if o.N <= 0 {
			return missing("positive N")
		}
	case KindDistinct, KindUnion, KindCartesian, KindCount, KindSink, KindLoopInput:
		// No payload.
	default:
		return fmt.Errorf("plan: %s has unknown kind", o.Name())
	}
	return nil
}
