// Declarative column forms of the hot-path UDFs. A closure over
// data.Record cannot be vectorized, so operators that want a columnar
// kernel carry a declarative specification alongside the UDF. The
// builder helpers below derive BOTH from one spec — the hint and the
// closure are two renderings of the same predicate/projection/fold,
// so the batch path and the row path cannot disagree.

package plan

import (
	"fmt"
	"strings"

	"rheem/internal/data"
)

// CompareValues orders two values like data.Compare, except that two
// values of the same kind compare exactly instead of through the
// float64 widening data.Compare applies to numerics — so int64 keys
// beyond 2⁵³ still order correctly. It is the comparison both the
// generated row UDFs and the columnar kernels use, which is what keeps
// their outputs byte-identical.
func CompareValues(a, b data.Value) int {
	if a.Kind() != b.Kind() {
		return data.Compare(a, b)
	}
	switch a.Kind() {
	case data.KindInt:
		ai, bi := a.Int(), b.Int()
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	case data.KindFloat:
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0 // equal, or NaN involved: keep-left, like data.Compare
	case data.KindString:
		return strings.Compare(a.Str(), b.Str())
	default:
		return data.Compare(a, b)
	}
}

// ColumnPredicate is the declarative filter "Field ⟨Op⟩ Operand".
type ColumnPredicate struct {
	Field   int
	Op      CompareOp
	Operand data.Value
}

// Match reports whether v satisfies the predicate. A null v never
// matches (the SQL convention), regardless of the operator.
func (p *ColumnPredicate) Match(v data.Value) bool {
	if v.IsNull() {
		return false
	}
	cmp := CompareValues(v, p.Operand)
	switch p.Op {
	case Less:
		return cmp < 0
	case LessEq:
		return cmp <= 0
	case Greater:
		return cmp > 0
	case GreaterEq:
		return cmp >= 0
	case Eq:
		return cmp == 0
	case NotEq:
		return cmp != 0
	default:
		return false
	}
}

// FilterFunc renders the predicate as the row-path UDF.
func (p *ColumnPredicate) FilterFunc() FilterFunc {
	return func(r data.Record) (bool, error) { return p.Match(r.Field(p.Field)), nil }
}

// AggFn enumerates the per-field fold functions of a ColumnAggregate.
type AggFn uint8

// Per-field folds. AggFirst keeps the left (accumulated) value — the
// shape key-carrying fields use.
const (
	AggFirst AggFn = iota
	AggSum
	AggMin
	AggMax
)

// String returns the fold's name.
func (f AggFn) String() string {
	switch f {
	case AggFirst:
		return "first"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggFn(%d)", uint8(f))
	}
}

// ColumnAggregate is the declarative global reduce: field i of the
// result is the Fns[i]-fold of field i across all input records, in
// input order (so even float sums are reproducible).
type ColumnAggregate struct {
	Fns []AggFn
}

// SumValues adds two values of the same numeric kind; mixing kinds,
// nulls, or non-numerics is an error rather than a silent widening.
func SumValues(a, b data.Value) (data.Value, error) {
	switch {
	case a.Kind() == data.KindInt && b.Kind() == data.KindInt:
		return data.Int(a.Int() + b.Int()), nil
	case a.Kind() == data.KindFloat && b.Kind() == data.KindFloat:
		return data.Float(a.Float() + b.Float()), nil
	default:
		return data.Null(), fmt.Errorf("plan: cannot sum %s and %s values", a.Kind(), b.Kind())
	}
}

// Fold combines one field pair under the fold function.
func (f AggFn) Fold(a, b data.Value) (data.Value, error) {
	switch f {
	case AggFirst:
		return a, nil
	case AggSum:
		return SumValues(a, b)
	case AggMin:
		if CompareValues(b, a) < 0 {
			return b, nil
		}
		return a, nil
	case AggMax:
		if CompareValues(b, a) > 0 {
			return b, nil
		}
		return a, nil
	default:
		return data.Null(), fmt.Errorf("plan: unknown aggregate fold %s", f)
	}
}

// ReduceFunc renders the aggregate as the row-path pairwise fold.
func (c *ColumnAggregate) ReduceFunc() ReduceFunc {
	return func(a, b data.Record) (data.Record, error) {
		if a.Len() != len(c.Fns) || b.Len() != len(c.Fns) {
			return data.Record{}, fmt.Errorf("plan: column aggregate over %d fields folding %d/%d-field records",
				len(c.Fns), a.Len(), b.Len())
		}
		out := make([]data.Value, len(c.Fns))
		for i, fn := range c.Fns {
			v, err := fn.Fold(a.Field(i), b.Field(i))
			if err != nil {
				return data.Record{}, err
			}
			out[i] = v
		}
		return data.NewRecord(out...), nil
	}
}

// FilterWhere adds a Filter carrying the declarative column predicate
// "field ⟨op⟩ operand" alongside its generated UDF.
func (b *Builder) FilterWhere(in *Operator, field int, op CompareOp, operand data.Value) *Operator {
	p := &ColumnPredicate{Field: field, Op: op, Operand: operand}
	o := b.Filter(in, p.FilterFunc())
	o.ColPred = p
	return o
}

// ProjectCols adds a Map that projects the selected fields in order,
// carrying the column list as a vectorization hint.
func (b *Builder) ProjectCols(in *Operator, idx ...int) *Operator {
	cols := append([]int(nil), idx...)
	o := b.Map(in, func(r data.Record) (data.Record, error) {
		return r.Project(cols...), nil
	})
	o.ColProject = cols
	return o
}

// AggregateCols adds a global Reduce folding field i of the input with
// fns[i], carrying the fold list as a vectorization hint.
func (b *Builder) AggregateCols(in *Operator, fns ...AggFn) *Operator {
	agg := &ColumnAggregate{Fns: append([]AggFn(nil), fns...)}
	o := b.Reduce(in, agg.ReduceFunc())
	o.ColAgg = agg
	return o
}
