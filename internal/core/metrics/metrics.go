// Package metrics is the live half of the observability subsystem: a
// dependency-free metrics registry the rest of the system can populate
// on the hot path and an HTTP surface (Prometheus text exposition,
// live run progress, pprof) to watch a plan execute *while it runs*.
//
// PR 3's trace subsystem records what happened — spans, platform
// counters, the estimate-vs-actual audit — but only exposes it after
// Execute returns. The paper's progressive-optimization story (§4) and
// RHEEMix's cost learner both assume runtime statistics are available
// continuously; this package closes that gap without adding any new
// instrumentation points: a Collector subscribes to the executor's
// span stream (package trace) and folds every event into atomic
// instruments, so the executor, engine registry and channel converters
// stay untouched.
//
// Design constraints, in order:
//
//   - Hot-path writes must be cheap: counters and histogram buckets are
//     sharded across cache-line-padded atomic cells, so concurrent
//     scheduler goroutines don't serialize on one contended word.
//   - No dependencies: the exposition writer and its parser are local,
//     emitting (and validating) the Prometheus text format.
//   - Scrapes never block execution: readers sum the shards without
//     stopping writers, accepting the usual slightly-torn totals of a
//     live scrape.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards stripes every hot counter across this many padded cells.
// Must be a power of two.
const numShards = 16

// cell is one cache-line-padded atomic counter shard. The padding
// keeps neighbouring shards off each other's cache line, which is the
// whole point of sharding.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// shardIdx picks a shard for the calling goroutine. Goroutine stacks
// live in distinct spans, so the address of a stack variable is a
// cheap, stable-enough discriminator — two goroutines hammering the
// same counter land on different cells with high probability.
func shardIdx() int {
	var probe byte
	return int(uintptr(unsafe.Pointer(&probe)) >> 10 & (numShards - 1))
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	shards [numShards]cell
}

// Add increments the counter. Negative deltas are ignored — counters
// only go up.
func (c *Counter) Add(delta int64) {
	if delta <= 0 {
		return
	}
	c.shards[shardIdx()].n.Add(delta)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. Concurrent writers keep writing; the sum is a
// live snapshot, monotone across calls from a single reader.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a float-valued instrument that can go up and down (breaker
// states, occupancy, ratios).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observation counts per
// upper-bound bucket plus a running sum and count. Buckets are chosen
// at registration and never change, so Observe is a binary search plus
// one sharded increment — no allocation, no lock.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []Counter // len(bounds)+1, last is the overflow bucket
	count  Counter
	sumMu  sync.Mutex // sum is a float; mutex beats a CAS loop at our rates
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]Counter, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Inc()
	h.count.Inc()
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// snapshot returns cumulative bucket counts (Prometheus-style: each
// bucket includes all smaller ones), the sum and the total count.
func (h *Histogram) snapshot() (buckets []BucketSnapshot, sum float64, count int64) {
	buckets = make([]BucketSnapshot, 0, len(h.bounds)+1)
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Value()
		buckets = append(buckets, BucketSnapshot{UpperBound: ub, CumulativeCount: cum})
	}
	cum += h.counts[len(h.bounds)].Value()
	buckets = append(buckets, BucketSnapshot{UpperBound: math.Inf(1), CumulativeCount: cum})
	h.sumMu.Lock()
	sum = h.sum
	h.sumMu.Unlock()
	return buckets, sum, h.count.Value()
}

// LatencyBuckets are the default bounds (seconds) for atom latency
// histograms: task atoms range from sub-millisecond relational lookups
// to multi-second simulated Spark stages.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default bounds (bytes) for data-volume
// histograms, quadrupling from 256 B to 1 GiB.
var SizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// Instrument kinds, matching Prometheus TYPE names.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// labelKey joins label values into a map key. 0x1f (unit separator)
// cannot appear in reasonable label values.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// family is one named metric family: a set of children keyed by label
// values, or a callback producing samples at scrape time.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []string // child label keys in first-use order
	bounds   []float64

	// fn, when set, makes this a callback family: samples are produced
	// fresh at every scrape (breaker states, derived ratios). Replaced
	// wholesale on re-registration, so a newer Context re-binding the
	// same hub takes over cleanly.
	fn func() []Sample
}

// Sample is one sample produced by a callback family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Label is one name/value label pair.
type Label struct {
	Name, Value string
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Get-or-create registration is idempotent:
// registering an existing family (same name) returns the existing one,
// so collectors re-bound across Contexts share instruments instead of
// colliding.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) getOrCreate(name, help, typ string, labelNames []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, labelNames: labelNames, bounds: bounds,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// CounterVec registers (or returns) a counter family with the given
// label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.getOrCreate(name, help, typeCounter, labelNames, nil)}
}

// GaugeVec registers (or returns) a gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.getOrCreate(name, help, typeGauge, labelNames, nil)}
}

// HistogramVec registers (or returns) a histogram family with the
// given bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.getOrCreate(name, help, typeHistogram, labelNames, bounds)}
}

// SetFunc registers a callback family evaluated at scrape time,
// replacing any previous callback under the same name. typ must be
// "counter" or "gauge".
func (r *Registry) SetFunc(name, help, typ string, labelNames []string, fn func() []Sample) {
	f := r.getOrCreate(name, help, typ, labelNames, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the label values (created on
// first use). len(values) must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(values)
	v.f.mu.RLock()
	c := v.f.counters[key]
	v.f.mu.RUnlock()
	if c != nil {
		return c
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c = v.f.counters[key]; c == nil {
		c = &Counter{}
		v.f.counters[key] = c
		v.f.order = append(v.f.order, key)
	}
	return c
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := labelKey(values)
	v.f.mu.RLock()
	g := v.f.gauges[key]
	v.f.mu.RUnlock()
	if g != nil {
		return g
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if g = v.f.gauges[key]; g == nil {
		g = &Gauge{}
		v.f.gauges[key] = g
		v.f.order = append(v.f.order, key)
	}
	return g
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(values)
	v.f.mu.RLock()
	h := v.f.hists[key]
	v.f.mu.RUnlock()
	if h != nil {
		return h
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h = v.f.hists[key]; h == nil {
		h = newHistogram(v.f.bounds)
		v.f.hists[key] = h
		v.f.order = append(v.f.order, key)
	}
	return h
}

// labelsFor reconstructs name/value pairs from a child key.
func (f *family) labelsFor(key string) []Label {
	if key == "" && len(f.labelNames) == 0 {
		return nil
	}
	values := strings.Split(key, "\x1f")
	labels := make([]Label, 0, len(f.labelNames))
	for i, n := range f.labelNames {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		labels = append(labels, Label{Name: n, Value: v})
	}
	return labels
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	UpperBound      float64 `json:"le"`
	CumulativeCount int64   `json:"count"`
}

// SampleSnapshot is one sample of a family snapshot: a plain value for
// counters and gauges, buckets+sum+count for histograms.
type SampleSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Histogram-only fields.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   int64            `json:"count,omitempty"`
}

// FamilySnapshot is one metric family's deep-copied state.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Type    string           `json:"type"`
	Samples []SampleSnapshot `json:"samples"`
}

// Snapshot is a deep-copied, immutable export of a registry: the same
// numbers the /metrics endpoint serves, as plain data a test can
// assert on. Mutating a snapshot can never alias live registry state.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Counter returns the value of a counter/gauge sample whose labels
// match exactly, and whether it exists.
func (s *Snapshot) Counter(name string, labels map[string]string) (float64, bool) {
	sm := s.find(name, labels)
	if sm == nil {
		return 0, false
	}
	return sm.Value, true
}

// HistogramCount returns the observation count of a histogram sample
// whose labels match exactly, and whether it exists.
func (s *Snapshot) HistogramCount(name string, labels map[string]string) (int64, bool) {
	sm := s.find(name, labels)
	if sm == nil {
		return 0, false
	}
	return sm.Count, true
}

func (s *Snapshot) find(name string, labels map[string]string) *SampleSnapshot {
	for i := range s.Families {
		f := &s.Families[i]
		if f.Name != name {
			continue
		}
		for j := range f.Samples {
			sm := &f.Samples[j]
			if len(sm.Labels) != len(labels) {
				continue
			}
			match := true
			for k, v := range labels {
				if sm.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return sm
			}
		}
	}
	return nil
}

// Snapshot deep-copies every family. Callback families are evaluated.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	snap := &Snapshot{}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for _, sm := range f.collect() {
			labels := map[string]string{}
			for _, l := range sm.labels {
				labels[l.Name] = l.Value
			}
			if len(labels) == 0 {
				labels = nil
			}
			fs.Samples = append(fs.Samples, SampleSnapshot{
				Labels:  labels,
				Value:   sm.value,
				Buckets: sm.buckets,
				Sum:     sm.sum,
				Count:   sm.count,
			})
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// collected is one sample with everything the writer needs.
type collected struct {
	labels  []Label
	value   float64
	buckets []BucketSnapshot
	sum     float64
	count   int64
}

// collect reads the family's current samples in deterministic order.
func (f *family) collect() []collected {
	f.mu.RLock()
	fn := f.fn
	keys := make([]string, len(f.order))
	copy(keys, f.order)
	f.mu.RUnlock()

	if fn != nil {
		samples := fn()
		out := make([]collected, 0, len(samples))
		for _, s := range samples {
			out = append(out, collected{labels: s.Labels, value: s.Value})
		}
		return out
	}
	var out []collected
	for _, key := range keys {
		f.mu.RLock()
		c, g, h := f.counters[key], f.gauges[key], f.hists[key]
		f.mu.RUnlock()
		labels := f.labelsFor(key)
		switch {
		case c != nil:
			out = append(out, collected{labels: labels, value: float64(c.Value())})
		case g != nil:
			out = append(out, collected{labels: labels, value: g.Value()})
		case h != nil:
			buckets, sum, count := h.snapshot()
			out = append(out, collected{labels: labels, buckets: buckets, sum: sum, count: count})
		}
	}
	return out
}

// checkName reports whether s is a legal Prometheus metric or label
// name.
func checkName(s string) error {
	if s == "" {
		return fmt.Errorf("metrics: empty name")
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid name %q", s)
		}
	}
	return nil
}
