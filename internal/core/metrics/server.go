// The embedded monitoring server: /metrics in Prometheus text
// exposition format, /runs as live JSON progress, and net/http/pprof
// under /debug/pprof — so a long plan execution can be scraped,
// watched and profiled while it runs.

package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"rheem/internal/core/profile"
)

// Server serves a Hub's telemetry over HTTP.
type Server struct {
	hub *Hub

	mu  sync.Mutex
	srv *http.Server
	ln  net.Listener
}

// NewServer returns an unstarted server for the hub.
func NewServer(hub *Hub) *Server { return &Server{hub: hub} }

// Handler returns the monitoring mux: /metrics, /runs, /debug/pprof/*
// and a small index at /.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "rheem monitoring endpoints:")
		fmt.Fprintln(w, "  /metrics               Prometheus text exposition")
		fmt.Fprintln(w, "  /runs                  live per-run progress (JSON)")
		fmt.Fprintln(w, "  /runs/{id}/profile     flight-recorder profile of a completed run (JSON)")
		fmt.Fprintln(w, "  /runs/{id}/trace.json  Chrome-trace-event export (load in ui.perfetto.dev)")
		fmt.Fprintln(w, "  /calibration           learned cost-correction factors (JSON)")
		fmt.Fprintln(w, "  /debug/pprof           Go runtime profiles")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.hub.Registry().WriteProm(w); err != nil {
			// Headers are gone; all we can do is log via the status if
			// nothing was written yet. WriteProm only fails on w.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := s.hub.Runs().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /runs/{id}/profile", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := s.recordFor(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b, err := json.MarshalIndent(rec.Profile, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(b, '\n'))
	})
	mux.HandleFunc("GET /runs/{id}/trace.json", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := s.recordFor(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := rec.WritePerfetto(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /calibration", func(w http.ResponseWriter, r *http.Request) {
		cal := s.hub.Calibrator()
		if cal == nil {
			http.Error(w, "calibration not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b, err := json.MarshalIndent(cal.Snapshot(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(b, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// recordFor resolves the {id} path value against the hub's flight
// recorder, writing the 404/400 itself when it cannot.
func (s *Server) recordFor(w http.ResponseWriter, r *http.Request) (*profile.Record, bool) {
	fr := s.hub.FlightRecorder()
	if fr == nil {
		http.Error(w, "flight recorder not enabled", http.StatusNotFound)
		return nil, false
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return nil, false
	}
	rec, ok := fr.Get(id)
	if !ok {
		http.Error(w, "no profile recorded for run "+r.PathValue("id"), http.StatusNotFound)
		return nil, false
	}
	return rec, true
}

// Start binds addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return "", fmt.Errorf("metrics: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else
		// has nowhere useful to go — the endpoints just stop serving.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Safe to call multiple times and before
// Start.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv, s.ln = nil, nil
	return err
}
