package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerEndpoints(t *testing.T) {
	h := NewHub()
	run := driveRun(t, h)
	run.End(nil)

	srv := NewServer(h)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", srv.Addr(), addr)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metricsBody, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	families, err := ParseProm(strings.NewReader(metricsBody))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, metricsBody)
	}
	names := map[string]bool{}
	for _, f := range families {
		names[f.Name] = true
	}
	for _, want := range []string{
		"rheem_atoms_total", "rheem_atom_latency_seconds",
		"rheem_runs_total", "rheem_card_misestimate_ratio",
	} {
		if !names[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}

	runsBody, ct := get("/runs")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/runs content type = %q", ct)
	}
	var payload struct {
		Runs []RunStatus `json:"runs"`
	}
	if err := json.Unmarshal([]byte(runsBody), &payload); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, runsBody)
	}
	if len(payload.Runs) != 1 || payload.Runs[0].Name != "unit-plan" {
		t.Fatalf("/runs payload = %+v", payload)
	}

	if idx, _ := get("/"); !strings.Contains(idx, "/metrics") {
		t.Errorf("index page missing endpoint list:\n%s", idx)
	}
	if prof, _ := get("/debug/pprof/cmdline"); prof == "" {
		t.Error("pprof cmdline empty")
	}

	resp, err := http.Get("http://" + addr + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}

	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start did not fail")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
