package metrics

import (
	"errors"
	"strings"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/trace"
)

// driveRun pushes a small synthetic span stream through a hub-wired
// tracer: two top-level atoms (one retried then successful, one
// failed), a loop-body atom, a failover, a replan and an audit batch.
func driveRun(t *testing.T, h *Hub) *Run {
	t.Helper()
	tr, run := h.NewRunTracer("unit-plan")
	base := time.Unix(1700000000, 0)
	clock := base
	tr.SetClock(func() time.Time { clock = clock.Add(10 * time.Millisecond); return clock })

	tr.Start("unit-plan", 2)

	ok := &trace.Span{Kind: trace.KindAtom, Platform: "java", Iteration: -1}
	tr.Begin(ok, time.Time{})
	tr.Retry(ok, 1, engine.Metrics{}, errors.New("transient"))
	ok.ConvBytes = 4096
	tr.End(ok, engine.Metrics{InRecords: 100, OutRecords: 40}, nil)

	body := &trace.Span{Kind: trace.KindAtom, Platform: "sparksim", Iteration: 3}
	tr.Begin(body, time.Time{})
	tr.End(body, engine.Metrics{OutRecords: 7}, nil)

	bad := &trace.Span{Kind: trace.KindAtom, Platform: "sparksim", Iteration: -1}
	tr.Begin(bad, time.Time{})
	tr.End(bad, engine.Metrics{}, errors.New("boom"))

	tr.Failover(nil, errors.New("boom"), nil)
	tr.Replan()
	tr.Start("unit-plan/replanned", 3)
	tr.Audit(
		trace.CardAudit{OpID: 1, Estimated: 10, Actual: 1000, Flagged: true},
		trace.CardAudit{OpID: 2, Estimated: 10, Actual: 11},
	)
	return run
}

func TestCollectorFoldsSpanStream(t *testing.T) {
	h := NewHub()
	run := driveRun(t, h)

	snap := h.Registry().Snapshot()
	check := func(name string, labels map[string]string, want float64) {
		t.Helper()
		got, ok := snap.Counter(name, labels)
		if !ok || got != want {
			t.Errorf("%s%v = %v (present=%v), want %v", name, labels, got, ok, want)
		}
	}
	check("rheem_atoms_total", map[string]string{"platform": "java", "status": "ok"}, 1)
	check("rheem_atoms_total", map[string]string{"platform": "sparksim", "status": "ok"}, 1)
	check("rheem_atoms_total", map[string]string{"platform": "sparksim", "status": "error"}, 1)
	check("rheem_retries_total", map[string]string{"platform": "java"}, 1)
	check("rheem_records_in_total", map[string]string{"platform": "java"}, 100)
	check("rheem_records_out_total", map[string]string{"platform": "java"}, 40)
	check("rheem_records_out_total", map[string]string{"platform": "sparksim"}, 7)
	check("rheem_failovers_total", nil, 1)
	check("rheem_replans_total", nil, 1)
	check("rheem_runs_total", nil, 1)
	check("rheem_card_audits_total", map[string]string{"flagged": "true"}, 1)
	check("rheem_card_audits_total", map[string]string{"flagged": "false"}, 1)
	check("rheem_card_misestimate_ratio", nil, 0.5)

	if n, ok := snap.HistogramCount("rheem_atom_latency_seconds", map[string]string{"platform": "java"}); !ok || n != 1 {
		t.Errorf("java latency observations = %v (present=%v)", n, ok)
	}
	if n, ok := snap.HistogramCount("rheem_conversion_bytes", map[string]string{"platform": "java"}); !ok || n != 1 {
		t.Errorf("java conversion-bytes observations = %v (present=%v)", n, ok)
	}

	// Live progress: failed span counts toward atoms_failed, the
	// loop-body span moved records but not atoms_done; the replacement
	// plan's RunStart bumped the denominator.
	st := run.status()
	if st.AtomsTotal != 3 || st.AtomsDone != 1 || st.AtomsFailed != 1 || st.AtomsRunning != 0 {
		t.Errorf("progress = total %d done %d failed %d running %d",
			st.AtomsTotal, st.AtomsDone, st.AtomsFailed, st.AtomsRunning)
	}
	if st.RecordsOut != 47 || st.Retries != 1 || st.Failovers != 1 || st.Replans != 1 {
		t.Errorf("counters = records %d retries %d failovers %d replans %d",
			st.RecordsOut, st.Retries, st.Failovers, st.Replans)
	}

	run.End(nil)
	statuses := h.Runs().Status()
	if len(statuses) != 1 || !statuses[0].Done || statuses[0].Name != "unit-plan" {
		t.Fatalf("tracker status = %+v", statuses)
	}
}

func TestRunTrackerOccupancyAndRetirement(t *testing.T) {
	tk := NewRunTracker()
	base := time.Unix(1700000000, 0)
	clock := base
	tk.SetClock(func() time.Time { return clock })

	run := tk.Begin("occ")
	run.setTotal(4)
	run.spanStarted("java")
	run.spanStarted("java")
	run.spanStarted("sqlite3sim")

	clock = clock.Add(time.Second)
	st := tk.Status()[0]
	if st.Occupancy["java"] != 2 || st.Occupancy["sqlite3sim"] != 1 || st.AtomsRunning != 3 {
		t.Fatalf("occupancy = %+v running=%d", st.Occupancy, st.AtomsRunning)
	}
	if st.ElapsedMS != 1000 {
		t.Fatalf("elapsed = %d", st.ElapsedMS)
	}

	run.spanEnded("java", 500, false, true)
	run.spanEnded("java", 0, true, true)
	run.spanEnded("sqlite3sim", 250, false, true)
	st = tk.Status()[0]
	if len(st.Occupancy) != 0 || st.AtomsRunning != 0 {
		t.Fatalf("occupancy after drain = %+v running=%d", st.Occupancy, st.AtomsRunning)
	}
	// 750 records over a 1s-old run → windowed rate uses run age.
	if st.RecordsPerSec != 750 {
		t.Fatalf("records/sec = %v", st.RecordsPerSec)
	}

	run.End(errors.New("fell over"))
	st = tk.Status()[0]
	if !st.Done || st.Err != "fell over" {
		t.Fatalf("done status = %+v", st)
	}

	// Finished runs retire into bounded history.
	for i := 0; i < DefaultDoneHistory+10; i++ {
		r := tk.Begin("churn")
		r.End(nil)
	}
	if got := len(tk.Status()); got != DefaultDoneHistory {
		t.Fatalf("history length = %d, want %d", got, DefaultDoneHistory)
	}
}

func TestRunTrackerWriteJSON(t *testing.T) {
	tk := NewRunTracker()
	tk.Begin("live")
	var sb strings.Builder
	if err := tk.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"runs"`, `"name":"live"`, `"atoms_total"`, `"records_per_sec"`} {
		if !strings.Contains(out, want) {
			t.Errorf("payload missing %s:\n%s", want, out)
		}
	}
}
