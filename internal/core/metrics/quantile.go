package metrics

import (
	"math"
	"sort"
)

// Quantile estimates the q-quantile (0 < q ≤ 1) of a histogram family
// in a snapshot, merging every sample whose labels are a superset of
// the given filter (nil matches all samples — the cross-platform view).
// The estimate interpolates linearly inside the winning bucket, the
// way Prometheus's histogram_quantile does; observations that landed
// in the +Inf overflow bucket clamp to the largest finite bound. The
// second result is false when the family is missing, is not a
// histogram, no sample matches, or no observations were recorded.
//
// This is the bench suite's p99 source: it turns the live
// rheem_atom_latency_seconds histogram into the single tail-latency
// number persisted in BENCH_*.json.
func (s *Snapshot) Quantile(name string, q float64, labels map[string]string) (float64, bool) {
	if q <= 0 || q > 1 {
		return 0, false
	}
	var merged []BucketSnapshot
	for i := range s.Families {
		f := &s.Families[i]
		if f.Name != name || f.Type != typeHistogram {
			continue
		}
		for j := range f.Samples {
			sm := &f.Samples[j]
			if !labelsMatch(sm.Labels, labels) {
				continue
			}
			merged = mergeBuckets(merged, sm.Buckets)
		}
	}
	if len(merged) == 0 {
		return 0, false
	}
	total := merged[len(merged)-1].CumulativeCount
	if total == 0 {
		return 0, false
	}
	// rank is the (fractional) observation index the quantile falls on.
	rank := q * float64(total)
	var prevBound float64
	var prevCum int64
	for i, b := range merged {
		if float64(b.CumulativeCount) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				// Tail landed past the last finite bound: clamp.
				if i > 0 {
					return merged[i-1].UpperBound, true
				}
				return 0, true
			}
			inBucket := float64(b.CumulativeCount - prevCum)
			if inBucket <= 0 {
				return b.UpperBound, true
			}
			frac := (rank - float64(prevCum)) / inBucket
			return prevBound + (b.UpperBound-prevBound)*frac, true
		}
		prevBound, prevCum = b.UpperBound, b.CumulativeCount
	}
	return prevBound, true
}

// labelsMatch reports whether have contains every pair in want.
func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// mergeBuckets adds the cumulative counts of b into acc, aligning by
// upper bound. Samples of one family share registration-time bounds,
// so the common case is a positional merge; bounds present in only one
// side are kept (counts merge cumulatively by re-sorting).
func mergeBuckets(acc, b []BucketSnapshot) []BucketSnapshot {
	if acc == nil {
		out := make([]BucketSnapshot, len(b))
		copy(out, b)
		return out
	}
	if len(acc) == len(b) {
		aligned := true
		for i := range acc {
			if acc[i].UpperBound != b[i].UpperBound {
				aligned = false
				break
			}
		}
		if aligned {
			for i := range acc {
				acc[i].CumulativeCount += b[i].CumulativeCount
			}
			return acc
		}
	}
	// Mismatched bounds across samples of one family should not happen
	// (bounds are fixed at registration), but merge defensively: convert
	// both to per-bucket deltas keyed by bound, add, and rebuild.
	deltas := map[float64]int64{}
	add := func(bs []BucketSnapshot) {
		var prev int64
		for _, bucket := range bs {
			deltas[bucket.UpperBound] += bucket.CumulativeCount - prev
			prev = bucket.CumulativeCount
		}
	}
	add(acc)
	add(b)
	bounds := make([]float64, 0, len(deltas))
	for ub := range deltas {
		bounds = append(bounds, ub)
	}
	sort.Float64s(bounds) // ascending, +Inf last
	out := make([]BucketSnapshot, 0, len(bounds))
	var cum int64
	for _, ub := range bounds {
		cum += deltas[ub]
		out = append(out, BucketSnapshot{UpperBound: ub, CumulativeCount: cum})
	}
	return out
}
