package metrics

import (
	"math"
	"testing"
)

func TestSnapshotQuantile(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1, 1}, "platform")
	// java: 90 obs at ~5ms, 10 at ~50ms → p99 inside the 0.01..0.1 bucket.
	for i := 0; i < 90; i++ {
		hv.With("java").Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		hv.With("java").Observe(0.05)
	}
	snap := reg.Snapshot()

	p99, ok := snap.Quantile("lat_seconds", 0.99, map[string]string{"platform": "java"})
	if !ok {
		t.Fatal("Quantile: no sample matched")
	}
	if p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %v, want in (0.01, 0.1]", p99)
	}
	p50, ok := snap.Quantile("lat_seconds", 0.50, nil)
	if !ok || p50 <= 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %v ok=%v, want in (0.001, 0.01]", p50, ok)
	}
}

func TestSnapshotQuantileMergesSamples(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, "platform")
	// All fast observations on java, all slow on spark: the merged
	// cross-platform p99 must land in spark's bucket.
	for i := 0; i < 50; i++ {
		hv.With("java").Observe(0.0005)
	}
	for i := 0; i < 50; i++ {
		hv.With("spark").Observe(0.05)
	}
	snap := reg.Snapshot()
	p99, ok := snap.Quantile("lat_seconds", 0.99, nil)
	if !ok {
		t.Fatal("merged Quantile: not ok")
	}
	if p99 <= 0.01 || p99 > 0.1 {
		t.Errorf("merged p99 = %v, want in (0.01, 0.1]", p99)
	}
	// Filtered to java only, the tail is fast.
	p99j, ok := snap.Quantile("lat_seconds", 0.99, map[string]string{"platform": "java"})
	if !ok || p99j > 0.001 {
		t.Errorf("java p99 = %v ok=%v, want ≤ 0.001", p99j, ok)
	}
}

func TestSnapshotQuantileEdges(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat_seconds", "Latency.", []float64{0.001, 0.01}, "platform")
	snap := reg.Snapshot()
	if _, ok := snap.Quantile("lat_seconds", 0.99, nil); ok {
		t.Error("empty histogram family reported a quantile")
	}
	if _, ok := snap.Quantile("missing", 0.99, nil); ok {
		t.Error("missing family reported a quantile")
	}

	// Overflow-only observations clamp to the largest finite bound.
	hv.With("java").Observe(5)
	snap = reg.Snapshot()
	p99, ok := snap.Quantile("lat_seconds", 0.99, nil)
	if !ok || p99 != 0.01 {
		t.Errorf("overflow p99 = %v ok=%v, want clamp to 0.01", p99, ok)
	}
	if _, ok := snap.Quantile("lat_seconds", 0, nil); ok {
		t.Error("q=0 accepted")
	}
	if _, ok := snap.Quantile("lat_seconds", 1.5, nil); ok {
		t.Error("q>1 accepted")
	}

	// Counters are not histograms.
	reg.CounterVec("runs_total", "Runs.").With().Inc()
	if _, ok := reg.Snapshot().Quantile("runs_total", 0.5, nil); ok {
		t.Error("counter family reported a quantile")
	}
}

// TestSnapshotQuantileOverflowClamp pins the +Inf overflow-bucket
// behaviour with finite observations present: a quantile whose rank
// lands in the overflow bucket clamps to the largest finite bound and
// never reports +Inf, while quantiles below the tail still interpolate
// within their finite bucket.
func TestSnapshotQuantileOverflowClamp(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat_seconds", "Latency.", []float64{0.001, 0.01}, "platform")
	h := hv.With("java")
	// 8 fast observations, 2 past every finite bound.
	for i := 0; i < 8; i++ {
		h.Observe(0.0005)
	}
	h.Observe(5)
	h.Observe(100)
	snap := reg.Snapshot()

	// p99 rank 9.9 of 10 falls in the overflow bucket: clamp, stay
	// finite.
	p99, ok := snap.Quantile("lat_seconds", 0.99, nil)
	if !ok {
		t.Fatal("p99 not reported")
	}
	if math.IsInf(p99, 1) {
		t.Fatal("p99 reported +Inf instead of clamping to the largest finite bound")
	}
	if p99 != 0.01 {
		t.Errorf("p99 = %v, want clamp to largest finite bound 0.01", p99)
	}
	// p50 rank 5 of 10 sits inside the first finite bucket and
	// interpolates there, untouched by the overflow tail.
	p50, ok := snap.Quantile("lat_seconds", 0.5, nil)
	if !ok || p50 > 0.001 {
		t.Errorf("p50 = %v ok=%v, want ≤ 0.001", p50, ok)
	}
}

func TestMergeBucketsMismatchedBounds(t *testing.T) {
	a := []BucketSnapshot{{UpperBound: 0.001, CumulativeCount: 2}, {UpperBound: math.Inf(1), CumulativeCount: 3}}
	b := []BucketSnapshot{{UpperBound: 0.01, CumulativeCount: 4}, {UpperBound: math.Inf(1), CumulativeCount: 5}}
	m := mergeBuckets(mergeBuckets(nil, a), b)
	last := m[len(m)-1]
	if !math.IsInf(last.UpperBound, 1) || last.CumulativeCount != 8 {
		t.Errorf("merged tail = %+v, want +Inf cum 8", last)
	}
	for i := 1; i < len(m); i++ {
		if m[i].CumulativeCount < m[i-1].CumulativeCount {
			t.Errorf("merged buckets not cumulative: %+v", m)
		}
	}
}
