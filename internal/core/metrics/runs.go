// Live run progress: every Context.Execute registers a Run with the
// hub's RunTracker, the span-stream collector updates it as atoms
// start and finish, and the /runs endpoint serializes the tracker —
// so a long multi-platform job can be watched while it executes
// (atoms completed/total, current records/sec, per-platform atom
// occupancy, failovers so far).

package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultDoneHistory bounds how many finished runs /runs keeps
// reporting (and the tracker keeps in memory) unless SetDoneHistory
// overrides it.
const DefaultDoneHistory = 32

// rateWindow is the sliding window current records/sec is computed
// over.
const rateWindow = 5 * time.Second

// rateSample is one span-end contribution to the records/sec window.
type rateSample struct {
	at      time.Time
	records int64
}

// Run is one in-flight (or recently finished) Execute, updated by the
// hub's span-stream collector. All methods are safe for concurrent
// use.
type Run struct {
	mu        sync.Mutex
	tracker   *RunTracker // retires the run on End; nil in tests
	id        int64
	name      string
	startedAt time.Time
	endedAt   time.Time
	now       func() time.Time

	total     int // scheduled atoms in the current plan; 0 = unknown
	running   int // spans in flight, loop-body atoms included
	completed int
	failed    int
	retries   int
	failovers int
	replans   int

	recordsOut int64
	occupancy  map[string]int // platform → atoms currently executing
	window     []rateSample

	done bool
	err  string
}

// RunStatus is one run's JSON-serializable progress snapshot.
type RunStatus struct {
	ID        int64     `json:"id"`
	Name      string    `json:"name"`
	StartedAt time.Time `json:"started_at"`
	EndedAt   time.Time `json:"ended_at"`
	Done      bool      `json:"done"`
	Err       string    `json:"error,omitempty"`

	// AtomsTotal is the scheduled atom count of the current plan (it
	// can change when a failover or re-optimization replaces the plan);
	// 0 while unknown.
	AtomsTotal int `json:"atoms_total"`
	// AtomsDone counts top-level spans that finished successfully;
	// AtomsFailed the ones that ended in an error (retries exhausted).
	AtomsDone    int `json:"atoms_done"`
	AtomsFailed  int `json:"atoms_failed"`
	AtomsRunning int `json:"atoms_running"`
	Retries      int `json:"retries"`
	Failovers    int `json:"failovers"`
	Replans      int `json:"replans"`

	// RecordsOut totals records produced by successful atoms, loop-body
	// iterations included — a throughput figure, not the sink size.
	RecordsOut int64 `json:"records_out"`
	// RecordsPerSec is the output rate over the trailing 5s window —
	// the "current" throughput, not the lifetime average.
	RecordsPerSec float64 `json:"records_per_sec"`
	// Occupancy maps platform → atoms executing on it right now.
	Occupancy map[string]int `json:"occupancy,omitempty"`

	ElapsedMS int64 `json:"elapsed_ms"`
}

// ID returns the run's tracker-assigned identity.
func (r *Run) ID() int64 { return r.id }

// Started returns when the run began.
func (r *Run) Started() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.startedAt
}

// Ended returns when the run finished — zero while still in flight.
func (r *Run) Ended() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.endedAt
}

// setTotal records the scheduled atom count of the (possibly
// replacement) plan.
func (r *Run) setTotal(n int) {
	r.mu.Lock()
	if n > 0 {
		r.total = n
	}
	r.mu.Unlock()
}

// spanStarted accounts an atom entering execution on a platform
// (loop-body atoms included — they occupy platforms too).
func (r *Run) spanStarted(platform string) {
	r.mu.Lock()
	r.running++
	if r.occupancy == nil {
		r.occupancy = map[string]int{}
	}
	r.occupancy[platform]++
	r.mu.Unlock()
}

// spanEnded accounts an atom leaving execution: occupancy and the
// rate-window contribution for every span; completion progress only
// for top-level spans (loop bodies don't advance atoms_done — their
// enclosing loop span does, once, when the loop finishes).
func (r *Run) spanEnded(platform string, records int64, failed, topLevel bool) {
	r.mu.Lock()
	if r.running > 0 {
		r.running--
	}
	if r.occupancy[platform] > 0 {
		r.occupancy[platform]--
	}
	if topLevel {
		if failed {
			r.failed++
		} else {
			r.completed++
		}
	}
	if records > 0 {
		r.recordsOut += records
		now := r.now()
		r.window = append(r.window, rateSample{at: now, records: records})
		r.trimWindowLocked(now)
	}
	r.mu.Unlock()
}

func (r *Run) retry()    { r.mu.Lock(); r.retries++; r.mu.Unlock() }
func (r *Run) failover() { r.mu.Lock(); r.failovers++; r.mu.Unlock() }
func (r *Run) replan()   { r.mu.Lock(); r.replans++; r.mu.Unlock() }

// trimWindowLocked drops rate samples older than the window.
func (r *Run) trimWindowLocked(now time.Time) {
	cut := now.Add(-rateWindow)
	i := 0
	for i < len(r.window) && r.window[i].at.Before(cut) {
		i++
	}
	if i > 0 {
		r.window = append(r.window[:0], r.window[i:]...)
	}
}

// End marks the run finished and retires it into the tracker's
// bounded done-history. A non-nil err records the failure the caller
// is about to return. Retiring here — not on the next /runs scrape —
// is what keeps a long-lived server's tracker from growing without
// bound when nobody is scraping.
func (r *Run) End(err error) {
	r.mu.Lock()
	first := !r.done
	if first {
		r.done = true
		r.endedAt = r.now()
		if err != nil {
			r.err = err.Error()
		}
	}
	t := r.tracker
	r.mu.Unlock()
	// r.mu is released before taking the tracker lock: Status acquires
	// tracker-then-run, so holding run-then-tracker here would invert
	// the order.
	if first && t != nil {
		t.retire(r)
	}
}

// status snapshots the run (deep-copied).
func (r *Run) status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	st := RunStatus{
		ID: r.id, Name: r.name, StartedAt: r.startedAt, EndedAt: r.endedAt,
		Done: r.done, Err: r.err,
		AtomsTotal: r.total, AtomsDone: r.completed, AtomsFailed: r.failed,
		Retries: r.retries, Failovers: r.failovers, Replans: r.replans,
		RecordsOut: r.recordsOut,
	}
	st.AtomsRunning = r.running
	end := now
	if r.done {
		end = r.endedAt
	}
	if d := end.Sub(r.startedAt); d > 0 {
		st.ElapsedMS = d.Milliseconds()
	}
	if !r.done {
		r.trimWindowLocked(now)
		var recs int64
		for _, s := range r.window {
			recs += s.records
		}
		span := rateWindow
		if lived := now.Sub(r.startedAt); lived > 0 && lived < span {
			span = lived
		}
		if span > 0 {
			st.RecordsPerSec = float64(recs) / span.Seconds()
		}
		if len(r.occupancy) > 0 {
			st.Occupancy = make(map[string]int, len(r.occupancy))
			for k, v := range r.occupancy {
				if v > 0 {
					st.Occupancy[k] = v
				}
			}
			if len(st.Occupancy) == 0 {
				st.Occupancy = nil
			}
		}
	}
	return st
}

// RunTracker registers runs and serves their progress. One tracker is
// shared by every Context bound to the same Hub.
type RunTracker struct {
	mu      sync.Mutex
	now     func() time.Time
	nextID  int64
	history int // finished runs kept; see SetDoneHistory
	active  []*Run
	done    []*Run // most recent last, bounded by history
}

// NewRunTracker returns an empty tracker keeping DefaultDoneHistory
// finished runs.
func NewRunTracker() *RunTracker {
	return &RunTracker{now: time.Now, history: DefaultDoneHistory}
}

// SetClock injects a clock (tests only). It applies to runs begun
// after the call.
func (t *RunTracker) SetClock(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// SetDoneHistory caps how many finished runs the tracker retains
// (n < 0 selects 0 — finished runs vanish from /runs immediately).
// A long-lived server tunes this to its traffic; the excess beyond the
// new cap is evicted right away, oldest first.
func (t *RunTracker) SetDoneHistory(n int) {
	if n < 0 {
		n = 0
	}
	t.mu.Lock()
	t.history = n
	t.trimDoneLocked()
	t.mu.Unlock()
}

// SeedID advances the tracker's ID counter to at least n, so runs
// begun after a restart never collide with run IDs a previous process
// persisted (the flight recorder's rehydrated profile history).
func (t *RunTracker) SeedID(n int64) {
	t.mu.Lock()
	if n > t.nextID {
		t.nextID = n
	}
	t.mu.Unlock()
}

// Begin registers a new in-flight run.
func (t *RunTracker) Begin(name string) *Run {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	r := &Run{tracker: t, id: t.nextID, name: name, now: t.now, startedAt: t.now()}
	t.active = append(t.active, r)
	return r
}

// Tracked returns how many runs the tracker currently holds, active
// and retired — the figure the memory-bound tests pin.
func (t *RunTracker) Tracked() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active) + len(t.done)
}

// retire moves a finished run from the active list into the bounded
// done-history. Idempotent: a run already retired (or swept by Status)
// is left alone.
func (t *RunTracker) retire(r *Run) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, a := range t.active {
		if a == r {
			t.active = append(t.active[:i], t.active[i+1:]...)
			t.done = append(t.done, r)
			t.trimDoneLocked()
			return
		}
	}
}

// trimDoneLocked drops the oldest finished runs past the history cap.
func (t *RunTracker) trimDoneLocked() {
	if excess := len(t.done) - t.history; excess > 0 {
		// Copy down and nil out the tail so evicted runs (and their
		// rate windows) are actually garbage-collectable.
		copy(t.done, t.done[excess:])
		for i := len(t.done) - excess; i < len(t.done); i++ {
			t.done[i] = nil
		}
		t.done = t.done[:len(t.done)-excess]
	}
}

// Status snapshots every tracked run: in-flight runs first (oldest
// first), then up to the history cap of finished ones. Runs normally
// retire themselves on End; the sweep here is a safety net for runs
// created without a tracker backlink (direct struct literals in
// tests).
func (t *RunTracker) Status() []RunStatus {
	t.mu.Lock()
	var stillActive []*Run
	for _, r := range t.active {
		r.mu.Lock()
		finished := r.done
		r.mu.Unlock()
		if finished {
			t.done = append(t.done, r)
		} else {
			stillActive = append(stillActive, r)
		}
	}
	t.active = stillActive
	t.trimDoneLocked()
	runs := make([]*Run, 0, len(t.active)+len(t.done))
	runs = append(runs, t.active...)
	runs = append(runs, t.done...)
	t.mu.Unlock()

	out := make([]RunStatus, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.status())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Done != out[j].Done {
			return !out[i].Done
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteJSON serializes the tracker as the /runs payload.
func (t *RunTracker) WriteJSON(w io.Writer) error {
	payload := struct {
		Runs []RunStatus `json:"runs"`
	}{Runs: t.Status()}
	enc := json.NewEncoder(w)
	return enc.Encode(payload)
}
