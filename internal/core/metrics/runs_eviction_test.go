package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRunTrackerBoundedWithoutScrapes is the memory-leak regression
// test: a long-lived server that nobody scrapes must still evict
// finished runs. Before eviction-on-End, finished runs sat in the
// active list until the next Status call — forever, on an unscraped
// server.
func TestRunTrackerBoundedWithoutScrapes(t *testing.T) {
	tr := NewRunTracker()
	for i := 0; i < 10*DefaultDoneHistory; i++ {
		r := tr.Begin(fmt.Sprintf("run-%d", i))
		r.End(nil)
	}
	if got, want := tr.Tracked(), DefaultDoneHistory; got != want {
		t.Fatalf("tracker holds %d runs after 10x churn with no scrapes, want %d", got, want)
	}
	// The survivors are the most recent cap's worth, oldest first.
	st := tr.Status()
	if len(st) != DefaultDoneHistory {
		t.Fatalf("Status returned %d runs, want %d", len(st), DefaultDoneHistory)
	}
	if got, want := st[0].Name, fmt.Sprintf("run-%d", 10*DefaultDoneHistory-DefaultDoneHistory); got != want {
		t.Fatalf("oldest surviving run is %q, want %q", got, want)
	}
}

// TestRunTrackerSetDoneHistory reconfigures the cap mid-flight: the
// excess is evicted immediately, and later churn respects the new cap.
func TestRunTrackerSetDoneHistory(t *testing.T) {
	tr := NewRunTracker()
	for i := 0; i < 20; i++ {
		tr.Begin(fmt.Sprintf("run-%d", i)).End(nil)
	}
	tr.SetDoneHistory(5)
	if got := tr.Tracked(); got != 5 {
		t.Fatalf("tracker holds %d runs after SetDoneHistory(5), want 5", got)
	}
	for i := 0; i < 10; i++ {
		tr.Begin(fmt.Sprintf("late-%d", i)).End(nil)
	}
	if got := tr.Tracked(); got != 5 {
		t.Fatalf("tracker holds %d runs after churn under cap 5, want 5", got)
	}
	tr.SetDoneHistory(-1) // clamps to 0: finished runs vanish
	if got := tr.Tracked(); got != 0 {
		t.Fatalf("tracker holds %d runs with history 0, want 0", got)
	}
	// Active runs are never evicted, whatever the cap.
	r := tr.Begin("live")
	if got := tr.Tracked(); got != 1 {
		t.Fatalf("tracker holds %d runs with one live run, want 1", got)
	}
	r.End(nil)
	if got := tr.Tracked(); got != 0 {
		t.Fatalf("tracker holds %d runs after the live run ended, want 0", got)
	}
}

// TestRunTrackerEvictionConcurrent hammers Begin/End/Status from
// several goroutines — the lock-order contract between Run.End and
// Status (tracker-then-run) is what the race detector checks here.
func TestRunTrackerEvictionConcurrent(t *testing.T) {
	tr := NewRunTracker()
	tr.SetDoneHistory(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := tr.Begin(fmt.Sprintf("g%d-%d", g, i))
				r.spanStarted("java")
				r.spanEnded("java", 1, false, true)
				r.End(nil)
			}
		}(g)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Status()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := tr.Tracked(); got > 8 {
		t.Fatalf("tracker holds %d runs, cap is 8", got)
	}
}
