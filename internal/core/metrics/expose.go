// Prometheus text exposition: the writer renders a Registry in the
// text format (version 0.0.4) a Prometheus server scrapes, and the
// parser validates such output — used by the round-trip tests and by
// `rheem-bench -scrape` in the CI smoke job. Both are local so the
// module stays dependency-free.

package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="b",c="d"}, with extra appended last (the
// histogram "le" label).
func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return
	}
	w.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	w.WriteByte('}')
}

// WriteProm renders every family in the Prometheus text exposition
// format, families sorted by name, samples in first-use order.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	r.mu.RUnlock()
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		samples := f.collect()
		if len(samples) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range samples {
			if f.typ == typeHistogram {
				for _, b := range s.buckets {
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					writeLabels(bw, s.labels, Label{Name: "le", Value: formatValue(b.UpperBound)})
					fmt.Fprintf(bw, " %d\n", b.CumulativeCount)
				}
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, s.labels)
				fmt.Fprintf(bw, " %s\n", formatValue(s.sum))
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, s.labels)
				fmt.Fprintf(bw, " %d\n", s.count)
				continue
			}
			bw.WriteString(f.name)
			writeLabels(bw, s.labels)
			fmt.Fprintf(bw, " %s\n", formatValue(s.value))
		}
	}
	return bw.Flush()
}

// ParsedSample is one sample line of a parsed exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of a parsed exposition.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseProm parses and validates Prometheus text exposition output:
// legal metric and label names, parseable values, a TYPE declaration
// for every sample's family, histogram families ending with an +Inf
// bucket and carrying _sum/_count. It returns the families in input
// order. A scrape that fails this parse would also fail a real
// Prometheus server's scrape.
func ParseProm(r io.Reader) ([]ParsedFamily, error) {
	var (
		families []ParsedFamily
		byName   = map[string]*ParsedFamily{}
		lineNo   int
	)
	getFamily := func(name string) *ParsedFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		families = append(families, ParsedFamily{Name: name})
		f := &families[len(families)-1]
		byName[name] = f
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				return nil, fmt.Errorf("metrics: line %d: malformed %s line", lineNo, parts[1])
			}
			name := parts[2]
			if err := checkName(name); err != nil {
				return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
			}
			f := getFamily(name)
			if parts[1] == "HELP" {
				f.Help = parts[3]
				continue
			}
			switch parts[3] {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
				f.Type = parts[3]
			default:
				return nil, fmt.Errorf("metrics: line %d: unknown type %q", lineNo, parts[3])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		base := sample.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suffix)
			if trimmed != base {
				if f, ok := byName[trimmed]; ok && f.Type == typeHistogram {
					base = trimmed
				}
				break
			}
		}
		f, ok := byName[base]
		if !ok || f.Type == "" {
			return nil, fmt.Errorf("metrics: line %d: sample %q has no TYPE declaration", lineNo, sample.Name)
		}
		f.Samples = append(f.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range families {
		f := &families[i]
		if f.Type != typeHistogram {
			continue
		}
		if err := checkHistogram(f); err != nil {
			return nil, err
		}
	}
	return families, nil
}

// checkHistogram validates that a histogram family has an +Inf bucket
// plus _sum and _count samples.
func checkHistogram(f *ParsedFamily) error {
	var haveInf, haveSum, haveCount bool
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			if s.Labels["le"] == "+Inf" {
				haveInf = true
			}
		case f.Name + "_sum":
			haveSum = true
		case f.Name + "_count":
			haveCount = true
		}
	}
	if len(f.Samples) == 0 {
		return nil
	}
	if !haveInf || !haveSum || !haveCount {
		return fmt.Errorf("metrics: histogram %s missing +Inf bucket, _sum or _count", f.Name)
	}
	return nil
}

// parseSampleLine parses `name{a="b"} 1.5` (labels optional).
func parseSampleLine(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	if err := checkName(s.Name); err != nil {
		return s, err
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := indexUnescapedBrace(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; take the first field.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// indexUnescapedBrace finds the closing '}' of a label set, skipping
// quoted strings (which may contain escaped quotes and braces).
func indexUnescapedBrace(s string) int {
	inQuotes, escaped := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuotes = !inQuotes
		case c == '}' && !inQuotes:
			return i
		}
	}
	return -1
}

// parseLabels parses `a="b",c="d"`.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if err := checkName(name); err != nil {
			return nil, err
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", name)
		}
		end, value, err := readQuoted(s)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", name, err)
		}
		out[name] = value
		s = s[end:]
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}

// readQuoted reads a leading quoted string, returning the index just
// past the closing quote and the unescaped value.
func readQuoted(s string) (int, string, error) {
	var sb strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return 0, "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(s[i])
			}
		case '"':
			return i + 1, sb.String(), nil
		default:
			sb.WriteByte(s[i])
		}
	}
	return 0, "", fmt.Errorf("unterminated string")
}

// parseValue parses a sample value, accepting the Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
