// The Hub bundles a metrics Registry, a RunTracker and the span-stream
// Collector that feeds both. A Context owns a private hub by default;
// rheem.WithTelemetryHub lets several Contexts (the bench harness's
// per-experiment contexts, say) share one hub so a single monitoring
// server sees them all.

package metrics

import (
	"fmt"
	"sort"
	"sync/atomic"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/profile"
	"rheem/internal/core/trace"
)

// Hub ties together the three live-telemetry pieces.
type Hub struct {
	reg  *Registry
	runs *RunTracker
	col  *Collector
	// rec is the optional run flight recorder: completed runs are folded
	// into per-run profiles the monitoring server exposes.
	rec atomic.Pointer[profile.Recorder]
	// cal is the optional shared cost calibrator: every Execute on a
	// Context bound to this hub folds its completed run into it, and
	// every optimization reads its correction factors — the cross-run
	// learning loop.
	cal atomic.Pointer[cost.Calibrator]
}

// NewHub returns a hub with a fresh registry, run tracker and
// collector (instruments pre-registered).
func NewHub() *Hub {
	reg := NewRegistry()
	h := &Hub{reg: reg, runs: NewRunTracker()}
	h.col = newCollector(reg)
	return h
}

// Registry returns the hub's metrics registry.
func (h *Hub) Registry() *Registry { return h.reg }

// SetFlightRecorder attaches a run flight recorder: the Context records
// every Execute's trace into it, and the monitoring server serves
// /runs/{id}/profile and /runs/{id}/trace.json from it.
func (h *Hub) SetFlightRecorder(rec *profile.Recorder) { h.rec.Store(rec) }

// FlightRecorder returns the attached recorder, nil if none.
func (h *Hub) FlightRecorder() *profile.Recorder { return h.rec.Load() }

// SetCalibrator attaches a shared cost calibrator and exports its
// state as rheem_calibration_* metrics: fold count, cell count, and
// the learned per-(kind, platform) cost factors and per-kind
// cardinality factors (applied cells only — guarded cells are
// factor-1 noise a dashboard doesn't need).
func (h *Hub) SetCalibrator(cal *cost.Calibrator) {
	h.cal.Store(cal)
	h.reg.SetFunc("rheem_calibration_folds_total",
		"Completed runs folded into the shared cost calibrator.",
		typeCounter, nil, func() []Sample {
			return []Sample{{Value: float64(h.cal.Load().Folds())}}
		})
	h.reg.SetFunc("rheem_calibration_cells",
		"Correction cells the calibrator tracks, by kind (cost or card).",
		typeGauge, []string{"kind"}, func() []Sample {
			s := h.cal.Load().Snapshot()
			if s == nil {
				return nil
			}
			return []Sample{
				{Labels: []Label{{Name: "kind", Value: "cost"}}, Value: float64(len(s.Cost))},
				{Labels: []Label{{Name: "kind", Value: "card"}}, Value: float64(len(s.Card))},
			}
		})
	h.reg.SetFunc("rheem_calibration_factor",
		"Learned cost-correction factor per (operator kind, platform); only cells past the min-sample guard.",
		typeGauge, []string{"kind", "platform"}, func() []Sample {
			s := h.cal.Load().Snapshot()
			if s == nil {
				return nil
			}
			out := make([]Sample, 0, len(s.Cost))
			for _, c := range s.Cost {
				if !c.Applied {
					continue
				}
				out = append(out, Sample{
					Labels: []Label{
						{Name: "kind", Value: c.Kind},
						{Name: "platform", Value: c.Platform},
					},
					Value: c.Factor,
				})
			}
			return out
		})
	h.reg.SetFunc("rheem_calibration_card_factor",
		"Learned cardinality-correction factor per operator kind; only cells past the min-sample guard.",
		typeGauge, []string{"kind"}, func() []Sample {
			s := h.cal.Load().Snapshot()
			if s == nil {
				return nil
			}
			out := make([]Sample, 0, len(s.Card))
			for _, c := range s.Card {
				if !c.Applied {
					continue
				}
				out = append(out, Sample{
					Labels: []Label{{Name: "kind", Value: c.Kind}},
					Value:  c.Factor,
				})
			}
			return out
		})
}

// Calibrator returns the attached shared calibrator, nil if none.
func (h *Hub) Calibrator() *cost.Calibrator { return h.cal.Load() }

// Runs returns the hub's run tracker.
func (h *Hub) Runs() *RunTracker { return h.runs }

// NewRunTracer registers a run and returns a tracer whose span stream
// feeds the hub (plus any extra consumers), and the run handle the
// caller must End. This is the single wiring point between a Context's
// Execute and the live telemetry layer.
func (h *Hub) NewRunTracer(name string, extra ...trace.Consumer) (*trace.Tracer, *Run) {
	run := h.runs.Begin(name)
	consumers := append([]trace.Consumer{h.col.Consumer(run)}, extra...)
	return trace.New(consumers...), run
}

// BindEngine exports a platform registry's scrape-time state: breaker
// states as gauges and the cumulative per-platform counters the
// registry's Stats ledger keeps (trips, recoveries, failed atoms).
// Rebinding (a newer Context sharing the hub) replaces the previous
// callbacks — the latest bound registry is the one a scrape shows.
func (h *Hub) BindEngine(reg *engine.Registry) {
	h.reg.SetFunc("rheem_breaker_state",
		"Per-platform circuit breaker state (0=closed, 1=half-open, 2=open).",
		typeGauge, []string{"platform"}, func() []Sample {
			ids := reg.PlatformIDs()
			health := reg.Health()
			out := make([]Sample, 0, len(ids))
			for _, id := range ids {
				out = append(out, Sample{
					Labels: []Label{{Name: "platform", Value: string(id)}},
					Value:  float64(health.State(id)),
				})
			}
			return out
		})
	h.reg.SetFunc("rheem_breaker_trips_total",
		"Circuit breaker transitions into Open (platform quarantined).",
		typeCounter, []string{"platform"}, func() []Sample {
			return platformStatSamples(reg, func(s engine.PlatformStats) float64 {
				return float64(s.BreakerTrips)
			})
		})
	h.reg.SetFunc("rheem_breaker_recoveries_total",
		"Circuit breaker transitions back to Closed after a successful probe.",
		typeCounter, []string{"platform"}, func() []Sample {
			return platformStatSamples(reg, func(s engine.PlatformStats) float64 {
				return float64(s.BreakerRecoveries)
			})
		})
	h.reg.SetFunc("rheem_atoms_failed_total",
		"Atom executions that exhausted their retries, per platform.",
		typeCounter, []string{"platform"}, func() []Sample {
			return platformStatSamples(reg, func(s engine.PlatformStats) float64 {
				return float64(s.AtomsFailed)
			})
		})
}

// BindChannels exports the conversion graph's cumulative per-edge
// traffic (conversions performed and bytes moved between formats).
func (h *Hub) BindChannels(reg *channel.Registry) {
	h.reg.SetFunc("rheem_channel_conversions_total",
		"Cross-format channel conversions performed, per (from, to) format pair.",
		typeCounter, []string{"from", "to"}, func() []Sample {
			stats := reg.ConversionStats()
			out := make([]Sample, 0, len(stats))
			for _, s := range stats {
				out = append(out, Sample{
					Labels: []Label{
						{Name: "from", Value: string(s.From)},
						{Name: "to", Value: string(s.To)},
					},
					Value: float64(s.Count),
				})
			}
			return out
		})
	h.reg.SetFunc("rheem_channel_conversion_bytes_total",
		"Bytes moved through cross-format channel conversions, per (from, to) format pair.",
		typeCounter, []string{"from", "to"}, func() []Sample {
			stats := reg.ConversionStats()
			out := make([]Sample, 0, len(stats))
			for _, s := range stats {
				out = append(out, Sample{
					Labels: []Label{
						{Name: "from", Value: string(s.From)},
						{Name: "to", Value: string(s.To)},
					},
					Value: float64(s.Bytes),
				})
			}
			return out
		})
}

func platformStatSamples(reg *engine.Registry, pick func(engine.PlatformStats) float64) []Sample {
	stats := reg.Stats().Snapshot()
	ids := make([]engine.PlatformID, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Sample, 0, len(ids))
	for _, id := range ids {
		out = append(out, Sample{
			Labels: []Label{{Name: "platform", Value: string(id)}},
			Value:  pick(stats[id]),
		})
	}
	return out
}

// Collector folds span-stream events into the hub's instruments. One
// collector serves every run on the hub; per-run progress goes to the
// Run handle the consumer was built with.
type Collector struct {
	atomLatency  *HistogramVec // platform
	queueWait    *HistogramVec // platform
	convBytes    *HistogramVec // platform
	shardLatency *HistogramVec // platform
	shards       *CounterVec   // platform
	atoms        *CounterVec   // platform, status
	recordsIn    *CounterVec   // platform
	recordsOut   *CounterVec   // platform
	informats    *CounterVec   // platform, format
	retries      *CounterVec   // platform
	failovers    *Counter
	replans      *Counter
	runsTotal    *Counter
	audits       *CounterVec // flagged
}

// newCollector registers the collector's instruments on the registry.
func newCollector(reg *Registry) *Collector {
	c := &Collector{
		atomLatency: reg.HistogramVec("rheem_atom_latency_seconds",
			"Wall latency of task atom executions (input conversion plus every attempt).",
			LatencyBuckets, "platform"),
		queueWait: reg.HistogramVec("rheem_atom_queue_wait_seconds",
			"Time atoms sat ready before a scheduler worker picked them up.",
			LatencyBuckets, "platform"),
		convBytes: reg.HistogramVec("rheem_conversion_bytes",
			"Bytes converted across platform boundaries to feed an atom.",
			SizeBuckets, "platform"),
		shardLatency: reg.HistogramVec("rheem_shard_latency_seconds",
			"Wall latency of individual intra-atom shard executions; the spread exposes shard skew.",
			LatencyBuckets, "platform"),
		shards: reg.CounterVec("rheem_shards_total",
			"Intra-atom shard executions launched.", "platform"),
		atoms: reg.CounterVec("rheem_atoms_total",
			"Task atom executions by final status.", "platform", "status"),
		recordsIn: reg.CounterVec("rheem_records_in_total",
			"Records consumed from input channels by successful atoms.", "platform"),
		recordsOut: reg.CounterVec("rheem_records_out_total",
			"Records produced to output channels by successful atoms.", "platform"),
		informats: reg.CounterVec("rheem_consumer_format_total",
			"Consumer operators by the channel format the executor delivered their external inputs in — the row-vs-batch adoption signal.",
			"platform", "format"),
		retries: reg.CounterVec("rheem_retries_total",
			"Atom execution attempts retried after transient failures.", "platform"),
		failovers: reg.CounterVec("rheem_failovers_total",
			"Cross-platform failover re-plans.").With(),
		replans: reg.CounterVec("rheem_replans_total",
			"Adaptive re-optimizations triggered by cardinality mismatches.").With(),
		runsTotal: reg.CounterVec("rheem_runs_total",
			"Plan executions started.").With(),
		audits: reg.CounterVec("rheem_card_audits_total",
			"Estimate-vs-actual cardinality audit records, by whether the miss was flagged.",
			"flagged"),
	}
	// The mis-estimate ratio is derived from the audit counters at
	// scrape time: flagged / total, 0 while no audits have happened.
	reg.SetFunc("rheem_card_misestimate_ratio",
		"Fraction of audited atom-boundary cardinalities flagged as gross mis-estimates.",
		typeGauge, nil, func() []Sample {
			flagged := float64(c.audits.With("true").Value())
			total := flagged + float64(c.audits.With("false").Value())
			ratio := 0.0
			if total > 0 {
				ratio = flagged / total
			}
			return []Sample{{Value: ratio}}
		})
	return c
}

// Consumer returns a trace consumer that updates the shared
// instruments and the given run's live progress. Consumers are invoked
// under the tracer's lock, so per-event work stays small: a few atomic
// adds plus one short critical section on the run.
func (c *Collector) Consumer(run *Run) trace.Consumer {
	c.runsTotal.Inc()
	return func(e trace.Event) {
		switch e.Kind {
		case trace.RunStart:
			run.setTotal(e.TotalAtoms)
		case trace.SpanStart:
			// Shard spans are sub-atom work: they feed their own
			// instruments below but must not skew atom counters or the
			// run's progress denominator.
			if e.Span.Kind == trace.KindShard {
				return
			}
			run.spanStarted(string(e.Span.Platform))
		case trace.SpanRetry:
			c.retries.With(string(e.Span.Platform)).Inc()
			run.retry()
		case trace.SpanEnd:
			sp := e.Span
			platform := string(sp.Platform)
			if sp.Kind == trace.KindShard {
				c.shards.With(platform).Inc()
				c.shardLatency.With(platform).Observe(sp.Wall.Seconds())
				return
			}
			status := "ok"
			if sp.Failed() {
				status = "error"
			}
			c.atoms.With(platform, status).Inc()
			if sp.Kind == trace.KindAtom {
				c.atomLatency.With(platform).Observe(sp.Wall.Seconds())
				if sp.QueueWait > 0 {
					c.queueWait.With(platform).Observe(sp.QueueWait.Seconds())
				}
				if sp.ConvBytes > 0 {
					c.convBytes.With(platform).Observe(float64(sp.ConvBytes))
				}
			}
			if !sp.Failed() {
				c.recordsIn.With(platform).Add(e.Metrics.InRecords)
				c.recordsOut.With(platform).Add(e.Metrics.OutRecords)
			}
			for f, n := range sp.InFormats {
				c.informats.With(platform, f).Add(int64(n))
			}
			records := int64(0)
			if !sp.Failed() {
				records = e.Metrics.OutRecords
			}
			run.spanEnded(platform, records, sp.Failed(), sp.Iteration < 0)
		case trace.Failover:
			c.failovers.Inc()
			run.failover()
		case trace.Replan:
			c.replans.Inc()
			run.replan()
		case trace.AuditRecords:
			for _, a := range e.Audits {
				c.audits.With(fmt.Sprintf("%t", a.Flagged)).Inc()
			}
		}
	}
}
