package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	c.Add(-5) // negative deltas are ignored
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("counter after negative add = %d", got)
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge after add = %v", got)
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	buckets, sum, count := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if sum != 560.5 {
		t.Fatalf("sum = %v", sum)
	}
	wantCum := []int64{1, 3, 4, 5} // le=1, le=10, le=100, le=+Inf
	for i, b := range buckets {
		if b.CumulativeCount != wantCum[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].UpperBound, 1) {
		t.Fatal("last bucket is not +Inf")
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(1) // exactly on a bound: le="1" is inclusive
	buckets, _, _ := h.snapshot()
	if buckets[0].CumulativeCount != 1 {
		t.Fatalf("boundary observation missed its bucket: %+v", buckets)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("x_total", "x", "p")
	b := r.CounterVec("x_total", "other help ignored", "p")
	a.With("java").Add(3)
	if got := b.With("java").Value(); got != 3 {
		t.Fatalf("re-registered family not shared: %d", got)
	}
}

func TestSetFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.SetFunc("f", "h", "gauge", nil, func() []Sample { return []Sample{{Value: 1}} })
	r.SetFunc("f", "h", "gauge", nil, func() []Sample { return []Sample{{Value: 2}} })
	snap := r.Snapshot()
	v, ok := snap.Counter("f", nil)
	if !ok || v != 2 {
		t.Fatalf("callback family not replaced: %v %v", v, ok)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c_total", "c", "p")
	cv.With("java").Add(7)
	hv := r.HistogramVec("h_seconds", "h", []float64{1, 2}, "p")
	hv.With("java").Observe(1.5)

	snap := r.Snapshot()
	// Mutate the snapshot every way a caller could.
	for i := range snap.Families {
		f := &snap.Families[i]
		f.Name = "clobbered"
		for j := range f.Samples {
			f.Samples[j].Value = -999
			for k := range f.Samples[j].Buckets {
				f.Samples[j].Buckets[k].CumulativeCount = -999
			}
			for key := range f.Samples[j].Labels {
				f.Samples[j].Labels[key] = "clobbered"
			}
		}
	}
	fresh := r.Snapshot()
	if v, ok := fresh.Counter("c_total", map[string]string{"p": "java"}); !ok || v != 7 {
		t.Fatalf("registry state aliased by snapshot mutation: %v %v", v, ok)
	}
	if n, ok := fresh.HistogramCount("h_seconds", map[string]string{"p": "java"}); !ok || n != 1 {
		t.Fatalf("histogram state aliased: %v %v", n, ok)
	}
}

func TestWritePromRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("rheem_atoms_total", "Atoms.", "platform", "status").With("java", "ok").Add(4)
	r.GaugeVec("rheem_occupancy", "Occupancy.", "platform").With(`we"ird\pla
tform`).Set(1.5)
	r.HistogramVec("rheem_atom_latency_seconds", "Latency.", LatencyBuckets, "platform").
		With("sparksim").Observe(0.003)
	r.SetFunc("rheem_breaker_state", "Breaker.", "gauge", []string{"platform"}, func() []Sample {
		return []Sample{{Labels: []Label{{Name: "platform", Value: "java"}}, Value: 0}}
	})

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	families, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition does not parse:\n%s\nerror: %v", out, err)
	}
	byName := map[string]ParsedFamily{}
	for _, f := range families {
		byName[f.Name] = f
	}
	atoms := byName["rheem_atoms_total"]
	if atoms.Type != "counter" || len(atoms.Samples) != 1 {
		t.Fatalf("rheem_atoms_total parsed wrong: %+v", atoms)
	}
	s := atoms.Samples[0]
	if s.Value != 4 || s.Labels["platform"] != "java" || s.Labels["status"] != "ok" {
		t.Fatalf("sample parsed wrong: %+v", s)
	}
	if got := byName["rheem_occupancy"].Samples[0].Labels["platform"]; got != "we\"ird\\pla\ntform" {
		t.Fatalf("label escaping did not round-trip: %q", got)
	}
	hist := byName["rheem_atom_latency_seconds"]
	if hist.Type != "histogram" {
		t.Fatalf("histogram type = %q", hist.Type)
	}
	var count float64
	for _, s := range hist.Samples {
		if s.Name == "rheem_atom_latency_seconds_count" {
			count = s.Value
		}
	}
	if count != 1 {
		t.Fatalf("histogram count = %v", count)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	cases := []string{
		"rheem_x 1\n", // sample without TYPE
		"# TYPE rheem_x counter\nrheem_x notnum\n", // bad value
		"# TYPE rheem_x wat\n",                     // bad type
		"# TYPE 9bad counter\n",                    // bad name
		"# TYPE rheem_h histogram\nrheem_h_bucket{le=\"1\"} 1\nrheem_h_sum 1\n", // no +Inf/_count
	}
	for _, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm accepted %q", in)
		}
	}
}

func TestCheckName(t *testing.T) {
	for _, good := range []string{"a", "rheem_atoms_total", "A:b_9"} {
		if err := checkName(good); err != nil {
			t.Errorf("checkName(%q) = %v", good, err)
		}
	}
	for _, bad := range []string{"", "9x", "a-b", "a b", "é"} {
		if err := checkName(bad); err == nil {
			t.Errorf("checkName(%q) accepted", bad)
		}
	}
}
