// Cross-platform differential conformance suite. Every logical
// operator kind is mapped on all three bundled platforms, and the
// paper's central promise is that platform choice is a *cost* decision,
// never a *semantics* decision (§2: "the same logical plan can run on
// any platform with the same result"). This suite enforces that: each
// plan shape in the battery runs on every platform and at shards=1 vs
// shards=4, and the canonicalized outputs must be byte-identical.
//
// Canonicalization sorts the individual binary record encodings: the
// hash-grouping engines iterate Go maps, so even a single platform's
// output order is unspecified for grouped shapes — the multiset is the
// contract, and the sorted encoding is its canonical form.
package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/executor"
	"rheem/internal/core/optimizer"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

// confPlatforms are the conformance targets: every platform that maps
// the full operator set.
var confPlatforms = []engine.PlatformID{javaengine.ID, sparksim.ID, relengine.ID}

func confRegistry(t *testing.T, columnar bool) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{Columnar: columnar}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := relengine.Register(reg, nil, relengine.Config{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// canonical returns the sorted individual binary encodings of the
// records — the canonical multiset form outputs are compared in.
func canonical(t *testing.T, recs []data.Record) string {
	t.Helper()
	enc := make([]string, len(recs))
	for i, r := range recs {
		var buf bytes.Buffer
		if _, err := data.WriteBinary(&buf, []data.Record{r}); err != nil {
			t.Fatal(err)
		}
		enc[i] = buf.String()
	}
	sort.Strings(enc)
	return strings.Join(enc, "\x00")
}

// forEachOp walks a physical plan's operators, descending into loop
// bodies (which share the plan's ID space).
func forEachOp(p *physical.Plan, fn func(*physical.Operator)) {
	for _, op := range p.Ops {
		fn(op)
		if op.Body != nil {
			forEachOp(op.Body, fn)
		}
	}
}

// confCase is one plan shape of the battery. build wires the shape
// from the builder's sources to a Collect sink.
type confCase struct {
	name    string
	sources int  // number of sources build expects (default 1)
	loop    bool // loops pin the whole plan (FixedPlatform) instead of splitting the source off
	build   func(b *plan.Builder, srcs []*plan.Operator)
}

// runConformance executes one case on one platform with the given
// shard fan-out and returns the canonicalized output. The sources are
// pinned to a *different* feeder platform so the compute chain is a
// separate atom with an external input — the shape sharding applies
// to — and every result crosses a real platform boundary. columnar
// toggles the java engine's vectorized batch path.
func runConformance(t *testing.T, c confCase, target engine.PlatformID, shards int, columnar bool) string {
	t.Helper()
	return runConformanceCal(t, c, target, shards, columnar, nil)
}

// runConformanceCal is runConformance with a cost calibrator threaded
// into both the optimizer and the executor (mid-run re-planning), the
// way rheem.Execute wires one — the calibration differential suite's
// entry point.
func runConformanceCal(t *testing.T, c confCase, target engine.PlatformID, shards int, columnar bool, cal *cost.Calibrator) string {
	t.Helper()
	reg := confRegistry(t, columnar)
	feeder := javaengine.ID
	if target == javaengine.ID {
		feeder = sparksim.ID
	}

	b := plan.NewBuilder(fmt.Sprintf("conf-%s-%s-%d", c.name, target, shards))
	ns := c.sources
	if ns == 0 {
		ns = 1
	}
	srcs := make([]*plan.Operator, ns)
	for i := range srcs {
		recs := confRecords(97+i*13, i)
		srcs[i] = b.Source(fmt.Sprintf("src%d", i), plan.Collection(recs))
		srcs[i].CardHint = int64(len(recs))
	}
	c.build(b, srcs)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}

	opts := optimizer.Options{DisableRules: true, Shards: shards, Calibration: cal}
	if c.loop {
		opts.FixedPlatform = target
	} else {
		fa := map[int]engine.PlatformID{}
		forEachOp(pp, func(op *physical.Operator) {
			if op.Kind() == plan.KindSource {
				fa[op.ID] = feeder
			} else {
				fa[op.ID] = target
			}
		})
		opts.ForcedAssignments = fa
	}
	ep, err := optimizer.Optimize(pp, reg, opts)
	if err != nil {
		t.Fatalf("%s on %s: optimize: %v", c.name, target, err)
	}
	res, err := executor.Run(ep, reg, executor.Options{Shards: shards, Calibration: cal})
	if err != nil {
		t.Fatalf("%s on %s (shards=%d): %v", c.name, target, shards, err)
	}
	return canonical(t, res.Records)
}

// confRecords is a deterministic two-field dataset with duplicate keys
// (field 0 mod small numbers collides) and a salt so multiple sources
// differ.
func confRecords(n, salt int) []data.Record {
	out := make([]data.Record, n)
	for i := range out {
		out[i] = data.NewRecord(
			data.Int(int64(i+salt)),
			data.Str(fmt.Sprintf("v%d", (i*7+salt)%23)),
		)
	}
	return out
}

func modKey(k int64) plan.KeyFunc {
	return func(r data.Record) (data.Value, error) {
		return data.Int(r.Field(0).Int() % k), nil
	}
}

var sumReduce plan.ReduceFunc = func(a, b data.Record) (data.Record, error) {
	return data.NewRecord(a.Field(0), data.Int(a.Field(1).Int()+b.Field(1).Int())), nil
}

// conformanceBattery covers every operator kind mapped on more than
// one platform: the record-wise trio, every combining kind, grouping,
// sampling, the multi-input operators and both loop kinds (which also
// exercise Source, Sink and LoopInput on each platform).
func conformanceBattery() []confCase {
	return []confCase{
		{name: "map", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.Map(s[0], func(r data.Record) (data.Record, error) {
				return data.NewRecord(r.Field(0), data.Int(r.Field(0).Int()*3+1)), nil
			}))
		}},
		{name: "flatmap", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.FlatMap(s[0], func(r data.Record) ([]data.Record, error) {
				// Variable fan-out, including dropping records.
				k := r.Field(0).Int() % 3
				out := make([]data.Record, k)
				for i := range out {
					out[i] = data.NewRecord(r.Field(0), data.Int(int64(i)))
				}
				return out, nil
			}))
		}},
		{name: "filter", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.Filter(s[0], func(r data.Record) (bool, error) {
				return r.Field(0).Int()%3 != 1, nil
			}))
		}},
		{name: "reduce-by-key", build: func(b *plan.Builder, s []*plan.Operator) {
			m := b.Map(s[0], func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int()%7), data.Int(1)), nil
			})
			b.Collect(b.ReduceByKey(m, modKey(7), sumReduce))
		}},
		{name: "reduce", build: func(b *plan.Builder, s []*plan.Operator) {
			m := b.Map(s[0], func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(0), r.Field(0)), nil
			})
			b.Collect(b.Reduce(m, sumReduce))
		}},
		{name: "count", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.Count(s[0]))
		}},
		{name: "distinct", build: func(b *plan.Builder, s []*plan.Operator) {
			m := b.Map(s[0], func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int() % 11)), nil
			})
			b.Collect(b.Distinct(m))
		}},
		{name: "sort", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.Sort(s[0], modKey(5), true))
		}},
		{name: "group-by", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.GroupBy(s[0], modKey(4), func(key data.Value, group []data.Record) ([]data.Record, error) {
				var sum int64
				for _, r := range group {
					sum += r.Field(0).Int()
				}
				return []data.Record{data.NewRecord(key, data.Int(sum), data.Int(int64(len(group))))}, nil
			}))
		}},
		{name: "sample", build: func(b *plan.Builder, s []*plan.Operator) {
			// First-N sampling on every platform: deterministic, and the
			// upstream sort makes the N records platform-independent.
			b.Collect(b.Sample(b.Sort(s[0], modKey(97), false), 10))
		}},
		{name: "union", sources: 2, build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.Union(s[0], s[1]))
		}},
		{name: "join", sources: 2, build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.Join(s[0], s[1], modKey(6), modKey(6)))
		}},
		{name: "cartesian", sources: 2, build: func(b *plan.Builder, s []*plan.Operator) {
			l := b.Filter(s[0], func(r data.Record) (bool, error) { return r.Field(0).Int() < 8, nil })
			r := b.Filter(s[1], func(r data.Record) (bool, error) { return r.Field(0).Int() < 6, nil })
			b.Collect(b.Cartesian(l, r))
		}},
		{name: "theta-join", sources: 2, build: func(b *plan.Builder, s []*plan.Operator) {
			l := b.Filter(s[0], func(r data.Record) (bool, error) { return r.Field(0).Int() < 12, nil })
			r := b.Filter(s[1], func(r data.Record) (bool, error) { return r.Field(0).Int() < 12, nil })
			b.Collect(b.ThetaJoin(l, r, func(a, bb data.Record) (bool, error) {
				return a.Field(0).Int() < bb.Field(0).Int(), nil
			}))
		}},
		{name: "filter-col", build: func(b *plan.Builder, s []*plan.Operator) {
			// Declarative column predicate: vectorized on the java
			// engine's batch path, generated row UDF everywhere else.
			b.Collect(b.FilterWhere(s[0], 0, plan.GreaterEq, data.Int(30)))
		}},
		{name: "project-col", build: func(b *plan.Builder, s []*plan.Operator) {
			b.Collect(b.ProjectCols(s[0], 1, 0))
		}},
		{name: "agg-col", build: func(b *plan.Builder, s []*plan.Operator) {
			m := b.Map(s[0], func(r data.Record) (data.Record, error) {
				k := r.Field(0).Int()
				return data.NewRecord(data.Int(k), data.Int(k * k % 19), data.Float(float64(k) / 4)), nil
			})
			b.Collect(b.AggregateCols(m, plan.AggSum, plan.AggMax, plan.AggMin))
		}},
		{name: "columnar-chain", build: func(b *plan.Builder, s []*plan.Operator) {
			// The hot-path shape the columnar scenario benchmarks:
			// filter → project → aggregate, hinted end to end.
			f := b.FilterWhere(s[0], 0, plan.Less, data.Int(60))
			p := b.ProjectCols(f, 0)
			b.Collect(b.AggregateCols(p, plan.AggSum))
		}},
		{name: "repeat", loop: true, build: func(b *plan.Builder, s []*plan.Operator) {
			bb := plan.NewBodyBuilder("body")
			li := bb.LoopInput("st")
			bb.Collect(bb.Map(li, func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int()+1), r.Field(1)), nil
			}))
			b.Collect(b.Repeat(s[0], 3, bb.MustBuild()))
		}},
		{name: "do-while", loop: true, build: func(b *plan.Builder, s []*plan.Operator) {
			bb := plan.NewBodyBuilder("body")
			li := bb.LoopInput("st")
			bb.Collect(bb.Map(li, func(r data.Record) (data.Record, error) {
				return data.NewRecord(data.Int(r.Field(0).Int()*2), r.Field(1)), nil
			}))
			b.Collect(b.DoWhile(s[0], func(iter int, recs []data.Record) (bool, error) {
				return iter < 3, nil
			}, 10, bb.MustBuild()))
		}},
	}
}

// TestCrossPlatformConformance is the differential suite: for every
// plan shape, every platform × shard width must reproduce the java
// shards=1 reference output, canonicalized, byte for byte.
func TestCrossPlatformConformance(t *testing.T) {
	for _, c := range conformanceBattery() {
		t.Run(c.name, func(t *testing.T) {
			ref := runConformance(t, c, javaengine.ID, 1, false)
			if ref == "" && c.name != "flatmap" {
				// Every battery case is built to produce output; an empty
				// reference means the case itself is broken.
				t.Fatalf("reference output for %s is empty", c.name)
			}
			for _, target := range confPlatforms {
				for _, shards := range []int{1, 4} {
					if target == javaengine.ID && shards == 1 {
						continue // the reference itself
					}
					got := runConformance(t, c, target, shards, false)
					if got != ref {
						t.Errorf("%s on %s with shards=%d diverges from the java shards=1 reference",
							c.name, target, shards)
					}
				}
			}
		})
	}
}

// TestCrossPlatformConformanceColumnar re-runs the full battery with
// the java engine's vectorized batch path enabled and compares every
// output against the row-path reference: columnar execution must be a
// pure physical substitution — byte-identical results, sharded or not.
func TestCrossPlatformConformanceColumnar(t *testing.T) {
	for _, c := range conformanceBattery() {
		t.Run(c.name, func(t *testing.T) {
			ref := runConformance(t, c, javaengine.ID, 1, false)
			for _, shards := range []int{1, 4} {
				got := runConformance(t, c, javaengine.ID, shards, true)
				if got != ref {
					t.Errorf("%s with columnar batches (shards=%d) diverges from the row-path reference",
						c.name, shards)
				}
			}
		})
	}
}

// TestConformanceCoversAllSharedKinds guards the battery itself: if a
// new operator kind is mapped on two or more platforms, it must join
// the conformance battery. The set of exercised kinds is derived from
// the battery's own plans, so the check can't drift from the cases.
func TestConformanceCoversAllSharedKinds(t *testing.T) {
	reg := confRegistry(t, false)
	mappedOn := map[plan.OpKind]map[engine.PlatformID]bool{}
	for _, m := range reg.Mappings() {
		if mappedOn[m.Kind] == nil {
			mappedOn[m.Kind] = map[engine.PlatformID]bool{}
		}
		mappedOn[m.Kind][m.Platform] = true
	}

	exercised := map[plan.OpKind]bool{}
	for _, c := range conformanceBattery() {
		b := plan.NewBuilder("cover-" + c.name)
		ns := c.sources
		if ns == 0 {
			ns = 1
		}
		srcs := make([]*plan.Operator, ns)
		for i := range srcs {
			srcs[i] = b.Source(fmt.Sprintf("s%d", i), plan.Collection(nil))
		}
		c.build(b, srcs)
		pp, err := physical.FromLogical(b.MustBuild())
		if err != nil {
			t.Fatal(err)
		}
		forEachOp(pp, func(op *physical.Operator) { exercised[op.Kind()] = true })
	}

	for kind, platforms := range mappedOn {
		if len(platforms) >= 2 && !exercised[kind] {
			t.Errorf("operator kind %s is mapped on %d platforms but missing from the conformance battery",
				kind, len(platforms))
		}
	}
}

// warmedConfCalibrator builds a calibrator carrying extreme,
// deliberately-adversarial corrections: every operator kind on every
// platform gets a large cost bias (alternating direction per platform,
// so the learned factors disagree wildly between platforms), and every
// kind gets a cardinality factor pushed to the clamp. Enough samples
// per cell clear the min-sample guard, so all of it is applied.
func warmedConfCalibrator(t *testing.T) *cost.Calibrator {
	t.Helper()
	cal := cost.NewCalibrator(cost.CalibratorConfig{})
	var atoms []cost.AtomObs
	var cards []cost.CardObs
	for k := plan.KindSource; k <= plan.KindSink; k++ {
		kind := k.String()
		for i, pl := range confPlatforms {
			est, act := time.Millisecond, 200*time.Millisecond
			if i%2 == 1 {
				est, act = 200*time.Millisecond, time.Millisecond
			}
			for j := 0; j < 5; j++ {
				atoms = append(atoms, cost.AtomObs{
					Kind: kind, Platform: string(pl), Estimated: est, Actual: act,
				})
			}
		}
		for j := 0; j < 5; j++ {
			cards = append(cards, cost.CardObs{Kind: kind, Estimated: 10, Actual: 100_000})
		}
	}
	cal.Fold(atoms, cards)
	snap := cal.Snapshot()
	if len(snap.Cost) == 0 || len(snap.Card) == 0 {
		t.Fatal("synthetic warm-up produced no cells")
	}
	for _, c := range snap.Cost {
		if !c.Applied {
			t.Fatalf("cell %s/%s still guarded after warm-up", c.Kind, c.Platform)
		}
	}
	return cal
}

// TestConformanceCalibrationDifferential is the calibration safety
// suite: results are a semantics contract, calibration is a cost
// lever. For every battery case on every platform, outputs with
// calibration off (nil), on-but-empty, and warmed with extreme hostile
// factors must be byte-identical — at shards=1 and shards=4, since
// calibrated cardinalities also feed the sharding decision.
func TestConformanceCalibrationDifferential(t *testing.T) {
	warm := warmedConfCalibrator(t)
	empty := cost.NewCalibrator(cost.CalibratorConfig{})
	variants := []struct {
		name string
		cal  *cost.Calibrator
	}{{"empty", empty}, {"warmed", warm}}
	for _, c := range conformanceBattery() {
		t.Run(c.name, func(t *testing.T) {
			for _, target := range confPlatforms {
				ref := runConformance(t, c, target, 1, false)
				for _, v := range variants {
					for _, shards := range []int{1, 4} {
						got := runConformanceCal(t, c, target, shards, false, v.cal)
						if got != ref {
							t.Errorf("%s on %s: calibration=%s shards=%d changed the output",
								c.name, target, v.name, shards)
						}
					}
				}
			}
		})
	}
	if warm.Folds() != 1 {
		t.Errorf("differential runs folded into the calibrator (folds=%d, want 1): the executor must never feed it", warm.Folds())
	}
}
