// Package engine defines RHEEM's platform layer SPI: what a data
// processing platform must provide to be plugged into the core.
//
// Per the paper (§3.1–§3.2), plugging in a platform means implementing
// execution operators ("the platform-dependent implementation of a
// physical operator", working on batches of data quanta rather than
// one quantum at a time) and declaring *mappings* between physical and
// execution operators — "developers will provide only a declarative
// specification of such mappings; the system will use them to translate
// physical operators to execution operators". Here a Mapping is a plain
// value carrying the platform, the (operator kind, algorithm) pair it
// implements, a pluggable cost model, and an optional context hint for
// the optimizer. The Registry holds platforms and mappings; nothing in
// the optimizer is platform-specific.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
)

// PlatformID identifies a registered processing platform.
type PlatformID string

// Profile is a platform's data processing profile (paper §8, challenge
// 2): the kind of processing it supports, used by the optimizer to
// prune platforms that cannot run an operator at all.
type Profile struct {
	Description string
	Distributed bool // parallel, partitioned execution
	Relational  bool // table-native execution
	Streaming   bool // reserved; no bundled platform streams yet
}

// Metrics reports what executing (part of) a plan actually did. Wall
// is measured host time; Sim is the virtual cluster clock (see
// DESIGN.md §5 "Real execution + virtual clock") — identical to Wall
// for single-node platforms, but including modelled parallelism, task
// dispatch and shuffle time for simulated distributed platforms.
type Metrics struct {
	Wall          time.Duration
	Sim           time.Duration
	Jobs          int   // platform jobs launched (atoms × iterations)
	InRecords     int64 // records consumed from input channels
	OutRecords    int64 // records produced to output channels
	ShuffledBytes int64 // bytes through simulated shuffles
	MovedBytes    int64 // bytes through cross-platform conversions
	Conversions   int   // converter steps executed
	Retries       int   // atom executions retried after failures
}

// Add accumulates other into m.
func (m *Metrics) Add(o Metrics) {
	m.Wall += o.Wall
	m.Sim += o.Sim
	m.Jobs += o.Jobs
	m.InRecords += o.InRecords
	m.OutRecords += o.OutRecords
	m.ShuffledBytes += o.ShuffledBytes
	m.MovedBytes += o.MovedBytes
	m.Conversions += o.Conversions
	m.Retries += o.Retries
}

// AtomKind distinguishes platform-executed atoms from loops, which the
// executor itself drives (unrolling iterations across the atom's
// platform, charging per-iteration job overhead — the Figure 2 effect).
type AtomKind int

// Task atom kinds.
const (
	AtomCompute AtomKind = iota
	AtomLoop
)

// TaskAtom is "a sub-task to be executed on a single data processing
// platform" (§3.1) — a connected fragment of the physical plan whose
// operators all run on one platform, exchanging data internally in the
// platform's native format. Only Exits cross the atom boundary.
type TaskAtom struct {
	ID       int
	Kind     AtomKind
	Platform PlatformID
	Ops      []*physical.Operator // topological order within the atom
	Exits    []*physical.Operator // operators whose output leaves the atom

	// LoopOp is set for AtomLoop atoms: the Repeat/DoWhile operator.
	LoopOp *physical.Operator

	opSet map[int]bool
}

// Contains reports whether the atom holds the physical operator id.
func (a *TaskAtom) Contains(opID int) bool {
	if a.opSet == nil {
		a.opSet = make(map[int]bool, len(a.Ops))
		for _, op := range a.Ops {
			a.opSet[op.ID] = true
		}
		if a.LoopOp != nil {
			a.opSet[a.LoopOp.ID] = true
		}
	}
	return a.opSet[opID]
}

// String renders the atom for plan explanations.
func (a *TaskAtom) String() string {
	names := ""
	ops := a.Ops
	if a.Kind == AtomLoop {
		ops = []*physical.Operator{a.LoopOp}
	}
	for i, op := range ops {
		if i > 0 {
			names += " → "
		}
		names += op.Name()
	}
	return fmt.Sprintf("atom#%d@%s{%s}", a.ID, a.Platform, names)
}

// AtomInputs maps a physical operator id to its external input
// channels, indexed by input slot. Slots fed from inside the atom are
// absent.
type AtomInputs map[int]map[int]*channel.Channel

// Platform is a pluggable data processing platform.
type Platform interface {
	// ID returns the platform's unique identifier.
	ID() PlatformID
	// Profile describes the platform's processing profile.
	Profile() Profile
	// NativeFormat is the channel format the platform computes in.
	NativeFormat() channel.Format
	// ExecuteAtom runs a compute atom: it converts nothing (inputs
	// arrive already in native format), executes the atom's operators
	// in order, and returns a native-format channel per exit operator.
	//
	// ExecuteAtom MUST be safe for concurrent calls: the executor
	// schedules independent atoms in parallel, so any state shared
	// across executions (a table catalog, stage accounting, caches)
	// has to be synchronized by the platform. Per-execution state
	// should live in a per-call value, the way the bundled platforms
	// allocate a fresh DatasetOps per atom. Input channels may be
	// shared with concurrently executing atoms and must be treated as
	// immutable.
	ExecuteAtom(ctx context.Context, atom *TaskAtom, inputs AtomInputs) (map[int]*channel.Channel, Metrics, error)
	// RegisterConverters adds the platform's channel converters
	// (native ↔ Collection at minimum) to the conversion graph.
	RegisterConverters(reg *channel.Registry)
}

// Sharder is an optional Platform capability: split a native-format
// channel into at most p shard channels for intra-atom data
// parallelism, without bouncing through the hub Collection format. The
// split must be contiguous and order-preserving — concatenating the
// shards in index order replays the original channel's record sequence
// — and every returned shard must be non-empty. Platforms that do not
// implement Sharder still participate in sharded execution; the
// executor splits their inputs through the Collection format instead.
type Sharder interface {
	SplitNative(ch *channel.Channel, p int) ([]*channel.Channel, error)
}

// Vectorized is an optional Platform capability: the platform executes
// some operators directly on the columnar batch format
// (channel.Batch). SupportsBatch reports, per physical operator,
// whether its columnar kernel applies — typically requiring the
// logical operator to carry declarative column hints (plan.ColPred,
// plan.ColProject, plan.ColAgg), since an opaque UDF closure cannot be
// vectorized. The executor delivers external inputs of supporting
// operators as Batch channels instead of the platform's native format,
// and the optimizer prices such edges with the cheaper of the two
// conversion paths. The columnar result must be byte-identical to the
// row path's — the hints are an execution strategy, never a semantics
// change.
type Vectorized interface {
	SupportsBatch(op *physical.Operator) bool
}

// Mapping declares that a platform implements a (kind, algorithm)
// physical operator, at the cost the model estimates. Hint carries
// free-form context for the optimizer, mirroring the paper's mapping
// "context information ... to provide hints to the optimizer".
type Mapping struct {
	Platform PlatformID
	Kind     plan.OpKind
	Algo     physical.Algorithm
	Cost     cost.Model
	Hint     string
}

// Registry holds the registered platforms, their declarative operator
// mappings, and the shared channel-conversion graph. It is the single
// source the optimizer and executor consult; applications never talk
// to platforms directly. Lookups and registrations are safe for
// concurrent use — the executor resolves platforms and mappings from
// many scheduler goroutines at once.
type Registry struct {
	mu        sync.RWMutex
	platforms map[PlatformID]Platform
	order     []PlatformID
	mappings  []Mapping
	channels  *channel.Registry
	health    *Health
	stats     *Stats
}

// NewRegistry returns an empty registry with a fresh conversion graph.
func NewRegistry() *Registry {
	r := &Registry{
		platforms: make(map[PlatformID]Platform),
		channels:  channel.NewRegistry(),
		health:    newHealth(),
		stats:     newStats(),
	}
	// The columnar batch format is a driver format like Collection, not
	// a platform's: every registry carries its hub edges so any pair of
	// platforms can exchange batches once one of them vectorizes.
	channel.RegisterBatchConverters(r.channels)
	// Breaker transitions feed the per-platform counters, so trips and
	// recoveries are visible without subscribing to the health tracker.
	r.health.observe = r.stats.breakerTransition
	return r
}

// RegisterPlatform adds a platform and its channel converters.
func (r *Registry) RegisterPlatform(p Platform) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.platforms[p.ID()]; dup {
		return fmt.Errorf("engine: platform %q registered twice", p.ID())
	}
	r.platforms[p.ID()] = p
	r.order = append(r.order, p.ID())
	p.RegisterConverters(r.channels)
	return nil
}

// RegisterMapping adds a declarative operator mapping. The platform
// must already be registered.
func (r *Registry) RegisterMapping(m Mapping) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.platforms[m.Platform]; !ok {
		return fmt.Errorf("engine: mapping for unknown platform %q", m.Platform)
	}
	if m.Cost == nil {
		return fmt.Errorf("engine: mapping %v/%v/%v lacks a cost model", m.Platform, m.Kind, m.Algo)
	}
	r.mappings = append(r.mappings, m)
	return nil
}

// Platform resolves a platform by id.
func (r *Registry) Platform(id PlatformID) (Platform, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.platforms[id]
	return p, ok
}

// PlatformIDs returns the registered platform IDs in registration
// order — the label set the telemetry layer enumerates gauges over.
func (r *Registry) PlatformIDs() []PlatformID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]PlatformID, len(r.order))
	copy(out, r.order)
	return out
}

// Platforms returns all platforms in registration order.
func (r *Registry) Platforms() []Platform {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Platform, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.platforms[id])
	}
	return out
}

// MappingFor finds the mapping a platform declares for a (kind, algo)
// pair, falling back to the platform's Default-algorithm mapping for
// the kind when no exact algorithm match exists.
func (r *Registry) MappingFor(p PlatformID, kind plan.OpKind, algo physical.Algorithm) (Mapping, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var fallback Mapping
	haveFallback := false
	for _, m := range r.mappings {
		if m.Platform != p || m.Kind != kind {
			continue
		}
		if m.Algo == algo {
			return m, true
		}
		if m.Algo == physical.Default {
			fallback, haveFallback = m, true
		}
	}
	return fallback, haveFallback
}

// PlatformsFor lists platforms declaring any mapping for the kind.
func (r *Registry) PlatformsFor(kind plan.OpKind) []PlatformID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[PlatformID]bool{}
	var out []PlatformID
	for _, id := range r.order {
		for _, m := range r.mappings {
			if m.Platform == id && m.Kind == kind && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Channels returns the shared conversion graph.
func (r *Registry) Channels() *channel.Registry { return r.channels }

// Health returns the registry's platform health tracker (one circuit
// breaker per platform, fed by the executor).
func (r *Registry) Health() *Health { return r.health }

// Stats returns the registry's per-platform execution counters (atoms
// executed, records in/out, error classes, breaker transitions), fed
// by the executor. Counters are cumulative across runs; callers
// wanting per-phase deltas can Reset between runs.
func (r *Registry) Stats() *Stats { return r.stats }

// Mappings returns a copy of every registered operator mapping.
func (r *Registry) Mappings() []Mapping {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Mapping, len(r.mappings))
	copy(out, r.mappings)
	return out
}

// CloneMappings registers, for the platform to, a copy of every mapping
// the platform from declares (same kind, algorithm, cost model, hint).
// It is how a wrapper platform — a fault injector, a proxy — inherits
// the operator coverage of the platform it wraps. Both platforms must
// already be registered.
func (r *Registry) CloneMappings(from, to PlatformID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.platforms[to]; !ok {
		return fmt.Errorf("engine: cloning mappings to unknown platform %q", to)
	}
	var cloned int
	for _, m := range r.mappings {
		if m.Platform != from {
			continue
		}
		m.Platform = to
		r.mappings = append(r.mappings, m)
		cloned++
	}
	if cloned == 0 {
		return fmt.Errorf("engine: platform %q has no mappings to clone", from)
	}
	return nil
}

// RewriteCosts replaces the cost model of every mapping a platform
// declares with wrap(old), returning how many mappings were rewritten.
// MappingFor returns the first exact match, so appending a new mapping
// cannot override an existing one — in-place rewrite is the supported
// way to perturb or instrument a platform's declared costs (the
// calibration replay experiment injects a deliberate mis-estimate this
// way and watches the calibrator correct it).
func (r *Registry) RewriteCosts(p PlatformID, wrap func(cost.Model) cost.Model) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.mappings {
		if r.mappings[i].Platform != p {
			continue
		}
		r.mappings[i].Cost = wrap(r.mappings[i].Cost)
		n++
	}
	return n
}

// DescribeMappings renders the declarative mapping table — one line
// per (platform, operator kind, algorithm) with its context hint. The
// paper envisions mappings as first-class declarative data the
// optimizer consumes (§3.1, §8.1); this is that data, made inspectable.
func (r *Registry) DescribeMappings() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sb strings.Builder
	for _, id := range r.order {
		for _, m := range r.mappings {
			if m.Platform != id {
				continue
			}
			fmt.Fprintf(&sb, "%-12s %-12s %-16s", m.Platform, m.Kind, m.Algo)
			if m.Hint != "" {
				fmt.Fprintf(&sb, " # %s", m.Hint)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
