package engine

import (
	"sort"
	"sync"
	"time"
)

// BreakerState is a platform circuit breaker's state.
type BreakerState int

// Circuit breaker states. A platform starts Closed (healthy). After
// HealthConfig.Threshold consecutive execution failures it trips Open
// (quarantined): the optimizer's failover re-planning excludes it.
// Once HealthConfig.Cooldown has elapsed the breaker relaxes to
// HalfOpen — the platform is admitted again, and the next execution
// outcome decides: success closes the breaker, failure re-opens it.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String renders the state for logs and experiment tables.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// HealthConfig tunes the per-platform circuit breakers.
type HealthConfig struct {
	// Threshold is the number of consecutive failures that quarantines
	// a platform (default 3).
	Threshold int
	// Cooldown is how long a quarantined platform stays Open before a
	// half-open probe re-admits it (default 30s).
	Cooldown time.Duration
}

func (c *HealthConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
}

// Health tracks per-platform execution health for a Registry: one
// circuit breaker per platform, fed by the executor after every atom
// execution attempt. All methods are safe for concurrent use — the
// executor reports outcomes from many scheduler goroutines at once.
type Health struct {
	mu      sync.Mutex
	cfg     HealthConfig
	now     func() time.Time // injectable clock for deterministic tests
	entries map[PlatformID]*breakerEntry
	// observe, when set, is called (under mu) on every breaker state
	// transition — the registry wires it to its Stats counters.
	observe func(id PlatformID, from, to BreakerState)
}

type breakerEntry struct {
	state       BreakerState
	consecutive int       // consecutive failures while Closed
	openedAt    time.Time // when the breaker last tripped Open
}

func newHealth() *Health {
	h := &Health{now: time.Now, entries: make(map[PlatformID]*breakerEntry)}
	h.cfg.defaults()
	return h
}

// Configure replaces the breaker tuning; zero fields keep defaults.
// Existing breaker states are preserved.
func (h *Health) Configure(cfg HealthConfig) {
	cfg.defaults()
	h.mu.Lock()
	h.cfg = cfg
	h.mu.Unlock()
}

// setClock injects a fake clock (tests only).
func (h *Health) setClock(now func() time.Time) {
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
}

func (h *Health) entry(id PlatformID) *breakerEntry {
	e := h.entries[id]
	if e == nil {
		e = &breakerEntry{}
		h.entries[id] = e
	}
	return e
}

// transitionLocked moves the breaker to a new state, notifying the
// observer when the state actually changes. The caller holds mu.
func (h *Health) transitionLocked(id PlatformID, e *breakerEntry, to BreakerState) {
	if e.state == to {
		return
	}
	from := e.state
	e.state = to
	if h.observe != nil {
		h.observe(id, from, to)
	}
}

// refreshLocked applies the cooldown transition Open → HalfOpen.
func (h *Health) refreshLocked(id PlatformID, e *breakerEntry) {
	if e.state == BreakerOpen && h.now().Sub(e.openedAt) >= h.cfg.Cooldown {
		h.transitionLocked(id, e, BreakerHalfOpen)
	}
}

// ReportSuccess records a successful execution on the platform: the
// failure streak resets and a half-open (or still-open) breaker closes
// — any completed execution is direct evidence the platform works.
func (h *Health) ReportSuccess(id PlatformID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entry(id)
	e.consecutive = 0
	h.transitionLocked(id, e, BreakerClosed)
}

// ReportFailure records a failed execution attempt and returns whether
// the platform is now quarantined. A failure during a half-open probe
// re-opens the breaker immediately.
func (h *Health) ReportFailure(id PlatformID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entry(id)
	h.refreshLocked(id, e)
	switch e.state {
	case BreakerHalfOpen:
		h.transitionLocked(id, e, BreakerOpen)
		e.openedAt = h.now()
	case BreakerClosed:
		e.consecutive++
		if e.consecutive >= h.cfg.Threshold {
			h.transitionLocked(id, e, BreakerOpen)
			e.openedAt = h.now()
		}
	case BreakerOpen:
		e.openedAt = h.now() // still failing: extend the quarantine
	}
	return e.state == BreakerOpen
}

// State returns the platform's current breaker state, applying the
// cooldown transition (Open becomes HalfOpen once Cooldown elapses).
func (h *Health) State(id PlatformID) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entry(id)
	h.refreshLocked(id, e)
	return e.state
}

// Quarantined reports whether the platform's breaker is Open.
func (h *Health) Quarantined(id PlatformID) bool {
	return h.State(id) == BreakerOpen
}

// QuarantinedPlatforms lists all platforms whose breakers are Open,
// sorted for deterministic iteration.
func (h *Health) QuarantinedPlatforms() []PlatformID {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []PlatformID
	for id, e := range h.entries {
		h.refreshLocked(id, e)
		if e.state == BreakerOpen {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns every tracked platform's breaker state. Platforms
// that never reported an outcome are absent (implicitly Closed).
func (h *Health) Snapshot() map[PlatformID]BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[PlatformID]BreakerState, len(h.entries))
	for id, e := range h.entries {
		h.refreshLocked(id, e)
		out[id] = e.state
	}
	return out
}
