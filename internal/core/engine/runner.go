package engine

import (
	"context"
	"errors"
	"fmt"

	"rheem/internal/core/channel"
	"rheem/internal/core/physical"
)

// DatasetOps is what a platform supplies to the generic atom runner:
// how to bring external channels into its native dataset type, how to
// export a native dataset as a channel, and how to execute one
// physical operator on native datasets. All three bundled platforms
// run atoms through RunAtom with their own DatasetOps, so the
// topological bookkeeping lives in exactly one place.
type DatasetOps interface {
	// FromChannel imports a native-format channel as a native dataset.
	FromChannel(ch *channel.Channel) (any, error)
	// ToChannel exports a native dataset as a native-format channel.
	ToChannel(ds any) (*channel.Channel, error)
	// ExecOp executes one physical operator over native datasets.
	ExecOp(ctx context.Context, op *physical.Operator, inputs []any) (any, error)
}

// RunAtom executes a compute atom's operators in order, tracking
// intermediate native datasets, and exports the exits. It returns the
// exit channels keyed by physical operator id.
func RunAtom(ctx context.Context, d DatasetOps, atom *TaskAtom, inputs AtomInputs) (map[int]*channel.Channel, error) {
	if atom.Kind != AtomCompute {
		return nil, fmt.Errorf("engine: RunAtom on %v atom", atom.Kind)
	}
	native := make(map[int]any, len(atom.Ops))
	for _, op := range atom.Ops {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ins := make([]any, len(op.Inputs))
		for slot, in := range op.Inputs {
			if atom.Contains(in.ID) {
				ds, ok := native[in.ID]
				if !ok {
					return nil, fmt.Errorf("engine: atom#%d: %s needs %s before it ran", atom.ID, op.Name(), in.Name())
				}
				ins[slot] = ds
				continue
			}
			ch := inputs[op.ID][slot]
			if ch == nil {
				return nil, fmt.Errorf("engine: atom#%d: %s slot %d has no external channel", atom.ID, op.Name(), slot)
			}
			ds, err := d.FromChannel(ch)
			if err != nil {
				return nil, fmt.Errorf("engine: atom#%d: import for %s: %w", atom.ID, op.Name(), err)
			}
			ins[slot] = ds
		}
		out, err := d.ExecOp(ctx, op, ins)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			// Operator execution is deterministic — a UDF or kernel
			// error would recur on any platform, so mark it Fatal: the
			// executor must not retry or fail over.
			return nil, Fatal(fmt.Errorf("engine: atom#%d: %s: %w", atom.ID, op.Name(), err))
		}
		native[op.ID] = out
	}
	exits := make(map[int]*channel.Channel, len(atom.Exits))
	for _, ex := range atom.Exits {
		ds, ok := native[ex.ID]
		if !ok {
			return nil, fmt.Errorf("engine: atom#%d: exit %s never executed", atom.ID, ex.Name())
		}
		ch, err := d.ToChannel(ds)
		if err != nil {
			return nil, fmt.Errorf("engine: atom#%d: export of %s: %w", atom.ID, ex.Name(), err)
		}
		exits[ex.ID] = ch
	}
	return exits, nil
}
