package engine

import "errors"

// Error classification for the executor's retry policy (the paper's
// §4.2 "coping with failures" duty). A platform — or any layer between
// the executor and a platform — wraps an error to tell the executor how
// to react:
//
//   - Fatal errors are deterministic: re-running the atom, on this or
//     any other platform, would fail identically (a UDF bug, a plan
//     inconsistency). The executor fails the run immediately, without
//     retries and without cross-platform failover.
//   - Transient errors are environmental: a re-execution may succeed
//     (an injected fault, a lost worker, a timeout). Unclassified
//     errors are treated as transient too — platforms do not have to
//     opt in to be retried — so Transient exists to make the contract
//     explicit at injection sites.
//
// Both wrappers are invisible to errors.Is/errors.As chains: they
// implement Unwrap, so callers keep matching the underlying cause.

// fatalError marks an error as non-retryable.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// Fatal marks err as non-retryable: the executor fails the run without
// retrying or failing over. Fatal(nil) returns nil.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &fatalError{err: err}
}

// IsFatal reports whether err (or anything it wraps) was marked Fatal.
func IsFatal(err error) bool {
	var f *fatalError
	return errors.As(err, &f)
}

// transientError marks an error as explicitly retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as explicitly retryable. Unwrapped errors are
// already retried by default; the wrapper documents intent at the
// injection site and survives further fmt.Errorf("%w") wrapping.
// Transient(nil) returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err was explicitly marked Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}
