package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestErrorClassification(t *testing.T) {
	base := errors.New("boom")
	if Fatal(nil) != nil || Transient(nil) != nil {
		t.Error("wrapping nil must stay nil")
	}
	f := Fatal(base)
	if !IsFatal(f) || IsTransient(f) {
		t.Errorf("Fatal classification wrong: fatal=%v transient=%v", IsFatal(f), IsTransient(f))
	}
	tr := Transient(base)
	if !IsTransient(tr) || IsFatal(tr) {
		t.Errorf("Transient classification wrong")
	}
	// Wrappers must stay visible through further %w wrapping and keep
	// the cause reachable.
	wrapped := fmt.Errorf("executor: atom failed: %w", f)
	if !IsFatal(wrapped) {
		t.Error("Fatal lost through fmt.Errorf wrapping")
	}
	if !errors.Is(wrapped, base) {
		t.Error("cause lost through Fatal wrapper")
	}
	if IsFatal(tr) || IsFatal(errors.New("plain")) {
		t.Error("IsFatal false positives")
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	h := newHealth()
	h.Configure(HealthConfig{Threshold: 3, Cooldown: time.Hour})
	const id = PlatformID("p")
	for i := 0; i < 2; i++ {
		if h.ReportFailure(id) {
			t.Fatalf("quarantined after %d failures, threshold 3", i+1)
		}
	}
	if h.State(id) != BreakerClosed {
		t.Fatalf("state = %v before threshold", h.State(id))
	}
	if !h.ReportFailure(id) {
		t.Fatal("third consecutive failure did not quarantine")
	}
	if !h.Quarantined(id) || h.State(id) != BreakerOpen {
		t.Fatalf("state = %v after threshold", h.State(id))
	}
	if got := h.QuarantinedPlatforms(); len(got) != 1 || got[0] != id {
		t.Errorf("QuarantinedPlatforms = %v", got)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	h := newHealth()
	h.Configure(HealthConfig{Threshold: 3, Cooldown: time.Hour})
	const id = PlatformID("p")
	h.ReportFailure(id)
	h.ReportFailure(id)
	h.ReportSuccess(id)
	h.ReportFailure(id)
	h.ReportFailure(id)
	if h.Quarantined(id) {
		t.Error("non-consecutive failures quarantined the platform")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	h := newHealth()
	h.Configure(HealthConfig{Threshold: 1, Cooldown: time.Minute})
	now := time.Unix(1000, 0)
	h.setClock(func() time.Time { return now })
	const id = PlatformID("p")

	h.ReportFailure(id)
	if h.State(id) != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	// Before the cooldown the platform stays quarantined.
	now = now.Add(30 * time.Second)
	if h.State(id) != BreakerOpen {
		t.Fatal("breaker relaxed before cooldown")
	}
	// After the cooldown it becomes half-open: re-admitted for a probe.
	now = now.Add(31 * time.Second)
	if h.State(id) != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", h.State(id))
	}
	if h.Quarantined(id) {
		t.Error("half-open platform still reported quarantined")
	}
	// A failed probe re-opens immediately; a successful one closes.
	h.ReportFailure(id)
	if h.State(id) != BreakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	now = now.Add(2 * time.Minute)
	if h.State(id) != BreakerHalfOpen {
		t.Fatal("breaker did not relax again after second cooldown")
	}
	h.ReportSuccess(id)
	if h.State(id) != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if got := h.Snapshot(); got[id] != BreakerClosed {
		t.Errorf("snapshot = %v", got)
	}
}

func TestRegistryHealthSharedAndConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Health()
	if h == nil {
		t.Fatal("registry has no health tracker")
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			id := PlatformID(fmt.Sprintf("p%d", g%2))
			for i := 0; i < 100; i++ {
				h.ReportFailure(id)
				h.ReportSuccess(id)
				h.State(id)
				h.QuarantinedPlatforms()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestContextErrorsNotFatal(t *testing.T) {
	// RunAtom's fatal classification (a UDF error through a real
	// platform must not be retried) is exercised end-to-end in the
	// executor tests; here we pin the pass-through rule: cancellation
	// errors are never classified fatal.
	if IsFatal(context.Canceled) || IsFatal(context.DeadlineExceeded) {
		t.Error("bare context errors misclassified as fatal")
	}
}
