package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// fakePlatform is a minimal Platform for registry and runner tests. Its
// native format is Collection and its single execution operator
// appends a marker field to every record.
type fakePlatform struct {
	id PlatformID
}

func (f *fakePlatform) ID() PlatformID                      { return f.id }
func (f *fakePlatform) Profile() Profile                    { return Profile{Description: "fake"} }
func (f *fakePlatform) NativeFormat() channel.Format        { return channel.Collection }
func (f *fakePlatform) RegisterConverters(*channel.Registry) {}

func (f *fakePlatform) ExecuteAtom(ctx context.Context, atom *TaskAtom, inputs AtomInputs) (map[int]*channel.Channel, Metrics, error) {
	d := &fakeOps{}
	exits, err := RunAtom(ctx, d, atom, inputs)
	return exits, Metrics{Jobs: 1, Sim: time.Millisecond}, err
}

type fakeOps struct{}

func (fakeOps) FromChannel(ch *channel.Channel) (any, error) { return ch.AsCollection() }
func (fakeOps) ToChannel(ds any) (*channel.Channel, error) {
	return channel.NewCollection(ds.([]data.Record)), nil
}
func (fakeOps) ExecOp(_ context.Context, op *physical.Operator, inputs []any) (any, error) {
	lop := op.Logical
	switch lop.Kind() {
	case plan.KindSource:
		return lop.Source()
	case plan.KindMap:
		in := inputs[0].([]data.Record)
		out := make([]data.Record, len(in))
		for i, r := range in {
			nr, err := lop.Map(r)
			if err != nil {
				return nil, err
			}
			out[i] = nr
		}
		return out, nil
	case plan.KindUnion:
		l := inputs[0].([]data.Record)
		r := inputs[1].([]data.Record)
		return append(append([]data.Record{}, l...), r...), nil
	case plan.KindSink:
		return inputs[0], nil
	}
	return inputs[0], nil
}

func TestRegistryPlatformRegistration(t *testing.T) {
	r := NewRegistry()
	p := &fakePlatform{id: "fake"}
	if err := r.RegisterPlatform(p); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterPlatform(p); err == nil {
		t.Error("duplicate platform accepted")
	}
	got, ok := r.Platform("fake")
	if !ok || got != p {
		t.Error("Platform lookup failed")
	}
	if _, ok := r.Platform("ghost"); ok {
		t.Error("ghost platform found")
	}
	if len(r.Platforms()) != 1 {
		t.Error("Platforms() wrong")
	}
}

func TestRegistryMappings(t *testing.T) {
	r := NewRegistry()
	p := &fakePlatform{id: "fake"}
	if err := r.RegisterPlatform(p); err != nil {
		t.Fatal(err)
	}
	// Mapping for an unregistered platform fails.
	err := r.RegisterMapping(Mapping{Platform: "ghost", Kind: plan.KindMap, Cost: cost.ConstModel(cost.Cost{})})
	if err == nil {
		t.Error("mapping for ghost platform accepted")
	}
	// Mapping without a cost model fails (cost models are mandatory
	// plugins).
	err = r.RegisterMapping(Mapping{Platform: "fake", Kind: plan.KindMap})
	if err == nil {
		t.Error("mapping without cost model accepted")
	}
	must := func(m Mapping) {
		t.Helper()
		if err := r.RegisterMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	must(Mapping{Platform: "fake", Kind: plan.KindGroupBy, Algo: physical.HashGroupBy,
		Cost: cost.ConstModel(cost.Cost{CPU: 1}), Hint: "hash"})
	must(Mapping{Platform: "fake", Kind: plan.KindGroupBy, Algo: physical.Default,
		Cost: cost.ConstModel(cost.Cost{CPU: 2}), Hint: "fallback"})

	m, ok := r.MappingFor("fake", plan.KindGroupBy, physical.HashGroupBy)
	if !ok || m.Hint != "hash" {
		t.Error("exact mapping not found")
	}
	// Unknown algorithm falls back to the Default mapping.
	m, ok = r.MappingFor("fake", plan.KindGroupBy, physical.SortGroupBy)
	if !ok || m.Hint != "fallback" {
		t.Error("fallback mapping not used")
	}
	if _, ok := r.MappingFor("fake", plan.KindJoin, physical.HashJoin); ok {
		t.Error("mapping for undeclared kind found")
	}
	if pls := r.PlatformsFor(plan.KindGroupBy); len(pls) != 1 || pls[0] != "fake" {
		t.Errorf("PlatformsFor = %v", pls)
	}
}

func TestMetricsAdd(t *testing.T) {
	var m Metrics
	m.Add(Metrics{Wall: 1, Sim: 2, Jobs: 3, InRecords: 4, OutRecords: 5, ShuffledBytes: 6, MovedBytes: 7, Conversions: 8, Retries: 9})
	m.Add(Metrics{Wall: 1, Jobs: 1})
	if m.Wall != 2 || m.Jobs != 4 || m.Retries != 9 || m.Conversions != 8 {
		t.Errorf("Metrics.Add = %+v", m)
	}
}

func buildAtomFixture(t *testing.T) (*physical.Plan, *TaskAtom) {
	t.Helper()
	b := plan.NewBuilder("fixture")
	s := b.Source("s", plan.Collection([]data.Record{
		data.NewRecord(data.Int(1)), data.NewRecord(data.Int(2)),
	}))
	m := b.Map(s, func(r data.Record) (data.Record, error) {
		return r.Append(data.Str("x")), nil
	})
	b.Collect(m)
	pp, err := physical.FromLogical(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	atom := &TaskAtom{ID: 0, Kind: AtomCompute, Platform: "fake", Ops: pp.Ops, Exits: []*physical.Operator{pp.SinkOp}}
	return pp, atom
}

func TestRunAtomWholePlan(t *testing.T) {
	pp, atom := buildAtomFixture(t)
	exits, err := RunAtom(context.Background(), fakeOps{}, atom, AtomInputs{})
	if err != nil {
		t.Fatal(err)
	}
	out := exits[pp.SinkOp.ID]
	recs, err := out.AsCollection()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Len() != 2 {
		t.Errorf("atom output = %v", recs)
	}
}

func TestRunAtomExternalInput(t *testing.T) {
	pp, _ := buildAtomFixture(t)
	// Atom holding only the Map and Sink; the source output arrives as
	// an external channel.
	var mapOp *physical.Operator
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindMap {
			mapOp = op
		}
	}
	atom := &TaskAtom{ID: 1, Kind: AtomCompute, Platform: "fake",
		Ops: []*physical.Operator{mapOp, pp.SinkOp}, Exits: []*physical.Operator{pp.SinkOp}}
	in := channel.NewCollection([]data.Record{data.NewRecord(data.Int(9))})
	exits, err := RunAtom(context.Background(), fakeOps{}, atom,
		AtomInputs{mapOp.ID: {0: in}})
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := exits[pp.SinkOp.ID].AsCollection()
	if len(recs) != 1 || recs[0].Field(0).Int() != 9 {
		t.Errorf("external-input atom output = %v", recs)
	}
}

func TestRunAtomMissingInput(t *testing.T) {
	pp, _ := buildAtomFixture(t)
	var mapOp *physical.Operator
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindMap {
			mapOp = op
		}
	}
	atom := &TaskAtom{ID: 2, Kind: AtomCompute, Platform: "fake",
		Ops: []*physical.Operator{mapOp}, Exits: []*physical.Operator{mapOp}}
	if _, err := RunAtom(context.Background(), fakeOps{}, atom, AtomInputs{}); err == nil {
		t.Error("missing external input not detected")
	}
}

func TestRunAtomCancelled(t *testing.T) {
	_, atom := buildAtomFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAtom(ctx, fakeOps{}, atom, AtomInputs{}); err == nil {
		t.Error("cancelled context not honoured")
	}
}

func TestRunAtomRejectsLoopAtoms(t *testing.T) {
	atom := &TaskAtom{Kind: AtomLoop}
	if _, err := RunAtom(context.Background(), fakeOps{}, atom, AtomInputs{}); err == nil {
		t.Error("loop atom accepted by RunAtom")
	}
}

func TestTaskAtomContainsAndString(t *testing.T) {
	pp, atom := buildAtomFixture(t)
	if !atom.Contains(pp.Ops[0].ID) {
		t.Error("Contains false for member")
	}
	if atom.Contains(999) {
		t.Error("Contains true for non-member")
	}
	if atom.String() == "" {
		t.Error("empty atom String")
	}
}

func TestDescribeMappings(t *testing.T) {
	r := NewRegistry()
	p := &fakePlatform{id: "fake"}
	if err := r.RegisterPlatform(p); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterMapping(Mapping{Platform: "fake", Kind: plan.KindGroupBy,
		Algo: physical.HashGroupBy, Cost: cost.ConstModel(cost.Cost{}), Hint: "no order"}); err != nil {
		t.Fatal(err)
	}
	out := r.DescribeMappings()
	for _, want := range []string{"fake", "GroupBy", "hash-groupby", "no order"} {
		if !strings.Contains(out, want) {
			t.Errorf("DescribeMappings misses %q:\n%s", want, out)
		}
	}
}
