package engine

import (
	"sync"
	"testing"
	"time"
)

func TestStatsRecordAndSnapshot(t *testing.T) {
	s := newStats()
	s.RecordSuccess("java", Metrics{Jobs: 1, InRecords: 100, OutRecords: 50, Sim: time.Second, Wall: time.Millisecond})
	s.RecordSuccess("java", Metrics{Jobs: 2, InRecords: 10, OutRecords: 10})
	s.RecordAttemptFailure("java", false)
	s.RecordAttemptFailure("java", true)
	s.RecordRetry("java")
	s.RecordFinalFailure("spark")

	snap := s.Snapshot()
	j := snap["java"]
	if j.AtomsExecuted != 2 || j.Jobs != 3 || j.RecordsIn != 110 || j.RecordsOut != 60 {
		t.Errorf("java stats = %+v", j)
	}
	if j.TransientErrors != 1 || j.FatalErrors != 1 || j.Retries != 1 {
		t.Errorf("java error stats = %+v", j)
	}
	if j.SimTime != time.Second || j.WallTime != time.Millisecond {
		t.Errorf("java time stats = %+v", j)
	}
	if snap["spark"].AtomsFailed != 1 {
		t.Errorf("spark stats = %+v", snap["spark"])
	}
	// Snapshot is a copy: mutating the source must not leak.
	s.RecordSuccess("java", Metrics{Jobs: 1})
	if snap["java"].Jobs != 3 {
		t.Error("snapshot shares state with the live counters")
	}
}

func TestStatsCountBreakerTransitions(t *testing.T) {
	reg := NewRegistry()
	h := reg.Health()
	h.Configure(HealthConfig{Threshold: 2, Cooldown: time.Minute})
	now := time.Unix(0, 0)
	h.setClock(func() time.Time { return now })

	// Two failures trip the breaker once (the third failure keeps it
	// open without re-counting).
	h.ReportFailure("flaky")
	h.ReportFailure("flaky")
	h.ReportFailure("flaky")
	st := reg.Stats().Snapshot()["flaky"]
	if st.BreakerTrips != 1 || st.BreakerRecoveries != 0 {
		t.Errorf("after trip: %+v", st)
	}

	// Cooldown elapses, the half-open probe succeeds: one recovery.
	now = now.Add(2 * time.Minute)
	if got := h.State("flaky"); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v", got)
	}
	h.ReportSuccess("flaky")
	st = reg.Stats().Snapshot()["flaky"]
	if st.BreakerTrips != 1 || st.BreakerRecoveries != 1 {
		t.Errorf("after recovery: %+v", st)
	}

	// A failed half-open probe re-trips.
	h.ReportFailure("flaky")
	h.ReportFailure("flaky")
	now = now.Add(2 * time.Minute)
	h.ReportFailure("flaky") // half-open probe fails → Open again
	st = reg.Stats().Snapshot()["flaky"]
	if st.BreakerTrips != 3 {
		t.Errorf("trips after re-trip = %+v", st)
	}
}

func TestStatsConcurrentReporters(t *testing.T) {
	s := newStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.RecordSuccess("p", Metrics{Jobs: 1, InRecords: 1})
				s.RecordAttemptFailure("p", j%2 == 0)
			}
		}()
	}
	wg.Wait()
	st := s.Snapshot()["p"]
	if st.AtomsExecuted != 800 || st.Jobs != 800 || st.RecordsIn != 800 {
		t.Errorf("stats = %+v", st)
	}
	if st.TransientErrors+st.FatalErrors != 800 {
		t.Errorf("error counts = %+v", st)
	}
}

func TestStatsReset(t *testing.T) {
	s := newStats()
	s.RecordSuccess("p", Metrics{Jobs: 1})
	s.Reset()
	if len(s.Snapshot()) != 0 {
		t.Error("reset left counters behind")
	}
}
