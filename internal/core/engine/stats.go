package engine

import (
	"sync"
	"time"
)

// PlatformStats aggregates what a platform actually did across the
// registry's lifetime: the platform-layer half of the observability
// subsystem (the executor's per-run spans are the other half, package
// trace). Counters are cumulative across runs sharing the registry —
// the denominator any learned cost model or platform-overhead study
// (Hesse et al.) would normalize by.
type PlatformStats struct {
	// AtomsExecuted counts successful atom executions.
	AtomsExecuted int64
	// AtomsFailed counts atom executions that exhausted their retries
	// (final failures, each preceded by TransientErrors/FatalErrors
	// attempt counts).
	AtomsFailed int64
	// TransientErrors and FatalErrors count failed execution attempts
	// by classification (fatal errors are never retried).
	TransientErrors int64
	FatalErrors     int64
	// Retries counts re-executions after transient failures.
	Retries int64
	// RecordsIn/RecordsOut total the records consumed and produced by
	// successful executions.
	RecordsIn  int64
	RecordsOut int64
	// Jobs totals platform jobs launched by successful executions.
	Jobs int64
	// SimTime/WallTime total the simulated and host time of successful
	// executions.
	SimTime  time.Duration
	WallTime time.Duration
	// BreakerTrips counts circuit-breaker transitions into Open
	// (quarantine); BreakerRecoveries counts transitions back to
	// Closed after a successful probe.
	BreakerTrips      int64
	BreakerRecoveries int64
}

// Stats tracks per-platform execution counters for a Registry. All
// methods are safe for concurrent use — the executor reports from many
// scheduler goroutines at once.
type Stats struct {
	mu        sync.Mutex
	platforms map[PlatformID]*PlatformStats
}

func newStats() *Stats {
	return &Stats{platforms: make(map[PlatformID]*PlatformStats)}
}

func (s *Stats) entry(id PlatformID) *PlatformStats {
	e := s.platforms[id]
	if e == nil {
		e = &PlatformStats{}
		s.platforms[id] = e
	}
	return e
}

// RecordSuccess accounts one successful atom execution and its metrics.
func (s *Stats) RecordSuccess(id PlatformID, m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(id)
	e.AtomsExecuted++
	e.RecordsIn += m.InRecords
	e.RecordsOut += m.OutRecords
	e.Jobs += int64(m.Jobs)
	e.SimTime += m.Sim
	e.WallTime += m.Wall
}

// RecordAttemptFailure accounts one failed execution attempt, by error
// classification.
func (s *Stats) RecordAttemptFailure(id PlatformID, fatal bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(id)
	if fatal {
		e.FatalErrors++
	} else {
		e.TransientErrors++
	}
}

// RecordRetry accounts one re-execution after a transient failure.
func (s *Stats) RecordRetry(id PlatformID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entry(id).Retries++
}

// RecordFinalFailure accounts an atom execution that exhausted its
// retry budget (or hit a fatal error) and failed for good.
func (s *Stats) RecordFinalFailure(id PlatformID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entry(id).AtomsFailed++
}

// breakerTransition is the Health tracker's observer: it counts trips
// into quarantine and recoveries out of it.
func (s *Stats) breakerTransition(id PlatformID, from, to BreakerState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entry(id)
	switch {
	case to == BreakerOpen && from != BreakerOpen:
		e.BreakerTrips++
	case to == BreakerClosed && from != BreakerClosed:
		e.BreakerRecoveries++
	}
}

// Snapshot copies every platform's counters. Platforms that never
// reported are absent.
func (s *Stats) Snapshot() map[PlatformID]PlatformStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[PlatformID]PlatformStats, len(s.platforms))
	for id, e := range s.platforms {
		out[id] = *e
	}
	return out
}

// Reset clears all counters (experiment harness runs that want
// per-phase deltas).
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.platforms = make(map[PlatformID]*PlatformStats)
}
