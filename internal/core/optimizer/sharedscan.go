package optimizer

import (
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
)

// SharedScan merges Source operators that declare the same ScanKey
// into a single scan — the paper's example of a "traditional physical
// optimization" the multi-platform optimizer should still apply (§4.2:
// "shared scans and optimized data access paths"). Self-joins built by
// the cleaning application read the same collection twice; after this
// rule the data is scanned (and, on the Spark simulator, parallelized)
// once.
//
// Sharing is strictly opt-in through plan.Operator.ScanKey: Go cannot
// portably establish that two source closures capture the same data
// (function values are not comparable, and reflect exposes only the
// shared code pointer), so only sources whose author declared them
// identical are merged.
type SharedScan struct{}

// Name implements Rule.
func (SharedScan) Name() string { return "shared-scan" }

// Apply implements Rule.
func (SharedScan) Apply(p *physical.Plan) (bool, error) {
	byKey := map[string]*physical.Operator{}
	for _, op := range p.Ops {
		if op.Kind() != plan.KindSource || op.Logical.ScanKey == "" {
			continue
		}
		key := op.Logical.ScanKey
		first, seen := byKey[key]
		if !seen {
			byKey[key] = op
			continue
		}
		// Rewire every consumer of the duplicate to the first scan.
		for _, other := range p.Ops {
			other.ReplaceInput(op, first)
		}
		if p.SinkOp == op {
			p.SinkOp = first
		}
		removeOps(p, op)
		return true, p.Normalize()
	}
	return false, nil
}
