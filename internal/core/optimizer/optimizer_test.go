package optimizer

import (
	"strings"
	"testing"
	"time"

	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
	"rheem/internal/platform/javaengine"
	"rheem/internal/platform/relengine"
	"rheem/internal/platform/sparksim"
)

func fullRegistry(t *testing.T) *engine.Registry {
	t.Helper()
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sparksim.Register(reg, sparksim.Config{JobOverhead: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := relengine.Register(reg, nil, relengine.Config{}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func physOf(t *testing.T, build func(b *plan.Builder)) *physical.Plan {
	t.Helper()
	b := plan.NewBuilder("p")
	build(b)
	lp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := physical.FromLogical(lp)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

func TestOptimizeAssignsEverythingAndSplitsAtoms(t *testing.T) {
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 1000
		f := b.Filter(s, func(data.Record) (bool, error) { return true, nil })
		g := b.ReduceByKey(f, plan.FieldKey(0), plan.SumField(0))
		b.Collect(g)
	})
	ep, err := Optimize(pp, fullRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range pp.Ops {
		if _, ok := ep.Assignment[op.ID]; !ok {
			t.Errorf("%s unassigned", op.Name())
		}
		if op.Algo == "" {
			t.Errorf("%s has no algorithm", op.Name())
		}
	}
	if len(ep.Atoms) == 0 {
		t.Fatal("no atoms")
	}
	if ep.Estimated.Total() <= 0 {
		t.Error("no estimated cost")
	}
	if !strings.Contains(ep.String(), "atom#") {
		t.Error("String misses atoms")
	}
}

func TestFixedPlatformPinsEverything(t *testing.T) {
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 100
		b.Collect(b.Distinct(s))
	})
	for _, pin := range []engine.PlatformID{javaengine.ID, sparksim.ID, relengine.ID} {
		ep, err := Optimize(pp, fullRegistry(t), Options{FixedPlatform: pin})
		if err != nil {
			t.Fatalf("%s: %v", pin, err)
		}
		for id, pl := range ep.Assignment {
			if pl != pin {
				t.Errorf("pin %s: op %d on %s", pin, id, pl)
			}
		}
		// Single platform ⇒ single compute atom.
		if len(ep.Atoms) != 1 {
			t.Errorf("pin %s: %d atoms", pin, len(ep.Atoms))
		}
	}
}

func TestLargeInputPrefersSpark(t *testing.T) {
	reg := fullRegistry(t)
	small := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 100
		b.Collect(b.Map(s, plan.Identity()))
	})
	big := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 200_000_000
		b.Collect(b.Map(s, plan.Identity()))
	})
	epSmall, err := Optimize(small, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	epBig, err := Optimize(big, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range epSmall.Assignment {
		if pl == sparksim.ID {
			t.Error("small input landed on spark")
		}
	}
	sparkUsed := false
	for _, pl := range epBig.Assignment {
		if pl == sparksim.ID {
			sparkUsed = true
		}
	}
	if !sparkUsed {
		t.Errorf("huge input avoided spark: %v", epBig.Assignment)
	}
}

func TestIEJoinChosenForConditionedThetaJoin(t *testing.T) {
	pp := physOf(t, func(b *plan.Builder) {
		l := b.Source("l", plan.Collection(nil))
		l.CardHint = 10000
		r := b.Source("r", plan.Collection(nil))
		r.CardHint = 10000
		tj := b.ThetaJoin(l, r, nil,
			plan.IECondition{LeftField: 0, Op: plan.Greater, RightField: 0},
			plan.IECondition{LeftField: 1, Op: plan.Less, RightField: 1})
		b.Collect(tj)
	})
	ep, err := Optimize(pp, fullRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range ep.Physical.Ops {
		if op.Kind() == plan.KindThetaJoin {
			found = true
			if op.Algo != physical.IEJoin {
				t.Errorf("theta join algo = %s, want ie-join", op.Algo)
			}
		}
	}
	if !found {
		t.Fatal("no theta join in plan")
	}
}

func TestLoopBodiesOptimizedRecursively(t *testing.T) {
	bb := plan.NewBodyBuilder("body")
	in := bb.LoopInput("st")
	m := bb.Map(in, plan.Identity())
	bb.Collect(m)
	body := bb.MustBuild()

	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 10
		rep := b.Repeat(s, 5, body)
		b.Collect(rep)
	})
	ep, err := Optimize(pp, fullRegistry(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var loopID int = -1
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindRepeat {
			loopID = op.ID
		}
	}
	bodyEP := ep.LoopBodies[loopID]
	if bodyEP == nil {
		t.Fatal("loop body not optimized")
	}
	if len(bodyEP.Atoms) == 0 {
		t.Error("loop body has no atoms")
	}
	// Loop atom present in outer plan.
	loops := 0
	for _, a := range ep.Atoms {
		if a.Kind == engine.AtomLoop {
			loops++
		}
	}
	if loops != 1 {
		t.Errorf("%d loop atoms", loops)
	}
}

func TestAtomConvexityOnDiamond(t *testing.T) {
	// Diamond: source → (mapA, mapB) → union. All on one platform must
	// fold into one atom; the atom order must stay valid.
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		a := b.Map(s, plan.Identity())
		c := b.Map(s, plan.Identity())
		u := b.Union(a, c)
		b.Collect(u)
	})
	ep, err := Optimize(pp, fullRegistry(t), Options{FixedPlatform: javaengine.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Atoms) != 1 {
		t.Errorf("diamond split into %d atoms", len(ep.Atoms))
	}
	// Exits: only the sink leaves the atom.
	if len(ep.Atoms[0].Exits) != 1 {
		t.Errorf("diamond atom has %d exits", len(ep.Atoms[0].Exits))
	}
}

func TestNoPlatformForKindFails(t *testing.T) {
	reg := engine.NewRegistry()
	if _, err := javaengine.Register(reg, javaengine.Config{}); err != nil {
		t.Fatal(err)
	}
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		b.Collect(s)
	})
	// Empty registry entirely.
	empty := engine.NewRegistry()
	if _, err := Optimize(pp, empty, Options{}); err == nil {
		t.Error("optimization without platforms accepted")
	}
	_ = reg
}

func TestExcludePlatformsAvoidsQuarantined(t *testing.T) {
	reg := fullRegistry(t)
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 100
		b.Collect(b.Map(s, plan.Identity()))
	})
	// Small input would normally land on java; exclude it and demand
	// the plan avoids it everywhere.
	ep, err := Optimize(pp, reg, Options{
		ExcludePlatforms: map[engine.PlatformID]bool{javaengine.ID: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, pl := range ep.Assignment {
		if pl == javaengine.ID {
			t.Errorf("op %d assigned to excluded platform", id)
		}
	}
	// Excluding every capable platform must fail, not silently pick one.
	_, err = Optimize(pp, reg, Options{ExcludePlatforms: map[engine.PlatformID]bool{
		javaengine.ID: true, sparksim.ID: true, relengine.ID: true,
	}})
	if err == nil {
		t.Error("optimization with every platform excluded accepted")
	}
}

func TestExcludePlatformsKeepsFrozenAssignments(t *testing.T) {
	reg := fullRegistry(t)
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		s.CardHint = 100
		b.Collect(b.Map(s, plan.Identity()))
	})
	srcID := -1
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSource {
			srcID = op.ID
		}
	}
	if srcID < 0 {
		t.Fatal("no source op")
	}
	// The frozen (already-executed) source keeps its assignment on the
	// excluded platform — it will never run again — while everything
	// downstream is re-planned off it. This is the failover re-planning
	// contract.
	ep, err := Optimize(pp, reg, Options{
		DisableRules:      true,
		Frozen:            map[int]bool{srcID: true},
		ForcedAssignments: map[int]engine.PlatformID{srcID: javaengine.ID},
		ExcludePlatforms:  map[engine.PlatformID]bool{javaengine.ID: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ep.Assignment[srcID] != javaengine.ID {
		t.Errorf("frozen source moved to %s", ep.Assignment[srcID])
	}
	for id, pl := range ep.Assignment {
		if id != srcID && pl == javaengine.ID {
			t.Errorf("re-planned op %d still on excluded platform", id)
		}
	}
}
