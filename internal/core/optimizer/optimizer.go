// Package optimizer implements RHEEM's multi-platform task optimizer
// (paper §4.2). Given a physical plan and the engine registry it
//
//  1. applies pluggable rewrite rules (rules are plugins, "not
//     hard-coded as in traditional database optimizers");
//  2. estimates cardinalities (package cost);
//  3. jointly chooses, per operator, an algorithm and an execution
//     platform by dynamic programming over (operator, platform)
//     states, where edges between states on different platforms are
//     charged the channel-conversion cost — the paper's inter-platform
//     cost model;
//  4. divides the plan into task atoms ("the units of execution ...
//     executed on a single data processing platform") such that data
//     crosses platforms only at atom boundaries;
//  5. recursively optimizes loop bodies, whose cost is multiplied by
//     the expected iteration count.
//
// The result is an ExecutionPlan the executor can run, with the
// estimated cost attached so callers (and the E6 experiment) can audit
// the optimizer's predictions.
package optimizer

import (
	"fmt"
	"math"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/cost"
	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
)

// Options steers an optimization run.
type Options struct {
	// FixedPlatform pins every operator to one platform, used by the
	// single-platform baselines of the experiments. Empty means free
	// choice.
	FixedPlatform engine.PlatformID
	// Rules overrides the rewrite rule set (nil = DefaultRules()).
	Rules []Rule
	// DisableRules skips the rewrite phase entirely.
	DisableRules bool
	// DoWhileIterGuess is the iteration count assumed for DoWhile
	// loops when costing (default 10).
	DoWhileIterGuess int
	// Calibration supplies learned per-(kind, platform) cost correction
	// factors and per-kind cardinality corrections folded from completed
	// runs (cost.Calibrator). The DP multiplies each candidate's model
	// cost by its factor, so platform choices improve with traffic. Nil
	// (or a cold calibrator) leaves every cost untouched. Because
	// ShardDiscount and failover re-planning run through the same DP,
	// both inherit calibrated costs automatically.
	Calibration *cost.Calibrator
	// Shards is the executor's intra-atom shard fan-out (≤1 = off). The
	// DP discounts the compute cost of shardable operator kinds on
	// non-distributed platforms by cost.ShardDiscount — distributed
	// platforms already price their internal parallelism, and
	// unshardable kinds run whole either way. The discount can flip a
	// platform assignment: a sharded single-node engine beats the
	// simulated cluster on mid-size inputs where the cluster's per-job
	// overhead still dominates.
	Shards int

	// The remaining options support adaptive re-optimization (the
	// executor re-plans a partially executed job with observed
	// statistics):
	//
	// CardOverrides replaces rule-derived cardinality estimates with
	// observed values for the given physical operator IDs.
	CardOverrides map[int]int64
	// ForcedAssignments pins individual operators to platforms
	// (already-executed operators keep their original assignment).
	ForcedAssignments map[int]engine.PlatformID
	// ExcludePlatforms removes platforms from consideration for every
	// not-yet-executed operator; Frozen operators keep their original
	// (forced) assignment even on an excluded platform, since they will
	// never execute again. The executor's cross-platform failover
	// re-plans with the quarantined platforms excluded.
	ExcludePlatforms map[engine.PlatformID]bool
	// Frozen marks already-executed operators: the atom splitter never
	// mixes frozen and unfrozen operators in one atom, so the executor
	// can skip fully-frozen atoms whose outputs it already holds.
	Frozen map[int]bool
}

// ExecutionPlan is the optimizer's output: the (possibly rewritten)
// physical plan, the per-operator platform assignment, the task atoms
// in a topologically valid execution order, nested loop-body plans,
// and the predicted cost.
type ExecutionPlan struct {
	Physical   *physical.Plan
	Assignment map[int]engine.PlatformID
	Atoms      []*engine.TaskAtom
	LoopBodies map[int]*ExecutionPlan // keyed by loop physical op ID
	Estimated  cost.Cost
	Estimates  *cost.Estimates
	// OpCosts is the estimated cost of each operator under its chosen
	// platform and algorithm (loops carry their whole body's cost,
	// multiplied by the expected iterations). The executor's audit
	// trail compares these predictions against measured runtimes.
	OpCosts map[int]cost.Cost
	// RawOpCosts / RawEstimates / RawEstimated are the same predictions
	// with calibration stripped: raw model costs on raw rule-derived
	// cardinalities. The executor records these in its spans and audits
	// so the calibrator always learns against the fixed, uncalibrated
	// model — learning against already-corrected estimates would feed
	// the correction back into itself. Without calibration they alias
	// the calibrated fields.
	RawOpCosts   map[int]cost.Cost
	RawEstimates *cost.Estimates
	RawEstimated cost.Cost
}

// String renders the execution plan as its atom sequence.
func (ep *ExecutionPlan) String() string {
	s := fmt.Sprintf("execution plan %q (est %v):\n", ep.Physical.Name, ep.Estimated.Total())
	for _, a := range ep.Atoms {
		s += "  " + a.String() + "\n"
		if a.Kind == engine.AtomLoop {
			if body := ep.LoopBodies[a.LoopOp.ID]; body != nil {
				for _, line := range splitLines(body.String()) {
					s += "    " + line + "\n"
				}
			}
		}
	}
	return s
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Optimize produces an execution plan for p over the registered
// platforms.
func Optimize(p *physical.Plan, reg *engine.Registry, opts Options) (*ExecutionPlan, error) {
	if opts.DoWhileIterGuess <= 0 {
		opts.DoWhileIterGuess = 10
	}
	if !opts.DisableRules {
		rules := opts.Rules
		if rules == nil {
			rules = DefaultRules()
		}
		if err := applyRules(p, rules); err != nil {
			return nil, err
		}
	}
	est := cost.EstimateCalibrated(p, opts.CardOverrides, opts.Calibration)
	rawEst := est
	if opts.Calibration != nil {
		rawEst = cost.EstimateWith(p, opts.CardOverrides)
	}
	return optimizeWith(p, reg, opts, est, rawEst)
}

func optimizeWith(p *physical.Plan, reg *engine.Registry, opts Options, est, rawEst *cost.Estimates) (*ExecutionPlan, error) {
	ep := &ExecutionPlan{
		Physical:     p,
		Assignment:   make(map[int]engine.PlatformID, len(p.Ops)),
		LoopBodies:   make(map[int]*ExecutionPlan),
		Estimates:    est,
		RawEstimates: rawEst,
		OpCosts:      make(map[int]cost.Cost, len(p.Ops)),
		RawOpCosts:   make(map[int]cost.Cost, len(p.Ops)),
	}
	// Optimize loop bodies first: a loop's cost and platform derive
	// from its body.
	loopCost := make(map[int]cost.Cost)
	rawLoopCost := make(map[int]cost.Cost)
	loopPlatform := make(map[int]engine.PlatformID)
	for _, op := range p.Ops {
		switch op.Kind() {
		case plan.KindRepeat, plan.KindDoWhile:
			body, err := optimizeWith(op.Body, reg, opts, est, rawEst)
			if err != nil {
				return nil, fmt.Errorf("optimizer: loop body of %s: %w", op.Name(), err)
			}
			iters := op.Logical.Times
			if op.Kind() == plan.KindDoWhile {
				iters = op.Logical.MaxIter
				if iters <= 0 {
					iters = opts.DoWhileIterGuess
				}
			}
			ep.LoopBodies[op.ID] = body
			loopCost[op.ID] = body.Estimated.Times(float64(iters))
			rawLoopCost[op.ID] = body.RawEstimated.Times(float64(iters))
			loopPlatform[op.ID] = body.Assignment[op.Body.SinkOp.ID]
		}
	}

	if err := assignPlatforms(p, reg, opts, est, ep, loopCost, rawLoopCost, loopPlatform); err != nil {
		return nil, err
	}
	atoms, err := splitAtoms(p, ep.Assignment, opts.Frozen)
	if err != nil {
		return nil, err
	}
	ep.Atoms = atoms
	return ep, nil
}

// choice is one DP cell: the best known way to have op's output
// materialised on a given platform.
type choice struct {
	total    time.Duration
	opCost   cost.Cost
	algo     physical.Algorithm
	inPlats  []engine.PlatformID // chosen platform per input
	feasible bool
}

// designatedRoots picks, per weakly-connected component of the plan,
// the zero-input operator with the smallest ID. The DP charges per-job
// startup once at the designated root instead of at every root, so an
// atom that happens to have several sources (a loop body reading both
// its LoopInput state and a broadcast dataset) is not charged one job
// submission per source.
func designatedRoots(p *physical.Plan) map[int]bool {
	parent := make(map[int]int, len(p.Ops))
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, op := range p.Ops {
		parent[op.ID] = op.ID
	}
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			parent[find(op.ID)] = find(in.ID)
		}
	}
	minRoot := map[int]int{} // component → smallest zero-input op ID
	for _, op := range p.Ops {
		if len(op.Inputs) != 0 {
			continue
		}
		c := find(op.ID)
		if best, ok := minRoot[c]; !ok || op.ID < best {
			minRoot[c] = op.ID
		}
	}
	out := make(map[int]bool, len(minRoot))
	for _, id := range minRoot {
		out[id] = true
	}
	return out
}

// assignPlatforms runs the DP over (operator, platform) states and
// backtracks the cheapest assignment into ep.
func assignPlatforms(p *physical.Plan, reg *engine.Registry, opts Options, est *cost.Estimates, ep *ExecutionPlan, loopCost, rawLoopCost map[int]cost.Cost, loopPlatform map[int]engine.PlatformID) error {
	platforms := reg.Platforms()
	if len(platforms) == 0 {
		return fmt.Errorf("optimizer: no platforms registered")
	}
	roots := designatedRoots(p)
	dp := make(map[int]map[engine.PlatformID]*choice, len(p.Ops))

	for _, op := range p.Ops {
		cells := make(map[engine.PlatformID]*choice)
		dp[op.ID] = cells

		inCards := make([]int64, len(op.Inputs))
		for i, in := range op.Inputs {
			inCards[i] = est.Cards[in.ID]
		}
		outCard := est.Cards[op.ID]

		// Loops: single pseudo-choice on the body's sink platform.
		if op.Kind() == plan.KindRepeat || op.Kind() == plan.KindDoWhile {
			pl := loopPlatform[op.ID]
			c := &choice{opCost: loopCost[op.ID], algo: physical.Default, feasible: true}
			c.total = c.opCost.Total()
			c.inPlats = make([]engine.PlatformID, len(op.Inputs))
			for i, in := range op.Inputs {
				bestIn, ok := cheapestInput(dp[in.ID], reg, est, in.ID, pl, op)
				if !ok {
					return fmt.Errorf("optimizer: no feasible platform chain into %s", op.Name())
				}
				c.inPlats[i] = bestIn.platform
				c.total += bestIn.cost
			}
			cells[pl] = c
			continue
		}

		for _, platform := range platforms {
			pl := platform.ID()
			if opts.FixedPlatform != "" && pl != opts.FixedPlatform {
				continue
			}
			if forced, ok := opts.ForcedAssignments[op.ID]; ok && pl != forced {
				continue
			}
			if opts.ExcludePlatforms[pl] && !opts.Frozen[op.ID] {
				continue
			}
			// Input picks depend only on the consumer platform.
			inPlats := make([]engine.PlatformID, len(op.Inputs))
			var inTotal time.Duration
			feasibleInputs := true
			for i, in := range op.Inputs {
				bestIn, found := cheapestInput(dp[in.ID], reg, est, in.ID, pl, op)
				if !found {
					feasibleInputs = false
					break
				}
				inPlats[i] = bestIn.platform
				inTotal += bestIn.cost
			}
			if !feasibleInputs {
				continue
			}
			// The per-job startup charge applies only when this
			// operator opens a new task atom on its platform: at the
			// component's designated root, and wherever an input
			// arrives from another platform. Within an atom, startup
			// is paid once.
			newAtom := len(op.Inputs) == 0 && roots[op.ID]
			for _, inPl := range inPlats {
				if inPl != pl {
					newAtom = true
				}
			}
			var best *choice
			for _, algo := range physical.Candidates(op) {
				m, ok := reg.MappingFor(pl, op.Kind(), algo)
				if !ok {
					continue
				}
				oc := m.Cost(op, inCards, outCard)
				if shardDiscounts(opts, platform.Profile(), op.Kind()) {
					oc = cost.ShardDiscount(oc, opts.Shards)
				}
				// Learned correction: scale the model's estimate by the
				// observed actual/estimated ratio for this (kind,
				// platform). CostFactor is 1 on a nil or cold calibrator.
				if f := opts.Calibration.CostFactor(op.Kind().String(), string(pl)); f != 1 {
					oc = oc.Times(f)
				}
				opTotal := oc.CPU + oc.IO + oc.Net
				if newAtom {
					opTotal += oc.Startup
				}
				c := &choice{opCost: oc, algo: algo, feasible: true,
					total: opTotal + inTotal, inPlats: inPlats}
				if best == nil || c.total < best.total {
					best = c
				}
			}
			if best != nil {
				cells[pl] = best
			}
		}
		if len(cells) == 0 {
			return fmt.Errorf("optimizer: no platform offers %s (kind %s)", op.Name(), op.Kind())
		}
	}

	// Pick the cheapest sink cell and backtrack.
	sinkCells := dp[p.SinkOp.ID]
	var bestPl engine.PlatformID
	bestTotal := time.Duration(math.MaxInt64)
	for pl, c := range sinkCells {
		if c.total < bestTotal {
			bestTotal, bestPl = c.total, pl
		}
	}
	if bestPl == "" {
		return fmt.Errorf("optimizer: no feasible plan for %q", p.Name)
	}
	backtrack(p.SinkOp, bestPl, dp, ep)
	// Re-walk the chosen assignment to report the full cost vector
	// (the DP optimises the scalar total only).
	ep.Estimated, ep.RawEstimated = vectorCost(p, reg, opts, ep, loopCost, rawLoopCost, roots)
	return nil
}

// shardDiscounts reports whether the shard cost discount applies to an
// operator of the given kind on a platform with the given profile. The
// kinds mirror the executor's shardability classes (shard.go): the
// record-wise operators plus the combining exits. Sink is excluded —
// it is free anyway — and distributed platforms already price their
// own parallelism.
func shardDiscounts(opts Options, prof engine.Profile, kind plan.OpKind) bool {
	if opts.Shards <= 1 || prof.Distributed {
		return false
	}
	switch kind {
	case plan.KindMap, plan.KindFlatMap, plan.KindFilter,
		plan.KindReduceByKey, plan.KindReduce, plan.KindCount,
		plan.KindDistinct, plan.KindSort:
		return true
	}
	return false
}

type inPick struct {
	platform engine.PlatformID
	cost     time.Duration
}

// cheapestInput finds the input-platform choice minimising input
// subtree cost plus the conversion cost from that platform's native
// format to the consuming operator's wanted format — the consumer
// platform's native format, or, when the consumer is batch-capable for
// op (engine.Vectorized), the cheaper of native and channel.Batch.
// Pricing the batch alternative is what lets plans adopt the columnar
// format on edges where it wins.
func cheapestInput(cells map[engine.PlatformID]*choice, reg *engine.Registry, est *cost.Estimates, inID int, consumer engine.PlatformID, op *physical.Operator) (inPick, bool) {
	consumerPlat, _ := reg.Platform(consumer)
	best := inPick{cost: time.Duration(math.MaxInt64)}
	found := false
	for pl, c := range cells {
		if !c.feasible {
			continue
		}
		move := time.Duration(0)
		if pl != consumer {
			producerPlat, _ := reg.Platform(pl)
			mc, ok := moveCost(reg, producerPlat, consumerPlat, op, est.Bytes(inID))
			if !ok {
				continue
			}
			move = mc
		}
		if total := c.total + move; total < best.cost {
			best = inPick{platform: pl, cost: total}
			found = true
		}
	}
	return best, found
}

// moveCost prices moving an input produced on from's native format to
// the consuming operator op executing on to: the conversion path to
// to's native format, or to channel.Batch when that is cheaper and to
// is batch-capable for op. It mirrors the executor's per-op want-format
// decision (runComputeAtom), so the plan is priced the way it runs.
func moveCost(reg *engine.Registry, from, to engine.Platform, op *physical.Operator, bytes int64) (time.Duration, bool) {
	mc, ok := reg.Channels().PathCost(from.NativeFormat(), to.NativeFormat(), bytes)
	if vec, isVec := to.(engine.Vectorized); isVec && op != nil && vec.SupportsBatch(op) {
		if bc, bok := reg.Channels().PathCost(from.NativeFormat(), channel.Batch, bytes); bok && (!ok || bc < mc) {
			return bc, true
		}
	}
	return mc, ok
}

// backtrack fixes assignments and algorithms along the chosen DP path.
// On DAGs with shared sub-results the first visit wins; the cost
// estimate then slightly over-counts the shared subtree, which is an
// accepted approximation (plans are trees in practice).
func backtrack(op *physical.Operator, pl engine.PlatformID, dp map[int]map[engine.PlatformID]*choice, ep *ExecutionPlan) {
	if _, done := ep.Assignment[op.ID]; done {
		return
	}
	c := dp[op.ID][pl]
	ep.Assignment[op.ID] = pl
	op.Algo = c.algo
	for i, in := range op.Inputs {
		backtrack(in, c.inPlats[i], dp, ep)
	}
}

// vectorCost re-walks the chosen assignment summing full cost vectors
// (the DP optimises the scalar total only), retaining each operator's
// cost in ep.OpCosts for the executor's estimate-vs-actual audit. It
// fills the raw (uncalibrated) twin in the same walk: raw model costs
// on raw cardinalities, which is what the calibrator learns against.
func vectorCost(p *physical.Plan, reg *engine.Registry, opts Options, ep *ExecutionPlan, loopCost, rawLoopCost map[int]cost.Cost, roots map[int]bool) (total, rawTotal cost.Cost) {
	est, rawEst := ep.Estimates, ep.RawEstimates
	for _, op := range p.Ops {
		pl := ep.Assignment[op.ID]
		if lc, isLoop := loopCost[op.ID]; isLoop {
			ep.OpCosts[op.ID] = lc
			ep.RawOpCosts[op.ID] = rawLoopCost[op.ID]
			total = total.Plus(lc)
			rawTotal = rawTotal.Plus(rawLoopCost[op.ID])
		} else {
			inCards := make([]int64, len(op.Inputs))
			rawIn := make([]int64, len(op.Inputs))
			for i, in := range op.Inputs {
				inCards[i] = est.Cards[in.ID]
				rawIn[i] = rawEst.Cards[in.ID]
			}
			if m, ok := reg.MappingFor(pl, op.Kind(), op.Algo); ok {
				oc := m.Cost(op, inCards, est.Cards[op.ID])
				raw := oc
				if rawEst != est {
					raw = m.Cost(op, rawIn, rawEst.Cards[op.ID])
				}
				if pf, pok := reg.Platform(pl); pok && shardDiscounts(opts, pf.Profile(), op.Kind()) {
					oc = cost.ShardDiscount(oc, opts.Shards)
					raw = cost.ShardDiscount(raw, opts.Shards)
				}
				if f := opts.Calibration.CostFactor(op.Kind().String(), string(pl)); f != 1 {
					oc = oc.Times(f)
				}
				newAtom := len(op.Inputs) == 0 && roots[op.ID]
				for _, in := range op.Inputs {
					if ep.Assignment[in.ID] != pl {
						newAtom = true
					}
				}
				if !newAtom {
					oc.Startup = 0
					raw.Startup = 0
				}
				ep.OpCosts[op.ID] = oc
				ep.RawOpCosts[op.ID] = raw
				total = total.Plus(oc)
				rawTotal = rawTotal.Plus(raw)
			}
		}
		for _, in := range op.Inputs {
			inPl := ep.Assignment[in.ID]
			if inPl == pl {
				continue
			}
			from, _ := reg.Platform(inPl)
			to, _ := reg.Platform(pl)
			if mc, ok := moveCost(reg, from, to, op, est.Bytes(in.ID)); ok {
				total = total.Plus(cost.Cost{Net: mc})
				rawTotal = rawTotal.Plus(cost.Cost{Net: mc})
			}
		}
	}
	return total, rawTotal
}
