package optimizer

import (
	"testing"

	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func TestSharedScanMergesDeclaredSources(t *testing.T) {
	src := plan.Collection([]data.Record{data.NewRecord(data.Int(1))})
	pp := physOf(t, func(b *plan.Builder) {
		l := b.Source("l", src)
		l.ScanKey = "d"
		r := b.Source("r", src)
		r.ScanKey = "d"
		j := b.Cartesian(l, r)
		b.Collect(j)
	})
	changed, err := (SharedScan{}).Apply(pp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("rule did not fire on shared-key sources")
	}
	sources := 0
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSource {
			sources++
		}
	}
	if sources != 1 {
		t.Errorf("%d sources remain", sources)
	}
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	// The cartesian now reads the shared scan on both inputs.
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindCartesian {
			if op.Inputs[0] != op.Inputs[1] {
				t.Error("cartesian inputs not shared")
			}
		}
	}
	// Idempotent.
	if changed, _ := (SharedScan{}).Apply(pp); changed {
		t.Error("rule fired twice")
	}
}

func TestSharedScanIsStrictlyOptIn(t *testing.T) {
	// Two sources over the same data WITHOUT ScanKeys must never be
	// merged: Go cannot prove closure equivalence, and merging distinct
	// collections (this exact bug broke PageRank's edges-vs-teleport
	// sources during development) silently corrupts results.
	recs := []data.Record{data.NewRecord(data.Int(1))}
	src := plan.Collection(recs)
	pp := physOf(t, func(b *plan.Builder) {
		l := b.Source("l", src) // same func value, no keys
		r := b.Source("r", src)
		j := b.Cartesian(l, r)
		b.Collect(j)
	})
	if changed, _ := (SharedScan{}).Apply(pp); changed {
		t.Error("rule merged unkeyed sources")
	}
	// Different keys must not merge either.
	pp2 := physOf(t, func(b *plan.Builder) {
		l := b.Source("l", plan.Collection(recs))
		l.ScanKey = "a"
		r := b.Source("r", plan.Collection(recs))
		r.ScanKey = "b"
		b.Collect(b.Cartesian(l, r))
	})
	if changed, _ := (SharedScan{}).Apply(pp2); changed {
		t.Error("rule merged differently-keyed sources")
	}
}

func TestSharedScanEndToEndCorrect(t *testing.T) {
	// A self-cartesian through a shared scan must still produce n²
	// pairs after the merge.
	reg := fullRegistry(t)
	recs := []data.Record{
		data.NewRecord(data.Int(1)), data.NewRecord(data.Int(2)), data.NewRecord(data.Int(3)),
	}
	src := plan.Collection(recs)
	pp := physOf(t, func(b *plan.Builder) {
		l := b.Source("l", src)
		l.CardHint = 3
		l.ScanKey = "d"
		r := b.Source("r", src)
		r.CardHint = 3
		r.ScanKey = "d"
		b.Collect(b.Cartesian(l, r))
	})
	ep, err := Optimize(pp, reg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rule applied during Optimize (DefaultRules includes SharedScan).
	sources := 0
	for _, op := range ep.Physical.Ops {
		if op.Kind() == plan.KindSource {
			sources++
		}
	}
	if sources != 1 {
		t.Errorf("%d sources after Optimize", sources)
	}
}
