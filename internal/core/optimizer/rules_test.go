package optimizer

import (
	"testing"

	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

func evens(r data.Record) (bool, error)   { return r.Field(0).Int()%2 == 0, nil }
func bigOnes(r data.Record) (bool, error) { return r.Field(0).Int() > 10, nil }

func countKind(p *physical.Plan, k plan.OpKind) int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind() == k {
			n++
		}
	}
	return n
}

func TestFuseFilters(t *testing.T) {
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		f1 := b.Filter(s, evens)
		f2 := b.Filter(f1, bigOnes)
		b.Collect(f2)
	})
	changed, err := (FuseFilters{}).Apply(pp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("rule did not fire")
	}
	if got := countKind(pp, plan.KindFilter); got != 1 {
		t.Fatalf("%d filters after fuse", got)
	}
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	// The fused filter must behave as the conjunction.
	var fused *physical.Operator
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindFilter {
			fused = op
		}
	}
	if !fused.Enhancer {
		t.Error("fused filter not marked as enhancer")
	}
	for _, tc := range []struct {
		v    int64
		want bool
	}{{4, false}, {11, false}, {12, true}} {
		got, err := fused.Logical.Filter(data.NewRecord(data.Int(tc.v)))
		if err != nil || got != tc.want {
			t.Errorf("fused(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
	// Second application: nothing left to fuse.
	changed, _ = (FuseFilters{}).Apply(pp)
	if changed {
		t.Error("rule fired twice")
	}
}

func TestFuseFiltersSkipsSharedFilter(t *testing.T) {
	// The inner filter output is also consumed elsewhere: fusing would
	// change semantics, so the rule must not fire.
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		f1 := b.Filter(s, evens)
		f2 := b.Filter(f1, bigOnes)
		u := b.Union(f2, f1)
		b.Collect(u)
	})
	changed, err := (FuseFilters{}).Apply(pp)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("rule fired on shared filter")
	}
}

func TestPushFilterBeforeSort(t *testing.T) {
	pp := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(nil))
		so := b.Sort(s, plan.FieldKey(0), false)
		f := b.Filter(so, evens)
		b.Collect(f)
	})
	changed, err := (PushFilterBeforeSort{}).Apply(pp)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("rule did not fire")
	}
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Now the sort consumes the filter.
	for _, op := range pp.Ops {
		if op.Kind() == plan.KindSort {
			if op.Inputs[0].Kind() != plan.KindFilter {
				t.Error("sort does not consume filter after push-down")
			}
		}
		if op.Kind() == plan.KindSink {
			if op.Inputs[0].Kind() != plan.KindSort {
				t.Error("sink does not consume sort after push-down")
			}
		}
	}
}

func TestRulesFixpointOnChainedPattern(t *testing.T) {
	// Sort→Filter→Filter needs both rules plus the fixpoint driver:
	// fuse the filters, then push the fused filter below the sort.
	// (Execution-level result equivalence is covered by the root
	// package tests; this checks the structural outcome.)
	recs := make([]data.Record, 0, 100)
	for i := int64(0); i < 100; i++ {
		recs = append(recs, data.NewRecord(data.Int(i%37)))
	}
	withRules := physOf(t, func(b *plan.Builder) {
		s := b.Source("s", plan.Collection(recs))
		s.CardHint = 100
		so := b.Sort(s, plan.FieldKey(0), false)
		f1 := b.Filter(so, evens)
		f2 := b.Filter(f1, bigOnes)
		b.Collect(f2)
	})
	if err := applyRules(withRules, DefaultRules()); err != nil {
		t.Fatal(err)
	}
	if err := withRules.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(withRules.Ops) >= 5 {
		t.Errorf("rules did not shrink plan: %d ops", len(withRules.Ops))
	}
	// Filter must now precede sort.
	for _, op := range withRules.Ops {
		if op.Kind() == plan.KindSort && op.Inputs[0].Kind() != plan.KindFilter {
			t.Error("fused filter not pushed before sort")
		}
	}
}
