package optimizer

import (
	"fmt"

	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
	"rheem/internal/data"
)

// Rule is a pluggable physical-plan rewrite. Rules are applied to a
// fixpoint (bounded), and must preserve plan semantics. They are the
// paper's "rules ... as plugins" (§4.2): registering a new rule does
// not touch the optimizer core.
type Rule interface {
	// Name identifies the rule in diagnostics.
	Name() string
	// Apply attempts one rewrite, reporting whether it changed the
	// plan. The optimizer re-invokes rules until none fires.
	Apply(p *physical.Plan) (bool, error)
}

// DefaultRules returns the built-in rewrite set.
func DefaultRules() []Rule {
	return []Rule{SharedScan{}, FuseFilters{}, PushFilterBeforeSort{}}
}

// applyRules drives rules to a bounded fixpoint.
func applyRules(p *physical.Plan, rules []Rule) error {
	const maxPasses = 32
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, r := range rules {
			ch, err := r.Apply(p)
			if err != nil {
				return fmt.Errorf("optimizer: rule %s: %w", r.Name(), err)
			}
			changed = changed || ch
		}
		if !changed {
			// Recurse into loop bodies once the top level is stable.
			for _, op := range p.Ops {
				if op.Body != nil {
					if err := applyRules(op.Body, rules); err != nil {
						return err
					}
				}
			}
			return p.Validate()
		}
	}
	return fmt.Errorf("optimizer: rules did not reach a fixpoint in %d passes", 32)
}

// FuseFilters merges a Filter whose single input is another Filter with
// no other consumers into one conjunctive Filter, halving per-record
// dispatch overhead.
type FuseFilters struct{}

// Name implements Rule.
func (FuseFilters) Name() string { return "fuse-filters" }

// Apply implements Rule.
func (FuseFilters) Apply(p *physical.Plan) (bool, error) {
	consumers := p.Consumers()
	for _, op := range p.Ops {
		if op.Kind() != plan.KindFilter {
			continue
		}
		in := op.Inputs[0]
		if in.Kind() != plan.KindFilter || len(consumers[in.ID]) != 1 {
			continue
		}
		first, second := in.Logical.Filter, op.Logical.Filter
		fused := plan.NewSynthetic(plan.KindFilter, "FusedFilter")
		fused.Filter = func(r data.Record) (bool, error) {
			ok, err := first(r)
			if err != nil || !ok {
				return false, err
			}
			return second(r)
		}
		// Combined selectivity.
		s1, s2 := in.Logical.Selectivity, op.Logical.Selectivity
		if s1 <= 0 {
			s1 = 0.5
		}
		if s2 <= 0 {
			s2 = 0.5
		}
		fused.Selectivity = s1 * s2
		merged := p.NewEnhancer(fused, in.Inputs[0])
		for _, c := range consumers[op.ID] {
			c.ReplaceInput(op, merged)
		}
		if p.SinkOp == op {
			p.SinkOp = merged
		}
		removeOps(p, op, in)
		return true, p.Normalize()
	}
	return false, nil
}

// PushFilterBeforeSort swaps Sort→Filter into Filter→Sort: filtering a
// sorted stream and sorting a filtered stream produce the same output,
// but the latter sorts fewer records.
type PushFilterBeforeSort struct{}

// Name implements Rule.
func (PushFilterBeforeSort) Name() string { return "push-filter-before-sort" }

// Apply implements Rule.
func (PushFilterBeforeSort) Apply(p *physical.Plan) (bool, error) {
	consumers := p.Consumers()
	for _, op := range p.Ops {
		if op.Kind() != plan.KindFilter {
			continue
		}
		sortOp := op.Inputs[0]
		if sortOp.Kind() != plan.KindSort || len(consumers[sortOp.ID]) != 1 {
			continue
		}
		// Rewire: source → filter → sort → (filter's consumers).
		src := sortOp.Inputs[0]
		op.ReplaceInput(sortOp, src)
		sortOp.ReplaceInput(src, op)
		for _, c := range consumers[op.ID] {
			c.ReplaceInput(op, sortOp)
		}
		if p.SinkOp == op {
			p.SinkOp = sortOp
		}
		return true, p.Normalize()
	}
	return false, nil
}

// removeOps deletes operators from the plan's op list (their wiring
// must already be bypassed).
func removeOps(p *physical.Plan, victims ...*physical.Operator) {
	dead := make(map[int]bool, len(victims))
	for _, v := range victims {
		dead[v.ID] = true
	}
	kept := p.Ops[:0]
	for _, op := range p.Ops {
		if !dead[op.ID] {
			kept = append(kept, op)
		}
	}
	p.Ops = kept
}
