package optimizer

import (
	"fmt"

	"rheem/internal/core/engine"
	"rheem/internal/core/physical"
	"rheem/internal/core/plan"
)

// splitAtoms divides an assigned physical plan into task atoms:
// maximal same-platform fragments that stay *convex* (no dataflow path
// leaves an atom and re-enters it), so atoms can execute strictly one
// after another. Loop operators become their own executor-driven
// atoms; LoopInput placeholders belong to no atom — the executor seeds
// their channels directly.
//
// During adaptive re-optimization, frozen (already-executed) operators
// are never grouped with unfrozen ones, so fully-frozen atoms can be
// skipped wholesale by the executor.
func splitAtoms(p *physical.Plan, assignment map[int]engine.PlatformID, frozen map[int]bool) ([]*engine.TaskAtom, error) {
	// ancestors[opID] = transitive input closure, used for the
	// convexity check.
	ancestors := make(map[int]map[int]bool, len(p.Ops))
	for _, op := range p.Ops {
		anc := map[int]bool{}
		for _, in := range op.Inputs {
			anc[in.ID] = true
			for a := range ancestors[in.ID] {
				anc[a] = true
			}
		}
		ancestors[op.ID] = anc
	}

	atomOf := make(map[int]*engine.TaskAtom, len(p.Ops))
	var atoms []*engine.TaskAtom
	nextID := 0

	newAtom := func(kind engine.AtomKind, pl engine.PlatformID) *engine.TaskAtom {
		a := &engine.TaskAtom{ID: nextID, Kind: kind, Platform: pl}
		nextID++
		atoms = append(atoms, a)
		return a
	}

	// atomOps[atom.ID] = set of op IDs, for the convexity check.
	atomOps := map[int]map[int]bool{}

	for _, op := range p.Ops {
		pl, ok := assignment[op.ID]
		if !ok {
			return nil, fmt.Errorf("optimizer: %s has no platform assignment", op.Name())
		}
		switch op.Kind() {
		case plan.KindLoopInput:
			continue // seeded by the executor
		case plan.KindRepeat, plan.KindDoWhile:
			a := newAtom(engine.AtomLoop, pl)
			a.LoopOp = op
			atomOf[op.ID] = a
			atomOps[a.ID] = map[int]bool{op.ID: true}
			continue
		}

		// Try to absorb into a same-platform input atom, convexly:
		// joining atom A is safe iff no other input of op reaches A
		// through an operator outside A. Frozen and unfrozen operators
		// never share an atom.
		var target *engine.TaskAtom
		for _, in := range op.Inputs {
			cand := atomOf[in.ID]
			if cand == nil || cand.Platform != pl || cand.Kind != engine.AtomCompute {
				continue
			}
			if frozen[op.ID] != frozen[in.ID] {
				continue
			}
			safe := true
			for _, other := range op.Inputs {
				if atomOf[other.ID] == cand {
					continue
				}
				// Does `other` depend on anything inside cand?
				for a := range ancestors[other.ID] {
					if atomOps[cand.ID][a] {
						safe = false
						break
					}
				}
				if !safe {
					break
				}
			}
			if safe {
				target = cand
				break
			}
		}
		if target == nil {
			target = newAtom(engine.AtomCompute, pl)
			atomOps[target.ID] = map[int]bool{}
		}
		target.Ops = append(target.Ops, op)
		atomOps[target.ID][op.ID] = true
		atomOf[op.ID] = target
	}

	// Exits: operators consumed outside their atom, plus the sink.
	consumers := p.Consumers()
	for _, op := range p.Ops {
		a := atomOf[op.ID]
		if a == nil || a.Kind != engine.AtomCompute {
			continue
		}
		external := op == p.SinkOp
		for _, c := range consumers[op.ID] {
			if atomOf[c.ID] != a {
				external = true
			}
		}
		if external {
			a.Exits = append(a.Exits, op)
		}
	}

	// Order atoms topologically (Kahn): atom A precedes B if any op of
	// A feeds an op of B. Convexity guarantees the atom graph is
	// acyclic; a cycle here is an internal invariant violation.
	deps := map[int]map[int]bool{} // atom ID → atom IDs it depends on
	for _, op := range p.Ops {
		a := atomOf[op.ID]
		if a == nil {
			continue
		}
		for _, in := range op.Inputs {
			ia := atomOf[in.ID]
			if ia == nil || ia == a {
				continue
			}
			if deps[a.ID] == nil {
				deps[a.ID] = map[int]bool{}
			}
			deps[a.ID][ia.ID] = true
		}
	}
	var sorted []*engine.TaskAtom
	done := map[int]bool{}
	for len(sorted) < len(atoms) {
		progressed := false
		for _, a := range atoms {
			if done[a.ID] {
				continue
			}
			ready := true
			for dep := range deps[a.ID] {
				if !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				done[a.ID] = true
				sorted = append(sorted, a)
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("optimizer: cycle in task atom graph of %q", p.Name)
		}
	}
	return sorted, nil
}
