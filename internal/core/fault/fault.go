// Package fault is a reusable, deterministic fault-injection layer for
// engine platforms. It wraps any engine.Platform and injects failures
// and latency according to seeded, reproducible schedules — the test
// harness for the executor's "coping with failures" duty (paper §4.2)
// and for the chaos experiments (E9).
//
// A schedule decides per execution attempt whether to fail; because
// schedules key off deterministic call counters (per-atom and global)
// and the jitter source is a seeded hash, a chaos run replays
// identically: same plan, same schedule, same failures. Injected
// errors are wrapped engine.Transient, so the executor's retry,
// circuit-breaker, and failover machinery engages exactly as it would
// for a real environmental failure.
package fault

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rheem/internal/core/channel"
	"rheem/internal/core/engine"
)

// ErrInjected is the default injected failure cause.
var ErrInjected = errors.New("fault: injected failure")

// ErrKilled is the cause used by Kill when none is given: the platform
// is gone (a crashed cluster, an unreachable service) and every
// execution on it fails until Revive.
var ErrKilled = errors.New("fault: platform killed")

// Schedule decides whether one execution attempt fails. atomCall is
// the 1-based count of executions of this particular atom (retries
// included); totalCall is the 1-based count of executions across the
// whole platform. Implementations must be pure functions of their
// arguments so runs replay deterministically.
type Schedule interface {
	Fail(atom *engine.TaskAtom, atomCall, totalCall int) error
}

type scheduleFunc func(atom *engine.TaskAtom, atomCall, totalCall int) error

func (f scheduleFunc) Fail(atom *engine.TaskAtom, atomCall, totalCall int) error {
	return f(atom, atomCall, totalCall)
}

func orInjected(err error) error {
	if err == nil {
		return ErrInjected
	}
	return err
}

// FailFirstN fails the first n execution attempts of every atom — the
// classic transient-failure schedule: an atom succeeds once the retry
// budget outlasts n. A nil err injects ErrInjected.
func FailFirstN(n int, err error) Schedule {
	cause := orInjected(err)
	return scheduleFunc(func(_ *engine.TaskAtom, atomCall, _ int) error {
		if atomCall <= n {
			return cause
		}
		return nil
	})
}

// FailEveryKth fails every k-th execution across the platform (k ≥ 1):
// a periodic fault that spreads over atoms and retries.
func FailEveryKth(k int, err error) Schedule {
	cause := orInjected(err)
	return scheduleFunc(func(_ *engine.TaskAtom, _, totalCall int) error {
		if k >= 1 && totalCall%k == 0 {
			return cause
		}
		return nil
	})
}

// FailAfterN lets the first n executions succeed and fails every one
// after them — the "platform dies mid-run" schedule behind the chaos
// tests: deterministic, no clocks or monitors involved.
func FailAfterN(n int, err error) Schedule {
	cause := orInjected(err)
	return scheduleFunc(func(_ *engine.TaskAtom, _, totalCall int) error {
		if totalCall > n {
			return cause
		}
		return nil
	})
}

// FailMatching fails every execution of atoms the predicate selects —
// e.g. only the atoms of one operator kind, or one atom ID.
func FailMatching(pred func(*engine.TaskAtom) bool, err error) Schedule {
	cause := orInjected(err)
	return scheduleFunc(func(atom *engine.TaskAtom, _, _ int) error {
		if pred(atom) {
			return cause
		}
		return nil
	})
}

// Options configures a wrapped platform.
type Options struct {
	// ID overrides the wrapper's platform identifier; empty keeps the
	// inner platform's ID (useful when the wrapper replaces the real
	// platform in a registry).
	ID engine.PlatformID
	// Schedules are consulted in order before every delegation; the
	// first non-nil error is injected (wrapped engine.Transient).
	Schedules []Schedule
	// Latency is added before every execution attempt (after the
	// injection decision is made it still applies to failures — a dying
	// call burns time too). The sleep honors context cancellation.
	Latency time.Duration
	// LatencyJitter adds a deterministic per-call jitter in
	// [0, LatencyJitter), derived from Seed, the atom ID and the call
	// number — reproducible "noisy cluster" timing.
	LatencyJitter time.Duration
	// Seed seeds the jitter hash (default 1).
	Seed uint64
}

// Stats counts what the injector did. Cancelled counts executions that
// observed context cancellation during injected latency.
type Stats struct {
	Calls     int // execution attempts seen
	Injected  int // failures injected by schedules or Kill
	Cancelled int // latency sleeps cut short by context cancellation
}

// Platform wraps an inner engine.Platform with fault injection. It
// satisfies engine.Platform and is safe for concurrent use, matching
// the executor's ExecuteAtom contract.
type Platform struct {
	inner engine.Platform
	opts  Options

	mu        sync.Mutex
	killed    bool
	killCause error
	atomCalls map[int]int
	total     int
	stats     Stats
}

// Wrap builds a fault-injecting wrapper around inner.
func Wrap(inner engine.Platform, opts Options) *Platform {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Platform{inner: inner, opts: opts, atomCalls: map[int]int{}}
}

// Register registers the wrapper in reg and clones the operator
// mappings of donor onto the wrapper's ID, so the optimizer can assign
// work to it. Use the inner platform's ID as donor when the wrapper
// shadows a registered platform of the same family.
func Register(reg *engine.Registry, p *Platform, donor engine.PlatformID) error {
	if err := reg.RegisterPlatform(p); err != nil {
		return err
	}
	if donor == p.ID() {
		return nil // wrapper replaces the donor; mappings already target its ID
	}
	return reg.CloneMappings(donor, p.ID())
}

// ID implements engine.Platform.
func (p *Platform) ID() engine.PlatformID {
	if p.opts.ID != "" {
		return p.opts.ID
	}
	return p.inner.ID()
}

// Profile implements engine.Platform.
func (p *Platform) Profile() engine.Profile { return p.inner.Profile() }

// NativeFormat implements engine.Platform.
func (p *Platform) NativeFormat() channel.Format { return p.inner.NativeFormat() }

// RegisterConverters implements engine.Platform.
func (p *Platform) RegisterConverters(reg *channel.Registry) { p.inner.RegisterConverters(reg) }

// SplitNative forwards intra-atom shard splitting to the inner
// platform. Splitting is metadata work — no faults are injected here;
// the shard executions themselves go through ExecuteAtom and face the
// schedules. Returns an error when the inner platform is no Sharder,
// which makes the executor fall back to hub-format splitting.
func (p *Platform) SplitNative(ch *channel.Channel, n int) ([]*channel.Channel, error) {
	if s, ok := p.inner.(engine.Sharder); ok {
		return s.SplitNative(ch, n)
	}
	return nil, fmt.Errorf("fault: inner platform %s cannot split natively", p.inner.ID())
}

// Kill marks the platform dead: every subsequent execution fails with
// cause (ErrKilled if nil) until Revive. Schedules express planned
// failure patterns; Kill is the manual chaos switch.
func (p *Platform) Kill(cause error) {
	if cause == nil {
		cause = ErrKilled
	}
	p.mu.Lock()
	p.killed, p.killCause = true, cause
	p.mu.Unlock()
}

// Revive clears a Kill.
func (p *Platform) Revive() {
	p.mu.Lock()
	p.killed = false
	p.mu.Unlock()
}

// Stats returns a snapshot of the injector's counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// CallsFor returns how many executions of the atom were attempted.
func (p *Platform) CallsFor(atomID int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.atomCalls[atomID]
}

// ExecuteAtom implements engine.Platform: it applies latency, then the
// kill switch and the failure schedules, then delegates to the inner
// platform. Injected failures report Metrics{Jobs: 1} — a failed job
// submission still happened.
func (p *Platform) ExecuteAtom(ctx context.Context, atom *engine.TaskAtom, inputs engine.AtomInputs) (map[int]*channel.Channel, engine.Metrics, error) {
	p.mu.Lock()
	p.stats.Calls++
	p.atomCalls[atom.ID]++
	atomCall := p.atomCalls[atom.ID]
	p.total++
	totalCall := p.total
	killed, killCause := p.killed, p.killCause
	p.mu.Unlock()

	if d := p.delay(atom.ID, totalCall); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			p.mu.Lock()
			p.stats.Cancelled++
			p.mu.Unlock()
			return nil, engine.Metrics{}, ctx.Err()
		case <-t.C:
		}
	}

	var cause error
	if killed {
		cause = killCause
	} else {
		for _, s := range p.opts.Schedules {
			if err := s.Fail(atom, atomCall, totalCall); err != nil {
				cause = err
				break
			}
		}
	}
	if cause != nil {
		p.mu.Lock()
		p.stats.Injected++
		p.mu.Unlock()
		return nil, engine.Metrics{Jobs: 1},
			engine.Transient(fmt.Errorf("fault: %s on %s: %w", atom, p.ID(), cause))
	}
	return p.inner.ExecuteAtom(ctx, atom, inputs)
}

// delay computes the injected latency for one call: the fixed Latency
// plus a deterministic jitter drawn from a seeded hash of (atom, call).
func (p *Platform) delay(atomID, call int) time.Duration {
	d := p.opts.Latency
	if j := p.opts.LatencyJitter; j > 0 {
		h := splitmix64(p.opts.Seed ^ uint64(atomID)<<32 ^ uint64(call))
		d += time.Duration(h % uint64(j))
	}
	return d
}

// splitmix64 is the SplitMix64 mixer — a tiny, well-distributed,
// dependency-free hash for deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
